// Command mgbench regenerates the paper's evaluation artifacts. Each -exp
// value corresponds to one figure or in-text result set of §6 (the
// experiment index is in the internal/experiments package documentation).
// Every experiment runs through one shared memoizing job engine, so
// benchmark preparations and the common baseline simulations execute
// exactly once across the whole run; with -cache-dir the simulation
// results additionally persist on disk, so a repeated run answers every
// previously computed arm without executing a single pipeline simulation.
//
// Usage:
//
//	mgbench -exp config|fig5|fig5dom|robust|fig6|fig7|policy|icache|fig8reg|fig8bw|ablate|frontend|all
//	        [-benchmarks a,b,c] [-predictor hybrid|tage] [-prefetcher none|delta]
//	        [-parallel N] [-cache-dir DIR] [-json] [-v]
//
// With -json the artifacts are emitted as a JSON array of structured
// reports (machine-readable rows) instead of text tables.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"minigraph/internal/experiments"
	"minigraph/internal/sim"
	"minigraph/internal/store"
)

func main() {
	exp := flag.String("exp", "all", "experiment id ("+strings.Join(experiments.IDs(), " ")+" all)")
	benches := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
	predictor := flag.String("predictor", "", "branch predictor for every machine (hybrid tage; empty = presets)")
	prefetcher := flag.String("prefetcher", "", "data prefetcher for every machine (none delta; empty = presets)")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0 = NumCPU)")
	cacheDir := flag.String("cache-dir", "", "persistent result store directory (empty = none)")
	cacheMax := flag.Int64("cache-max-bytes", 0, "store size bound in bytes (0 = 1GiB default, negative = unbounded)")
	jsonOut := flag.Bool("json", false, "emit structured JSON reports instead of text tables")
	verbose := flag.Bool("v", false, "progress output")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	o := experiments.DefaultOptions()
	o.Context = ctx
	o.Engine = sim.New(*parallel)
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir, store.Options{MaxBytes: *cacheMax})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		o.Engine.WithStore(st)
	}
	if *benches != "" {
		o.Benchmarks = strings.Split(*benches, ",")
	}
	o.Predictor = *predictor
	o.Prefetcher = *prefetcher
	if *verbose {
		o.Log = os.Stderr
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	var reports []*sim.Report
	for _, id := range ids {
		t0 := time.Now()
		a, err := experiments.Run(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if *jsonOut {
			reports = append(reports, a.Report)
		} else {
			fmt.Println(a.String())
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(t0).Round(time.Millisecond))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *verbose {
		st := o.Engine.Stats()
		fmt.Fprintf(os.Stderr, "[engine: %d prepares (%d cache hits), %d simulations (%d cache hits)]\n",
			st.PrepareRuns, st.PrepareHits, st.SimRuns, st.SimHits)
		if s := o.Engine.Store(); s != nil {
			ss := s.Stats()
			fmt.Fprintf(os.Stderr, "[store: %d hits, %d misses, %d writes; %d pipeline simulations executed; %d entries, %d bytes]\n",
				ss.Hits, ss.Misses, ss.Puts, st.PipelineSims(), ss.Entries, ss.Bytes)
		}
	}
}
