// Command mgbench regenerates the paper's evaluation artifacts. Each -exp
// value corresponds to one figure or in-text result set of §6 (see
// DESIGN.md's per-experiment index).
//
// Usage:
//
//	mgbench -exp config|fig5|fig5dom|robust|fig6|fig7|policy|icache|fig8reg|fig8bw|ablate|all
//	        [-benchmarks a,b,c] [-parallel N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"minigraph/internal/experiments"
	"minigraph/internal/stats"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (config fig5 fig5dom robust fig6 fig7 policy icache fig8reg fig8bw ablate all)")
	benches := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0 = NumCPU)")
	verbose := flag.Bool("v", false, "progress output")
	flag.Parse()

	o := experiments.DefaultOptions()
	o.Parallel = *parallel
	if *benches != "" {
		o.Benchmarks = strings.Split(*benches, ",")
	}
	if *verbose {
		o.Log = os.Stderr
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"config", "fig5", "fig5dom", "robust", "fig6", "fig7", "policy", "icache", "fig8reg", "fig8bw", "ablate"}
	}
	for _, id := range ids {
		t0 := time.Now()
		tables, err := run(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(t0).Round(time.Millisecond))
	}
}

func run(id string, o experiments.Options) ([]*stats.Table, error) {
	switch id {
	case "config":
		return []*stats.Table{experiments.ConfigTable()}, nil
	case "fig5":
		tables, _, err := experiments.Fig5(o)
		return tables, err
	case "fig5dom":
		t, err := experiments.Fig5Domain(o)
		return []*stats.Table{t}, err
	case "robust":
		t, err := experiments.Robustness(o)
		return []*stats.Table{t}, err
	case "fig6":
		t, _, err := experiments.Fig6(o)
		return []*stats.Table{t}, err
	case "fig7":
		t, _, err := experiments.Fig7(o)
		return []*stats.Table{t}, err
	case "policy":
		t, err := experiments.PolicyBest(o)
		return []*stats.Table{t}, err
	case "icache":
		t, err := experiments.ICache(o)
		return []*stats.Table{t}, err
	case "fig8reg":
		t, err := experiments.Fig8Regs(o)
		return []*stats.Table{t}, err
	case "fig8bw":
		t, err := experiments.Fig8Bandwidth(o)
		return []*stats.Table{t}, err
	case "ablate":
		t, err := experiments.Ablations(o)
		return []*stats.Table{t}, err
	}
	return nil, fmt.Errorf("unknown experiment %q", id)
}
