// Command mgprof is the pipeline performance driver: the reproducible
// instrument behind the repo's perf trajectory. It runs the cycle-accurate
// simulator over the benchmark subset on the baseline and mini-graph
// machines (preparation — build, profile, extract, rewrite — happens
// outside the timed region), measures simulated-cycles-per-second and
// allocations per run, and writes the results as BENCH_pipeline.json.
// It can also capture pprof profiles of exactly that hot loop.
//
// Usage:
//
//	mgprof [-out BENCH_pipeline.json] [-iters N]
//	       [-benches gzip,sha] [-machines baseline,minigraph]
//	       [-cpuprofile cpu.out] [-memprofile mem.out]
//
// The JSON schema is documented in the README's Performance section; CI
// runs mgprof once per push and uploads the artifact, so regressions in
// simulator throughput or hot-path allocation are visible in history.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"minigraph"
	"minigraph/internal/workload"
)

// Report is the BENCH_pipeline.json envelope.
type Report struct {
	Schema     string    `json:"schema"` // "minigraph-bench-pipeline/v1"
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Runs       []RunStat `json:"runs"`
	Totals     Totals    `json:"totals"`
}

// RunStat is one (benchmark, machine) measurement, averaged over the
// iteration count.
type RunStat struct {
	Bench         string  `json:"bench"`
	Machine       string  `json:"machine"`
	Iterations    int     `json:"iterations"`
	CyclesPerRun  int64   `json:"cycles_per_run"`
	RetiredPerRun int64   `json:"retired_per_run"`
	SecondsPerRun float64 `json:"seconds_per_run"`
	CyclesPerSec  float64 `json:"cycles_per_sec"`
	MInstPerSec   float64 `json:"minst_per_sec"`
	AllocsPerRun  int64   `json:"allocs_per_run"`
	BytesPerRun   int64   `json:"bytes_per_run"`
}

// Totals aggregates one full pass over every measured pair.
type Totals struct {
	CyclesPerSec float64 `json:"cycles_per_sec"`
	MInstPerSec  float64 `json:"minst_per_sec"`
	AllocsPerRun int64   `json:"allocs_per_run"`
	Seconds      float64 `json:"seconds"`
}

// job is one prepared measurement target.
type job struct {
	bench   string
	machine string
	cfg     minigraph.SimConfig
	prog    *minigraph.Program
	mgt     *minigraph.MGT
}

func main() {
	out := flag.String("out", "BENCH_pipeline.json", "output path for the JSON report")
	iters := flag.Int("iters", 3, "timed simulations per (bench, machine) pair")
	benches := flag.String("benches", strings.Join(workload.BenchSubset(), ","), "comma-separated benchmark names")
	machines := flag.String("machines", "baseline,minigraph", "comma-separated machines (baseline, minigraph)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the timed loop")
	memprofile := flag.String("memprofile", "", "write an allocation profile after the timed loop")
	flag.Parse()

	if err := run(*out, *iters, *benches, *machines, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "mgprof:", err)
		os.Exit(1)
	}
}

func run(out string, iters int, benches, machines, cpuprofile, memprofile string) error {
	if iters < 1 {
		iters = 1
	}
	jobs, err := prepare(benches, machines)
	if err != nil {
		return err
	}

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	rep := Report{
		Schema:     "minigraph-bench-pipeline/v1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, j := range jobs {
		rs, err := measure(j, iters)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mgprof: %-10s %-10s %12.0f cycles/s %8d allocs/run\n",
			rs.Bench, rs.Machine, rs.CyclesPerSec, rs.AllocsPerRun)
		rep.Runs = append(rep.Runs, rs)
	}
	var cycles, retired int64
	for _, r := range rep.Runs {
		cycles += r.CyclesPerRun
		retired += r.RetiredPerRun
		rep.Totals.AllocsPerRun += r.AllocsPerRun
		rep.Totals.Seconds += r.SecondsPerRun
	}
	if rep.Totals.Seconds > 0 {
		rep.Totals.CyclesPerSec = float64(cycles) / rep.Totals.Seconds
		rep.Totals.MInstPerSec = float64(retired) / rep.Totals.Seconds / 1e6
	}

	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o666); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mgprof: wrote %s (total %.0f cycles/s, %d allocs/run)\n",
		out, rep.Totals.CyclesPerSec, rep.Totals.AllocsPerRun)
	return nil
}

// prepare builds every (bench, machine) pair up front so the measured
// region contains nothing but pipeline simulation.
func prepare(benches, machines string) ([]job, error) {
	var jobs []job
	for _, name := range strings.Split(benches, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		wl, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (known: %s)", name, strings.Join(workload.Names(), " "))
		}
		prog := wl.Build(workload.InputTrain)
		for _, m := range strings.Split(machines, ",") {
			switch strings.TrimSpace(m) {
			case "baseline":
				jobs = append(jobs, job{bench: name, machine: "baseline", cfg: minigraph.BaselineConfig(), prog: prog})
			case "minigraph":
				prof, err := minigraph.ProfileOf(prog, minigraph.ProfileLimit)
				if err != nil {
					return nil, fmt.Errorf("%s: profile: %w", name, err)
				}
				rw, err := minigraph.Extract(prog, prof, minigraph.DefaultPolicy(), 512, minigraph.DefaultExecParams())
				if err != nil {
					return nil, fmt.Errorf("%s: extract: %w", name, err)
				}
				jobs = append(jobs, job{bench: name, machine: "minigraph", cfg: minigraph.MiniGraphConfig(true), prog: rw.Prog, mgt: rw.MGT})
			case "":
			default:
				return nil, fmt.Errorf("unknown machine %q (want baseline or minigraph)", m)
			}
		}
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("nothing to measure")
	}
	return jobs, nil
}

// measure times iters simulations of j on one goroutine, reading allocator
// deltas around the loop.
func measure(j job, iters int) (RunStat, error) {
	ctx := context.Background()
	// Warm-up run outside the measurement (page faults, code warmup).
	if _, err := minigraph.SimulateContext(ctx, j.cfg, j.prog, j.mgt); err != nil {
		return RunStat{}, fmt.Errorf("%s@%s: %w", j.bench, j.machine, err)
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var cycles, retired int64
	for i := 0; i < iters; i++ {
		res, err := minigraph.SimulateContext(ctx, j.cfg, j.prog, j.mgt)
		if err != nil {
			return RunStat{}, fmt.Errorf("%s@%s: %w", j.bench, j.machine, err)
		}
		cycles += res.Cycles
		retired += res.Retired
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	sec := elapsed.Seconds()
	rs := RunStat{
		Bench:         j.bench,
		Machine:       j.machine,
		Iterations:    iters,
		CyclesPerRun:  cycles / int64(iters),
		RetiredPerRun: retired / int64(iters),
		SecondsPerRun: sec / float64(iters),
		AllocsPerRun:  int64(m1.Mallocs-m0.Mallocs) / int64(iters),
		BytesPerRun:   int64(m1.TotalAlloc-m0.TotalAlloc) / int64(iters),
	}
	if sec > 0 {
		rs.CyclesPerSec = float64(cycles) / sec
		rs.MInstPerSec = float64(retired) / sec / 1e6
	}
	return rs, nil
}
