// Command mgprof is the pipeline performance driver: the reproducible
// instrument behind the repo's perf trajectory. It runs the cycle-accurate
// simulator over the benchmark subset on the baseline and mini-graph
// machines (preparation — build, profile, extract, rewrite — happens
// outside the timed region), measures simulated-cycles-per-second and
// allocations per run, and writes the results as BENCH_pipeline.json.
// It also measures the capture-once/replay-many configuration sweep: one
// functional-emulation capture per benchmark, then every machine arm
// replayed from the shared trace, against the same sweep run with live
// per-arm emulation. It can also capture pprof profiles of exactly those
// hot loops.
//
// Usage:
//
//	mgprof [-out BENCH_pipeline.json] [-iters N]
//	       [-benches gzip,sha] [-machines baseline,minigraph]
//	       [-predictor hybrid|tage] [-prefetcher none|delta]
//	       [-sweep-lats 0,110,...] [-no-sweep] [-gang=false] [-chunked=false]
//	       [-trace-chunk-records N] [-trace-chunk-window N]
//	       [-cpuprofile cpu.out] [-memprofile mem.out]
//
// The JSON schema (v4 — v3 fields unchanged, chunked block added) is
// documented in the README's Performance section; CI runs mgprof once per
// push and uploads the artifact, so regressions in simulator throughput,
// hot-path allocation, the capture/replay split, gang sweep throughput,
// or bounded-memory chunk streaming overhead are visible in history.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"minigraph"
	"minigraph/internal/workload"
)

// Report is the BENCH_pipeline.json envelope (schema v4: every v3 field
// kept as-is, plus the chunked sweep measurement).
type Report struct {
	Schema     string       `json:"schema"` // "minigraph-bench-pipeline/v4"
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Runs       []RunStat    `json:"runs"`
	Totals     Totals       `json:"totals"`
	Sweep      *SweepStat   `json:"sweep,omitempty"`   // v2
	Gang       *GangStat    `json:"gang,omitempty"`    // v3
	Chunked    *ChunkedStat `json:"chunked,omitempty"` // v4
}

// RunStat is one (benchmark, machine) measurement, averaged over the
// iteration count.
type RunStat struct {
	Bench         string  `json:"bench"`
	Machine       string  `json:"machine"`
	Iterations    int     `json:"iterations"`
	CyclesPerRun  int64   `json:"cycles_per_run"`
	RetiredPerRun int64   `json:"retired_per_run"`
	SecondsPerRun float64 `json:"seconds_per_run"`
	CyclesPerSec  float64 `json:"cycles_per_sec"`
	MInstPerSec   float64 `json:"minst_per_sec"`
	AllocsPerRun  int64   `json:"allocs_per_run"`
	BytesPerRun   int64   `json:"bytes_per_run"`
}

// Totals aggregates one full pass over every measured pair.
type Totals struct {
	CyclesPerSec float64 `json:"cycles_per_sec"`
	MInstPerSec  float64 `json:"minst_per_sec"`
	AllocsPerRun int64   `json:"allocs_per_run"`
	Seconds      float64 `json:"seconds"`
}

// SweepStat is the multi-arm configuration sweep: every benchmark's
// mini-graph binary timed under each DRAM latency, once via trace replay
// (capture each binary's dynamic stream once, replay it per arm) and once
// via live per-arm emulation. The split shows where capture-once/
// replay-many wins: CaptureSeconds is paid once per benchmark, live
// emulation once per arm.
type SweepStat struct {
	Benches      []string `json:"benches"`
	MemLatencies []int    `json:"mem_latencies"`
	Arms         int      `json:"arms"`

	CaptureSeconds     float64 `json:"capture_seconds"`
	ReplaySeconds      float64 `json:"replay_seconds"` // arm replays, excl. capture
	ReplayArmsPerSec   float64 `json:"replay_arms_per_sec"`
	ReplayAllocsPerArm int64   `json:"replay_allocs_per_arm"`

	LiveSeconds      float64 `json:"live_seconds"`
	LiveArmsPerSec   float64 `json:"live_arms_per_sec"`
	LiveAllocsPerArm int64   `json:"live_allocs_per_arm"`

	// Speedup is replay arms/sec (capture included) over live arms/sec.
	Speedup float64 `json:"speedup"`
}

// GangStat is the same configuration sweep executed through the engine's
// gang scheduler (arms sharing a TraceKey interleaved over one shared-
// decode trace traversal) against the engine's independent per-arm replay
// path. Both passes run on a cold engine with benchmark preparation warmed
// outside the clock, so the split isolates exactly what ganging changes:
// extraction, capture, and the N timing simulations.
type GangStat struct {
	Arms         int     `json:"arms"`
	Gangs        int64   `json:"gangs"`
	GangArms     int64   `json:"gang_arms"`
	SharedDecode int64   `json:"shared_decode_records"`
	Seconds      float64 `json:"seconds"`
	ArmsPerSec   float64 `json:"arms_per_sec"`
	AllocsPerArm int64   `json:"allocs_per_arm"`

	// SoloSeconds/SoloArmsPerSec are the identical engine sweep with gang
	// replay disabled (WithGangReplay(false)) — the like-for-like baseline.
	SoloSeconds    float64 `json:"solo_seconds"`
	SoloArmsPerSec float64 `json:"solo_arms_per_sec"`

	// SpeedupVsSoloEngine is gang arms/s over the engine's independent
	// path; SpeedupVsSoloReplay is gang arms/s over the v2 sweep block's
	// replay arms/s (the PR 4 baseline the issue targets), when the sweep
	// block was measured in the same run.
	SpeedupVsSoloEngine float64 `json:"speedup_vs_solo_engine"`
	SpeedupVsSoloReplay float64 `json:"speedup_vs_solo_replay,omitempty"`
}

// ChunkedStat compares the engine sweep with traces fully resident (the
// pre-chunking monolithic behavior: every replay reads from one in-memory
// buffer) against the same sweep streaming chunks through a bounded
// per-cursor window faulted from the store. The streamed pass is the
// larger-than-RAM configuration; its overhead over the resident pass is
// the price of bounded memory, and PeakWindowBytes shows the bound held.
type ChunkedStat struct {
	Arms         int   `json:"arms"`
	ChunkRecords int64 `json:"chunk_records"`
	ChunkWindow  int   `json:"chunk_window"`

	// ResidentSeconds/ResidentArmsPerSec: store-backed sweep, unbounded
	// window — traces replay fully resident (monolithic-equivalent).
	ResidentSeconds    float64 `json:"resident_seconds"`
	ResidentArmsPerSec float64 `json:"resident_arms_per_sec"`

	// StreamedSeconds/StreamedArmsPerSec: same sweep with at most
	// ChunkWindow chunks resident per replay cursor, faulted from the
	// store.
	StreamedSeconds    float64 `json:"streamed_seconds"`
	StreamedArmsPerSec float64 `json:"streamed_arms_per_sec"`
	ChunkFaults        int64   `json:"chunk_faults"`
	ChunkEvictions     int64   `json:"chunk_evictions"`
	PeakWindowBytes    int64   `json:"peak_window_bytes"`

	// Overhead is streamed seconds over resident seconds (1.0 = free).
	Overhead float64 `json:"overhead"`
}

// job is one prepared measurement target.
type job struct {
	bench   string
	machine string
	cfg     minigraph.SimConfig
	prog    *minigraph.Program
	mgt     *minigraph.MGT
}

// frontend holds the -predictor/-prefetcher overrides, applied to every
// machine configuration mgprof builds (measured pairs and sweep arms), so
// front-end throughput cost shows up in the same report as everything else.
var frontend struct{ predictor, prefetcher string }

// frontendConfig applies the front-end flags to one machine configuration.
// The flag values are validated in main, so this cannot fail mid-run.
func frontendConfig(cfg minigraph.SimConfig) minigraph.SimConfig {
	cfg, err := minigraph.FrontendConfig(cfg, frontend.predictor, frontend.prefetcher)
	if err != nil {
		panic(err) // unreachable: main validated the flags
	}
	return cfg
}

func main() {
	out := flag.String("out", "BENCH_pipeline.json", "output path for the JSON report")
	iters := flag.Int("iters", 3, "timed simulations per (bench, machine) pair")
	benches := flag.String("benches", strings.Join(workload.BenchSubset(), ","), "comma-separated benchmark names")
	machines := flag.String("machines", "baseline,minigraph", "comma-separated machines (baseline, minigraph)")
	predictor := flag.String("predictor", "", "branch predictor for every machine (hybrid tage; empty = presets)")
	prefetcher := flag.String("prefetcher", "", "data prefetcher for every machine (none delta; empty = presets)")
	sweepLats := flag.String("sweep-lats", "0,110,120,130,140,150,160,170", "comma-separated DRAM latencies for the sweep")
	noSweep := flag.Bool("no-sweep", false, "skip the sweep measurements (capture/replay and gang)")
	gang := flag.Bool("gang", true, "measure the gang sweep (engine gang replay vs independent arms)")
	chunked := flag.Bool("chunked", true, "measure the chunked sweep (bounded chunk window vs fully-resident traces)")
	chunkRecords := flag.Int64("trace-chunk-records", 1<<12, "records per trace chunk for the chunked sweep, rounded up to a power of two")
	chunkWindow := flag.Int("trace-chunk-window", 2, "resident chunks per replay cursor in the chunked sweep's streamed pass")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the timed loops")
	memprofile := flag.String("memprofile", "", "write an allocation profile after the timed loops")
	flag.Parse()

	if _, err := minigraph.FrontendConfig(minigraph.BaselineConfig(), *predictor, *prefetcher); err != nil {
		fmt.Fprintln(os.Stderr, "mgprof:", err)
		os.Exit(2)
	}
	frontend.predictor, frontend.prefetcher = *predictor, *prefetcher

	cw := chunkedSweep{measure: *chunked, records: *chunkRecords, window: *chunkWindow}
	if err := run(*out, *iters, *benches, *machines, *sweepLats, *noSweep, *gang, cw, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "mgprof:", err)
		os.Exit(1)
	}
}

// chunkedSweep carries the chunked-measurement flags.
type chunkedSweep struct {
	measure bool
	records int64
	window  int
}

func run(out string, iters int, benches, machines, sweepLats string, noSweep, gang bool, cw chunkedSweep, cpuprofile, memprofile string) error {
	if iters < 1 {
		iters = 1
	}
	jobs, err := prepare(benches, machines)
	if err != nil {
		return err
	}
	lats, err := parseLats(sweepLats)
	if err != nil {
		return err
	}

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	rep := Report{
		Schema:     "minigraph-bench-pipeline/v4",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, j := range jobs {
		rs, err := measure(j, iters)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mgprof: %-10s %-10s %12.0f cycles/s %8d allocs/run\n",
			rs.Bench, rs.Machine, rs.CyclesPerSec, rs.AllocsPerRun)
		rep.Runs = append(rep.Runs, rs)
	}
	var cycles, retired int64
	for _, r := range rep.Runs {
		cycles += r.CyclesPerRun
		retired += r.RetiredPerRun
		rep.Totals.AllocsPerRun += r.AllocsPerRun
		rep.Totals.Seconds += r.SecondsPerRun
	}
	if rep.Totals.Seconds > 0 {
		rep.Totals.CyclesPerSec = float64(cycles) / rep.Totals.Seconds
		rep.Totals.MInstPerSec = float64(retired) / rep.Totals.Seconds / 1e6
	}

	if !noSweep {
		sw, err := measureSweep(benches, lats)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mgprof: sweep %d arms: replay %.2f arms/s (capture %.3fs + replay %.3fs), live %.2f arms/s, speedup %.2fx\n",
			sw.Arms, sw.ReplayArmsPerSec, sw.CaptureSeconds, sw.ReplaySeconds, sw.LiveArmsPerSec, sw.Speedup)
		rep.Sweep = sw
	}
	if !noSweep && gang {
		gs, err := measureGang(benches, lats)
		if err != nil {
			return err
		}
		if rep.Sweep != nil && rep.Sweep.ReplayArmsPerSec > 0 {
			gs.SpeedupVsSoloReplay = gs.ArmsPerSec / rep.Sweep.ReplayArmsPerSec
		}
		fmt.Fprintf(os.Stderr, "mgprof: gang sweep %d arms in %d gangs: %.2f arms/s vs solo %.2f arms/s (%.2fx), %d shared-decode records\n",
			gs.Arms, gs.Gangs, gs.ArmsPerSec, gs.SoloArmsPerSec, gs.SpeedupVsSoloEngine, gs.SharedDecode)
		rep.Gang = gs
	}
	if !noSweep && cw.measure {
		cs, err := measureChunked(benches, lats, cw)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mgprof: chunked sweep %d arms: streamed %.2f arms/s vs resident %.2f arms/s (%.2fx overhead), peak window %d bytes, %d faults\n",
			cs.Arms, cs.StreamedArmsPerSec, cs.ResidentArmsPerSec, cs.Overhead, cs.PeakWindowBytes, cs.ChunkFaults)
		rep.Chunked = cs
	}

	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o666); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mgprof: wrote %s (total %.0f cycles/s, %d allocs/run)\n",
		out, rep.Totals.CyclesPerSec, rep.Totals.AllocsPerRun)
	return nil
}

func parseLats(s string) ([]int, error) {
	var lats []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad sweep latency %q", f)
		}
		lats = append(lats, v)
	}
	if len(lats) == 0 {
		return nil, fmt.Errorf("sweep needs at least one latency")
	}
	return lats, nil
}

// prepare builds every (bench, machine) pair up front so the measured
// region contains nothing but pipeline simulation.
func prepare(benches, machines string) ([]job, error) {
	var jobs []job
	for _, name := range strings.Split(benches, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		wl, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (known: %s)", name, strings.Join(workload.Names(), " "))
		}
		prog := wl.Build(workload.InputTrain)
		for _, m := range strings.Split(machines, ",") {
			switch strings.TrimSpace(m) {
			case "baseline":
				jobs = append(jobs, job{bench: name, machine: "baseline", cfg: frontendConfig(minigraph.BaselineConfig()), prog: prog})
			case "minigraph":
				rw, err := rewritten(name, prog)
				if err != nil {
					return nil, err
				}
				jobs = append(jobs, job{bench: name, machine: "minigraph", cfg: frontendConfig(minigraph.MiniGraphConfig(true)), prog: rw.Prog, mgt: rw.MGT})
			case "":
			default:
				return nil, fmt.Errorf("unknown machine %q (want baseline or minigraph)", m)
			}
		}
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("nothing to measure")
	}
	return jobs, nil
}

func rewritten(name string, prog *minigraph.Program) (*minigraph.Rewritten, error) {
	prof, err := minigraph.ProfileOf(prog, minigraph.ProfileLimit)
	if err != nil {
		return nil, fmt.Errorf("%s: profile: %w", name, err)
	}
	rw, err := minigraph.Extract(prog, prof, minigraph.DefaultPolicy(), 512, minigraph.DefaultExecParams())
	if err != nil {
		return nil, fmt.Errorf("%s: extract: %w", name, err)
	}
	return rw, nil
}

// measure times iters simulations of j on one goroutine, reading allocator
// deltas around the loop.
func measure(j job, iters int) (RunStat, error) {
	ctx := context.Background()
	// Warm-up run outside the measurement (page faults, code warmup).
	if _, err := minigraph.SimulateContext(ctx, j.cfg, j.prog, j.mgt); err != nil {
		return RunStat{}, fmt.Errorf("%s@%s: %w", j.bench, j.machine, err)
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var cycles, retired int64
	for i := 0; i < iters; i++ {
		res, err := minigraph.SimulateContext(ctx, j.cfg, j.prog, j.mgt)
		if err != nil {
			return RunStat{}, fmt.Errorf("%s@%s: %w", j.bench, j.machine, err)
		}
		cycles += res.Cycles
		retired += res.Retired
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	sec := elapsed.Seconds()
	rs := RunStat{
		Bench:         j.bench,
		Machine:       j.machine,
		Iterations:    iters,
		CyclesPerRun:  cycles / int64(iters),
		RetiredPerRun: retired / int64(iters),
		SecondsPerRun: sec / float64(iters),
		AllocsPerRun:  int64(m1.Mallocs-m0.Mallocs) / int64(iters),
		BytesPerRun:   int64(m1.TotalAlloc-m0.TotalAlloc) / int64(iters),
	}
	if sec > 0 {
		rs.CyclesPerSec = float64(cycles) / sec
		rs.MInstPerSec = float64(retired) / sec / 1e6
	}
	return rs, nil
}

// measureSweep times the configuration sweep in both modes. Preparation
// (build, profile, extract, rewrite) happens outside every timed region;
// what the clock sees is exactly what differs between the modes: one
// capture + N trace replays, versus N live emulation-driven simulations.
func measureSweep(benches string, lats []int) (*SweepStat, error) {
	ctx := context.Background()
	type target struct {
		name string
		prog *minigraph.Program
		mgt  *minigraph.MGT
	}
	var targets []target
	var names []string
	for _, name := range strings.Split(benches, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		wl, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		rw, err := rewritten(name, wl.Build(workload.InputTrain))
		if err != nil {
			return nil, err
		}
		targets = append(targets, target{name: name, prog: rw.Prog, mgt: rw.MGT})
		names = append(names, name)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("sweep has no benchmarks")
	}
	configs := make([]minigraph.SimConfig, len(lats))
	for i, ml := range lats {
		configs[i] = frontendConfig(minigraph.MiniGraphConfig(true))
		configs[i].MemLatency = ml
	}
	sw := &SweepStat{Benches: names, MemLatencies: lats, Arms: len(targets) * len(configs)}

	// Warm-up: one capture+replay and one live arm per benchmark.
	for _, tg := range targets {
		tr, err := minigraph.CaptureTrace(ctx, tg.prog, tg.mgt, 0)
		if err != nil {
			return nil, err
		}
		if _, err := minigraph.SimulateTrace(ctx, configs[0], tr, tg.prog, tg.mgt); err != nil {
			return nil, err
		}
		if _, err := minigraph.SimulateContext(ctx, configs[0], tg.prog, tg.mgt); err != nil {
			return nil, err
		}
	}

	// Replay mode: capture once per benchmark, replay every arm.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for _, tg := range targets {
		t0 := time.Now()
		tr, err := minigraph.CaptureTrace(ctx, tg.prog, tg.mgt, 0)
		if err != nil {
			return nil, fmt.Errorf("%s: capture: %w", tg.name, err)
		}
		sw.CaptureSeconds += time.Since(t0).Seconds()
		t0 = time.Now()
		for _, cfg := range configs {
			if _, err := minigraph.SimulateTrace(ctx, cfg, tr, tg.prog, tg.mgt); err != nil {
				return nil, fmt.Errorf("%s: replay: %w", tg.name, err)
			}
		}
		sw.ReplaySeconds += time.Since(t0).Seconds()
	}
	runtime.ReadMemStats(&m1)
	sw.ReplayAllocsPerArm = int64(m1.Mallocs-m0.Mallocs) / int64(sw.Arms)

	// Live mode: every arm pays for its own emulation.
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for _, tg := range targets {
		for _, cfg := range configs {
			if _, err := minigraph.SimulateContext(ctx, cfg, tg.prog, tg.mgt); err != nil {
				return nil, fmt.Errorf("%s: live: %w", tg.name, err)
			}
		}
	}
	sw.LiveSeconds = time.Since(t0).Seconds()
	runtime.ReadMemStats(&m1)
	sw.LiveAllocsPerArm = int64(m1.Mallocs-m0.Mallocs) / int64(sw.Arms)

	if tot := sw.CaptureSeconds + sw.ReplaySeconds; tot > 0 {
		sw.ReplayArmsPerSec = float64(sw.Arms) / tot
	}
	if sw.LiveSeconds > 0 {
		sw.LiveArmsPerSec = float64(sw.Arms) / sw.LiveSeconds
	}
	if sw.LiveArmsPerSec > 0 {
		sw.Speedup = sw.ReplayArmsPerSec / sw.LiveArmsPerSec
	}
	return sw, nil
}

// measureChunked times the engine sweep twice against a persistent store
// in a throwaway directory: once with the unbounded default window —
// captures persist chunked but replay fully resident, the monolithic-
// equivalent path — and once with a small bounded window, where capture
// spills sealed chunks to the store as it goes and every replay cursor
// faults chunks back on demand. Both passes run cold engines with
// preparation warmed outside the clock; the ratio is the end-to-end cost
// of bounding trace memory.
func measureChunked(benches string, lats []int, cw chunkedSweep) (*ChunkedStat, error) {
	ctx := context.Background()
	var names []string
	for _, name := range strings.Split(benches, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("chunked sweep has no benchmarks")
	}
	var jobs []minigraph.SimJob
	for _, name := range names {
		for _, ml := range lats {
			cfg := frontendConfig(minigraph.MiniGraphConfig(true))
			cfg.MemLatency = ml
			jobs = append(jobs, minigraph.SimJob{
				Prepare: minigraph.PrepareKey{Bench: name, Input: minigraph.InputTrain},
				Policy:  minigraph.DefaultPolicy(),
				Entries: 512,
				Config:  cfg,
			})
		}
	}
	cs := &ChunkedStat{Arms: len(jobs), ChunkRecords: cw.records, ChunkWindow: cw.window}

	sweep := func(window int) (float64, minigraph.EngineStats, error) {
		dir, err := os.MkdirTemp("", "mgprof-chunked-")
		if err != nil {
			return 0, minigraph.EngineStats{}, err
		}
		defer os.RemoveAll(dir)
		st, err := minigraph.OpenStore(dir, -1)
		if err != nil {
			return 0, minigraph.EngineStats{}, err
		}
		eng := minigraph.NewEngine(0).WithStore(st).
			WithTraceChunkRecords(cw.records).
			WithTraceChunkWindow(window)
		for _, name := range names {
			pk := minigraph.PrepareKey{Bench: name, Input: minigraph.InputTrain}
			if _, err := eng.Prepare(ctx, pk); err != nil {
				return 0, minigraph.EngineStats{}, err
			}
		}
		t0 := time.Now()
		if _, err := eng.Run(ctx, jobs); err != nil {
			return 0, minigraph.EngineStats{}, err
		}
		return time.Since(t0).Seconds(), eng.Stats(), nil
	}

	sec, _, err := sweep(0)
	if err != nil {
		return nil, fmt.Errorf("resident sweep: %w", err)
	}
	cs.ResidentSeconds = sec
	if sec > 0 {
		cs.ResidentArmsPerSec = float64(cs.Arms) / sec
	}

	sec, st, err := sweep(cw.window)
	if err != nil {
		return nil, fmt.Errorf("streamed sweep: %w", err)
	}
	cs.StreamedSeconds = sec
	cs.ChunkFaults = st.TraceChunkFaults
	cs.ChunkEvictions = st.TraceChunkEvictions
	cs.PeakWindowBytes = st.TraceChunkWindowPeakBytes
	if sec > 0 {
		cs.StreamedArmsPerSec = float64(cs.Arms) / sec
	}
	if cs.ResidentSeconds > 0 {
		cs.Overhead = cs.StreamedSeconds / cs.ResidentSeconds
	}
	return cs, nil
}

// measureGang times the engine sweep twice on cold engines — once with
// gang replay (the default), once with independent per-arm replay — with
// benchmark preparation warmed outside both clocks. The timed region is
// what an operator's sweep actually pays: extraction, capture, and the N
// timing simulations.
func measureGang(benches string, lats []int) (*GangStat, error) {
	ctx := context.Background()
	var names []string
	for _, name := range strings.Split(benches, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("gang sweep has no benchmarks")
	}
	var jobs []minigraph.SimJob
	for _, name := range names {
		for _, ml := range lats {
			cfg := frontendConfig(minigraph.MiniGraphConfig(true))
			cfg.MemLatency = ml
			jobs = append(jobs, minigraph.SimJob{
				Prepare: minigraph.PrepareKey{Bench: name, Input: minigraph.InputTrain},
				Policy:  minigraph.DefaultPolicy(),
				Entries: 512,
				Config:  cfg,
			})
		}
	}
	gs := &GangStat{Arms: len(jobs)}

	sweep := func(gang bool) (float64, int64, minigraph.EngineStats, error) {
		eng := minigraph.NewEngine(0).WithGangReplay(gang)
		for _, name := range names {
			pk := minigraph.PrepareKey{Bench: name, Input: minigraph.InputTrain}
			if _, err := eng.Prepare(ctx, pk); err != nil {
				return 0, 0, minigraph.EngineStats{}, err
			}
		}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		if _, err := eng.Run(ctx, jobs); err != nil {
			return 0, 0, minigraph.EngineStats{}, err
		}
		sec := time.Since(t0).Seconds()
		runtime.ReadMemStats(&m1)
		return sec, int64(m1.Mallocs-m0.Mallocs) / int64(len(jobs)), eng.Stats(), nil
	}

	sec, allocs, st, err := sweep(true)
	if err != nil {
		return nil, fmt.Errorf("gang sweep: %w", err)
	}
	gs.Seconds = sec
	gs.AllocsPerArm = allocs
	gs.Gangs = st.GangsFormed
	gs.GangArms = st.GangArms
	gs.SharedDecode = st.GangSharedRecords
	if sec > 0 {
		gs.ArmsPerSec = float64(gs.Arms) / sec
	}

	soloSec, _, _, err := sweep(false)
	if err != nil {
		return nil, fmt.Errorf("solo sweep: %w", err)
	}
	gs.SoloSeconds = soloSec
	if soloSec > 0 {
		gs.SoloArmsPerSec = float64(gs.Arms) / soloSec
	}
	if gs.SoloArmsPerSec > 0 {
		gs.SpeedupVsSoloEngine = gs.ArmsPerSec / gs.SoloArmsPerSec
	}
	return gs, nil
}
