// Command mgsim runs the cycle-level timing simulator on a built-in
// benchmark or an assembly file, optionally through the mini-graph
// toolchain first. Built-in benchmarks run as jobs on the shared
// memoizing simulation engine (so repeated invocations inside one process
// — and Ctrl-C cancellation — behave like the experiment harness);
// assembly files go through the public facade directly. Both paths
// profile under the engine's 4M-dynamic-instruction cap so -bench and
// -file select identical mini-graphs for identical programs (earlier
// releases profiled -file inputs to 10M; programs longer than 4M
// instructions may select differently than before).
//
// Usage:
//
//	mgsim -list
//	mgsim [-bench name | -file kernel.s] [-minigraphs] [-int] [-collapse]
//	      [-entries 512] [-maxsize 4] [-regs 164] [-width 6] [-sched 1]
//	      [-cache-dir DIR] [-v]
//
// With -cache-dir, built-in benchmark runs read and write a persistent
// result store shared with mgbench and mgserve: a simulation any of them
// has already computed is answered from disk.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"minigraph"
	"minigraph/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list built-in benchmarks")
	bench := flag.String("bench", "", "built-in benchmark name")
	file := flag.String("file", "", "assembly source file")
	useMG := flag.Bool("minigraphs", false, "extract and execute mini-graphs")
	intOnly := flag.Bool("int", false, "integer mini-graphs only")
	collapse := flag.Bool("collapse", false, "pair-wise collapsing ALU pipelines")
	entries := flag.Int("entries", 512, "MGT entries")
	maxSize := flag.Int("maxsize", 4, "maximum mini-graph size")
	regs := flag.Int("regs", 164, "physical registers")
	width := flag.Int("width", 6, "pipeline width (fetch/rename/commit)")
	sched := flag.Int("sched", 1, "scheduling loop cycles (1 or 2)")
	cacheDir := flag.String("cache-dir", "", "persistent result store directory (built-in benchmarks only)")
	verbose := flag.Bool("v", false, "print detailed statistics")
	flag.Parse()

	if *list {
		for _, b := range workload.All() {
			fmt.Printf("%-12s %s\n", b.Name, b.Suite)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := minigraph.BaselineConfig()
	if *useMG {
		cfg = minigraph.MiniGraphConfig(!*intOnly)
		cfg.Collapse = *collapse
	}
	cfg.PhysRegs = *regs
	cfg.FetchWidth, cfg.RenameWidth, cfg.CommitWidth = *width, *width, *width
	cfg.SchedCycles = *sched

	res, err := simulate(ctx, *bench, *file, *useMG, *intOnly, *entries, *maxSize, *cacheDir, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cycles:        %d\n", res.Cycles)
	fmt.Printf("retired:       %d records (%d units of work)\n", res.Retired, res.RetiredWork)
	fmt.Printf("IPC:           %.3f (work IPC %.3f)\n", res.IPC(), res.WorkIPC())
	if res.RetiredHandles > 0 {
		fmt.Printf("handles:       %d retired, %d constituents (avg %.2f)\n",
			res.RetiredHandles, res.HandleConstituents,
			float64(res.HandleConstituents)/float64(res.RetiredHandles))
	}
	if *verbose {
		fmt.Printf("branches:      %d (%d mispredicted, %.2f%%)\n", res.Branches, res.Mispredicts, 100*res.MispredictRate())
		fmt.Printf("L1I misses:    %d\n", res.L1IMisses)
		fmt.Printf("L1D misses:    %d (loads %d, stores %d, forwards %d)\n", res.L1DMisses, res.Loads, res.Stores, res.Forwards)
		fmt.Printf("L2 misses:     %d\n", res.L2Misses)
		fmt.Printf("violations:    %d\n", res.Violations)
		fmt.Printf("replays:       %d load-shadow, %d mini-graph\n", res.LoadMissReplays, res.MGReplays)
		fmt.Printf("stalls:        ROB %d, IQ %d, LSQ %d, regs %d\n", res.StallROB, res.StallIQ, res.StallLSQ, res.StallRegs)
		fmt.Printf("preg traffic:  %d allocs, %d frees\n", res.PregAllocs, res.PregFrees)
	}
}

// simulate routes built-in benchmarks through the shared job engine and
// assembly files through the facade.
func simulate(ctx context.Context, bench, file string, useMG, intOnly bool, entries, maxSize int, cacheDir string, cfg minigraph.SimConfig) (*minigraph.SimResult, error) {
	switch {
	case bench != "":
		if _, ok := workload.ByName(bench); !ok {
			return nil, fmt.Errorf("unknown benchmark %q (try -list)", bench)
		}
		eng := minigraph.NewEngine(0)
		if cacheDir != "" {
			st, err := minigraph.OpenStore(cacheDir, 0)
			if err != nil {
				return nil, err
			}
			eng.WithStore(st)
		}
		job := minigraph.SimJob{
			Prepare:  minigraph.PrepareKey{Bench: bench, Input: workload.InputTrain},
			Baseline: !useMG,
			Config:   cfg,
		}
		if useMG {
			pol := minigraph.DefaultPolicy()
			pol.MaxSize = maxSize
			pol.AllowMem = !intOnly
			job.Policy = pol
			job.Entries = entries
		}
		out, err := eng.Simulate(ctx, job)
		if err != nil {
			return nil, err
		}
		if out.Selection != nil {
			fmt.Printf("extraction: %d templates, coverage %.2f%%\n",
				len(out.Selection.Templates), 100*out.Selection.Coverage())
		}
		return out.Result, nil
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		prog, err := minigraph.Assemble(file, string(src))
		if err != nil {
			return nil, err
		}
		runProg := prog
		var mgt *minigraph.MGT
		if useMG {
			prof, err := minigraph.ProfileOf(prog, minigraph.ProfileLimit)
			if err != nil {
				return nil, err
			}
			pol := minigraph.DefaultPolicy()
			pol.MaxSize = maxSize
			pol.AllowMem = !intOnly
			params := minigraph.DefaultExecParams()
			params.Collapse = cfg.Collapse
			rw, err := minigraph.Extract(prog, prof, pol, entries, params)
			if err != nil {
				return nil, err
			}
			fmt.Printf("extraction: %d templates, coverage %.2f%%\n", len(rw.Selection.Templates), 100*rw.Selection.Coverage())
			runProg, mgt = rw.Prog, rw.MGT
		}
		return minigraph.SimulateContext(ctx, cfg, runProg, mgt)
	}
	return nil, fmt.Errorf("one of -bench or -file is required")
}
