// Command mgsim runs the cycle-level timing simulator on a built-in
// benchmark or an assembly file, optionally through the mini-graph
// toolchain first.
//
// Usage:
//
//	mgsim -list
//	mgsim [-bench name | -file kernel.s] [-minigraphs] [-int] [-collapse]
//	      [-entries 512] [-maxsize 4] [-regs 164] [-width 6] [-sched 1] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"minigraph"
	"minigraph/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list built-in benchmarks")
	bench := flag.String("bench", "", "built-in benchmark name")
	file := flag.String("file", "", "assembly source file")
	useMG := flag.Bool("minigraphs", false, "extract and execute mini-graphs")
	intOnly := flag.Bool("int", false, "integer mini-graphs only")
	collapse := flag.Bool("collapse", false, "pair-wise collapsing ALU pipelines")
	entries := flag.Int("entries", 512, "MGT entries")
	maxSize := flag.Int("maxsize", 4, "maximum mini-graph size")
	regs := flag.Int("regs", 164, "physical registers")
	width := flag.Int("width", 6, "pipeline width (fetch/rename/commit)")
	sched := flag.Int("sched", 1, "scheduling loop cycles (1 or 2)")
	verbose := flag.Bool("v", false, "print detailed statistics")
	flag.Parse()

	if *list {
		for _, b := range workload.All() {
			fmt.Printf("%-12s %s\n", b.Name, b.Suite)
		}
		return
	}
	prog, err := loadProgram(*bench, *file)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var cfg minigraph.SimConfig
	var mgt *minigraph.MGT
	runProg := prog
	if *useMG {
		cfg = minigraph.MiniGraphConfig(!*intOnly)
		cfg.Collapse = *collapse
		prof, err := minigraph.ProfileOf(prog, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pol := minigraph.DefaultPolicy()
		pol.MaxSize = *maxSize
		pol.AllowMem = !*intOnly
		params := minigraph.DefaultExecParams()
		params.Collapse = *collapse
		rw, err := minigraph.Extract(prog, prof, pol, *entries, params)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("extraction: %d templates, coverage %.2f%%\n", len(rw.Selection.Templates), 100*rw.Selection.Coverage())
		runProg, mgt = rw.Prog, rw.MGT
	} else {
		cfg = minigraph.BaselineConfig()
	}
	cfg.PhysRegs = *regs
	cfg.FetchWidth, cfg.RenameWidth, cfg.CommitWidth = *width, *width, *width
	cfg.SchedCycles = *sched

	res, err := minigraph.Simulate(cfg, runProg, mgt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cycles:        %d\n", res.Cycles)
	fmt.Printf("retired:       %d records (%d units of work)\n", res.Retired, res.RetiredWork)
	fmt.Printf("IPC:           %.3f (work IPC %.3f)\n", res.IPC(), res.WorkIPC())
	if res.RetiredHandles > 0 {
		fmt.Printf("handles:       %d retired, %d constituents (avg %.2f)\n",
			res.RetiredHandles, res.HandleConstituents,
			float64(res.HandleConstituents)/float64(res.RetiredHandles))
	}
	if *verbose {
		fmt.Printf("branches:      %d (%d mispredicted, %.2f%%)\n", res.Branches, res.Mispredicts, 100*res.MispredictRate())
		fmt.Printf("L1I misses:    %d\n", res.L1IMisses)
		fmt.Printf("L1D misses:    %d (loads %d, stores %d, forwards %d)\n", res.L1DMisses, res.Loads, res.Stores, res.Forwards)
		fmt.Printf("L2 misses:     %d\n", res.L2Misses)
		fmt.Printf("violations:    %d\n", res.Violations)
		fmt.Printf("replays:       %d load-shadow, %d mini-graph\n", res.LoadMissReplays, res.MGReplays)
		fmt.Printf("stalls:        ROB %d, IQ %d, LSQ %d, regs %d\n", res.StallROB, res.StallIQ, res.StallLSQ, res.StallRegs)
		fmt.Printf("preg traffic:  %d allocs, %d frees\n", res.PregAllocs, res.PregFrees)
	}
}

func loadProgram(bench, file string) (*minigraph.Program, error) {
	switch {
	case bench != "":
		b, ok := workload.ByName(bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (try -list)", bench)
		}
		return b.Build(workload.InputTrain), nil
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return minigraph.Assemble(file, string(src))
	}
	return nil, fmt.Errorf("one of -bench or -file is required")
}
