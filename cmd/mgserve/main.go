// Command mgserve exposes the simulation engine as an HTTP service. Every
// request funnels through one shared memoizing engine, so identical jobs
// coalesce across concurrent callers, and with -cache-dir the results
// persist: a restarted server answers previously computed jobs without
// running a single pipeline simulation.
//
// Usage:
//
//	mgserve [-addr :8347] [-cache-dir DIR] [-cache-max-bytes N]
//	        [-parallel N] [-max-sweep-jobs N]
//
// Endpoints (see internal/serve and the README for request shapes):
//
//	POST /v1/simulate            one job
//	POST /v1/sweep               a batch of arms, coalesced
//	GET  /v1/experiments/{name}  full figure reproduction (Report JSON)
//	GET  /healthz                liveness
//	GET  /statsz                 engine + store counters
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"minigraph/internal/serve"
	"minigraph/internal/sim"
	"minigraph/internal/store"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	cacheDir := flag.String("cache-dir", "", "persistent result store directory (empty = in-memory only)")
	cacheMax := flag.Int64("cache-max-bytes", 0, "store size bound in bytes (0 = 1GiB default, negative = unbounded)")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0 = NumCPU)")
	maxSweep := flag.Int("max-sweep-jobs", serve.DefaultMaxSweepJobs, "max arms per sweep request")
	flag.Parse()

	eng := sim.New(*parallel)
	var st *store.Store
	if *cacheDir != "" {
		var err error
		st, err = store.Open(*cacheDir, store.Options{MaxBytes: *cacheMax})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		eng.WithStore(st)
		fmt.Fprintf(os.Stderr, "mgserve: store %s (%d entries)\n", st.Dir(), st.Len())
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: serve.New(serve.Options{Engine: eng, MaxSweepJobs: *maxSweep}),
		// A service meant to face real traffic must bound how long a client
		// may dribble a request (slowloris). Request bodies are small JSON
		// job specs, so tight read bounds are safe; responses can take
		// minutes of simulation, so WriteTimeout deliberately stays unset —
		// in-flight compute is bounded by request cancellation instead.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "mgserve: listening on %s (%d workers)\n", *addr, eng.Workers())
	listenErr := make(chan error, 1)
	go func() { listenErr <- srv.ListenAndServe() }()
	select {
	case err := <-listenErr:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
		// Drain in-flight requests before exiting (Shutdown blocks until
		// handlers finish or the grace period lapses).
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		if err := <-listenErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	stats := eng.Stats()
	fmt.Fprintf(os.Stderr, "mgserve: served %d simulations (%d memory hits, %d store hits)\n",
		stats.SimRuns+stats.SimHits, stats.SimHits, stats.StoreHits)
}
