// Command mgserve exposes the simulation engine as an HTTP service. Every
// request funnels through one shared memoizing engine, so identical jobs
// coalesce across concurrent callers, and with -cache-dir the results
// persist: a restarted server answers previously computed jobs without
// running a single pipeline simulation.
//
// Usage:
//
//	mgserve [-addr :8347] [-cache-dir DIR] [-cache-max-bytes N] [-scrub]
//	        [-parallel N] [-max-sweep-jobs N] [-gang=false]
//	        [-trace-chunk-records N] [-trace-chunk-window N] [-trace-compress]
//	        [-workers URL,URL,...] [-coordinator] [-member-ttl D] [-fanout N]
//	        [-register URL -advertise URL [-heartbeat D]]
//	        [-rate-limit N] [-rate-burst N] [-max-inflight-sweeps N]
//	        [-max-body-bytes N] [-job-queue N] [-job-runners N]
//
// Sweep arms sharing a captured trace execute as gangs by default — their
// pipelines interleave over one shared-decode traversal, with reports
// byte-identical to independent execution; -gang=false restores the
// independent per-arm path (visible in /statsz gang counters either way).
// In coordinator mode ganging happens on the workers, which see arms one
// at a time — cross-arm ganging currently applies to single-process sweeps.
//
// With -workers (static members) or -coordinator (dynamic membership) the
// process runs as a coordinator: sweep arms shard across the worker
// mgserve processes by trace-key affinity (rendezvous hashing), so every
// arm lands on the worker that already holds its captured trace; worker
// failures re-route automatically and the merged report is byte-identical
// to single-process execution. Under -coordinator, workers join the tier
// by registering (and drop out when their heartbeat TTL lapses); a worker
// started with -register COORD -advertise SELF does that itself. Arms
// re-routed by membership changes fetch their captured traces from the
// key's previous owner instead of re-emulating, streamed chunk by chunk
// (GET /v1/blobs/{traceKey}?manifest=1, then ?chunk=N) with per-chunk
// damage rejection and resume across peers.
//
// Traces persist and move in fixed-size chunks (-trace-chunk-records per
// chunk); -trace-chunk-window bounds how many chunks each replay cursor
// keeps resident, letting traces larger than RAM replay from the store,
// and -trace-compress flate-compresses chunks at rest and on the wire.
//
// -rate-limit/-rate-burst and -max-inflight-sweeps bound traffic ahead of
// the compute endpoints (429 and 503 with Retry-After); -max-body-bytes
// caps request bodies (413).
//
// Endpoints (see internal/serve and the README for request shapes):
//
//	POST   /v1/simulate            one job
//	POST   /v1/sweep               a batch of arms, coalesced
//	POST   /v1/outcome             one job, canonical outcome encoding
//	POST   /v1/workers/register    join the tier / heartbeat
//	GET    /v1/workers             the member table
//	GET    /v1/blobs/{traceKey}    captured trace (peer transfer; ?manifest=1, ?chunk=N)
//	GET    /v1/experiments/{name}  full figure reproduction (Report JSON)
//	POST   /v1/jobs                submit an async sweep job
//	GET    /v1/jobs[/{id}[/report]] poll async jobs
//	DELETE /v1/jobs/{id}           cancel an async job
//	GET    /healthz                liveness
//	GET    /statsz                 engine + store + members + job counters
//
// Async job state persists in -cache-dir: jobs interrupted by a restart
// are requeued, finished ones stay observable with their reports.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"minigraph/internal/serve"
	"minigraph/internal/sim"
	"minigraph/internal/store"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	cacheDir := flag.String("cache-dir", "", "persistent result store directory (empty = in-memory only)")
	cacheMax := flag.Int64("cache-max-bytes", 0, "store size bound in bytes (0 = 1GiB default, negative = unbounded)")
	scrub := flag.Bool("scrub", false, "verify every store entry's checksum at startup, deleting corrupt entries, orphan trace chunks, and manifests referencing missing chunks (requires -cache-dir); the report appears in /statsz")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0 = NumCPU)")
	gang := flag.Bool("gang", true, "gang-replay sweep arms sharing a captured trace")
	maxSweep := flag.Int("max-sweep-jobs", serve.DefaultMaxSweepJobs, "max arms per sweep request")
	workers := flag.String("workers", "", "comma-separated worker base URLs; enables coordinator mode")
	coordinator := flag.Bool("coordinator", false, "coordinator mode with dynamic worker registration (workers join via POST /v1/workers/register)")
	memberTTL := flag.Duration("member-ttl", 0, "coordinator: registered worker heartbeat TTL (0 = 15s)")
	fanout := flag.Int("fanout", 0, "coordinator: max in-flight worker calls (0 = 4 x workers)")
	workerTimeout := flag.Duration("worker-timeout", 0, "coordinator: per-worker-call timeout (0 = 15m); a hung worker counts as failed")
	register := flag.String("register", "", "coordinator base URL to register this worker with (requires -advertise)")
	advertise := flag.String("advertise", "", "this worker's own base URL, as the coordinator should reach it")
	heartbeat := flag.Duration("heartbeat", 0, "registration heartbeat interval (0 = a third of the coordinator's TTL)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client requests/second admitted to /v1/sweep and /v1/jobs (0 = unlimited)")
	rateBurst := flag.Float64("rate-burst", 0, "rate-limit bucket capacity (0 = 2 x rate)")
	maxInflight := flag.Int("max-inflight-sweeps", 0, "max concurrently executing synchronous sweeps before shedding 503 (0 = 16, negative = unbounded)")
	maxBody := flag.Int64("max-body-bytes", 0, "max request body bytes before 413 (0 = 8MiB, negative = uncapped)")
	jobQueue := flag.Int("job-queue", serve.DefaultJobQueue, "max queued async jobs")
	jobRunners := flag.Int("job-runners", serve.DefaultJobRunners, "async jobs executed concurrently")
	chunkRecords := flag.Int64("trace-chunk-records", 0, "records per trace chunk, rounded up to a power of two (0 = 64Ki)")
	chunkWindow := flag.Int("trace-chunk-window", 0, "max trace chunks resident per replay cursor (0 = unbounded; bounding requires -cache-dir)")
	traceCompress := flag.Bool("trace-compress", false, "flate-compress trace chunks at rest and on the wire (CRCs stay over raw records)")
	flag.Parse()

	usageExit := func(msg string) {
		fmt.Fprintf(os.Stderr, "mgserve: %s\n", msg)
		flag.Usage()
		os.Exit(2)
	}

	eng := sim.New(*parallel).WithGangReplay(*gang).
		WithTraceChunkRecords(*chunkRecords).
		WithTraceChunkWindow(*chunkWindow).
		WithTraceCompression(*traceCompress)
	var st *store.Store
	if *cacheDir != "" {
		var err error
		st, err = store.Open(*cacheDir, store.Options{MaxBytes: *cacheMax})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		eng.WithStore(st)
		fmt.Fprintf(os.Stderr, "mgserve: store %s (%d entries)\n", st.Dir(), st.Len())
	}
	var scrubReport *store.ScrubReport
	if *scrub {
		if st == nil {
			usageExit("-scrub requires -cache-dir")
		}
		rep := sim.ScrubStore(st)
		scrubReport = &rep
		fmt.Fprintf(os.Stderr, "mgserve: scrub: %d entries scanned, %d corrupt deleted, %d orphan chunks deleted, %d manifests invalidated (%d bytes reclaimed), %d errors\n",
			rep.Scanned, rep.Corrupt, rep.OrphanChunks, rep.ManifestsInvalidated, rep.BytesReclaimed, rep.Errors)
	}

	var workerURLs []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			workerURLs = append(workerURLs, u)
		}
	}
	if *workers != "" && len(workerURLs) == 0 {
		usageExit("-workers was set but contains no worker URLs")
	}
	if (*register == "") != (*advertise == "") {
		usageExit("-register and -advertise must be set together (the coordinator needs a URL to reach this worker back on)")
	}

	handler, err := serve.New(serve.Options{
		Engine:            eng,
		MaxSweepJobs:      *maxSweep,
		MaxBodyBytes:      *maxBody,
		Workers:           workerURLs,
		Coordinator:       *coordinator,
		MemberTTL:         *memberTTL,
		FanoutConcurrency: *fanout,
		WorkerCallTimeout: *workerTimeout,
		RateLimit:         *rateLimit,
		RateBurst:         *rateBurst,
		MaxInflightSweeps: *maxInflight,
		JobQueue:          *jobQueue,
		JobRunners:        *jobRunners,
		Scrub:             scrubReport,
	})
	if err != nil {
		usageExit(err.Error())
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// A service meant to face real traffic must bound how long a client
		// may dribble a request (slowloris). Request bodies are small JSON
		// job specs, so tight read bounds are safe; responses can take
		// minutes of simulation, so WriteTimeout deliberately stays unset —
		// in-flight compute is bounded by request cancellation instead.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if len(workerURLs) > 0 {
		fmt.Fprintf(os.Stderr, "mgserve: coordinating %d workers: %s\n", len(workerURLs), strings.Join(workerURLs, " "))
	} else if *coordinator {
		fmt.Fprintln(os.Stderr, "mgserve: coordinating (dynamic membership; workers join via /v1/workers/register)")
	}
	if *register != "" {
		// Register with the coordinator and keep heartbeating until
		// shutdown. The loop retries through coordinator restarts, so the
		// worker re-joins a rebooted tier on its own.
		go serve.NewClient(*register).RegisterLoop(ctx, *advertise, *heartbeat, func(err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "mgserve: register with %s: %v\n", *register, err)
			}
		})
		fmt.Fprintf(os.Stderr, "mgserve: registering with %s as %s\n", *register, *advertise)
	}
	fmt.Fprintf(os.Stderr, "mgserve: listening on %s (%d workers)\n", *addr, eng.Workers())
	listenErr := make(chan error, 1)
	go func() { listenErr <- srv.ListenAndServe() }()
	select {
	case err := <-listenErr:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
		// Drain in-flight requests before exiting (Shutdown blocks until
		// handlers finish or the grace period lapses), then stop the async
		// job runners — interrupted jobs persist as requeueable.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		handler.Close()
		if err := <-listenErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	stats := eng.Stats()
	fmt.Fprintf(os.Stderr, "mgserve: served %d simulations (%d memory hits, %d store hits)\n",
		stats.SimRuns+stats.SimHits, stats.SimHits, stats.StoreHits)
}
