// Command mgextract runs mini-graph extraction over a built-in benchmark or
// an assembly file and reports coverage, the selected templates, and the
// physical MGT contents.
//
// Usage:
//
//	mgextract [-bench name | -file kernel.s] [-entries 512] [-maxsize 4]
//	          [-int] [-noextserial] [-nointparallel] [-nointeriorload]
//	          [-dump] [-dise]
package main

import (
	"flag"
	"fmt"
	"os"

	"minigraph"
	"minigraph/internal/dise"
	"minigraph/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "built-in benchmark name (see mgsim -list)")
	file := flag.String("file", "", "assembly source file")
	entries := flag.Int("entries", 512, "MGT entries")
	maxSize := flag.Int("maxsize", 4, "maximum mini-graph size")
	intOnly := flag.Bool("int", false, "integer mini-graphs only (no loads/stores)")
	noExt := flag.Bool("noextserial", false, "disallow externally serial mini-graphs")
	noPar := flag.Bool("nointparallel", false, "disallow internally parallel mini-graphs")
	noIL := flag.Bool("nointeriorload", false, "disallow interior (replay-vulnerable) loads")
	dump := flag.Bool("dump", false, "dump the physical MGT (MGHT + MGST)")
	diseOut := flag.Bool("dise", false, "emit the .dise section for the selection")
	flag.Parse()

	prog, err := loadProgram(*bench, *file)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prof, err := minigraph.ProfileOf(prog, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pol := minigraph.DefaultPolicy()
	pol.MaxSize = *maxSize
	pol.AllowMem = !*intOnly
	pol.AllowExtSerial = !*noExt
	pol.AllowIntParallel = !*noPar
	pol.AllowInteriorLoad = !*noIL

	rw, err := minigraph.Extract(prog, prof, pol, *entries, minigraph.DefaultExecParams())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sel := rw.Selection
	fmt.Printf("%s: %d candidates, %d templates selected, %d static instances\n",
		prog.Name, sel.CandidateCount, len(sel.Templates), len(sel.Instances))
	fmt.Printf("dynamic coverage: %.2f%% (%d of %d instructions removed from the pipeline)\n",
		100*sel.Coverage(), sel.CoveredInsts, sel.TotalInsts)
	if *dump {
		fmt.Println()
		fmt.Print(rw.MGT.Dump())
	}
	if *diseOut {
		prs, err := dise.FromSelection(sel.Templates)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dise:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(dise.FormatSection(prs))
	}
}

func loadProgram(bench, file string) (*minigraph.Program, error) {
	switch {
	case bench != "":
		b, ok := workload.ByName(bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", bench)
		}
		return b.Build(workload.InputTrain), nil
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return minigraph.Assemble(file, string(src))
	}
	return nil, fmt.Errorf("one of -bench or -file is required")
}
