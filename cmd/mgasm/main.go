// Command mgasm assembles a source file, prints its disassembly, and can
// execute it on the architectural emulator.
//
// Usage:
//
//	mgasm [-run] [-limit N] file.s
package main

import (
	"flag"
	"fmt"
	"os"

	"minigraph"
)

func main() {
	run := flag.Bool("run", false, "execute the program after assembling")
	limit := flag.Int64("limit", 10_000_000, "dynamic instruction limit for -run")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mgasm [-run] [-limit N] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := minigraph.Assemble(flag.Arg(0), string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d instructions, %d data symbols\n\n", prog.Name, prog.Len(), len(prog.DataSymbols))
	fmt.Print(minigraph.Disassemble(prog))
	if *run {
		sum, n, err := minigraph.Run(prog, nil, *limit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "run:", err)
			os.Exit(1)
		}
		fmt.Printf("\nexecuted %d instructions, memory checksum %#x\n", n, sum)
	}
}
