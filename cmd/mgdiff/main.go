// Command mgdiff runs the differential correctness oracle: seeded random
// programs (internal/progen) are executed by the functional emulator and by
// the timing pipeline under the full configuration matrix — {baseline,
// minigraph} × {hybrid, tage} × {none, delta} — and under every record
// delivery mode (live, replay, gang). A seed passes when every arm retires
// the architecturally identical state (register-write/store digest and
// retired count), all modes produce byte-identical encoded outcomes, and
// the rewritten binary's final memory matches the original's.
//
// Usage:
//
//	mgdiff -seed 681               # reproduce one seed
//	mgdiff -seeds 1000 [-start 0]  # sweep a seed range
//	mgdiff -seeds 500 -workers 8 -max-records 200000
//
// On divergence, mgdiff prints the failing seed/arm/mode and exits 1; the
// seed alone reproduces the program exactly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"

	"minigraph/internal/progen"
)

func main() {
	seed := flag.Int64("seed", -1, "check a single seed (reproduce a reported divergence)")
	seeds := flag.Int64("seeds", 0, "sweep this many consecutive seeds")
	start := flag.Int64("start", 0, "first seed of the sweep")
	workers := flag.Int("workers", 0, "concurrent seeds (0 = GOMAXPROCS)")
	maxRecords := flag.Int64("max-records", 0, "per-simulation dynamic record bound (0 = run to halt)")
	quiet := flag.Bool("q", false, "suppress per-seed progress")
	flag.Parse()

	if *seed < 0 && *seeds <= 0 {
		fmt.Fprintln(os.Stderr, "mgdiff: need -seed N or -seeds N")
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng := progen.NewEngines(0)

	if *seed >= 0 {
		if err := progen.DiffSeed(ctx, eng, *seed, *maxRecords); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("seed %d: ok (8 arms x 3 modes)\n", *seed)
		return
	}

	n := *workers
	if n <= 0 {
		n = 4
	}
	var (
		next   = *start
		mu     sync.Mutex
		wg     sync.WaitGroup
		passed atomic.Int64
		failed atomic.Bool
	)
	errCh := make(chan error, n)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				s := next
				next++
				mu.Unlock()
				if s >= *start+*seeds || failed.Load() || ctx.Err() != nil {
					return
				}
				if err := progen.DiffSeed(ctx, eng, s, *maxRecords); err != nil {
					failed.Store(true)
					errCh <- err
					return
				}
				p := passed.Add(1)
				if !*quiet && p%50 == 0 {
					fmt.Printf("%d/%d seeds ok\n", p, *seeds)
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "mgdiff: interrupted after %d seeds\n", passed.Load())
		os.Exit(130)
	}
	fmt.Printf("all %d seeds ok (8 arms x 3 modes each)\n", *seeds)
}
