// Quickstart: the complete mini-graph flow on a small kernel — assemble,
// profile, extract, rewrite, and compare baseline vs mini-graph timing.
package main

import (
	"fmt"
	"log"

	"minigraph"
)

const src = `
        .data
out:    .space 8
        .text
main:   li   r9, 5000
        clr  r3
loop:   addl r3, 7, r4       ; the shaded idiom: a serial chain of
        srl  r4, 3, r4       ; single-cycle integer operations that
        xor  r4, r3, r5      ; collapses into mini-graph handles
        and  r5, 255, r5
        addl r5, 1, r6
        sll  r6, 2, r6
        addq r3, r6, r3
        subl r9, 1, r9
        bne  r9, loop
        stq  r3, out(zero)
        halt
`

func main() {
	prog, err := minigraph.Assemble("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Profile: mini-graph selection is driven by basic-block frequency.
	prof, err := minigraph.ProfileOf(prog, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Extract + rewrite: dataflow graphs with a singleton interface
	// (2 inputs, 1 output, <=1 memory op, <=1 terminal branch) become
	// handles; the MGT holds their definitions.
	rw, err := minigraph.Extract(prog, prof, minigraph.DefaultPolicy(), 512, minigraph.DefaultExecParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d templates covering %.1f%% of the dynamic stream\n",
		len(rw.Selection.Templates), 100*rw.Selection.Coverage())
	fmt.Printf("planted %d handles, removed %d static instructions\n\n",
		rw.HandleCount, rw.RemovedInsts)
	fmt.Println("mini-graph table (MGHT + MGST):")
	fmt.Println(rw.MGT.Dump())

	// 3. Correctness: the rewritten binary computes the same results.
	sum0, _, _ := minigraph.Run(prog, nil, 0)
	sum1, _, err := minigraph.Run(rw.Prog, rw.MGT, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("architectural equivalence: %v\n\n", sum0 == sum1)

	// 4. Timing: baseline 6-wide machine vs the mini-graph machine (two
	// ALUs replaced by two 4-stage ALU pipelines + sliding-window
	// scheduler).
	base, err := minigraph.Simulate(minigraph.BaselineConfig(), prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	mg, err := minigraph.Simulate(minigraph.MiniGraphConfig(true), rw.Prog, rw.MGT)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline:   %8d cycles  IPC %.3f\n", base.Cycles, base.IPC())
	fmt.Printf("mini-graph: %8d cycles  work-IPC %.3f  (%d handles retired)  speedup %.3f\n",
		mg.Cycles, mg.WorkIPC(), mg.RetiredHandles, minigraph.Speedup(base, mg))

	// 5. Add pair-wise collapsing ALU pipelines (§6.2): two dependent
	// single-cycle operations per cycle — latency reduction on top of
	// bandwidth amplification. This kernel is one long dependence chain,
	// so collapsing is where its gain comes from.
	params := minigraph.DefaultExecParams()
	params.Collapse = true
	rwc, err := minigraph.Extract(prog, prof, minigraph.DefaultPolicy(), 512, params)
	if err != nil {
		log.Fatal(err)
	}
	ccfg := minigraph.MiniGraphConfig(true)
	ccfg.Collapse = true
	mgc, err := minigraph.Simulate(ccfg, rwc.Prog, rwc.MGT)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("+collapse:  %8d cycles  work-IPC %.3f  speedup %.3f\n",
		mgc.Cycles, mgc.WorkIPC(), minigraph.Speedup(base, mgc))
}
