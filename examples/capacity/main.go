// Capacity amplification as simplification (§6.3): mini-graphs allocate no
// physical registers for interior values, so a mini-graph machine with a
// 40%-smaller register file matches the full-size baseline.
package main

import (
	"fmt"
	"log"

	"minigraph"
	"minigraph/internal/workload"
)

func main() {
	bench, _ := workload.ByName("adpcm.enc")
	prog := bench.Build(workload.InputTrain)
	prof, err := minigraph.ProfileOf(prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	rw, err := minigraph.Extract(prog, prof, minigraph.DefaultPolicy(), 512, minigraph.DefaultExecParams())
	if err != nil {
		log.Fatal(err)
	}

	ref, err := minigraph.Simulate(minigraph.BaselineConfig(), prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %10s %10s %12s\n", "configuration", "cycles", "rel perf", "preg allocs")
	fmt.Printf("%-28s %10d %10.3f %12d\n", "baseline / 164 regs", ref.Cycles, 1.0, ref.PregAllocs)

	for _, regs := range []int{164, 144, 124, 104} {
		// Plain machine with a reduced register file.
		cfg := minigraph.BaselineConfig()
		cfg.PhysRegs = regs
		base, err := minigraph.Simulate(cfg, prog, nil)
		if err != nil {
			log.Fatal(err)
		}
		// Mini-graph machine with the same reduced register file.
		mcfg := minigraph.MiniGraphConfig(true)
		mcfg.PhysRegs = regs
		mg, err := minigraph.Simulate(mcfg, rw.Prog, rw.MGT)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %10d %10.3f %12d\n",
			fmt.Sprintf("baseline / %d regs", regs), base.Cycles, minigraph.Speedup(ref, base), base.PregAllocs)
		fmt.Printf("%-28s %10d %10.3f %12d\n",
			fmt.Sprintf("mini-graph / %d regs", regs), mg.Cycles, minigraph.Speedup(ref, mg), mg.PregAllocs)
	}
	fmt.Println("\nmini-graphs allocate one register per handle instead of one per")
	fmt.Println("constituent, compensating for the smaller file (Figure 8, top).")
}
