// ALU pipelines and pair-wise collapsing (§4.2, §6.2): integer mini-graphs
// execute on a single-entry single-exit chain of ALUs. A plain ALU pipeline
// amplifies execution bandwidth without adding bypass complexity; a
// pair-wise collapsing pipeline additionally halves dataflow latency
// (2-instruction graphs execute in one cycle, 3-4 instruction graphs in
// two).
package main

import (
	"fmt"
	"log"

	"minigraph"
	"minigraph/internal/workload"
)

func main() {
	bench, _ := workload.ByName("sha") // rotate/xor/add chains: AP heaven
	prog := bench.Build(workload.InputTrain)
	prof, err := minigraph.ProfileOf(prog, 0)
	if err != nil {
		log.Fatal(err)
	}

	base, err := minigraph.Simulate(minigraph.BaselineConfig(), prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %10s %8s\n", "configuration", "cycles", "speedup")
	fmt.Printf("%-34s %10d %8.3f\n", "baseline (4 ALUs)", base.Cycles, 1.0)

	for _, collapse := range []bool{false, true} {
		params := minigraph.DefaultExecParams()
		params.Collapse = collapse
		rw, err := minigraph.Extract(prog, prof, minigraph.IntegerPolicy(), 512, params)
		if err != nil {
			log.Fatal(err)
		}
		cfg := minigraph.MiniGraphConfig(false) // 2 ALUs + 2 ALU pipelines
		cfg.Collapse = collapse
		res, err := minigraph.Simulate(cfg, rw.Prog, rw.MGT)
		if err != nil {
			log.Fatal(err)
		}
		name := "mini-graphs on ALU pipelines"
		if collapse {
			name = "  + pair-wise collapsing"
		}
		fmt.Printf("%-34s %10d %8.3f   (%d handles, %d on AP)\n",
			name, res.Cycles, minigraph.Speedup(base, res), res.RetiredHandles, res.IssuedOnAP)
	}

	// Inspect one template's MGST schedule under both modes.
	rw, _ := minigraph.Extract(prog, prof, minigraph.IntegerPolicy(), 4, minigraph.DefaultExecParams())
	if rw.MGT.Len() > 0 {
		t := rw.MGT.Template(0)
		plain := t.Schedule(minigraph.DefaultExecParams())
		p2 := minigraph.DefaultExecParams()
		p2.Collapse = true
		coll := t.Schedule(p2)
		fmt.Printf("\nexample template: %s\n", t)
		fmt.Printf("plain MGST banks:     %v (latency %d)\n", plain.Offset, plain.TotalLat)
		fmt.Printf("collapsed MGST banks: %v (latency %d)\n", coll.Offset, coll.TotalLat)
	}
}
