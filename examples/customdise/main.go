// Custom mini-graphs with DISE (§5 of the paper): hand-written productions
// in a .dise section drive a decode-stage rewriting engine. Approved
// codewords stay as handles and execute via the MGT; anything else expands
// in-line — including on processors that do not support a given template.
package main

import (
	"fmt"
	"log"

	"minigraph"
	"minigraph/internal/core"
	"minigraph/internal/dise"
	"minigraph/internal/emu"
	"minigraph/internal/isa"
)

// The paper's own example productions (Figure 1 / §5): handle 12 is the
// add-compare-branch idiom, handle 34 the load-shift-mask idiom.
const diseSection = `
.dise 12
  addl  T.RS1, 2, T.RD
  cmplt T.RD, T.RS2, $d0
  bne   $d0, +0             ; branch back to the handle itself
.end
.dise 34
  ldq   $d0, 16(T.RS1)
  srl   $d0, 14, $d0
  and   $d0, 1, T.RD
.end
`

// A program that uses the two handles as quasi-instructions.
const src = `
        .data
v:      .space 32
        .text
main:   li   r5, 20          ; loop bound for handle 12
        clr  r18
        li   r7, 81921       ; (5 << 14) | 1
        lda  r4, v-16(zero)
        stq  r7, 16(r4)
back:   mg   r18, r5, r18, 12 ; r18 += 2; loop while r18 < r5
        mg   r4, -, r17, 34   ; r17 = (mem[r4+16] >> 14) & 1
        stq  r17, v+8(zero)
        halt
`

func main() {
	// Load the .dise section into the engine; the MGPP compiles each
	// production to MGT format and sets the MGTT approved bits.
	prods, err := dise.ParseSection(diseSection)
	if err != nil {
		log.Fatal(err)
	}
	engine := dise.NewEngine()
	for _, pr := range prods {
		engine.Register(pr)
		ent := engine.MGTT(pr.MGID)
		fmt.Printf("MGID %d: preprocessed=%v approved=%v\n", pr.MGID, ent.Valid, ent.Approved)
	}

	prog, err := minigraph.Assemble("customdise", src)
	if err != nil {
		log.Fatal(err)
	}

	// Path A: a mini-graph processor executes the handles via the MGT.
	mgt := engine.BuildMGT(core.DefaultExecParams())
	stA, err := emu.RunToCompletion(prog, mgt, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMGT execution:      r18=%d r17=%d (%d records)\n",
		stA.Regs[18], stA.Regs[17], stA.InstCount)

	// Path B: a processor without these templates expands the codewords at
	// decode — same results, more instructions ("a processor can always
	// expand a mini-graph it doesn't understand").
	engine.Disapprove(12)
	engine.Disapprove(34)
	back := prog.Symbols["back"]
	expanded, _, err := dise.ExpandProgram(prog, engine, map[isa.PC]isa.PC{back: back})
	if err != nil {
		log.Fatal(err)
	}
	stB, err := emu.RunToCompletion(expanded, nil, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expanded execution: r18=%d r17=%d (%d records)\n",
		stB.Regs[18], stB.Regs[17], stB.InstCount)
	fmt.Printf("results agree: %v; expansion executed %d extra records\n",
		stA.Regs[18] == stB.Regs[18] && stA.Regs[17] == stB.Regs[17] && stA.MemSum == stB.MemSum,
		stB.InstCount-stA.InstCount)
}
