// Trace golden-invariance tests: the engine's capture-once/replay-many
// mode must be observationally indistinguishable from live step-by-step
// emulation. These tests run real experiments both ways and diff the
// structured reports byte-for-byte — the strongest statement that timing
// is independent of how records are delivered.
package minigraph_test

import (
	"bytes"
	"testing"

	"minigraph/internal/core"
	"minigraph/internal/experiments"
	"minigraph/internal/sim"
	"minigraph/internal/uarch"
	"minigraph/internal/workload"
)

// sweepJobs builds one machine-configuration sweep over a single rewritten
// binary: every arm shares one trace identity (same bench, policy, entries
// and record limit) and differs only in DRAM latency.
func sweepJobs(memLats []int) []sim.SimJob {
	pk := sim.PrepareKey{Bench: "sha", Input: workload.InputTrain}
	jobs := make([]sim.SimJob, 0, len(memLats))
	for _, ml := range memLats {
		cfg := uarch.MiniGraph(true)
		cfg.MemLatency = ml
		cfg.MaxRecords = 20_000
		jobs = append(jobs, sim.SimJob{
			Prepare: pk,
			Policy:  core.DefaultPolicy(),
			Entries: 512,
			Config:  cfg,
		})
	}
	return jobs
}

// TestReplayMatchesLiveStream runs one full experiment twice on one small
// benchmark — once through live emulation, once through trace replay — and
// requires byte-identical reports. fig6 covers baseline and mini-graph
// arms, integer and integer-memory policies, and collapsing variants, so
// both the unrewritten and rewritten capture paths are exercised.
func TestReplayMatchesLiveStream(t *testing.T) {
	if testing.Short() {
		t.Skip("timing simulations in -short mode")
	}
	run := func(live bool) []byte {
		o := subsetOpts()
		o.Benchmarks = []string{"sha"}
		o.Engine = sim.New(0).WithLiveStream(live)
		a, err := experiments.Run("fig6", o)
		if err != nil {
			t.Fatal(err)
		}
		data, err := a.Report.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	liveRep := run(true)
	replayRep := run(false)
	if !bytes.Equal(liveRep, replayRep) {
		t.Errorf("live and replay reports differ (%d vs %d bytes), first divergence near byte %d",
			len(liveRep), len(replayRep), firstDiff(liveRep, replayRep))
	}
}

// TestTraceCacheEviction: the in-memory trace cache is byte-bounded. With
// a tiny budget every new binary evicts the previous one's trace, so a
// returning binary re-captures instead of replay-hitting — trading time
// for bounded memory in long-lived services.
func TestTraceCacheEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("timing simulations in -short mode")
	}
	eng := sim.New(0).WithTraceCacheBytes(1)
	run := func(entries, memLat int) {
		jobs := sweepJobs([]int{memLat})
		jobs[0].Entries = entries
		if _, err := eng.Run(t.Context(), jobs); err != nil {
			t.Fatal(err)
		}
	}
	run(512, 0) // capture A
	run(256, 0) // capture B, evicts A
	run(512, 5) // new config over A: the trace was evicted, so re-capture
	if st := eng.Stats(); st.TraceCaptures != 3 {
		t.Fatalf("captures %d, want 3 (1-byte budget must evict between variants): %+v", st.TraceCaptures, st)
	}

	// A real budget keeps the working set: same sequence, zero re-captures.
	roomy := sim.New(0)
	eng = roomy
	run(512, 0)
	run(256, 0)
	run(512, 5)
	if st := roomy.Stats(); st.TraceCaptures != 2 {
		t.Fatalf("captures %d, want 2 under the default budget: %+v", st.TraceCaptures, st)
	}
}

// TestSweepSingleCapture pins the tentpole's economics: a multi-arm
// machine-configuration sweep over one rewritten binary performs exactly
// one functional emulation, and a second sweep with fresh configurations
// performs zero.
func TestSweepSingleCapture(t *testing.T) {
	if testing.Short() {
		t.Skip("timing simulations in -short mode")
	}
	eng := sim.New(0)
	outs, err := eng.Run(t.Context(), sweepJobs([]int{0, 120, 140, 160}))
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.TraceCaptures != 1 {
		t.Errorf("first sweep captured %d traces, want 1 (per-prepare emulation must happen exactly once)", st.TraceCaptures)
	}
	if st.TraceReplayHits != int64(len(outs)-1) {
		t.Errorf("first sweep replay hits %d, want %d", st.TraceReplayHits, len(outs)-1)
	}

	// Second sweep: new configurations (new SimKeys — the outcome cache
	// cannot serve them) over the same binary. Zero captures.
	if _, err := eng.Run(t.Context(), sweepJobs([]int{200, 240})); err != nil {
		t.Fatal(err)
	}
	st2 := eng.Stats()
	if st2.TraceCaptures != st.TraceCaptures {
		t.Errorf("second sweep captured %d new traces, want 0", st2.TraceCaptures-st.TraceCaptures)
	}
	if st2.TraceReplayHits <= st.TraceReplayHits {
		t.Errorf("second sweep produced no replay hits: %+v", st2)
	}
}
