// Benchmarks that regenerate the paper's evaluation artifacts, one per
// figure/table (the experiment index is in the internal/experiments
// package documentation). Each benchmark runs the corresponding experiment
// on a per-suite representative subset so `go test -bench .` stays
// tractable; cmd/mgbench regenerates the full figures over all benchmarks.
//
// Reported custom metrics carry the figure's headline numbers:
// speedup-gmean, coverage-pct, etc.
package minigraph_test

import (
	"strings"
	"testing"

	"minigraph"
	"minigraph/internal/experiments"
	"minigraph/internal/stats"
	"minigraph/internal/workload"
)

// benchSubset holds one representative per suite (kept small so a full
// -bench=. run completes in minutes). The list itself lives in the
// workload package so cmd/mgprof and the golden fixtures use the same
// subset. TestBenchSubsetValid fails fast — listing the registered
// benchmark names — if an entry goes stale.
var benchSubset = workload.BenchSubset()

func subsetOpts() experiments.Options {
	o := experiments.DefaultOptions()
	o.Benchmarks = benchSubset
	return o
}

// TestBenchSubsetValid pins benchSubset to the workload registry so a
// renamed benchmark breaks this test (with the valid names in the error)
// instead of every benchmark and golden fixture after it.
func TestBenchSubsetValid(t *testing.T) {
	for _, name := range benchSubset {
		if _, ok := workload.ByName(name); !ok {
			t.Errorf("benchSubset entry %q is not a registered benchmark; known benchmarks: %s",
				name, strings.Join(workload.Names(), " "))
		}
	}
}

// BenchmarkTableMachineConfig regenerates the §6 machine-configuration
// description.
func BenchmarkTableMachineConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.ConfigTable().String()
	}
}

// BenchmarkFig5Coverage regenerates Figure 5 (top/middle): coverage vs MGT
// entries and mini-graph size.
func BenchmarkFig5Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, cells, err := experiments.Fig5(subsetOpts())
		if err != nil {
			b.Fatal(err)
		}
		var intCov, memCov []float64
		for _, c := range cells {
			if c.Entries == 512 && c.MaxSize == 4 {
				if c.IntMem {
					memCov = append(memCov, c.Coverage)
				} else {
					intCov = append(intCov, c.Coverage)
				}
			}
		}
		b.ReportMetric(100*stats.Mean(intCov), "int-cov-%")
		b.ReportMetric(100*stats.Mean(memCov), "intmem-cov-%")
	}
}

// BenchmarkFig5DomainCoverage regenerates Figure 5 (bottom).
func BenchmarkFig5DomainCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5Domain(experiments.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRobustness regenerates the §6.1 cross-input robustness result.
func BenchmarkRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Robustness(subsetOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Performance regenerates Figure 6: int / int-mem mini-graph
// speedups with plain and collapsing ALU pipelines.
func BenchmarkFig6Performance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig6(subsetOpts())
		if err != nil {
			b.Fatal(err)
		}
		var ints, mems []float64
		for _, r := range rows {
			ints = append(ints, r.Int)
			mems = append(mems, r.IntMem)
		}
		b.ReportMetric(stats.GeoMean(ints), "int-speedup")
		b.ReportMetric(stats.GeoMean(mems), "intmem-speedup")
	}
}

// BenchmarkFig7Serialization regenerates Figure 7: serialization/replay
// policy isolation.
func BenchmarkFig7Serialization(b *testing.B) {
	o := subsetOpts()
	o.Benchmarks = []string{"adpcm.enc", "sha"}
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig7(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyBest regenerates the §6.2 best-per-benchmark-policy rows.
func BenchmarkPolicyBest(b *testing.B) {
	o := subsetOpts()
	o.Benchmarks = []string{"adpcm.enc", "sha"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PolicyBest(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkICacheCompression regenerates the §6.2 compression experiment.
func BenchmarkICacheCompression(b *testing.B) {
	o := subsetOpts()
	o.Benchmarks = []string{"gzip", "sha"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ICache(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Registers regenerates Figure 8 (top): register-file
// reduction.
func BenchmarkFig8Registers(b *testing.B) {
	o := subsetOpts()
	o.Benchmarks = []string{"adpcm.enc", "sha"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8Regs(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Bandwidth regenerates Figure 8 (bottom): width and scheduler
// reduction.
func BenchmarkFig8Bandwidth(b *testing.B) {
	o := subsetOpts()
	o.Benchmarks = []string{"adpcm.enc", "sha"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8Bandwidth(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtraction measures the extraction toolchain itself (enumerate +
// select over a profiled binary).
func BenchmarkExtraction(b *testing.B) {
	wl, _ := workload.ByName("jpeg.comp")
	prog := wl.Build(workload.InputTrain)
	prof, err := minigraph.ProfileOf(prog, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rw, err := minigraph.Extract(prog, prof, minigraph.DefaultPolicy(), 512, minigraph.DefaultExecParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rw.Selection.Coverage(), "coverage-%")
	}
}

// BenchmarkSimulatorBaseline measures timing-simulator throughput.
func BenchmarkSimulatorBaseline(b *testing.B) {
	wl, _ := workload.ByName("sha")
	prog := wl.Build(workload.InputTrain)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := minigraph.Simulate(minigraph.BaselineConfig(), prog, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Retired)/float64(b.Elapsed().Seconds())/1e6*float64(i+1)/float64(i+1), "Minst/s-last")
		b.ReportMetric(res.IPC(), "IPC")
	}
}

// BenchmarkEmulator measures functional-emulator throughput.
func BenchmarkEmulator(b *testing.B) {
	wl, _ := workload.ByName("sha")
	prog := wl.Build(workload.InputTrain)
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		_, n, err := minigraph.Run(prog, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		insts += n
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}
