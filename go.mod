module minigraph

go 1.24
