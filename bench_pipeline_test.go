// Pipeline hot-path benchmarks: unlike bench_test.go, which times whole
// experiment reproductions (extraction + many arms through the engine),
// these isolate the cycle-accurate simulator itself — the per-cycle loop
// the allocation-free refactor targets. Run with
//
//	go test -run xxx -bench BenchmarkPipeline -benchmem .
//
// and compare cycles/s (simulated cycles per wall-clock second) and
// allocs/op across commits; cmd/mgprof runs the same matrix outside the
// testing framework and records it in BENCH_pipeline.json.
//
// Golden-invariance rule: a perf refactor of the hot path must leave every
// testdata/golden/*.json fixture byte-identical (TestGoldenReports with no
// -update). Throughput may move; simulated results may not.
package minigraph_test

import (
	"testing"

	"minigraph"
	"minigraph/internal/workload"
)

func benchPipelineRun(b *testing.B, cfg minigraph.SimConfig, prog *minigraph.Program, mgt *minigraph.MGT) {
	b.Helper()
	b.ReportAllocs()
	var cycles, retired int64
	for i := 0; i < b.N; i++ {
		res, err := minigraph.Simulate(cfg, prog, mgt)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
		retired += res.Retired
	}
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(cycles)/sec, "cycles/s")
		b.ReportMetric(float64(retired)/sec/1e6, "Minst/s")
	}
}

// BenchmarkPipelineBaseline times the baseline machine over the benchmark
// subset (plain binaries, no mini-graph table).
func BenchmarkPipelineBaseline(b *testing.B) {
	for _, name := range workload.BenchSubset() {
		wl, ok := workload.ByName(name)
		if !ok {
			b.Fatalf("unknown benchmark %q", name)
		}
		prog := wl.Build(workload.InputTrain)
		b.Run(name, func(b *testing.B) {
			benchPipelineRun(b, minigraph.BaselineConfig(), prog, nil)
		})
	}
}

// BenchmarkPipelineMiniGraph times the mini-graph machine over the subset,
// with extraction and rewriting done once outside the measured region: the
// handle sequencing, sliding-window and replay machinery all on the clock.
func BenchmarkPipelineMiniGraph(b *testing.B) {
	for _, name := range workload.BenchSubset() {
		wl, ok := workload.ByName(name)
		if !ok {
			b.Fatalf("unknown benchmark %q", name)
		}
		prog := wl.Build(workload.InputTrain)
		prof, err := minigraph.ProfileOf(prog, minigraph.ProfileLimit)
		if err != nil {
			b.Fatal(err)
		}
		rw, err := minigraph.Extract(prog, prof, minigraph.DefaultPolicy(), 512, minigraph.DefaultExecParams())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			benchPipelineRun(b, minigraph.MiniGraphConfig(true), rw.Prog, rw.MGT)
		})
	}
}
