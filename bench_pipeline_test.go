// Pipeline hot-path benchmarks: unlike bench_test.go, which times whole
// experiment reproductions (extraction + many arms through the engine),
// these isolate the cycle-accurate simulator itself — the per-cycle loop
// the allocation-free refactor targets. Run with
//
//	go test -run xxx -bench BenchmarkPipeline -benchmem .
//
// and compare cycles/s (simulated cycles per wall-clock second) and
// allocs/op across commits; cmd/mgprof runs the same matrix outside the
// testing framework and records it in BENCH_pipeline.json.
//
// Golden-invariance rule: a perf refactor of the hot path must leave every
// testdata/golden/*.json fixture byte-identical (TestGoldenReports with no
// -update). Throughput may move; simulated results may not.
package minigraph_test

import (
	"context"
	"testing"

	"minigraph"
	"minigraph/internal/workload"
)

func benchPipelineRun(b *testing.B, cfg minigraph.SimConfig, prog *minigraph.Program, mgt *minigraph.MGT) {
	b.Helper()
	b.ReportAllocs()
	var cycles, retired int64
	for i := 0; i < b.N; i++ {
		res, err := minigraph.Simulate(cfg, prog, mgt)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
		retired += res.Retired
	}
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(cycles)/sec, "cycles/s")
		b.ReportMetric(float64(retired)/sec/1e6, "Minst/s")
	}
}

// BenchmarkPipelineBaseline times the baseline machine over the benchmark
// subset (plain binaries, no mini-graph table).
func BenchmarkPipelineBaseline(b *testing.B) {
	for _, name := range workload.BenchSubset() {
		wl, ok := workload.ByName(name)
		if !ok {
			b.Fatalf("unknown benchmark %q", name)
		}
		prog := wl.Build(workload.InputTrain)
		b.Run(name, func(b *testing.B) {
			benchPipelineRun(b, minigraph.BaselineConfig(), prog, nil)
		})
	}
}

// sweepArms is the canonical multi-arm sweep: every subset benchmark's
// mini-graph binary timed under several DRAM latencies. All arms of one
// benchmark share a single trace identity, so the replay engine emulates
// each binary once and replays it everywhere — the configuration-sweep
// shape of the paper's figures. cmd/mgprof measures the same matrix
// outside the testing framework and records the capture/replay split in
// BENCH_pipeline.json.
var sweepMemLats = []int{0, 110, 120, 130, 140, 150, 160, 170}

func sweepArms() []minigraph.SimJob {
	var jobs []minigraph.SimJob
	for _, name := range workload.BenchSubset() {
		for _, ml := range sweepMemLats {
			cfg := minigraph.MiniGraphConfig(true)
			cfg.MemLatency = ml
			jobs = append(jobs, minigraph.SimJob{
				Prepare: minigraph.PrepareKey{Bench: name, Input: minigraph.InputTrain},
				Policy:  minigraph.DefaultPolicy(),
				Entries: 512,
				Config:  cfg,
			})
		}
	}
	return jobs
}

// benchSweep runs the whole sweep on a cold engine per iteration and
// reports arms per wall-clock second plus the engine's capture counters.
// Benchmark preparation (build, CFG, liveness, profile) is identical in
// both modes and memoized since PR 1, so — like extraction in
// BenchmarkPipelineMiniGraph — it is warmed outside the measured region;
// the clock sees extraction, capture/emulation, and timing simulation.
func benchSweep(b *testing.B, live, gang bool) {
	b.Helper()
	b.ReportAllocs()
	jobs := sweepArms()
	var captures, replays int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := minigraph.NewEngine(0).WithLiveStream(live).WithGangReplay(gang)
		for _, name := range workload.BenchSubset() {
			pk := minigraph.PrepareKey{Bench: name, Input: minigraph.InputTrain}
			if _, err := eng.Prepare(context.Background(), pk); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := eng.Run(context.Background(), jobs); err != nil {
			b.Fatal(err)
		}
		st := eng.Stats()
		captures += st.TraceCaptures
		replays += st.TraceReplayHits
	}
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(len(jobs))*float64(b.N)/sec, "arms/s")
	}
	if b.N > 0 {
		b.ReportMetric(float64(captures)/float64(b.N), "captures/sweep")
		b.ReportMetric(float64(replays)/float64(b.N), "replays/sweep")
	}
}

// BenchmarkSweep times the multi-arm configuration sweep through the
// trace-replay engine with gang replay disabled (one functional emulation
// per benchmark, N independent timed replays) — the solo baseline gang
// execution is measured against.
func BenchmarkSweep(b *testing.B) { benchSweep(b, false, false) }

// BenchmarkSweepGang is the same sweep with gang replay (the engine
// default): each benchmark's eight arms interleave over one shared-decode
// trace traversal. Reports are byte-identical to BenchmarkSweep's
// (TestGangMatchesSequential); only throughput may differ.
func BenchmarkSweepGang(b *testing.B) { benchSweep(b, false, true) }

// BenchmarkSweepLiveStream is the same sweep with live step-by-step
// emulation inside every arm — the pre-trace behavior, kept measurable so
// the replay speedup stays an observable number rather than a changelog
// claim.
func BenchmarkSweepLiveStream(b *testing.B) { benchSweep(b, true, false) }

// BenchmarkPipelineMiniGraph times the mini-graph machine over the subset,
// with extraction and rewriting done once outside the measured region: the
// handle sequencing, sliding-window and replay machinery all on the clock.
func BenchmarkPipelineMiniGraph(b *testing.B) {
	for _, name := range workload.BenchSubset() {
		wl, ok := workload.ByName(name)
		if !ok {
			b.Fatalf("unknown benchmark %q", name)
		}
		prog := wl.Build(workload.InputTrain)
		prof, err := minigraph.ProfileOf(prog, minigraph.ProfileLimit)
		if err != nil {
			b.Fatal(err)
		}
		rw, err := minigraph.Extract(prog, prof, minigraph.DefaultPolicy(), 512, minigraph.DefaultExecParams())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			benchPipelineRun(b, minigraph.MiniGraphConfig(true), rw.Prog, rw.MGT)
		})
	}
}
