package uarch

import "sort"

// This file implements the pipeline's event timer: a hierarchical timing
// wheel with a sorted overflow bucket.
//
// The previous implementation was a single fixed ring of eventHorizon
// (1024) slots whose schedule() CLAMPED any event farther out than the
// horizon to cycle+1023 — silently firing long-latency events early. Most
// call sites recovered by re-checking and re-scheduling, but any event
// whose handler trusted the fire cycle (a completion whose latency alone
// exceeds the horizon) completed early, and every clamped event burned a
// spurious wakeup per horizon crossed. The wheel below is overflow-safe by
// construction: an event scheduled at cycle T fires at exactly cycle T, no
// matter how far away T is.
//
// Structure (classic hierarchical timing wheel):
//
//   - near: one slot per cycle for the current nearSlots-cycle "page".
//   - far: one slot per page for the next farSlots pages. When the clock
//     crosses into a new page, that page's far slot is redistributed into
//     the near wheel.
//   - overflow: events beyond the far wheel's span, kept sorted by fire
//     cycle; at each page boundary the events that came within the span
//     migrate into the far wheel.
//
// All slot backing arrays are retained and reused (len reset to 0), so the
// steady-state hot loop performs no allocations. Events that share a fire
// cycle are processed in the order they were scheduled, exactly like the
// old flat ring, so simulation results are bit-identical for configurations
// that never exceeded the old horizon.

const (
	nearBits  = 10
	nearSlots = 1 << nearBits // cycles per page
	nearMask  = nearSlots - 1
	farSlots  = 64 // pages covered by the second level
	farMask   = farSlots - 1
	wheelSpan = int64(nearSlots) * int64(farSlots) // cycles covered by near+far
)

// event is one scheduled wakeup. The epoch snapshot invalidates the event
// if the uop is replayed, squashed, or recycled before it fires.
type event struct {
	at    int64
	kind  evKind
	u     *uop
	epoch int
}

type eventWheel struct {
	near     [nearSlots][]event
	far      [farSlots][]event
	overflow []event // sorted by at ascending; stable for equal at
}

// add schedules e (e.at must be > now; the caller guarantees it).
func (w *eventWheel) add(now int64, e event) {
	page, nowPage := e.at>>nearBits, now>>nearBits
	switch {
	case page == nowPage:
		s := e.at & nearMask
		w.near[s] = append(w.near[s], e)
	case page-nowPage < int64(farSlots):
		s := page & farMask
		w.far[s] = append(w.far[s], e)
	default:
		// Beyond the far wheel: insert into the sorted overflow bucket.
		// Insertion is rare (it takes a multi-thousand-cycle latency chain
		// to get here), so the copy cost is irrelevant.
		i := sort.Search(len(w.overflow), func(i int) bool { return w.overflow[i].at > e.at })
		w.overflow = append(w.overflow, event{})
		copy(w.overflow[i+1:], w.overflow[i:])
		w.overflow[i] = e
	}
}

// take returns the events due at cycle now, resetting their slot for
// reuse. The returned slice is valid until the slot's cycle comes around
// again (one full page), far longer than the caller's processing loop.
// Call exactly once per cycle with a monotonically increasing clock.
func (w *eventWheel) take(now int64) []event {
	if now&nearMask == 0 {
		w.promote(now)
	}
	s := now & nearMask
	evs := w.near[s]
	w.near[s] = evs[:0]
	return evs
}

// promote runs at each page boundary: overflow events that came within the
// far wheel's span migrate inward, and the entered page's far slot is
// redistributed into the near wheel.
func (w *eventWheel) promote(now int64) {
	nowPage := now >> nearBits
	if len(w.overflow) > 0 {
		maxPage := nowPage + int64(farSlots) - 1
		n := 0
		for n < len(w.overflow) && w.overflow[n].at>>nearBits <= maxPage {
			n++
		}
		if n > 0 {
			for _, e := range w.overflow[:n] {
				if e.at>>nearBits == nowPage {
					w.near[e.at&nearMask] = append(w.near[e.at&nearMask], e)
				} else {
					w.far[(e.at>>nearBits)&farMask] = append(w.far[(e.at>>nearBits)&farMask], e)
				}
			}
			w.overflow = w.overflow[:copy(w.overflow, w.overflow[n:])]
		}
	}
	s := nowPage & farMask
	for _, e := range w.far[s] {
		w.near[e.at&nearMask] = append(w.near[e.at&nearMask], e)
	}
	w.far[s] = w.far[s][:0]
}
