package uarch

import (
	"minigraph/internal/core"
	"minigraph/internal/emu"
	"minigraph/internal/isa"
	"minigraph/internal/uarch/bpred"
	"minigraph/internal/uarch/rename"
	"minigraph/internal/uarch/sched"
)

// uop is one in-flight operation: a singleton instruction or a mini-graph
// handle. The handle occupies exactly one uop — one ROB entry, one scheduler
// entry, at most one LSQ entry and at most one physical register — which is
// precisely the capacity amplification the paper measures.
type uop struct {
	// Scheduler-scan state leads the struct: issue() walks every scheduler
	// entry every cycle touching exactly these fields, so keeping them in
	// the first cache line keeps the select loop from dragging the whole
	// ~300-byte uop through the cache per entry.
	inIQ      bool
	issued    bool
	squashed  bool
	completed bool
	nsrcs     int
	srcs      [2]int // physical registers (rename.NoReg = always-ready/zero)
	dest      int    // physical register or rename.NoReg
	iqFreeAt  int64  // scheduler-entry release for issue-freed singletons
	minIssue  int64  // earliest re-issue after a mini-graph replay
	wakeAt    int64  // sound lower bound on the sources-ready cycle
	heldIdx   int32  // index in the held set (valid while issued && inIQ)

	// Mini-graph metadata (nil for singletons).
	mg   *core.ExecInfo
	tmpl *core.Template

	rec emu.Record // copied from the source (a live slot may be reused)

	prev int // previously mapped physical register (freed at retire)

	// Scheduling state.
	issueAt int64
	epoch   int // invalidates in-flight events on replay/squash/recycle

	// Pool lifecycle. dead marks a retired or squashed uop awaiting its
	// scheduled events to drain; pooled marks a uop on the free list;
	// pendingEv counts events in the wheel that reference this uop.
	dead      bool
	pooled    bool
	pendingEv int32

	// Reservations taken at issue (for cancellation on replay).
	resWrPortAt int64 // -1 if none
	resAP       int   // AP index, -1 if none
	resAPOutAt  int64
	resFU       sched.Resource
	resFUAt     int64
	hasResFU    bool
	resFUBmp    bool // reserved via the sliding-window FUBMP

	// Memory state.
	inLSQ    bool
	execMem  bool  // memory op has executed (address resolved)
	fwdFrom  int64 // seq of forwarding store, -1 = from cache
	waitSt   int64 // store seq this op must wait for (store sets), -1 none
	dataAt   int64 // cycle the loaded value is available
	missAt   int64 // pending miss resolution (loads), 0 if hit
	replayed int   // replay count (stats)

	// Branch state. bi carries the predictor's per-branch snapshot (history
	// and provider bookkeeping) by value from prediction to resolve/retire.
	predTaken   bool
	predTarget  isa.PC
	mispredict  bool // full mispredict: fetch stalled until resolution
	bi          bpred.BranchInfo
	resolveAt   int64
	btbMissOnly bool // direct taken branch missing in BTB (small bubble)
}

// reset returns u to its dispatch-ready blank state with the given epoch:
// every field zeroes except the sentinels, which take their "none" values.
// The record is deliberately NOT cleared — fetch overwrites it in full
// before anything reads it, and the uop recycles once per retired record,
// so skipping the ~100-byte clear is a measurable share of the hot loop.
// A field added to the struct must be cleared here too.
func (u *uop) reset(epoch int) {
	u.inIQ, u.issued, u.squashed, u.completed = false, false, false, false
	u.nsrcs, u.srcs[0], u.srcs[1] = 0, 0, 0
	u.dest, u.prev = rename.NoReg, rename.NoReg
	u.iqFreeAt, u.minIssue, u.wakeAt, u.heldIdx = 0, 0, 0, 0
	u.mg, u.tmpl = nil, nil
	u.issueAt, u.epoch = 0, epoch
	u.dead, u.pooled, u.pendingEv = false, false, 0
	u.resWrPortAt, u.resAP, u.resAPOutAt = -1, -1, 0
	u.resFU, u.resFUAt, u.hasResFU, u.resFUBmp = 0, 0, false, false
	u.inLSQ, u.execMem = false, false
	u.fwdFrom, u.waitSt = -1, -1
	u.dataAt, u.missAt, u.replayed = 0, 0, 0
	u.predTaken, u.predTarget, u.mispredict = false, 0, false
	u.bi = bpred.BranchInfo{}
	u.resolveAt, u.btbMissOnly = 0, false
}

func (u *uop) isLoad() bool  { return u.rec.IsLoad }
func (u *uop) isStore() bool { return u.rec.IsStore }
func (u *uop) isMem() bool   { return u.rec.IsLoad || u.rec.IsStore }
func (u *uop) isMG() bool    { return u.mg != nil }

// memOffset is the cycle offset from issue at which the memory operation
// executes (0 for singletons, the MGST bank for handles).
func (u *uop) memOffset() int64 {
	if u.mg != nil && u.mg.MemOffset > 0 {
		return int64(u.mg.MemOffset)
	}
	return 0
}

// outLat is the latency from issue to output availability.
func (u *uop) outLat(cfg *Config) int {
	if u.mg != nil {
		return u.mg.Lat
	}
	if u.isLoad() {
		return cfg.LoadLat
	}
	return u.rec.Op.Info().Latency
}

// totalLat is the latency from issue to completion of all effects.
func (u *uop) totalLat(cfg *Config) int {
	if u.mg != nil {
		return u.mg.TotalLat
	}
	if u.isLoad() {
		return cfg.LoadLat
	}
	return u.rec.Op.Info().Latency
}

// overlaps reports whether two memory accesses intersect.
func overlaps(a isa.Addr, an int, b isa.Addr, bn int) bool {
	return a < b+isa.Addr(bn) && b < a+isa.Addr(an)
}

// covers reports whether access (a,an) fully covers (b,bn).
func covers(a isa.Addr, an int, b isa.Addr, bn int) bool {
	return a <= b && b+isa.Addr(bn) <= a+isa.Addr(an)
}

// rob is a ring buffer of in-flight uops in program order. The buffer is
// rounded up to a power of two so slot math is a mask; full() enforces the
// exact logical capacity, so timing never observes the rounding.
type rob struct {
	buf  []*uop
	mask int
	cap  int
	head int
	n    int
}

func newROB(size int) *rob {
	bufSize := 1
	for bufSize < size {
		bufSize <<= 1
	}
	return &rob{buf: make([]*uop, bufSize), mask: bufSize - 1, cap: size}
}

func (r *rob) full() bool  { return r.n == r.cap }
func (r *rob) empty() bool { return r.n == 0 }
func (r *rob) len() int    { return r.n }

func (r *rob) push(u *uop) {
	r.buf[(r.head+r.n)&r.mask] = u
	r.n++
}

func (r *rob) front() *uop {
	return r.buf[r.head]
}

func (r *rob) popFront() *uop {
	u := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & r.mask
	r.n--
	return u
}

// popBack removes the youngest entry (squash walk).
func (r *rob) popBack() *uop {
	i := (r.head + r.n - 1) & r.mask
	u := r.buf[i]
	r.buf[i] = nil
	r.n--
	return u
}

func (r *rob) back() *uop {
	if r.n == 0 {
		return nil
	}
	return r.buf[(r.head+r.n-1)&r.mask]
}

// at returns the i-th oldest entry.
func (r *rob) at(i int) *uop { return r.buf[(r.head+i)&r.mask] }
