package uarch

import (
	"minigraph/internal/isa"
	"minigraph/internal/uarch/rename"
	"minigraph/internal/uarch/sched"
)

// issue is the select stage: oldest-first over the scheduler entries,
// subject to issue width, register-file read ports, functional units (via
// the sliding-window bitmap), ALU-pipeline entry/output conflicts, write
// ports, and — for integer-memory handles — the FUBMP mass reservation and
// the one-heterogeneous-handle-per-cycle rule (§4.3).
func (p *Pipeline) issue() {
	slots := p.cfg.IssueWidth
	readPorts := p.cfg.RFReadPorts
	intMemBudget := p.cfg.IntMemIssuePerCycle
	for i := range p.apBusy {
		p.apBusy[i] = false
	}

	// Singleton scheduler slots whose two-cycle post-issue hold (§4.1)
	// expires now are released before the select pass, exactly when the
	// fused compaction used to drop them.
	p.drainIQFrees()

	// Select oldest-first over the candidate array — not-yet-issued entries
	// in program order. Issued entries live in the held set and cost the
	// scan nothing; an entry that issues here migrates over. Entry release
	// policy — §4.1: singleton entries free at issue (held two extra cycles
	// so the speculative-wake-up replay shadow can still reach them); loads
	// hold their entries until the data is confirmed, and handles free
	// theirs when the MGST sequencer reaches the terminal instruction
	// (completion).
	cand := p.iqCand
	w := 0
	for r := 0; r < len(cand); r++ {
		u := cand[r]
		// wakeAt is a sound lower bound on the cycle every source is ready
		// (see refreshWake): sleeping entries cost one comparison, and the
		// authoritative per-source check below still gates actual issue.
		if slots == 0 || u.wakeAt > p.cycle || u.cycleBlocked(p) {
			cand[w] = u
			w++
			continue
		}
		nports := 0
		for s := 0; s < u.nsrcs; s++ {
			if u.srcs[s] != rename.NoReg {
				if p.readyAt[u.srcs[s]] > p.cycle {
					nports = -1
					break
				}
				nports++
			}
		}
		if nports < 0 || nports > readPorts || // source not ready / out of read ports
			(u.isMem() && !p.memIssueAllowed(u)) {
			cand[w] = u
			w++
			continue
		}

		outLat := u.outLat(&p.cfg)
		needWr := u.dest != rename.NoReg
		if needWr && !p.window.Available(sched.ResWrPort, p.cycle+int64(outLat)) {
			cand[w] = u
			w++
			continue
		}

		// Functional-unit acquisition.
		if !p.acquireFU(u, intMemBudget) {
			cand[w] = u
			w++
			continue
		}
		if u.isMG() && !u.mg.Integer {
			intMemBudget--
			p.stats.IntMemIssued++
		}

		// Commit the issue: the entry leaves the candidates for the held
		// set.
		slots--
		readPorts -= nports
		u.issued = true
		u.issueAt = p.cycle
		p.heldAdd(u)
		if !u.isMG() && !u.isLoad() {
			u.iqFreeAt = p.cycle + 2
			slot := &p.iqFreeRing[u.iqFreeAt&3]
			*slot = append(*slot, uopRef{u: u, epoch: u.epoch})
		}
		p.stats.Issued++
		if needWr {
			p.window.Reserve(sched.ResWrPort, p.cycle+int64(outLat))
			u.resWrPortAt = p.cycle + int64(outLat)
			// Wake-up: dependants observe the value after the output
			// latency; a pipelined (2-cycle) scheduler raises every
			// single-cycle producer to an effective latency of 2, which
			// mini-graphs escape internally (pre-scheduled) and externally
			// (LAT >= 2) — §6.3.
			eff := outLat
			if eff < p.cfg.SchedCycles {
				eff = p.cfg.SchedCycles
			}
			p.readyAt[u.dest] = p.cycle + int64(eff)
			p.wakeConsumers(u.dest)
		}
		if u.isMem() {
			p.execMem(u)
		}
		if u.rec.IsCtrl {
			brOff := int64(0)
			if u.mg != nil && u.mg.BranchOffset > 0 {
				brOff = int64(u.mg.BranchOffset)
			}
			u.resolveAt = p.cycle + int64(p.cfg.RegReadCycles) + brOff + 1
			if u.mispredict {
				p.schedule(u.resolveAt, evResolve, u)
			}
		}
		total := u.totalLat(&p.cfg)
		if total < 1 {
			total = 1
		}
		p.schedule(p.cycle+int64(total), evComplete, u)
	}
	for i := w; i < len(cand); i++ {
		cand[i] = nil
	}
	p.iqCand = cand[:w]
}

// cycleBlocked reports scheduling holds that are not operand readiness.
func (u *uop) cycleBlocked(p *Pipeline) bool {
	return p.cycle < u.minIssue
}

// memIssueAllowed enforces load/store scheduling policy: store-set
// synchronisation and in-order store data requirements.
func (p *Pipeline) memIssueAllowed(u *uop) bool {
	if u.waitSt < 0 {
		return true
	}
	// Find the predecessor store in the LSQ; it must have executed
	// (resolved its address). If it already left the window, the wait is
	// satisfied.
	for i := 0; i < p.lsq.len(); i++ {
		e := p.lsq.at(i)
		if e.rec.Seq == u.waitSt {
			if e.isStore() && !e.execMem {
				return false
			}
			break
		}
		if e.rec.Seq > u.waitSt {
			break
		}
	}
	u.waitSt = -1
	return true
}

// acquireFU reserves the functional units for u at the current cycle,
// returning false when unavailable. The reservation details are recorded on
// the uop so a replay can cancel them.
func (p *Pipeline) acquireFU(u *uop, intMemBudget int) bool {
	now := p.cycle
	if u.isMG() {
		if u.mg.Integer {
			// Integer mini-graph: enters an ALU pipeline; conflicts are the
			// entry slot (one per AP per cycle) and the shared output port
			// at now+LAT.
			if !p.window.Available(sched.ResAP, now) {
				return false
			}
			outLat := u.mg.Lat
			if outLat == 0 {
				outLat = 1 // graphs without register output still exit once
			}
			for i, ap := range p.aps {
				if p.apBusy[i] || !ap.CanAccept(now, outLat) {
					continue
				}
				p.apBusy[i] = true
				ap.Accept(now, outLat)
				p.window.Reserve(sched.ResAP, now)
				u.resAP, u.resAPOutAt = i, now+int64(outLat)
				u.resFU, u.resFUAt, u.hasResFU = sched.ResAP, now, true
				p.stats.IssuedOnAP++
				return true
			}
			return false
		}
		// Integer-memory mini-graph: sliding-window mass reservation.
		if intMemBudget <= 0 {
			return false
		}
		if !p.window.CheckFUBmp(now, u.mg) {
			return false
		}
		p.window.ReserveFUBmp(now, u.mg)
		u.resFUBmp = true
		u.resFUAt = now
		return true
	}

	// Singletons.
	var res sched.Resource
	switch u.rec.Op.Info().Class {
	case isa.ClassLoad:
		res = sched.ResLoad
	case isa.ClassStore:
		res = sched.ResStore
	case isa.ClassFPALU, isa.ClassFPMul, isa.ClassFPDiv:
		res = sched.ResFP
	case isa.ClassIntMul:
		res = sched.ResALU // multiplies use a conventional ALU slot
	default:
		// Single-cycle integer ops and branches: prefer a conventional
		// ALU; fall back to an ALU pipeline, which executes singletons in
		// its first stage with no penalty (§4.2).
		if p.window.Available(sched.ResALU, now) {
			res = sched.ResALU
		} else if p.cfg.APs > 0 && p.window.Available(sched.ResAP, now) {
			for i, ap := range p.aps {
				if p.apBusy[i] || !ap.CanAccept(now, 1) {
					continue
				}
				p.apBusy[i] = true
				ap.Accept(now, 1)
				p.window.Reserve(sched.ResAP, now)
				u.resAP, u.resAPOutAt = i, now+1
				u.resFU, u.resFUAt, u.hasResFU = sched.ResAP, now, true
				p.stats.IssuedOnAP++
				return true
			}
			return false
		} else {
			return false
		}
	}
	if !p.window.Available(res, now) {
		return false
	}
	p.window.Reserve(res, now)
	u.resFU, u.resFUAt, u.hasResFU = res, now, true
	return true
}

// execMem performs the memory-stage work the moment the operation issues:
// address resolution, store-to-load forwarding, data-cache access, and
// memory-ordering violation detection. Timing offsets (the MGST bank of a
// handle's memory op) shift the access time.
func (p *Pipeline) execMem(u *uop) {
	t := p.cycle + u.memOffset()
	u.execMem = true
	if u.isStore() {
		// Violation scan: younger loads that already executed and overlap
		// this store read stale data (unless they forwarded from a store
		// between us and them).
		for i := 0; i < p.lsq.len(); i++ {
			l := p.lsq.at(i)
			if l.rec.Seq <= u.rec.Seq || !l.isLoad() || !l.execMem {
				continue
			}
			if overlaps(l.rec.EA, l.rec.MemSize, u.rec.EA, u.rec.MemSize) && l.fwdFrom < u.rec.Seq {
				p.ssets.Violation(l.rec.PC, u.rec.PC)
				if !p.violPending || l.rec.Seq < p.violSeq {
					p.violPending = true
					p.violSeq = l.rec.Seq
				}
				break
			}
		}
		return
	}

	p.execLoad(u, t)
	// Train the prefetcher on every issued load and push its targets into
	// the L1D after the demand access, so a prefetch can never evict the
	// line the triggering load is about to touch.
	if p.pf != nil {
		n := p.pf.OnAccess(u.rec.PC, u.rec.EA, p.pfBuf[:])
		for i := 0; i < n; i++ {
			p.dcache.Prefetch(t, p.pfBuf[i])
		}
	}
}

// execLoad is the load half of execMem: store-to-load forwarding, then the
// data-cache access with speculative-wake-up miss discovery.
func (p *Pipeline) execLoad(u *uop, t int64) {
	// Try store-to-load forwarding from the youngest older store.
	var src *uop
	for i := 0; i < p.lsq.len(); i++ {
		e := p.lsq.at(i)
		if e.rec.Seq >= u.rec.Seq {
			break
		}
		if e.isStore() && e.execMem && overlaps(e.rec.EA, e.rec.MemSize, u.rec.EA, u.rec.MemSize) {
			src = e
		}
	}
	if src != nil {
		u.fwdFrom = src.rec.Seq
		if covers(src.rec.EA, src.rec.MemSize, u.rec.EA, u.rec.MemSize) {
			u.dataAt = t + int64(p.cfg.LoadLat)
		} else {
			// Partial overlap: the value must merge store and cache data;
			// charge a conservative penalty.
			u.dataAt = t + int64(p.cfg.LoadLat) + 2
			if u.dest != rename.NoReg && p.readyAt[u.dest] < u.dataAt {
				p.readyAt[u.dest] = u.dataAt
			}
		}
		p.stats.Forwards++
		return
	}

	ready, hit := p.dcache.Access(t, u.rec.EA, false)
	if hit {
		u.dataAt = t + int64(p.cfg.LoadLat)
		return
	}
	// Miss: the speculative wake-up at hit latency was wrong; dependants
	// that issue in the shadow replay when the miss is discovered.
	u.dataAt = ready
	u.missAt = t + int64(p.cfg.LoadLat) + 1
	p.schedule(u.missAt, evMissDiscover, u)
}
