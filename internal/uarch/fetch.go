package uarch

import (
	"minigraph/internal/isa"
)

// fetch models the front end: instruction-cache access, branch/target
// prediction, and delivery into the fetch-to-rename pipe. Fetch stalls on
// instruction-cache misses and on (full) branch mispredictions — the
// stall-until-resolve approximation of wrong-path execution. Nops (the
// residue of nop-fill rewriting) consume fetch slots and I-cache bandwidth
// but are dropped before rename, which is exactly the paper's
// no-compression measurement mode: fetch bandwidth is not amplified, all
// later stages are.
func (p *Pipeline) fetch() {
	if p.pendingBr != nil || p.cycle < p.fetchStall || p.cycle < p.icacheFill {
		return
	}
	slots := p.cfg.FetchWidth
	for slots > 0 && !p.frontend.full() {
		// Records are delivered straight into a uop's record slot — no
		// staging copy. A uop whose record turns out to be a nop (dropped
		// before rename) goes straight back to the pool untouched.
		var u *uop
		if p.pendingU != nil {
			u, p.pendingU = p.pendingU, nil
		} else {
			u = p.newUop()
			if !p.src.NextInto(&u.rec) {
				p.returnFresh(u)
				return
			}
		}
		// Instruction cache: one probe per line transition.
		line := isa.Addr(u.rec.PC.ByteAddr()) &^ isa.Addr(p.cfg.ICache.LineSize-1)
		if !p.haveFetchLine || line != p.lastFetchLine {
			ready, hit := p.icache.Access(p.cycle, u.rec.PC.ByteAddr(), false)
			p.lastFetchLine, p.haveFetchLine = line, true
			if !hit {
				p.icacheFill = ready
				p.pendingU = u
				return
			}
		}
		slots--
		p.stats.FetchedRecords++
		if u.rec.Op == isa.OpNop {
			p.stats.FetchedNops++
			p.returnFresh(u)
			continue
		}

		if u.rec.MGID >= 0 {
			u.tmpl = p.mgt.Template(u.rec.MGID)
			u.mg = p.mgt.Info(u.rec.MGID)
		}

		stop := false
		if u.rec.IsCtrl {
			stop = p.predictControl(u)
		}
		p.frontend.push(feEntry{u: u, readyAt: p.cycle + int64(p.cfg.FrontendDepth)})
		if stop {
			return
		}
	}
}

// predictControl runs the fetch-stage predictors for a control transfer and
// returns true if fetch must stop this cycle (taken branch, misprediction,
// or BTB-miss bubble).
func (p *Pipeline) predictControl(u *uop) (stopFetch bool) {
	rec := &u.rec
	// RAS maintenance happens at fetch; because fetch stalls on
	// mispredictions, the stack never needs repair.
	if rec.IsCall {
		p.pred.PushRAS(rec.FallPC)
	}

	if rec.CondBranch {
		u.predTaken = p.pred.PredictDirection(rec.PC, &u.bi)
	} else {
		u.predTaken = true
	}

	targetKnown := false
	if u.predTaken {
		if rec.IsRet {
			p.stats.RASPops++
			if t, ok := p.pred.PopRAS(); ok {
				u.predTarget, targetKnown = t, true
				if t == rec.NextPC {
					p.stats.RASHits++
				}
			}
		} else {
			p.stats.BTBLookups++
			if t, ok := p.pred.PredictTarget(rec.PC); ok {
				p.stats.BTBHits++
				u.predTarget, targetKnown = t, true
			}
		}
	}

	dirWrong := u.predTaken != rec.Taken
	switch {
	case dirWrong:
		u.mispredict = true
	case !rec.Taken:
		// Correctly predicted not-taken: fetch continues.
		return false
	case targetKnown && u.predTarget == rec.NextPC:
		// Correctly predicted taken: stop at the taken branch.
		return true
	case !targetKnown && !rec.Indirect:
		// Direct branch, right direction, no BTB entry: the target is
		// computed at decode — a short fetch bubble, not a full flush.
		u.btbMissOnly = true
		p.stats.BTBMissBubbles++
		p.fetchStall = p.cycle + 2
		return true
	default:
		// Wrong target (or indirect miss): full misprediction.
		u.mispredict = true
	}
	if u.mispredict {
		p.stats.Mispredicts++
		p.pendingBr = u
	}
	return true
}

// dispatch renames up to RenameWidth front-end uops in order and inserts
// them into the ROB, scheduler, and load/store queue. A handle dispatches
// exactly like a singleton: one ROB entry, one scheduler entry, at most one
// LSQ entry, at most one physical register — this is where rename
// bandwidth and register-file capacity amplification come from.
func (p *Pipeline) dispatch() {
	for n := 0; n < p.cfg.RenameWidth && p.frontend.len() > 0; n++ {
		fe := p.frontend.front()
		if fe.readyAt > p.cycle {
			return
		}
		u := fe.u
		if p.rob.full() {
			p.stats.StallROB++
			return
		}
		needIQ := u.rec.Op != isa.OpHalt
		if needIQ && p.iqLen() >= p.cfg.IQSize {
			p.stats.StallIQ++
			return
		}
		if u.isMem() && p.lsq.full() {
			p.stats.StallLSQ++
			return
		}
		if u.rec.Dest != isa.RNone && p.ren.FreeCount() == 0 {
			p.stats.StallRegs++
			return
		}
		p.frontend.popFront()

		// Rename sources then destination (same-register reuse within one
		// instruction reads the old mapping, as in hardware).
		for i := 0; i < u.rec.NSrcs; i++ {
			u.srcs[u.nsrcs] = p.ren.Lookup(u.rec.Srcs[i])
			u.nsrcs++
		}
		if u.rec.Dest != isa.RNone {
			phys, undo, ok := p.ren.Allocate(u.rec.Dest)
			if !ok {
				panic("uarch: free list raced") // guarded above
			}
			u.dest, u.prev = phys, undo.Prev
			p.readyAt[phys] = notReady
			// A fresh register life starts with no wake-up subscribers;
			// whatever the previous life left (squash paths skip the
			// issue-time clear) is stale by epoch.
			p.clearWaiters(phys)
		}

		p.rob.push(u)
		if needIQ {
			u.inIQ = true
			p.refreshWake(u)
			p.candPush(u)
		} else {
			u.completed = true // halt: no execution
		}
		if u.isMem() {
			u.inLSQ = true
			p.lsq.push(u)
			if u.isStore() {
				u.waitSt = p.ssets.DispatchStore(u.rec.PC, u.rec.Seq)
				p.stats.Stores++
			} else {
				u.waitSt = p.ssets.DispatchLoad(u.rec.PC)
				p.stats.Loads++
			}
		}
	}
}
