package uarch

import (
	"math/rand"
	"testing"

	"minigraph/internal/asm"
)

// TestScheduleBeyondOldHorizonFiresExactly is the regression test for the
// event-wheel overflow bug: the previous fixed 1024-slot wheel CLAMPED any
// event scheduled ≥ 1024 cycles out to cycle+1023, silently firing
// long-latency completions early. Against that implementation this test
// fails (the uop completes at cycle 1023); with the hierarchical wheel +
// overflow bucket the event fires at exactly the scheduled cycle.
func TestScheduleBeyondOldHorizonFiresExactly(t *testing.T) {
	prog := asm.MustAssemble("x", "main: halt\n")
	for _, dist := range []int64{1, 2, 1023, 1024, 1025, 3000, wheelSpan - 1, wheelSpan, wheelSpan + 5, 3 * wheelSpan} {
		p := New(Baseline(), prog, nil)
		u := p.newUop()
		p.schedule(p.cycle+dist, evComplete, u)
		var firedAt int64 = -1
		for c := int64(0); c <= dist+10; c++ {
			p.cycle++
			p.processEvents()
			if u.completed {
				firedAt = p.cycle
				break
			}
		}
		if firedAt != dist {
			t.Errorf("event scheduled %d cycles out fired at cycle %d, want exactly %d", dist, firedAt, dist)
		}
	}
}

// TestEventWheelRandomizedExactness hammers the wheel with events scheduled
// from random cycles at random distances — spanning the near wheel, the far
// wheel and the sorted overflow bucket — and checks every single one fires
// at exactly its scheduled cycle, in scheduling order within a cycle.
func TestEventWheelRandomizedExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var w eventWheel
	const horizon = 600_000
	want := make(map[int64]int) // fire cycle -> expected events
	u := &uop{}

	pending := 0
	for now := int64(0); now <= horizon; now++ {
		if now > 0 {
			for _, e := range w.take(now) {
				if e.at != now {
					t.Fatalf("event for cycle %d fired at cycle %d", e.at, now)
				}
				want[now]--
				pending--
			}
			if want[now] != 0 {
				t.Fatalf("cycle %d: %d scheduled events did not fire", now, want[now])
			}
			delete(want, now)
		}
		if now < horizon-3*wheelSpan && rng.Intn(4) == 0 {
			n := rng.Intn(3) + 1
			for i := 0; i < n; i++ {
				var dist int64
				switch rng.Intn(4) {
				case 0:
					dist = 1 + rng.Int63n(nearSlots)
				case 1:
					dist = 1 + rng.Int63n(wheelSpan)
				case 2:
					dist = wheelSpan + rng.Int63n(wheelSpan)
				default:
					dist = 1 + rng.Int63n(3*wheelSpan)
				}
				w.add(now, event{at: now + dist, u: u, epoch: u.epoch})
				want[now+dist]++
				pending++
			}
		}
	}
	if pending != 0 {
		t.Errorf("%d events never fired", pending)
	}
	if len(w.overflow) != 0 {
		t.Errorf("%d events stranded in the overflow bucket", len(w.overflow))
	}
}

// TestMemLatencyBeyondWheelCompletesCorrectly runs a real program whose
// memory latency chain exceeds the old 1024-cycle horizon end to end: a
// cold load miss with MemLatency 2500 must stretch the run by (close to)
// the full latency, and raising the latency further must shift the cycle
// count by exactly the difference. Such configurations are reachable from
// the outside via the mgserve mem_latency machine override.
func TestMemLatencyBeyondWheelCompletesCorrectly(t *testing.T) {
	src := `
        .data
buf:    .space 64
        .text
main:   ldq  r1, buf(zero)
        addq r1, 1, r2
        stq  r2, buf(zero)
        halt
`
	prog := asm.MustAssemble("coldmiss", src)
	runWith := func(memLat int) int64 {
		cfg := Baseline()
		cfg.MemLatency = memLat
		res, err := New(cfg, prog, nil).Run(t.Context())
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	base := runWith(2500)
	if base < 2500 {
		t.Errorf("cold-miss run with MemLatency 2500 finished in %d cycles — the dependent add issued before the data arrived", base)
	}
	// The run takes exactly two serialized memory-latency hits: the cold
	// instruction-cache miss for the one-line program, then the cold data
	// miss. A latency increase must therefore shift the cycle count by
	// exactly twice the difference — any other shift means a long-latency
	// event fired at the wrong cycle.
	far := runWith(4500)
	if diff := far - base; diff != 2*2000 {
		t.Errorf("raising MemLatency by 2000 shifted the run by %d cycles, want exactly 4000 (base %d, far %d)", diff, base, far)
	}
}
