package prefetch_test

import (
	"testing"

	"minigraph/internal/isa"
	"minigraph/internal/uarch/prefetch"
)

func newDelta(t *testing.T, cfg prefetch.Config) *prefetch.Engine {
	t.Helper()
	e := prefetch.New(cfg)
	if e == nil {
		t.Fatalf("New(%+v) returned nil for an enabled config", cfg)
	}
	return e
}

func TestDisabledEngineIsNil(t *testing.T) {
	if prefetch.New(prefetch.Config{}) != nil {
		t.Error("zero config built an engine")
	}
	if prefetch.New(prefetch.Config{Kind: prefetch.KindNone, Entries: 64}) != nil {
		t.Error("kind none built an engine")
	}
}

func TestDeltaStrideDetection(t *testing.T) {
	e := newDelta(t, prefetch.Config{Kind: prefetch.KindDelta, Entries: 16, Degree: 2, Distance: 1})
	var buf [prefetch.MaxDegree]isa.Addr
	pc := isa.PC(40)
	// First access trains last-addr; the next two establish the stride and
	// raise confidence to threshold; the fourth emits.
	addrs := []isa.Addr{1000, 1064, 1128, 1192}
	var n int
	for _, a := range addrs {
		n = e.OnAccess(pc, a, buf[:])
	}
	if n != 2 {
		t.Fatalf("confident stride emitted %d targets, want 2", n)
	}
	if buf[0] != 1192+64 || buf[1] != 1192+128 {
		t.Errorf("targets = %d,%d; want %d,%d", buf[0], buf[1], 1192+64, 1192+128)
	}
}

func TestDeltaDistanceOffsetsTargets(t *testing.T) {
	e := newDelta(t, prefetch.Config{Kind: prefetch.KindDelta, Entries: 16, Degree: 1, Distance: 4})
	var buf [prefetch.MaxDegree]isa.Addr
	pc := isa.PC(44)
	var n int
	for _, a := range []isa.Addr{0, 8, 16, 24} {
		n = e.OnAccess(pc, a, buf[:])
	}
	if n != 1 || buf[0] != 24+8*4 {
		t.Errorf("distance-4 target = %v (n=%d), want %d", buf[0], n, 24+8*4)
	}
}

// TestDeltaRetrainsOnNewStride: a stride change first burns confidence,
// then adopts the new delta and works back up to emitting.
func TestDeltaRetrainsOnNewStride(t *testing.T) {
	e := newDelta(t, prefetch.Config{Kind: prefetch.KindDelta, Entries: 16, Degree: 1, Distance: 1})
	var buf [prefetch.MaxDegree]isa.Addr
	pc := isa.PC(48)
	last := isa.Addr(4096)
	for i := 0; i < 5; i++ {
		last += 64
		e.OnAccess(pc, last, buf[:])
	}
	// Stride switches to 16: confidence drains (3 accesses), the new delta
	// is adopted (1 more), then climbs back to threshold — no emissions
	// anywhere along the way.
	emitted := 0
	for i := 0; i < 5; i++ {
		last += 16
		emitted += e.OnAccess(pc, last, buf[:])
	}
	if emitted != 0 {
		t.Errorf("emitted %d prefetches while retraining", emitted)
	}
	var n int
	for i := 0; i < 2; i++ {
		last += 16
		n = e.OnAccess(pc, last, buf[:])
	}
	if n != 1 || buf[0] != last+16 {
		t.Errorf("after retraining: n=%d target=%d, want 1 target at %d", n, buf[0], last+16)
	}
}

// TestDeltaTableEviction: two PCs that collide in the direct-mapped table
// evict each other, so neither reaches confidence while interleaved.
func TestDeltaTableEviction(t *testing.T) {
	cfg := prefetch.Config{Kind: prefetch.KindDelta, Entries: 16, Degree: 2, Distance: 1}
	e := newDelta(t, cfg)
	var buf [prefetch.MaxDegree]isa.Addr
	pcA := isa.PC(52)
	pcB := pcA + isa.PC(cfg.Entries) // same slot, different tag
	a, b := isa.Addr(1<<20), isa.Addr(1<<21)
	emitted := 0
	for i := 0; i < 32; i++ {
		emitted += e.OnAccess(pcA, a, buf[:])
		emitted += e.OnAccess(pcB, b, buf[:])
		a += 64
		b += 64
	}
	if emitted != 0 {
		t.Errorf("colliding PCs emitted %d prefetches; direct-mapped eviction broken", emitted)
	}
	// Alone again, the surviving PC retrains from scratch and emits.
	var n int
	for i := 0; i < 4; i++ {
		n = e.OnAccess(pcA, a, buf[:])
		a += 64
	}
	if n != 2 {
		t.Errorf("post-eviction retrain emitted %d, want 2", n)
	}
}

func TestDeltaSkipsNegativeTargets(t *testing.T) {
	e := newDelta(t, prefetch.Config{Kind: prefetch.KindDelta, Entries: 16, Degree: 4, Distance: 1})
	var buf [prefetch.MaxDegree]isa.Addr
	pc := isa.PC(56)
	var n int
	for _, a := range []isa.Addr{400, 300, 200, 100} {
		n = e.OnAccess(pc, a, buf[:])
	}
	// Targets 0, -100, ... : only the non-negative prefix may emit.
	if n != 1 || buf[0] != 0 {
		t.Errorf("descending stride emitted %d targets (first %d), want 1 at 0", n, buf[0])
	}
}

func TestConfigCanonicalAndValidate(t *testing.T) {
	if (prefetch.Config{Kind: prefetch.KindDelta}).Canonical() != prefetch.DefaultDelta().Canonical() {
		t.Error("sparse delta config canonicalizes away from the default")
	}
	if got := (prefetch.Config{Entries: 64}).Canonical(); got != (prefetch.Config{Kind: prefetch.KindNone}) {
		t.Errorf("disabled config kept sizing: %+v", got)
	}
	for _, bad := range []prefetch.Config{
		{Kind: "markov"},
		{Kind: prefetch.KindDelta, Entries: 100},
		{Kind: prefetch.KindDelta, Degree: prefetch.MaxDegree + 1},
		{Kind: prefetch.KindDelta, Distance: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v validated", bad)
		}
	}
	if err := prefetch.DefaultDelta().Validate(); err != nil {
		t.Errorf("default delta config rejected: %v", err)
	}
}
