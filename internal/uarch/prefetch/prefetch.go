// Package prefetch implements the data-prefetch engines of the simulated
// machine. The delta (stride) engine keeps a PC-indexed table of the last
// address and stride of each load; once a stride repeats with confidence it
// emits prefetch candidates ahead of the demand stream. The engine only
// computes target addresses — the pipeline issues them into the real
// L1D/L2/bus hierarchy, so prefetch fills occupy actual bus bandwidth and
// contend with demand misses.
package prefetch

import (
	"fmt"

	"minigraph/internal/isa"
)

// Prefetcher kinds selectable via Config.Kind.
const (
	KindNone  = "none"
	KindDelta = "delta"
)

// Kinds lists the valid prefetcher kinds (error messages, CLI and
// serving-tier validation).
func Kinds() []string { return []string{KindNone, KindDelta} }

// MaxDegree bounds prefetches per trigger; the pipeline's issue buffer is
// sized to it.
const MaxDegree = 8

// Config selects and sizes a prefetch engine.
type Config struct {
	// Kind selects the engine ("" = KindNone: prefetching disabled).
	Kind string
	// Entries sizes the PC-indexed delta table (power of two).
	Entries int
	// Degree is the number of lines prefetched per confident trigger.
	Degree int
	// Distance is how many strides ahead of the triggering access the first
	// prefetch lands.
	Distance int
}

// DefaultDelta is the default delta/stride engine: a 256-entry PC table
// prefetching two lines starting one stride ahead.
func DefaultDelta() Config {
	return Config{Kind: KindDelta, Entries: 256, Degree: 2, Distance: 1}
}

// withDefaults fills every zero field from the kind's defaults.
func (c Config) withDefaults() Config {
	if c.Kind == "" {
		c.Kind = KindNone
	}
	if c.Kind == KindNone {
		return Config{Kind: KindNone}
	}
	def := DefaultDelta()
	if c.Entries == 0 {
		c.Entries = def.Entries
	}
	if c.Degree == 0 {
		c.Degree = def.Degree
	}
	if c.Distance == 0 {
		c.Distance = def.Distance
	}
	return c
}

// Canonical maps every configuration that builds the same engine to one
// representative: the kind is made explicit, disabled engines drop their
// sizing, and zero fields take the kind's defaults. sim.SimKey
// canonicalization relies on this.
func (c Config) Canonical() Config { return c.withDefaults() }

// Enabled reports whether the configuration builds an engine at all.
func (c Config) Enabled() bool { return c.Kind != "" && c.Kind != KindNone }

// Validate reports an impossible configuration.
func (c Config) Validate() error {
	d := c.withDefaults()
	switch d.Kind {
	case KindNone:
		return nil
	case KindDelta:
	default:
		return fmt.Errorf("prefetch: unknown prefetcher kind %q (known: none delta)", c.Kind)
	}
	switch {
	case d.Entries < 1 || d.Entries&(d.Entries-1) != 0:
		return fmt.Errorf("prefetch: entries %d not a power of two", d.Entries)
	case d.Degree < 1 || d.Degree > MaxDegree:
		return fmt.Errorf("prefetch: degree %d out of range 1..%d", d.Degree, MaxDegree)
	case d.Distance < 1:
		return fmt.Errorf("prefetch: distance %d must be positive", d.Distance)
	}
	return nil
}

// entry is one PC's stride-tracking state: a direct-mapped slot, so a
// colliding PC simply evicts the incumbent and retrains from scratch.
type entry struct {
	pc    isa.PC // full PC as tag
	valid bool
	last  isa.Addr
	delta int64
	conf  uint8 // 2-bit: >= confThreshold emits prefetches
}

const confThreshold = 2

// Engine is a delta/stride prefetch engine. It is not safe for concurrent
// use; each pipeline owns one.
type Engine struct {
	cfg  Config
	mask uint64
	tab  []entry

	// Trains counts table updates (observed loads).
	Trains int64
}

// New builds the engine selected by cfg.Kind, or nil when prefetching is
// disabled — the pipeline's nil check is the entire disabled-path cost.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	if !cfg.Enabled() {
		return nil
	}
	return &Engine{cfg: cfg, mask: uint64(cfg.Entries - 1), tab: make([]entry, cfg.Entries)}
}

// Config returns the engine's (default-filled) configuration.
func (e *Engine) Config() Config { return e.cfg }

// OnAccess observes a demand load at pc touching addr, trains the delta
// table, and writes up to Degree predicted target addresses into buf (which
// must hold at least Degree entries). It returns the number written — zero
// until the PC's stride has repeated to confidence. The hot path is
// allocation-free.
func (e *Engine) OnAccess(pc isa.PC, addr isa.Addr, buf []isa.Addr) int {
	e.Trains++
	s := &e.tab[uint64(pc)&e.mask]
	if !s.valid || s.pc != pc {
		// Direct-mapped eviction: the colliding PC takes the slot.
		*s = entry{pc: pc, valid: true, last: addr}
		return 0
	}
	delta := int64(addr) - int64(s.last)
	s.last = addr
	if delta == 0 {
		return 0
	}
	if delta == s.delta {
		if s.conf < 3 {
			s.conf++
		}
	} else {
		if s.conf > 0 {
			s.conf--
			return 0
		}
		s.delta = delta
		return 0
	}
	if s.conf < confThreshold {
		return 0
	}
	n := 0
	for k := 0; k < e.cfg.Degree && n < len(buf); k++ {
		t := int64(addr) + s.delta*int64(e.cfg.Distance+k)
		if t < 0 {
			break
		}
		buf[n] = isa.Addr(t)
		n++
	}
	return n
}
