// Package rename models register renaming: the architectural-to-physical
// map table, the physical register free list, and squash recovery via an
// undo log. This is the structure whose bandwidth and capacity mini-graphs
// amplify most directly: a whole mini-graph renames as one instruction and
// allocates at most one physical register, because interior values live
// only in the bypass network (§3.1).
package rename

import (
	"fmt"

	"minigraph/internal/isa"
)

// NoReg marks "no physical register".
const NoReg = -1

// Table is the rename state.
type Table struct {
	mapTable [isa.TotalRegs]int
	freeList []int
	numPhys  int

	// Allocs / Frees count physical register traffic for the bandwidth
	// amplification statistics.
	Allocs int64
	Frees  int64
}

// Undo captures what a single rename did, for squash recovery.
type Undo struct {
	Arch isa.Reg
	Prev int // previous physical mapping
	Phys int // newly allocated physical register
}

// New builds a table with numPhys physical registers in the paper's
// accounting: numPhys = 64 architectural + in-flight (164 = 64 + 100 for
// the baseline). The DISE dedicated register set has its own physical
// copies on top (as in the DISE design), so the in-flight pool is exactly
// numPhys - isa.NumRegs.
func New(numPhys int) *Table {
	if numPhys < isa.NumRegs+1 {
		panic(fmt.Sprintf("rename: need more than %d physical registers, got %d", isa.NumRegs, numPhys))
	}
	total := numPhys + isa.NumDiseRegs
	// The free list can never exceed the physical register count, so one
	// up-front allocation keeps Release/Rollback append-free forever.
	t := &Table{numPhys: total, freeList: make([]int, 0, total)}
	for i := 0; i < isa.TotalRegs; i++ {
		t.mapTable[i] = i
	}
	for p := total - 1; p >= isa.TotalRegs; p-- {
		t.freeList = append(t.freeList, p)
	}
	return t
}

// NumPhys returns the physical register count.
func (t *Table) NumPhys() int { return t.numPhys }

// FreeCount returns how many physical registers are available.
func (t *Table) FreeCount() int { return len(t.freeList) }

// Lookup returns the physical register currently holding arch. Hardwired
// zero registers return NoReg (they are not renamed; their value is the
// constant zero).
func (t *Table) Lookup(arch isa.Reg) int {
	if arch.IsZero() || int(arch) >= isa.TotalRegs {
		return NoReg
	}
	return t.mapTable[arch]
}

// Allocate renames a definition of arch, returning the new physical
// register and the undo record. ok=false means the free list is empty
// (rename must stall).
func (t *Table) Allocate(arch isa.Reg) (phys int, undo Undo, ok bool) {
	if len(t.freeList) == 0 {
		return NoReg, Undo{}, false
	}
	phys = t.freeList[len(t.freeList)-1]
	t.freeList = t.freeList[:len(t.freeList)-1]
	undo = Undo{Arch: arch, Prev: t.mapTable[arch], Phys: phys}
	t.mapTable[arch] = phys
	t.Allocs++
	return phys, undo, true
}

// Rollback reverses one rename (newest first!) during a squash.
func (t *Table) Rollback(u Undo) {
	t.mapTable[u.Arch] = u.Prev
	t.freeList = append(t.freeList, u.Phys)
}

// Release frees the physical register displaced by a retiring instruction
// (the "overwritten output register ... freed when the handle retires").
func (t *Table) Release(prevPhys int) {
	if prevPhys == NoReg {
		return
	}
	t.freeList = append(t.freeList, prevPhys)
	t.Frees++
}
