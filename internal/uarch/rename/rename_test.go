package rename_test

import (
	"testing"
	"testing/quick"

	"minigraph/internal/isa"
	"minigraph/internal/uarch/rename"
)

func TestInitialMappingIdentity(t *testing.T) {
	tab := rename.New(164)
	for i := 0; i < isa.TotalRegs; i++ {
		r := isa.Reg(i)
		if r.IsZero() {
			continue
		}
		if got := tab.Lookup(r); got != i {
			t.Errorf("initial map of %v = %d", r, got)
		}
	}
	// Paper accounting: 164 = 64 architectural + 100 in-flight; DISE
	// dedicated state rides on top.
	if tab.FreeCount() != 100 {
		t.Errorf("free count = %d want 100", tab.FreeCount())
	}
	if tab.NumPhys() != 164+isa.NumDiseRegs {
		t.Errorf("total physical = %d", tab.NumPhys())
	}
}

func TestZeroRegistersNotRenamed(t *testing.T) {
	tab := rename.New(164)
	if tab.Lookup(isa.RZero) != rename.NoReg || tab.Lookup(isa.FZero) != rename.NoReg {
		t.Error("zero registers must not map to physical registers")
	}
}

func TestAllocateLookupRelease(t *testing.T) {
	tab := rename.New(164)
	r5 := isa.IntReg(5)
	old := tab.Lookup(r5)
	phys, undo, ok := tab.Allocate(r5)
	if !ok || phys == old {
		t.Fatalf("allocate: %d %v", phys, ok)
	}
	if tab.Lookup(r5) != phys {
		t.Error("map not updated")
	}
	if undo.Prev != old || undo.Phys != phys || undo.Arch != r5 {
		t.Errorf("undo record %+v", undo)
	}
	free := tab.FreeCount()
	tab.Release(old) // retire: previous mapping freed
	if tab.FreeCount() != free+1 {
		t.Error("release did not return the register")
	}
}

func TestExhaustionAndStall(t *testing.T) {
	tab := rename.New(164)
	n := 0
	for {
		_, _, ok := tab.Allocate(isa.IntReg(1))
		if !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Errorf("allocated %d before exhaustion, want 100", n)
	}
}

func TestRollbackRestoresState(t *testing.T) {
	tab := rename.New(164)
	r := isa.IntReg(7)
	before := tab.Lookup(r)
	freeBefore := tab.FreeCount()
	var undos []rename.Undo
	for i := 0; i < 10; i++ {
		_, u, ok := tab.Allocate(r)
		if !ok {
			t.Fatal("exhausted")
		}
		undos = append(undos, u)
	}
	// Squash walks youngest-first.
	for i := len(undos) - 1; i >= 0; i-- {
		tab.Rollback(undos[i])
	}
	if tab.Lookup(r) != before || tab.FreeCount() != freeBefore {
		t.Error("rollback did not restore the map and free list")
	}
}

func TestAllocateRollbackProperty(t *testing.T) {
	// Property: any interleaved sequence of allocations followed by a full
	// youngest-first rollback restores the initial state.
	f := func(regs []uint8) bool {
		tab := rename.New(164)
		want := map[isa.Reg]int{}
		for i := 0; i < isa.NumRegs; i++ {
			want[isa.Reg(i)] = tab.Lookup(isa.Reg(i))
		}
		var undos []rename.Undo
		for _, raw := range regs {
			r := isa.Reg(raw % isa.NumRegs)
			if r.IsZero() {
				continue
			}
			_, u, ok := tab.Allocate(r)
			if !ok {
				break
			}
			undos = append(undos, u)
		}
		for i := len(undos) - 1; i >= 0; i-- {
			tab.Rollback(undos[i])
		}
		for r, p := range want {
			if tab.Lookup(r) != p {
				return false
			}
		}
		return tab.FreeCount() == 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
