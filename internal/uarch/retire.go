package uarch

import (
	"minigraph/internal/uarch/rename"
	"minigraph/internal/uarch/sched"
)

// retire commits completed uops in order, up to CommitWidth per cycle. A
// handle retires like a singleton: it writes at most one store-queue entry
// to the data cache and frees at most one physical register (§4.1).
func (p *Pipeline) retire() {
	for n := 0; n < p.cfg.CommitWidth && !p.rob.empty(); n++ {
		u := p.rob.front()
		if !u.completed {
			return
		}
		p.rob.popFront()

		if u.isMem() {
			// The LSQ head must be this very uop (memory ops commit in
			// order); a mismatch is a simulator bug.
			if p.lsq.empty() || p.lsq.front() != u {
				panic("uarch: LSQ/ROB retire order diverged")
			}
			p.lsq.popFront()
			u.inLSQ = false
			if u.isStore() {
				p.dcache.Access(p.cycle, u.rec.EA, true)
				p.ssets.CompleteStore(u.rec.PC, u.rec.Seq)
			}
		}

		p.ren.Release(u.prev)

		if u.rec.IsCtrl {
			p.stats.Branches++
			if u.rec.CondBranch {
				p.pred.UpdateDirection(u.rec.PC, &u.bi, u.rec.Taken)
			}
			if u.rec.Taken {
				p.pred.UpdateTarget(u.rec.PC, u.rec.NextPC)
			}
		}

		// Fold the architectural effects at the commit point: only uops that
		// reach here affect the digest, so a divergence means the pipeline
		// retired the wrong values, the wrong order, or the wrong stream.
		p.rdig = p.rdig.Fold(&u.rec)

		p.stats.Retired++
		if u.isMG() {
			p.stats.RetiredHandles++
			p.stats.HandleConstituents += int64(u.tmpl.Size())
			p.stats.RetiredWork += int64(u.tmpl.Size())
		} else {
			p.stats.RetiredWork++
		}

		// The uop is out of every queue; recycle it once its events drain.
		// A mispredicted branch can retire before its resolve event fires
		// (completion outruns resolution), so the event must stay live —
		// kill defers recycling until the wheel drains, and the resolve
		// still restarts fetch.
		p.kill(u)
	}
}

// replay returns an issued uop to the not-issued state (mini-graph
// interior-load miss, §4.3) and transitively replays issued consumers of
// its output. The entry stays in the held set until processEvents runs
// collectReplayed — structural migration mid-cascade would corrupt the
// replayConsumers scan.
func (p *Pipeline) replay(u *uop) {
	if !u.issued {
		return
	}
	u.issued = false
	p.replayedHeld = true
	u.epoch++ // cancel in-flight completion / miss / resolve events
	u.replayed++
	p.cancelReservations(u)
	u.execMem = false
	u.fwdFrom = -1
	u.dataAt = 0
	u.missAt = 0
	if u.dest != rename.NoReg {
		p.readyAt[u.dest] = notReady
		p.replayConsumers(u.dest)
	}
}

// replayConsumers replays every issued, not-completed scheduler entry that
// consumes physical register preg. Consumers can only have issued inside a
// speculative-wake-up shadow, so the set is small; entries remain in the
// scheduler until completion precisely so they stay replayable — which is
// why only the held (issued) set needs scanning.
func (p *Pipeline) replayConsumers(preg int) {
	for _, c := range p.iqHeld {
		if !c.issued || c.completed || c.squashed {
			continue
		}
		for s := 0; s < c.nsrcs; s++ {
			if c.srcs[s] == preg {
				p.replay(c)
				break
			}
		}
	}
}

// cancelReservations returns every resource u reserved at issue.
func (p *Pipeline) cancelReservations(u *uop) {
	if u.resWrPortAt >= 0 {
		if u.resWrPortAt >= p.cycle {
			p.window.Cancel(sched.ResWrPort, u.resWrPortAt)
		}
		u.resWrPortAt = -1
	}
	if u.resAP >= 0 {
		if u.resAPOutAt >= p.cycle {
			p.aps[u.resAP].Release(u.resAPOutAt)
		}
		u.resAP = -1
	}
	if u.hasResFU {
		if u.resFUAt >= p.cycle {
			p.window.Cancel(u.resFU, u.resFUAt)
		}
		u.hasResFU = false
	}
	if u.resFUBmp {
		p.window.CancelFUBmp(u.resFUAt, u.mg)
		u.resFUBmp = false
	}
}

// squash flushes every uop with sequence number >= seq (memory-ordering
// violation recovery): the rename map rolls back youngest-first via the
// undo log, physical registers return to the free list, predictor state is
// scrubbed, and the stream cursor rewinds so the same instructions are
// re-fetched.
func (p *Pipeline) squash(seq int64) {
	for !p.rob.empty() && p.rob.back().rec.Seq >= seq {
		u := p.rob.popBack()
		u.squashed = true
		u.epoch++
		if u.inIQ {
			if u.issued {
				p.heldRemove(u)
			} else {
				// Candidates are in program order and the ROB walks
				// youngest-first, so a squashed candidate is always the
				// array's tail.
				n := len(p.iqCand) - 1
				if n < 0 || p.iqCand[n] != u {
					panic("uarch: IQ/ROB squash order diverged")
				}
				p.iqCand[n] = nil
				p.iqCand = p.iqCand[:n]
			}
			u.inIQ = false
		}
		if u.issued {
			p.cancelReservations(u)
		}
		if u.inLSQ {
			if p.lsq.empty() || p.lsq.back() != u {
				panic("uarch: LSQ/ROB squash order diverged")
			}
			p.lsq.popBack()
			u.inLSQ = false
			if u.isStore() {
				p.ssets.SquashStore(u.rec.PC, u.rec.Seq)
			}
		}
		if u.dest != rename.NoReg {
			p.ren.Rollback(rename.Undo{Arch: u.rec.Dest, Prev: u.prev, Phys: u.dest})
		}
		if p.pendingBr == u {
			p.pendingBr = nil
		}
		p.kill(u)
	}
	// The front end is younger than anything in the ROB: drop it entirely.
	for p.frontend.len() > 0 {
		fe := p.frontend.popFront()
		fe.u.squashed = true
		fe.u.epoch++
		if p.pendingBr == fe.u {
			p.pendingBr = nil
		}
		p.kill(fe.u)
	}
	if p.pendingU != nil {
		// The stalled fetch never entered the machine; its record replays
		// after the rewind below.
		p.returnFresh(p.pendingU)
		p.pendingU = nil
	}
	p.haveFetchLine = false
	p.src.Rewind(seq)
	p.fetchStall = p.cycle + 1
}
