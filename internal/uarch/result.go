package uarch

import "fmt"

// Result aggregates the statistics of one simulation run.
type Result struct {
	Config string

	Cycles int64
	// Retired counts retired records (handles count once, nops never enter
	// the back end).
	Retired int64
	// RetiredWork counts architectural work: handles contribute their
	// constituent count, so RetiredWork/Cycles is comparable across
	// rewritten and original binaries.
	RetiredWork int64
	// RetiredHandles counts retired mini-graph handles.
	RetiredHandles int64
	// HandleConstituents sums the sizes of retired handles.
	HandleConstituents int64

	FetchedRecords int64
	FetchedNops    int64

	// Branch prediction.
	Branches        int64
	Mispredicts     int64
	BTBMissBubbles  int64
	CondBranches    int64
	CondMispredicts int64
	BTBLookups      int64
	BTBHits         int64
	RASPops         int64
	RASHits         int64

	// Memory system.
	Loads, Stores        int64
	L1IMisses, L1DMisses int64
	L2Misses             int64
	Forwards             int64
	Violations           int64
	LoadMissReplays      int64
	MGReplays            int64

	// Prefetching (all zero with the prefetcher disabled). Issued counts
	// fills started; Useful counts prefetched lines touched by a demand
	// access before eviction; Late counts the useful subset still in
	// flight at first touch.
	PrefetchIssued int64
	PrefetchUseful int64
	PrefetchLate   int64

	// Resource stalls (dispatch could not proceed because ...).
	StallROB, StallIQ, StallLSQ, StallRegs int64

	// Physical register traffic.
	PregAllocs, PregFrees int64

	// Issue accounting.
	Issued       int64
	IssuedOnAP   int64
	IntMemIssued int64

	// RetiredDigest is the order-sensitive fold of every retired register
	// write and store (emu.Digest). It must equal the functional emulator's
	// digest for the same program — the differential oracle's invariant.
	RetiredDigest uint64
}

// IPC returns retired records per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Retired) / float64(r.Cycles)
}

// WorkIPC returns architectural work per cycle (handles weighted by size).
func (r *Result) WorkIPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.RetiredWork) / float64(r.Cycles)
}

// MispredictRate returns mispredicts per branch.
func (r *Result) MispredictRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Branches)
}

// CondMispredictRate returns direction mispredicts per conditional branch.
func (r *Result) CondMispredictRate() float64 {
	if r.CondBranches == 0 {
		return 0
	}
	return float64(r.CondMispredicts) / float64(r.CondBranches)
}

// String summarises the run.
func (r *Result) String() string {
	return fmt.Sprintf("%s: cycles=%d retired=%d work=%d IPC=%.3f workIPC=%.3f handles=%d mispred=%d viol=%d replays=%d+%d",
		r.Config, r.Cycles, r.Retired, r.RetiredWork, r.IPC(), r.WorkIPC(),
		r.RetiredHandles, r.Mispredicts, r.Violations, r.LoadMissReplays, r.MGReplays)
}

// Speedup returns base cycles / r cycles: >1 means r is faster at the same
// work (both runs must execute the same program to completion).
func Speedup(base, mg *Result) float64 {
	if mg.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(mg.Cycles)
}
