// Package bpred implements the branch predictors of the simulated machine.
// The direction predictor is pluggable behind the Predictor interface: the
// paper's hybrid (bimodal + gshare + selector, 12Kb total budget — §6) and a
// TAGE-class predictor with tagged geometric-history tables. Every kind
// shares the same target machinery: a 2K-entry 4-way set-associative branch
// target buffer and a return-address stack.
package bpred

import (
	"fmt"

	"minigraph/internal/isa"
)

// Direction-predictor kinds selectable via Config.Kind.
const (
	KindHybrid = "hybrid"
	KindTAGE   = "tage"
)

// Kinds lists the valid direction-predictor kinds (error messages, CLI and
// serving-tier validation).
func Kinds() []string { return []string{KindHybrid, KindTAGE} }

// Config sizes the predictor structures. Counts must be powers of two.
type Config struct {
	// Kind selects the direction predictor ("" = KindHybrid).
	Kind string

	// Hybrid sizing (Kind == "hybrid").
	BimodalEntries int // 2-bit counters
	GshareEntries  int // 2-bit counters
	ChooserEntries int // 2-bit counters
	HistoryBits    int

	// TAGE sizing (Kind == "tage"). Histories are geometric between
	// TageMinHist and TageMaxHist (<= 64: snapshots stay one word);
	// TageUsefulPeriod is the update count between useful-counter halvings.
	TageTables       int
	TageEntries      int // per tagged table
	TageTagBits      int
	TageMinHist      int
	TageMaxHist      int
	TageUsefulPeriod int64

	// Target machinery, shared by every kind.
	BTBEntries int
	BTBAssoc   int
	RASEntries int
}

// DefaultConfig is the paper's 12Kb hybrid predictor (3 × 2K × 2-bit =
// 12Kbit) with a 2K-entry 4-way BTB.
func DefaultConfig() Config {
	return Config{
		Kind:           KindHybrid,
		BimodalEntries: 2048,
		GshareEntries:  2048,
		ChooserEntries: 2048,
		HistoryBits:    11,
		BTBEntries:     2048,
		BTBAssoc:       4,
		RASEntries:     32,
	}
}

// TageConfig is the default TAGE-class predictor: four 1K-entry tagged
// tables with geometric histories 5..64, a base bimodal fallback, and the
// hybrid's BTB/RAS.
func TageConfig() Config {
	return Config{
		Kind:             KindTAGE,
		TageTables:       4,
		TageEntries:      1024,
		TageTagBits:      9,
		TageMinHist:      5,
		TageMaxHist:      64,
		TageUsefulPeriod: 256 << 10,
		BTBEntries:       2048,
		BTBAssoc:         4,
		RASEntries:       32,
	}
}

// withDefaults fills every zero field from the active kind's default
// configuration, so a sparse override (for instance a JobSpec that only
// names the kind) builds the same machine as the fully spelled-out default.
func (c Config) withDefaults() Config {
	if c.Kind == "" {
		c.Kind = KindHybrid
	}
	def := DefaultConfig()
	if c.Kind == KindTAGE {
		def = TageConfig()
	}
	fill := func(dst *int, v int) {
		if *dst == 0 {
			*dst = v
		}
	}
	fill(&c.BimodalEntries, def.BimodalEntries)
	fill(&c.GshareEntries, def.GshareEntries)
	fill(&c.ChooserEntries, def.ChooserEntries)
	fill(&c.HistoryBits, def.HistoryBits)
	fill(&c.TageTables, def.TageTables)
	fill(&c.TageEntries, def.TageEntries)
	fill(&c.TageTagBits, def.TageTagBits)
	fill(&c.TageMinHist, def.TageMinHist)
	fill(&c.TageMaxHist, def.TageMaxHist)
	if c.TageUsefulPeriod == 0 {
		c.TageUsefulPeriod = def.TageUsefulPeriod
	}
	fill(&c.BTBEntries, def.BTBEntries)
	fill(&c.BTBAssoc, def.BTBAssoc)
	fill(&c.RASEntries, def.RASEntries)
	return c
}

// Canonical maps every configuration that builds the same predictor to one
// representative: the kind is made explicit, zero fields take the kind's
// defaults, and the inactive kind's sizing (which the built machine never
// reads) is zeroed. sim.SimKey canonicalization relies on this so sparse
// and spelled-out configurations share a cache line.
func (c Config) Canonical() Config {
	c = c.withDefaults()
	switch c.Kind {
	case KindHybrid:
		c.TageTables, c.TageEntries, c.TageTagBits = 0, 0, 0
		c.TageMinHist, c.TageMaxHist, c.TageUsefulPeriod = 0, 0, 0
	case KindTAGE:
		c.BimodalEntries, c.GshareEntries, c.ChooserEntries, c.HistoryBits = 0, 0, 0, 0
	}
	return c
}

// Validate reports an impossible configuration.
func (c Config) Validate() error {
	d := c.withDefaults()
	switch d.Kind {
	case KindHybrid, KindTAGE:
	default:
		return fmt.Errorf("bpred: unknown predictor kind %q (known: hybrid tage)", c.Kind)
	}
	if d.Kind == KindTAGE {
		switch {
		case d.TageTables < 1 || d.TageTables > 16:
			return fmt.Errorf("bpred: tage tables %d out of range", d.TageTables)
		case d.TageMinHist < 1 || d.TageMaxHist > 64 || d.TageMinHist > d.TageMaxHist:
			return fmt.Errorf("bpred: tage history range %d..%d invalid (max 64)", d.TageMinHist, d.TageMaxHist)
		}
	}
	return nil
}

// BranchInfo is the per-branch prediction state carried in the uop between
// fetch (prediction) and resolve/retire (recovery and training). It lives
// by value inside the uop, so the per-cycle path stays allocation-free.
// Hist is the global-history snapshot every kind restores from; the
// remaining fields are TAGE provider bookkeeping the hybrid never touches.
type BranchInfo struct {
	Taken bool   // predicted direction
	Hist  uint64 // global history at prediction time

	Provider  int8 // provider table index, -1 = base bimodal
	ProvIdx   int32
	ProvTaken bool // provider component's own prediction
	AltTaken  bool // alternate prediction (next-longest match or base)
	ProvWeak  bool // provider entry looked newly allocated at prediction
}

// Predictor is the direction + target predictor the pipeline calls through.
// PredictDirection fills bi and speculatively updates the global history;
// RecoverHistory repairs it after a resolved misprediction; UpdateDirection
// trains the tables at retire against the history in effect at prediction.
type Predictor interface {
	PredictDirection(pc isa.PC, bi *BranchInfo) bool
	RecoverHistory(bi *BranchInfo, actualTaken bool)
	UpdateDirection(pc isa.PC, bi *BranchInfo, actualTaken bool)

	PredictTarget(pc isa.PC) (isa.PC, bool)
	UpdateTarget(pc, target isa.PC)
	PushRAS(ret isa.PC)
	PopRAS() (isa.PC, bool)

	// DirStats returns conditional branches trained and correct predictions.
	DirStats() (seen, hits int64)
}

// New builds the predictor selected by cfg.Kind (zero fields take the
// kind's defaults). Unknown kinds panic — configs are produced by code and
// validated at the serving/CLI boundary.
func New(cfg Config) Predictor {
	cfg = cfg.withDefaults()
	switch cfg.Kind {
	case KindHybrid:
		return NewHybrid(cfg)
	case KindTAGE:
		return NewTAGE(cfg)
	}
	panic("bpred: unknown predictor kind " + cfg.Kind)
}

// targets is the target-prediction machinery shared by every direction
// predictor kind: the set-associative BTB and the return-address stack.
type targets struct {
	assoc   int
	btbTags [][]uint64
	btbTgts [][]isa.PC
	btbLRU  [][]uint8

	ras    []isa.PC
	rasTop int
}

func newTargets(cfg Config) targets {
	t := targets{assoc: cfg.BTBAssoc}
	sets := cfg.BTBEntries / cfg.BTBAssoc
	t.btbTags = make([][]uint64, sets)
	t.btbTgts = make([][]isa.PC, sets)
	t.btbLRU = make([][]uint8, sets)
	for i := range t.btbTags {
		t.btbTags[i] = make([]uint64, cfg.BTBAssoc)
		t.btbTgts[i] = make([]isa.PC, cfg.BTBAssoc)
		t.btbLRU[i] = make([]uint8, cfg.BTBAssoc)
		for j := range t.btbTags[i] {
			t.btbTags[i][j] = ^uint64(0)
		}
	}
	t.ras = make([]isa.PC, cfg.RASEntries)
	return t
}

// PredictTarget looks up the BTB.
func (t *targets) PredictTarget(pc isa.PC) (isa.PC, bool) {
	set, tag := t.btbSetTag(pc)
	for w := 0; w < t.assoc; w++ {
		if t.btbTags[set][w] == tag {
			t.touchLRU(set, w)
			return t.btbTgts[set][w], true
		}
	}
	return 0, false
}

// UpdateTarget installs/refreshes the target of a taken control transfer.
func (t *targets) UpdateTarget(pc, target isa.PC) {
	set, tag := t.btbSetTag(pc)
	victim, oldest := 0, uint8(255)
	for w := 0; w < t.assoc; w++ {
		if t.btbTags[set][w] == tag {
			t.btbTgts[set][w] = target
			t.touchLRU(set, w)
			return
		}
		if t.btbLRU[set][w] < oldest {
			oldest, victim = t.btbLRU[set][w], w
		}
	}
	t.btbTags[set][victim] = tag
	t.btbTgts[set][victim] = target
	t.touchLRU(set, victim)
}

func (t *targets) btbSetTag(pc isa.PC) (int, uint64) {
	sets := uint64(len(t.btbTags))
	return int(uint64(pc) & (sets - 1)), uint64(pc) / sets
}

func (t *targets) touchLRU(set, way int) {
	for w := range t.btbLRU[set] {
		if t.btbLRU[set][w] > 0 {
			t.btbLRU[set][w]--
		}
	}
	t.btbLRU[set][way] = 255
}

// PushRAS records a call's return address.
func (t *targets) PushRAS(ret isa.PC) {
	t.ras[t.rasTop%len(t.ras)] = ret
	t.rasTop++
}

// PopRAS predicts a return target.
func (t *targets) PopRAS() (isa.PC, bool) {
	if t.rasTop == 0 {
		return 0, false
	}
	t.rasTop--
	return t.ras[t.rasTop%len(t.ras)], true
}

// Hybrid is the paper's direction predictor: bimodal + gshare with a
// per-PC chooser.
type Hybrid struct {
	targets
	cfg     Config
	bimodal []uint8
	gshare  []uint8
	chooser []uint8 // high = use gshare
	history uint64

	condSeen, condHits int64
}

// NewHybrid builds the hybrid predictor.
func NewHybrid(cfg Config) *Hybrid {
	cfg = cfg.withDefaults()
	p := &Hybrid{cfg: cfg, targets: newTargets(cfg)}
	p.bimodal = make([]uint8, cfg.BimodalEntries)
	p.gshare = make([]uint8, cfg.GshareEntries)
	p.chooser = make([]uint8, cfg.ChooserEntries)
	for i := range p.bimodal {
		p.bimodal[i] = 1 // weakly not-taken
	}
	for i := range p.gshare {
		p.gshare[i] = 1
	}
	for i := range p.chooser {
		p.chooser[i] = 1
	}
	return p
}

func (p *Hybrid) bimodalIdx(pc isa.PC) int {
	return int(uint64(pc) & uint64(p.cfg.BimodalEntries-1))
}

func (p *Hybrid) chooserIdx(pc isa.PC) int {
	return int(uint64(pc) & uint64(p.cfg.ChooserEntries-1))
}

// PredictDirection predicts a conditional branch at pc, recording the
// history snapshot in bi so history-indexed state trains against the
// history in effect at prediction time.
func (p *Hybrid) PredictDirection(pc isa.PC, bi *BranchInfo) bool {
	bi.Hist = p.history
	var taken bool
	useGshare := p.chooser[p.chooserIdx(pc)] >= 2
	if useGshare {
		h := p.history & ((1 << p.cfg.HistoryBits) - 1)
		taken = p.gshare[int((uint64(pc)^h)&uint64(p.cfg.GshareEntries-1))] >= 2
	} else {
		taken = p.bimodal[p.bimodalIdx(pc)] >= 2
	}
	bi.Taken = taken
	// Speculative history update. Because the pipeline stalls fetch on a
	// mispredict and restores via RecoverHistory, the history is repaired
	// before any post-branch prediction is made.
	p.history = p.history<<1 | b2u(taken)
	return taken
}

// RecoverHistory restores the global history after a misprediction: the
// snapshot taken at prediction plus the actual outcome.
func (p *Hybrid) RecoverHistory(bi *BranchInfo, actualTaken bool) {
	p.history = bi.Hist<<1 | b2u(actualTaken)
}

// UpdateDirection trains the direction tables (called at retire).
func (p *Hybrid) UpdateDirection(pc isa.PC, bi *BranchInfo, taken bool) {
	p.condSeen++
	if taken == bi.Taken {
		p.condHits++
	}
	bidx := p.bimodalIdx(pc)
	// Recompute the gshare index under the snapshot history.
	h := bi.Hist & ((1 << p.cfg.HistoryBits) - 1)
	gi := int((uint64(pc) ^ h) & uint64(p.cfg.GshareEntries-1))
	bCorrect := (p.bimodal[bidx] >= 2) == taken
	gCorrect := (p.gshare[gi] >= 2) == taken
	ci := p.chooserIdx(pc)
	if gCorrect && !bCorrect {
		p.chooser[ci] = sat(p.chooser[ci], true)
	} else if bCorrect && !gCorrect {
		p.chooser[ci] = sat(p.chooser[ci], false)
	}
	p.bimodal[bidx] = sat(p.bimodal[bidx], taken)
	p.gshare[gi] = sat(p.gshare[gi], taken)
}

// DirStats returns conditional branches trained and correct predictions.
func (p *Hybrid) DirStats() (seen, hits int64) { return p.condSeen, p.condHits }

func sat(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
