// Package bpred implements the branch predictors of the simulated machine:
// a hybrid (bimodal + gshare + selector) direction predictor with a 12Kb
// total budget, a 2K-entry 4-way set-associative branch target buffer, and a
// return-address stack — the configuration described in §6 of the paper.
package bpred

import "minigraph/internal/isa"

// Config sizes the predictor structures. Counts must be powers of two.
type Config struct {
	BimodalEntries int // 2-bit counters
	GshareEntries  int // 2-bit counters
	ChooserEntries int // 2-bit counters
	HistoryBits    int
	BTBEntries     int
	BTBAssoc       int
	RASEntries     int
}

// DefaultConfig is the paper's 12Kb hybrid predictor (3 × 2K × 2-bit =
// 12Kbit) with a 2K-entry 4-way BTB.
func DefaultConfig() Config {
	return Config{
		BimodalEntries: 2048,
		GshareEntries:  2048,
		ChooserEntries: 2048,
		HistoryBits:    11,
		BTBEntries:     2048,
		BTBAssoc:       4,
		RASEntries:     32,
	}
}

// Predictor is the combined direction + target predictor.
type Predictor struct {
	cfg     Config
	bimodal []uint8
	gshare  []uint8
	chooser []uint8 // high = use gshare
	history uint64

	btbTags [][]uint64
	btbTgts [][]isa.PC
	btbLRU  [][]uint8

	ras    []isa.PC
	rasTop int

	// Stats.
	CondSeen, CondHits     int64
	TargetSeen, TargetHits int64
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	p := &Predictor{cfg: cfg}
	p.bimodal = make([]uint8, cfg.BimodalEntries)
	p.gshare = make([]uint8, cfg.GshareEntries)
	p.chooser = make([]uint8, cfg.ChooserEntries)
	for i := range p.bimodal {
		p.bimodal[i] = 1 // weakly not-taken
	}
	for i := range p.gshare {
		p.gshare[i] = 1
	}
	for i := range p.chooser {
		p.chooser[i] = 1
	}
	sets := cfg.BTBEntries / cfg.BTBAssoc
	p.btbTags = make([][]uint64, sets)
	p.btbTgts = make([][]isa.PC, sets)
	p.btbLRU = make([][]uint8, sets)
	for i := range p.btbTags {
		p.btbTags[i] = make([]uint64, cfg.BTBAssoc)
		p.btbTgts[i] = make([]isa.PC, cfg.BTBAssoc)
		p.btbLRU[i] = make([]uint8, cfg.BTBAssoc)
		for j := range p.btbTags[i] {
			p.btbTags[i][j] = ^uint64(0)
		}
	}
	p.ras = make([]isa.PC, cfg.RASEntries)
	return p
}

func (p *Predictor) bimodalIdx(pc isa.PC) int {
	return int(uint64(pc) & uint64(p.cfg.BimodalEntries-1))
}

func (p *Predictor) gshareIdx(pc isa.PC) int {
	h := p.history & ((1 << p.cfg.HistoryBits) - 1)
	return int((uint64(pc) ^ h) & uint64(p.cfg.GshareEntries-1))
}

func (p *Predictor) chooserIdx(pc isa.PC) int {
	return int(uint64(pc) & uint64(p.cfg.ChooserEntries-1))
}

// PredictDirection predicts a conditional branch at pc. The returned
// snapshot must be passed back to UpdateDirection so history-indexed state
// trains against the history in effect at prediction time.
func (p *Predictor) PredictDirection(pc isa.PC) (taken bool, snapshot uint64) {
	snapshot = p.history
	useGshare := p.chooser[p.chooserIdx(pc)] >= 2
	if useGshare {
		taken = p.gshare[p.gshareIdx(pc)] >= 2
	} else {
		taken = p.bimodal[p.bimodalIdx(pc)] >= 2
	}
	// Speculative history update. Because the pipeline stalls fetch on a
	// mispredict and restores via RecoverHistory, the history is repaired
	// before any post-branch prediction is made.
	p.history = p.history<<1 | b2u(taken)
	return taken, snapshot
}

// RecoverHistory restores the global history after a misprediction: the
// snapshot taken at prediction plus the actual outcome.
func (p *Predictor) RecoverHistory(snapshot uint64, actualTaken bool) {
	p.history = snapshot<<1 | b2u(actualTaken)
}

// UpdateDirection trains the direction tables (called at retire).
func (p *Predictor) UpdateDirection(pc isa.PC, snapshot uint64, taken, predicted bool) {
	p.CondSeen++
	if taken == predicted {
		p.CondHits++
	}
	bi := p.bimodalIdx(pc)
	// Recompute the gshare index under the snapshot history.
	h := snapshot & ((1 << p.cfg.HistoryBits) - 1)
	gi := int((uint64(pc) ^ h) & uint64(p.cfg.GshareEntries-1))
	bCorrect := (p.bimodal[bi] >= 2) == taken
	gCorrect := (p.gshare[gi] >= 2) == taken
	ci := p.chooserIdx(pc)
	if gCorrect && !bCorrect {
		p.chooser[ci] = sat(p.chooser[ci], true)
	} else if bCorrect && !gCorrect {
		p.chooser[ci] = sat(p.chooser[ci], false)
	}
	p.bimodal[bi] = sat(p.bimodal[bi], taken)
	p.gshare[gi] = sat(p.gshare[gi], taken)
}

// PredictTarget looks up the BTB.
func (p *Predictor) PredictTarget(pc isa.PC) (isa.PC, bool) {
	set, tag := p.btbSetTag(pc)
	for w := 0; w < p.cfg.BTBAssoc; w++ {
		if p.btbTags[set][w] == tag {
			p.touchLRU(set, w)
			return p.btbTgts[set][w], true
		}
	}
	return 0, false
}

// UpdateTarget installs/refreshes the target of a taken control transfer.
func (p *Predictor) UpdateTarget(pc, target isa.PC) {
	set, tag := p.btbSetTag(pc)
	victim, oldest := 0, uint8(255)
	for w := 0; w < p.cfg.BTBAssoc; w++ {
		if p.btbTags[set][w] == tag {
			p.btbTgts[set][w] = target
			p.touchLRU(set, w)
			return
		}
		if p.btbLRU[set][w] < oldest {
			oldest, victim = p.btbLRU[set][w], w
		}
	}
	p.btbTags[set][victim] = tag
	p.btbTgts[set][victim] = target
	p.touchLRU(set, victim)
}

func (p *Predictor) btbSetTag(pc isa.PC) (int, uint64) {
	sets := uint64(len(p.btbTags))
	return int(uint64(pc) & (sets - 1)), uint64(pc) / sets
}

func (p *Predictor) touchLRU(set, way int) {
	for w := range p.btbLRU[set] {
		if p.btbLRU[set][w] > 0 {
			p.btbLRU[set][w]--
		}
	}
	p.btbLRU[set][way] = 255
}

// PushRAS records a call's return address.
func (p *Predictor) PushRAS(ret isa.PC) {
	p.ras[p.rasTop%len(p.ras)] = ret
	p.rasTop++
}

// PopRAS predicts a return target.
func (p *Predictor) PopRAS() (isa.PC, bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)], true
}

func sat(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
