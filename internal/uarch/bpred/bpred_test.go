package bpred_test

import (
	"testing"

	"minigraph/internal/isa"
	"minigraph/internal/uarch/bpred"
)

func train(p bpred.Predictor, pc isa.PC, taken bool) bool {
	var bi bpred.BranchInfo
	pred := p.PredictDirection(pc, &bi)
	p.UpdateDirection(pc, &bi, taken)
	if pred != taken {
		p.RecoverHistory(&bi, taken)
	}
	return pred
}

func TestBimodalLearnsBias(t *testing.T) {
	p := bpred.New(bpred.DefaultConfig())
	pc := isa.PC(100)
	for i := 0; i < 50; i++ {
		train(p, pc, true)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if train(p, pc, true) {
			correct++
		}
	}
	if correct < 99 {
		t.Errorf("always-taken branch predicted correctly only %d/100", correct)
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	p := bpred.New(bpred.DefaultConfig())
	pc := isa.PC(200)
	// Alternating pattern: bimodal can at best reach 50%; gshare nails it.
	for i := 0; i < 4000; i++ {
		train(p, pc, i%2 == 0)
	}
	correct := 0
	for i := 0; i < 200; i++ {
		if train(p, pc, i%2 == 0) == (i%2 == 0) {
			correct++
		}
	}
	if correct < 190 {
		t.Errorf("alternating pattern predicted %d/200", correct)
	}
}

func TestPeriodicPattern(t *testing.T) {
	p := bpred.New(bpred.DefaultConfig())
	pc := isa.PC(300)
	pat := func(i int) bool { return i%5 != 0 } // loop-exit style
	for i := 0; i < 5000; i++ {
		train(p, pc, pat(i))
	}
	correct := 0
	for i := 0; i < 500; i++ {
		if train(p, pc, pat(i)) == pat(i) {
			correct++
		}
	}
	if correct < 450 {
		t.Errorf("period-5 pattern predicted %d/500", correct)
	}
}

func TestBTBInstallAndEvict(t *testing.T) {
	cfg := bpred.DefaultConfig()
	p := bpred.New(cfg)
	if _, ok := p.PredictTarget(10); ok {
		t.Error("cold BTB should miss")
	}
	p.UpdateTarget(10, 42)
	if tgt, ok := p.PredictTarget(10); !ok || tgt != 42 {
		t.Errorf("BTB lookup = %d,%v", tgt, ok)
	}
	p.UpdateTarget(10, 43)
	if tgt, _ := p.PredictTarget(10); tgt != 43 {
		t.Errorf("BTB update = %d", tgt)
	}
	// Fill one set beyond associativity: oldest entry evicts, newest stays.
	sets := cfg.BTBEntries / cfg.BTBAssoc
	base := isa.PC(10)
	for w := 1; w <= cfg.BTBAssoc; w++ {
		p.UpdateTarget(base+isa.PC(w*sets), isa.PC(1000+w))
	}
	if _, ok := p.PredictTarget(base + isa.PC(cfg.BTBAssoc*sets)); !ok {
		t.Error("most recent entry evicted")
	}
}

func TestRAS(t *testing.T) {
	p := bpred.New(bpred.DefaultConfig())
	if _, ok := p.PopRAS(); ok {
		t.Error("empty RAS popped")
	}
	p.PushRAS(11)
	p.PushRAS(22)
	if r, ok := p.PopRAS(); !ok || r != 22 {
		t.Errorf("pop = %d,%v", r, ok)
	}
	if r, ok := p.PopRAS(); !ok || r != 11 {
		t.Errorf("pop = %d,%v", r, ok)
	}
	// Deep call chains wrap rather than fault.
	for i := 0; i < 100; i++ {
		p.PushRAS(isa.PC(i))
	}
	if r, ok := p.PopRAS(); !ok || r != 99 {
		t.Errorf("wrapped pop = %d,%v", r, ok)
	}
}

func TestHistoryRecovery(t *testing.T) {
	p := bpred.New(bpred.DefaultConfig())
	// After a mispredict the history must reflect the actual outcome, so a
	// deterministic re-run reproduces identical predictions.
	var bi, bi2 bpred.BranchInfo
	p.PredictDirection(7, &bi)
	p.RecoverHistory(&bi, true)
	pred1 := p.PredictDirection(8, &bi2)
	q := bpred.New(bpred.DefaultConfig())
	var qi, qi2 bpred.BranchInfo
	q.PredictDirection(7, &qi)
	q.RecoverHistory(&qi, true)
	pred2 := q.PredictDirection(8, &qi2)
	if pred1 != pred2 {
		t.Error("history recovery is not deterministic")
	}
}
