package bpred

import "testing"

// TestTageUsefulAging pins the useful-counter aging mechanic: every
// TageUsefulPeriod retired conditionals, all u counters halve, so entries
// that stopped earning usefulness become allocation victims again.
func TestTageUsefulAging(t *testing.T) {
	cfg := TageConfig()
	cfg.TageUsefulPeriod = 8
	p := NewTAGE(cfg)
	p.tables[2][5] = tageEntry{tag: 1, ctr: 3, u: 3}
	p.tables[1][9] = tageEntry{tag: 2, ctr: -4, u: 1}
	// Drive exactly one aging period of correctly predicted branches; the
	// outcomes match the predictions, so nothing allocates or trains into
	// the probed slots.
	for i := 0; i < int(cfg.TageUsefulPeriod); i++ {
		var bi BranchInfo
		taken := p.PredictDirection(1000, &bi)
		p.UpdateDirection(1000, &bi, taken)
	}
	if got := p.tables[2][5].u; got != 1 {
		t.Errorf("u = %d after one aging period, want 3>>1 = 1", got)
	}
	if got := p.tables[1][9].u; got != 0 {
		t.Errorf("u = %d after one aging period, want 1>>1 = 0", got)
	}
	if p.updates != 0 {
		t.Errorf("update counter = %d after aging, want 0", p.updates)
	}
}

// TestTageGeometricHistories pins the deterministic geometric history
// series: strictly increasing, bounded by the configured min/max, and
// identical across constructions (the libm-free pow must be bit-stable).
func TestTageGeometricHistories(t *testing.T) {
	a, b := NewTAGE(TageConfig()), NewTAGE(TageConfig())
	for i := range a.histLen {
		if a.histLen[i] != b.histLen[i] {
			t.Fatalf("history lengths differ across constructions: %v vs %v", a.histLen, b.histLen)
		}
		if i > 0 && a.histLen[i] <= a.histLen[i-1] {
			t.Fatalf("history lengths not strictly increasing: %v", a.histLen)
		}
	}
	cfg := TageConfig()
	if a.histLen[0] != cfg.TageMinHist || a.histLen[len(a.histLen)-1] != cfg.TageMaxHist {
		t.Errorf("history endpoints %v, want %d..%d", a.histLen, cfg.TageMinHist, cfg.TageMaxHist)
	}
}
