package bpred_test

import (
	"testing"

	"minigraph/internal/isa"
	"minigraph/internal/uarch/bpred"
)

func TestTageLearnsBias(t *testing.T) {
	p := bpred.New(bpred.TageConfig())
	pc := isa.PC(100)
	for i := 0; i < 50; i++ {
		train(p, pc, true)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if train(p, pc, true) {
			correct++
		}
	}
	if correct < 99 {
		t.Errorf("always-taken branch predicted correctly only %d/100", correct)
	}
}

// TestTageAllocatesOnMispredict trains a history-correlated pattern the
// bimodal base cannot learn (50% bias). High accuracy afterwards is only
// reachable through allocation in the tagged tables.
func TestTageAllocatesOnMispredict(t *testing.T) {
	p := bpred.New(bpred.TageConfig())
	pc := isa.PC(200)
	for i := 0; i < 4000; i++ {
		train(p, pc, i%2 == 0)
	}
	correct := 0
	for i := 0; i < 200; i++ {
		if train(p, pc, i%2 == 0) == (i%2 == 0) {
			correct++
		}
	}
	if correct < 190 {
		t.Errorf("alternating pattern predicted %d/200; tagged tables not allocating", correct)
	}
}

func TestTagePeriodicPattern(t *testing.T) {
	p := bpred.New(bpred.TageConfig())
	pc := isa.PC(300)
	pat := func(i int) bool { return i%5 != 0 } // loop-exit style
	for i := 0; i < 5000; i++ {
		train(p, pc, pat(i))
	}
	correct := 0
	for i := 0; i < 500; i++ {
		if train(p, pc, pat(i)) == pat(i) {
			correct++
		}
	}
	if correct < 450 {
		t.Errorf("period-5 pattern predicted %d/500", correct)
	}
}

// TestTageRecoveryDeterminism drives two fresh predictors through the same
// branch sequence — predictions, squash recoveries and retire updates — and
// requires identical decisions and statistics. Simulation results are cache
// keys, so any predictor nondeterminism would poison the result store.
func TestTageRecoveryDeterminism(t *testing.T) {
	run := func() (string, int64, int64) {
		p := bpred.New(bpred.TageConfig())
		// Deterministic pseudo-random outcome stream over several PCs.
		rng := uint64(12345)
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		var trace []byte
		for i := 0; i < 3000; i++ {
			pc := isa.PC(100 + (next() % 7 * 4))
			taken := next()&3 != 0
			var bi bpred.BranchInfo
			pred := p.PredictDirection(pc, &bi)
			if pred != taken {
				// Mispredict path: speculative history rolls back.
				p.RecoverHistory(&bi, taken)
			}
			p.UpdateDirection(pc, &bi, taken)
			if pred {
				trace = append(trace, '1')
			} else {
				trace = append(trace, '0')
			}
		}
		seen, hits := p.DirStats()
		return string(trace), seen, hits
	}
	t1, s1, h1 := run()
	t2, s2, h2 := run()
	if t1 != t2 || s1 != s2 || h1 != h2 {
		t.Errorf("TAGE is not deterministic across identical runs: %d/%d vs %d/%d", h1, s1, h2, s2)
	}
}

// TestTageConfigCanonical pins the canonicalization contract the sim keys
// depend on: a sparse kind-only config and the spelled-out default build
// the same machine and share one canonical form, and the inactive kind's
// sizing is erased.
func TestTageConfigCanonical(t *testing.T) {
	sparse := bpred.Config{Kind: bpred.KindTAGE}
	if sparse.Canonical() != bpred.TageConfig().Canonical() {
		t.Errorf("sparse tage config canonicalizes differently:\n%+v\n%+v",
			sparse.Canonical(), bpred.TageConfig().Canonical())
	}
	hybridish := bpred.DefaultConfig()
	hybridish.TageTables = 9 // inactive-kind sizing must not split the key
	if hybridish.Canonical() != bpred.DefaultConfig().Canonical() {
		t.Errorf("inactive TAGE sizing survived hybrid canonicalization: %+v", hybridish.Canonical())
	}
	if def := (bpred.Config{}).Canonical(); def.Kind != bpred.KindHybrid {
		t.Errorf("zero config canonicalized to kind %q, want hybrid", def.Kind)
	}
	if err := (bpred.Config{Kind: "nn"}).Validate(); err == nil {
		t.Error("unknown predictor kind validated")
	}
}
