package bpred

import "minigraph/internal/isa"

// TAGE is a TAGE-class direction predictor: a base bimodal table plus N
// partially tagged tables indexed by geometrically increasing global-history
// lengths. The longest matching table provides the prediction; on a
// misprediction an entry allocates in a longer table, steered away from
// entries whose useful counters are set. Useful counters age (halve)
// periodically so stale entries become reclaimable. All history lengths fit
// one 64-bit word, so the per-branch snapshot is exactly the hybrid's: the
// history value at prediction time, carried in BranchInfo.Hist.
type TAGE struct {
	targets
	cfg     Config
	nTables int
	histLen []int // per table, ascending

	base   []uint8 // 2-bit bimodal fallback
	tables [][]tageEntry

	history uint64
	// useAltOnNA steers newly allocated (weak, not-useful) providers to the
	// alternate prediction when it has been the better choice lately.
	useAltOnNA int8
	rng        uint64 // deterministic xorshift for allocation start skew
	updates    int64  // retired conditional branches since the last aging

	condSeen, condHits int64
}

type tageEntry struct {
	tag uint16
	ctr int8  // signed 3-bit: >= 0 predicts taken
	u   uint8 // 2-bit useful counter
}

// NewTAGE builds a TAGE predictor.
func NewTAGE(cfg Config) *TAGE {
	cfg = cfg.withDefaults()
	t := &TAGE{
		cfg:     cfg,
		nTables: cfg.TageTables,
		targets: newTargets(cfg),
		rng:     0x9e3779b97f4a7c15,
	}
	// Geometric history lengths from TageMinHist to TageMaxHist.
	t.histLen = make([]int, t.nTables)
	lo, hi := float64(cfg.TageMinHist), float64(cfg.TageMaxHist)
	for i := 0; i < t.nTables; i++ {
		if t.nTables == 1 {
			t.histLen[i] = cfg.TageMaxHist
			continue
		}
		// lo * (hi/lo)^(i/(n-1)), computed without math.Pow so the lengths
		// are bit-exact across platforms: repeated geometric interpolation.
		frac := float64(i) / float64(t.nTables-1)
		l := int(lo*pow(hi/lo, frac) + 0.5)
		if l < 1 {
			l = 1
		}
		if l > 64 {
			l = 64
		}
		if i > 0 && l <= t.histLen[i-1] {
			l = t.histLen[i-1] + 1
		}
		t.histLen[i] = l
	}
	t.base = make([]uint8, 4*cfg.TageEntries)
	for i := range t.base {
		t.base[i] = 1 // weakly not-taken
	}
	t.tables = make([][]tageEntry, t.nTables)
	for i := range t.tables {
		t.tables[i] = make([]tageEntry, cfg.TageEntries)
	}
	return t
}

// pow is a deterministic x^y for x > 0 via exp/log-free binary
// exponentiation on the fractional part: y in [0,1] is expanded to 16
// binary digits, each contributing a repeated square root. sqrt itself is
// Newton's method, which converges identically everywhere (pure float64
// arithmetic, no libm).
func pow(x, y float64) float64 {
	r := 1.0
	s := x
	for i := 0; i < 16; i++ {
		s = sqrt(s)
		y *= 2
		if y >= 1 {
			r *= s
			y -= 1
		}
	}
	return r
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 64; i++ {
		ng := 0.5 * (g + x/g)
		if ng == g {
			break
		}
		g = ng
	}
	return g
}

// fold compresses the low bits history bits of h into out bits by xor.
func fold(h uint64, bits, out int) uint32 {
	if bits < 64 {
		h &= (uint64(1) << bits) - 1
	}
	var f uint64
	mask := (uint64(1) << out) - 1
	for h != 0 {
		f ^= h & mask
		h >>= out
	}
	return uint32(f)
}

func (t *TAGE) index(pc isa.PC, hist uint64, ti int) int {
	bits := 1
	for 1<<bits < t.cfg.TageEntries {
		bits++
	}
	h := fold(hist, t.histLen[ti], bits)
	return int((uint32(pc) ^ uint32(uint64(pc)>>bits) ^ h ^ uint32(ti)) & uint32(t.cfg.TageEntries-1))
}

func (t *TAGE) tagOf(pc isa.PC, hist uint64, ti int) uint16 {
	tb := t.cfg.TageTagBits
	h1 := fold(hist, t.histLen[ti], tb)
	h2 := fold(hist, t.histLen[ti], tb-1) << 1
	return uint16((uint32(pc) ^ h1 ^ h2) & ((1 << tb) - 1))
}

func (t *TAGE) baseIdx(pc isa.PC) int {
	return int(uint64(pc) & uint64(len(t.base)-1))
}

// PredictDirection predicts a conditional branch at pc, recording in bi the
// history snapshot and the provider/alternate bookkeeping the retire-time
// update needs.
func (t *TAGE) PredictDirection(pc isa.PC, bi *BranchInfo) bool {
	bi.Hist = t.history
	bi.Provider, bi.ProvIdx = -1, 0
	provider, alt := -1, -1
	provIdx, altIdx := 0, 0
	for i := t.nTables - 1; i >= 0; i-- {
		idx := t.index(pc, t.history, i)
		if t.tables[i][idx].tag == t.tagOf(pc, t.history, i) {
			if provider < 0 {
				provider, provIdx = i, idx
			} else {
				alt, altIdx = i, idx
				break
			}
		}
	}
	altTaken := t.base[t.baseIdx(pc)] >= 2
	if alt >= 0 {
		altTaken = t.tables[alt][altIdx].ctr >= 0
	}
	taken := altTaken
	if provider >= 0 {
		e := &t.tables[provider][provIdx]
		provTaken := e.ctr >= 0
		taken = provTaken
		// A weak counter on a not-useful entry is (likely) newly allocated;
		// trust the alternate while use-alt-on-na says it is the better bet.
		weak := (e.ctr == 0 || e.ctr == -1) && e.u == 0
		if weak && t.useAltOnNA >= 0 {
			taken = altTaken
		}
		bi.Provider, bi.ProvIdx = int8(provider), int32(provIdx)
		bi.ProvTaken, bi.ProvWeak = provTaken, weak
	} else {
		bi.ProvTaken, bi.ProvWeak = altTaken, false
	}
	bi.AltTaken = altTaken
	bi.Taken = taken
	t.history = t.history<<1 | b2u(taken)
	return taken
}

// RecoverHistory restores the global history after a misprediction.
func (t *TAGE) RecoverHistory(bi *BranchInfo, actualTaken bool) {
	t.history = bi.Hist<<1 | b2u(actualTaken)
}

// UpdateDirection trains the tables at retire, under the prediction-time
// state recorded in bi. Provider entries are revalidated by tag before
// training — the entry may have been reallocated to another branch between
// prediction and retire.
func (t *TAGE) UpdateDirection(pc isa.PC, bi *BranchInfo, taken bool) {
	t.condSeen++
	if taken == bi.Taken {
		t.condHits++
	}

	allocFrom := 0
	if bi.Provider >= 0 {
		pi := int(bi.Provider)
		allocFrom = pi + 1
		e := &t.tables[pi][bi.ProvIdx]
		if e.tag == t.tagOf(pc, bi.Hist, pi) {
			if bi.ProvWeak && bi.ProvTaken != bi.AltTaken {
				t.useAltOnNA = sat4(t.useAltOnNA, bi.AltTaken == taken)
			}
			if bi.ProvTaken != bi.AltTaken {
				if bi.ProvTaken == taken {
					if e.u < 3 {
						e.u++
					}
				} else if e.u > 0 {
					e.u--
				}
			}
			e.ctr = sat3(e.ctr, taken)
			// The base trains alongside a weak provider so the fallback
			// stays warm for reallocated slots.
			if bi.ProvWeak {
				bidx := t.baseIdx(pc)
				t.base[bidx] = sat(t.base[bidx], taken)
			}
		}
	} else {
		bidx := t.baseIdx(pc)
		t.base[bidx] = sat(t.base[bidx], taken)
	}

	// Allocate on a misprediction: claim a not-useful entry in a table with
	// a longer history. The start table is probabilistically skewed one
	// table up (deterministic xorshift) so correlated branches spread out;
	// if every candidate is useful, decay them all instead.
	if bi.Taken != taken && allocFrom < t.nTables {
		start := allocFrom
		if t.nTables-start > 1 && t.next()&1 == 1 {
			start++
		}
		allocated := false
		for j := start; j < t.nTables; j++ {
			idx := t.index(pc, bi.Hist, j)
			if t.tables[j][idx].u == 0 {
				ctr := int8(-1)
				if taken {
					ctr = 0
				}
				t.tables[j][idx] = tageEntry{tag: t.tagOf(pc, bi.Hist, j), ctr: ctr}
				allocated = true
				break
			}
		}
		if !allocated {
			for j := allocFrom; j < t.nTables; j++ {
				idx := t.index(pc, bi.Hist, j)
				if e := &t.tables[j][idx]; e.u > 0 {
					e.u--
				}
			}
		}
	}

	// Useful-counter aging: periodically halve every useful counter so
	// entries that stopped earning their keep become allocation victims.
	t.updates++
	if t.updates >= t.cfg.TageUsefulPeriod {
		t.updates = 0
		for i := range t.tables {
			tbl := t.tables[i]
			for j := range tbl {
				tbl[j].u >>= 1
			}
		}
	}
}

// DirStats returns conditional branches trained and correct predictions.
func (t *TAGE) DirStats() (seen, hits int64) { return t.condSeen, t.condHits }

// next steps the internal xorshift64 generator. Seeded at construction,
// never reseeded: runs are bit-for-bit reproducible.
func (t *TAGE) next() uint64 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	return t.rng
}

// sat3 saturates a signed 3-bit counter in [-4, 3].
func sat3(c int8, up bool) int8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > -4 {
		return c - 1
	}
	return -4
}

// sat4 saturates a signed 4-bit counter in [-8, 7].
func sat4(c int8, up bool) int8 {
	if up {
		if c < 7 {
			return c + 1
		}
		return 7
	}
	if c > -8 {
		return c - 1
	}
	return -8
}
