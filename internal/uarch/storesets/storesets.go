// Package storesets implements the store-set memory dependence predictor of
// Chrysos & Emer (ISCA-25), the load-scheduling policy the paper's machine
// uses (§6): loads and stores that have conflicted in the past are assigned
// to a common store set and execute in order pair-wise; unrelated loads
// bypass stores freely. Mini-graph handles participate via their handle PC
// (§4.3, "a handle and its PC assume responsibility for memory
// disambiguation and load scheduling").
package storesets

import "minigraph/internal/isa"

const invalid = -1

// Config sizes the predictor tables.
type Config struct {
	SSITEntries int // store-set id table (PC indexed), power of two
	LFSTEntries int // last-fetched-store table (one per store set)
}

// DefaultConfig matches a typical store-sets deployment.
func DefaultConfig() Config { return Config{SSITEntries: 4096, LFSTEntries: 512} }

// Predictor tracks store sets. Sequence numbers identify dynamic stores.
type Predictor struct {
	cfg  Config
	ssit []int   // PC -> SSID (or invalid)
	lfst []int64 // SSID -> seq of last fetched store (or invalid)

	nextSSID int

	Violations int64
	Merges     int64
}

// New builds an empty predictor.
func New(cfg Config) *Predictor {
	p := &Predictor{cfg: cfg}
	p.ssit = make([]int, cfg.SSITEntries)
	p.lfst = make([]int64, cfg.LFSTEntries)
	for i := range p.ssit {
		p.ssit[i] = invalid
	}
	for i := range p.lfst {
		p.lfst[i] = invalid
	}
	return p
}

func (p *Predictor) idx(pc isa.PC) int { return int(uint64(pc) & uint64(p.cfg.SSITEntries-1)) }

// DispatchStore processes a store (or store-bearing handle) at dispatch:
// if the store belongs to a set, it becomes the set's last fetched store and
// must wait for the previous one (two stores in one set execute in order).
// It returns the seq of the store to wait for, or -1.
func (p *Predictor) DispatchStore(pc isa.PC, seq int64) int64 {
	ss := p.ssit[p.idx(pc)]
	if ss == invalid {
		return invalid
	}
	prev := p.lfst[ss]
	p.lfst[ss] = seq
	return prev
}

// DispatchLoad processes a load at dispatch: if the load belongs to a set
// with an outstanding store, it must wait for that store. It returns the
// store seq to wait for, or -1.
func (p *Predictor) DispatchLoad(pc isa.PC) int64 {
	ss := p.ssit[p.idx(pc)]
	if ss == invalid {
		return invalid
	}
	return p.lfst[ss]
}

// CompleteStore clears the LFST entry when a store leaves the window
// (retires), so later loads stop synchronising on it.
func (p *Predictor) CompleteStore(pc isa.PC, seq int64) {
	ss := p.ssit[p.idx(pc)]
	if ss != invalid && p.lfst[ss] == seq {
		p.lfst[ss] = invalid
	}
}

// SquashStore removes a squashed store from the LFST.
func (p *Predictor) SquashStore(pc isa.PC, seq int64) {
	p.CompleteStore(pc, seq)
}

// Violation trains the predictor after a memory-ordering violation between
// a load and an older store, merging the two PCs into one store set
// (Chrysos & Emer's merge rule: both take the smaller SSID).
func (p *Predictor) Violation(loadPC, storePC isa.PC) {
	p.Violations++
	li, si := p.idx(loadPC), p.idx(storePC)
	ls, ss := p.ssit[li], p.ssit[si]
	switch {
	case ls == invalid && ss == invalid:
		id := p.nextSSID % p.cfg.LFSTEntries
		p.nextSSID++
		p.ssit[li], p.ssit[si] = id, id
	case ls == invalid:
		p.ssit[li] = ss
	case ss == invalid:
		p.ssit[si] = ls
	case ls != ss:
		p.Merges++
		if ls < ss {
			p.ssit[si] = ls
		} else {
			p.ssit[li] = ss
		}
	}
}
