package storesets_test

import (
	"testing"

	"minigraph/internal/isa"
	"minigraph/internal/uarch/storesets"
)

func TestColdPredictorImposesNoOrder(t *testing.T) {
	p := storesets.New(storesets.DefaultConfig())
	if w := p.DispatchStore(10, 1); w != -1 {
		t.Errorf("cold store wait = %d", w)
	}
	if w := p.DispatchLoad(20); w != -1 {
		t.Errorf("cold load wait = %d", w)
	}
}

func TestViolationCreatesSet(t *testing.T) {
	p := storesets.New(storesets.DefaultConfig())
	loadPC, storePC := isa.PC(20), isa.PC(10)
	p.Violation(loadPC, storePC)
	// Next occurrence: store joins the set, load must wait for it.
	if w := p.DispatchStore(storePC, 5); w != -1 {
		t.Errorf("first store in set waits on %d", w)
	}
	if w := p.DispatchLoad(loadPC); w != 5 {
		t.Errorf("load should wait for store 5, got %d", w)
	}
	// After the store completes, the load runs free again.
	p.CompleteStore(storePC, 5)
	if w := p.DispatchLoad(loadPC); w != -1 {
		t.Errorf("load still waits on %d after completion", w)
	}
}

func TestStoreStoreOrderWithinSet(t *testing.T) {
	p := storesets.New(storesets.DefaultConfig())
	p.Violation(20, 10)
	p.Violation(20, 12) // second store joins the same set (merge)
	w1 := p.DispatchStore(10, 100)
	w2 := p.DispatchStore(12, 101)
	if w1 != -1 {
		t.Errorf("first store waits on %d", w1)
	}
	if w2 != 100 {
		t.Errorf("second store in set should wait for the first, got %d", w2)
	}
	if p.Merges == 0 && w2 != 100 {
		t.Error("sets did not merge")
	}
}

func TestSquashStoreClearsLFST(t *testing.T) {
	p := storesets.New(storesets.DefaultConfig())
	p.Violation(20, 10)
	p.DispatchStore(10, 7)
	p.SquashStore(10, 7)
	if w := p.DispatchLoad(20); w != -1 {
		t.Errorf("load waits on squashed store %d", w)
	}
}

func TestViolationCountsAndLearning(t *testing.T) {
	p := storesets.New(storesets.DefaultConfig())
	for i := 0; i < 5; i++ {
		p.Violation(20, 10)
	}
	if p.Violations != 5 {
		t.Errorf("violations = %d", p.Violations)
	}
}
