// Package uarch is the cycle-level timing model of the paper's machine: a
// 6-way superscalar, dynamically scheduled, 15-stage out-of-order pipeline
// (§6) extended with mini-graph support (§4): MGHT-driven scheduling, MGST
// sequencers, ALU pipelines and a sliding-window scheduler.
//
// The model is execution-driven: the architecturally correct dynamic
// instruction stream (with resolved addresses and branch outcomes) arrives
// through a TraceSource — internal/emu generating records live, or
// internal/trace replaying a captured stream; timing is byte-identical
// either way. Branch predictors are modelled and trained; a misprediction
// stalls fetch until the branch resolves and then refills the front end
// (the standard stall-on-mispredict approximation). Memory-ordering
// violations and mini-graph replays rewind the stream cursor and flush
// younger state.
package uarch

import (
	"fmt"

	"minigraph/internal/uarch/bpred"
	"minigraph/internal/uarch/cache"
	"minigraph/internal/uarch/prefetch"
	"minigraph/internal/uarch/storesets"
)

// Config is the complete machine description.
type Config struct {
	Name string

	// Pipeline widths.
	FetchWidth  int
	RenameWidth int
	IssueWidth  int
	CommitWidth int

	// Window capacities.
	ROBSize  int
	IQSize   int
	LSQSize  int
	PhysRegs int // total physical registers (architectural + in-flight)

	// Execution resources. IntALUs counts conventional ALUs; APs counts
	// ALU pipelines (each APDepth stages). Mini-graph configurations
	// replace two of the four baseline ALUs with two 4-stage APs.
	IntALUs    int
	APs        int
	APDepth    int
	FPUnits    int
	LoadPorts  int
	StorePorts int

	// Register file.
	RFReadPorts   int
	RFWritePorts  int
	RegReadCycles int

	// SchedCycles is the scheduling-loop length: 1 permits back-to-back
	// dependent issue; 2 models a pipelined wake-up/select loop, which
	// effectively raises every single-cycle operation's latency to 2 (§6.3).
	SchedCycles int

	// FrontendDepth is the fetch-to-dispatch latency in cycles; together
	// with schedule + register read + execute it forms the 15-stage pipe.
	FrontendDepth int

	// LoadLat is the load-to-use hit latency.
	LoadLat int

	// MemLatency is the DRAM access latency in core cycles behind the L2
	// (0 = the paper's 100 cycles). Latency chains built from this value
	// plus bus queueing can stretch thousands of cycles; the pipeline's
	// event wheel handles arbitrarily distant wakeups exactly.
	MemLatency int

	// Collapse enables pair-wise collapsing ALU pipelines (§6.2).
	Collapse bool

	// IntMemIssuePerCycle bounds integer-memory handle issue per cycle
	// (§4.3: "supporting the issue of a single heterogeneous handle per
	// cycle is sufficient"). Zero disables the sliding-window scheduler:
	// integer-memory handles cannot issue (binaries for such configs must
	// be rewritten with integer-only policies).
	IntMemIssuePerCycle int

	// WindowHorizon is the sliding-window depth in cycles; it must exceed
	// the maximum mini-graph execution latency.
	WindowHorizon int

	BPred bpred.Config
	// Prefetcher configures the L1D prefetch engine (zero value = none).
	// Prefetch fills go through the real L1D/L2/bus model, so enabling it
	// changes bus contention, not just hit rates.
	Prefetcher prefetch.Config
	StoreSets  storesets.Config
	ICache     cache.Config
	DCache     cache.Config
	L2         cache.Config

	// MaxRecords bounds the run (0 = run to halt).
	MaxRecords int64
	// StreamWindow overrides the live stream's rewind-buffer depth. Leave
	// it 0: the window is derived from the machine itself (MaxSquashDepth),
	// so an undersized window — a rewind panic waiting to happen — cannot
	// be configured into existence. A non-zero override (for tests) must
	// still cover MaxSquashDepth; Validate enforces that. Replay sources
	// retain the whole trace and ignore it entirely.
	StreamWindow int
}

// Baseline returns the paper's baseline machine (§6): 6-way superscalar,
// 15-stage, 128 ROB / 64 LSQ / 50 IQ, 164 physical registers with a
// 5-read/4-write-port 2-cycle register file, per-cycle issue of up to
// 4 integer + 2 FP + 2 load + 1 store operations, hybrid 12Kb predictor,
// 2K-entry 4-way BTB, 32KB L1s, 2MB L2, 100-cycle memory.
func Baseline() Config {
	return Config{
		Name:          "baseline-6wide",
		FetchWidth:    6,
		RenameWidth:   6,
		IssueWidth:    6,
		CommitWidth:   6,
		ROBSize:       128,
		IQSize:        50,
		LSQSize:       64,
		PhysRegs:      164,
		IntALUs:       4,
		APs:           0,
		APDepth:       4,
		FPUnits:       2,
		LoadPorts:     2,
		StorePorts:    1,
		RFReadPorts:   5,
		RFWritePorts:  4,
		RegReadCycles: 2,
		SchedCycles:   1,
		FrontendDepth: 9,
		LoadLat:       2,
		BPred:         bpred.DefaultConfig(),
		StoreSets:     storesets.DefaultConfig(),
		ICache:        cache.L1IConfig(),
		DCache:        cache.L1DConfig(),
		L2:            cache.L2Config(),
		WindowHorizon: 32,
	}
}

// MiniGraph returns the mini-graph machine of §6.2: the baseline with two
// integer ALUs replaced by two 4-stage ALU pipelines and, when intMem is
// true, a sliding-window scheduler issuing one integer-memory handle per
// cycle.
func MiniGraph(intMem bool) Config {
	c := Baseline()
	c.Name = "minigraph"
	c.IntALUs = 2
	c.APs = 2
	if intMem {
		c.Name = "minigraph-intmem"
		c.IntMemIssuePerCycle = 1
	}
	return c
}

// FrontendCapacity returns the fetch-to-rename pipe depth in uops.
func (c *Config) FrontendCapacity() int {
	return c.FrontendDepth*c.FetchWidth + c.FetchWidth
}

// MaxSquashDepth returns the deepest possible stream rewind: everything in
// the ROB plus everything in the front end. The live stream's retention
// window is derived from it; every layer that sizes or validates against
// the squash depth must use this one definition.
func (c *Config) MaxSquashDepth() int {
	return c.ROBSize + c.FrontendCapacity()
}

// EffectiveStreamWindow returns the live stream's rewind-buffer depth: the
// machine's own maximum squash depth, unless a (test) override asks for
// more. Deriving the window from the config removes a whole failure class
// — the caller-supplied guess that undersizes the buffer and panics on a
// deep squash.
func (c *Config) EffectiveStreamWindow() int {
	if c.StreamWindow > 0 {
		return c.StreamWindow
	}
	return c.MaxSquashDepth()
}

// Check reports an impossible configuration as a structured error, so
// layers fed configs from outside the process (the HTTP job spec, the
// differential harness) can refuse one cleanly instead of panicking a
// worker mid-sweep. nil means the config can build a pipeline.
func (c *Config) Check() error {
	switch {
	case c.FetchWidth <= 0 || c.RenameWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0:
		return fmt.Errorf("uarch: non-positive width (fetch %d, rename %d, issue %d, commit %d)",
			c.FetchWidth, c.RenameWidth, c.IssueWidth, c.CommitWidth)
	case c.ROBSize <= 0 || c.IQSize <= 0 || c.LSQSize <= 0:
		return fmt.Errorf("uarch: non-positive window capacity (ROB %d, IQ %d, LSQ %d)",
			c.ROBSize, c.IQSize, c.LSQSize)
	case c.PhysRegs < 65:
		return fmt.Errorf("uarch: %d physical registers cannot rename 64 architectural ones", c.PhysRegs)
	case c.IntALUs+c.APs == 0:
		return fmt.Errorf("uarch: no integer units")
	case c.MemLatency < 0:
		return fmt.Errorf("uarch: negative memory latency %d", c.MemLatency)
	case c.StreamWindow != 0 && c.StreamWindow < c.MaxSquashDepth():
		return fmt.Errorf("uarch: stream window override %d smaller than maximum squash depth %d",
			c.StreamWindow, c.MaxSquashDepth())
	}
	if err := c.BPred.Validate(); err != nil {
		return fmt.Errorf("uarch: %w", err)
	}
	if err := c.Prefetcher.Validate(); err != nil {
		return fmt.Errorf("uarch: %w", err)
	}
	return nil
}

// Validate panics on impossible configurations; it guards the pipeline
// constructors, whose configs are produced by code — an invalid one there
// is a programming error. Layers accepting configs from outside the
// process should call Check instead.
func (c *Config) Validate() {
	if err := c.Check(); err != nil {
		panic(err.Error())
	}
}
