package uarch

import (
	"fmt"
	"math/rand"
	"testing"

	"minigraph/internal/asm"
	"minigraph/internal/core"
	"minigraph/internal/emu"
	"minigraph/internal/program"
	"minigraph/internal/rewrite"
)

// genSquashHeavy builds a randomized kernel designed to exercise every uop
// death path at once: slowly-formed store addresses racing same-address
// loads (memory-ordering violations → full squashes), loads striding a
// region far larger than L1D (miss replays, and mini-graph whole-handle
// replays once rewritten), and data-dependent branches (mispredict stalls,
// resolve events that can outlive their branch's retirement).
func genSquashHeavy(rng *rand.Rand, iters int) string {
	src := `
        .data
slot:   .space 128
big:    .space 8
        .text
main:   li   r9, ` + fmt.Sprint(iters) + `
        li   r1, 1
        li   r7, 0
        lda  r12, slot(zero)
loop:
`
	ops := []func(k int) string{
		func(k int) string { return fmt.Sprintf("        addq r1, %d, r1\n", k) },
		func(int) string { return "        xor  r1, r9, r2\n" },
		func(k int) string { return fmt.Sprintf("        addl r2, %d, r3\n", k) },
		func(int) string { return "        srl  r1, 3, r4\n" },
		func(int) string { return "        sll  r4, 1, r5\n" },
	}
	n := 3 + rng.Intn(6)
	for i := 0; i < n; i++ {
		src += ops[rng.Intn(len(ops))](1 + rng.Intn(7))
	}
	if rng.Intn(3) != 0 {
		// Slow store address, then an immediate same-address load: the load
		// speculates ahead and violates until store sets learn the pair.
		// Each generated kernel gets its own store/load PC pair, so every
		// seed re-learns from scratch.
		src += `        mull r9, 1, r6
        mull r6, 1, r6
        mull r6, 1, r6
        and  r6, 56, r6
        addq r6, r12, r6
        stq  r9, 0(r6)
        ldq  r8, slot(zero)
        addq r8, r8, r8
`
	}
	if rng.Intn(2) == 0 {
		// Pseudo-random stride over 2MB: L1D/L2 misses and load replays.
		src += `        mull r7, 25173, r7
        addq r7, 13849, r7
        and  r7, 2097144, r7
        ldq  r10, big(r7)
        addq r10, 1, r10
`
	}
	if rng.Intn(2) == 0 {
		// Unpredictable branch off the LCG state.
		src += `        srl  r7, 13, r11
        and  r11, 1, r11
        beq  r11, skip` + "\n" + `        addq r3, 1, r3
skip:
`
	}
	src += `        subl r9, 1, r9
        bne  r9, loop
        halt
`
	return src
}

// TestUopPoolRecyclingUnderSquashReplay is the fuzz-style pool audit: for a
// batch of seeded random squash/replay-heavy kernels, on both the baseline
// and the rewritten mini-graph machine, the pipeline must (a) retire exactly
// the architectural instruction stream — any stale-epoch wakeup of a
// recycled uop corrupts that immediately — and (b) actually recycle: fresh
// uop allocations stay bounded near the machine's in-flight capacity
// instead of scaling with the dynamic instruction count. The pool's own
// invariants (never hand out a live uop, never schedule an event on a
// pooled uop) are enforced by panics on the hot path itself.
//
// Run with -race: the pool is per-pipeline, so parallel simulations racing
// on shared uops would be caught here.
func TestUopPoolRecyclingUnderSquashReplay(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	iters := 2500
	if testing.Short() {
		seeds = seeds[:3]
		iters = 800
	}
	var violations, replays, mgReplays, mispredicts int64
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			src := genSquashHeavy(rng, iters)
			prog := asm.MustAssemble(fmt.Sprintf("fuzz%d", seed), src)
			ref, err := emu.RunToCompletion(prog, nil, 50_000_000)
			if err != nil {
				t.Fatal(err)
			}

			// Baseline machine on the plain binary.
			base := New(Baseline(), prog, nil)
			bres, err := base.Run(t.Context())
			if err != nil {
				t.Fatal(err)
			}
			if bres.Retired != ref.InstCount {
				t.Errorf("baseline retired %d records, emulator executed %d", bres.Retired, ref.InstCount)
			}
			if max := inFlightBound(base.cfg); base.uopAllocs > max {
				t.Errorf("baseline allocated %d uops for %d retires; pool should bound allocations near %d",
					base.uopAllocs, bres.Retired, max)
			}

			// Mini-graph machine on the rewritten binary (whole-handle
			// replays exercise the replay → re-issue → recycle path).
			g := program.BuildCFG(prog, nil)
			lv := program.ComputeLiveness(g)
			prof, err := emu.ProfileProgram(prog, nil, 10_000_000)
			if err != nil {
				t.Fatal(err)
			}
			sel := core.Extract(g, lv, prof, core.DefaultPolicy(), 512)
			rw, err := rewrite.Rewrite(prog, sel, false)
			if err != nil {
				t.Fatal(err)
			}
			mgt := core.NewMGT(rw.Templates, core.DefaultExecParams())
			mg := New(MiniGraph(true), rw.Prog, mgt)
			mres, err := mg.Run(t.Context())
			if err != nil {
				t.Fatal(err)
			}
			if mres.RetiredWork != ref.InstCount {
				t.Errorf("mini-graph work %d != original %d", mres.RetiredWork, ref.InstCount)
			}
			if max := inFlightBound(mg.cfg); mg.uopAllocs > max {
				t.Errorf("mini-graph machine allocated %d uops for %d retires; want ≤ %d",
					mg.uopAllocs, mres.Retired, max)
			}
			for _, u := range base.uopPool {
				if !u.pooled || u.pendingEv != 0 {
					t.Fatalf("pooled uop with live state: pooled=%v pendingEv=%d", u.pooled, u.pendingEv)
				}
			}
			violations += bres.Violations + mres.Violations
			replays += bres.LoadMissReplays + mres.LoadMissReplays
			mgReplays += mres.MGReplays
			mispredicts += bres.Mispredicts + mres.Mispredicts
		})
	}
	// The batch must actually have exercised the death paths, or the pool
	// audit above proved nothing.
	if violations == 0 {
		t.Error("no memory-ordering violations across all seeds: squash path untested")
	}
	if replays == 0 {
		t.Error("no load-miss replays across all seeds: replay path untested")
	}
	if mispredicts == 0 {
		t.Error("no mispredicts across all seeds: resolve-event path untested")
	}
	t.Logf("exercised: %d violations, %d load replays, %d MG replays, %d mispredicts",
		violations, replays, mgReplays, mispredicts)
}

// inFlightBound over-approximates how many uops can be alive at once: the
// ROB, the front-end pipe, and dead uops lingering until a distant event
// (bounded by the deepest miss chain in flight) drains.
func inFlightBound(cfg Config) int64 {
	return int64(2*cfg.MaxSquashDepth() + cfg.IQSize)
}
