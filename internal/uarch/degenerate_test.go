package uarch_test

import (
	"context"
	"strings"
	"testing"

	"minigraph/internal/asm"
	"minigraph/internal/uarch"
	"minigraph/internal/uarch/prefetch"
)

// TestDegenerateEmptyProgram: a program with no instructions must end in a
// structured error (the emulator runs off the end of the text), never a
// panic or a hang.
func TestDegenerateEmptyProgram(t *testing.T) {
	p, err := asm.Assemble("empty", "main:\n")
	if err != nil {
		t.Fatal(err)
	}
	pipe := uarch.New(uarch.Baseline(), p, nil)
	if _, err := pipe.Run(context.Background()); err == nil {
		t.Fatal("empty program ran clean; want a structured source error")
	} else {
		t.Logf("empty program: %v", err)
	}
}

// TestDegenerateSingleInstruction: a halt-only program retires exactly one
// instruction on every machine shape.
func TestDegenerateSingleInstruction(t *testing.T) {
	p := asm.MustAssemble("halt", "main: halt\n")
	for _, cfg := range []uarch.Config{uarch.Baseline(), uarch.MiniGraph(true)} {
		res := run(t, cfg, p, nil)
		if res.Retired != 1 {
			t.Errorf("%s: retired %d instructions, want 1", cfg.Name, res.Retired)
		}
		if res.Cycles == 0 {
			t.Errorf("%s: zero cycles", cfg.Name)
		}
	}
}

// TestDegenerateWidthOneMachine: a scalar (width-1, minimal-window) config
// is legal and still retires a real program correctly — narrow structural
// limits must serialize, not wedge or corrupt.
func TestDegenerateWidthOneMachine(t *testing.T) {
	cfg := uarch.Baseline()
	cfg.Name = "scalar"
	cfg.FetchWidth, cfg.RenameWidth, cfg.IssueWidth, cfg.CommitWidth = 1, 1, 1, 1
	cfg.ROBSize, cfg.IQSize, cfg.LSQSize = 4, 2, 2
	cfg.IntALUs, cfg.APs = 1, 0
	cfg.FPUnits, cfg.LoadPorts, cfg.StorePorts = 1, 1, 1
	if err := cfg.Check(); err != nil {
		t.Fatalf("width-1 machine rejected: %v", err)
	}

	p := asm.MustAssemble("sum", sumSrc)
	res := run(t, cfg, p, nil)
	wide := run(t, uarch.Baseline(), p, nil)
	if res.Retired != wide.Retired {
		t.Errorf("scalar machine retired %d, wide %d — width must not change architecture", res.Retired, wide.Retired)
	}
	if res.RetiredDigest != wide.RetiredDigest {
		t.Errorf("scalar machine digest %#x, wide %#x", res.RetiredDigest, wide.RetiredDigest)
	}
	if res.Cycles <= wide.Cycles {
		t.Errorf("scalar machine took %d cycles, wide %d — serialization should cost time", res.Cycles, wide.Cycles)
	}
}

// TestDegenerateConfigCheck covers Config.Check's rejection classes as
// structured errors, and the zero-entry prefetcher both ways: zero sizing
// canonicalizes to defaults and runs clean, while sizing that cannot build
// a table is a structured error.
func TestDegenerateConfigCheck(t *testing.T) {
	mutate := func(f func(*uarch.Config)) uarch.Config {
		cfg := uarch.Baseline()
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  uarch.Config
		want string
	}{
		{"zero width", mutate(func(c *uarch.Config) { c.FetchWidth = 0 }), "width"},
		{"zero ROB", mutate(func(c *uarch.Config) { c.ROBSize = 0 }), "window capacity"},
		{"too few physregs", mutate(func(c *uarch.Config) { c.PhysRegs = 64 }), "physical registers"},
		{"no integer units", mutate(func(c *uarch.Config) { c.IntALUs, c.APs = 0, 0 }), "integer units"},
		{"negative memory latency", mutate(func(c *uarch.Config) { c.MemLatency = -1 }), "memory latency"},
		{"bad predictor kind", mutate(func(c *uarch.Config) { c.BPred.Kind = "oracle" }), "predictor"},
		{"non-power-of-two prefetcher", mutate(func(c *uarch.Config) {
			c.Prefetcher = prefetch.Config{Kind: prefetch.KindDelta, Entries: 3}
		}), "power of two"},
		{"negative-entry prefetcher", mutate(func(c *uarch.Config) {
			c.Prefetcher = prefetch.Config{Kind: prefetch.KindDelta, Entries: -8}
		}), "power of two"},
	}
	for _, c := range cases {
		err := c.cfg.Check()
		if err == nil {
			t.Errorf("%s: Check accepted the config", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}

	base := uarch.Baseline()
	if err := base.Check(); err != nil {
		t.Errorf("baseline config rejected: %v", err)
	}
	// Zero-valued prefetcher sizing canonicalizes to the kind's defaults:
	// legal, and it runs.
	zero := uarch.Baseline()
	zero.Prefetcher = prefetch.Config{Kind: prefetch.KindDelta}
	if err := zero.Check(); err != nil {
		t.Fatalf("zero-sized delta prefetcher rejected: %v", err)
	}
	p := asm.MustAssemble("halt", "main: halt\n")
	if res := run(t, zero, p, nil); res.Retired != 1 {
		t.Errorf("zero-sized prefetcher config retired %d, want 1", res.Retired)
	}
}
