package uarch_test

import (
	"context"
	"testing"

	"minigraph/internal/asm"
	"minigraph/internal/core"
	"minigraph/internal/emu"
	"minigraph/internal/isa"
	"minigraph/internal/program"
	"minigraph/internal/rewrite"
	"minigraph/internal/uarch"
)

const sumSrc = `
        .data
table:  .word 1, 2, 3, 4, 5, 6, 7, 8
out:    .space 8
        .text
main:   li    r9, 200
outer:  li    r1, 8
        lda   r2, table(zero)
        clr   r3
loop:   ldq   r4, 0(r2)
        addq  r3, r4, r3
        lda   r2, 8(r2)
        subl  r1, 1, r1
        bne   r1, loop
        stq   r3, out(zero)
        subl  r9, 1, r9
        bne   r9, outer
        halt
`

func run(t testing.TB, cfg uarch.Config, p *isa.Program, mgt *core.MGT) *uarch.Result {
	t.Helper()
	pipe := uarch.New(cfg, p, mgt)
	res, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBaselineRunsToCompletion(t *testing.T) {
	p := asm.MustAssemble("sum", sumSrc)
	res := run(t, uarch.Baseline(), p, nil)
	ref, err := emu.RunToCompletion(p, nil, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired != ref.InstCount {
		t.Errorf("retired %d records, emulator executed %d", res.Retired, ref.InstCount)
	}
	if res.Retired != res.RetiredWork {
		t.Errorf("work %d != retired %d for a plain binary", res.RetiredWork, res.Retired)
	}
	ipc := res.IPC()
	if ipc < 0.3 || ipc > 6.0 {
		t.Errorf("suspicious IPC %.3f (cycles=%d retired=%d)", ipc, res.Cycles, res.Retired)
	}
	if res.Cycles <= 0 {
		t.Error("no cycles elapsed")
	}
}

func TestPipelineDeterministic(t *testing.T) {
	p := asm.MustAssemble("sum", sumSrc)
	a := run(t, uarch.Baseline(), p, nil)
	b := run(t, uarch.Baseline(), p, nil)
	if a.Cycles != b.Cycles || a.Retired != b.Retired || a.Mispredicts != b.Mispredicts {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

// loopOf builds a warm loop repeating body many times, so compulsory cache
// misses do not dominate the measurement.
func loopOf(body string, iters int) string {
	return "main:   li r20, " + itoa(iters) + "\nloop:\n" + body +
		"        subl r20, 1, r20\n        bne r20, loop\n        halt\n"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestDependentChainLatency(t *testing.T) {
	// A pure dependence chain issues one per cycle once caches are warm.
	body := ""
	for i := 0; i < 40; i++ {
		body += "        addq r1, 1, r1\n"
	}
	p := asm.MustAssemble("chain", loopOf(body, 500))
	res := run(t, uarch.Baseline(), p, nil)
	if ipc := res.IPC(); ipc > 1.15 || ipc < 0.85 {
		t.Errorf("dependence-chain IPC %.3f, want ~1.0", ipc)
	}
}

func TestIndependentOpsSuperscalar(t *testing.T) {
	// Independent ops should exceed 2 IPC on the 4-ALU baseline.
	body := ""
	for i := 0; i < 10; i++ {
		body += "        addq r1, 1, r2\n        addq r3, 1, r4\n        addq r5, 1, r6\n        addq r7, 1, r8\n"
	}
	p := asm.MustAssemble("indep", loopOf(body, 500))
	res := run(t, uarch.Baseline(), p, nil)
	if ipc := res.IPC(); ipc < 2.0 {
		t.Errorf("independent-op IPC %.3f, want > 2", ipc)
	}
}

func TestTwoCycleSchedulerSlowsChains(t *testing.T) {
	body := ""
	for i := 0; i < 40; i++ {
		body += "        addq r1, 1, r1\n"
	}
	p := asm.MustAssemble("chain", loopOf(body, 500))
	fast := run(t, uarch.Baseline(), p, nil)
	cfg := uarch.Baseline()
	cfg.SchedCycles = 2
	slow := run(t, cfg, p, nil)
	// With a 2-cycle scheduling loop the chain should take ~2x the cycles.
	ratio := float64(slow.Cycles) / float64(fast.Cycles)
	if ratio < 1.6 {
		t.Errorf("2-cycle scheduler ratio %.2f, want ~2", ratio)
	}
}

func TestBranchyCodePaysMispredicts(t *testing.T) {
	// Data-dependent unpredictable branches (LCG low bit) must produce
	// mispredicts and depress IPC.
	// Note: the branch keys off bit 17 of the LCG state — the low bits of a
	// power-of-two-modulus LCG are short-period and trivially predictable.
	src := `
main:   li   r9, 4000
        li   r1, 12345
loop:   mull r1, 1103515245, r1
        addq r1, 12345, r1
        and  r1, 1073741823, r1
        srl  r1, 17, r2
        and  r2, 1, r2
        beq  r2, skip
        addq r3, 1, r3
skip:   subl r9, 1, r9
        bne  r9, loop
        halt
`
	p := asm.MustAssemble("branchy", src)
	res := run(t, uarch.Baseline(), p, nil)
	if res.Mispredicts < 100 {
		t.Errorf("expected many mispredicts, got %d", res.Mispredicts)
	}
	if res.Branches == 0 {
		t.Error("no branches retired")
	}
}

func TestDCacheMissesHurt(t *testing.T) {
	// Pointer-chase over a region far larger than L1D: misses dominate.
	src := `
        .data
buf:    .space 8
        .text
main:   li   r9, 30000
        li   r1, 0
        li   r10, 2097152
loop:   ldq  r2, buf(r1)
        addq r2, 1, r2
        mull r1, 25173, r1
        addq r1, 13849, r1
        and  r1, 2097144, r1
        subl r9, 1, r9
        bne  r9, loop
        halt
`
	p := asm.MustAssemble("miss", src)
	res := run(t, uarch.Baseline(), p, nil)
	if res.L1DMisses < 1000 {
		t.Errorf("expected many L1D misses, got %d", res.L1DMisses)
	}
	if res.LoadMissReplays == 0 {
		t.Error("expected load-miss replays")
	}
	if ipc := res.IPC(); ipc > 3 {
		t.Errorf("memory-bound IPC %.2f suspiciously high", ipc)
	}
}

func TestStoreSetViolationAndLearning(t *testing.T) {
	// A store whose address forms slowly, then an immediate load of the
	// same address: the load speculates ahead, violates, and store sets
	// learn to synchronise the pair.
	src := `
        .data
slot:   .space 64
ptr:    .word 0
        .text
main:   li   r9, 2000
        lda  r12, slot(zero)
loop:   mull r1, 1, r2
        mull r2, 1, r2
        mull r2, 1, r2
        addq r2, r12, r3
        and  r3, -8, r3
        stq  r9, 0(r3)
        ldq  r5, slot(zero)
        addq r5, r5, r6
        subl r9, 1, r9
        bne  r9, loop
        halt
`
	p := asm.MustAssemble("viol", src)
	res := run(t, uarch.Baseline(), p, nil)
	if res.Violations == 0 {
		t.Error("expected at least one memory-ordering violation")
	}
	// Learning: violations should be far rarer than iterations.
	if res.Violations > 500 {
		t.Errorf("store sets did not learn: %d violations in 2000 iterations", res.Violations)
	}
}

func TestStoreForwarding(t *testing.T) {
	src := `
        .data
slot:   .space 8
        .text
main:   li   r9, 1000
loop:   stq  r9, slot(zero)
        ldq  r2, slot(zero)
        addq r2, r2, r3
        subl r9, 1, r9
        bne  r9, loop
        halt
`
	p := asm.MustAssemble("fwd", src)
	res := run(t, uarch.Baseline(), p, nil)
	if res.Forwards < 500 {
		t.Errorf("expected store-to-load forwarding, got %d", res.Forwards)
	}
	if res.Violations > 50 {
		t.Errorf("same-cycle-visible stores should rarely violate: %d", res.Violations)
	}
}

func TestReducedRegistersSlowDown(t *testing.T) {
	p := asm.MustAssemble("sum", sumSrc)
	full := run(t, uarch.Baseline(), p, nil)
	cfg := uarch.Baseline()
	cfg.PhysRegs = 80 // drastic reduction: 16 in-flight registers
	small := run(t, cfg, p, nil)
	if small.Cycles < full.Cycles {
		t.Errorf("fewer registers should not be faster: %d vs %d", small.Cycles, full.Cycles)
	}
	if small.StallRegs == 0 {
		t.Error("expected register-stall cycles with 80 physical registers")
	}
}

func TestNarrowMachineSlower(t *testing.T) {
	p := asm.MustAssemble("sum", sumSrc)
	wide := run(t, uarch.Baseline(), p, nil)
	cfg := uarch.Baseline()
	cfg.FetchWidth, cfg.RenameWidth, cfg.IssueWidth, cfg.CommitWidth = 2, 2, 2, 2
	cfg.Name = "2wide"
	narrow := run(t, cfg, p, nil)
	if narrow.Cycles <= wide.Cycles {
		t.Errorf("2-wide (%d cycles) should be slower than 6-wide (%d)", narrow.Cycles, wide.Cycles)
	}
}

// rewriteFor extracts and rewrites with the given policy, returning the
// rewritten program and its MGT.
func rewriteFor(t testing.TB, p *isa.Program, pol core.Policy, params core.ExecParams) (*isa.Program, *core.MGT) {
	t.Helper()
	g := program.BuildCFG(p, nil)
	lv := program.ComputeLiveness(g)
	prof, err := emu.ProfileProgram(p, nil, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sel := core.Extract(g, lv, prof, pol, 512)
	res, err := rewrite.Rewrite(p, sel, false)
	if err != nil {
		t.Fatal(err)
	}
	return res.Prog, core.NewMGT(res.Templates, params)
}

func TestMiniGraphPipelineRetiresHandles(t *testing.T) {
	p := asm.MustAssemble("sum", sumSrc)
	rw, mgt := rewriteFor(t, p, core.DefaultPolicy(), core.DefaultExecParams())
	res := run(t, uarch.MiniGraph(true), rw, mgt)
	if res.RetiredHandles == 0 {
		t.Fatal("no handles retired")
	}
	// Work conservation: handle constituents + singleton retires equal the
	// original dynamic instruction count (each k-graph became one handle of
	// k work plus k-1 nops that never retire), and retired records plus
	// dropped nops equal the rewritten stream length, which nop-fill keeps
	// equal to the original count.
	ref, _ := emu.RunToCompletion(p, nil, 10_000_000)
	if res.RetiredWork != ref.InstCount {
		t.Errorf("work %d != original %d", res.RetiredWork, ref.InstCount)
	}
	if res.Retired+res.FetchedNops != ref.InstCount {
		t.Errorf("retired %d + nops %d != original %d", res.Retired, res.FetchedNops, ref.InstCount)
	}
}

func TestMiniGraphSpeedsUpALUBoundKernel(t *testing.T) {
	// An ALU-idiom-rich kernel (long serial chains of collapsible pairs)
	// should benefit from mini-graph processing on a narrow machine.
	src := `
        .data
out:    .space 8
        .text
main:   li   r9, 3000
        clr  r3
loop:   addl r3, 7, r4
        srl  r4, 3, r4
        xor  r4, r3, r5
        and  r5, 255, r5
        addl r5, 1, r6
        sll  r6, 2, r6
        addq r3, r6, r3
        subl r9, 1, r9
        bne  r9, loop
        stq  r3, out(zero)
        halt
`
	p := asm.MustAssemble("alu", src)
	base := run(t, uarch.Baseline(), p, nil)
	rw, mgt := rewriteFor(t, p, core.DefaultPolicy(), core.DefaultExecParams())
	mg := run(t, uarch.MiniGraph(true), rw, mgt)
	if mg.RetiredHandles == 0 {
		t.Fatal("nothing collapsed")
	}
	sp := uarch.Speedup(base, mg)
	t.Logf("baseline %d cycles (IPC %.2f), minigraph %d cycles (workIPC %.2f), speedup %.3f",
		base.Cycles, base.IPC(), mg.Cycles, mg.WorkIPC(), sp)
	if sp < 0.8 {
		t.Errorf("mini-graphs slowed an ALU kernel down badly: speedup %.3f", sp)
	}
}

func TestMGReplayOnInteriorLoadMiss(t *testing.T) {
	// Interior-load mini-graph over a thrashing buffer: misses must replay
	// whole handles.
	src := `
        .data
buf:    .space 8
        .text
main:   li   r9, 20000
        li   r1, 0
loop:   ldq  r2, buf(r1)
        addq r2, 7, r2
        xor  r2, r9, r3
        mull r1, 25173, r1
        addq r1, 13849, r1
        and  r1, 2097144, r1
        subl r9, 1, r9
        bne  r9, loop
        halt
`
	p := asm.MustAssemble("mgmiss", src)
	pol := core.DefaultPolicy()
	rw, mgt := rewriteFor(t, p, pol, core.DefaultExecParams())
	res := run(t, uarch.MiniGraph(true), rw, mgt)
	if res.RetiredHandles == 0 {
		t.Skip("selection did not produce a load-bearing handle")
	}
	if res.MGReplays == 0 {
		t.Error("expected mini-graph replays from interior load misses")
	}
}

func TestConfigValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero-width config")
		}
	}()
	cfg := uarch.Baseline()
	cfg.FetchWidth = 0
	p := asm.MustAssemble("x", "main: halt\n")
	uarch.New(cfg, p, nil)
}

// TestExternalSerializationCost reproduces Figure 3's timing argument at
// micro scale. Two programs with identical dataflow: a slow producer (mull,
// 7 cycles) feeds the *second* instruction of a two-op idiom whose first
// instruction is ready early, and the idiom's result closes the loop
// recurrence. Executed individually, the first op overlaps the slow
// producer; collapsed into a handle, it spuriously waits for all interface
// inputs (external serialization), lengthening the recurrence.
func TestExternalSerializationCost(t *testing.T) {
	src := `
main:   li   r9, 3000
        li   r2, 3
        li   r1, 5
loop:   mull r2, 3, r2       ; slow producer (7 cycles)
        addl r1, 2, r1       ; early op of the idiom (independent of mull)
        xor  r1, r2, r1      ; late op: needs the slow producer
        subl r9, 1, r9
        bne  r9, loop
        halt
`
	p := asm.MustAssemble("extser", src)
	base := run(t, uarch.Baseline(), p, nil)

	pol := core.IntegerPolicy()
	pol.MaxSize = 2
	rw, mgt := rewriteFor(t, p, pol, core.DefaultExecParams())
	mg := run(t, uarch.MiniGraph(false), rw, mgt)
	if mg.RetiredHandles == 0 {
		t.Skip("idiom not selected")
	}
	// The handle executes addl+xor back to back after BOTH inputs arrive;
	// individually the addl overlaps the multiply. The mini-graph run must
	// therefore be measurably slower on this adversarial kernel.
	if mg.Cycles <= base.Cycles {
		t.Errorf("external serialization should cost cycles: %d vs %d", mg.Cycles, base.Cycles)
	}

	// Disallowing externally serial graphs recovers baseline performance.
	polNo := pol
	polNo.AllowExtSerial = false
	rw2, mgt2 := rewriteFor(t, p, polNo, core.DefaultExecParams())
	mg2 := run(t, uarch.MiniGraph(false), rw2, mgt2)
	if mg2.Cycles > base.Cycles*101/100 {
		t.Errorf("NoExtSerial policy should recover baseline: %d vs %d", mg2.Cycles, base.Cycles)
	}
}

// TestHandleOutputLatencyMatters verifies the MGHT LAT plumbing end to end:
// a recurrence through a 3-op idiom whose output is its *first* instruction
// (LAT=1) must run faster than one whose output is its *last* (LAT=3),
// because dependants wake up LAT cycles after handle issue (Figure 3a).
func TestHandleOutputLatencyMatters(t *testing.T) {
	early := `
main:   li   r9, 4000
        li   r1, 1
loop:   addl r1, 2, r1       ; output producer (first)
        cmplt r1, 99, r7     ; interior
        xor  r7, r9, r8      ; interior sink
        subl r9, 1, r9
        bne  r9, loop
        stq  r1, 0(sp)
        stq  r8, 8(sp)
        halt
`
	late := `
main:   li   r9, 4000
        li   r1, 1
loop:   cmplt r1, 99, r7     ; interior
        xor  r7, r9, r8      ; interior
        addl r1, 2, r1       ; output producer (last)... fed by the interior
        subl r9, 1, r9
        bne  r9, loop
        stq  r1, 0(sp)
        stq  r8, 8(sp)
        halt
`
	_ = late
	p := asm.MustAssemble("early", early)
	pol := core.IntegerPolicy()
	rw, mgt := rewriteFor(t, p, pol, core.DefaultExecParams())
	res := run(t, uarch.MiniGraph(false), rw, mgt)
	if res.RetiredHandles == 0 {
		t.Skip("idiom not selected")
	}
	// With LAT=1 for the early-output graph, the r1 recurrence sustains one
	// iteration per ~2 cycles despite the 3-cycle graph occupancy.
	perIter := float64(res.Cycles) / 4000
	if perIter > 3.5 {
		t.Errorf("early-output recurrence too slow: %.2f cycles/iter", perIter)
	}
}
