// Package alupipe models the ALU pipeline of §4.2: a single-entry,
// single-exit pipelined chain of ALUs. To the scheduler it looks like a
// pipelined multi-cycle functional unit: it accepts at most one operation
// per cycle, carries a mini-graph down its stages one instruction per stage
// (two with pair-wise collapsing), and drives a single output selected from
// the unlatched outputs of every stage. Because the output is shared, two
// operations whose results emerge in the same cycle conflict; the scheduler
// avoids this at issue time using the MGHT output latency (LAT), which this
// package tracks as a per-cycle output-port reservation ring.
package alupipe

// Pipe is one ALU pipeline instance.
type Pipe struct {
	depth   int
	outBusy []bool // ring: output port reserved at cycle c
	mask    int64  // len(outBusy)-1; the ring is a power of two
	ring    int64

	Accepted  int64 // operations entered
	OutsTaken int64
}

// New builds a pipeline with the given stage count (the paper uses 4-stage
// pipelines in place of two of the baseline's four ALUs). The reservation
// ring is sized to the next power of two so the per-cycle slot math is a
// mask instead of a division.
func New(depth int) *Pipe {
	size := 1
	for size < 4*(depth+2) {
		size <<= 1
	}
	return &Pipe{depth: depth, outBusy: make([]bool, size), mask: int64(size - 1)}
}

// Depth returns the stage count.
func (p *Pipe) Depth() int { return p.depth }

// CanAccept reports whether an operation entering at cycle now with output
// latency outLat (1..depth for mini-graphs; 1 for singleton ALU ops, which
// execute in the first stage with no penalty) can be scheduled: the entry
// slot is implicitly free (one per cycle is enforced by the issue loop) and
// the output port at now+outLat must be unreserved.
func (p *Pipe) CanAccept(now int64, outLat int) bool {
	if outLat < 1 || outLat > p.depth {
		return false
	}
	return !p.outBusy[(now+int64(outLat))&p.mask]
}

// Accept reserves the output port for an operation entering at now.
func (p *Pipe) Accept(now int64, outLat int) {
	p.outBusy[(now+int64(outLat))&p.mask] = true
	p.Accepted++
	p.OutsTaken++
}

// Release clears a reservation (used when a mini-graph replays after an
// interior-load miss before producing its output).
func (p *Pipe) Release(at int64) {
	p.outBusy[at&p.mask] = false
}

// Tick advances the ring: the slot for the cycle that just passed is
// recycled. Call once per simulated cycle with the new current cycle.
func (p *Pipe) Tick(now int64) {
	// Clear the slot that is now exactly one full ring behind.
	p.outBusy[(now-1)&p.mask] = false
	p.ring = now
}
