package alupipe_test

import (
	"testing"

	"minigraph/internal/uarch/alupipe"
)

func TestAcceptAndOutputConflict(t *testing.T) {
	p := alupipe.New(4)
	if !p.CanAccept(10, 3) {
		t.Fatal("fresh pipe rejects")
	}
	p.Accept(10, 3) // output at cycle 13
	// A 2-cycle graph entering at 11 would also exit at 13: conflict on the
	// single output port.
	if p.CanAccept(11, 2) {
		t.Error("writeback conflict not detected")
	}
	// A 1-cycle op at 11 exits at 12: fine.
	if !p.CanAccept(11, 1) {
		t.Error("non-conflicting op rejected")
	}
}

func TestDepthBounds(t *testing.T) {
	p := alupipe.New(4)
	if p.CanAccept(0, 0) || p.CanAccept(0, 5) {
		t.Error("out-of-range output latency accepted")
	}
	if !p.CanAccept(0, 4) {
		t.Error("full-depth graph rejected")
	}
}

func TestReleaseAndTick(t *testing.T) {
	p := alupipe.New(4)
	p.Accept(10, 2) // output at 12
	if !p.CanAccept(11, 2) {
		t.Fatal("independent slot (exit 13) blocked")
	}
	p.Release(12) // mini-graph replayed before writeback
	if !p.CanAccept(10, 2) {
		t.Error("release did not clear the reservation")
	}
	// Slots recycle as cycles advance.
	p.Accept(20, 1)
	for c := int64(21); c < 21+int64(4*(4+2)); c++ {
		p.Tick(c)
	}
	if !p.CanAccept(21+int64(4*(4+2)), 1) {
		t.Error("ring slot not recycled after a full rotation")
	}
}

func TestSingletonsPipelinedBackToBack(t *testing.T) {
	p := alupipe.New(4)
	// One singleton per cycle, all latency 1: outputs at distinct cycles,
	// never a conflict — "substitute ALU pipelines for ALUs without ...
	// degrading the performance of programs that do not exploit
	// mini-graphs" (§4.2).
	for c := int64(0); c < 100; c++ {
		if !p.CanAccept(c, 1) {
			t.Fatalf("singleton rejected at cycle %d", c)
		}
		p.Accept(c, 1)
		p.Tick(c + 1)
	}
	if p.Accepted != 100 {
		t.Errorf("accepted %d", p.Accepted)
	}
}

func TestMixedGraphLatencies(t *testing.T) {
	p := alupipe.New(4)
	// Graphs with staggered output latencies share the pipe without
	// conflicts when their exits differ.
	p.Accept(0, 4)
	if !p.CanAccept(1, 2) { // exit 3 != 4
		t.Error("staggered graph rejected")
	}
	p.Accept(1, 2)
	if p.CanAccept(2, 2) { // exit 4: conflicts with the first graph
		t.Error("exit-4 conflict missed")
	}
}
