// Package sched provides the scheduler building blocks: the sliding-window
// resource reservation bitmap of §4.3 and per-cycle issue-port accounting.
//
// A sliding-window scheduler extends a conventional scheduler's forward
// reservation bitmap (used to reserve register write ports for multi-cycle
// operations) in two dimensions: resources now include functional units,
// and the time horizon extends to the maximum mini-graph execution latency.
// Issuing an integer-memory handle ANDs its FUBMP against the window; a
// clear result reserves all units at once, a conflict cancels issue for
// that cycle (§4.3, "Basic operation").
package sched

import (
	"fmt"

	"minigraph/internal/core"
)

// Resource identifies one reservable unit class in the window.
type Resource int

// Window resources. WrPort is the register-file write-port pool; the rest
// mirror core.FU classes.
const (
	ResALU Resource = iota
	ResAP
	ResLoad
	ResStore
	ResFP
	ResWrPort
	numResources
)

// String names the resource.
func (r Resource) String() string {
	switch r {
	case ResALU:
		return "ALU"
	case ResAP:
		return "AP"
	case ResLoad:
		return "LD"
	case ResStore:
		return "ST"
	case ResFP:
		return "FP"
	case ResWrPort:
		return "WR"
	}
	return "?"
}

// FromFU maps MGHT functional-unit classes to window resources.
func FromFU(fu core.FU) Resource {
	switch fu {
	case core.FUALU:
		return ResALU
	case core.FUAP:
		return ResAP
	case core.FULoad:
		return ResLoad
	case core.FUStore:
		return ResStore
	}
	return ResALU
}

// Capacities is the per-resource unit count, indexed by Resource. A plain
// array (rather than a map) keeps window construction and accounting
// allocation-free and branch-cheap on the per-cycle path.
type Capacities [numResources]int

// Window is the two-dimensional reservation bitmap: counts[cycle][resource]
// versus per-resource capacity. Cycles are a ring over the window horizon;
// the counts live in one flat slab, slot-major, so the several same-cycle
// probes the select loop makes land on one cache line and Tick's clear of
// an expired slot is one contiguous run.
type Window struct {
	horizon int
	mask    int64 // horizon-1 when horizon is a power of two, else 0
	cap     Capacities
	counts  []int // horizon × numResources, counts[slot*numResources+r]
}

// NewWindow builds a window covering horizon future cycles.
func NewWindow(horizon int, capacity Capacities) *Window {
	w := &Window{
		horizon: horizon,
		cap:     capacity,
		counts:  make([]int, int(numResources)*horizon),
	}
	if horizon&(horizon-1) == 0 {
		w.mask = int64(horizon - 1)
	}
	return w
}

// Horizon returns the number of future cycles covered.
func (w *Window) Horizon() int { return w.horizon }

// Capacity returns the capacity of r.
func (w *Window) Capacity(r Resource) int { return w.cap[r] }

func (w *Window) slot(cycle int64) int {
	if w.mask != 0 {
		return int(cycle & w.mask)
	}
	return int(cycle % int64(w.horizon))
}

func (w *Window) idx(r Resource, cycle int64) int {
	return w.slot(cycle)*int(numResources) + int(r)
}

// Available reports whether one unit of r is free at cycle.
func (w *Window) Available(r Resource, cycle int64) bool {
	return w.counts[w.idx(r, cycle)] < w.cap[r]
}

// Reserve takes one unit of r at cycle.
func (w *Window) Reserve(r Resource, cycle int64) {
	w.counts[w.idx(r, cycle)]++
}

// Cancel returns one unit of r at cycle (replay/squash recovery).
func (w *Window) Cancel(r Resource, cycle int64) {
	i := w.idx(r, cycle)
	if w.counts[i] > 0 {
		w.counts[i]--
	}
}

// Tick clears the slot belonging to the cycle that just completed; the ring
// slot is reused for cycle now+horizon-1.
func (w *Window) Tick(now int64) {
	s := w.slot(now+int64(w.horizon)-1) * int(numResources)
	row := w.counts[s : s+int(numResources)]
	for i := range row {
		row[i] = 0
	}
}

// CheckFUBmp performs the sliding-window AND: it reports whether FU0 at
// cycle now and every FUBMP entry at its offset are available.
func (w *Window) CheckFUBmp(now int64, ei *core.ExecInfo) bool {
	if ei.TotalLat >= w.horizon {
		return false // graph longer than the window: never schedulable
	}
	if !w.Available(FromFU(ei.FU0), now) {
		return false
	}
	for c := 1; c < len(ei.FUBmp); c++ {
		if ei.FUBmp[c] == core.FUNone {
			continue
		}
		if !w.Available(FromFU(ei.FUBmp[c]), now+int64(c)) {
			return false
		}
	}
	return true
}

// ReserveFUBmp performs the sliding-window OR: it reserves FU0 and every
// FUBMP unit. Call only after CheckFUBmp succeeded this cycle.
func (w *Window) ReserveFUBmp(now int64, ei *core.ExecInfo) {
	w.Reserve(FromFU(ei.FU0), now)
	for c := 1; c < len(ei.FUBmp); c++ {
		if ei.FUBmp[c] != core.FUNone {
			w.Reserve(FromFU(ei.FUBmp[c]), now+int64(c))
		}
	}
}

// CancelFUBmp undoes ReserveFUBmp (mini-graph replay).
func (w *Window) CancelFUBmp(issuedAt int64, ei *core.ExecInfo) {
	w.Cancel(FromFU(ei.FU0), issuedAt)
	for c := 1; c < len(ei.FUBmp); c++ {
		if ei.FUBmp[c] != core.FUNone {
			w.Cancel(FromFU(ei.FUBmp[c]), issuedAt+int64(c))
		}
	}
}

// String renders current occupancy for debugging.
func (w *Window) String() string {
	s := ""
	for r := Resource(0); r < numResources; r++ {
		row := make([]int, w.horizon)
		for c := 0; c < w.horizon; c++ {
			row[c] = w.counts[c*int(numResources)+int(r)]
		}
		s += fmt.Sprintf("%s(cap %d): %v\n", r, w.cap[r], row)
	}
	return s
}
