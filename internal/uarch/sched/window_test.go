package sched_test

import (
	"testing"

	"minigraph/internal/core"
	"minigraph/internal/isa"
	"minigraph/internal/uarch/sched"
)

func capacities() sched.Capacities {
	return sched.Capacities{
		sched.ResALU: 2, sched.ResAP: 2, sched.ResLoad: 2,
		sched.ResStore: 1, sched.ResFP: 2, sched.ResWrPort: 4,
	}
}

func TestReserveUntilCapacity(t *testing.T) {
	w := sched.NewWindow(16, capacities())
	if !w.Available(sched.ResStore, 5) {
		t.Fatal("fresh window should be free")
	}
	w.Reserve(sched.ResStore, 5)
	if w.Available(sched.ResStore, 5) {
		t.Error("store port capacity 1 exceeded")
	}
	if !w.Available(sched.ResStore, 6) {
		t.Error("other cycles should be unaffected")
	}
	w.Cancel(sched.ResStore, 5)
	if !w.Available(sched.ResStore, 5) {
		t.Error("cancel did not free the slot")
	}
}

func TestTickRecyclesSlots(t *testing.T) {
	w := sched.NewWindow(8, capacities())
	w.Reserve(sched.ResALU, 3)
	w.Reserve(sched.ResALU, 3)
	if w.Available(sched.ResALU, 3) {
		t.Fatal("capacity 2 exhausted")
	}
	// Cycle 3 passes; its ring slot is reused for cycle 3+8-? — after
	// Tick(4), the slot for the just-completed cycle is clear.
	w.Tick(4)
	if !w.Available(sched.ResALU, 3+8) {
		t.Error("recycled slot should be free for the wrapped cycle")
	}
}

// ldAluTemplate builds the paper's mini-graph 34 shape: load at offset 0,
// ALU work afterwards.
func ldAluTemplate() *core.Template {
	return &core.Template{
		Insns: []core.TemplateInsn{
			{Op: isa.OpLdq, B: core.Operand{Kind: core.OpndExt, Idx: 0}, Imm: 16},
			{Op: isa.OpSrl, A: core.Operand{Kind: core.OpndInt, Idx: 0}, B: core.Operand{Kind: core.OpndImm}, Imm: 14},
			{Op: isa.OpAnd, A: core.Operand{Kind: core.OpndInt, Idx: 1}, B: core.Operand{Kind: core.OpndImm}, Imm: 1},
		},
		NumIn: 1, OutIdx: 2, MemIdx: 0, BranchIdx: -1,
	}
}

func TestFUBmpCheckReserveCancel(t *testing.T) {
	w := sched.NewWindow(16, capacities())
	ei := ldAluTemplate().Schedule(core.ExecParams{LoadLat: 2, UseAP: false})
	if !w.CheckFUBmp(10, ei) {
		t.Fatal("fresh window rejects the mini-graph")
	}
	w.ReserveFUBmp(10, ei)
	// FU0 (load port) at cycle 10, ALUs at 12 and 13.
	if !w.Available(sched.ResLoad, 10) {
		// capacity 2: one taken, one free
		t.Error("load port should have one unit left")
	}
	w.Reserve(sched.ResALU, 12)
	w.Reserve(sched.ResALU, 12)
	// Third mini-graph issue hitting ALU@12 must now fail the AND check.
	if w.CheckFUBmp(10, ei) {
		t.Error("conflict at cycle 12 not detected")
	}
	w.CancelFUBmp(10, ei)
	w.Cancel(sched.ResALU, 12)
	if !w.CheckFUBmp(10, ei) {
		t.Error("cancel did not restore availability")
	}
}

func TestGraphLongerThanWindowRejected(t *testing.T) {
	w := sched.NewWindow(4, capacities())
	ei := ldAluTemplate().Schedule(core.ExecParams{LoadLat: 2, UseAP: false})
	// TotalLat = 4 >= horizon 4.
	if w.CheckFUBmp(0, ei) {
		t.Error("graph longer than the window must never schedule")
	}
}

func TestFromFU(t *testing.T) {
	cases := map[core.FU]sched.Resource{
		core.FUALU:   sched.ResALU,
		core.FUAP:    sched.ResAP,
		core.FULoad:  sched.ResLoad,
		core.FUStore: sched.ResStore,
	}
	for fu, want := range cases {
		if got := sched.FromFU(fu); got != want {
			t.Errorf("FromFU(%v) = %v", fu, got)
		}
	}
}
