// Package cache models the simulated memory hierarchy: set-associative
// write-back caches with LRU replacement, and a main-memory bus with
// occupancy-based contention. The default configuration matches §6 of the
// paper: 32KB 2-way 32B-line L1s (1-cycle I, 2-cycle D), a 2MB 4-way
// 128B-line 10-cycle L2, and 100-cycle memory behind a 16-byte bus running
// at one quarter of the core frequency.
package cache

import "minigraph/internal/isa"

// Config sizes one cache level.
type Config struct {
	Size     int // bytes
	Assoc    int
	LineSize int // bytes
	Latency  int // access latency in cycles
}

// L1IConfig, L1DConfig and L2Config are the paper's hierarchy.
func L1IConfig() Config { return Config{Size: 32 << 10, Assoc: 2, LineSize: 32, Latency: 1} }

// L1DConfig is the 2-cycle data cache.
func L1DConfig() Config { return Config{Size: 32 << 10, Assoc: 2, LineSize: 32, Latency: 2} }

// L2Config is the shared 2MB L2.
func L2Config() Config { return Config{Size: 2 << 20, Assoc: 4, LineSize: 128, Latency: 10} }

// Bus models the memory bus: a 16-byte-wide channel at one quarter core
// frequency. An L2 line fill occupies it for LineSize/Width transfers of
// Ratio cycles each; requests queue behind the current occupant.
type Bus struct {
	Width    int // bytes per transfer
	Ratio    int // core cycles per bus cycle
	MemLat   int // DRAM access latency (core cycles)
	freeAt   int64
	Requests int64
	Stalls   int64 // cycles spent waiting for the bus
}

// NewBus returns the paper's memory interface.
func NewBus() *Bus { return &Bus{Width: 16, Ratio: 4, MemLat: 100} }

// Access returns the cycle at which a line of size bytes requested at
// cycle now is fully delivered.
func (b *Bus) Access(now int64, size int) int64 {
	b.Requests++
	start := now
	if b.freeAt > start {
		b.Stalls += b.freeAt - start
		start = b.freeAt
	}
	transfers := (size + b.Width - 1) / b.Width
	done := start + int64(b.MemLat) + int64(transfers*b.Ratio)
	b.freeAt = done
	return done
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// pf marks a line installed by a prefetch that no demand access has
	// touched yet; pfReady is the cycle its fill completes. The first
	// demand hit consumes the flag (useful/late accounting) and, if the
	// fill is still in flight, waits for it.
	pf      bool
	pfReady int64
	lru     uint32
}

// Cache is one level of the hierarchy. Misses recurse into the next level
// (or the bus at the last level). The model is latency/occupancy based:
// each access returns the cycle at which its data is available. Lines live
// in one flat set-major slab so an access touches a single contiguous run
// of Assoc entries.
type Cache struct {
	cfg      Config
	lines    []line // nsets × Assoc, set-major
	setShift uint
	setMask  uint64
	next     *Cache
	bus      *Bus
	lruClock uint32

	// Stats.
	Accesses   int64
	Misses     int64
	Writebacks int64

	// Prefetch stats (all zero unless Prefetch is called). PrefIssued
	// counts fills actually started (probes that hit are dropped);
	// PrefUseful counts prefetched lines a demand access touched before
	// eviction; PrefLate counts the useful subset whose fill was still in
	// flight at first touch.
	PrefIssued int64
	PrefUseful int64
	PrefLate   int64
}

// New builds a cache backed by next (or by bus if next is nil).
func New(cfg Config, next *Cache, bus *Bus) *Cache {
	nsets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	c := &Cache{cfg: cfg, next: next, bus: bus}
	c.lines = make([]line, nsets*cfg.Assoc)
	for c.setShift = 0; 1<<c.setShift < cfg.LineSize; c.setShift++ {
	}
	c.setMask = uint64(nsets - 1)
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns the line-aligned address containing a.
func (c *Cache) LineAddr(a isa.Addr) isa.Addr {
	return a &^ isa.Addr(c.cfg.LineSize-1)
}

// Access simulates a read (write=false) or write (write=true) of the line
// containing addr at cycle now. It returns the cycle at which the data is
// available and whether the access hit in this level.
func (c *Cache) Access(now int64, addr isa.Addr, write bool) (readyAt int64, hit bool) {
	c.Accesses++
	set := (uint64(addr) >> c.setShift) & c.setMask
	tag := uint64(addr) >> c.setShift / (c.setMask + 1)
	base := int(set) * c.cfg.Assoc
	ways := c.lines[base : base+c.cfg.Assoc]
	c.lruClock++
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			ways[w].lru = c.lruClock
			if write {
				ways[w].dirty = true
			}
			ready := now + int64(c.cfg.Latency)
			if ways[w].pf {
				// First demand touch of a prefetched line: useful, and late
				// if the fill has not landed yet (the access waits for it).
				ways[w].pf = false
				c.PrefUseful++
				if ways[w].pfReady > ready {
					c.PrefLate++
					ready = ways[w].pfReady
				}
			}
			return ready, true
		}
	}
	// Miss: fill from below.
	c.Misses++
	fillReady := now + int64(c.cfg.Latency)
	if c.next != nil {
		r, _ := c.next.Access(fillReady, addr, false)
		fillReady = r
	} else if c.bus != nil {
		fillReady = c.bus.Access(fillReady, c.cfg.LineSize)
	}
	// Victim selection.
	victim := 0
	for w := range ways {
		if !ways[w].valid {
			victim = w
			break
		}
		if ways[w].lru < ways[victim].lru {
			victim = w
		}
	}
	if ways[victim].valid && ways[victim].dirty {
		c.Writebacks++
		if c.next != nil {
			c.next.Access(fillReady, c.reconstruct(set, ways[victim].tag), true)
		} else if c.bus != nil {
			c.bus.Access(fillReady, c.cfg.LineSize)
		}
	}
	ways[victim] = line{tag: tag, valid: true, dirty: write, lru: c.lruClock}
	return fillReady, false
}

// Prefetch installs the line containing addr at cycle now, filling from
// the next level (or the bus) exactly like a demand miss — prefetch
// traffic queues on the same bus and evicts real victims, so it competes
// for bandwidth rather than arriving for free. A probe that hits (the line
// is already present, demand- or prefetch-installed) is dropped without
// side effects. Returns whether a fill was started.
func (c *Cache) Prefetch(now int64, addr isa.Addr) bool {
	set := (uint64(addr) >> c.setShift) & c.setMask
	tag := uint64(addr) >> c.setShift / (c.setMask + 1)
	base := int(set) * c.cfg.Assoc
	ways := c.lines[base : base+c.cfg.Assoc]
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			return false
		}
	}
	c.PrefIssued++
	fillReady := now + int64(c.cfg.Latency)
	if c.next != nil {
		r, _ := c.next.Access(fillReady, addr, false)
		fillReady = r
	} else if c.bus != nil {
		fillReady = c.bus.Access(fillReady, c.cfg.LineSize)
	}
	c.lruClock++
	victim := 0
	for w := range ways {
		if !ways[w].valid {
			victim = w
			break
		}
		if ways[w].lru < ways[victim].lru {
			victim = w
		}
	}
	if ways[victim].valid && ways[victim].dirty {
		c.Writebacks++
		if c.next != nil {
			c.next.Access(fillReady, c.reconstruct(set, ways[victim].tag), true)
		} else if c.bus != nil {
			c.bus.Access(fillReady, c.cfg.LineSize)
		}
	}
	ways[victim] = line{tag: tag, valid: true, pf: true, pfReady: fillReady, lru: c.lruClock}
	return true
}

func (c *Cache) reconstruct(set uint64, tag uint64) isa.Addr {
	return isa.Addr((tag*(c.setMask+1) + set) << c.setShift)
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
