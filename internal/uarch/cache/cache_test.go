package cache_test

import (
	"testing"

	"minigraph/internal/isa"
	"minigraph/internal/uarch/cache"
)

func TestHitAfterMiss(t *testing.T) {
	c := cache.New(cache.L1DConfig(), nil, cache.NewBus())
	ready, hit := c.Access(0, 0x1000, false)
	if hit {
		t.Error("cold access hit")
	}
	if ready <= 2 {
		t.Errorf("miss served too fast: %d", ready)
	}
	ready2, hit2 := c.Access(ready, 0x1010, false) // same 32B line
	if !hit2 {
		t.Error("same-line access missed")
	}
	if ready2 != ready+int64(c.Config().Latency) {
		t.Errorf("hit latency %d", ready2-ready)
	}
}

func TestLRUReplacement(t *testing.T) {
	// Tiny cache: 2 ways x 2 sets x 32B lines = 128B.
	cfg := cache.Config{Size: 128, Assoc: 2, LineSize: 32, Latency: 1}
	c := cache.New(cfg, nil, cache.NewBus())
	a := isa.Addr(0)      // set 0
	b := isa.Addr(64)     // set 0 (stride = sets*linesize = 64)
	d := isa.Addr(128)    // set 0
	c.Access(0, a, false) // miss, install
	c.Access(10, b, false)
	c.Access(20, a, false) // hit: a is MRU
	c.Access(30, d, false) // evicts b (LRU)
	if _, hit := c.Access(40, a, false); !hit {
		t.Error("a should have survived")
	}
	if _, hit := c.Access(50, b, false); hit {
		t.Error("b should have been evicted")
	}
}

func TestWritebackDirty(t *testing.T) {
	cfg := cache.Config{Size: 64, Assoc: 1, LineSize: 32, Latency: 1}
	bus := cache.NewBus()
	c := cache.New(cfg, nil, bus)
	c.Access(0, 0, true)     // dirty line in set 0
	c.Access(100, 64, false) // evicts the dirty line -> writeback
	if c.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Writebacks)
	}
	if bus.Requests < 2 { // fill + writeback
		t.Errorf("bus requests = %d", bus.Requests)
	}
}

func TestHierarchyL2Fill(t *testing.T) {
	bus := cache.NewBus()
	l2 := cache.New(cache.L2Config(), nil, bus)
	l1 := cache.New(cache.L1DConfig(), l2, nil)
	ready, hit := l1.Access(0, 0x4000, false)
	if hit || l2.Misses != 1 {
		t.Errorf("cold: hit=%v l2miss=%d", hit, l2.Misses)
	}
	// Memory + bus latency must dominate the cold miss.
	if ready < 100 {
		t.Errorf("cold miss latency %d < memory latency", ready)
	}
	// A second L1 miss to a different L1 line in the same L2 line hits L2.
	// (L1 lines are 32B, L2 lines 128B.)
	ready2, hit2 := l1.Access(ready, 0x4020, false)
	if hit2 {
		t.Error("different L1 line should miss L1")
	}
	if l2.Misses != 1 {
		t.Errorf("L2 should have hit: misses=%d", l2.Misses)
	}
	if ready2-ready > 20 {
		t.Errorf("L2 hit took %d cycles", ready2-ready)
	}
}

func TestBusContention(t *testing.T) {
	bus := cache.NewBus()
	// Two simultaneous line fills: the second queues behind the first.
	r1 := bus.Access(0, 128)
	r2 := bus.Access(0, 128)
	if r2 <= r1 {
		t.Errorf("no contention: %d vs %d", r1, r2)
	}
	transfers := int64(128 / 16 * 4)
	if r1 != 100+transfers {
		t.Errorf("first fill at %d", r1)
	}
	if bus.Stalls == 0 {
		t.Error("no bus stalls recorded")
	}
}

func TestMissRate(t *testing.T) {
	c := cache.New(cache.L1DConfig(), nil, cache.NewBus())
	for i := 0; i < 100; i++ {
		c.Access(int64(i*200), isa.Addr(i)*32, false) // all distinct lines
	}
	if c.MissRate() != 1.0 {
		t.Errorf("streaming miss rate %.2f", c.MissRate())
	}
}
