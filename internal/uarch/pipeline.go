package uarch

import (
	"context"
	"fmt"
	"math"

	"minigraph/internal/core"
	"minigraph/internal/emu"
	"minigraph/internal/isa"
	"minigraph/internal/uarch/alupipe"
	"minigraph/internal/uarch/bpred"
	"minigraph/internal/uarch/cache"
	"minigraph/internal/uarch/prefetch"
	"minigraph/internal/uarch/rename"
	"minigraph/internal/uarch/sched"
	"minigraph/internal/uarch/storesets"
)

const notReady = math.MaxInt64 / 4

// feEntry is a front-end pipe slot: a fetched uop travelling towards rename.
type feEntry struct {
	u       *uop
	readyAt int64
}

// feRing is the fetch-to-rename pipe: a fixed-capacity ring of feEntry,
// sized once at construction so the steady-state front end never
// allocates. The buffer is rounded up to a power of two so slot math is a
// mask; the *logical* capacity (what full() enforces, and therefore what
// timing observes) stays exact.
type feRing struct {
	buf  []feEntry
	mask int
	cap  int
	head int
	n    int
}

func newFERing(capacity int) feRing {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return feRing{buf: make([]feEntry, size), mask: size - 1, cap: capacity}
}

func (r *feRing) len() int   { return r.n }
func (r *feRing) full() bool { return r.n == r.cap }
func (r *feRing) front() *feEntry {
	return &r.buf[r.head]
}

func (r *feRing) push(e feEntry) {
	r.buf[(r.head+r.n)&r.mask] = e
	r.n++
}

func (r *feRing) popFront() feEntry {
	e := r.buf[r.head]
	r.buf[r.head] = feEntry{}
	r.head = (r.head + 1) & r.mask
	r.n--
	return e
}

// TraceSource delivers the architecturally correct dynamic instruction
// stream to the pipeline. Two implementations exist: the live emu.Stream,
// which steps the functional emulator lazily, and trace.Reader, which
// replays an immutable captured trace. The contract mirrors emu.Stream:
// NextInto writes the record at the cursor into dst and advances (false =
// exhausted), Rewind re-serves from an earlier sequence number after a
// squash, Exhausted reports end of stream, and Err reports the
// architectural fault that truncated it. The into-style delivery lets
// fetch write each record straight into its uop with no intermediate
// staging copy. Timing must be byte-identical across implementations —
// the golden fixtures enforce this.
type TraceSource interface {
	NextInto(dst *emu.Record) bool
	Rewind(seq int64)
	Exhausted() bool
	Err() error
}

// Pipeline is one simulated machine instance bound to one program run.
type Pipeline struct {
	cfg Config
	src TraceSource
	mgt *core.MGT

	pred   bpred.Predictor
	ssets  *storesets.Predictor
	icache *cache.Cache
	dcache *cache.Cache
	l2     *cache.Cache
	bus    *cache.Bus

	// pf is the L1D prefetch engine (nil = disabled); pfBuf is the
	// fixed-size target buffer OnAccess fills, so the per-load hook never
	// allocates.
	pf    *prefetch.Engine
	pfBuf [prefetch.MaxDegree]isa.Addr

	window *sched.Window
	aps    []*alupipe.Pipe
	apBusy []bool
	ren    *rename.Table

	readyAt []int64 // per physical register

	rob *rob
	// The scheduler is split by issue state so the per-cycle select loop
	// touches only entries that could actually issue. iqCand holds
	// not-yet-issued entries in program order (the select scan order);
	// iqHeld holds issued entries still occupying a scheduler slot
	// (unordered, O(1) removal via uop.heldIdx). IQ occupancy — what
	// dispatch stalls against — is the sum of both. iqFreeRing schedules
	// the two-cycle post-issue hold of singleton entries (§4.1): slot
	// cycle&3 lists the entries whose hold expires that cycle, epoch-tagged
	// so a recycled uop can never be freed by its previous life's entry.
	iqCand     []*uop
	iqHeld     []*uop
	iqFreeRing [4][]uopRef
	// pregWaiters[preg] lists the candidates whose wakeAt was computed
	// while preg was notReady (producer not yet issued). A physical
	// register's ready time only ever *decreases* at the producer's issue
	// (notReady → cycle+eff; finite values are monotonically increasing
	// across replays), so recomputing exactly those subscribers there keeps
	// every candidate's wakeAt a sound lower bound on its true ready cycle
	// — the select scan can skip sleeping entries on one comparison.
	pregWaiters [][]uopRef
	// replayedHeld flags that a replay returned issued entries to the
	// not-issued state this cycle; processEvents then migrates them from
	// iqHeld back into iqCand (in program order) before the select pass.
	// replayScratch is the migration buffer, reused so the (frequent, on
	// cache-miss-heavy runs) replay path stays allocation-free.
	replayedHeld  bool
	replayScratch []*uop

	lsq      *rob // reuse ring structure for the load/store queue
	frontend feRing

	// uopPool recycles uop structures: a uop returns to the pool once it is
	// dead (retired or squashed) AND every event scheduled against it has
	// drained from the wheel. Recycling bumps the epoch, so an event that
	// somehow survived drains as a stale no-op rather than waking the
	// reincarnated uop. uopAllocs counts pool misses (fresh allocations);
	// in steady state it stays pinned near the machine's in-flight capacity.
	uopPool   []*uop
	uopAllocs int64

	wheel      eventWheel
	cycle      int64
	fetchStall int64 // no fetch before this cycle
	icacheFill int64
	pendingU   *uop // fetched but stalled on an icache miss
	pendingBr  *uop // unresolved (full) mispredicted branch

	violPending bool
	violSeq     int64

	lastFetchLine isa.Addr
	haveFetchLine bool

	// rdig folds every retired register write and store, in retirement
	// order — the pipeline half of the differential oracle (emu.Digest).
	rdig emu.Digest

	stats Result
}

// uopRef is an epoch-tagged uop reference: a scheduled singleton
// scheduler-slot release, or a wake-up subscription. The tag makes stale
// references (the uop was squashed, replayed, or recycled into a new life)
// cheap to recognise and skip.
type uopRef struct {
	u     *uop
	epoch int
}

type evKind uint8

const (
	evComplete evKind = iota
	evMissDiscover
	evResolve
)

// New builds a pipeline for prog with a live emulation source. mgt may be
// nil for plain binaries.
func New(cfg Config, prog *isa.Program, mgt *core.MGT) *Pipeline {
	cfg.Validate()
	m := emu.NewMachine(prog, mgt)
	return NewWithSource(cfg, mgt, emu.NewStream(m, cfg.EffectiveStreamWindow(), cfg.MaxRecords))
}

// NewWithSource builds a pipeline fed by an explicit record source — a
// live emu.Stream or a trace replay cursor. The source must respect
// cfg.MaxRecords itself (both emu.NewStream and trace.NewReader take the
// limit at construction).
func NewWithSource(cfg Config, mgt *core.MGT, src TraceSource) *Pipeline {
	cfg.Validate()
	p := &Pipeline{
		cfg:      cfg,
		src:      src,
		mgt:      mgt,
		rdig:     emu.NewDigest(),
		pred:     bpred.New(cfg.BPred),
		pf:       prefetch.New(cfg.Prefetcher),
		ssets:    storesets.New(cfg.StoreSets),
		bus:      cache.NewBus(),
		ren:      rename.New(cfg.PhysRegs),
		rob:      newROB(cfg.ROBSize),
		lsq:      newROB(cfg.LSQSize),
		iqCand:   make([]*uop, 0, cfg.IQSize),
		iqHeld:   make([]*uop, 0, cfg.IQSize),
		frontend: newFERing(cfg.FrontendCapacity()),
	}
	for i := range p.iqFreeRing {
		p.iqFreeRing[i] = make([]uopRef, 0, cfg.IssueWidth)
	}
	if cfg.MemLatency > 0 {
		p.bus.MemLat = cfg.MemLatency
	}
	p.l2 = cache.New(cfg.L2, nil, p.bus)
	p.icache = cache.New(cfg.ICache, p.l2, nil)
	p.dcache = cache.New(cfg.DCache, p.l2, nil)
	p.window = sched.NewWindow(cfg.WindowHorizon, sched.Capacities{
		sched.ResALU:    cfg.IntALUs,
		sched.ResAP:     cfg.APs,
		sched.ResLoad:   cfg.LoadPorts,
		sched.ResStore:  cfg.StorePorts,
		sched.ResFP:     cfg.FPUnits,
		sched.ResWrPort: cfg.RFWritePorts,
	})
	for i := 0; i < cfg.APs; i++ {
		p.aps = append(p.aps, alupipe.New(cfg.APDepth))
	}
	p.apBusy = make([]bool, cfg.APs)
	p.readyAt = make([]int64, p.ren.NumPhys())
	p.pregWaiters = make([][]uopRef, p.ren.NumPhys())
	p.stats.Config = cfg.Name
	return p
}

// hardCycleLimit aborts a simulation that stopped making forward progress:
// no real run approaches it, so exceeding it is a livelock bug, not a long
// program.
const hardCycleLimit = int64(10_000_000_000)

// Run simulates to completion (program halt, MaxRecords, or ctx
// cancellation) and returns the statistics. Cancellation is checked every
// few thousand cycles so a long simulation aborts promptly without taxing
// the per-cycle hot loop.
func (p *Pipeline) Run(ctx context.Context) (*Result, error) {
	for {
		done, err := p.RunCycles(ctx, 1<<20)
		if err != nil {
			return nil, err
		}
		if done {
			return p.Finish()
		}
	}
}

// RunCycles advances the simulation by at most n cycles, returning
// done=true once the run is complete (program halt, MaxRecords, or stream
// fault). It is the resumable form of Run: a gang scheduler interleaves
// many pipelines by granting each a cycle quantum in turn, and the chunk
// boundaries are invisible to the simulated machine — state advances
// exactly as one uninterrupted Run would. Call Finish after done.
func (p *Pipeline) RunCycles(ctx context.Context, n int64) (bool, error) {
	for ; n > 0; n-- {
		if p.done() {
			return true, nil
		}
		p.cycle++
		if p.cycle > hardCycleLimit {
			return false, fmt.Errorf("uarch: exceeded %d cycles (livelock?)", hardCycleLimit)
		}
		if p.cycle&0xfff == 0 {
			if err := ctx.Err(); err != nil {
				return false, err
			}
		}
		p.window.Tick(p.cycle)
		for _, ap := range p.aps {
			ap.Tick(p.cycle)
		}
		p.processEvents()
		p.retire()
		p.issue()
		p.dispatch()
		p.fetch()
		if p.violPending {
			p.squash(p.violSeq)
			p.violPending = false
		}
	}
	return p.done(), nil
}

// Finish surfaces the stream's architectural fault (if the run hit one)
// and seals the statistics. Call it exactly once, after RunCycles reports
// done; Run does so itself.
func (p *Pipeline) Finish() (*Result, error) {
	if err := p.src.Err(); err != nil {
		return nil, err
	}
	p.stats.Cycles = p.cycle
	p.stats.RetiredDigest = uint64(p.rdig)
	p.stats.PregAllocs = p.ren.Allocs
	p.stats.PregFrees = p.ren.Frees
	p.stats.L1IMisses = p.icache.Misses
	p.stats.L1DMisses = p.dcache.Misses
	p.stats.L2Misses = p.l2.Misses
	p.stats.Violations = p.ssets.Violations
	seen, hits := p.pred.DirStats()
	p.stats.CondBranches = seen
	p.stats.CondMispredicts = seen - hits
	p.stats.PrefetchIssued = p.dcache.PrefIssued
	p.stats.PrefetchUseful = p.dcache.PrefUseful
	p.stats.PrefetchLate = p.dcache.PrefLate
	return &p.stats, nil
}

func (p *Pipeline) done() bool {
	return p.rob.empty() && p.frontend.len() == 0 && p.pendingU == nil &&
		p.pendingBr == nil && p.src.Exhausted()
}

// ---------- uop pool ----------

// newUop returns a blank uop, recycled when possible. Pool invariants are
// enforced by panic: a pooled uop has no live references, so a violation is
// simulator memory corruption and must not be survivable.
func (p *Pipeline) newUop() *uop {
	if n := len(p.uopPool); n > 0 {
		u := p.uopPool[n-1]
		p.uopPool = p.uopPool[:n-1]
		if !u.pooled || u.pendingEv != 0 {
			panic("uarch: uop pool handed out a live uop")
		}
		u.pooled = false
		return u
	}
	p.uopAllocs++
	u := &uop{}
	u.reset(0)
	u.pooled = false
	return u
}

// kill marks u dead (retired or squashed) and recycles it if no scheduled
// events still reference it; otherwise processEvents recycles it when the
// last event drains.
func (p *Pipeline) kill(u *uop) {
	u.dead = true
	if u.pendingEv == 0 {
		p.recycle(u)
	}
}

// returnFresh returns to the pool a uop that never left fetch: only its
// record slot was written (which reset never clears anyway), so the
// dispatch-ready blank state from newUop is still intact and the full
// reset can be skipped.
func (p *Pipeline) returnFresh(u *uop) {
	u.pooled = true
	p.uopPool = append(p.uopPool, u)
}

func (p *Pipeline) recycle(u *uop) {
	// Bump the epoch across the reset so any event that escaped accounting
	// can never match the reincarnated uop.
	u.reset(u.epoch + 1)
	u.pooled = true
	p.uopPool = append(p.uopPool, u)
}

// ---------- scheduler membership ----------

// iqLen is the scheduler occupancy dispatch stalls against.
func (p *Pipeline) iqLen() int { return len(p.iqCand) + len(p.iqHeld) }

// heldAdd moves an entry that just issued into the held set.
func (p *Pipeline) heldAdd(u *uop) {
	u.heldIdx = int32(len(p.iqHeld))
	p.iqHeld = append(p.iqHeld, u)
}

// heldRemove releases u's scheduler slot (O(1) swap-remove).
func (p *Pipeline) heldRemove(u *uop) {
	n := len(p.iqHeld) - 1
	last := p.iqHeld[n]
	p.iqHeld[u.heldIdx] = last
	last.heldIdx = u.heldIdx
	p.iqHeld[n] = nil
	p.iqHeld = p.iqHeld[:n]
}

// candPush appends a freshly dispatched entry; dispatch runs in program
// order, so the candidate array stays sorted by sequence number.
func (p *Pipeline) candPush(u *uop) {
	p.iqCand = append(p.iqCand, u)
}

// candInsert returns a replayed entry to the candidate array at its
// program-order position. Replays are rare, so the O(n) shift is noise.
func (p *Pipeline) candInsert(u *uop) {
	i := len(p.iqCand)
	for i > 0 && p.iqCand[i-1].rec.Seq > u.rec.Seq {
		i--
	}
	p.iqCand = append(p.iqCand, nil)
	copy(p.iqCand[i+1:], p.iqCand[i:])
	p.iqCand[i] = u
}

// collectReplayed migrates entries a replay returned to the not-issued
// state from the held set back into the candidate array, restoring the
// eager invariants (candidates: in program order, never issued; held:
// always issued) before the select pass runs.
func (p *Pipeline) collectReplayed() {
	w := 0
	moved := p.replayScratch[:0]
	for _, c := range p.iqHeld {
		if c.issued {
			c.heldIdx = int32(w)
			p.iqHeld[w] = c
			w++
			continue
		}
		moved = append(moved, c)
	}
	for i := w; i < len(p.iqHeld); i++ {
		p.iqHeld[i] = nil
	}
	p.iqHeld = p.iqHeld[:w]
	for _, c := range moved {
		p.refreshWake(c)
		p.candInsert(c)
	}
	for i := range moved {
		moved[i] = nil
	}
	p.replayScratch = moved[:0]
}

// drainIQFrees releases the singleton scheduler slots whose two-cycle
// post-issue hold expires this cycle. Stale entries — the uop replayed,
// completed early, squashed, or was recycled into a new life — are
// recognised by the epoch tag and the live iqFreeAt and skipped.
func (p *Pipeline) drainIQFrees() {
	ring := p.iqFreeRing[p.cycle&3]
	for _, f := range ring {
		u := f.u
		if u.epoch == f.epoch && u.inIQ && u.issued && u.iqFreeAt > 0 && p.cycle >= u.iqFreeAt {
			p.heldRemove(u)
			u.inIQ = false
		}
	}
	for i := range ring {
		ring[i] = uopRef{}
	}
	p.iqFreeRing[p.cycle&3] = ring[:0]
}

// refreshWake recomputes c's wake-up bound — the latest currently known
// ready time over its sources — and subscribes c to every source whose
// producer has not issued yet (readyAt == notReady), the only state a
// ready time can later decrease from. Sources with finite future ready
// times need no subscription: those only move later (replay re-issues
// happen strictly after the original issue), so the cached bound stays
// sound.
func (p *Pipeline) refreshWake(c *uop) {
	var wake int64
	for i := 0; i < c.nsrcs; i++ {
		s := c.srcs[i]
		if s == rename.NoReg {
			continue
		}
		v := p.readyAt[s]
		if v > wake {
			wake = v
		}
		if v == notReady {
			p.pregWaiters[s] = append(p.pregWaiters[s], uopRef{u: c, epoch: c.epoch})
		}
	}
	c.wakeAt = wake
}

// clearWaiters empties preg's subscription list.
func (p *Pipeline) clearWaiters(preg int) {
	refs := p.pregWaiters[preg]
	for i := range refs {
		refs[i] = uopRef{}
	}
	p.pregWaiters[preg] = refs[:0]
}

// wakeConsumers refreshes every candidate subscribed to preg after its
// ready time dropped from notReady to a concrete cycle at producer issue.
// The list is consumed whole: survivors still blocked on other not-issued
// sources re-subscribed to those inside refreshWake.
func (p *Pipeline) wakeConsumers(preg int) {
	refs := p.pregWaiters[preg]
	for i := range refs {
		if c := refs[i].u; c.epoch == refs[i].epoch {
			p.refreshWake(c)
		}
		refs[i] = uopRef{}
	}
	p.pregWaiters[preg] = refs[:0]
}

// ---------- events ----------

func (p *Pipeline) schedule(at int64, kind evKind, u *uop) {
	if u.pooled {
		panic("uarch: scheduling an event on a pooled uop")
	}
	if at <= p.cycle {
		at = p.cycle + 1
	}
	u.pendingEv++
	p.wheel.add(p.cycle, event{at: at, kind: kind, u: u, epoch: u.epoch})
}

func (p *Pipeline) processEvents() {
	evs := p.wheel.take(p.cycle)
	if len(evs) == 0 {
		return
	}
	// Miss discoveries first: they may replay uops whose completion events
	// fire this very cycle. No event accounting here — the second pass
	// consumes every event exactly once.
	for _, e := range evs {
		if e.kind == evMissDiscover && e.epoch == e.u.epoch && !e.u.squashed {
			p.onMissDiscover(e.u)
		}
	}
	if p.replayedHeld {
		p.collectReplayed()
		p.replayedHeld = false
	}
	for _, e := range evs {
		u := e.u
		u.pendingEv--
		if e.epoch == u.epoch && !u.squashed {
			switch e.kind {
			case evComplete:
				p.onComplete(u)
			case evResolve:
				p.onResolve(u)
			}
		}
		if u.dead && u.pendingEv == 0 {
			p.recycle(u)
		}
	}
}

func (p *Pipeline) onComplete(u *uop) {
	if u.dataAt > p.cycle {
		// A cache miss stretched this operation; completion follows data.
		p.schedule(u.dataAt, evComplete, u)
		return
	}
	u.completed = true
	if u.inIQ {
		p.heldRemove(u) // completion always finds an issued entry
		u.inIQ = false
	}
}

func (p *Pipeline) onResolve(u *uop) {
	if p.pendingBr == u {
		p.pendingBr = nil
		p.fetchStall = p.cycle + 1
		if u.rec.CondBranch {
			p.pred.RecoverHistory(&u.bi, u.rec.Taken)
		}
	}
}

func (p *Pipeline) onMissDiscover(u *uop) {
	if u.isMG() && u.tmpl.InteriorLoad() {
		// §4.3: "it is not possible to reschedule only the mini-graph
		// subset that depends on the load, [so] the entire mini-graph must
		// be replayed".
		p.stats.MGReplays++
		resume := u.dataAt - u.memOffset()
		p.replay(u)
		if resume > u.minIssue {
			u.minIssue = resume
		}
		return
	}
	// Singleton load (or terminal mini-graph load): dependents that issued
	// in the speculative-wake-up shadow replay; the load itself stands.
	p.stats.LoadMissReplays++
	if u.dest != rename.NoReg {
		p.readyAt[u.dest] = u.dataAt
		p.replayConsumers(u.dest)
	}
}
