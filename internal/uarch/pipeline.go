package uarch

import (
	"context"
	"fmt"
	"math"

	"minigraph/internal/core"
	"minigraph/internal/emu"
	"minigraph/internal/isa"
	"minigraph/internal/uarch/alupipe"
	"minigraph/internal/uarch/bpred"
	"minigraph/internal/uarch/cache"
	"minigraph/internal/uarch/rename"
	"minigraph/internal/uarch/sched"
	"minigraph/internal/uarch/storesets"
)

const notReady = math.MaxInt64 / 4

// feEntry is a front-end pipe slot: a fetched uop travelling towards rename.
type feEntry struct {
	u       *uop
	readyAt int64
}

// feRing is the fetch-to-rename pipe: a fixed-capacity ring of feEntry,
// sized once at construction so the steady-state front end never allocates.
type feRing struct {
	buf  []feEntry
	head int
	n    int
}

func newFERing(capacity int) feRing { return feRing{buf: make([]feEntry, capacity)} }

func (r *feRing) len() int   { return r.n }
func (r *feRing) full() bool { return r.n == len(r.buf) }
func (r *feRing) front() *feEntry {
	return &r.buf[r.head]
}

func (r *feRing) push(e feEntry) {
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
}

func (r *feRing) popFront() feEntry {
	e := r.buf[r.head]
	r.buf[r.head] = feEntry{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return e
}

// Pipeline is one simulated machine instance bound to one program run.
type Pipeline struct {
	cfg    Config
	stream *emu.Stream
	mgt    *core.MGT

	pred   *bpred.Predictor
	ssets  *storesets.Predictor
	icache *cache.Cache
	dcache *cache.Cache
	l2     *cache.Cache
	bus    *cache.Bus

	window *sched.Window
	aps    []*alupipe.Pipe
	apBusy []bool
	ren    *rename.Table

	readyAt []int64 // per physical register

	rob      *rob
	iq       []*uop
	lsq      *rob // reuse ring structure for the load/store queue
	frontend feRing

	// uopPool recycles uop structures: a uop returns to the pool once it is
	// dead (retired or squashed) AND every event scheduled against it has
	// drained from the wheel. Recycling bumps the epoch, so an event that
	// somehow survived drains as a stale no-op rather than waking the
	// reincarnated uop. uopAllocs counts pool misses (fresh allocations);
	// in steady state it stays pinned near the machine's in-flight capacity.
	uopPool   []*uop
	uopAllocs int64

	wheel      eventWheel
	cycle      int64
	fetchStall int64 // no fetch before this cycle
	icacheFill int64
	pendingRec *emu.Record // fetched but stalled on an icache miss
	pendingBr  *uop        // unresolved (full) mispredicted branch

	violPending bool
	violSeq     int64

	lastFetchLine isa.Addr
	haveFetchLine bool

	stats Result
}

type evKind uint8

const (
	evComplete evKind = iota
	evMissDiscover
	evResolve
)

// New builds a pipeline for prog. mgt may be nil for plain binaries.
func New(cfg Config, prog *isa.Program, mgt *core.MGT) *Pipeline {
	cfg.Validate()
	m := emu.NewMachine(prog, mgt)
	p := &Pipeline{
		cfg:      cfg,
		stream:   emu.NewStream(m, cfg.StreamWindow, cfg.MaxRecords),
		mgt:      mgt,
		pred:     bpred.New(cfg.BPred),
		ssets:    storesets.New(cfg.StoreSets),
		bus:      cache.NewBus(),
		ren:      rename.New(cfg.PhysRegs),
		rob:      newROB(cfg.ROBSize),
		lsq:      newROB(cfg.LSQSize),
		iq:       make([]*uop, 0, cfg.IQSize),
		frontend: newFERing(cfg.FrontendCapacity()),
	}
	if cfg.MemLatency > 0 {
		p.bus.MemLat = cfg.MemLatency
	}
	p.l2 = cache.New(cfg.L2, nil, p.bus)
	p.icache = cache.New(cfg.ICache, p.l2, nil)
	p.dcache = cache.New(cfg.DCache, p.l2, nil)
	p.window = sched.NewWindow(cfg.WindowHorizon, sched.Capacities{
		sched.ResALU:    cfg.IntALUs,
		sched.ResAP:     cfg.APs,
		sched.ResLoad:   cfg.LoadPorts,
		sched.ResStore:  cfg.StorePorts,
		sched.ResFP:     cfg.FPUnits,
		sched.ResWrPort: cfg.RFWritePorts,
	})
	for i := 0; i < cfg.APs; i++ {
		p.aps = append(p.aps, alupipe.New(cfg.APDepth))
	}
	p.apBusy = make([]bool, cfg.APs)
	p.readyAt = make([]int64, p.ren.NumPhys())
	p.stats.Config = cfg.Name
	return p
}

// Run simulates to completion (program halt, MaxRecords, or ctx
// cancellation) and returns the statistics. Cancellation is checked every
// few thousand cycles so a long simulation aborts promptly without taxing
// the per-cycle hot loop.
func (p *Pipeline) Run(ctx context.Context) (*Result, error) {
	hardLimit := int64(10_000_000_000)
	for {
		if p.done() {
			break
		}
		p.cycle++
		if p.cycle > hardLimit {
			return nil, fmt.Errorf("uarch: exceeded %d cycles (livelock?)", hardLimit)
		}
		if p.cycle&0xfff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		p.window.Tick(p.cycle)
		for _, ap := range p.aps {
			ap.Tick(p.cycle)
		}
		p.processEvents()
		p.retire()
		p.issue()
		p.dispatch()
		p.fetch()
		if p.violPending {
			p.squash(p.violSeq)
			p.violPending = false
		}
	}
	if err := p.stream.Err(); err != nil {
		return nil, err
	}
	p.stats.Cycles = p.cycle
	p.stats.PregAllocs = p.ren.Allocs
	p.stats.PregFrees = p.ren.Frees
	p.stats.L1IMisses = p.icache.Misses
	p.stats.L1DMisses = p.dcache.Misses
	p.stats.L2Misses = p.l2.Misses
	p.stats.Violations = p.ssets.Violations
	p.stats.CondBranches = p.pred.CondSeen
	p.stats.CondMispredicts = p.pred.CondSeen - p.pred.CondHits
	return &p.stats, nil
}

func (p *Pipeline) done() bool {
	return p.rob.empty() && p.frontend.len() == 0 && p.pendingRec == nil &&
		p.pendingBr == nil && p.stream.Exhausted()
}

// ---------- uop pool ----------

// newUop returns a blank uop, recycled when possible. Pool invariants are
// enforced by panic: a pooled uop has no live references, so a violation is
// simulator memory corruption and must not be survivable.
func (p *Pipeline) newUop() *uop {
	if n := len(p.uopPool); n > 0 {
		u := p.uopPool[n-1]
		p.uopPool = p.uopPool[:n-1]
		if !u.pooled || u.pendingEv != 0 {
			panic("uarch: uop pool handed out a live uop")
		}
		u.pooled = false
		return u
	}
	p.uopAllocs++
	u := &uop{}
	u.reset(0)
	u.pooled = false
	return u
}

// kill marks u dead (retired or squashed) and recycles it if no scheduled
// events still reference it; otherwise processEvents recycles it when the
// last event drains.
func (p *Pipeline) kill(u *uop) {
	u.dead = true
	if u.pendingEv == 0 {
		p.recycle(u)
	}
}

func (p *Pipeline) recycle(u *uop) {
	// Bump the epoch across the reset so any event that escaped accounting
	// can never match the reincarnated uop.
	u.reset(u.epoch + 1)
	u.pooled = true
	p.uopPool = append(p.uopPool, u)
}

// ---------- events ----------

func (p *Pipeline) schedule(at int64, kind evKind, u *uop) {
	if u.pooled {
		panic("uarch: scheduling an event on a pooled uop")
	}
	if at <= p.cycle {
		at = p.cycle + 1
	}
	u.pendingEv++
	p.wheel.add(p.cycle, event{at: at, kind: kind, u: u, epoch: u.epoch})
}

func (p *Pipeline) processEvents() {
	evs := p.wheel.take(p.cycle)
	if len(evs) == 0 {
		return
	}
	// Miss discoveries first: they may replay uops whose completion events
	// fire this very cycle. No event accounting here — the second pass
	// consumes every event exactly once.
	for _, e := range evs {
		if e.kind == evMissDiscover && e.epoch == e.u.epoch && !e.u.squashed {
			p.onMissDiscover(e.u)
		}
	}
	for _, e := range evs {
		u := e.u
		u.pendingEv--
		if e.epoch == u.epoch && !u.squashed {
			switch e.kind {
			case evComplete:
				p.onComplete(u)
			case evResolve:
				p.onResolve(u)
			}
		}
		if u.dead && u.pendingEv == 0 {
			p.recycle(u)
		}
	}
}

func (p *Pipeline) onComplete(u *uop) {
	if u.dataAt > p.cycle {
		// A cache miss stretched this operation; completion follows data.
		p.schedule(u.dataAt, evComplete, u)
		return
	}
	u.completed = true
	u.inIQ = false
}

func (p *Pipeline) onResolve(u *uop) {
	if p.pendingBr == u {
		p.pendingBr = nil
		p.fetchStall = p.cycle + 1
		if u.rec.CondBranch {
			p.pred.RecoverHistory(u.histSnap, u.rec.Taken)
		}
	}
}

func (p *Pipeline) onMissDiscover(u *uop) {
	if u.isMG() && u.tmpl.InteriorLoad() {
		// §4.3: "it is not possible to reschedule only the mini-graph
		// subset that depends on the load, [so] the entire mini-graph must
		// be replayed".
		p.stats.MGReplays++
		resume := u.dataAt - u.memOffset()
		p.replay(u)
		if resume > u.minIssue {
			u.minIssue = resume
		}
		return
	}
	// Singleton load (or terminal mini-graph load): dependents that issued
	// in the speculative-wake-up shadow replay; the load itself stands.
	p.stats.LoadMissReplays++
	if u.dest != rename.NoReg {
		p.readyAt[u.dest] = u.dataAt
		p.replayConsumers(u.dest)
	}
}
