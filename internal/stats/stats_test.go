package stats_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"minigraph/internal/stats"
)

func TestMean(t *testing.T) {
	if stats.Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := stats.Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := stats.GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("gmean = %v", got)
	}
	if got := stats.GeoMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("gmean = %v", got)
	}
	if stats.GeoMean(nil) != 0 {
		t.Error("empty gmean")
	}
	// Non-positive inputs stay defined.
	if g := stats.GeoMean([]float64{0, 1}); math.IsNaN(g) || math.IsInf(g, 0) {
		t.Errorf("gmean with zero = %v", g)
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if x > 0 && !math.IsInf(x, 0) && x < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		g := stats.GeoMean(xs)
		return g >= mn-1e-9*mn && g <= mx+1e-9*mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := stats.NewTable("demo", "name", "value")
	tab.AddRowf("alpha", 1.5)
	tab.AddRowf("beta", 42)
	s := tab.String()
	if !strings.Contains(s, "== demo ==") || !strings.Contains(s, "alpha") || !strings.Contains(s, "1.500") || !strings.Contains(s, "42") {
		t.Errorf("table:\n%s", s)
	}
	// Columns align: every line has the same prefix width for column 2.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestPct(t *testing.T) {
	if got := stats.Pct(0.123); got != " 12.3%" {
		t.Errorf("pct = %q", got)
	}
}
