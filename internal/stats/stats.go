// Package stats provides the small statistical and table-rendering helpers
// the experiment harness uses: arithmetic and geometric means, and
// fixed-width text tables in the style of the paper's figures.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean (the paper reports gmean speedups).
// Non-positive values are clamped to a tiny epsilon to stay defined.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Table is a simple left-aligned text table.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	numeric []bool
}

// NewTable starts a table.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built from values: strings pass through, float64
// format as %.3f, integers as %d.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i := range t.Header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Pct renders a fraction as a percentage string.
func Pct(x float64) string { return fmt.Sprintf("%5.1f%%", 100*x) }

// Speedup renders a relative-performance multiplier.
func SpeedupStr(x float64) string { return fmt.Sprintf("%.3f", x) }
