package trace

import (
	"errors"
	"fmt"
	"math"

	"minigraph/internal/emu"
	"minigraph/internal/isa"
)

// DefaultGangWindow is the shared-decode ring depth in records. It must
// comfortably exceed the gang scheduler's pacing spread (lead bound plus
// one quantum's worth of fetch overshoot) plus the machine's maximum
// squash depth, so that in steady state every cursor — including one
// rewinding after a squash — is served from the decoded ring rather than
// falling back to a private decode.
const DefaultGangWindow = 4096

// GangReader is the shared-decode fan-out layer behind gang replay: one
// traversal of a Trace serves a whole gang of simulations. The reader
// decodes each packed record exactly once — when the leading cursor first
// reaches it — into a ring of the last `window` decoded records, and every
// other cursor within the window is served by a single struct copy instead
// of a field-by-field decode. Arms stalled on long-latency events simply
// lag inside the window while fast arms proceed; a cursor that falls (or
// rewinds) more than `window` records behind the decode frontier is still
// correct — it decodes privately from the packed bytes — it just stops
// sharing until it catches back up.
//
// A GangReader and all of its cursors belong to ONE goroutine: the gang
// scheduler interleaves its pipelines on a single goroutine precisely so
// the shared ring needs no locking. For concurrent simulations from many
// goroutines, open independent Readers (or one GangReader per gang) over
// the same immutable Trace.
type GangReader struct {
	t      *Trace
	prog   *isa.Program
	win    *chunkWindow
	window int64
	mask   int64
	ring   []emu.Record

	// frontier is the number of records decoded into the ring so far; the
	// ring holds records [frontier-window, frontier).
	frontier int64

	sharedServes int64 // records served by copy from the decoded ring
	soloFills    int64 // records decoded privately (outside the window)
}

// NewGangReader builds a shared-decode reader over t bound to prog (the
// program t was captured from, or a structurally identical copy). window
// is the shared ring depth in records, rounded up to a power of two
// (<= 0 selects DefaultGangWindow). The chunk window is unbounded: every
// chunk faulted in stays resident for the reader's lifetime.
func NewGangReader(t *Trace, prog *isa.Program, window int) *GangReader {
	return NewGangReaderWindowed(t, prog, window, 0)
}

// NewGangReaderWindowed is NewGangReader with a bounded resident-chunk
// window shared by the whole gang: at most windowChunks spilled chunks
// are held at once (<= 0: unbounded). The gang scheduler's pacing keeps
// every cursor within a few thousand records of the frontier, so one
// small chunk window serves the entire gang — replay memory is the ring
// plus windowChunks × chunk bytes, no matter how large the trace is.
func NewGangReaderWindowed(t *Trace, prog *isa.Program, window, windowChunks int) *GangReader {
	if window <= 0 {
		window = DefaultGangWindow
	}
	size := int64(1)
	for size < int64(window) {
		size <<= 1
	}
	return &GangReader{
		t:      t,
		prog:   prog,
		win:    newChunkWindow(t, windowChunks),
		window: size,
		mask:   size - 1,
		ring:   make([]emu.Record, size),
	}
}

// WindowStats reports the gang's shared chunk-window activity (faults,
// evictions, peak resident bytes).
func (g *GangReader) WindowStats() WindowStats { return g.win.stats }

// fill decodes the record at seq into dst, faulting in its chunk if
// necessary.
func (g *GangReader) fill(dst *emu.Record, seq int64) error {
	data, err := g.win.rows(seq >> g.t.chunkShift)
	if err != nil {
		return err
	}
	fillRow(dst, data[(seq&(g.t.ChunkRecords()-1))*recordBytes:], seq, g.prog)
	return nil
}

// Window returns the shared ring depth in records.
func (g *GangReader) Window() int64 { return g.window }

// Decoded returns the number of records decoded into the shared ring —
// the decode work the whole gang paid once.
func (g *GangReader) Decoded() int64 { return g.frontier }

// SharedServes returns the number of records served from the decoded ring
// by struct copy: each one is a per-record decode some arm did not pay.
func (g *GangReader) SharedServes() int64 { return g.sharedServes }

// SoloFills returns the number of records decoded privately because a
// cursor was more than Window records behind the decode frontier (deep
// rewind, or an arm the scheduler let drift too far).
func (g *GangReader) SoloFills() int64 { return g.soloFills }

// Cursor opens a per-arm cursor implementing the pipeline's TraceSource
// contract with the exact semantics of a solo Reader: limit bounds served
// records like Config.MaxRecords bounds the live stream (<= 0: no limit),
// and the architectural fault that truncated the capture surfaces only if
// the limit would have forced generation past it.
func (g *GangReader) Cursor(limit int64) *GangCursor {
	req := limit
	if req <= 0 {
		req = math.MaxInt64
	}
	serve := g.t.Len()
	if req < serve {
		serve = req
	}
	c := &GangCursor{g: g, serve: serve}
	if g.t.errMsg != "" && req > g.t.Len() {
		c.err = g.t.Err()
	}
	return c
}

// GangCursor is one arm's view of a GangReader: a cheap cursor whose
// records come from the shared decoded ring whenever it is within the lag
// window of the decode frontier. Rewind reaches any depth, exactly like a
// solo Reader — depth beyond the window merely costs private decodes.
type GangCursor struct {
	g       *GangReader
	serve   int64
	cursor  int64
	err     error
	faultAt int64 // serve value before an I/O cutoff (for Rewind retry)
}

// NextInto writes the record at the cursor into dst and advances — the
// pipeline's zero-copy delivery path. The three cases, in frequency
// order: within the window of the frontier (one struct copy from the
// ring), exactly at the frontier (decode once into the ring, advancing it
// for the whole gang), and behind the window (private decode fallback).
func (c *GangCursor) NextInto(dst *emu.Record) bool {
	if c.cursor >= c.serve {
		return false
	}
	g := c.g
	i := c.cursor
	switch {
	case i < g.frontier && i >= g.frontier-g.window:
		*dst = g.ring[i&g.mask]
		g.sharedServes++
	case i == g.frontier:
		slot := &g.ring[i&g.mask]
		if err := g.fill(slot, i); err != nil {
			return c.cutoff(err)
		}
		g.frontier++
		*dst = *slot
	default:
		if err := g.fill(dst, i); err != nil {
			return c.cutoff(err)
		}
		g.soloFills++
	}
	c.cursor++
	return true
}

// cutoff ends this cursor's stream at the cursor after a chunk-fetch
// failure; the failure surfaces through Err, mirroring how the live
// stream surfaces an architectural fault. Other cursors of the gang are
// unaffected unless they need the same missing chunk.
func (c *GangCursor) cutoff(err error) bool {
	c.err = err
	c.faultAt = c.serve
	c.serve = c.cursor
	return false
}

// Cursor returns the sequence number of the next record NextInto will
// serve.
func (c *GangCursor) Cursor() int64 { return c.cursor }

// Err returns the architectural fault that truncated the stream, if this
// cursor's limit would have run into it.
func (c *GangCursor) Err() error { return c.err }

// Exhausted reports whether every available record has been served.
func (c *GangCursor) Exhausted() bool { return c.cursor >= c.serve }

// Rewind moves the cursor back to sequence seq (squash recovery). Any
// depth is legal — the trace is fully retained — and rewinding forward is
// a simulator bug and panics, matching Reader and emu.Stream.
func (c *GangCursor) Rewind(seq int64) {
	if seq > c.cursor || seq < 0 {
		panic(fmt.Sprintf("trace: gang rewind out of range (seq=%d cursor=%d)", seq, c.cursor))
	}
	c.cursor = seq
	// A rewind past an I/O cutoff retries the fetch: restore the serve
	// bound so the cursor can make progress again if the source recovered.
	if c.faultAt > c.serve && errors.Is(c.err, ErrChunkUnavailable) {
		c.serve, c.faultAt, c.err = c.faultAt, 0, nil
	}
}
