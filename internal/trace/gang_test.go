package trace_test

import (
	"context"
	"reflect"
	"testing"

	"minigraph/internal/asm"
	"minigraph/internal/core"
	"minigraph/internal/emu"
	"minigraph/internal/trace"
	"minigraph/internal/uarch"
)

// TestGangCursorMatchesReader drives a solo Reader and a GangCursor in
// lockstep over the same trace and demands byte-identical records — the
// shared-decode ring must be invisible.
func TestGangCursorMatchesReader(t *testing.T) {
	prog, mgt, _ := rewritten(t, "sha")
	const limit = 20_000
	tr, err := trace.Capture(context.Background(), prog, mgt, limit)
	if err != nil {
		t.Fatal(err)
	}
	g := trace.NewGangReader(tr, prog, 512)
	cur := g.Cursor(limit)
	rd := trace.NewReader(tr, prog, limit)
	var a, b emu.Record
	for step := 0; ; step++ {
		aok := rd.NextInto(&a)
		bok := cur.NextInto(&b)
		if aok != bok {
			t.Fatalf("step %d: reader ok=%v gang ok=%v", step, aok, bok)
		}
		if !aok {
			break
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("step %d: record mismatch\nreader: %+v\ngang:   %+v", step, a, b)
		}
		if step%4096 == 0 && step > 0 {
			rd.Rewind(a.Seq - 100)
			cur.Rewind(b.Seq - 100)
		}
	}
	if (rd.Err() == nil) != (cur.Err() == nil) {
		t.Fatalf("err mismatch: reader %v gang %v", rd.Err(), cur.Err())
	}
	if !rd.Exhausted() || !cur.Exhausted() {
		t.Fatal("both cursors should be exhausted")
	}
}

// TestGangLagWindowBoundary pins the exact edge of the shared ring: a
// cursor exactly `window` records behind the decode frontier is still
// served from the ring, one record further back takes the private-decode
// fallback — and both are byte-identical to a solo Reader. This is the
// can't-silently-clamp test: the window boundary must shift cost, never
// content.
func TestGangLagWindowBoundary(t *testing.T) {
	prog, mgt, _ := rewritten(t, "sha")
	const limit = 10_000
	tr, err := trace.Capture(context.Background(), prog, mgt, limit)
	if err != nil {
		t.Fatal(err)
	}
	const window = 1024
	g := trace.NewGangReader(tr, prog, window)
	if g.Window() != window {
		t.Fatalf("window %d, want %d (power of two kept as-is)", g.Window(), window)
	}
	lead := g.Cursor(limit)
	lag := g.Cursor(limit)

	// Advance the leader so the frontier sits at `window+1`; the ring now
	// holds records [1, window+1).
	var rec emu.Record
	for i := 0; i < window+1; i++ {
		if !lead.NextInto(&rec) {
			t.Fatalf("leader exhausted at %d", i)
		}
	}
	if g.Decoded() != window+1 {
		t.Fatalf("frontier %d, want %d", g.Decoded(), window+1)
	}

	// The lagging cursor reads record 1 — exactly `window` behind the
	// frontier, the oldest record still in the ring.
	soloBefore, sharedBefore := g.SoloFills(), g.SharedServes()
	var want emu.Record
	trace.NewReader(tr, prog, limit).NextInto(&want) // record 0 for comparison below
	lag.Rewind(0)                                    // no-op (already at 0), pins rewind-to-zero legality
	if !lag.NextInto(&rec) {
		t.Fatal("lag cursor exhausted at record 0")
	}
	// Record 0 is one *past* the window edge (frontier-window-1): private.
	if g.SoloFills() != soloBefore+1 {
		t.Fatalf("record 0 at lag window+1: soloFills %d→%d, want a private decode", soloBefore, g.SoloFills())
	}
	if !reflect.DeepEqual(rec, want) {
		t.Fatalf("private-decode record differs from Reader:\ngang:   %+v\nreader: %+v", rec, want)
	}

	// Record 1 is exactly `window` behind: still a ring serve.
	sharedBefore = g.SharedServes()
	rd := trace.NewReader(tr, prog, limit)
	rd.NextInto(&want)
	rd.NextInto(&want) // record 1
	if !lag.NextInto(&rec) {
		t.Fatal("lag cursor exhausted at record 1")
	}
	if g.SharedServes() != sharedBefore+1 {
		t.Fatalf("record 1 at lag=window: sharedServes did not grow (solo %d shared %d)", g.SoloFills(), g.SharedServes())
	}
	if !reflect.DeepEqual(rec, want) {
		t.Fatalf("ring-served record differs from Reader:\ngang:   %+v\nreader: %+v", rec, want)
	}
}

// TestGangCursorLimitAndFault pins Reader-parity cut-off semantics: a
// cursor bounded at or below the trace length never observes the capture's
// architectural fault, an unbounded cursor surfaces it.
func TestGangCursorLimitAndFault(t *testing.T) {
	prog := asm.MustAssemble("fault", faultSrc)
	tr, err := trace.Capture(context.Background(), prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := trace.NewGangReader(tr, prog, 0)
	if g.Window() != trace.DefaultGangWindow {
		t.Fatalf("default window %d, want %d", g.Window(), trace.DefaultGangWindow)
	}
	bounded := g.Cursor(tr.Len())
	if bounded.Err() != nil {
		t.Fatalf("bounded cursor err %v, want nil", bounded.Err())
	}
	unbounded := g.Cursor(0)
	if unbounded.Err() == nil {
		t.Fatal("unbounded cursor over a faulted trace must surface the fault")
	}
	ref := trace.NewReader(tr, prog, 0)
	if unbounded.Err().Error() != ref.Err().Error() {
		t.Fatalf("fault mismatch: gang %q reader %q", unbounded.Err(), ref.Err())
	}
	var rec emu.Record
	n := int64(0)
	for unbounded.NextInto(&rec) {
		n++
	}
	if n != tr.Len() || !unbounded.Exhausted() {
		t.Fatalf("served %d records, want %d", n, tr.Len())
	}
}

// TestGangPipelineMatchesSoloPipeline runs the same machine config over a
// solo Reader and over every position of a 4-cursor gang, concurrently
// advanced in interleaved bursts, and demands identical results. This is
// the uarch-level byte-identity guarantee the engine's gang scheduler
// relies on.
func TestGangPipelineMatchesSoloPipeline(t *testing.T) {
	prog, mgt, templates := rewritten(t, "adpcm.enc")
	const limit = 40_000
	tr, err := trace.Capture(context.Background(), prog, mgt, limit)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.MiniGraph(true)
	cfg.MaxRecords = limit
	want, err := uarch.NewWithSource(cfg, mgt, trace.NewReader(tr, prog, limit)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	g := trace.NewGangReader(tr, prog, 4096)
	const arms = 4
	pipes := make([]*uarch.Pipeline, arms)
	params := core.ExecParams{LoadLat: cfg.LoadLat, Collapse: cfg.Collapse, UseAP: cfg.APs > 0}
	for i := range pipes {
		pipes[i] = uarch.NewWithSource(cfg, core.NewMGT(templates, params), g.Cursor(limit))
	}
	results := make([]*uarch.Result, arms)
	remaining := arms
	for remaining > 0 {
		for i, p := range pipes {
			if p == nil {
				continue
			}
			done, err := p.RunCycles(context.Background(), 256)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				if results[i], err = p.Finish(); err != nil {
					t.Fatal(err)
				}
				pipes[i] = nil
				remaining--
			}
		}
	}
	for i, res := range results {
		if !reflect.DeepEqual(res, want) {
			t.Errorf("gang arm %d diverged from the solo pipeline", i)
		}
	}
	if g.SharedServes() == 0 {
		t.Error("interleaved gang never hit the shared ring")
	}
}
