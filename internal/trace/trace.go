// Package trace captures a program's dynamic instruction stream once and
// replays it any number of times. The timing simulator in internal/uarch is
// execution-driven but timing-independent of *how* records are delivered:
// internal/emu can generate them live, step by step, or a Reader can replay
// them from an immutable Trace captured earlier. A Trace is a compact
// packed-record encoding of the full record stream — one functional
// emulation serves every machine configuration swept over the same binary,
// which is where multi-arm experiment sweeps spend most of their time.
//
// Invariant (the golden rule for any TraceSource implementation): replaying
// a trace through the pipeline must produce byte-identical results to the
// live stream. The record sequence is a pure function of the program and
// its mini-graph table, so a capture under one machine configuration is
// valid for every configuration that shares the rewritten binary.
//
// Readers are cheap cursors over shared immutable bytes: concurrent
// simulations replay one Trace with no locking and no per-record
// allocation, and Rewind (squash recovery) is a cursor move with unbounded
// depth — there is no retention window to undersize.
package trace

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"minigraph/internal/core"
	"minigraph/internal/emu"
	"minigraph/internal/isa"
)

// Flag bits packed per record. The low two bits hold the source-register
// count (0..2).
const (
	flagNSrcsMask uint16 = 0x3
	flagLoad      uint16 = 1 << 2
	flagStore     uint16 = 1 << 3
	flagCtrl      uint16 = 1 << 4
	flagCond      uint16 = 1 << 5
	flagCall      uint16 = 1 << 6
	flagRet       uint16 = 1 << 7
	flagIndirect  uint16 = 1 << 8
	flagTaken     uint16 = 1 << 9
)

// recordBytes is the packed per-record storage: one little-endian row
//
//	pc u32 | nextPC u32 | mgid i32 | ea u64 | flags u16 |
//	op u8 | src0 u8 | src1 u8 | dest u8 | memSize u8 |
//	destVal u64 | storeVal u64
//
// Rows are packed back to back, so capture writes and replay reads touch
// one short contiguous span per record instead of ten parallel arrays.
// Derived Record fields (Seq = index, FallPC = PC+1, Inst = prog.At(PC))
// are reconstructed at replay rather than stored. The architectural value
// fields ride along so replayed runs fold the same retired-state digest as
// live ones (codec v2).
const recordBytes = 4 + 4 + 4 + 8 + 2 + 5 + 8 + 8

// Trace is an immutable dynamic instruction stream in packed-record form.
// A Trace is safe for concurrent Readers once built.
type Trace struct {
	recs []byte // n × recordBytes

	// errMsg records the architectural fault that truncated the capture
	// ("" = the program halted or the capture limit was reached). A Reader
	// surfaces it exactly as the live stream would: only when the caller's
	// limit would have forced generation past the fault.
	errMsg string
	// halted reports whether the emulated machine reached OpHalt.
	halted bool
}

// Len returns the number of records in the trace.
func (t *Trace) Len() int64 { return int64(len(t.recs) / recordBytes) }

// Halted reports whether the captured program ran to architectural halt.
func (t *Trace) Halted() bool { return t.halted }

// Err returns the architectural fault that truncated the capture, if any.
func (t *Trace) Err() error {
	if t.errMsg == "" {
		return nil
	}
	return errors.New(t.errMsg)
}

// SizeBytes returns the in-memory footprint of the record bytes.
func (t *Trace) SizeBytes() int64 {
	return int64(len(t.recs) + len(t.errMsg))
}

func (t *Trace) grow(n int) {
	t.recs = append(make([]byte, 0, n*recordBytes), t.recs...)
}

// append packs one record. Seq and FallPC are derived at replay and not
// stored; Srcs beyond NSrcs are zero by construction.
func (t *Trace) append(rec *emu.Record) {
	f := uint16(rec.NSrcs) & flagNSrcsMask
	if rec.IsLoad {
		f |= flagLoad
	}
	if rec.IsStore {
		f |= flagStore
	}
	if rec.IsCtrl {
		f |= flagCtrl
	}
	if rec.CondBranch {
		f |= flagCond
	}
	if rec.IsCall {
		f |= flagCall
	}
	if rec.IsRet {
		f |= flagRet
	}
	if rec.Indirect {
		f |= flagIndirect
	}
	if rec.Taken {
		f |= flagTaken
	}
	var row [recordBytes]byte
	binary.LittleEndian.PutUint32(row[0:], uint32(int32(rec.PC)))
	binary.LittleEndian.PutUint32(row[4:], uint32(int32(rec.NextPC)))
	binary.LittleEndian.PutUint32(row[8:], uint32(int32(rec.MGID)))
	binary.LittleEndian.PutUint64(row[12:], uint64(rec.EA))
	binary.LittleEndian.PutUint16(row[20:], f)
	row[22] = uint8(rec.Op)
	row[23] = uint8(rec.Srcs[0])
	row[24] = uint8(rec.Srcs[1])
	row[25] = uint8(rec.Dest)
	row[26] = uint8(rec.MemSize)
	binary.LittleEndian.PutUint64(row[27:], rec.DestVal)
	binary.LittleEndian.PutUint64(row[35:], rec.StoreVal)
	t.recs = append(t.recs, row[:]...)
}

// fill reconstructs record i into dst. Every field is written, so dst may
// be reused across calls without clearing. Inst is resolved through prog —
// the same lookup the live emulator performs — so a Trace can be bound to
// any structurally identical copy of the program it was captured from.
func (t *Trace) fill(dst *emu.Record, i int64, prog *isa.Program) {
	row := t.recs[i*recordBytes : i*recordBytes+recordBytes : i*recordBytes+recordBytes]
	pc := isa.PC(int32(binary.LittleEndian.Uint32(row[0:])))
	f := binary.LittleEndian.Uint16(row[20:])
	dst.Seq = i
	dst.PC = pc
	dst.Op = isa.Opcode(row[22])
	dst.Inst = prog.At(pc)
	dst.Srcs[0] = isa.Reg(row[23])
	dst.Srcs[1] = isa.Reg(row[24])
	dst.NSrcs = int(f & flagNSrcsMask)
	dst.Dest = isa.Reg(row[25])
	dst.EA = isa.Addr(binary.LittleEndian.Uint64(row[12:]))
	dst.MemSize = int(row[26])
	dst.IsLoad = f&flagLoad != 0
	dst.IsStore = f&flagStore != 0
	dst.IsCtrl = f&flagCtrl != 0
	dst.CondBranch = f&flagCond != 0
	dst.IsCall = f&flagCall != 0
	dst.IsRet = f&flagRet != 0
	dst.Indirect = f&flagIndirect != 0
	dst.Taken = f&flagTaken != 0
	dst.NextPC = isa.PC(int32(binary.LittleEndian.Uint32(row[4:])))
	dst.FallPC = pc + 1
	dst.MGID = int(int32(binary.LittleEndian.Uint32(row[8:])))
	dst.DestVal = binary.LittleEndian.Uint64(row[27:])
	dst.StoreVal = binary.LittleEndian.Uint64(row[35:])
}

// captureCheckInterval is how many records elapse between context checks
// during capture.
const captureCheckInterval = 1 << 14

// Capture runs prog functionally to completion (halt, architectural fault,
// or limit dynamic records; limit <= 0 means no limit) and returns the
// recorded stream. The limit cut-off matches emu.Stream exactly: the
// emulator is never stepped once limit records exist, so a program that
// would fault at record limit captures cleanly. An architectural fault does
// not fail the capture — it truncates the trace and is surfaced by Readers
// exactly as the live stream surfaces it. The only error Capture itself
// returns is ctx cancellation.
func Capture(ctx context.Context, prog *isa.Program, mgt *core.MGT, limit int64) (*Trace, error) {
	return CaptureSized(ctx, prog, mgt, limit, 0)
}

// CaptureSized is Capture with a record-count hint (e.g. a profile's
// dynamic instruction count): an accurate hint sizes the buffer once and
// skips every regrowth copy. The hint only affects allocation, never
// content.
func CaptureSized(ctx context.Context, prog *isa.Program, mgt *core.MGT, limit, hint int64) (*Trace, error) {
	if limit <= 0 {
		limit = math.MaxInt64
	}
	if hint <= 0 {
		hint = 1 << 12
	}
	if limit < hint {
		hint = limit
	}
	m := emu.NewMachine(prog, mgt)
	t := &Trace{}
	t.grow(int(hint))
	var rec emu.Record
	for !m.Halted && t.Len() < limit {
		if t.Len()%captureCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Geometric growth between checks keeps the append fast path
			// bounds-check-only; an accurate hint makes this a no-op.
			if free := int64(cap(t.recs)/recordBytes) - t.Len(); free < captureCheckInterval {
				n := 2 * (cap(t.recs) / recordBytes)
				if int64(n) > limit && limit < math.MaxInt64 {
					n = int(limit)
				}
				if n < cap(t.recs)/recordBytes+captureCheckInterval {
					n = cap(t.recs)/recordBytes + captureCheckInterval
				}
				t.grow(n)
			}
		}
		if err := m.Step(&rec); err != nil {
			t.errMsg = err.Error()
			return t, nil
		}
		t.append(&rec)
	}
	t.halted = m.Halted
	return t, nil
}

// Reader is a cursor over a Trace implementing the pipeline's TraceSource
// contract with the exact semantics of the live emu.Stream: NextInto
// serves records in order, Rewind re-serves from an earlier sequence
// number (any depth — the trace is fully retained), and Err reports the
// architectural fault the stream would have hit. A Reader is
// single-goroutine; open one Reader per concurrent simulation over the
// shared Trace.
type Reader struct {
	t       *Trace
	prog    *isa.Program
	serve   int64 // records available to this reader (limit-clamped)
	cursor  int64
	err     error
	scratch emu.Record
}

// NewReader opens a cursor over t bound to prog (the program t was
// captured from, or a structurally identical copy). limit bounds served
// records like Config.MaxRecords bounds the live stream (<= 0: no limit).
func NewReader(t *Trace, prog *isa.Program, limit int64) *Reader {
	req := limit
	if req <= 0 {
		req = math.MaxInt64
	}
	serve := t.Len()
	if req < serve {
		serve = req
	}
	r := &Reader{t: t, prog: prog, serve: serve}
	if t.errMsg != "" && req > t.Len() {
		// The live stream only hits the fault when asked to generate past
		// it; a caller whose limit stops at or before the truncation point
		// never observes the error.
		r.err = t.Err()
	}
	return r
}

// Next returns the record at the cursor, advancing it. ok=false means the
// stream is exhausted (halt, limit, or fault — check Err). The returned
// pointer is the reader's scratch record and is valid until the next call.
func (r *Reader) Next() (*emu.Record, bool) {
	if !r.NextInto(&r.scratch) {
		return nil, false
	}
	return &r.scratch, true
}

// NextInto writes the record at the cursor into dst and advances — the
// pipeline's zero-copy delivery path (the record materialises directly in
// the consumer's storage, no scratch staging).
func (r *Reader) NextInto(dst *emu.Record) bool {
	if r.cursor >= r.serve {
		return false
	}
	r.t.fill(dst, r.cursor, r.prog)
	r.cursor++
	return true
}

// Cursor returns the sequence number of the next record Next will serve.
func (r *Reader) Cursor() int64 { return r.cursor }

// Err returns the architectural fault that truncated the stream, if this
// reader's limit would have run into it.
func (r *Reader) Err() error { return r.err }

// Exhausted reports whether every available record has been served.
func (r *Reader) Exhausted() bool { return r.cursor >= r.serve }

// Rewind moves the cursor back to sequence seq. Unlike the live stream's
// bounded retention window, a trace rewind reaches any depth; rewinding
// forward is a simulator bug and panics, matching emu.Stream.
func (r *Reader) Rewind(seq int64) {
	if seq > r.cursor || seq < 0 {
		panic(fmt.Sprintf("trace: rewind out of range (seq=%d cursor=%d)", seq, r.cursor))
	}
	r.cursor = seq
}
