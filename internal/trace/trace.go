// Package trace captures a program's dynamic instruction stream once and
// replays it any number of times. The timing simulator in internal/uarch is
// execution-driven but timing-independent of *how* records are delivered:
// internal/emu can generate them live, step by step, or a Reader can replay
// them from an immutable Trace captured earlier. A Trace is a compact
// packed-record encoding of the full record stream — one functional
// emulation serves every machine configuration swept over the same binary,
// which is where multi-arm experiment sweeps spend most of their time.
//
// The record bytes are held as fixed-size chunks (DefaultChunkRecords rows
// per chunk; see chunk.go), which are the unit of capture spill, CRC
// framing, store persistence, peer transfer and reader residency — a trace
// much larger than RAM captures and replays within a bounded chunk window.
//
// Invariant (the golden rule for any TraceSource implementation): replaying
// a trace through the pipeline must produce byte-identical results to the
// live stream. The record sequence is a pure function of the program and
// its mini-graph table, so a capture under one machine configuration is
// valid for every configuration that shares the rewritten binary. Chunking
// is storage layout, never semantics: chunk size and window bounds cannot
// change a single replayed record.
//
// Readers are cheap cursors over shared immutable chunks: concurrent
// simulations replay one Trace with no locking and no per-record
// allocation, and Rewind (squash recovery) is a cursor move with unbounded
// depth — there is no retention window to undersize. A bounded reader
// window only bounds *residency*: rewinding behind it re-faults chunks
// through the trace's ChunkSource, it never clamps.
package trace

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"

	"minigraph/internal/core"
	"minigraph/internal/emu"
	"minigraph/internal/isa"
)

// Flag bits packed per record. The low two bits hold the source-register
// count (0..2).
const (
	flagNSrcsMask uint16 = 0x3
	flagLoad      uint16 = 1 << 2
	flagStore     uint16 = 1 << 3
	flagCtrl      uint16 = 1 << 4
	flagCond      uint16 = 1 << 5
	flagCall      uint16 = 1 << 6
	flagRet       uint16 = 1 << 7
	flagIndirect  uint16 = 1 << 8
	flagTaken     uint16 = 1 << 9
)

// recordBytes is the packed per-record storage: one 43-byte little-endian
// row
//
//	pc u32 | nextPC u32 | mgid i32 | ea u64 | flags u16 |
//	op u8 | src0 u8 | src1 u8 | dest u8 | memSize u8 |
//	destVal u64 | storeVal u64
//
// Rows are packed back to back within a chunk, so capture writes and
// replay reads touch one short contiguous span per record instead of ten
// parallel arrays. Derived Record fields (Seq = index, FallPC = PC+1,
// Inst = prog.At(PC)) are reconstructed at replay rather than stored. The
// architectural value fields ride along so replayed runs fold the same
// retired-state digest as live ones (codec v2; rows were 27 bytes before
// they grew the two u64 value fields).
const recordBytes = 4 + 4 + 4 + 8 + 2 + 5 + 8 + 8

// RecordBytes is the packed row size in bytes, exported so sizing logic
// (cache budgets, window caps) outside the package can reason in bytes.
const RecordBytes = recordBytes

// Trace is an immutable dynamic instruction stream in packed-record form,
// held as fixed-size chunks. A Trace is safe for concurrent Readers once
// built; a chunk is either resident (its payload retained in memory) or
// spilled (payload dropped after sealing through a ChunkSink), in which
// case Readers fault it back in through the bound ChunkSource.
type Trace struct {
	chunkRecords int64 // rows per chunk (power of two)
	chunkShift   uint  // log2(chunkRecords)
	n            int64 // total rows

	// chunks holds each sealed chunk's packed rows; a nil entry is a
	// spilled chunk whose payload lives behind source. crcs is the
	// manifest: the IEEE CRC-32 of each chunk's raw rows, computed at
	// seal time and re-checked on every fault-in.
	chunks [][]byte
	crcs   []uint32
	source ChunkSource

	// cur is the open (unsealed) chunk during capture; nil once built.
	cur []byte

	// errMsg records the architectural fault that truncated the capture
	// ("" = the program halted or the capture limit was reached). A Reader
	// surfaces it exactly as the live stream would: only when the caller's
	// limit would have forced generation past the fault.
	errMsg string
	// halted reports whether the emulated machine reached OpHalt.
	halted bool
}

// Len returns the number of records in the trace.
func (t *Trace) Len() int64 { return t.n }

// Halted reports whether the captured program ran to architectural halt.
func (t *Trace) Halted() bool { return t.halted }

// Err returns the architectural fault that truncated the capture, if any.
func (t *Trace) Err() error {
	if t.errMsg == "" {
		return nil
	}
	return errors.New(t.errMsg)
}

// ChunkRecords returns the rows-per-chunk geometry (a power of two).
func (t *Trace) ChunkRecords() int64 {
	if t.chunkRecords == 0 {
		return DefaultChunkRecords
	}
	return t.chunkRecords
}

// NumChunks returns the number of sealed chunks.
func (t *Trace) NumChunks() int64 { return int64(len(t.chunks)) }

// chunkRows returns the row count of chunk ci (full except the last).
func (t *Trace) chunkRows(ci int64) int64 {
	if r := t.n - ci*t.ChunkRecords(); r < t.ChunkRecords() {
		return r
	}
	return t.ChunkRecords()
}

// ChunkCRC returns the manifest checksum of chunk ci's raw rows.
func (t *Trace) ChunkCRC(ci int64) uint32 { return t.crcs[ci] }

// SizeBytes returns the logical size of the trace: the packed record
// bytes it represents plus the fault message — independent of how many
// chunks happen to be resident right now (see ResidentBytes for that).
func (t *Trace) SizeBytes() int64 {
	return t.n*recordBytes + int64(len(t.errMsg))
}

// ResidentBytes returns the chunk payload bytes currently held in memory
// by the Trace itself (spilled chunks and reader windows excluded).
func (t *Trace) ResidentBytes() int64 {
	var b int64
	for _, c := range t.chunks {
		b += int64(len(c))
	}
	return b + int64(len(t.cur))
}

// Spilled reports whether any chunk's payload is non-resident (replay
// then requires a bound ChunkSource).
func (t *Trace) Spilled() bool {
	for _, c := range t.chunks {
		if c == nil {
			return true
		}
	}
	return false
}

// ChunkResident reports whether chunk ci's payload is held in memory by
// the Trace itself.
func (t *Trace) ChunkResident(ci int64) bool { return t.chunks[ci] != nil }

// Materialize faults every spilled chunk in through the bound source and
// retains it, leaving the trace fully resident (and fully CRC-verified).
// Replay then needs no source at all — the mode a cold store load uses
// when no residency bound is in force.
func (t *Trace) Materialize() error {
	for ci := range t.chunks {
		if t.chunks[ci] == nil {
			data, err := t.ChunkPayload(int64(ci))
			if err != nil {
				return err
			}
			t.chunks[ci] = data
		}
	}
	return nil
}

// BindSource attaches the ChunkSource spilled chunks are faulted in from.
// Bind before opening Readers over a spilled trace; rebinding is legal
// (e.g. after the backing store moved). The source must serve exactly the
// bytes that were sealed — every fault-in is CRC-verified against the
// manifest, so a wrong source degrades to ErrChunkUnavailable, never to
// wrong records.
func (t *Trace) BindSource(src ChunkSource) { t.source = src }

// Manifest returns the trace's chunk manifest: geometry, termination
// state, and per-chunk row counts and checksums.
func (t *Trace) Manifest() Manifest {
	m := Manifest{
		ChunkRecords: t.ChunkRecords(),
		Rows:         t.n,
		Halted:       t.halted,
		ErrMsg:       t.errMsg,
		Chunks:       make([]ChunkInfo, len(t.chunks)),
	}
	for i := range t.chunks {
		m.Chunks[i] = ChunkInfo{Rows: t.chunkRows(int64(i)), CRC: t.crcs[i]}
	}
	return m
}

// FromManifest builds a fully spilled Trace from its manifest and the
// source its chunk payloads live behind: every chunk is non-resident
// until a reader faults it in. This is how a cold process replays a
// persisted chunked trace without ever holding more than a window of it.
func FromManifest(m Manifest, src ChunkSource) (*Trace, error) {
	cr := m.ChunkRecords
	if cr < minChunkRecords || cr&(cr-1) != 0 {
		return nil, fmt.Errorf("trace: manifest chunkRecords %d is not a valid power of two", cr)
	}
	if int64(len(m.Chunks)) != (m.Rows+cr-1)/cr {
		return nil, fmt.Errorf("trace: manifest has %d chunks for %d rows", len(m.Chunks), m.Rows)
	}
	t := &Trace{
		chunkRecords: cr,
		chunkShift:   uint(bits.TrailingZeros64(uint64(cr))),
		n:            m.Rows,
		chunks:       make([][]byte, len(m.Chunks)),
		crcs:         make([]uint32, len(m.Chunks)),
		source:       src,
		errMsg:       m.ErrMsg,
		halted:       m.Halted,
	}
	for i, c := range m.Chunks {
		if c.Rows != t.chunkRows(int64(i)) {
			return nil, fmt.Errorf("trace: manifest chunk %d claims %d rows, geometry says %d", i, c.Rows, t.chunkRows(int64(i)))
		}
		t.crcs[i] = c.CRC
	}
	return t, nil
}

// ChunkPayload returns chunk ci's raw packed rows: the resident payload,
// or one fetched (and CRC-verified) through the bound source. Unlike a
// reader window, nothing is cached — this is the persistence/transfer
// path, not the replay path.
func (t *Trace) ChunkPayload(ci int64) ([]byte, error) {
	if ci < 0 || ci >= t.NumChunks() {
		return nil, fmt.Errorf("trace: chunk %d out of range (%d chunks)", ci, t.NumChunks())
	}
	if data := t.chunks[ci]; data != nil {
		return data, nil
	}
	if t.source == nil {
		return nil, fmt.Errorf("%w: chunk %d is not resident and the trace has no source", ErrChunkUnavailable, ci)
	}
	data, err := t.source.FetchChunk(ci)
	if err != nil {
		return nil, fmt.Errorf("%w: chunk %d: %v", ErrChunkUnavailable, ci, err)
	}
	if int64(len(data)) != t.chunkRows(ci)*recordBytes || crc32.ChecksumIEEE(data) != t.crcs[ci] {
		return nil, fmt.Errorf("%w: chunk %d: source payload failed verification", ErrChunkUnavailable, ci)
	}
	return data, nil
}

// appendRecord packs one record into the open chunk. Seq and FallPC are
// derived at replay and not stored; Srcs beyond NSrcs are zero by
// construction.
func (t *Trace) appendRecord(rec *emu.Record) {
	f := uint16(rec.NSrcs) & flagNSrcsMask
	if rec.IsLoad {
		f |= flagLoad
	}
	if rec.IsStore {
		f |= flagStore
	}
	if rec.IsCtrl {
		f |= flagCtrl
	}
	if rec.CondBranch {
		f |= flagCond
	}
	if rec.IsCall {
		f |= flagCall
	}
	if rec.IsRet {
		f |= flagRet
	}
	if rec.Indirect {
		f |= flagIndirect
	}
	if rec.Taken {
		f |= flagTaken
	}
	var row [recordBytes]byte
	binary.LittleEndian.PutUint32(row[0:], uint32(int32(rec.PC)))
	binary.LittleEndian.PutUint32(row[4:], uint32(int32(rec.NextPC)))
	binary.LittleEndian.PutUint32(row[8:], uint32(int32(rec.MGID)))
	binary.LittleEndian.PutUint64(row[12:], uint64(rec.EA))
	binary.LittleEndian.PutUint16(row[20:], f)
	row[22] = uint8(rec.Op)
	row[23] = uint8(rec.Srcs[0])
	row[24] = uint8(rec.Srcs[1])
	row[25] = uint8(rec.Dest)
	row[26] = uint8(rec.MemSize)
	binary.LittleEndian.PutUint64(row[27:], rec.DestVal)
	binary.LittleEndian.PutUint64(row[35:], rec.StoreVal)
	t.cur = append(t.cur, row[:]...)
	t.n++
}

// seal closes the open chunk: records its checksum in the manifest and
// either spills it through sink (dropping the payload) or retains it. A
// sink error keeps the chunk resident — spilling is an optimization, so
// its failure can cost memory but never the capture.
func (t *Trace) seal(sink ChunkSink) {
	if len(t.cur) == 0 {
		return
	}
	idx := int64(len(t.chunks))
	crc := crc32.ChecksumIEEE(t.cur)
	t.crcs = append(t.crcs, crc)
	if sink != nil && sink.SealChunk(idx, int64(len(t.cur))/recordBytes, t.cur, crc) == nil {
		t.chunks = append(t.chunks, nil)
	} else {
		t.chunks = append(t.chunks, t.cur)
	}
	t.cur = nil
}

// addChunk installs a pre-built sealed chunk (decode path).
func (t *Trace) addChunk(raw []byte) {
	t.chunks = append(t.chunks, raw)
	t.crcs = append(t.crcs, crc32.ChecksumIEEE(raw))
	t.n += int64(len(raw)) / recordBytes
}

// fillRow reconstructs the record at sequence seq from its packed row
// into dst. Every field is written, so dst may be reused across calls
// without clearing. Inst is resolved through prog — the same lookup the
// live emulator performs — so a Trace can be bound to any structurally
// identical copy of the program it was captured from.
func fillRow(dst *emu.Record, row []byte, seq int64, prog *isa.Program) {
	row = row[:recordBytes:recordBytes]
	pc := isa.PC(int32(binary.LittleEndian.Uint32(row[0:])))
	f := binary.LittleEndian.Uint16(row[20:])
	dst.Seq = seq
	dst.PC = pc
	dst.Op = isa.Opcode(row[22])
	dst.Inst = prog.At(pc)
	dst.Srcs[0] = isa.Reg(row[23])
	dst.Srcs[1] = isa.Reg(row[24])
	dst.NSrcs = int(f & flagNSrcsMask)
	dst.Dest = isa.Reg(row[25])
	dst.EA = isa.Addr(binary.LittleEndian.Uint64(row[12:]))
	dst.MemSize = int(row[26])
	dst.IsLoad = f&flagLoad != 0
	dst.IsStore = f&flagStore != 0
	dst.IsCtrl = f&flagCtrl != 0
	dst.CondBranch = f&flagCond != 0
	dst.IsCall = f&flagCall != 0
	dst.IsRet = f&flagRet != 0
	dst.Indirect = f&flagIndirect != 0
	dst.Taken = f&flagTaken != 0
	dst.NextPC = isa.PC(int32(binary.LittleEndian.Uint32(row[4:])))
	dst.FallPC = pc + 1
	dst.MGID = int(int32(binary.LittleEndian.Uint32(row[8:])))
	dst.DestVal = binary.LittleEndian.Uint64(row[27:])
	dst.StoreVal = binary.LittleEndian.Uint64(row[35:])
}

// captureCheckInterval is how many records elapse between context checks
// during capture.
const captureCheckInterval = 1 << 14

// CaptureOptions tune CaptureWith beyond the defaults.
type CaptureOptions struct {
	// ChunkRecords is the rows-per-chunk geometry, rounded up to a power
	// of two (0 = DefaultChunkRecords). Geometry is storage layout only —
	// it can never change a replayed record.
	ChunkRecords int64
	// Hint is a record-count hint (e.g. a profile's dynamic instruction
	// count): an accurate hint sizes the first chunk's buffer once. The
	// hint only affects allocation, never content.
	Hint int64
	// Sink, when non-nil, receives each chunk as it seals; a successful
	// SealChunk lets capture drop the chunk from memory, so capturing a
	// trace larger than RAM holds at most one open chunk plus whatever
	// the sink buffers. Replaying the returned trace then requires
	// BindSource. Sink errors keep chunks resident (never fail capture).
	Sink ChunkSink
}

// Capture runs prog functionally to completion (halt, architectural fault,
// or limit dynamic records; limit <= 0 means no limit) and returns the
// recorded stream. The limit cut-off matches emu.Stream exactly: the
// emulator is never stepped once limit records exist, so a program that
// would fault at record limit captures cleanly. An architectural fault does
// not fail the capture — it truncates the trace and is surfaced by Readers
// exactly as the live stream surfaces it. The only error Capture itself
// returns is ctx cancellation.
func Capture(ctx context.Context, prog *isa.Program, mgt *core.MGT, limit int64) (*Trace, error) {
	return CaptureWith(ctx, prog, mgt, limit, CaptureOptions{})
}

// CaptureSized is Capture with a record-count hint; see
// CaptureOptions.Hint.
func CaptureSized(ctx context.Context, prog *isa.Program, mgt *core.MGT, limit, hint int64) (*Trace, error) {
	return CaptureWith(ctx, prog, mgt, limit, CaptureOptions{Hint: hint})
}

// CaptureWith is Capture with explicit chunk geometry and an optional
// spill sink; see CaptureOptions.
func CaptureWith(ctx context.Context, prog *isa.Program, mgt *core.MGT, limit int64, opts CaptureOptions) (*Trace, error) {
	if limit <= 0 {
		limit = math.MaxInt64
	}
	cr := normalizeChunkRecords(opts.ChunkRecords)
	t := &Trace{
		chunkRecords: cr,
		chunkShift:   uint(bits.TrailingZeros64(uint64(cr))),
	}
	chunkBytes := cr * recordBytes

	// Size the open chunk's buffer from the hint, capped at one chunk:
	// an accurate hint for a small trace allocates once; a huge trace
	// allocates chunk-sized buffers and recycles nothing bigger.
	hint := opts.Hint
	if hint <= 0 {
		hint = 1 << 12
	}
	if limit < hint {
		hint = limit
	}
	if hint > cr {
		hint = cr
	}
	t.cur = make([]byte, 0, hint*recordBytes)

	m := emu.NewMachine(prog, mgt)
	var rec emu.Record
	for !m.Halted && t.n < limit {
		if t.n%captureCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Geometric growth between checks keeps the append fast path
			// bounds-check-only; an accurate hint makes this a no-op.
			if free := (int64(cap(t.cur)) - int64(len(t.cur))) / recordBytes; free < captureCheckInterval {
				want := 2 * int64(cap(t.cur)) / recordBytes
				if min := int64(len(t.cur))/recordBytes + captureCheckInterval; want < min {
					want = min
				}
				if want > cr {
					want = cr
				}
				if rem := limit - t.n + int64(len(t.cur))/recordBytes; limit < math.MaxInt64 && want > rem {
					want = rem
				}
				if want*recordBytes > int64(cap(t.cur)) {
					grown := make([]byte, len(t.cur), want*recordBytes)
					copy(grown, t.cur)
					t.cur = grown
				}
			}
		}
		if err := m.Step(&rec); err != nil {
			t.errMsg = err.Error()
			t.seal(opts.Sink)
			return t, nil
		}
		t.appendRecord(&rec)
		if int64(len(t.cur)) == chunkBytes {
			t.seal(opts.Sink)
			if t.n < limit && !m.Halted {
				t.cur = make([]byte, 0, chunkBytes)
			}
		}
	}
	t.halted = m.Halted
	t.seal(opts.Sink)
	return t, nil
}

// Reader is a cursor over a Trace implementing the pipeline's TraceSource
// contract with the exact semantics of the live emu.Stream: NextInto
// serves records in order, Rewind re-serves from an earlier sequence
// number (any depth — the trace is fully retained, resident or not), and
// Err reports the architectural fault the stream would have hit. A Reader
// is single-goroutine; open one Reader per concurrent simulation over the
// shared Trace.
//
// Over a spilled trace the Reader holds a bounded window of resident
// chunks (NewReaderWindowed) and faults evicted ones back in through the
// trace's ChunkSource; a source failure surfaces through Err as
// ErrChunkUnavailable after the stream cuts off, mirroring how the live
// stream surfaces an architectural fault.
type Reader struct {
	t       *Trace
	prog    *isa.Program
	win     *chunkWindow
	serve   int64 // records available to this reader (limit-clamped)
	cursor  int64
	err     error
	faultAt int64 // serve value before an I/O cutoff (for Err precedence)

	// rows/rowsBase/rowsEnd cache the chunk under the cursor so the
	// per-record path is one bounds-checked slice, as it was when the
	// trace was a single flat buffer.
	rows     []byte
	rowsBase int64
	rowsEnd  int64

	scratch emu.Record
}

// NewReader opens a cursor over t bound to prog (the program t was
// captured from, or a structurally identical copy). limit bounds served
// records like Config.MaxRecords bounds the live stream (<= 0: no limit).
// The chunk window is unbounded: every chunk faulted in stays resident
// for the reader's lifetime.
func NewReader(t *Trace, prog *isa.Program, limit int64) *Reader {
	return NewReaderWindowed(t, prog, limit, 0)
}

// NewReaderWindowed is NewReader with a bounded resident-chunk window:
// at most windowChunks spilled chunks are held at once (<= 0: unbounded),
// so replay memory is windowChunks × chunk bytes no matter how large the
// trace is. Chunks the Trace itself retains are served directly and do
// not count against the window.
func NewReaderWindowed(t *Trace, prog *isa.Program, limit int64, windowChunks int) *Reader {
	req := limit
	if req <= 0 {
		req = math.MaxInt64
	}
	serve := t.Len()
	if req < serve {
		serve = req
	}
	r := &Reader{t: t, prog: prog, serve: serve, win: newChunkWindow(t, windowChunks)}
	if t.errMsg != "" && req > t.Len() {
		// The live stream only hits the fault when asked to generate past
		// it; a caller whose limit stops at or before the truncation point
		// never observes the error.
		r.err = t.Err()
	}
	return r
}

// WindowStats reports the reader's chunk-window activity (faults,
// evictions, peak resident bytes).
func (r *Reader) WindowStats() WindowStats { return r.win.stats }

// loadChunk points the row cache at the chunk containing seq, faulting it
// in if necessary. On a source failure the stream cuts off at the cursor
// and the failure surfaces through Err.
func (r *Reader) loadChunk(seq int64) bool {
	ci := seq >> r.t.chunkShift
	data, err := r.win.rows(ci)
	if err != nil {
		r.err = err
		r.faultAt = r.serve
		r.serve = r.cursor
		return false
	}
	r.rows = data
	r.rowsBase = ci << r.t.chunkShift
	r.rowsEnd = r.rowsBase + int64(len(data))/recordBytes
	return true
}

// Next returns the record at the cursor, advancing it. ok=false means the
// stream is exhausted (halt, limit, or fault — check Err). The returned
// pointer is the reader's scratch record and is valid until the next call.
func (r *Reader) Next() (*emu.Record, bool) {
	if !r.NextInto(&r.scratch) {
		return nil, false
	}
	return &r.scratch, true
}

// NextInto writes the record at the cursor into dst and advances — the
// pipeline's zero-copy delivery path (the record materialises directly in
// the consumer's storage, no scratch staging).
func (r *Reader) NextInto(dst *emu.Record) bool {
	if r.cursor >= r.serve {
		return false
	}
	if r.cursor < r.rowsBase || r.cursor >= r.rowsEnd {
		if !r.loadChunk(r.cursor) {
			return false
		}
	}
	fillRow(dst, r.rows[(r.cursor-r.rowsBase)*recordBytes:], r.cursor, r.prog)
	r.cursor++
	return true
}

// Cursor returns the sequence number of the next record Next will serve.
func (r *Reader) Cursor() int64 { return r.cursor }

// Err returns the architectural fault that truncated the stream (if this
// reader's limit would have run into it) or the chunk-fetch failure that
// cut the stream off early.
func (r *Reader) Err() error { return r.err }

// Exhausted reports whether every available record has been served.
func (r *Reader) Exhausted() bool { return r.cursor >= r.serve }

// Rewind moves the cursor back to sequence seq. Unlike the live stream's
// bounded retention window, a trace rewind reaches any depth — a bounded
// chunk window re-faults evicted chunks rather than clamping; rewinding
// forward is a simulator bug and panics, matching emu.Stream.
func (r *Reader) Rewind(seq int64) {
	if seq > r.cursor || seq < 0 {
		panic(fmt.Sprintf("trace: rewind out of range (seq=%d cursor=%d)", seq, r.cursor))
	}
	r.cursor = seq
	// A rewind past an I/O cutoff retries the fetch: restore the serve
	// bound so the reader can make progress again if the source recovered.
	if r.faultAt > r.serve && errors.Is(r.err, ErrChunkUnavailable) {
		r.serve, r.faultAt, r.err = r.faultAt, 0, nil
	}
}
