package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
)

// Chunked backing. A Trace's packed rows are not one flat buffer but a
// sequence of fixed-size chunks (a power-of-two record count per chunk,
// DefaultChunkRecords unless overridden at capture). The chunk is the unit
// of everything the substrate does with trace data:
//
//   - capture seals one chunk at a time and can spill sealed chunks
//     through a ChunkSink instead of retaining them, so capturing a trace
//     never needs more than one open chunk of memory;
//   - each chunk carries its own CRC, so damage is detected — and
//     re-fetched or re-captured — per chunk, not per multi-GB blob;
//   - the persistent store holds one entry per chunk plus a Manifest
//     entry naming them, so a cold process (or a peer transfer) moves and
//     verifies the trace chunk by chunk;
//   - Readers hold a bounded window of resident chunks and fault evicted
//     ones back in through a ChunkSource, so replay memory is bounded by
//     the window, not the trace. Rewind stays unbounded: rewinding past
//     the window merely re-faults old chunks, it never clamps.
const (
	// DefaultChunkRecords is the records-per-chunk default (~64Ki rows,
	// ~2.7 MiB of packed rows per chunk).
	DefaultChunkRecords = 1 << 16

	// minChunkRecords floors the records-per-chunk override. Tiny chunks
	// exist so tests can cross many chunk boundaries cheaply; below this
	// the per-chunk framing overhead stops being meaningful.
	minChunkRecords = 1 << 4
)

// normalizeChunkRecords rounds n up to a power of two within
// [minChunkRecords, 2^30], with 0 (and negatives) selecting the default.
func normalizeChunkRecords(n int64) int64 {
	if n <= 0 {
		return DefaultChunkRecords
	}
	if n < minChunkRecords {
		n = minChunkRecords
	}
	if n > 1<<30 {
		n = 1 << 30
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len64(uint64(n))
	}
	return n
}

// ErrChunkUnavailable marks a replay failure caused by a non-resident
// chunk that the trace's ChunkSource could not deliver (store eviction
// under a live reader, a vanished peer). Callers that can re-capture
// should treat it as "the trace is gone", not as a simulation bug.
var ErrChunkUnavailable = errors.New("trace: chunk unavailable")

// ChunkSink receives sealed chunks during capture (see CaptureWith). A
// nil error means the sink now owns a durable copy and the capture may
// drop the chunk from memory; an error keeps the chunk resident in the
// returned Trace (capture never fails because spilling did).
//
// data is the chunk's raw packed rows; it must not be retained after
// SealChunk returns unless the sink copies it.
type ChunkSink interface {
	SealChunk(index int64, rows int64, data []byte, crc uint32) error
}

// ChunkSource supplies the raw packed rows of one sealed chunk by index
// (see Trace.BindSource). The returned bytes are CRC-verified against the
// trace's manifest by the caller, so a source only moves bytes. Sources
// must be safe for concurrent use — every Reader over a spilled trace
// faults through the one bound source.
type ChunkSource interface {
	FetchChunk(index int64) ([]byte, error)
}

// ChunkInfo is one manifest entry: the row count and payload CRC of one
// sealed chunk.
type ChunkInfo struct {
	Rows int64
	CRC  uint32
}

// Manifest describes a chunked trace without its payload: total rows,
// records per chunk, capture termination state, and the per-chunk row
// counts and checksums. It is the unit the store persists under the
// trace's key — chunk payloads live in their own entries — and what a
// peer transfer fetches first to know what to stream.
type Manifest struct {
	ChunkRecords int64
	Rows         int64
	Halted       bool
	ErrMsg       string
	Chunks       []ChunkInfo
}

// manifestMagic tags a manifest encoding ("MGTM", little-endian).
const manifestMagic uint32 = 0x4d54474d

// chunkMagic tags a chunk frame ("MGTC", little-endian).
const chunkMagic uint32 = 0x4354474d

// chunkFlagFlate marks a chunk frame whose payload is DEFLATE-compressed.
const chunkFlagFlate uint16 = 1 << 0

// manifestHeaderBytes: magic(4) version(2) flags(2: bit0 halted)
// errLen(4) rows(8) chunkRecords(8) chunkCount(4) crc(4), then errMsg,
// then chunkCount × (rows u32 | crc u32). crc is the IEEE CRC-32 of
// errMsg followed by the chunk table.
const manifestHeaderBytes = 4 + 2 + 2 + 4 + 8 + 8 + 4 + 4

// chunkHeaderBytes: magic(4) version(2) flags(2) index(4) rows(4)
// rawCRC(4) encLen(4), then encLen payload bytes (raw packed rows, or a
// DEFLATE stream of them when chunkFlagFlate is set). rawCRC is always
// the CRC of the *uncompressed* rows — the manifest and the frame agree
// on one checksum no matter how the payload traveled.
const chunkHeaderBytes = 4 + 2 + 2 + 4 + 4 + 4 + 4

// EncodeManifest renders m in the versioned binary manifest encoding.
// The encoding is canonical: equal manifests encode to equal bytes.
func EncodeManifest(m Manifest) []byte {
	table := make([]byte, 0, 8*len(m.Chunks))
	for _, c := range m.Chunks {
		var row [8]byte
		binary.LittleEndian.PutUint32(row[0:], uint32(c.Rows))
		binary.LittleEndian.PutUint32(row[4:], c.CRC)
		table = append(table, row[:]...)
	}
	crc := crc32.ChecksumIEEE([]byte(m.ErrMsg))
	crc = crc32.Update(crc, crc32.IEEETable, table)

	buf := make([]byte, 0, manifestHeaderBytes+len(m.ErrMsg)+len(table))
	var h [manifestHeaderBytes]byte
	binary.LittleEndian.PutUint32(h[0:], manifestMagic)
	binary.LittleEndian.PutUint16(h[4:], CodecVersion)
	var fl uint16
	if m.Halted {
		fl = 1
	}
	binary.LittleEndian.PutUint16(h[6:], fl)
	binary.LittleEndian.PutUint32(h[8:], uint32(len(m.ErrMsg)))
	binary.LittleEndian.PutUint64(h[12:], uint64(m.Rows))
	binary.LittleEndian.PutUint64(h[20:], uint64(m.ChunkRecords))
	binary.LittleEndian.PutUint32(h[28:], uint32(len(m.Chunks)))
	binary.LittleEndian.PutUint32(h[32:], crc)
	buf = append(buf, h[:]...)
	buf = append(buf, m.ErrMsg...)
	buf = append(buf, table...)
	return buf
}

// DecodeManifest parses a binary manifest encoding. It rejects bad magic,
// version mismatches, truncation, trailing garbage, table corruption, and
// any internal inconsistency (chunk rows that do not sum to the total,
// oversized chunks, a non-power-of-two chunk size) — a damaged or stale
// manifest must read as a cache miss, never as a wrong chunk plan.
func DecodeManifest(data []byte) (Manifest, error) {
	var m Manifest
	if len(data) < manifestHeaderBytes {
		return m, fmt.Errorf("trace: short manifest header (%d bytes)", len(data))
	}
	if mg := binary.LittleEndian.Uint32(data[0:]); mg != manifestMagic {
		return m, fmt.Errorf("trace: bad manifest magic %#x", mg)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != CodecVersion {
		return m, fmt.Errorf("trace: manifest codec version %d, want %d", v, CodecVersion)
	}
	fl := binary.LittleEndian.Uint16(data[6:])
	if fl > 1 {
		return m, fmt.Errorf("trace: unknown manifest flags %#x", fl)
	}
	errLen := int64(binary.LittleEndian.Uint32(data[8:]))
	rows := int64(binary.LittleEndian.Uint64(data[12:]))
	chunkRecords := int64(binary.LittleEndian.Uint64(data[20:]))
	count := int64(binary.LittleEndian.Uint32(data[28:]))
	if rows < 0 || chunkRecords < minChunkRecords || chunkRecords > 1<<30 ||
		chunkRecords&(chunkRecords-1) != 0 {
		return m, fmt.Errorf("trace: implausible manifest geometry (rows=%d chunkRecords=%d)", rows, chunkRecords)
	}
	if count != (rows+chunkRecords-1)/chunkRecords {
		return m, fmt.Errorf("trace: manifest chunk count %d does not cover %d rows", count, rows)
	}
	want := manifestHeaderBytes + errLen + 8*count
	if errLen > int64(len(data)) || int64(len(data)) != want {
		return m, fmt.Errorf("trace: manifest is %d bytes, want %d", len(data), want)
	}
	m.Halted = fl&1 != 0
	m.Rows = rows
	m.ChunkRecords = chunkRecords
	off := int64(manifestHeaderBytes)
	m.ErrMsg = string(data[off : off+errLen])
	off += errLen
	table := data[off:]
	crc := crc32.ChecksumIEEE([]byte(m.ErrMsg))
	crc = crc32.Update(crc, crc32.IEEETable, table)
	if crc != binary.LittleEndian.Uint32(data[32:]) {
		return m, fmt.Errorf("trace: manifest table checksum mismatch")
	}
	m.Chunks = make([]ChunkInfo, count)
	var sum int64
	for i := range m.Chunks {
		r := int64(binary.LittleEndian.Uint32(table[8*i:]))
		if r <= 0 || r > chunkRecords {
			return m, fmt.Errorf("trace: manifest chunk %d has %d rows (chunk size %d)", i, r, chunkRecords)
		}
		if int64(i) < count-1 && r != chunkRecords {
			return m, fmt.Errorf("trace: manifest chunk %d is short (%d rows) but not last", i, r)
		}
		m.Chunks[i] = ChunkInfo{Rows: r, CRC: binary.LittleEndian.Uint32(table[8*i+4:])}
		sum += r
	}
	if sum != rows {
		return m, fmt.Errorf("trace: manifest chunk rows sum to %d, want %d", sum, rows)
	}
	return m, nil
}

// EncodeChunk renders one sealed chunk's raw rows as a self-describing,
// individually verifiable frame. With compress set the payload is
// DEFLATE-compressed when that actually shrinks it (an incompressible
// chunk is stored raw, so compression can only help); the frame's CRC is
// always of the raw rows, matching the manifest's entry for the chunk.
func EncodeChunk(index int64, raw []byte, compress bool) []byte {
	if len(raw)%recordBytes != 0 {
		panic(fmt.Sprintf("trace: chunk payload %d bytes is not whole rows", len(raw)))
	}
	payload := raw
	var fl uint16
	if compress && len(raw) > 0 {
		var buf bytes.Buffer
		zw, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err == nil {
			if _, err := zw.Write(raw); err == nil && zw.Close() == nil && buf.Len() < len(raw) {
				payload = buf.Bytes()
				fl |= chunkFlagFlate
			}
		}
	}
	out := make([]byte, 0, chunkHeaderBytes+len(payload))
	var h [chunkHeaderBytes]byte
	binary.LittleEndian.PutUint32(h[0:], chunkMagic)
	binary.LittleEndian.PutUint16(h[4:], CodecVersion)
	binary.LittleEndian.PutUint16(h[6:], fl)
	binary.LittleEndian.PutUint32(h[8:], uint32(index))
	binary.LittleEndian.PutUint32(h[12:], uint32(len(raw)/recordBytes))
	binary.LittleEndian.PutUint32(h[16:], crc32.ChecksumIEEE(raw))
	binary.LittleEndian.PutUint32(h[20:], uint32(len(payload)))
	out = append(out, h[:]...)
	out = append(out, payload...)
	return out
}

// DecodeChunk parses a chunk frame, decompressing if needed, and verifies
// it end to end: magic, version, length, whole rows, and the raw-payload
// CRC. The returned slice is freshly allocated (never aliases data).
func DecodeChunk(data []byte) (index int64, raw []byte, err error) {
	if len(data) < chunkHeaderBytes {
		return 0, nil, fmt.Errorf("trace: short chunk header (%d bytes)", len(data))
	}
	if mg := binary.LittleEndian.Uint32(data[0:]); mg != chunkMagic {
		return 0, nil, fmt.Errorf("trace: bad chunk magic %#x", mg)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != CodecVersion {
		return 0, nil, fmt.Errorf("trace: chunk codec version %d, want %d", v, CodecVersion)
	}
	fl := binary.LittleEndian.Uint16(data[6:])
	if fl&^chunkFlagFlate != 0 {
		return 0, nil, fmt.Errorf("trace: unknown chunk flags %#x", fl)
	}
	index = int64(binary.LittleEndian.Uint32(data[8:]))
	rows := int64(binary.LittleEndian.Uint32(data[12:]))
	wantCRC := binary.LittleEndian.Uint32(data[16:])
	encLen := int64(binary.LittleEndian.Uint32(data[20:]))
	if int64(len(data)) != chunkHeaderBytes+encLen {
		return 0, nil, fmt.Errorf("trace: chunk frame is %d bytes, want %d", len(data), chunkHeaderBytes+encLen)
	}
	payload := data[chunkHeaderBytes:]
	if fl&chunkFlagFlate != 0 {
		// The row count sizes the inflate buffer, and it arrives from the
		// wire. DEFLATE expands at most ~1032x, so a header claiming more
		// rows than the payload could possibly inflate to is a memory
		// bomb, not a chunk — reject it before allocating anything.
		if rows*recordBytes > encLen*1032+64 {
			return 0, nil, fmt.Errorf("trace: chunk claims %d rows from %d compressed bytes", rows, encLen)
		}
		zr := flate.NewReader(bytes.NewReader(payload))
		raw = make([]byte, 0, rows*recordBytes)
		var rerr error
		raw, rerr = appendAll(raw, zr, rows*recordBytes)
		_ = zr.Close()
		if rerr != nil {
			return 0, nil, fmt.Errorf("trace: chunk inflate: %w", rerr)
		}
	} else {
		raw = append([]byte(nil), payload...)
	}
	if int64(len(raw)) != rows*recordBytes {
		return 0, nil, fmt.Errorf("trace: chunk holds %d bytes, header claims %d rows", len(raw), rows)
	}
	if crc32.ChecksumIEEE(raw) != wantCRC {
		return 0, nil, fmt.Errorf("trace: chunk payload checksum mismatch")
	}
	return index, raw, nil
}

// appendAll reads r to EOF into dst, refusing to grow past limit+1 bytes
// (a frame whose inflated size disagrees with its header must fail
// cleanly, not allocate unboundedly).
func appendAll(dst []byte, r io.Reader, limit int64) ([]byte, error) {
	var buf [32 << 10]byte
	for {
		n, err := r.Read(buf[:])
		dst = append(dst, buf[:n]...)
		if int64(len(dst)) > limit {
			return dst, fmt.Errorf("inflated payload exceeds %d declared bytes", limit)
		}
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// WindowStats reports one reader's bounded-window activity: chunks
// faulted in through the ChunkSource, chunks evicted to stay inside the
// window, and the peak bytes the window held resident at any moment.
type WindowStats struct {
	Faults    int64
	Evictions int64
	PeakBytes int64
}

// chunkWindow is a bounded per-reader cache of non-resident chunk
// payloads. Chunks the Trace itself retains are served directly and cost
// the window nothing; only spilled chunks are faulted in (CRC-verified
// against the manifest) and LRU-evicted beyond max. A window belongs to
// one reader (or one gang) and is not safe for concurrent use — sharing
// happens at the immutable Trace, not here.
type chunkWindow struct {
	t     *Trace
	max   int // max faulted chunks held resident (<= 0: unbounded)
	cache map[int64][]byte
	order []int64 // least recently touched first
	bytes int64
	stats WindowStats
}

func newChunkWindow(t *Trace, maxChunks int) *chunkWindow {
	return &chunkWindow{t: t, max: maxChunks}
}

// rows returns chunk ci's raw packed rows, faulting through the trace's
// source if the chunk is not resident. Every byte served has passed the
// manifest CRC — a source that returns damaged or wrong-length bytes
// reads as ErrChunkUnavailable, never as wrong records.
func (w *chunkWindow) rows(ci int64) ([]byte, error) {
	if data := w.t.chunks[ci]; data != nil {
		return data, nil
	}
	if data, ok := w.cache[ci]; ok {
		w.touch(ci)
		return data, nil
	}
	if w.t.source == nil {
		return nil, fmt.Errorf("%w: chunk %d is not resident and the trace has no source", ErrChunkUnavailable, ci)
	}
	data, err := w.t.source.FetchChunk(ci)
	if err != nil {
		return nil, fmt.Errorf("%w: chunk %d: %v", ErrChunkUnavailable, ci, err)
	}
	if int64(len(data)) != w.t.chunkRows(ci)*recordBytes {
		return nil, fmt.Errorf("%w: chunk %d: source returned %d bytes, want %d",
			ErrChunkUnavailable, ci, len(data), w.t.chunkRows(ci)*recordBytes)
	}
	if crc32.ChecksumIEEE(data) != w.t.crcs[ci] {
		return nil, fmt.Errorf("%w: chunk %d: payload checksum mismatch", ErrChunkUnavailable, ci)
	}
	if w.cache == nil {
		w.cache = make(map[int64][]byte)
	}
	// Evict before inserting so residency never exceeds max chunks, even
	// transiently — PeakBytes ≤ max × chunk bytes is the bound callers
	// provision real memory against.
	for w.max > 0 && len(w.cache) >= w.max {
		victim := w.order[0]
		w.order = w.order[1:]
		w.bytes -= int64(len(w.cache[victim]))
		delete(w.cache, victim)
		w.stats.Evictions++
	}
	w.cache[ci] = data
	w.order = append(w.order, ci)
	w.bytes += int64(len(data))
	w.stats.Faults++
	if w.bytes > w.stats.PeakBytes {
		w.stats.PeakBytes = w.bytes
	}
	return data, nil
}

// touch marks ci most recently used.
func (w *chunkWindow) touch(ci int64) {
	for i, k := range w.order {
		if k == ci {
			w.order = append(append(w.order[:i:i], w.order[i+1:]...), ci)
			return
		}
	}
}
