package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
)

// CodecVersion is the on-the-wire version of the binary trace encodings
// (the monolithic blob, the chunk frame, and the manifest all carry it).
// Any change to the record layout or framing must bump it: persisted
// traces written under an older version then read back as decode errors
// (cache misses) instead of replaying garbage.
//
// Version history:
//
//	1: initial 27-byte packed rows.
//	2: rows grew destVal/storeVal u64 pairs (43 bytes) so replay folds the
//	   same retired-state digest as the live stream.
//	3: chunked framing — the monolithic blob became a container of
//	   per-chunk frames (each with its own CRC), and the manifest/chunk
//	   encodings were introduced for chunk-granular store persistence and
//	   peer transfer. v2 monolithic blobs are strictly rejected.
const CodecVersion = 3

// magic tags a monolithic trace blob ("MGTR", little-endian).
const magic uint32 = 0x5254474d

// Monolithic-blob header layout: magic(4) version(2) flags(2: bit0 =
// halted) errLen(4) n(8) chunkRecords(8) crc(4), then errMsg bytes, then
// one uncompressed chunk frame per sealed chunk, back to back. crc is the
// IEEE CRC-32 of errMsg followed by the frame bytes; each frame carries
// its own payload CRC as well, so damage anywhere — header, framing, or
// rows — reads as a cache miss, never as a wrong replay. Frames inside
// the blob are always uncompressed: the blob is the canonical form
// (equal traces encode to equal bytes, fuzz-checked), and compression is
// a property of how an individual chunk is stored or shipped, not of the
// trace itself.
const headerBytes = 4 + 2 + 2 + 4 + 8 + 8 + 4

// Encode renders t in the versioned binary encoding: the full record
// stream as one self-contained blob. The encoding is canonical — equal
// traces encode to equal bytes regardless of which chunks happen to be
// resident — which is why spilled chunks are fetched (and verified)
// through the trace's source; the only possible error is a chunk the
// source cannot deliver.
func Encode(t *Trace) ([]byte, error) {
	frames := make([][]byte, t.NumChunks())
	total := 0
	for ci := range frames {
		raw, err := t.ChunkPayload(int64(ci))
		if err != nil {
			return nil, err
		}
		frames[ci] = EncodeChunk(int64(ci), raw, false)
		total += len(frames[ci])
	}
	crc := crc32.ChecksumIEEE([]byte(t.errMsg))
	for _, f := range frames {
		crc = crc32.Update(crc, crc32.IEEETable, f)
	}
	buf := make([]byte, 0, headerBytes+len(t.errMsg)+total)
	var h [headerBytes]byte
	binary.LittleEndian.PutUint32(h[0:], magic)
	binary.LittleEndian.PutUint16(h[4:], CodecVersion)
	var fl uint16
	if t.halted {
		fl = 1
	}
	binary.LittleEndian.PutUint16(h[6:], fl)
	binary.LittleEndian.PutUint32(h[8:], uint32(len(t.errMsg)))
	binary.LittleEndian.PutUint64(h[12:], uint64(t.Len()))
	binary.LittleEndian.PutUint64(h[20:], uint64(t.ChunkRecords()))
	binary.LittleEndian.PutUint32(h[28:], crc)
	buf = append(buf, h[:]...)
	buf = append(buf, t.errMsg...)
	for _, f := range frames {
		buf = append(buf, f...)
	}
	return buf, nil
}

// Decode parses a monolithic binary trace encoding into a fully resident
// Trace. It rejects bad magic, version mismatches (including pre-chunking
// v2 blobs), truncated data, trailing garbage, compressed or out-of-order
// frames, geometry violations, and payload corruption — a persisted blob
// that fails any check reads as a cache miss, never as a wrong replay.
func Decode(data []byte) (*Trace, error) {
	if len(data) < headerBytes {
		return nil, fmt.Errorf("trace: short header (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != magic {
		return nil, fmt.Errorf("trace: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != CodecVersion {
		return nil, fmt.Errorf("trace: codec version %d, want %d", v, CodecVersion)
	}
	fl := binary.LittleEndian.Uint16(data[6:])
	if fl > 1 {
		return nil, fmt.Errorf("trace: unknown header flags %#x", fl)
	}
	errLen := int64(binary.LittleEndian.Uint32(data[8:]))
	n := binary.LittleEndian.Uint64(data[12:])
	cr := int64(binary.LittleEndian.Uint64(data[20:]))
	if cr < minChunkRecords || cr > 1<<30 || cr&(cr-1) != 0 {
		return nil, fmt.Errorf("trace: implausible chunk geometry %d", cr)
	}
	// The records must fit in what was handed to us; checking against the
	// input length first keeps the size arithmetic below overflow-free.
	if n > uint64(len(data))/recordBytes || errLen > int64(len(data))-headerBytes {
		return nil, fmt.Errorf("trace: implausible record count %d for %d bytes", n, len(data))
	}
	wantCRC := binary.LittleEndian.Uint32(data[28:])
	if crc := crc32.ChecksumIEEE(data[headerBytes : headerBytes+errLen]); crc32.Update(crc, crc32.IEEETable, data[headerBytes+errLen:]) != wantCRC {
		return nil, fmt.Errorf("trace: payload checksum mismatch")
	}
	t := &Trace{
		chunkRecords: cr,
		chunkShift:   uint(bits.TrailingZeros64(uint64(cr))),
		halted:       fl&1 != 0,
		errMsg:       string(data[headerBytes : headerBytes+errLen]),
	}
	rest := data[headerBytes+errLen:]
	wantChunks := (int64(n) + cr - 1) / cr
	for ci := int64(0); ci < wantChunks; ci++ {
		if int64(len(rest)) < chunkHeaderBytes {
			return nil, fmt.Errorf("trace: truncated at chunk %d", ci)
		}
		if frameFl := binary.LittleEndian.Uint16(rest[6:]); frameFl != 0 {
			// Compressed frames never appear inside the canonical blob.
			return nil, fmt.Errorf("trace: chunk %d frame has flags %#x inside monolithic blob", ci, frameFl)
		}
		frameLen := chunkHeaderBytes + int64(binary.LittleEndian.Uint32(rest[20:]))
		if int64(len(rest)) < frameLen {
			return nil, fmt.Errorf("trace: truncated chunk %d frame", ci)
		}
		idx, raw, err := DecodeChunk(rest[:frameLen])
		if err != nil {
			return nil, err
		}
		if idx != ci {
			return nil, fmt.Errorf("trace: chunk frame %d carries index %d", ci, idx)
		}
		want := cr
		if ci == wantChunks-1 {
			want = int64(n) - ci*cr
		}
		if int64(len(raw)) != want*recordBytes {
			return nil, fmt.Errorf("trace: chunk %d holds %d rows, geometry wants %d", ci, int64(len(raw))/recordBytes, want)
		}
		t.addChunk(raw)
		rest = rest[frameLen:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes after chunk frames", len(rest))
	}
	if t.n != int64(n) {
		return nil, fmt.Errorf("trace: chunks hold %d records, header claims %d", t.n, n)
	}
	return t, nil
}
