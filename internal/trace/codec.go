package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// CodecVersion is the on-the-wire version of the binary trace encoding.
// Any change to the record layout must bump it: persisted traces written
// under an older version then read back as decode errors (cache misses)
// instead of replaying garbage.
//
// Version history:
//
//	1: initial 27-byte packed rows.
//	2: rows grew destVal/storeVal u64 pairs (43 bytes) so replay folds the
//	   same retired-state digest as the live stream.
const CodecVersion = 2

// magic tags a trace blob ("MGTR", little-endian).
const magic uint32 = 0x5254474d

// header layout: magic(4) version(2) flags(2: bit0 = halted) errLen(4)
// n(8) crc(4), then errMsg bytes, then n packed records (see recordBytes).
// crc is the IEEE CRC-32 of errMsg followed by the record bytes: replaying
// a value-corrupted blob would silently time the wrong program (or panic
// on an out-of-range PC), so content integrity is part of the format and
// any damage — header or payload — reads as a cache miss. The in-memory
// and on-the-wire record layouts are identical, so encode and decode are
// a header plus one copy.
const headerBytes = 4 + 2 + 2 + 4 + 8 + 4

func (t *Trace) checksum() uint32 {
	crc := crc32.ChecksumIEEE([]byte(t.errMsg))
	return crc32.Update(crc, crc32.IEEETable, t.recs)
}

// Encode renders t in the versioned binary encoding. The encoding is
// canonical: equal traces encode to equal bytes.
func Encode(t *Trace) []byte {
	buf := make([]byte, 0, headerBytes+len(t.errMsg)+len(t.recs))
	var h [headerBytes]byte
	binary.LittleEndian.PutUint32(h[0:], magic)
	binary.LittleEndian.PutUint16(h[4:], CodecVersion)
	var fl uint16
	if t.halted {
		fl = 1
	}
	binary.LittleEndian.PutUint16(h[6:], fl)
	binary.LittleEndian.PutUint32(h[8:], uint32(len(t.errMsg)))
	binary.LittleEndian.PutUint64(h[12:], uint64(t.Len()))
	binary.LittleEndian.PutUint32(h[20:], t.checksum())
	buf = append(buf, h[:]...)
	buf = append(buf, t.errMsg...)
	buf = append(buf, t.recs...)
	return buf
}

// Decode parses a binary trace encoding. It rejects bad magic, version
// mismatches, truncated data, trailing garbage, and payload corruption
// (CRC mismatch) — a persisted blob that fails any check reads as a cache
// miss, never as a wrong replay.
func Decode(data []byte) (*Trace, error) {
	if len(data) < headerBytes {
		return nil, fmt.Errorf("trace: short header (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != magic {
		return nil, fmt.Errorf("trace: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != CodecVersion {
		return nil, fmt.Errorf("trace: codec version %d, want %d", v, CodecVersion)
	}
	fl := binary.LittleEndian.Uint16(data[6:])
	if fl > 1 {
		return nil, fmt.Errorf("trace: unknown header flags %#x", fl)
	}
	errLen := int64(binary.LittleEndian.Uint32(data[8:]))
	n := binary.LittleEndian.Uint64(data[12:])
	// The records must fit in what was handed to us; checking against the
	// input length first keeps the size arithmetic below overflow-free.
	if n > uint64(len(data))/recordBytes || errLen > int64(len(data)) {
		return nil, fmt.Errorf("trace: implausible record count %d for %d bytes", n, len(data))
	}
	want := headerBytes + errLen + int64(n)*recordBytes
	if int64(len(data)) != want {
		return nil, fmt.Errorf("trace: %d bytes, want %d for %d records", len(data), want, n)
	}
	t := &Trace{halted: fl&1 != 0}
	off := int64(headerBytes)
	t.errMsg = string(data[off : off+errLen])
	off += errLen
	t.recs = append([]byte(nil), data[off:]...)
	if crc := binary.LittleEndian.Uint32(data[20:]); crc != t.checksum() {
		return nil, fmt.Errorf("trace: payload checksum mismatch")
	}
	return t, nil
}
