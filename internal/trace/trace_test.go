package trace_test

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"

	"minigraph"
	"minigraph/internal/asm"
	"minigraph/internal/core"
	"minigraph/internal/emu"
	"minigraph/internal/isa"
	"minigraph/internal/trace"
	"minigraph/internal/uarch"
	"minigraph/internal/workload"
)

// rewritten builds the mini-graph variant of a workload benchmark the same
// way the engine does, so the trace covers handle records too. The
// templates come back alongside the table because an MGT memoizes
// schedules lazily and is therefore per-pipeline state: concurrent
// simulations each build their own from the shared immutable templates.
func rewritten(t testing.TB, bench string) (*isa.Program, *core.MGT, []*core.Template) {
	t.Helper()
	wl, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", bench)
	}
	prog := wl.Build(workload.InputTrain)
	prof, err := minigraph.ProfileOf(prog, minigraph.ProfileLimit)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := minigraph.Extract(prog, prof, minigraph.DefaultPolicy(), 512, minigraph.DefaultExecParams())
	if err != nil {
		t.Fatal(err)
	}
	return rw.Prog, rw.MGT, rw.Selection.Templates
}

// TestReaderMatchesStream drives the live stream and a trace reader in
// lockstep — including rewinds deeper than any live window would need —
// and demands identical records.
func TestReaderMatchesStream(t *testing.T) {
	prog, mgt, _ := rewritten(t, "sha")
	const limit = 20_000
	tr, err := trace.Capture(context.Background(), prog, mgt, limit)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != limit {
		t.Fatalf("trace length %d, want %d", tr.Len(), limit)
	}

	s := emu.NewStream(emu.NewMachine(prog, mgt), 4096, limit)
	r := trace.NewReader(tr, prog, limit)
	step := 0
	for {
		sr, sok := s.Next()
		rr, rok := r.Next()
		if sok != rok {
			t.Fatalf("step %d: stream ok=%v reader ok=%v", step, sok, rok)
		}
		if !sok {
			break
		}
		if !reflect.DeepEqual(*sr, *rr) {
			t.Fatalf("step %d: record mismatch\nstream: %+v\nreplay: %+v", step, *sr, *rr)
		}
		step++
		// Periodic rewinds exercise the squash path; every 4096 records jump
		// back a stride the live window can still cover so both sides can
		// replay it.
		if step%4096 == 0 {
			seq := sr.Seq - 100
			s.Rewind(seq)
			r.Rewind(seq)
		}
	}
	if (s.Err() == nil) != (r.Err() == nil) {
		t.Fatalf("err mismatch: stream %v reader %v", s.Err(), r.Err())
	}
	if !s.Exhausted() || !r.Exhausted() {
		t.Fatal("both sources should be exhausted")
	}
}

// TestReaderDeepRewind: a replay cursor rewinds to record zero no matter
// how far it has advanced — there is no retention window to fall out of.
func TestReaderDeepRewind(t *testing.T) {
	prog, mgt, _ := rewritten(t, "sha")
	tr, err := trace.Capture(context.Background(), prog, mgt, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	r := trace.NewReader(tr, prog, 0)
	var first emu.Record
	for i := 0; i < 10_000; i++ {
		rec, ok := r.Next()
		if !ok {
			t.Fatalf("exhausted at %d", i)
		}
		if i == 0 {
			first = *rec
		}
	}
	r.Rewind(0)
	rec, ok := r.Next()
	if !ok || !reflect.DeepEqual(*rec, first) {
		t.Fatalf("deep rewind did not re-serve record 0 (ok=%v)", ok)
	}
}

// TestPipelineReplayIdentical is the golden-invariance rule at the unit
// level: one benchmark simulated via the live stream and via trace replay
// must produce identical statistics on multiple machine configurations
// sharing the one capture.
func TestPipelineReplayIdentical(t *testing.T) {
	prog, mgt, templates := rewritten(t, "adpcm.enc")
	tr, err := trace.Capture(context.Background(), prog, mgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Halted() {
		t.Fatal("benchmark did not halt during capture")
	}
	// Three arms sharing the one capture: the paper machine, a DRAM-latency
	// variant, and a collapsing-AP variant (whose MGT schedules differ —
	// only the *functional* stream is shared, so each arm builds its own
	// table under its own exec parameters).
	configs := []uarch.Config{uarch.MiniGraph(true), uarch.MiniGraph(true), uarch.MiniGraph(true)}
	configs[1].MemLatency = 140
	configs[2].Collapse = true
	for _, cfg := range configs {
		params := core.ExecParams{LoadLat: cfg.LoadLat, Collapse: cfg.Collapse, UseAP: cfg.APs > 0}
		live, err := uarch.New(cfg, prog, core.NewMGT(templates, params)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		rd := trace.NewReader(tr, prog, cfg.MaxRecords)
		replay, err := uarch.NewWithSource(cfg, core.NewMGT(templates, params), rd).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(live, replay) {
			t.Errorf("%s: live and replay results diverge (Collapse=%v MemLatency=%d)", cfg.Name, cfg.Collapse, cfg.MemLatency)
		}
	}
}

// TestConcurrentReaders replays one shared trace through 8 concurrent
// pipelines (each with a private cursor) under the race detector and
// checks every result is identical to a sequential run.
func TestConcurrentReaders(t *testing.T) {
	prog, mgt, templates := rewritten(t, "sha")
	const limit = 60_000
	tr, err := trace.Capture(context.Background(), prog, mgt, limit)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.MiniGraph(true)
	cfg.MaxRecords = limit
	want, err := uarch.NewWithSource(cfg, mgt, trace.NewReader(tr, prog, limit)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const readers = 8
	results := make([]*uarch.Result, readers)
	errs := make([]error, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			own := core.NewMGT(templates, core.DefaultExecParams())
			results[i], errs[i] = uarch.NewWithSource(cfg, own, trace.NewReader(tr, prog, limit)).Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Errorf("reader %d diverged from the sequential result", i)
		}
	}
}

// TestCaptureLimitSemantics pins the cut-off contract shared with
// emu.Stream: the emulator is never stepped once limit records exist.
func TestCaptureLimitSemantics(t *testing.T) {
	prog, mgt, _ := rewritten(t, "sha")
	tr, err := trace.Capture(context.Background(), prog, mgt, 500)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 || tr.Halted() || tr.Err() != nil {
		t.Fatalf("limit capture: len=%d halted=%v err=%v", tr.Len(), tr.Halted(), tr.Err())
	}
	// A reader bounded at or below the trace length never observes a
	// fault, even on a truncated trace.
	r := trace.NewReader(tr, prog, 500)
	if r.Err() != nil {
		t.Fatalf("reader err %v, want nil", r.Err())
	}
}

// faultSrc jumps to a PC far outside the program: the live stream and a
// captured trace must surface the identical architectural fault.
const faultSrc = `
        .text
main:   li    r9, 12345
        jmp   (r9)
        halt
`

func TestCaptureFaultParity(t *testing.T) {
	prog := asm.MustAssemble("fault", faultSrc)

	s := emu.NewStream(emu.NewMachine(prog, nil), 16, 0)
	var streamRecs int
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		streamRecs++
	}
	if s.Err() == nil {
		t.Fatal("live stream did not fault")
	}

	tr, err := trace.Capture(context.Background(), prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != int64(streamRecs) {
		t.Fatalf("trace len %d, stream served %d", tr.Len(), streamRecs)
	}
	r := trace.NewReader(tr, prog, 0)
	var replayRecs int
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		replayRecs++
	}
	if replayRecs != streamRecs {
		t.Fatalf("replay served %d records, stream %d", replayRecs, streamRecs)
	}
	if r.Err() == nil || r.Err().Error() != s.Err().Error() {
		t.Fatalf("fault mismatch: stream %q replay %q", s.Err(), r.Err())
	}

	// A reader bounded before the fault never sees it, exactly like a live
	// stream bounded before the fault.
	bounded := trace.NewReader(tr, prog, tr.Len())
	if bounded.Err() != nil {
		t.Fatalf("bounded reader err %v, want nil", bounded.Err())
	}
}

// TestCodecRoundTrip: encode→decode→encode is byte-stable and the decoded
// trace replays identically.
func TestCodecRoundTrip(t *testing.T) {
	prog, mgt, _ := rewritten(t, "adpcm.enc")
	tr, err := trace.Capture(context.Background(), prog, mgt, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := trace.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := trace.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	re, err := trace.Encode(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, blob) {
		t.Fatal("encode→decode→encode not byte-stable")
	}
	if back.Len() != tr.Len() || back.Halted() != tr.Halted() {
		t.Fatalf("metadata changed: len %d→%d halted %v→%v", tr.Len(), back.Len(), tr.Halted(), back.Halted())
	}
	cfg := uarch.MiniGraph(true)
	cfg.MaxRecords = 30_000
	a, err := uarch.NewWithSource(cfg, mgt, trace.NewReader(tr, prog, cfg.MaxRecords)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := uarch.NewWithSource(cfg, mgt, trace.NewReader(back, prog, cfg.MaxRecords)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("decoded trace replays differently")
	}
}

// TestDecodeRejectsDamage: every kind of blob damage reads as an error,
// never as a silently wrong trace.
func TestDecodeRejectsDamage(t *testing.T) {
	prog, mgt, _ := rewritten(t, "sha")
	tr, err := trace.Capture(context.Background(), prog, mgt, 1000)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := trace.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte{}, blob...)
	flipped[len(flipped)-5] ^= 0x40 // a record byte, not the header
	cases := map[string][]byte{
		"empty":       {},
		"magic":       append([]byte{'X'}, blob[1:]...),
		"version":     append(append([]byte{}, blob[:4]...), append([]byte{0xff, 0xff}, blob[6:]...)...),
		"truncated":   blob[:len(blob)/2],
		"trailing":    append(append([]byte{}, blob...), 0),
		"payload-bit": flipped,
	}
	for name, data := range cases {
		if _, err := trace.Decode(data); err == nil {
			t.Errorf("%s: decode accepted damaged blob", name)
		}
	}
}
