package trace_test

import (
	"bytes"
	"context"
	"testing"

	"minigraph/internal/asm"
	"minigraph/internal/trace"
)

// fuzzSeedSrc is a tiny program whose capture exercises every record shape
// the codec carries: ALU ops, loads, stores, conditional branches, calls,
// returns and halt.
const fuzzSeedSrc = `
        .data
buf:    .word 3, 1, 4, 1, 5
out:    .space 8
        .text
main:   li    r1, 5
        lda   r2, buf(zero)
        clr   r3
loop:   ldq   r4, 0(r2)
        addq  r3, r4, r3
        lda   r2, 8(r2)
        subl  r1, 1, r1
        bne   r1, loop
        bsr   ra, leaf
        stq   r3, out(zero)
        halt
leaf:   addq  r3, r3, r3
        ret   (ra)
`

// FuzzTraceCodec: Decode must never panic on arbitrary bytes, must never
// accept trailing garbage, and anything it does accept must re-encode to
// the identical canonical bytes (a decoded trace IS the trace).
func FuzzTraceCodec(f *testing.F) {
	prog := asm.MustAssemble("seed", fuzzSeedSrc)
	tr, err := trace.Capture(context.Background(), prog, nil, 0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(trace.Encode(tr))
	short, err := trace.Capture(context.Background(), prog, nil, 3)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(trace.Encode(short))
	f.Add(trace.Encode(&trace.Trace{}))
	f.Add([]byte{})
	f.Add([]byte("MGTR garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.Decode(data)
		if err != nil {
			return
		}
		re := trace.Encode(tr)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical blob: %d bytes in, %d bytes re-encoded", len(data), len(re))
		}
		back, err := trace.Decode(re)
		if err != nil {
			t.Fatalf("re-encoded blob does not decode: %v", err)
		}
		if back.Len() != tr.Len() || back.Halted() != tr.Halted() {
			t.Fatal("round trip changed trace metadata")
		}
	})
}
