package trace_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"minigraph/internal/asm"
	"minigraph/internal/emu"
	"minigraph/internal/trace"
)

// mustEncode encodes a trace for use as a fuzz seed, failing the harness
// on the (impossible for a resident trace) encode error.
func mustEncode(tb testing.TB, tr *trace.Trace) []byte {
	tb.Helper()
	data, err := trace.Encode(tr)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// fuzzSeedSrc is a tiny program whose capture exercises every record shape
// the codec carries: ALU ops, loads, stores, conditional branches, calls,
// returns and halt.
const fuzzSeedSrc = `
        .data
buf:    .word 3, 1, 4, 1, 5
out:    .space 8
        .text
main:   li    r1, 5
        lda   r2, buf(zero)
        clr   r3
loop:   ldq   r4, 0(r2)
        addq  r3, r4, r3
        lda   r2, 8(r2)
        subl  r1, 1, r1
        bne   r1, loop
        bsr   ra, leaf
        stq   r3, out(zero)
        halt
leaf:   addq  r3, r3, r3
        ret   (ra)
`

// FuzzTraceCodec: Decode must never panic on arbitrary bytes, must never
// accept trailing garbage, and anything it does accept must re-encode to
// the identical canonical bytes (a decoded trace IS the trace).
func FuzzTraceCodec(f *testing.F) {
	prog := asm.MustAssemble("seed", fuzzSeedSrc)
	tr, err := trace.Capture(context.Background(), prog, nil, 0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(mustEncode(f, tr))
	short, err := trace.Capture(context.Background(), prog, nil, 3)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(mustEncode(f, short))
	f.Add(mustEncode(f, &trace.Trace{}))
	f.Add([]byte{})
	f.Add([]byte("MGTR garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.Decode(data)
		if err != nil {
			return
		}
		re, err := trace.Encode(tr)
		if err != nil {
			t.Fatalf("accepted blob does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical blob: %d bytes in, %d bytes re-encoded", len(data), len(re))
		}
		back, err := trace.Decode(re)
		if err != nil {
			t.Fatalf("re-encoded blob does not decode: %v", err)
		}
		if back.Len() != tr.Len() || back.Halted() != tr.Halted() {
			t.Fatal("round trip changed trace metadata")
		}
	})
}

// FuzzReaderRewind drives a solo Reader and a gang cursor (over a tiny
// shared window, so the lag boundary is crossed constantly) through an
// arbitrary schedule of consumes and rewinds and demands byte-identical
// records at every step. Schedule bytes: even op = consume (op/2)%8+1
// records, odd op = rewind op/2 records back (clamped to zero). The seed
// corpus includes the maximum-rewind-depth case — consume the entire
// trace, then rewind all the way to record zero — so unbounded Rewind can
// never silently clamp to a retention window.
func FuzzReaderRewind(f *testing.F) {
	prog := asm.MustAssemble("seed", fuzzSeedSrc)
	tr, err := trace.Capture(context.Background(), prog, nil, 0)
	if err != nil {
		f.Fatal(err)
	}
	full := bytes.Repeat([]byte{0xfe}, int(tr.Len())/8+2) // consume past exhaustion
	f.Add(append(append([]byte{}, full...), 0xff))        // then max-depth rewind to zero
	f.Add([]byte{0x02, 0x03, 0x0e, 0x05, 0xfe})           // mixed short hops
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, sched []byte) {
		rd := trace.NewReader(tr, prog, 0)
		g := trace.NewGangReader(tr, prog, 8)
		cur := g.Cursor(0)
		var a, b emu.Record
		for step, op := range sched {
			if op&1 == 0 {
				for n := int(op>>1)%8 + 1; n > 0; n-- {
					aok, bok := rd.NextInto(&a), cur.NextInto(&b)
					if aok != bok {
						t.Fatalf("op %d: reader ok=%v gang ok=%v", step, aok, bok)
					}
					if !aok {
						break
					}
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("op %d: record mismatch\nreader: %+v\ngang:   %+v", step, a, b)
					}
				}
			} else {
				seq := cur.Cursor() - int64(op>>1)
				if seq < 0 {
					seq = 0
				}
				rd.Rewind(seq)
				cur.Rewind(seq)
			}
		}
		if rd.Exhausted() != cur.Exhausted() {
			t.Fatalf("exhaustion mismatch: reader %v gang %v", rd.Exhausted(), cur.Exhausted())
		}
	})
}

// FuzzChunkCodec: DecodeManifest and DecodeChunk must never panic on
// arbitrary bytes, an accepted manifest must be canonical (re-encodes to
// the identical bytes), and an accepted chunk frame must round-trip its
// payload bit-exactly through both the raw and the compressed encoding.
// These are the frames that cross process and machine boundaries (store
// entries, peer transfers), so they see truly hostile input.
func FuzzChunkCodec(f *testing.F) {
	prog := asm.MustAssemble("seed", fuzzSeedSrc)
	tr, err := trace.CaptureWith(context.Background(), prog, nil, 0,
		trace.CaptureOptions{ChunkRecords: 16})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(trace.EncodeManifest(tr.Manifest()))
	for ci := int64(0); ci < tr.NumChunks(); ci++ {
		raw, err := tr.ChunkPayload(ci)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(trace.EncodeChunk(ci, raw, ci%2 == 1))
	}
	short, err := trace.CaptureWith(context.Background(), prog, nil, 3,
		trace.CaptureOptions{ChunkRecords: 16})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(trace.EncodeManifest(short.Manifest()))
	f.Add([]byte{})
	f.Add([]byte("MGTM garbage"))
	f.Add([]byte("MGTC garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := trace.DecodeManifest(data); err == nil {
			re := trace.EncodeManifest(m)
			if !bytes.Equal(re, data) {
				t.Fatalf("accepted non-canonical manifest: %d bytes in, %d re-encoded", len(data), len(re))
			}
			if _, err := trace.DecodeManifest(re); err != nil {
				t.Fatalf("re-encoded manifest does not decode: %v", err)
			}
		}
		if idx, raw, err := trace.DecodeChunk(data); err == nil {
			if len(raw)%trace.RecordBytes != 0 {
				t.Fatalf("accepted chunk of %d bytes: not whole rows", len(raw))
			}
			for _, compress := range []bool{false, true} {
				re := trace.EncodeChunk(idx, raw, compress)
				idx2, raw2, err := trace.DecodeChunk(re)
				if err != nil {
					t.Fatalf("re-encoded chunk (compress=%v) does not decode: %v", compress, err)
				}
				if idx2 != idx || !bytes.Equal(raw2, raw) {
					t.Fatalf("chunk round trip (compress=%v) changed the payload", compress)
				}
			}
		}
	})
}
