package dise_test

import (
	"math/rand"
	"strings"
	"testing"

	"minigraph/internal/asm"
	"minigraph/internal/core"
	"minigraph/internal/dise"
	"minigraph/internal/emu"
	"minigraph/internal/isa"
	"minigraph/internal/program"
	"minigraph/internal/rewrite"
)

// paperSection is §5's two example productions, verbatim:
// <addl T.RS1,2,T.RD; cmplt T.RD,T.RS2,$d0; bne $d0,0xa> and
// <ldq $d0,16(T.RS2); srl $d0,14,$d0; and $d0,1,T.RD>.
const paperSection = `
.dise 12
  addl  T.RS1, 2, T.RD
  cmplt T.RD, T.RS2, $d0
  bne   $d0, +10
.end
.dise 34
  ldq   $d0, 16(T.RS1)
  srl   $d0, 14, $d0
  and   $d0, 1, T.RD
.end
`

func TestParsePaperProductions(t *testing.T) {
	prs, err := dise.ParseSection(paperSection)
	if err != nil {
		t.Fatal(err)
	}
	if len(prs) != 2 {
		t.Fatalf("got %d productions", len(prs))
	}
	e := dise.NewEngine()
	for _, pr := range prs {
		e.Register(pr)
	}
	for _, id := range []int{12, 34} {
		ent := e.MGTT(id)
		if !ent.Valid || !ent.Approved {
			t.Errorf("MGID %d not approved: %+v", id, ent)
		}
	}
	mgt := e.BuildMGT(core.DefaultExecParams())
	// MGID 12: integer graph, OUT=0, LAT=1 (Figure 2).
	t12 := mgt.Template(12)
	if t12 == nil {
		t.Fatal("MGID 12 missing from MGT")
	}
	if t12.OutIdx != 0 || t12.BranchIdx != 2 || !t12.IsInteger() {
		t.Errorf("MGID 12 shape: out=%d br=%d int=%v", t12.OutIdx, t12.BranchIdx, t12.IsInteger())
	}
	if ei := mgt.Info(12); ei.Lat != 1 || ei.FU0 != core.FUAP {
		t.Errorf("MGID 12 MGHT: lat=%d fu0=%v", ei.Lat, ei.FU0)
	}
	// MGID 34: load-headed graph, OUT=2, LAT=4 (Figure 2).
	t34 := mgt.Template(34)
	if t34.OutIdx != 2 || t34.MemIdx != 0 || t34.NumIn != 1 {
		t.Errorf("MGID 34 shape: out=%d mem=%d in=%d", t34.OutIdx, t34.MemIdx, t34.NumIn)
	}
	if ei := mgt.Info(34); ei.Lat != 4 || ei.FU0 != core.FULoad {
		t.Errorf("MGID 34 MGHT: lat=%d fu0=%v", ei.Lat, ei.FU0)
	}
}

func TestSectionRoundTrip(t *testing.T) {
	prs, err := dise.ParseSection(paperSection)
	if err != nil {
		t.Fatal(err)
	}
	text := dise.FormatSection(prs)
	prs2, err := dise.ParseSection(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if dise.FormatSection(prs2) != text {
		t.Errorf("format/parse not stable:\n%s\nvs\n%s", text, dise.FormatSection(prs2))
	}
}

func TestDecodeKeepsApprovedExpandsOthers(t *testing.T) {
	prs, _ := dise.ParseSection(paperSection)
	e := dise.NewEngine()
	for _, pr := range prs {
		e.Register(pr)
	}
	h := isa.Inst{Op: isa.OpMG, Ra: isa.IntReg(18), Rb: isa.IntReg(5), Rc: isa.IntReg(18), MGID: 12}
	exp, keep, err := e.Decode(&h, 100)
	if err != nil || !keep || exp != nil {
		t.Errorf("approved codeword should be kept: %v %v %v", exp, keep, err)
	}
	e.Disapprove(12)
	exp, keep, err = e.Decode(&h, 100)
	if err != nil || keep {
		t.Fatalf("disapproved codeword should expand: %v %v", keep, err)
	}
	if len(exp) != 3 {
		t.Fatalf("expansion length %d", len(exp))
	}
	// addl r18,2,r18 ; cmplt r18,r5,$d0 ; bne $d0,110
	if exp[0].Op != isa.OpAddl || exp[0].Ra != isa.IntReg(18) || exp[0].Rc != isa.IntReg(18) || !exp[0].UseImm {
		t.Errorf("exp[0] = %v", exp[0])
	}
	if exp[1].Op != isa.OpCmplt || exp[1].Ra != isa.IntReg(18) || exp[1].Rb != isa.IntReg(5) || exp[1].Rc != isa.D0 {
		t.Errorf("exp[1] = %v", exp[1])
	}
	if exp[2].Op != isa.OpBne || exp[2].Ra != isa.D0 || exp[2].Imm != 110 {
		t.Errorf("exp[2] = %v", exp[2])
	}
	// Unknown codeword: error.
	bad := isa.Inst{Op: isa.OpMG, MGID: 999}
	if _, _, err := e.Decode(&bad, 0); err == nil {
		t.Error("unknown codeword should error")
	}
}

func TestMGPPRejectsIllegalProductions(t *testing.T) {
	cases := []string{
		// Two memory operations.
		".dise 1\n ldq $d0, 0(T.RS1)\n ldq $d1, 8(T.RS2)\n addq $d0, $d1, T.RD\n.end",
		// Non-terminal branch.
		".dise 2\n bne T.RS1, +4\n addl T.RS1, 1, T.RD\n.end",
		// $d read before written.
		".dise 3\n addl $d0, 1, T.RD\n addl T.RD, 1, T.RD\n.end",
		// Single instruction (not a graph).
		".dise 4\n addl T.RS1, 1, T.RD\n.end",
	}
	for _, src := range cases {
		prs, err := dise.ParseSection(src)
		if err != nil {
			t.Fatalf("%q: parse: %v", src, err)
		}
		e := dise.NewEngine()
		e.Register(prs[0])
		ent := e.MGTT(prs[0].MGID)
		if !ent.Valid || ent.Approved {
			t.Errorf("production %d should be valid but not approved: %+v", prs[0].MGID, ent)
		}
		if ent.Err == "" {
			t.Errorf("production %d: missing rejection reason", prs[0].MGID)
		}
	}
}

func TestTransparentUtility(t *testing.T) {
	// The paper's toy transparent production: after every addq, clear all
	// but the least significant byte (a stand-in for bounds checking).
	section := `
.dise-op addq
  addq T.RS1, T.RS2, T.RD
  and  T.RD, 255, T.RD
.end
`
	prs, err := dise.ParseSection(section)
	if err != nil {
		t.Fatal(err)
	}
	e := dise.NewEngine()
	e.Register(prs[0])
	src := `
main:   li   r1, 1000
        li   r2, 500
        addq r1, r2, r3
        halt
`
	p := asm.MustAssemble("t", src)
	expanded, _, err := dise.ExpandProgram(p, e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if expanded.Len() != p.Len()+1 {
		t.Errorf("expansion length %d want %d", expanded.Len(), p.Len()+1)
	}
	st, err := emu.RunToCompletion(expanded, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Regs[3] != 1500&255 {
		t.Errorf("r3 = %d want %d", st.Regs[3], 1500&255)
	}
}

// genProgram mirrors the rewriter's random program generator (kept local to
// avoid exporting test helpers across packages).
func genProgram(rng *rand.Rand) string {
	ops := []string{"addl", "subl", "addq", "xor", "and", "bis", "srl", "cmplt", "s8addl"}
	var b strings.Builder
	b.WriteString("        .data\nscratch: .space 512\n        .text\n")
	b.WriteString("main:   li r16, 30\n        lda r28, scratch(zero)\n")
	for r := 2; r <= 9; r++ {
		b.WriteString("        li r" + itoa(r) + ", " + itoa(rng.Intn(900)) + "\n")
	}
	b.WriteString("outer:\n")
	n := 8 + rng.Intn(14)
	for i := 0; i < n; i++ {
		reg := func() string { return "r" + itoa(2+rng.Intn(8)) }
		switch k := rng.Intn(10); {
		case k < 6:
			op := ops[rng.Intn(len(ops))]
			if rng.Intn(2) == 0 {
				b.WriteString("        " + op + " " + reg() + ", " + itoa(rng.Intn(32)) + ", " + reg() + "\n")
			} else {
				b.WriteString("        " + op + " " + reg() + ", " + reg() + ", " + reg() + "\n")
			}
		case k < 8:
			b.WriteString("        ldq " + reg() + ", " + itoa(8*rng.Intn(32)) + "(r28)\n")
		default:
			b.WriteString("        stq " + reg() + ", " + itoa(8*rng.Intn(32)) + "(r28)\n")
		}
	}
	b.WriteString("        subl r16, 1, r16\n        bne r16, outer\n")
	for r := 2; r <= 9; r++ {
		b.WriteString("        stq r" + itoa(r) + ", " + itoa(256+8*r) + "(r28)\n")
	}
	b.WriteString("        halt\n")
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	if neg {
		return "-" + string(d)
	}
	return string(d)
}

// TestExpansionEquivalence is the §5 portability property: a rewritten
// binary whose productions are loaded into a DISE engine, then *expanded*
// instead of executed via the MGT, computes the same result as the original.
func TestExpansionEquivalence(t *testing.T) {
	for seed := 0; seed < 40; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		src := genProgram(rng)
		p := asm.MustAssemble("r", src)
		ref, err := emu.RunToCompletion(p, nil, 2_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		g := program.BuildCFG(p, nil)
		lv := program.ComputeLiveness(g)
		prof, err := emu.ProfileProgram(p, nil, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		sel := core.Extract(g, lv, prof, core.DefaultPolicy(), 512)
		if len(sel.Instances) == 0 {
			continue
		}
		rw, err := rewrite.Rewrite(p, sel, false)
		if err != nil {
			t.Fatal(err)
		}

		prs, err := dise.FromSelection(rw.Templates)
		if err != nil {
			t.Fatalf("seed %d: FromSelection: %v", seed, err)
		}
		// Round-trip through the .dise section text.
		prs2, err := dise.ParseSection(dise.FormatSection(prs))
		if err != nil {
			t.Fatalf("seed %d: section round trip: %v", seed, err)
		}
		e := dise.NewEngine()
		for _, pr := range prs2 {
			e.Register(pr)
			if ent := e.MGTT(pr.MGID); !ent.Approved {
				t.Fatalf("seed %d: extraction-derived production %d rejected: %s", seed, pr.MGID, ent.Err)
			}
		}

		// Path A: execute handles through the engine-built MGT.
		mgt := e.BuildMGT(core.DefaultExecParams())
		gotMGT, err := emu.RunToCompletion(rw.Prog, mgt, 2_000_000)
		if err != nil {
			t.Fatalf("seed %d: MGT run: %v", seed, err)
		}
		if gotMGT.MemSum != ref.MemSum {
			t.Fatalf("seed %d: MGT execution diverged", seed)
		}

		// Path B: disapprove everything and expand statically.
		for _, pr := range prs2 {
			e.Disapprove(pr.MGID)
		}
		expanded, _, err := dise.ExpandProgram(rw.Prog, e, rw.HandleTargets)
		if err != nil {
			t.Fatalf("seed %d: expand: %v", seed, err)
		}
		gotExp, err := emu.RunToCompletion(expanded, nil, 2_000_000)
		if err != nil {
			t.Fatalf("seed %d: expanded run faulted: %v", seed, err)
		}
		if gotExp.MemSum != ref.MemSum {
			t.Fatalf("seed %d: expanded execution diverged\n%s", seed, isa.Disassemble(expanded))
		}
	}
}

func TestProductionFromTemplateRoundTrip(t *testing.T) {
	prs, _ := dise.ParseSection(paperSection)
	e := dise.NewEngine()
	for _, pr := range prs {
		e.Register(pr)
	}
	mgt := e.BuildMGT(core.DefaultExecParams())
	for _, id := range []int{12, 34} {
		tm := mgt.Template(id)
		pr, err := dise.ProductionFromTemplate(id, tm)
		if err != nil {
			t.Fatalf("MGID %d: %v", id, err)
		}
		tm2, err := pr.Compile()
		if err != nil {
			t.Fatalf("MGID %d recompile: %v", id, err)
		}
		if tm.Key() != tm2.Key() {
			t.Errorf("MGID %d: template changed across round trip:\n%s\n%s", id, tm, tm2)
		}
	}
}
