package dise

import (
	"fmt"
	"sort"

	"minigraph/internal/core"
	"minigraph/internal/isa"
)

// MGTTEntry is one mini-graph tag table row (§5): the first valid bit says
// the entry has been pre-processed, the second says the MGPP approved the
// mini-graph and the handle should remain un-expanded.
type MGTTEntry struct {
	Valid    bool
	Approved bool
	Err      string // why the MGPP rejected it (diagnostics)
}

// Engine is the DISE facility: a production store, the MGTT, and the MGPP
// compilation pipeline.
type Engine struct {
	aware       map[int]*Production // MGID -> production (codewords)
	transparent map[isa.Opcode][]*Production
	mgtt        map[int]MGTTEntry
	compiled    map[int]*core.Template

	// Expansions counts decode-time in-line expansions (MGTT misses and
	// transparent rewrites).
	Expansions int64
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{
		aware:       make(map[int]*Production),
		transparent: make(map[isa.Opcode][]*Production),
		mgtt:        make(map[int]MGTTEntry),
		compiled:    make(map[int]*core.Template),
	}
}

// Register installs a production. Aware productions (codewords) are keyed
// by MGID and fed to the MGPP; transparent productions hook an opcode.
func (e *Engine) Register(pr *Production) {
	if pr.isAware() {
		e.aware[pr.MGID] = pr
		// MGPP inspection/compilation (one copy of the expansion goes to
		// the core, a second to the MGPP — here compilation is immediate).
		t, err := pr.Compile()
		if err != nil {
			e.mgtt[pr.MGID] = MGTTEntry{Valid: true, Approved: false, Err: err.Error()}
			return
		}
		e.compiled[pr.MGID] = t
		e.mgtt[pr.MGID] = MGTTEntry{Valid: true, Approved: true}
		return
	}
	e.transparent[pr.Op] = append(e.transparent[pr.Op], pr)
}

// MGTT returns the tag-table entry for an MGID.
func (e *Engine) MGTT(mgid int) MGTTEntry { return e.mgtt[mgid] }

// Disapprove clears an MGID's approved bit, forcing decode-time expansion.
// This models a processor whose MGT cannot hold the template (capacity or
// feature mismatch) while remaining able to execute the binary — the
// portability path of §5.
func (e *Engine) Disapprove(mgid int) {
	if ent, ok := e.mgtt[mgid]; ok {
		ent.Approved = false
		ent.Err = "disapproved"
		e.mgtt[mgid] = ent
	}
}

// Decode processes one fetched instruction the way the DISE stage would:
//
//   - approved codeword: keep the handle (expanded=nil, keep=true);
//   - unapproved or unknown codeword with a production: expand in-line;
//   - unknown codeword without a production: error (unexecutable);
//   - instruction matching a transparent production: expand in-line;
//   - anything else: pass through.
func (e *Engine) Decode(in *isa.Inst, pc isa.PC) (expanded []isa.Inst, keep bool, err error) {
	if in.Op == isa.OpMG {
		if ent, ok := e.mgtt[in.MGID]; ok && ent.Valid && ent.Approved {
			return nil, true, nil
		}
		pr, ok := e.aware[in.MGID]
		if !ok {
			return nil, false, fmt.Errorf("dise: codeword MGID %d has no production", in.MGID)
		}
		e.Expansions++
		return pr.Expand(in, pc), false, nil
	}
	if prs := e.transparent[in.Op]; len(prs) > 0 {
		e.Expansions++
		return prs[0].Expand(in, pc), false, nil
	}
	return nil, true, nil
}

// BuildMGT assembles the MGT image for all approved productions. The slice
// index is the MGID; gaps (rejected or missing MGIDs) are nil and any handle
// naming them must be expanded instead.
func (e *Engine) BuildMGT(params core.ExecParams) *core.MGT {
	max := -1
	for id, ent := range e.mgtt {
		if ent.Approved && id > max {
			max = id
		}
	}
	ts := make([]*core.Template, max+1)
	for id, t := range e.compiled {
		if e.mgtt[id].Approved {
			ts[id] = t
		}
	}
	return core.NewMGT(ts, params)
}

// ApprovedIDs lists approved MGIDs in ascending order.
func (e *Engine) ApprovedIDs() []int {
	var ids []int
	for id, ent := range e.mgtt {
		if ent.Approved {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// ProductionFromTemplate converts an MGT template back into a DISE
// production (the form a binary rewriter would plant in the executable's
// .dise section). The first interface input becomes T.RS1, the second
// T.RS2; the interface output becomes T.RD; interior values map onto $d
// registers with trivial reuse (a mini-graph needs at most two live
// interior values per consumer operand by construction, but to stay safe
// every interior producer gets a fresh $d slot modulo 2, verified for
// conflicts).
func ProductionFromTemplate(mgid int, t *core.Template) (*Production, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	// Assign $d registers to interior defs. A def needs to stay live until
	// its last consumer; with 2 dedicated registers a round-robin works for
	// all templates whose interior values have ≤2 simultaneous live ranges.
	// Verify and reject otherwise.
	slot := make([]int, len(t.Insns))
	for i := range slot {
		slot[i] = -1
	}
	lastUse := make([]int, len(t.Insns))
	for i, ti := range t.Insns {
		for _, o := range []core.Operand{ti.A, ti.B} {
			if o.Kind == core.OpndInt {
				lastUse[o.Idx] = i
			}
		}
	}
	var freeAt [isa.NumDiseRegs]int // $d slot free from this insn index on
	for i := range t.Insns {
		if !producesValue(t, i) || i == t.OutIdx {
			continue // the interface output lives in T.RD, not a $d slot
		}
		assigned := false
		for s := 0; s < isa.NumDiseRegs; s++ {
			if freeAt[s] <= i {
				slot[i] = s
				freeAt[s] = lastUse[i] + 1
				assigned = true
				break
			}
		}
		if !assigned {
			return nil, fmt.Errorf("dise: template needs more than %d live interior values", isa.NumDiseRegs)
		}
	}

	param := func(o core.Operand) Param {
		switch o.Kind {
		case core.OpndExt:
			if o.Idx == 0 {
				return Param{Kind: PTRS1}
			}
			return Param{Kind: PTRS2}
		case core.OpndInt:
			if o.Idx == t.OutIdx {
				// The output insn writes T.RD; consumers read it back.
				return Param{Kind: PTRD}
			}
			return Param{Kind: PDise, Idx: slot[o.Idx]}
		case core.OpndNone:
			return Param{Kind: PReg, Reg: isa.RZero}
		}
		return Param{Kind: PNone}
	}

	pr := &Production{Op: isa.OpMG, MGID: mgid}
	for i, ti := range t.Insns {
		ri := RInsn{Op: ti.Op, Imm: ti.Imm}
		info := ti.Op.Info()
		switch info.Fmt {
		case isa.FmtOperate:
			ri.A = param(ti.A)
			if ti.B.Kind == core.OpndImm {
				ri.UseImm = true
			} else {
				ri.B = param(ti.B)
			}
		case isa.FmtLda:
			ri.B = param(ti.B)
		case isa.FmtMem:
			if info.Class == isa.ClassStore {
				ri.A = param(ti.A)
			}
			ri.B = param(ti.B)
		case isa.FmtBranch:
			ri.A = param(ti.A)
		}
		if producesValue(t, i) {
			if i == t.OutIdx {
				ri.C = Param{Kind: PTRD}
			} else {
				ri.C = Param{Kind: PDise, Idx: slot[i]}
			}
		}
		pr.Replacement = append(pr.Replacement, ri)
	}
	return pr, nil
}

func producesValue(t *core.Template, i int) bool {
	switch t.Insns[i].Op.Info().Class {
	case isa.ClassStore, isa.ClassBranch:
		return false
	}
	return true
}

// FromSelection emits the complete production set for a rewritten binary —
// the contents of its ".dise" section.
func FromSelection(templates []*core.Template) ([]*Production, error) {
	out := make([]*Production, 0, len(templates))
	for mgid, t := range templates {
		pr, err := ProductionFromTemplate(mgid, t)
		if err != nil {
			return nil, fmt.Errorf("dise: MGID %d: %w", mgid, err)
		}
		out = append(out, pr)
	}
	return out, nil
}
