package dise

import (
	"fmt"
	"strconv"
	"strings"

	"minigraph/internal/isa"
)

// The .dise section format is line-oriented:
//
//	.dise 12                      ; aware production for MGID 12
//	  addl  T.RS1, 2, T.RD
//	  cmplt T.RD, T.RS2, $d0
//	  bne   $d0, +2               ; branch displacements are relative
//	.end
//	.dise-op addq                 ; transparent production for an opcode
//	  addq T.RS1, T.RS2, T.RD
//	  and  T.RD, 255, T.RD
//	.end
//
// FormatSection and ParseSection round-trip this representation; the OS (or
// a test harness) loads it into an Engine at program start, exactly as the
// DISE design loads a ".dise" ELF section into the on-chip tables.

// FormatSection renders productions as a .dise section.
func FormatSection(prs []*Production) string {
	var b strings.Builder
	for _, pr := range prs {
		if pr.isAware() {
			fmt.Fprintf(&b, ".dise %d\n", pr.MGID)
		} else {
			fmt.Fprintf(&b, ".dise-op %s\n", pr.Op)
		}
		for _, ri := range pr.Replacement {
			b.WriteString("  ")
			b.WriteString(formatRInsn(&ri))
			b.WriteString("\n")
		}
		b.WriteString(".end\n")
	}
	return b.String()
}

func formatRInsn(ri *RInsn) string {
	info := ri.Op.Info()
	switch info.Fmt {
	case isa.FmtOperate:
		second := ri.B.String()
		if ri.UseImm {
			second = strconv.FormatInt(ri.Imm, 10)
		}
		return fmt.Sprintf("%s %s, %s, %s", ri.Op, ri.A, second, ri.C)
	case isa.FmtLda:
		return fmt.Sprintf("%s %s, %d(%s)", ri.Op, ri.C, ri.Imm, ri.B)
	case isa.FmtMem:
		if info.Class == isa.ClassStore {
			return fmt.Sprintf("%s %s, %d(%s)", ri.Op, ri.A, ri.Imm, ri.B)
		}
		return fmt.Sprintf("%s %s, %d(%s)", ri.Op, ri.C, ri.Imm, ri.B)
	case isa.FmtBranch:
		return fmt.Sprintf("%s %s, %+d", ri.Op, ri.A, ri.Imm)
	}
	return ri.Op.String()
}

// ParseSection parses a .dise section.
func ParseSection(src string) ([]*Production, error) {
	var out []*Production
	var cur *Production
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, ".dise-op"):
			name := strings.TrimSpace(strings.TrimPrefix(line, ".dise-op"))
			op, ok := isa.OpcodeByName(name)
			if !ok {
				return nil, fmt.Errorf("dise: line %d: unknown opcode %q", ln+1, name)
			}
			cur = &Production{Op: op, MGID: -1}
		case strings.HasPrefix(line, ".dise"):
			idStr := strings.TrimSpace(strings.TrimPrefix(line, ".dise"))
			id, err := strconv.Atoi(idStr)
			if err != nil {
				return nil, fmt.Errorf("dise: line %d: bad MGID %q", ln+1, idStr)
			}
			cur = &Production{Op: isa.OpMG, MGID: id}
		case line == ".end":
			if cur == nil {
				return nil, fmt.Errorf("dise: line %d: .end without .dise", ln+1)
			}
			out = append(out, cur)
			cur = nil
		default:
			if cur == nil {
				return nil, fmt.Errorf("dise: line %d: instruction outside production", ln+1)
			}
			ri, err := parseRInsn(line)
			if err != nil {
				return nil, fmt.Errorf("dise: line %d: %w", ln+1, err)
			}
			cur.Replacement = append(cur.Replacement, *ri)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("dise: unterminated production")
	}
	return out, nil
}

func parseParam(tok string) (Param, error) {
	switch tok {
	case "T.RS1":
		return Param{Kind: PTRS1}, nil
	case "T.RS2":
		return Param{Kind: PTRS2}, nil
	case "T.RD":
		return Param{Kind: PTRD}, nil
	case "zero":
		return Param{Kind: PReg, Reg: isa.RZero}, nil
	}
	if strings.HasPrefix(tok, "$d") {
		if n, err := strconv.Atoi(tok[2:]); err == nil && n >= 0 && n < isa.NumDiseRegs {
			return Param{Kind: PDise, Idx: n}, nil
		}
	}
	if strings.HasPrefix(tok, "r") {
		if n, err := strconv.Atoi(tok[1:]); err == nil && n >= 0 && n < 32 {
			return Param{Kind: PReg, Reg: isa.IntReg(n)}, nil
		}
	}
	return Param{}, fmt.Errorf("bad parameter %q", tok)
}

func parseRInsn(line string) (*RInsn, error) {
	var mn, rest string
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mn, rest = line[:i], strings.TrimSpace(line[i+1:])
	} else {
		mn = line
	}
	op, ok := isa.OpcodeByName(mn)
	if !ok {
		return nil, fmt.Errorf("unknown mnemonic %q", mn)
	}
	ops := strings.Split(rest, ",")
	for i := range ops {
		ops[i] = strings.TrimSpace(ops[i])
	}
	ri := &RInsn{Op: op}
	info := op.Info()
	switch info.Fmt {
	case isa.FmtOperate:
		if len(ops) != 3 {
			return nil, fmt.Errorf("%s needs 3 operands", mn)
		}
		a, err := parseParam(ops[0])
		if err != nil {
			return nil, err
		}
		ri.A = a
		if v, err := strconv.ParseInt(ops[1], 0, 64); err == nil {
			ri.UseImm, ri.Imm = true, v
		} else {
			b, err := parseParam(ops[1])
			if err != nil {
				return nil, err
			}
			ri.B = b
		}
		c, err := parseParam(ops[2])
		if err != nil {
			return nil, err
		}
		ri.C = c
	case isa.FmtMem, isa.FmtLda:
		if len(ops) != 2 {
			return nil, fmt.Errorf("%s needs 2 operands", mn)
		}
		first, err := parseParam(ops[0])
		if err != nil {
			return nil, err
		}
		open := strings.Index(ops[1], "(")
		if open < 0 || !strings.HasSuffix(ops[1], ")") {
			return nil, fmt.Errorf("bad memory operand %q", ops[1])
		}
		dispStr := strings.TrimSpace(ops[1][:open])
		if dispStr == "" {
			dispStr = "0"
		}
		disp, err := strconv.ParseInt(dispStr, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad displacement %q", dispStr)
		}
		base, err := parseParam(strings.TrimSpace(ops[1][open+1 : len(ops[1])-1]))
		if err != nil {
			return nil, err
		}
		ri.Imm, ri.B = disp, base
		if info.Fmt == isa.FmtLda || info.Class == isa.ClassLoad {
			ri.C = first
		} else {
			ri.A = first
		}
	case isa.FmtBranch:
		if len(ops) != 2 {
			return nil, fmt.Errorf("%s needs 2 operands", mn)
		}
		a, err := parseParam(ops[0])
		if err != nil {
			return nil, err
		}
		ri.A = a
		d, err := strconv.ParseInt(ops[1], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad displacement %q", ops[1])
		}
		ri.Imm = d
	default:
		return nil, fmt.Errorf("%s not allowed in production", mn)
	}
	return ri, nil
}

// ExpandProgram statically expands every handle that the engine does not
// approve, splicing replacement sequences in-line with full PC remapping —
// the portability path: a binary with mini-graphs runs on any DISE
// processor even when its MGT cannot hold (or does not accept) some
// templates. Approved handles are left in place; their branch displacements
// are template-relative and survive the remap only if retargeted, so the
// returned handleTargets map is rebuilt.
func ExpandProgram(p *isa.Program, e *Engine, handleTargets map[isa.PC]isa.PC) (*isa.Program, map[isa.PC]isa.PC, error) {
	// First pass: compute expansion sizes.
	sizes := make([]int, p.Len())
	for i := range p.Insts {
		sizes[i] = 1
		in := p.At(isa.PC(i))
		exp, keep, err := e.Decode(in, isa.PC(i))
		if err != nil {
			return nil, nil, err
		}
		if !keep {
			sizes[i] = len(exp)
		}
	}
	newIdx := make([]isa.PC, p.Len()+1)
	n := isa.PC(0)
	for i := 0; i < p.Len(); i++ {
		newIdx[i] = n
		n += isa.PC(sizes[i])
	}
	newIdx[p.Len()] = n

	out := &isa.Program{
		Name:        p.Name + "+dise",
		Data:        p.Data,
		Entry:       newIdx[p.Entry],
		Symbols:     make(map[string]isa.PC, len(p.Symbols)),
		DataSymbols: p.DataSymbols,
	}
	for s, pc := range p.Symbols {
		out.Symbols[s] = newIdx[pc]
	}
	newTargets := make(map[isa.PC]isa.PC)
	for i := 0; i < p.Len(); i++ {
		in := *p.At(isa.PC(i))
		exp, keep, _ := e.Decode(&in, isa.PC(i))
		if keep {
			if in.Op.Info().Fmt == isa.FmtBranch {
				in.Imm = int64(newIdx[in.Imm])
			}
			if in.TextRef && in.Imm >= 0 && in.Imm <= int64(p.Len()) {
				in.Imm = int64(newIdx[in.Imm])
			}
			if in.Op == isa.OpMG {
				if t, ok := handleTargets[isa.PC(i)]; ok {
					// The stored displacement is handle-relative; keep the
					// displacement consistent under the new layout by
					// retargeting impossible — approved templates are
					// shared, so expansion-induced layout changes between a
					// handle and its target would corrupt them. Reject.
					oldDisp := int64(t) - int64(i)
					newDisp := int64(newIdx[t]) - int64(newIdx[i])
					if oldDisp != newDisp {
						return nil, nil, fmt.Errorf("dise: expansion between handle %d and its target changes displacement", i)
					}
					newTargets[newIdx[i]] = newIdx[t]
				}
			}
			out.Insts = append(out.Insts, in)
			continue
		}
		for _, x := range exp {
			if x.Op.Info().Fmt == isa.FmtBranch {
				// Expansion resolved the displacement against the original
				// pc; remap the absolute target.
				x.Imm = int64(newIdx[x.Imm])
			}
			out.Insts = append(out.Insts, x)
		}
	}
	return out, newTargets, nil
}
