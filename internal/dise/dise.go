// Package dise implements DISE (Dynamic Instruction Stream Editor, Corliss
// et al., ISCA-30), the programmable decode-stage rewriting engine the paper
// uses to supply application-specific mini-graphs (§5).
//
// A DISE production is a <pattern : replacement sequence> pair. Patterns
// match fetched instructions (by opcode, and for codewords by MGID);
// replacement sequences are parameterised instruction lists whose holes
// (T.RS1, T.RS2, T.RD) fill from the matched instruction and whose interior
// dataflow uses DISE dedicated registers ($d0, $d1).
//
// Mini-graph processing is an *aware* DISE utility: handles are DISE
// codewords (the reserved mg opcode), and the mini-graph preprocessor
// (MGPP) compiles replacement sequences into MGT templates. The mini-graph
// tag table (MGTT) tracks which MGIDs are pre-processed and approved; an
// approved handle stays un-expanded and executes via the MGT, while any
// other matching instruction is expanded in-line — "a processor can always
// expand a mini-graph it doesn't understand".
package dise

import (
	"fmt"

	"minigraph/internal/core"
	"minigraph/internal/isa"
)

// ParamKind identifies a replacement-sequence operand hole.
type ParamKind uint8

// Parameter kinds. Reg is a concrete register; TRS1/TRS2/TRD fill from the
// matched instruction's fields; DiseReg names a dedicated register.
const (
	PNone ParamKind = iota
	PReg
	PTRS1
	PTRS2
	PTRD
	PDise
)

// Param is one operand slot of a replacement instruction.
type Param struct {
	Kind ParamKind
	Reg  isa.Reg // for PReg
	Idx  int     // for PDise: dedicated register index (0 or 1)
}

func (p Param) String() string {
	switch p.Kind {
	case PReg:
		return p.Reg.String()
	case PTRS1:
		return "T.RS1"
	case PTRS2:
		return "T.RS2"
	case PTRD:
		return "T.RD"
	case PDise:
		return fmt.Sprintf("$d%d", p.Idx)
	}
	return "-"
}

// RInsn is one parameterised replacement instruction. Operand roles follow
// isa.Inst (A first source / store data / branch test; B second source /
// base; C destination). UseImm selects the literal form for operate ops.
// For branches, Imm is a displacement relative to the matched instruction.
type RInsn struct {
	Op      isa.Opcode
	A, B, C Param
	Imm     int64
	UseImm  bool
}

// Production is a rewriting rule.
type Production struct {
	// Pattern: the opcode to match; for OpMG codewords MGID selects the
	// specific handle (an aware production). Non-MG opcodes define
	// transparent utilities that redefine naturally occurring instructions.
	Op   isa.Opcode
	MGID int // only meaningful when Op == isa.OpMG

	Replacement []RInsn
}

func (pr *Production) isAware() bool { return pr.Op == isa.OpMG }

// resolve turns a Param into a concrete register given the matched
// instruction.
func (p Param) resolve(matched *isa.Inst) isa.Reg {
	switch p.Kind {
	case PReg:
		return p.Reg
	case PTRS1:
		return matched.Ra
	case PTRS2:
		return matched.Rb
	case PTRD:
		return matched.Rc
	case PDise:
		return isa.DiseReg(p.Idx)
	}
	return isa.RNone
}

// Expand instantiates the replacement sequence for a matched instruction at
// pc. Branch displacements resolve against pc.
func (pr *Production) Expand(matched *isa.Inst, pc isa.PC) []isa.Inst {
	out := make([]isa.Inst, 0, len(pr.Replacement))
	for _, ri := range pr.Replacement {
		in := isa.Inst{Op: ri.Op, Imm: ri.Imm, UseImm: ri.UseImm, MGID: -1}
		info := ri.Op.Info()
		switch info.Fmt {
		case isa.FmtOperate:
			in.Ra = ri.A.resolve(matched)
			if !ri.UseImm {
				in.Rb = ri.B.resolve(matched)
			}
			in.Rc = ri.C.resolve(matched)
		case isa.FmtMem, isa.FmtLda:
			in.Ra = ri.A.resolve(matched)
			if info.Fmt == isa.FmtMem && info.Class == isa.ClassLoad {
				in.Ra = ri.C.resolve(matched) // load destination
			}
			if info.Fmt == isa.FmtLda {
				in.Ra = ri.C.resolve(matched)
			}
			in.Rb = ri.B.resolve(matched)
		case isa.FmtBranch:
			in.Ra = ri.A.resolve(matched)
			in.Imm = int64(pc) + ri.Imm // relative -> absolute
		default:
			in.Ra = ri.A.resolve(matched)
			in.Rb = ri.B.resolve(matched)
			in.Rc = ri.C.resolve(matched)
		}
		out = append(out, in)
	}
	return out
}

// Compile is the MGPP: it translates a production's replacement sequence
// into internal MGT format (a core.Template) and validates it against the
// mini-graph structural constraints. Productions that do not satisfy
// mini-graph criteria return an error; such productions remain usable for
// expansion, they just never earn an MGTT "approved" bit.
func (pr *Production) Compile() (*core.Template, error) {
	n := len(pr.Replacement)
	if n == 0 {
		return nil, fmt.Errorf("dise: empty replacement sequence")
	}
	t := &core.Template{OutIdx: -1, MemIdx: -1, BranchIdx: -1, Insns: make([]core.TemplateInsn, n)}
	// Interface-slot binding is positional and must match Expand exactly:
	// T.RS1 always reads the codeword's first register field (E0) and
	// T.RS2 the second (E1). First-appearance renumbering would make MGT
	// execution and in-line expansion read different handle fields.
	numIn := 0
	ext := func(k ParamKind) (core.Operand, error) {
		idx := 0
		if k == PTRS2 {
			idx = 1
		}
		if idx+1 > numIn {
			numIn = idx + 1
		}
		return core.Operand{Kind: core.OpndExt, Idx: idx}, nil
	}
	// lastDef maps a written slot (T.RD or $dN) to the producing insn index.
	lastDef := map[Param]int{}
	defKey := func(p Param) Param { return Param{Kind: p.Kind, Idx: p.Idx} }

	operand := func(p Param, i int) (core.Operand, error) {
		switch p.Kind {
		case PNone:
			return core.Operand{Kind: core.OpndNone}, nil
		case PReg:
			if p.Reg.IsZero() {
				return core.Operand{Kind: core.OpndNone}, nil
			}
			return core.Operand{}, fmt.Errorf("dise: concrete register %s cannot appear in a mini-graph production", p.Reg)
		case PTRS1, PTRS2:
			return ext(p.Kind)
		case PTRD, PDise:
			d, ok := lastDef[defKey(p)]
			if !ok {
				if p.Kind == PTRD {
					return core.Operand{}, fmt.Errorf("dise: T.RD read before written")
				}
				return core.Operand{}, fmt.Errorf("dise: $d%d read before written", p.Idx)
			}
			_ = i
			return core.Operand{Kind: core.OpndInt, Idx: d}, nil
		}
		return core.Operand{}, fmt.Errorf("dise: bad param")
	}

	for i, ri := range pr.Replacement {
		info := ri.Op.Info()
		ti := core.TemplateInsn{Op: ri.Op, Imm: ri.Imm}
		var err error
		switch info.Fmt {
		case isa.FmtOperate:
			if ti.A, err = operand(ri.A, i); err != nil {
				return nil, err
			}
			if ri.UseImm {
				ti.B = core.Operand{Kind: core.OpndImm}
			} else if ti.B, err = operand(ri.B, i); err != nil {
				return nil, err
			}
		case isa.FmtLda:
			ti.A = core.Operand{Kind: core.OpndNone}
			if ti.B, err = operand(ri.B, i); err != nil {
				return nil, err
			}
		case isa.FmtMem:
			if info.Class == isa.ClassStore {
				if ti.A, err = operand(ri.A, i); err != nil {
					return nil, err
				}
			} else {
				ti.A = core.Operand{Kind: core.OpndNone}
			}
			if ti.B, err = operand(ri.B, i); err != nil {
				return nil, err
			}
			t.MemIdx = i
		case isa.FmtBranch:
			if ti.A, err = operand(ri.A, i); err != nil {
				return nil, err
			}
			ti.B = core.Operand{Kind: core.OpndNone}
			t.BranchIdx = i
		default:
			return nil, fmt.Errorf("dise: %s not permitted in a mini-graph production", ri.Op)
		}
		t.Insns[i] = ti
		// Track definitions.
		switch info.Fmt {
		case isa.FmtOperate, isa.FmtLda:
			if ri.C.Kind == PTRD || ri.C.Kind == PDise {
				lastDef[defKey(ri.C)] = i
			}
		case isa.FmtMem:
			if info.Class == isa.ClassLoad && (ri.C.Kind == PTRD || ri.C.Kind == PDise) {
				lastDef[defKey(ri.C)] = i
			}
		}
	}
	t.NumIn = numIn
	if d, ok := lastDef[Param{Kind: PTRD}]; ok {
		t.OutIdx = d
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
