package sim

import (
	"context"
	"errors"
	"fmt"

	"minigraph/internal/core"
	"minigraph/internal/trace"
	"minigraph/internal/uarch"
)

// Gang replay: every arm of a configuration sweep over one binary consumes
// the byte-identical record stream (the config-free TraceKey guarantees
// it), so instead of walking a private trace.Reader cursor end-to-end per
// arm, RunEach groups a sweep's new jobs by TraceKey and runs each group as
// a *gang* — one goroutine interleaving all of the group's pipelines over a
// shared-decode trace.GangReader. Each packed record is decoded once at the
// gang's frontier; trailing arms are served by a struct copy from the
// decoded ring. The scheduler steps pipelines round-robin in fixed cycle
// quanta and paces leaders so the gang's cursors stay inside the shared
// window; an arm stalled on a long-latency event simply lags (still served
// from the ring) while fast arms proceed.
//
// Gang execution is transparent: arms are registered in the engine's
// single-flight table exactly like Simulate leaders, so concurrent
// Simulate callers and overlapping sweeps share the in-flight results, and
// per-arm store read-before/write-through and error wrapping are identical
// to the solo path. Pipelines are self-contained state machines, so
// interleaving them in cycle chunks cannot change any result — gang
// reports are byte-identical to sequential per-arm execution (enforced by
// TestGangMatchesSequential). Singleton groups fall back to the plain
// Simulate path.
const (
	// gangQuantum is the round-robin step size in cycles. Large enough that
	// a pipeline's working state stays hot for a useful burst, small enough
	// that the gang's trace cursors stay bunched inside the shared window.
	gangQuantum = 256

	// gangLead bounds how far (in trace records) an arm's cursor may run
	// ahead of the gang's slowest non-exhausted cursor before the scheduler
	// skips its turn. The lead plus one quantum's fetch overshoot plus the
	// deepest squash rewind stays well inside trace.DefaultGangWindow, so
	// in steady state every serve is a ring copy.
	gangLead = 2048
)

// gangMember is one arm of a gang: a job index from the sweep, its
// canonical key, and the single-flight call the gang will fulfill.
type gangMember struct {
	idx      int
	key      SimKey
	cfgName  string // display name, for error messages only
	c        *call[*Outcome]
	keyBytes []byte // store key, nil when no store is attached
}

// gang is one group of arms sharing a TraceKey, run by one goroutine.
type gang struct {
	pk   PrepareKey
	arms []*gangMember
}

// gangPlan is the outcome of planning one sweep: the gangs to run, and a
// per-job-index map to the registered call a waiter should block on.
// Indexes absent from byIndex (duplicates, already-cached keys, singleton
// groups) go through the plain Simulate path.
type gangPlan struct {
	byIndex map[int]*call[*Outcome]
	gangs   []*gang
}

// planGangs groups a sweep's jobs by TraceKey and registers single-flight
// entries for every gang arm — synchronously, under the engine lock, so a
// concurrent Simulate for the same key becomes a waiter rather than a
// duplicate runner. Keys already in flight (or cached) and duplicate keys
// within the sweep are left to Simulate; groups with fewer than two new
// keys fall back to the solo path and are counted as such.
//
// When the worker pool is larger than the number of multi-arm groups, each
// group is partitioned into up to workers/groups gangs (each at least two
// arms) so gang execution still saturates the pool; with one worker each
// group forms a single maximal-sharing gang.
func (e *Engine) planGangs(jobs []SimJob) *gangPlan {
	if e.gangOff || e.live || len(jobs) < 2 {
		return nil
	}
	type group struct {
		pk   PrepareKey
		arms []*gangMember
	}
	var order []TraceKey
	groups := make(map[TraceKey]*group)
	seen := make(map[SimKey]bool)

	e.mu.Lock()
	defer e.mu.Unlock()
	for i, job := range jobs {
		if job.Config.Check() != nil {
			continue // impossible machine: Simulate refuses it cleanly
		}
		key := job.Key()
		if seen[key] {
			continue // in-sweep duplicate: waits via Simulate
		}
		if _, inflight := e.sims[key]; inflight {
			continue // already cached or in flight: hits via Simulate
		}
		seen[key] = true
		tk := key.TraceKey()
		g, ok := groups[tk]
		if !ok {
			g = &group{pk: key.Prepare}
			groups[tk] = g
			order = append(order, tk)
		}
		g.arms = append(g.arms, &gangMember{idx: i, key: key, cfgName: job.Config.Name})
	}

	multi := 0
	for _, tk := range order {
		if len(groups[tk].arms) >= 2 {
			multi++
		}
	}
	if multi == 0 {
		for range order {
			e.gangSolo.Add(1)
		}
		return nil
	}
	plan := &gangPlan{byIndex: make(map[int]*call[*Outcome])}
	for _, tk := range order {
		g := groups[tk]
		if len(g.arms) < 2 {
			e.gangSolo.Add(1)
			continue
		}
		for _, m := range g.arms {
			m.c = &call[*Outcome]{done: make(chan struct{})}
			e.sims[m.key] = m.c
			plan.byIndex[m.idx] = m.c
		}
		pieces := e.workers / multi
		if pieces < 1 {
			pieces = 1
		}
		if max := len(g.arms) / 2; pieces > max {
			pieces = max
		}
		for _, arms := range splitArms(g.arms, pieces) {
			plan.gangs = append(plan.gangs, &gang{pk: g.pk, arms: arms})
		}
	}
	return plan
}

// splitArms partitions arms into n contiguous near-equal chunks.
func splitArms(arms []*gangMember, n int) [][]*gangMember {
	if n <= 1 {
		return [][]*gangMember{arms}
	}
	out := make([][]*gangMember, 0, n)
	base, rem := len(arms)/n, len(arms)%n
	for i, off := 0, 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, arms[off:off+size])
		off += size
	}
	return out
}

// fulfill completes one registered gang call with the same semantics as
// singleflight: a context-error result is evicted so a still-live waiter
// can take over, and the done channel is closed exactly once. A chunk-
// unavailable result (a spilled chunk vanished mid-interleave) is evicted
// for the same reason: the waiter retries through Simulate, whose layered
// recovery ends in a store-independent resident replay.
func (e *Engine) fulfill(m *gangMember, out *Outcome, err error) {
	m.c.val, m.c.err = out, err
	if isCtxErr(err) || errors.Is(err, trace.ErrChunkUnavailable) {
		e.mu.Lock()
		if e.sims[m.key] == m.c {
			delete(e.sims, m.key)
		}
		e.mu.Unlock()
	}
	close(m.c.done)
}

// waitGangCall blocks a sweep index on its gang arm's call. If the gang was
// canceled by a context that is not this waiter's (the call evicted, err a
// context error), or an arm lost a spilled chunk mid-interleave, the waiter
// takes over through the plain Simulate path — the same takeover rule
// singleflight applies, and Simulate's own chunk recovery handles the rest.
// The takeover must NOT run the replay inline here: the gang goroutine owns
// a worker slot, while this waiter holds none, so Simulate is free to
// acquire one.
func (e *Engine) waitGangCall(ctx context.Context, c *call[*Outcome], job SimJob) (*Outcome, error) {
	select {
	case <-c.done:
		if (isCtxErr(c.err) || errors.Is(c.err, trace.ErrChunkUnavailable)) && ctx.Err() == nil {
			return e.Simulate(ctx, job)
		}
		return c.val, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// gangArm is one member's live simulation state during the interleave.
type gangArm struct {
	m         *gangMember
	p         *uarch.Pipeline
	cur       *trace.GangCursor
	fulfilled bool
}

// runGang executes one gang: per-arm store pre-check, one shared capture,
// then all remaining arms interleaved on this goroutine over a shared-
// decode GangReader, holding a single worker slot. Every arm's call is
// fulfilled exactly once — with its outcome, its wrapped hard error, or
// the gang's context error (evicted for takeover).
func (e *Engine) runGang(ctx context.Context, g *gang) {
	e.gangsFormed.Add(1)
	e.gangArmsRun.Add(int64(len(g.arms)))
	e.simRuns.Add(int64(len(g.arms)))

	pending := g.arms
	failAll := func(err error) {
		for _, m := range pending {
			e.fulfill(m, nil, err)
		}
	}

	// Store read-before, arm by arm: a disk hit never touches a pipeline,
	// exactly as in Simulate.
	if e.store != nil {
		kept := pending[:0:0]
		for _, m := range pending {
			if kb, err := EncodeSimKey(m.key); err == nil {
				m.keyBytes = kb
				if data, ok := e.store.Get(kb); ok {
					if out, err := DecodeOutcome(data); err == nil {
						e.storeHits.Add(1)
						e.fulfill(m, out, nil)
						continue
					}
				}
				e.storeMisses.Add(1)
			}
			kept = append(kept, m)
		}
		pending = kept
		if len(pending) == 0 {
			return
		}
	}

	pr, err := e.Prepare(ctx, g.pk)
	if err != nil {
		failAll(err)
		return
	}
	ct, err := e.captureTrace(ctx, pending[0].key, pr)
	if err != nil {
		failAll(err)
		return
	}
	// One arm paid for (or found) the capture; every other arm replays an
	// existing trace, exactly as if it had asked captureTrace itself — keep
	// the operator-visible replay-hit counter meaning what it always meant.
	e.traceHits.Add(int64(len(pending) - 1))
	if err := e.acquire(ctx); err != nil {
		failAll(err)
		return
	}
	defer e.release()

	gr := trace.NewGangReaderWindowed(ct.trace, ct.prog, trace.DefaultGangWindow, e.chunkWindow)
	defer func() { e.noteWindow(gr.WindowStats()) }()
	arms := make([]*gangArm, 0, len(pending))
	for _, m := range pending {
		var mgt *core.MGT
		if !m.key.Baseline {
			mgt = core.NewMGT(ct.templates, ExecParams(m.key.Config))
		}
		cur := gr.Cursor(m.key.Config.MaxRecords)
		arms = append(arms, &gangArm{m: m, cur: cur, p: uarch.NewWithSource(m.key.Config, mgt, cur)})
	}

	active := arms
	for len(active) > 0 {
		// Pace against the slowest cursor still consuming records; arms
		// that have exhausted the stream are only draining and neither
		// bound nor obey the lead.
		minCur := int64(-1)
		for _, a := range active {
			if !a.cur.Exhausted() && (minCur < 0 || a.cur.Cursor() < minCur) {
				minCur = a.cur.Cursor()
			}
		}
		next := active[:0]
		for _, a := range active {
			if minCur >= 0 && !a.cur.Exhausted() && a.cur.Cursor() > minCur+gangLead {
				next = append(next, a) // too far ahead: skip this turn
				continue
			}
			done, err := a.p.RunCycles(ctx, gangQuantum)
			switch {
			case err != nil && isCtxErr(err):
				for _, r := range arms {
					if !r.fulfilled {
						e.fulfill(r.m, nil, err)
					}
				}
				return
			case err != nil:
				e.fulfill(a.m, nil, fmt.Errorf("%s @ %s: %w", a.m.key.Prepare.Bench, a.m.cfgName, err))
				a.fulfilled = true
			case done:
				e.finishArm(a, ct)
				a.fulfilled = true
			default:
				next = append(next, a)
			}
		}
		active = next
	}
	e.gangShared.Add(gr.SharedServes())
}

// finishArm finalizes one arm's statistics, writes the outcome through the
// store, and fulfills its call — the tail of Simulate's solo path.
func (e *Engine) finishArm(a *gangArm, ct *capturedTrace) {
	res, err := a.p.Finish()
	if err != nil {
		e.fulfill(a.m, nil, fmt.Errorf("%s @ %s: %w", a.m.key.Prepare.Bench, a.m.cfgName, err))
		return
	}
	e.noteFrontend(res)
	out := &Outcome{Result: res, Selection: ct.sel}
	if a.m.keyBytes != nil {
		if data, err := EncodeOutcome(out); err == nil {
			if e.store.Put(a.m.keyBytes, data) == nil {
				e.storePuts.Add(1)
			}
		}
	}
	e.fulfill(a.m, out, nil)
}
