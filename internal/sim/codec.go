package sim

import (
	"bytes"
	"encoding/json"
	"fmt"

	"minigraph/internal/core"
	"minigraph/internal/uarch"
)

// CodecVersion is the on-the-wire version of the canonical key and outcome
// encodings. Any change to the shape of PrepareKey, SimKey, uarch.Result,
// core.Selection or the envelope below must bump it: persisted entries
// written under an older version then read back as misses instead of
// decoding into garbage.
//
// Version history:
//
//	1: initial encoding.
//	2: uarch.Config grew MemLatency (configurable DRAM latency).
//	3: SimKey canonicalizes Config.StreamWindow to 0 (the live stream now
//	   derives its window from the machine, so the override is not part of
//	   a simulation's identity), and TraceKey joined the key family for
//	   persisted dynamic-trace blobs.
//	4: pluggable front end — bpred.Config grew Kind + TAGE sizing,
//	   uarch.Config grew Prefetcher, uarch.Result grew BTB/RAS and
//	   prefetch counters, and SimKey canonicalizes both front-end axes
//	   per kind (explicit kind, defaults filled, inactive sizing zeroed).
//	5: differential oracle — uarch.Result grew RetiredDigest, and the
//	   trace blob codec moved to v2 (rows carry destVal/storeVal), so
//	   both outcomes and trace blobs persisted under v4 re-read as misses.
//	6: chunked trace substrate — the store entry under a TraceKey became
//	   the trace *manifest* (trace codec v3) with per-chunk payloads in
//	   their own "trace-chunk" entries, so v5 monolithic trace blobs
//	   re-read as misses instead of being re-encoded on read.
const CodecVersion = 6

// envelope is the versioned wrapper around every encoded value. Payload
// stays raw so encode→decode→encode is byte-stable for any payload the
// current version accepts.
type envelope struct {
	V       int             `json:"v"`
	Payload json.RawMessage `json:"p"`
}

func seal(payload any) ([]byte, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	return json.Marshal(envelope{V: CodecVersion, Payload: raw})
}

func open(data []byte, payload any) error {
	var env envelope
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return fmt.Errorf("sim: envelope: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("sim: trailing data after envelope")
	}
	if env.V != CodecVersion {
		return fmt.Errorf("sim: codec version %d, want %d", env.V, CodecVersion)
	}
	pdec := json.NewDecoder(bytes.NewReader(env.Payload))
	pdec.DisallowUnknownFields()
	if err := pdec.Decode(payload); err != nil {
		return fmt.Errorf("sim: payload: %w", err)
	}
	if pdec.More() {
		return fmt.Errorf("sim: trailing data after payload")
	}
	return nil
}

// EncodePrepareKey renders key in the canonical versioned JSON encoding.
// The encoding is deterministic: equal keys encode to equal bytes, so the
// bytes are usable as a content address.
func EncodePrepareKey(key PrepareKey) ([]byte, error) { return seal(key) }

// DecodePrepareKey parses a canonical PrepareKey encoding. It rejects
// version mismatches, unknown fields and trailing garbage.
func DecodePrepareKey(data []byte) (PrepareKey, error) {
	var key PrepareKey
	err := open(data, &key)
	return key, err
}

// EncodeSimKey renders key in the canonical versioned JSON encoding. Equal
// keys encode to equal bytes; the persistent result store uses the bytes as
// the content address of the job's outcome.
func EncodeSimKey(key SimKey) ([]byte, error) { return seal(key) }

// DecodeSimKey parses a canonical SimKey encoding. It rejects version
// mismatches, unknown fields and trailing garbage.
func DecodeSimKey(data []byte) (SimKey, error) {
	var key SimKey
	err := open(data, &key)
	return key, err
}

// traceKeyPayload wraps a TraceKey with an explicit kind marker so a trace
// blob's content address can never collide with a SimKey's, even if the
// two structs ever converge shapewise.
type traceKeyPayload struct {
	Kind string   `json:"kind"`
	Key  TraceKey `json:"key"`
}

// EncodeTraceKey renders key in the canonical versioned JSON encoding.
// Equal keys encode to equal bytes; the persistent store uses the bytes as
// the content address of the captured trace blob. The blob itself uses the
// trace package's binary codec, which carries its own version.
func EncodeTraceKey(key TraceKey) ([]byte, error) {
	return seal(traceKeyPayload{Kind: "trace", Key: key})
}

// DecodeTraceKey parses a canonical TraceKey encoding. It rejects version
// mismatches, unknown fields, wrong kinds and trailing garbage.
func DecodeTraceKey(data []byte) (TraceKey, error) {
	var p traceKeyPayload
	if err := open(data, &p); err != nil {
		return TraceKey{}, err
	}
	if p.Kind != "trace" {
		return TraceKey{}, fmt.Errorf("sim: key kind %q, want \"trace\"", p.Kind)
	}
	return p.Key, nil
}

// traceChunkKeyPayload addresses one chunk of a chunked trace: the parent
// TraceKey plus the chunk index. Its own kind marker keeps chunk entries
// from ever colliding with the manifest entry under the bare TraceKey.
type traceChunkKeyPayload struct {
	Kind  string   `json:"kind"`
	Key   TraceKey `json:"key"`
	Chunk int64    `json:"chunk"`
}

// EncodeTraceChunkKey renders the canonical content address of chunk
// `chunk` of key's trace. The chunk payload stored under it uses the trace
// package's chunk-frame binary codec; the manifest naming every chunk
// lives under EncodeTraceKey(key).
func EncodeTraceChunkKey(key TraceKey, chunk int64) ([]byte, error) {
	if chunk < 0 {
		return nil, fmt.Errorf("sim: negative chunk index %d", chunk)
	}
	return seal(traceChunkKeyPayload{Kind: "trace-chunk", Key: key, Chunk: chunk})
}

// DecodeTraceChunkKey parses a canonical trace-chunk key encoding. It
// rejects version mismatches, unknown fields, wrong kinds, negative
// indices and trailing garbage.
func DecodeTraceChunkKey(data []byte) (TraceKey, int64, error) {
	var p traceChunkKeyPayload
	if err := open(data, &p); err != nil {
		return TraceKey{}, 0, err
	}
	if p.Kind != "trace-chunk" {
		return TraceKey{}, 0, fmt.Errorf("sim: key kind %q, want \"trace-chunk\"", p.Kind)
	}
	if p.Chunk < 0 {
		return TraceKey{}, 0, fmt.Errorf("sim: negative chunk index %d", p.Chunk)
	}
	return p.Key, p.Chunk, nil
}

// outcomePayload is the persisted form of an Outcome.
type outcomePayload struct {
	Result    *uarch.Result   `json:"result"`
	Selection *core.Selection `json:"selection,omitempty"`
}

// EncodeOutcome renders a simulation outcome in the versioned JSON
// encoding used by the persistent result store.
func EncodeOutcome(out *Outcome) ([]byte, error) {
	if out == nil || out.Result == nil {
		return nil, fmt.Errorf("sim: cannot encode empty outcome")
	}
	return seal(outcomePayload{Result: out.Result, Selection: out.Selection})
}

// DecodeOutcome parses an encoded outcome. A decoded outcome always has a
// non-nil Result; Selection is nil for baseline jobs.
func DecodeOutcome(data []byte) (*Outcome, error) {
	var p outcomePayload
	if err := open(data, &p); err != nil {
		return nil, err
	}
	if p.Result == nil {
		return nil, fmt.Errorf("sim: outcome missing result")
	}
	return &Outcome{Result: p.Result, Selection: p.Selection}, nil
}
