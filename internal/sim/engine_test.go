package sim

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"minigraph/internal/core"
	"minigraph/internal/uarch"
	"minigraph/internal/workload"
)

// testBench is a small, fast kernel present in every suite subset.
const testBench = "sha"

func baselineTestJob() SimJob {
	return Baseline(PrepareKey{Bench: testBench, Input: workload.InputTrain}, uarch.Baseline())
}

func mgTestJob(maxSize int) SimJob {
	pol := core.DefaultPolicy()
	pol.MaxSize = maxSize
	return SimJob{
		Prepare: PrepareKey{Bench: testBench, Input: workload.InputTrain},
		Policy:  pol,
		Entries: 512,
		Config:  uarch.MiniGraph(true),
	}
}

// TestSingleFlightDedup submits the same baseline job from many goroutines
// and checks the engine ran it exactly once.
func TestSingleFlightDedup(t *testing.T) {
	e := New(8)
	const submitters = 12
	results := make([]*Outcome, submitters)
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := e.Simulate(context.Background(), baselineTestJob())
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = out
		}(i)
	}
	wg.Wait()
	st := e.Stats()
	if st.SimRuns != 1 {
		t.Errorf("baseline simulated %d times, want 1", st.SimRuns)
	}
	if st.SimHits != submitters-1 {
		t.Errorf("got %d cache hits, want %d", st.SimHits, submitters-1)
	}
	if st.PrepareRuns != 1 {
		t.Errorf("prepared %d times, want 1", st.PrepareRuns)
	}
	for i, out := range results {
		if out == nil || out.Result == nil {
			t.Fatalf("submitter %d got no result", i)
		}
		if out.Result.Cycles != results[0].Result.Cycles {
			t.Errorf("submitter %d saw %d cycles, submitter 0 saw %d", i, out.Result.Cycles, results[0].Result.Cycles)
		}
	}
}

// TestKeyCanonicalization checks that presentation-only and irrelevant job
// fields do not fragment the cache.
func TestKeyCanonicalization(t *testing.T) {
	// Config names are presentation-only.
	a := mgTestJob(4)
	b := mgTestJob(4)
	b.Config.Name = "renamed-but-identical"
	if a.Key() != b.Key() {
		t.Error("jobs differing only in Config.Name got different keys")
	}
	// Baseline jobs ignore the extraction axes entirely.
	p := Baseline(PrepareKey{Bench: testBench, Input: workload.InputTrain}, uarch.Baseline())
	q := p
	q.Policy = core.DefaultPolicy()
	q.Entries = 2048
	q.Compress = true
	if p.Key() != q.Key() {
		t.Error("baseline jobs differing only in extraction axes got different keys")
	}
	// Genuinely different policies must not collide.
	c := mgTestJob(8)
	if a.Key() == c.Key() {
		t.Error("different policies share a key")
	}
	// And the cache sees the canonical identity: a rename is a hit.
	e := New(4)
	if _, err := e.Simulate(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Simulate(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.SimRuns != 1 || st.SimHits != 1 {
		t.Errorf("renamed config: runs=%d hits=%d, want 1/1", st.SimRuns, st.SimHits)
	}
}

// TestContextCancellation cancels a sweep mid-flight and checks both that
// the engine aborts with the context's error and that the cancellation
// does not poison the cache for later submissions.
func TestContextCancellation(t *testing.T) {
	e := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the work can finish
	_, err := e.Run(ctx, []SimJob{baselineTestJob(), mgTestJob(4)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// A fresh context retries cleanly: the canceled attempt must not have
	// cached its error.
	outs, err := e.Run(context.Background(), []SimJob{baselineTestJob(), mgTestJob(4)})
	if err != nil {
		t.Fatalf("post-cancel retry failed: %v", err)
	}
	for i, out := range outs {
		if out == nil || out.Result == nil || out.Result.Cycles == 0 {
			t.Errorf("job %d: empty result after retry", i)
		}
	}
}

// TestWaiterSurvivesLeaderCancellation checks that a caller with a live
// context is not failed by a concurrent caller's cancellation on the same
// key: when the canceled leader's entry is evicted, the live waiter takes
// over and computes the result itself.
func TestWaiterSurvivesLeaderCancellation(t *testing.T) {
	e := New(2)
	job := baselineTestJob()
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := e.Simulate(leaderCtx, job)
		leaderErr <- err
	}()
	// Give the leader time to start computing, join as a waiter, then
	// cancel the leader mid-flight.
	time.Sleep(20 * time.Millisecond)
	waiterErr := make(chan error, 1)
	go func() {
		out, err := e.Simulate(context.Background(), job)
		if err == nil && (out == nil || out.Result == nil) {
			err = errors.New("nil outcome")
		}
		waiterErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancelLeader()
	if err := <-waiterErr; err != nil {
		t.Errorf("live waiter failed after leader cancellation: %v", err)
	}
	<-leaderErr // either canceled or finished first; both are fine
}

// TestDeterministicAcrossWorkerCounts runs the same job set on pools of
// different sizes and requires identical cycle counts.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := []SimJob{baselineTestJob(), mgTestJob(4), mgTestJob(2)}
	var reference []int64
	for _, workers := range []int{1, 8} {
		e := New(workers)
		outs, err := e.Run(context.Background(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		cycles := make([]int64, len(outs))
		for i, out := range outs {
			cycles[i] = out.Result.Cycles
		}
		if reference == nil {
			reference = cycles
			continue
		}
		for i := range cycles {
			if cycles[i] != reference[i] {
				t.Errorf("job %d: %d cycles with %d workers, %d with 1", i, cycles[i], workers, reference[i])
			}
		}
	}
}

// TestRunSurfacesRootCauseErrors checks that a failing job's error is
// reported (not masked by the cancellation it triggers in its siblings).
func TestRunSurfacesRootCauseErrors(t *testing.T) {
	e := New(2)
	bad := baselineTestJob()
	bad.Prepare.Bench = "no-such-benchmark"
	_, err := e.Run(context.Background(), []SimJob{bad, baselineTestJob(), mgTestJob(4)})
	if err == nil {
		t.Fatal("want error for unknown benchmark")
	}
	if !strings.Contains(err.Error(), "no-such-benchmark") {
		t.Errorf("root cause missing from error: %v", err)
	}
	if errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), "no-such-benchmark") {
		t.Errorf("cancellation masked the root cause: %v", err)
	}
}

// TestEachCollectsErrors checks the bounded parallel-for helper joins every
// distinct failure.
func TestEachCollectsErrors(t *testing.T) {
	e := New(4)
	errA := errors.New("failure-a")
	err := e.Each(context.Background(), 3, func(ctx context.Context, i int) error {
		if i == 1 {
			return errA
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("got %v, want failure-a", err)
	}
}

// TestSimulateRefusesImpossibleConfig: a job carrying a degenerate machine
// fails its own simulation with a structured error — job specs arrive over
// HTTP, so this must never panic a worker. Gang planning must likewise
// skip the bad job (Run exercises that path).
func TestSimulateRefusesImpossibleConfig(t *testing.T) {
	eng := New(1)
	bad := baselineTestJob()
	bad.Config.FetchWidth = 0
	if _, err := eng.Simulate(context.Background(), bad); err == nil {
		t.Fatal("zero-width config simulated clean")
	} else if !strings.Contains(err.Error(), "width") {
		t.Fatalf("error %q does not name the bad axis", err)
	}

	// In a sweep the bad arm fails alone with the same structured error.
	good := baselineTestJob()
	bad2 := good
	bad2.Config.ROBSize = -1
	if _, err := eng.Run(context.Background(), []SimJob{good, bad2}); err == nil {
		t.Fatal("sweep with an impossible arm succeeded")
	} else if !strings.Contains(err.Error(), "window capacity") {
		t.Fatalf("sweep error %q does not name the bad axis", err)
	}
}
