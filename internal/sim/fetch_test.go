package sim

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestTraceFetcherAdoptsPeerBlob: an engine whose trace fetcher serves
// another engine's encoded blob replays it without ever capturing, a
// damaged blob is rejected by the CRC frame and falls back to capture,
// and a fetcher with no source is a silent no-op — in every case the
// outcome bytes are identical.
func TestTraceFetcherAdoptsPeerBlob(t *testing.T) {
	ctx := context.Background()
	job := baselineTestJob()
	job.Config.MaxRecords = 3000

	src := New(2)
	ref, err := src.Simulate(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeOutcome(ref)
	if err != nil {
		t.Fatal(err)
	}
	tk := job.Key().TraceKey()
	blob, ok := src.TraceBlob(tk)
	if !ok || len(blob) == 0 {
		t.Fatalf("source engine cannot serve its own trace blob (ok=%v, %d bytes)", ok, len(blob))
	}
	if _, ok := src.TraceBlob(TraceKey{}); ok {
		t.Fatal("blob served for a trace that was never captured")
	}

	var fetched atomic.Int64
	peer := New(2).WithTraceFetcher(func(_ context.Context, key TraceKey) ([]byte, error) {
		fetched.Add(1)
		if key != tk {
			return nil, fmt.Errorf("asked for unexpected key %+v", key)
		}
		return blob, nil
	})
	got, err := peer.Simulate(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := EncodeOutcome(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, want) {
		t.Fatal("outcome replayed from a fetched blob differs from the source engine's")
	}
	if n := fetched.Load(); n != 1 {
		t.Errorf("fetcher called %d times, want 1", n)
	}
	st := peer.Stats()
	if st.TraceCaptures != 0 || st.TracePeerHits != 1 || st.TracePeerRejects != 0 {
		t.Errorf("adopting engine captured anyway: %+v", st)
	}

	// A damaged blob must fail the CRC check and degrade to a re-capture,
	// never to a wrong replay.
	bad := append([]byte(nil), blob...)
	bad[len(bad)-1] ^= 0xff
	damaged := New(2).WithTraceFetcher(func(context.Context, TraceKey) ([]byte, error) {
		return bad, nil
	})
	got, err = damaged.Simulate(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	if gotBytes, err = EncodeOutcome(got); err != nil || !bytes.Equal(gotBytes, want) {
		t.Fatalf("outcome after damaged-blob fallback differs (%v)", err)
	}
	st = damaged.Stats()
	if st.TracePeerRejects != 1 || st.TracePeerHits != 0 || st.TraceCaptures != 1 {
		t.Errorf("damaged blob not rejected into a re-capture: %+v", st)
	}

	// (nil, nil) means "no source": not a hit, not a reject, plain capture.
	none := New(2).WithTraceFetcher(func(context.Context, TraceKey) ([]byte, error) {
		return nil, nil
	})
	if _, err := none.Simulate(ctx, job); err != nil {
		t.Fatal(err)
	}
	st = none.Stats()
	if st.TracePeerHits != 0 || st.TracePeerRejects != 0 || st.TraceCaptures != 1 {
		t.Errorf("sourceless fetcher perturbed counters: %+v", st)
	}
}
