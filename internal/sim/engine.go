package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"minigraph/internal/core"
	"minigraph/internal/emu"
	"minigraph/internal/isa"
	"minigraph/internal/program"
	"minigraph/internal/rewrite"
	"minigraph/internal/store"
	"minigraph/internal/trace"
	"minigraph/internal/uarch"
	"minigraph/internal/workload"
)

// ProfileLimit bounds the dynamic instructions profiled per preparation
// (the experiment harness's historical limit). Profiling outside the
// engine should use the same cap so identical programs select identical
// mini-graphs regardless of which path prepared them.
const ProfileLimit = 4_000_000

// Engine is a concurrent, memoizing simulation job engine. Submissions
// with equal canonical keys are deduplicated single-flight: the first
// submitter runs the job, every concurrent or later submitter receives the
// cached result. Actual compute runs on a worker pool of bounded size;
// waiting on a duplicate never occupies a worker slot.
//
// Simulations are trace-driven: the functional emulation of a program is
// captured once per TraceKey (preparation + extraction axes + record
// limit) into an immutable structure-of-arrays trace, and every machine
// configuration swept over that binary replays the shared trace through
// its own zero-allocation cursor — concurrently, with no locking. With a
// persistent store attached, trace blobs round-trip through disk so cold
// processes replay without ever emulating.
//
// An Engine is safe for concurrent use and is meant to be shared across
// experiments so cross-figure common work (benchmark preparations, the
// shared baseline simulation, captured traces) runs exactly once per
// process.
type Engine struct {
	workers int
	sem     chan struct{}
	store   *store.Store
	live    bool // force live emulation sources (golden-invariance testing)
	gangOff bool // disable gang replay in RunEach (solo-path benchmarking)

	// traceFetch, when set, is consulted for a trace blob that is neither
	// in memory nor in the store before falling back to capturing (see
	// WithTraceFetcher). The serving tier uses it to move blobs between
	// workers when membership changes re-route an arm.
	traceFetch func(ctx context.Context, key TraceKey) ([]byte, error)

	// Chunked-trace policy (see WithTraceChunkRecords and friends).
	// chunkRecords overrides the capture chunk geometry (0: trace package
	// default); chunkWindow bounds each replay reader's resident spilled
	// chunks (0: unbounded — traces stay fully resident in memory, the
	// pre-chunking behavior); traceCompress DEFLATE-compresses chunk
	// payloads persisted to the store.
	chunkRecords  int64
	chunkWindow   int
	traceCompress bool

	mu     sync.Mutex
	preps  map[PrepareKey]*call[*Prepared]
	sims   map[SimKey]*call[*Outcome]
	traces map[TraceKey]*call[*capturedTrace]

	// Captured traces are the one memoization whose values are large (a
	// full-run capture is tens of MB), so unlike outcomes they are LRU-
	// bounded: traceSizes/traceOrder track completed entries and evict the
	// least recently touched beyond traceMaxBytes. Evicting only drops the
	// map reference — in-flight replays hold the immutable trace directly,
	// and a re-request recaptures (or reloads from the store).
	traceMaxBytes int64
	traceResident int64
	traceSizes    map[TraceKey]int64
	traceOrder    []TraceKey // least recently touched first

	prepRuns    atomic.Int64
	prepHits    atomic.Int64
	simRuns     atomic.Int64
	simHits     atomic.Int64
	storeHits   atomic.Int64
	storeMisses atomic.Int64
	storePuts   atomic.Int64

	traceRuns        atomic.Int64
	traceCaptures    atomic.Int64
	traceHits        atomic.Int64
	traceStoreHits   atomic.Int64
	traceBytes       atomic.Int64
	tracePeerHits    atomic.Int64
	tracePeerRejects atomic.Int64

	chunkFaults     atomic.Int64
	chunkEvictions  atomic.Int64
	chunkWindowPeak atomic.Int64 // max over any single reader window
	chunkRecaptures atomic.Int64

	gangsFormed atomic.Int64
	gangArmsRun atomic.Int64
	gangShared  atomic.Int64
	gangSolo    atomic.Int64

	// Front-end counters summed over pipeline simulations executed
	// in-process (store and cache hits do not re-count).
	feCondBranches atomic.Int64
	feCondMispreds atomic.Int64
	feMispredicts  atomic.Int64
	fePrefIssued   atomic.Int64
	fePrefUseful   atomic.Int64
	fePrefLate     atomic.Int64
}

// capturedTrace is one memoized capture: the rewritten binary (or the
// prepared original for baseline jobs), the selection and templates that
// produced it, and the recorded dynamic stream. Everything here is
// immutable after capture and shared by every replaying arm; per-arm state
// (the MGT with its config-specific schedules, the replay cursor) is built
// fresh per simulation.
type capturedTrace struct {
	prog      *isa.Program
	templates []*core.Template
	sel       *core.Selection
	trace     *trace.Trace
}

// Stats is a point-in-time snapshot of the engine's cache counters. Runs
// count jobs computed in-process (cache misses that entered a compute
// function); Hits count submissions served from the in-memory cache
// (including waits on an in-flight duplicate). When a persistent store is
// attached, StoreHits of those SimRuns were answered from disk without
// touching the pipeline — SimRuns−StoreHits is the number of timing
// simulations actually executed.
type Stats struct {
	PrepareRuns int64 `json:"prepare_runs"`
	PrepareHits int64 `json:"prepare_hits"`
	SimRuns     int64 `json:"sim_runs"`
	SimHits     int64 `json:"sim_hits"`
	StoreHits   int64 `json:"store_hits,omitempty"`
	StoreMisses int64 `json:"store_misses,omitempty"`
	StorePuts   int64 `json:"store_puts,omitempty"`

	// Trace-cache counters. TraceCaptures counts functional emulations
	// actually executed in-process; TraceReplayHits counts simulations that
	// replayed a trace another arm had already produced (in-memory hit);
	// TraceStoreHits counts traces loaded from the persistent store instead
	// of emulating. TraceBytes is the cumulative size of captured/loaded
	// trace data. In a multi-arm sweep over one binary, TraceCaptures stays
	// at one while TraceReplayHits grows with the arm count — per-prepare
	// emulation happens exactly once per process.
	TraceCaptures   int64 `json:"trace_captures"`
	TraceReplayHits int64 `json:"trace_replay_hits"`
	TraceStoreHits  int64 `json:"trace_store_hits,omitempty"`
	TraceBytes      int64 `json:"trace_bytes,omitempty"`

	// Chunk-residency counters. TraceChunkFaults counts spilled chunks
	// faulted in through reader windows (and TraceChunkEvictions the
	// window evictions that made room); TraceChunkWindowPeakBytes is the
	// largest resident footprint any single reader window reached;
	// TraceResidentBytes is the chunk payload currently held by the
	// in-memory trace cache (what the LRU budget accounts);
	// TraceChunkRecaptures counts replays that lost a chunk mid-flight
	// (store eviction, vanished peer) and recovered by re-capturing.
	TraceChunkFaults          int64 `json:"trace_chunk_faults,omitempty"`
	TraceChunkEvictions       int64 `json:"trace_chunk_evictions,omitempty"`
	TraceChunkWindowPeakBytes int64 `json:"trace_chunk_window_peak_bytes,omitempty"`
	TraceResidentBytes        int64 `json:"trace_resident_bytes,omitempty"`
	TraceChunkRecaptures      int64 `json:"trace_chunk_recaptures,omitempty"`

	// Peer-transfer counters (see WithTraceFetcher). TracePeerHits counts
	// traces adopted from a peer instead of being captured or re-captured;
	// TracePeerRejects counts fetch attempts that failed or returned a
	// damaged blob (CRC mismatch) and fell back to capturing.
	TracePeerHits    int64 `json:"trace_peer_hits,omitempty"`
	TracePeerRejects int64 `json:"trace_peer_rejects,omitempty"`

	// Gang-replay counters (see internal/sim/gang.go). GangsFormed counts
	// gangs actually run; GangArms the arms those gangs carried (mean gang
	// size = GangArms/GangsFormed); GangSharedRecords the per-record decodes
	// arms skipped by reading the shared ring; GangFallbackSolo the sweep
	// trace-groups that were singletons and took the independent path.
	GangsFormed       int64 `json:"gangs_formed"`
	GangArms          int64 `json:"gang_arms"`
	GangSharedRecords int64 `json:"gang_shared_records"`
	GangFallbackSolo  int64 `json:"gang_fallback_solo"`

	// Front-end counters, summed over the uarch.Results of pipeline
	// simulations executed in-process (store hits and memoized results do
	// not re-count). Prefetch counters stay zero until a job enables a
	// prefetcher.
	CondBranches    int64 `json:"cond_branches"`
	CondMispredicts int64 `json:"cond_mispredicts"`
	Mispredicts     int64 `json:"branch_mispredicts"`
	PrefetchIssued  int64 `json:"prefetch_issued"`
	PrefetchUseful  int64 `json:"prefetch_useful"`
	PrefetchLate    int64 `json:"prefetch_late"`
}

// PipelineSims is the number of timing simulations the engine actually
// executed (in-process cache misses not answered by the persistent store).
func (s Stats) PipelineSims() int64 { return s.SimRuns - s.StoreHits }

// New builds an engine with the given worker-pool size (0 = GOMAXPROCS).
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers:       workers,
		sem:           make(chan struct{}, workers),
		preps:         make(map[PrepareKey]*call[*Prepared]),
		sims:          make(map[SimKey]*call[*Outcome]),
		traces:        make(map[TraceKey]*call[*capturedTrace]),
		traceMaxBytes: DefaultTraceCacheBytes,
		traceSizes:    make(map[TraceKey]int64),
	}
}

// DefaultTraceCacheBytes bounds the in-memory captured-trace cache
// (~10 benchSubset-sized full-run traces). A long-lived service sweeping
// many distinct binaries re-captures (or store-loads) cold traces instead
// of growing without bound.
const DefaultTraceCacheBytes int64 = 256 << 20

// WithTraceCacheBytes overrides the in-memory trace cache budget
// (<= 0 restores the default). Set before submitting jobs; e is returned
// for chaining.
func (e *Engine) WithTraceCacheBytes(n int64) *Engine {
	if n <= 0 {
		n = DefaultTraceCacheBytes
	}
	e.traceMaxBytes = n
	return e
}

// WithTraceChunkRecords overrides the records-per-chunk geometry of
// captures (rounded up to a power of two; <= 0 restores the trace
// package default of ~64Ki rows). Geometry is storage layout only — it
// can never change a replayed record — and exists mainly so tests can
// cross many chunk boundaries cheaply. Set before submitting jobs; e is
// returned for chaining.
func (e *Engine) WithTraceChunkRecords(n int64) *Engine {
	if n < 0 {
		n = 0
	}
	e.chunkRecords = n
	return e
}

// WithTraceChunkWindow bounds each replay reader's resident spilled
// chunks to n (<= 0: unbounded, the fully resident pre-chunking
// behavior). With a store attached and a bounded window, captures spill
// sealed chunks straight to the store and replays fault them back in on
// demand, so a sweep over a trace far larger than RAM runs in
// n × chunk bytes per reader. Reports are byte-identical either way.
// Set before submitting jobs; e is returned for chaining.
func (e *Engine) WithTraceChunkWindow(n int) *Engine {
	if n < 0 {
		n = 0
	}
	e.chunkWindow = n
	return e
}

// WithTraceCompression toggles DEFLATE compression of chunk payloads
// persisted to the store (off by default). The chunk CRC is always of the
// raw rows, so compressed and raw entries verify identically. Set before
// submitting jobs; e is returned for chaining.
func (e *Engine) WithTraceCompression(on bool) *Engine {
	e.traceCompress = on
	return e
}

// noteWindow folds one finished reader's chunk-window activity into the
// engine counters.
func (e *Engine) noteWindow(ws trace.WindowStats) {
	if ws == (trace.WindowStats{}) {
		return
	}
	e.chunkFaults.Add(ws.Faults)
	e.chunkEvictions.Add(ws.Evictions)
	for {
		cur := e.chunkWindowPeak.Load()
		if ws.PeakBytes <= cur || e.chunkWindowPeak.CompareAndSwap(cur, ws.PeakBytes) {
			break
		}
	}
}

// touchTrace marks key's trace as recently used and evicts the least
// recently touched completed traces beyond the byte budget. The entry
// just touched is never evicted, so a working set larger than the budget
// degrades to capture-per-sweep rather than thrashing mid-sweep arms.
func (e *Engine) touchTrace(key TraceKey, size int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.traces[key]; !ok {
		return // evicted or canceled while we were completing
	}
	if _, tracked := e.traceSizes[key]; tracked {
		for i, k := range e.traceOrder {
			if k == key {
				e.traceOrder = append(append(e.traceOrder[:i:i], e.traceOrder[i+1:]...), key)
				break
			}
		}
	} else {
		e.traceSizes[key] = size
		e.traceResident += size
		e.traceOrder = append(e.traceOrder, key)
	}
	for e.traceResident > e.traceMaxBytes && len(e.traceOrder) > 1 {
		victim := e.traceOrder[0]
		e.traceOrder = e.traceOrder[1:]
		e.traceResident -= e.traceSizes[victim]
		delete(e.traceSizes, victim)
		delete(e.traces, victim)
	}
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// WithStore attaches a persistent result store: Simulate consults it
// before computing and writes through after. Attach before submitting jobs
// (the field is not synchronized); e is returned for chaining. A nil store
// detaches.
func (e *Engine) WithStore(s *store.Store) *Engine {
	e.store = s
	return e
}

// Store returns the attached persistent store (nil if none).
func (e *Engine) Store() *store.Store { return e.store }

// WithTraceFetcher installs a hook consulted when a simulation needs a
// trace that is neither memoized in memory nor present in the store: f
// returns the encoded blob (the trace package's CRC-framed binary codec)
// or an error. A (nil, nil) return means "no source available" and is not
// counted. The blob is CRC-checked on arrival — any damage counts as a
// reject and the engine falls back to capturing, never to a wrong replay —
// and an adopted blob is written through to the store. The serving tier
// uses this to fetch blobs from peer workers when membership changes
// re-route an arm. Set before submitting jobs (the field is not
// synchronized); e is returned for chaining.
func (e *Engine) WithTraceFetcher(f func(ctx context.Context, key TraceKey) ([]byte, error)) *Engine {
	e.traceFetch = f
	return e
}

// memoTrace returns the completed in-memory capture for key, if any. A
// capture in flight does not count, so a peer asking mid-capture simply
// falls back to its own sources.
func (e *Engine) memoTrace(key TraceKey) (*trace.Trace, bool) {
	e.mu.Lock()
	c, ok := e.traces[key]
	e.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-c.done:
		if c.err == nil && c.val != nil && c.val.trace != nil {
			return c.val.trace, true
		}
	default: // still capturing
	}
	return nil, false
}

// storedTrace opens key's trace from the attached store: manifest entry
// under the trace key, chunk payloads faulted through chunk entries.
// Nothing is verified beyond the manifest decode — callers stream chunks
// through the returned trace (Encode, ChunkPayload, Materialize), each of
// which CRC-checks what it touches.
func (e *Engine) storedTrace(key TraceKey) (*trace.Trace, bool) {
	if e.store == nil {
		return nil, false
	}
	kb, err := EncodeTraceKey(key)
	if err != nil {
		return nil, false
	}
	data, ok := e.store.Get(kb)
	if !ok {
		return nil, false
	}
	m, err := trace.DecodeManifest(data)
	if err != nil {
		return nil, false
	}
	tr, err := trace.FromManifest(m, &storeChunkIO{e: e, tk: key})
	if err != nil {
		return nil, false
	}
	return tr, true
}

// TraceBlob returns the encoded monolithic blob (trace binary codec) for
// key, assembled from the in-memory trace cache or the attached store's
// manifest + chunk entries. ok is false when the trace is not resident or
// any chunk is missing or damaged — a partial trace must read as a miss,
// never ship as a wrong blob.
func (e *Engine) TraceBlob(key TraceKey) ([]byte, bool) {
	if tr, ok := e.memoTrace(key); ok {
		if data, err := trace.Encode(tr); err == nil {
			return data, true
		}
	}
	if tr, ok := e.storedTrace(key); ok {
		if data, err := trace.Encode(tr); err == nil {
			return data, true
		}
	}
	return nil, false
}

// TraceManifest returns the encoded chunk manifest (trace manifest codec)
// for key from the in-memory trace cache or the attached store. Peers
// fetch the manifest first, then stream the chunks it names.
func (e *Engine) TraceManifest(key TraceKey) ([]byte, bool) {
	if tr, ok := e.memoTrace(key); ok {
		return trace.EncodeManifest(tr.Manifest()), true
	}
	if e.store == nil {
		return nil, false
	}
	kb, err := EncodeTraceKey(key)
	if err != nil {
		return nil, false
	}
	data, ok := e.store.Get(kb)
	if !ok {
		return nil, false
	}
	// Validate before serving: a damaged entry must read as a miss here
	// just as it would on replay.
	if _, err := trace.DecodeManifest(data); err != nil {
		return nil, false
	}
	return data, true
}

// TraceChunk returns the encoded frame (trace chunk codec) of chunk
// `index` of key's trace, from the in-memory trace cache or the attached
// store. A missing or damaged chunk is a miss for that chunk only — the
// peer protocol rejects and re-sources chunks individually.
func (e *Engine) TraceChunk(key TraceKey, index int64) ([]byte, bool) {
	if tr, ok := e.memoTrace(key); ok && index >= 0 && index < tr.NumChunks() {
		if raw, err := tr.ChunkPayload(index); err == nil {
			return trace.EncodeChunk(index, raw, e.traceCompress), true
		}
	}
	if e.store == nil {
		return nil, false
	}
	kb, err := EncodeTraceChunkKey(key, index)
	if err != nil {
		return nil, false
	}
	data, ok := e.store.Get(kb)
	if !ok {
		return nil, false
	}
	if idx, _, err := trace.DecodeChunk(data); err != nil || idx != index {
		return nil, false
	}
	return data, true
}

// storeChunkIO moves one trace's chunks between a Trace and the engine's
// store: it is the ChunkSink captures spill sealed chunks through and the
// ChunkSource replays fault them back in from. Safe for concurrent use
// (the store is; the struct is immutable).
type storeChunkIO struct {
	e  *Engine
	tk TraceKey
}

func (s *storeChunkIO) SealChunk(index, rows int64, data []byte, crc uint32) error {
	kb, err := EncodeTraceChunkKey(s.tk, index)
	if err != nil {
		return err
	}
	if err := s.e.store.Put(kb, trace.EncodeChunk(index, data, s.e.traceCompress)); err != nil {
		return err
	}
	s.e.storePuts.Add(1)
	return nil
}

func (s *storeChunkIO) FetchChunk(index int64) ([]byte, error) {
	kb, err := EncodeTraceChunkKey(s.tk, index)
	if err != nil {
		return nil, err
	}
	data, ok := s.e.store.Get(kb)
	if !ok {
		return nil, fmt.Errorf("sim: trace chunk %d not in store", index)
	}
	idx, raw, err := trace.DecodeChunk(data)
	if err != nil {
		return nil, err
	}
	if idx != index {
		return nil, fmt.Errorf("sim: trace chunk entry %d carries index %d", index, idx)
	}
	return raw, nil
}

// WithGangReplay enables or disables gang replay in Run/RunEach (enabled
// by default): sweep jobs sharing a TraceKey interleave their pipelines
// over one shared-decode trace traversal instead of walking private
// cursors end-to-end (see internal/sim/gang.go). Reports are byte-identical
// either way — disabling exists for solo-path benchmarking and as a
// diagnostic escape hatch. Set before submitting jobs (the field is not
// synchronized); e is returned for chaining.
func (e *Engine) WithGangReplay(on bool) *Engine {
	e.gangOff = !on
	return e
}

// WithLiveStream switches the engine to live, step-by-step functional
// emulation inside every simulation instead of capture-once/replay-many.
// The two modes must produce byte-identical reports — this knob exists so
// the golden-invariance tests can prove it, and as an escape hatch while
// diagnosing a suspected trace bug. Set before submitting jobs (the field
// is not synchronized); e is returned for chaining.
func (e *Engine) WithLiveStream(live bool) *Engine {
	e.live = live
	return e
}

// Stats snapshots the cache counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	resident := e.traceResident
	e.mu.Unlock()
	return Stats{
		PrepareRuns:      e.prepRuns.Load(),
		PrepareHits:      e.prepHits.Load(),
		SimRuns:          e.simRuns.Load(),
		SimHits:          e.simHits.Load(),
		StoreHits:        e.storeHits.Load(),
		StoreMisses:      e.storeMisses.Load(),
		StorePuts:        e.storePuts.Load(),
		TraceCaptures:    e.traceCaptures.Load(),
		TraceReplayHits:  e.traceHits.Load(),
		TraceStoreHits:   e.traceStoreHits.Load(),
		TraceBytes:       e.traceBytes.Load(),
		TracePeerHits:    e.tracePeerHits.Load(),
		TracePeerRejects: e.tracePeerRejects.Load(),

		TraceChunkFaults:          e.chunkFaults.Load(),
		TraceChunkEvictions:       e.chunkEvictions.Load(),
		TraceChunkWindowPeakBytes: e.chunkWindowPeak.Load(),
		TraceResidentBytes:        resident,
		TraceChunkRecaptures:      e.chunkRecaptures.Load(),

		GangsFormed:       e.gangsFormed.Load(),
		GangArms:          e.gangArmsRun.Load(),
		GangSharedRecords: e.gangShared.Load(),
		GangFallbackSolo:  e.gangSolo.Load(),
		CondBranches:      e.feCondBranches.Load(),
		CondMispredicts:   e.feCondMispreds.Load(),
		Mispredicts:       e.feMispredicts.Load(),
		PrefetchIssued:    e.fePrefIssued.Load(),
		PrefetchUseful:    e.fePrefUseful.Load(),
		PrefetchLate:      e.fePrefLate.Load(),
	}
}

// noteFrontend folds one executed simulation's front-end counters into the
// engine totals. Called at the three places an in-process pipeline run
// produces a Result: trace replay, live emulation, and gang arms.
func (e *Engine) noteFrontend(res *uarch.Result) {
	e.feCondBranches.Add(res.CondBranches)
	e.feCondMispreds.Add(res.CondMispredicts)
	e.feMispredicts.Add(res.Mispredicts)
	e.fePrefIssued.Add(res.PrefetchIssued)
	e.fePrefUseful.Add(res.PrefetchUseful)
	e.fePrefLate.Add(res.PrefetchLate)
}

// call is one single-flight computation.
type call[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// acquire takes a worker slot, or fails if ctx is done first.
func (e *Engine) acquire(ctx context.Context) error {
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }

// singleflight runs compute under key in m exactly once. Duplicate callers
// wait for the leader (or their own ctx). A result carrying a context
// error is evicted from the cache, and waiters whose own context is still
// live retry it: one caller's cancellation must not fail an unrelated
// caller that happened to share the key.
func singleflight[K comparable, T any](
	e *Engine, ctx context.Context, m map[K]*call[T], key K,
	runs, hits *atomic.Int64, compute func(context.Context) (T, error),
) (T, error) {
	for {
		e.mu.Lock()
		c, ok := m[key]
		if !ok {
			c = &call[T]{done: make(chan struct{})}
			m[key] = c
			e.mu.Unlock()

			runs.Add(1)
			c.val, c.err = compute(ctx)
			if isCtxErr(c.err) {
				e.mu.Lock()
				delete(m, key)
				e.mu.Unlock()
			}
			close(c.done)
			return c.val, c.err
		}
		e.mu.Unlock()
		hits.Add(1)
		select {
		case <-c.done:
			if isCtxErr(c.err) && ctx.Err() == nil {
				// The leader was canceled by its own context and the entry
				// evicted; this caller is still live, so take over.
				continue
			}
			return c.val, c.err
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Prepare builds (or returns the cached) preparation for key: the
// benchmark's program, CFG, liveness, and basic-block frequency profile.
func (e *Engine) Prepare(ctx context.Context, key PrepareKey) (*Prepared, error) {
	return singleflight(e, ctx, e.preps, key, &e.prepRuns, &e.prepHits,
		func(ctx context.Context) (*Prepared, error) {
			if err := e.acquire(ctx); err != nil {
				return nil, err
			}
			defer e.release()
			b, ok := workload.ByName(key.Bench)
			if !ok {
				return nil, fmt.Errorf("sim: unknown benchmark %q", key.Bench)
			}
			p := b.Build(key.Input)
			g := program.BuildCFG(p, nil)
			lv := program.ComputeLiveness(g)
			prof, err := emu.ProfileProgram(p, nil, ProfileLimit)
			if err != nil {
				return nil, fmt.Errorf("%s: profile: %w", b.Name, err)
			}
			return &Prepared{Bench: b, Prog: p, CFG: g, Live: lv, Prof: prof}, nil
		})
}

// buildProgram materialises the simulated binary for one trace identity:
// the prepared original for baseline jobs, else extraction + rewrite under
// the key's axes. The returned templates and selection are immutable and
// safe to share across concurrently simulating arms.
func buildProgram(pr *Prepared, key TraceKey) (*isa.Program, []*core.Template, *core.Selection, error) {
	if key.Baseline {
		return pr.Prog, nil, nil, nil
	}
	sel := core.Extract(pr.CFG, pr.Live, pr.Prof, key.Policy, key.Entries)
	res, err := rewrite.Rewrite(pr.Prog, sel, key.Compress)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: rewrite: %w", pr.Bench.Name, err)
	}
	return res.Prog, res.Templates, sel, nil
}

// captureTrace returns the memoized capture for key's trace identity,
// emulating at most once per process no matter how many arms ask. With a
// store attached the capture round-trips through disk: a cold process
// loads the persisted blob and never emulates. Like Prepare, the compute
// takes its own worker slot and callers must not hold one.
func (e *Engine) captureTrace(ctx context.Context, key SimKey, pr *Prepared) (*capturedTrace, error) {
	tk := key.TraceKey()
	ct, err := e.captureTraceLocked(ctx, tk, key, pr)
	if err == nil {
		// The LRU accounts what the trace actually holds resident — a
		// spilled trace costs its manifest bookkeeping, not its logical
		// size, so the budget admits many large spilled traces at once.
		e.touchTrace(tk, ct.trace.ResidentBytes())
	}
	return ct, err
}

// evictTrace drops key's completed capture from the in-memory cache so
// the next captureTrace recomputes (or reloads) it — the recovery path
// after a replay lost a chunk mid-flight.
func (e *Engine) evictTrace(key TraceKey) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.traces[key]; ok {
		select {
		case <-c.done:
		default:
			return // in flight: its waiters own it
		}
		delete(e.traces, key)
	}
	if size, ok := e.traceSizes[key]; ok {
		e.traceResident -= size
		delete(e.traceSizes, key)
		for i, k := range e.traceOrder {
			if k == key {
				e.traceOrder = append(e.traceOrder[:i:i], e.traceOrder[i+1:]...)
				break
			}
		}
	}
}

// persistTrace writes tr's resident chunks and then its manifest to the
// store — in that order, so a crash between the two leaves orphan chunks
// (scrub fodder) rather than a manifest naming missing chunks. Chunks
// already spilled are already durable and are skipped. Returns false if
// any write failed, in which case the manifest is not written and the
// store reads as a clean miss.
func (e *Engine) persistTrace(tk TraceKey, keyBytes []byte, tr *trace.Trace) bool {
	io := &storeChunkIO{e: e, tk: tk}
	for ci := int64(0); ci < tr.NumChunks(); ci++ {
		if !tr.ChunkResident(ci) {
			continue
		}
		raw, err := tr.ChunkPayload(ci)
		if err != nil || io.SealChunk(ci, int64(len(raw))/trace.RecordBytes, raw, tr.ChunkCRC(ci)) != nil {
			return false
		}
	}
	if e.store.Put(keyBytes, trace.EncodeManifest(tr.Manifest())) != nil {
		return false
	}
	e.storePuts.Add(1)
	return true
}

func (e *Engine) captureTraceLocked(ctx context.Context, tk TraceKey, key SimKey, pr *Prepared) (*capturedTrace, error) {
	return singleflight(e, ctx, e.traces, tk, &e.traceRuns, &e.traceHits,
		func(ctx context.Context) (*capturedTrace, error) {
			if err := e.acquire(ctx); err != nil {
				return nil, err
			}
			defer e.release()
			prog, templates, sel, err := buildProgram(pr, tk)
			if err != nil {
				return nil, err
			}
			ct := &capturedTrace{prog: prog, templates: templates, sel: sel}
			var keyBytes []byte
			if e.store != nil {
				if kb, err := EncodeTraceKey(tk); err == nil {
					keyBytes = kb
					if tr, ok := e.storedTrace(tk); ok {
						// Verify the whole trace against its manifest before
						// adopting it. Unbounded window: materialize — verify
						// and retain in one pass, the fully resident
						// pre-chunking behavior. Bounded window: stream every
						// chunk through once (constant memory), then leave
						// the trace spilled for windowed replay.
						var verr error
						if e.chunkWindow <= 0 {
							verr = tr.Materialize()
						} else {
							for ci := int64(0); ci < tr.NumChunks() && verr == nil; ci++ {
								_, verr = tr.ChunkPayload(ci)
							}
						}
						if verr == nil {
							e.traceStoreHits.Add(1)
							e.traceBytes.Add(tr.SizeBytes())
							ct.trace = tr
							return ct, nil
						}
						// Incomplete or damaged: drop the manifest so the
						// trace reads as a clean miss everywhere (the chunks
						// it named become scrub fodder) and fall through to
						// re-sourcing it.
						e.store.Delete(keyBytes)
					}
				}
			}
			// Neither memory nor store has the capture; before emulating,
			// try to adopt the blob from a peer. The frame is CRC-checked,
			// so a damaged transfer degrades to a re-capture, never to a
			// wrong replay.
			if e.traceFetch != nil {
				if data, err := e.traceFetch(ctx, tk); err != nil {
					e.tracePeerRejects.Add(1)
				} else if data != nil {
					if tr, err := trace.Decode(data); err == nil {
						e.tracePeerHits.Add(1)
						e.traceBytes.Add(tr.SizeBytes())
						ct.trace = tr
						if keyBytes != nil && e.persistTrace(tk, keyBytes, tr) && e.chunkWindow > 0 {
							// Durable in chunked form: swap the adopted blob
							// for its spilled equivalent so residency stays
							// bounded even right after a transfer.
							if spilled, ok := e.storedTrace(tk); ok {
								ct.trace = spilled
							}
						}
						return ct, nil
					}
					e.tracePeerRejects.Add(1)
				}
			}
			var mgt *core.MGT
			if !tk.Baseline {
				mgt = core.NewMGT(templates, ExecParams(key.Config))
			}
			// The profile's dynamic-instruction count sizes the chunk
			// buffers in one allocation (nop-fill rewriting preserves record
			// counts). With a store and a bounded window, sealed chunks
			// spill to the store as capture proceeds — the capture itself
			// never holds more than one open chunk — and the manifest lands
			// after every chunk is durable.
			opts := trace.CaptureOptions{ChunkRecords: e.chunkRecords, Hint: pr.Prof.DynInsts}
			if keyBytes != nil && e.chunkWindow > 0 {
				opts.Sink = &storeChunkIO{e: e, tk: tk}
			}
			tr, err := trace.CaptureWith(ctx, prog, mgt, tk.Limit, opts)
			if err != nil {
				return nil, err
			}
			e.traceCaptures.Add(1)
			e.traceBytes.Add(tr.SizeBytes())
			if tr.Spilled() {
				tr.BindSource(&storeChunkIO{e: e, tk: tk})
			}
			ct.trace = tr
			if keyBytes != nil {
				e.persistTrace(tk, keyBytes, tr)
			}
			return ct, nil
		})
}

// Simulate runs (or returns the cached result of) one timing simulation.
// The run uses the job's canonical configuration (display name cleared),
// so a cached Outcome is identical no matter which of several
// cosmetically-renamed submissions executed it.
//
// The simulation replays the memoized captured trace for the job's binary
// (see captureTrace); only the first arm over a given rewrite pays for
// functional emulation, and its replaying siblings read the shared
// immutable trace through private cursors. WithLiveStream(true) restores
// step-by-step live emulation — by the golden-invariance rule the results
// are byte-identical either way.
//
// With a persistent store attached (WithStore), an in-memory miss first
// consults the store under the job's canonical key encoding — a hit skips
// preparation and the pipeline entirely — and a computed outcome is
// written through for future processes. Store failures are never job
// failures: a damaged entry is a miss and a failed write-through is
// dropped.
func (e *Engine) Simulate(ctx context.Context, job SimJob) (*Outcome, error) {
	// Refuse an impossible machine up front with a structured error. Job
	// specs arrive over HTTP; a degenerate config must fail its own job,
	// not panic a worker mid-sweep.
	if err := job.Config.Check(); err != nil {
		return nil, fmt.Errorf("sim: job %q: %w", job.Config.Name, err)
	}
	key := job.Key()
	return singleflight(e, ctx, e.sims, key, &e.simRuns, &e.simHits,
		func(ctx context.Context) (*Outcome, error) {
			var keyBytes []byte
			if e.store != nil {
				kb, err := EncodeSimKey(key)
				if err == nil {
					keyBytes = kb
					if data, ok := e.store.Get(keyBytes); ok {
						if out, err := DecodeOutcome(data); err == nil {
							e.storeHits.Add(1)
							return out, nil
						}
					}
					e.storeMisses.Add(1)
				}
			}
			pr, err := e.Prepare(ctx, job.Prepare)
			if err != nil {
				return nil, err
			}

			var res *uarch.Result
			var sel *core.Selection
			if e.live {
				res, sel, err = e.simulateLive(ctx, key, job.Config.Name, pr)
			} else {
				var ct *capturedTrace
				ct, err = e.captureTrace(ctx, key, pr)
				if err == nil {
					res, err = e.replay(ctx, key, job.Config.Name, ct)
					sel = ct.sel
				}
				if errors.Is(err, trace.ErrChunkUnavailable) {
					// A spilled chunk vanished mid-replay (store eviction
					// under pressure, a peer gone away). The trace itself is
					// reproducible — evict the stale handle and re-source
					// it, which re-verifies the store or re-captures.
					e.chunkRecaptures.Add(1)
					e.evictTrace(key.TraceKey())
					ct, err = e.captureTrace(ctx, key, pr)
					if err == nil {
						res, err = e.replay(ctx, key, job.Config.Name, ct)
						sel = ct.sel
					}
				}
				if errors.Is(err, trace.ErrChunkUnavailable) {
					// Still losing chunks after re-sourcing: the store is
					// failing reads, not just missing one entry. Recover
					// without it — the job completes even if every store
					// read fails from here on.
					e.chunkRecaptures.Add(1)
					res, sel, err = e.replayResident(ctx, key, job.Config.Name, pr)
				}
			}
			if err != nil {
				return nil, err
			}
			out := &Outcome{Result: res, Selection: sel}
			if keyBytes != nil {
				if data, err := EncodeOutcome(out); err == nil {
					if e.store.Put(keyBytes, data) == nil {
						e.storePuts.Add(1)
					}
				}
			}
			return out, nil
		})
}

// replay runs one timing simulation over a shared captured trace through a
// private zero-allocation cursor. cfgName is the job's display name (the
// canonical key clears it), used only in error messages.
func (e *Engine) replay(ctx context.Context, key SimKey, cfgName string, ct *capturedTrace) (*uarch.Result, error) {
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	var mgt *core.MGT
	if !key.Baseline {
		mgt = core.NewMGT(ct.templates, ExecParams(key.Config))
	}
	rd := trace.NewReaderWindowed(ct.trace, ct.prog, key.Config.MaxRecords, e.chunkWindow)
	res, err := uarch.NewWithSource(key.Config, mgt, rd).Run(ctx)
	e.noteWindow(rd.WindowStats())
	if err != nil {
		// ErrChunkUnavailable stays unwrappable through the %w so Simulate
		// can recover by re-capturing.
		return nil, fmt.Errorf("%s @ %s: %w", key.Prepare.Bench, cfgName, err)
	}
	e.noteFrontend(res)
	return res, nil
}

// replayResident is the last-resort recovery for replays that keep losing
// spilled chunks: a store whose reads fail persistently, not one that
// merely evicted an entry. It re-derives the trace fully resident — no
// sink, no bound window, no store traffic at all — so this attempt depends
// on nothing but the rewritten binary and always makes progress. The
// resident trace is private to this call and released on return; the
// residency bound yields to guaranteed completion for exactly this job.
func (e *Engine) replayResident(ctx context.Context, key SimKey, cfgName string, pr *Prepared) (*uarch.Result, *core.Selection, error) {
	if err := e.acquire(ctx); err != nil {
		return nil, nil, err
	}
	defer e.release()
	tk := key.TraceKey()
	prog, templates, sel, err := buildProgram(pr, tk)
	if err != nil {
		return nil, nil, err
	}
	var cmgt *core.MGT
	if !tk.Baseline {
		cmgt = core.NewMGT(templates, ExecParams(key.Config))
	}
	tr, err := trace.CaptureWith(ctx, prog, cmgt, tk.Limit, trace.CaptureOptions{ChunkRecords: e.chunkRecords, Hint: pr.Prof.DynInsts})
	if err != nil {
		return nil, nil, err
	}
	e.traceCaptures.Add(1)
	e.traceBytes.Add(tr.SizeBytes())
	var mgt *core.MGT
	if !key.Baseline {
		mgt = core.NewMGT(templates, ExecParams(key.Config))
	}
	rd := trace.NewReader(tr, prog, key.Config.MaxRecords)
	res, err := uarch.NewWithSource(key.Config, mgt, rd).Run(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("%s @ %s: %w", key.Prepare.Bench, cfgName, err)
	}
	e.noteFrontend(res)
	return res, sel, nil
}

// simulateLive runs one timing simulation with live, step-by-step
// functional emulation (the pre-trace execution-driven mode).
func (e *Engine) simulateLive(ctx context.Context, key SimKey, cfgName string, pr *Prepared) (*uarch.Result, *core.Selection, error) {
	if err := e.acquire(ctx); err != nil {
		return nil, nil, err
	}
	defer e.release()
	prog, templates, sel, err := buildProgram(pr, key.TraceKey())
	if err != nil {
		return nil, nil, err
	}
	var mgt *core.MGT
	if !key.Baseline {
		mgt = core.NewMGT(templates, ExecParams(key.Config))
	}
	res, err := uarch.New(key.Config, prog, mgt).Run(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("%s @ %s: %w", key.Prepare.Bench, cfgName, err)
	}
	e.noteFrontend(res)
	return res, sel, nil
}

// Run submits every job, waits for all of them, and returns the outcomes
// index-aligned with jobs. The first hard failure cancels the remaining
// jobs errgroup-style; the returned error joins every distinct failure
// (cancellations triggered by another job's failure are filtered out so
// the root causes are what surfaces).
func (e *Engine) Run(ctx context.Context, jobs []SimJob) ([]*Outcome, error) {
	return e.RunEach(ctx, jobs, nil)
}

// RunEach is Run with a completion hook: onDone(i, out) fires as each job
// finishes successfully, from that job's goroutine (it must be safe for
// concurrent use). Use it to stream progress during long sweeps.
//
// Jobs sharing a TraceKey are (unless WithGangReplay(false)) executed as
// gangs: their pipelines interleave over one shared-decode traversal of
// the common trace, producing outcomes byte-identical to independent
// execution while paying the record-decode cost once per gang (see
// internal/sim/gang.go). Singleton groups, duplicates, and already-cached
// keys take the plain Simulate path.
func (e *Engine) RunEach(ctx context.Context, jobs []SimJob, onDone func(i int, out *Outcome)) ([]*Outcome, error) {
	outs := make([]*Outcome, len(jobs))
	errs := make([]error, len(jobs))
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	plan := e.planGangs(jobs)
	var wg sync.WaitGroup
	if plan != nil {
		for _, g := range plan.gangs {
			wg.Add(1)
			go func(g *gang) {
				defer wg.Done()
				e.runGang(gctx, g)
			}(g)
		}
	}
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job SimJob) {
			defer wg.Done()
			if plan != nil {
				if c, ok := plan.byIndex[i]; ok {
					outs[i], errs[i] = e.waitGangCall(gctx, c, job)
					if errs[i] != nil {
						cancel()
					} else if onDone != nil {
						onDone(i, outs[i])
					}
					return
				}
			}
			outs[i], errs[i] = e.Simulate(gctx, job)
			if errs[i] != nil {
				cancel()
			} else if onDone != nil {
				onDone(i, outs[i])
			}
		}(i, job)
	}
	wg.Wait()
	return outs, JoinErrors(ctx, errs)
}

// Each runs fn(0..n-1) with the engine's concurrency bound and the same
// error semantics as Run. It bounds parallelism with its own limiter (not
// the worker pool) so fn may itself submit engine jobs without risking a
// pool deadlock.
func (e *Engine) Each(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	errs := make([]error, n)
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	limit := make(chan struct{}, e.workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case limit <- struct{}{}:
				defer func() { <-limit }()
			case <-gctx.Done():
				errs[i] = gctx.Err()
				return
			}
			if err := fn(gctx, i); err != nil {
				errs[i] = err
				cancel()
			}
		}(i)
	}
	wg.Wait()
	return JoinErrors(ctx, errs)
}

// JoinErrors joins every failure from a fan-out, dropping cancellations
// that were induced by a sibling's failure. If the parent ctx itself was
// canceled (or every error is a cancellation), the cancellation is
// reported as-is. Exported so sibling fan-out layers (the serving tier's
// coordinator) report sweep failures with the same semantics as Run.
func JoinErrors(ctx context.Context, errs []error) error {
	var hard []error
	var canceled error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			canceled = err
		default:
			hard = append(hard, err)
		}
	}
	if len(hard) > 0 {
		return errors.Join(hard...)
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return canceled
}
