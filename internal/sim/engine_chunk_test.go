package sim

import (
	"bytes"
	"context"
	"testing"

	"minigraph/internal/store"
	"minigraph/internal/trace"
)

// Tiny chunk geometry for tests: 3000-record captures split into 12
// chunks, of which at most 2 are resident per replay cursor — the trace
// is ~6x larger than the residency cap, so replay must stream.
const (
	testChunkRecords = 256
	testChunkWindow  = 2
)

func chunkedEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	return New(2).WithStore(openStore(t, dir)).
		WithTraceChunkRecords(testChunkRecords).
		WithTraceChunkWindow(testChunkWindow)
}

// TestBoundedMemorySweep is the larger-than-RAM acceptance test: a sweep
// whose traces exceed the resident chunk cap completes byte-identical to
// the unbounded fully-resident run, and the peak resident window bytes
// never exceed window x chunk bytes.
func TestBoundedMemorySweep(t *testing.T) {
	ctx := context.Background()
	jobs := storeJobs()

	// Unbounded reference: memo-only engine, traces fully resident.
	refOuts, err := New(2).Run(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}

	eng := chunkedEngine(t, t.TempDir())
	outs, err := eng.Run(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		a, err1 := EncodeOutcome(refOuts[i])
		b, err2 := EncodeOutcome(outs[i])
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("job %d: bounded-window outcome diverged from unbounded run", i)
		}
	}

	st := eng.Stats()
	if st.TraceChunkFaults == 0 {
		t.Fatal("no chunk faults: replay never streamed, the bound was not exercised")
	}
	if st.TraceChunkEvictions == 0 {
		t.Error("no chunk evictions although traces exceed the window")
	}
	capBytes := int64(testChunkWindow) * testChunkRecords * trace.RecordBytes
	if st.TraceChunkWindowPeakBytes == 0 || st.TraceChunkWindowPeakBytes > capBytes {
		t.Errorf("peak resident window bytes %d, want in (0, %d]", st.TraceChunkWindowPeakBytes, capBytes)
	}
}

// warmChunked captures one job's trace in chunked form into dir and
// returns the trace key plus its manifest as persisted.
func warmChunked(t *testing.T, dir string, job SimJob) (TraceKey, trace.Manifest) {
	t.Helper()
	ctx := context.Background()
	eng := chunkedEngine(t, dir)
	if _, err := eng.Simulate(ctx, job); err != nil {
		t.Fatal(err)
	}
	tk := job.Key().TraceKey()
	kb, err := EncodeTraceKey(tk)
	if err != nil {
		t.Fatal(err)
	}
	st := openStore(t, dir)
	data, ok := st.Get(kb)
	if !ok {
		t.Fatal("warm run persisted no manifest")
	}
	m, err := trace.DecodeManifest(data)
	if err != nil {
		t.Fatalf("persisted manifest does not decode: %v", err)
	}
	if len(m.Chunks) < 4 {
		t.Fatalf("trace persisted in %d chunks; the crash scenarios need several", len(m.Chunks))
	}
	return tk, m
}

// TestChunkCrashConsistency plants both halves of a crash-torn chunked
// trace — a manifest whose chunk is gone, and chunks whose manifest is
// gone — and checks each reads as a clean miss: a scrub deletes exactly
// the debris, and an engine (scrubbed or not) recomputes byte-identical
// results rather than replaying partial state.
func TestChunkCrashConsistency(t *testing.T) {
	ctx := context.Background()
	base := storeJobs()[1] // minigraph arm; its trace persists chunked
	arm := base
	arm.Config.MemLatency += 40 // same TraceKey, distinct outcome key

	refOut, err := New(2).Simulate(ctx, arm)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeOutcome(refOut)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		// tear removes part of the chunked trace and returns the orphan
		// chunks and invalidated manifests a scrub must then report.
		tear func(t *testing.T, st *store.Store, tk TraceKey, chunks int) (orphans, manifests int)
	}{
		{
			name: "manifest-without-all-chunks",
			tear: func(t *testing.T, st *store.Store, tk TraceKey, chunks int) (int, int) {
				kb, err := EncodeTraceChunkKey(tk, 0)
				if err != nil {
					t.Fatal(err)
				}
				st.Delete(kb)
				// The manifest is invalidated; its surviving chunks become
				// orphans in the same pass.
				return chunks - 1, 1
			},
		},
		{
			name: "chunks-without-manifest",
			tear: func(t *testing.T, st *store.Store, tk TraceKey, chunks int) (int, int) {
				kb, err := EncodeTraceKey(tk)
				if err != nil {
					t.Fatal(err)
				}
				st.Delete(kb)
				return chunks, 0
			},
		},
	}
	for _, tc := range cases {
		for _, scrubbed := range []bool{true, false} {
			name := tc.name + "/unscrubbed"
			if scrubbed {
				name = tc.name + "/scrubbed"
			}
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				tk, m := warmChunked(t, dir, base)

				st := openStore(t, dir)
				wantOrphans, wantManifests := tc.tear(t, st, tk, len(m.Chunks))
				if scrubbed {
					rep := ScrubStore(st)
					if rep.OrphanChunks != wantOrphans || rep.ManifestsInvalidated != wantManifests {
						t.Fatalf("scrub deleted %d orphan chunks and %d manifests, want %d and %d (%+v)",
							rep.OrphanChunks, rep.ManifestsInvalidated, wantOrphans, wantManifests, rep)
					}
					// A second pass finds nothing left to clean.
					if rep2 := ScrubStore(st); rep2.OrphanChunks+rep2.ManifestsInvalidated+rep2.Corrupt != 0 {
						t.Fatalf("scrub is not idempotent: %+v", rep2)
					}
				}

				cold := chunkedEngine(t, dir)
				out, err := cold.Simulate(ctx, arm)
				if err != nil {
					t.Fatal(err)
				}
				got, err := EncodeOutcome(out)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Error("torn chunked trace changed the outcome")
				}
				cs := cold.Stats()
				if cs.TraceStoreHits != 0 {
					t.Errorf("torn trace was adopted from the store: %+v", cs)
				}
				if cs.TraceCaptures != 1 {
					t.Errorf("expected exactly one re-capture, got %d", cs.TraceCaptures)
				}
			})
		}
	}
}

// TestChunkWriteFaultsReportInvariant is the chunk-level counterpart of
// TestEngineStoreFaultsReportInvariant: with capture spilling every sealed
// chunk through a fault-injecting store — so individual chunk writes are
// torn, flipped, and truncated mid-stream — repeated bounded-window runs
// stay byte-identical to the fault-free reference, and a chunk-aware scrub
// leaves a store a clean engine reproduces the same bytes from.
func TestChunkWriteFaultsReportInvariant(t *testing.T) {
	ctx := context.Background()
	jobs := storeJobs()

	ref := New(2)
	refOuts, err := ref.Run(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, len(jobs))
	for i, out := range refOuts {
		if want[i], err = EncodeOutcome(out); err != nil {
			t.Fatal(err)
		}
	}

	fi := store.NewFaultInjector(store.FaultConfig{
		TornWrite: 0.3, BitFlip: 0.3, Truncate: 0.2,
		WriteErr: 0.2, ReadErr: 0.2, Seed: 7,
	})
	dir := t.TempDir()
	for run := 0; run < 3; run++ {
		st, err := store.Open(dir, store.Options{MaxBytes: -1, Faults: fi})
		if err != nil {
			t.Fatal(err)
		}
		eng := New(2).WithStore(st).
			WithTraceChunkRecords(testChunkRecords).
			WithTraceChunkWindow(testChunkWindow)
		outs, err := eng.Run(ctx, jobs)
		if err != nil {
			t.Fatalf("run %d under chunk faults failed: %v", run, err)
		}
		for i, out := range outs {
			got, err := EncodeOutcome(out)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want[i]) {
				t.Errorf("run %d job %d: chunk-fault run diverged from reference", run, i)
			}
		}
	}
	if fi.Counters().Total() == 0 {
		t.Fatal("fault mix injected nothing; chunk writes were never torn")
	}

	st, err := store.Open(dir, store.Options{MaxBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	rep := ScrubStore(st)
	if rep.Errors != 0 {
		t.Errorf("scrub errors: %+v", rep)
	}
	clean := New(2).WithStore(st).
		WithTraceChunkRecords(testChunkRecords).
		WithTraceChunkWindow(testChunkWindow)
	outs, err := clean.Run(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		got, err := EncodeOutcome(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Errorf("post-scrub job %d: report diverged", i)
		}
	}
}
