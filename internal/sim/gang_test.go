package sim

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"minigraph/internal/core"
	"minigraph/internal/uarch"
	"minigraph/internal/workload"
)

// gangSweepJobs is a multi-bench, multi-config sweep: every bench
// contributes one TraceKey group whose arms differ in machine config only
// (memory latency and collapsing), the configuration-sweep shape gang
// replay exists for. maxRecords keeps the arms fast.
func gangSweepJobs(maxRecords int64, benches ...string) []SimJob {
	var jobs []SimJob
	for _, bench := range benches {
		for _, ml := range []int{0, 140, 160} {
			cfg := uarch.MiniGraph(true)
			cfg.MemLatency = ml
			cfg.MaxRecords = maxRecords
			jobs = append(jobs, SimJob{
				Prepare: PrepareKey{Bench: bench, Input: workload.InputTrain},
				Policy:  core.DefaultPolicy(),
				Entries: 512,
				Config:  cfg,
			})
		}
		collapse := uarch.MiniGraph(true)
		collapse.Collapse = true
		collapse.MaxRecords = maxRecords
		jobs = append(jobs, SimJob{
			Prepare: PrepareKey{Bench: bench, Input: workload.InputTrain},
			Policy:  core.DefaultPolicy(),
			Entries: 512,
			Config:  collapse,
		})
	}
	return jobs
}

// TestGangMatchesSequential is the gang acceptance test: a multi-bench,
// multi-config sweep executed as gangs must produce outcomes byte-identical
// (canonical EncodeOutcome bytes) to the same sweep executed arm-by-arm
// with gang replay disabled — while a duplicate submission on one arm's
// key is canceled mid-sweep, which must perturb nothing.
func TestGangMatchesSequential(t *testing.T) {
	jobs := gangSweepJobs(60_000, "sha", "adpcm.enc")

	solo := New(1).WithGangReplay(false)
	wantOuts, err := solo.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, len(jobs))
	for i, out := range wantOuts {
		if want[i], err = EncodeOutcome(out); err != nil {
			t.Fatal(err)
		}
	}
	if st := solo.Stats(); st.GangsFormed != 0 || st.GangArms != 0 {
		t.Fatalf("WithGangReplay(false) engine formed gangs: %+v", st)
	}

	gang := New(1)
	// Mid-sweep per-arm cancellation: a concurrent duplicate Simulate on
	// one arm's key joins the in-flight gang call as a waiter and is then
	// canceled while the gang runs. Its cancellation must neither fail the
	// gang nor change any arm's bytes.
	dupCtx, cancelDup := context.WithCancel(context.Background())
	dupErr := make(chan error, 1)
	var dupOnce sync.Once
	gotOuts, err := gang.RunEach(context.Background(), jobs, func(i int, out *Outcome) {
		dupOnce.Do(func() {
			go func() {
				_, err := gang.Simulate(dupCtx, jobs[len(jobs)-1])
				dupErr <- err
			}()
			time.Sleep(5 * time.Millisecond)
			cancelDup()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if derr := <-dupErr; derr != nil && !errors.Is(derr, context.Canceled) {
		t.Fatalf("canceled duplicate got a non-cancellation error: %v", derr)
	}

	for i, out := range gotOuts {
		got, err := EncodeOutcome(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Errorf("arm %d (%s @ mem%d): gang outcome differs from sequential",
				i, jobs[i].Prepare.Bench, jobs[i].Config.MemLatency)
		}
	}

	st := gang.Stats()
	if st.GangsFormed != 2 {
		t.Errorf("gangs formed %d, want 2 (one per bench)", st.GangsFormed)
	}
	if st.GangArms != int64(len(jobs)) {
		t.Errorf("gang arms %d, want %d", st.GangArms, len(jobs))
	}
	if st.GangSharedRecords == 0 {
		t.Error("gang sweep never served a record from the shared ring")
	}
	if st.SimRuns != int64(len(jobs)) {
		t.Errorf("sim runs %d, want %d", st.SimRuns, len(jobs))
	}
	if st.TraceCaptures != 2 || st.TraceReplayHits != int64(len(jobs))-2 {
		t.Errorf("captures=%d replayHits=%d, want 2/%d", st.TraceCaptures, st.TraceReplayHits, len(jobs)-2)
	}
}

// TestGangMaxSizeSharedTrace runs a maximum-size gang — every arm of one
// TraceKey group, one worker, so the planner forms a single gang over one
// shared trace — and checks every arm against an independently computed
// solo outcome. CI's race job runs this under -race: the single-goroutine
// gang interleave and the shared-decode ring must be data-race-free
// against the engine's concurrent waiters.
func TestGangMaxSizeSharedTrace(t *testing.T) {
	var jobs []SimJob
	for _, ml := range []int{0, 110, 120, 130, 140, 150, 160, 170} {
		cfg := uarch.MiniGraph(true)
		cfg.MemLatency = ml
		cfg.MaxRecords = 60_000
		jobs = append(jobs, SimJob{
			Prepare: PrepareKey{Bench: testBench, Input: workload.InputTrain},
			Policy:  core.DefaultPolicy(),
			Entries: 512,
			Config:  cfg,
		})
	}
	e := New(1)
	outs, err := e.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.GangsFormed != 1 || st.GangArms != int64(len(jobs)) {
		t.Fatalf("one max-size gang expected: formed=%d arms=%d", st.GangsFormed, st.GangArms)
	}
	if st.GangFallbackSolo != 0 {
		t.Errorf("fallback-to-solo %d, want 0", st.GangFallbackSolo)
	}

	solo := New(1).WithGangReplay(false)
	for i, job := range jobs {
		ref, err := solo.Simulate(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := EncodeOutcome(outs[i])
		b, _ := EncodeOutcome(ref)
		if !bytes.Equal(a, b) {
			t.Errorf("arm %d (mem%d): gang outcome differs from solo", i, job.Config.MemLatency)
		}
	}
}

// TestGangSingletonFallback: a sweep whose trace groups are all singletons
// must take the independent Simulate path and count the fallbacks.
func TestGangSingletonFallback(t *testing.T) {
	jobs := []SimJob{baselineTestJob(), mgTestJob(4), mgTestJob(2)}
	e := New(2)
	outs, err := e.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out == nil || out.Result == nil {
			t.Fatalf("arm %d: no result", i)
		}
	}
	st := e.Stats()
	if st.GangsFormed != 0 || st.GangArms != 0 {
		t.Errorf("singleton sweep formed gangs: %+v", st)
	}
	if st.GangFallbackSolo != int64(len(jobs)) {
		t.Errorf("fallback-to-solo %d, want %d", st.GangFallbackSolo, len(jobs))
	}
}

// TestGangSplitArms pins the worker-partitioning rule: contiguous,
// near-equal chunks covering every arm exactly once.
func TestGangSplitArms(t *testing.T) {
	arms := make([]*gangMember, 7)
	for i := range arms {
		arms[i] = &gangMember{idx: i}
	}
	chunks := splitArms(arms, 3)
	if len(chunks) != 3 {
		t.Fatalf("chunks %d, want 3", len(chunks))
	}
	next := 0
	for _, c := range chunks {
		if len(c) < 2 {
			t.Errorf("chunk of %d arms; want >= 2", len(c))
		}
		for _, m := range c {
			if m.idx != next {
				t.Fatalf("non-contiguous partition: got idx %d, want %d", m.idx, next)
			}
			next++
		}
	}
	if next != len(arms) {
		t.Fatalf("partition covered %d arms, want %d", next, len(arms))
	}
}
