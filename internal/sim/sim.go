// Package sim is the shared simulation job engine behind the experiment
// harness, the CLIs, and the public facade. Every evaluation in the paper
// is a cross-product of (benchmark × input × extraction policy × machine
// configuration); the engine turns each point of that product into a typed,
// canonical job key and guarantees that each distinct key is computed
// exactly once, no matter how many figures ask for it concurrently.
//
// Two job kinds exist:
//
//   - PrepareKey identifies a benchmark preparation: build the program,
//     construct its CFG and liveness, and collect its basic-block frequency
//     profile. Preparation is input-dependent but policy- and
//     machine-independent, so every figure shares it.
//   - SimKey identifies a timing simulation: a preparation plus an
//     extraction policy, MGT size, compression mode and machine
//     configuration. Baseline simulations (no extraction) canonicalize the
//     policy axes to their zero values so the shared baseline is one key
//     across all figures; machine configurations canonicalize away their
//     display Name so cosmetically renamed configs share a cache line.
//
// The engine executes jobs on a bounded worker pool with single-flight
// deduplication and context cancellation threaded down into
// uarch.Pipeline.Run. Results are pure functions of their keys, so the
// output of a sweep is deterministic and independent of worker count.
package sim

import (
	"minigraph/internal/core"
	"minigraph/internal/isa"
	"minigraph/internal/program"
	"minigraph/internal/uarch"
	"minigraph/internal/workload"
)

// PrepareKey identifies one benchmark preparation (static analysis +
// profile). It is a valid map key.
type PrepareKey struct {
	Bench string
	Input workload.Input
}

// Prepared is the result of a preparation job: everything downstream
// extraction and simulation need, computed once per (benchmark, input).
type Prepared struct {
	Bench *workload.Benchmark
	Prog  *isa.Program
	CFG   *program.CFG
	Live  *program.Liveness
	Prof  *program.Profile
}

// SimJob describes one timing simulation to run. Baseline jobs simulate
// the original binary (no extraction); otherwise the prepared program is
// extracted under Policy/Entries, rewritten (compressed or nop-fill), and
// simulated with a mini-graph table derived from Config.
type SimJob struct {
	Prepare  PrepareKey
	Baseline bool
	Policy   core.Policy
	Entries  int
	Compress bool
	Config   uarch.Config
}

// SimKey is a SimJob's canonical cache identity. Two jobs that must
// produce identical results map to the same key:
//
//   - Config.Name is presentation-only and is cleared;
//   - Config.StreamWindow is a delivery-buffer override that cannot affect
//     timing and is cleared;
//   - baseline jobs zero the extraction axes (Policy, Entries, Compress),
//     which do not affect an unrewritten binary;
//   - the front-end axes canonicalize per kind (bpred.Config.Canonical,
//     prefetch.Config.Canonical): kinds are made explicit, zero sizing
//     fields take the kind's defaults, and the inactive kind's sizing is
//     zeroed — a sparse `{"kind":"tage"}` override and the spelled-out
//     default TAGE machine share one cache line.
type SimKey struct {
	Prepare  PrepareKey
	Baseline bool
	Policy   core.Policy
	Entries  int
	Compress bool
	Config   uarch.Config
}

// Key canonicalizes the job.
func (j SimJob) Key() SimKey {
	k := SimKey{Prepare: j.Prepare, Baseline: j.Baseline, Config: j.Config}
	k.Config.Name = ""
	k.Config.StreamWindow = 0
	k.Config.BPred = k.Config.BPred.Canonical()
	k.Config.Prefetcher = k.Config.Prefetcher.Canonical()
	if !j.Baseline {
		k.Policy, k.Entries, k.Compress = j.Policy, j.Entries, j.Compress
	}
	return k
}

// TraceKey identifies one captured dynamic trace: the rewritten binary's
// identity (preparation plus extraction axes) and the record limit. The
// machine configuration is deliberately absent — the record stream is a
// pure function of the program and its mini-graph templates, so every arm
// of a configuration sweep over one rewrite shares one capture. That
// independence is what makes capture-once/replay-many sound, and the
// golden-invariance tests enforce it.
type TraceKey struct {
	Prepare  PrepareKey
	Baseline bool
	Policy   core.Policy
	Entries  int
	Compress bool
	Limit    int64
}

// TraceKey derives the capture identity of a simulation. Because the
// machine configuration is absent, every arm of a configuration sweep over
// one binary shares one TraceKey — the serving tier's coordinator mode
// exploits exactly this, sharding arms across workers by TraceKey so
// capture memoization and stored trace blobs hit on the worker that
// already holds the trace.
func (k SimKey) TraceKey() TraceKey {
	return TraceKey{
		Prepare:  k.Prepare,
		Baseline: k.Baseline,
		Policy:   k.Policy,
		Entries:  k.Entries,
		Compress: k.Compress,
		Limit:    k.Config.MaxRecords,
	}
}

// Baseline returns the job that simulates b's unrewritten binary on cfg.
func Baseline(b PrepareKey, cfg uarch.Config) SimJob {
	return SimJob{Prepare: b, Baseline: true, Config: cfg}
}

// Outcome is one simulation's result. Selection is nil for baseline jobs.
type Outcome struct {
	Result    *uarch.Result
	Selection *core.Selection
}

// ExecParams derives the MGT scheduling parameters implied by a machine
// configuration (load latency, collapsing, ALU pipelines).
func ExecParams(cfg uarch.Config) core.ExecParams {
	return core.ExecParams{LoadLat: cfg.LoadLat, Collapse: cfg.Collapse, UseAP: cfg.APs > 0}
}
