package sim

import (
	"bytes"
	"testing"

	"minigraph/internal/core"
	"minigraph/internal/uarch"
	"minigraph/internal/uarch/bpred"
	"minigraph/internal/uarch/prefetch"
	"minigraph/internal/workload"
)

// sampleKeys covers the key axes: baseline vs extracted, both inputs,
// policy, machine, and front-end (predictor/prefetcher) variations.
func sampleKeys() []SimKey {
	mg := uarch.MiniGraph(true)
	mg.Collapse = true
	tage := uarch.Baseline()
	tage.BPred = bpred.TageConfig()
	tage.Prefetcher = prefetch.DefaultDelta()
	mgpf := uarch.MiniGraph(false)
	mgpf.BPred.Kind = bpred.KindTAGE // sparse: canonicalization fills sizing
	mgpf.Prefetcher = prefetch.Config{Kind: prefetch.KindDelta, Degree: 4}
	keys := []SimKey{
		Baseline(PrepareKey{Bench: "sha", Input: workload.InputTrain}, tage).Key(),
		SimJob{
			Prepare: PrepareKey{Bench: "gzip", Input: workload.InputTrain},
			Policy:  core.DefaultPolicy(),
			Entries: 128,
			Config:  mgpf,
		}.Key(),
		Baseline(PrepareKey{Bench: "sha", Input: workload.InputTrain}, uarch.Baseline()).Key(),
		Baseline(PrepareKey{Bench: "gzip", Input: workload.InputTest}, uarch.MiniGraph(false)).Key(),
		SimJob{
			Prepare: PrepareKey{Bench: "adpcm.enc", Input: workload.InputTrain},
			Policy:  core.DefaultPolicy(),
			Entries: 512,
			Config:  mg,
		}.Key(),
		SimJob{
			Prepare:  PrepareKey{Bench: "reed.dec", Input: workload.InputTrain},
			Policy:   core.IntegerPolicy(),
			Entries:  32,
			Compress: true,
			Config:   uarch.MiniGraph(false),
		}.Key(),
	}
	return keys
}

// TestSimKeyCodecRoundTrip checks encode→decode identity and encode
// determinism for representative keys.
func TestSimKeyCodecRoundTrip(t *testing.T) {
	for _, key := range sampleKeys() {
		data, err := EncodeSimKey(key)
		if err != nil {
			t.Fatalf("encode %+v: %v", key, err)
		}
		again, err := EncodeSimKey(key)
		if err != nil || !bytes.Equal(data, again) {
			t.Fatalf("encoding is not deterministic: %q vs %q (%v)", data, again, err)
		}
		got, err := DecodeSimKey(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != key {
			t.Fatalf("round trip changed key:\n%+v\n%+v", key, got)
		}
	}
}

// TestPrepareKeyCodecRoundTrip is the same property for preparation keys.
func TestPrepareKeyCodecRoundTrip(t *testing.T) {
	for _, key := range []PrepareKey{
		{Bench: "sha", Input: workload.InputTrain},
		{Bench: "jpeg.comp", Input: workload.InputTest},
		{},
	} {
		data, err := EncodePrepareKey(key)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodePrepareKey(data)
		if err != nil {
			t.Fatal(err)
		}
		if got != key {
			t.Fatalf("round trip changed key: %+v vs %+v", key, got)
		}
	}
}

// TestCodecRejects pins the strictness guarantees the store relies on.
func TestCodecRejects(t *testing.T) {
	good, err := EncodeSimKey(sampleKeys()[0])
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           nil,
		"not json":        []byte("pipeline"),
		"wrong version":   []byte(`{"v":999,"p":{}}`),
		"previous (v3)":   []byte(`{"v":3,"p":{}}`),
		"unknown field":   []byte(`{"v":1,"p":{"Bogus":1}}`),
		"trailing":        append(append([]byte{}, good...), '1'),
		"truncated":       good[:len(good)/2],
		"array envelope":  []byte(`[1,2]`),
		"null payload ok": nil, // placeholder; null payload tested below
	}
	delete(cases, "null payload ok")
	for name, data := range cases {
		if _, err := DecodeSimKey(data); err == nil {
			t.Errorf("%s: decode accepted %q", name, data)
		}
	}
	if _, err := DecodeOutcome([]byte(`{"v":1,"p":{"result":null}}`)); err == nil {
		t.Error("outcome decode accepted a null result")
	}
}

// TestOutcomeCodecRoundTrip checks the persisted outcome form, including
// the nil-selection (baseline) shape.
func TestOutcomeCodecRoundTrip(t *testing.T) {
	out := &Outcome{
		Result: &uarch.Result{Cycles: 12345, Retired: 6789, Branches: 42, StallROB: 7},
		Selection: &core.Selection{
			CoveredInsts:   100,
			TotalInsts:     400,
			CandidateCount: 9,
		},
	}
	data, err := EncodeOutcome(out)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeOutcome(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Cycles != 12345 || got.Result.StallROB != 7 {
		t.Errorf("result fields lost: %+v", got.Result)
	}
	if got.Selection == nil || got.Selection.Coverage() != 0.25 {
		t.Errorf("selection lost: %+v", got.Selection)
	}

	base := &Outcome{Result: &uarch.Result{Cycles: 1}}
	data, err = EncodeOutcome(base)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeOutcome(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Selection != nil {
		t.Errorf("baseline outcome grew a selection: %+v", got.Selection)
	}
}

// FuzzKeyCanonicalization drives DecodeSimKey with arbitrary bytes.
// Properties: decoding never panics, and any accepted input canonicalizes
// — re-encoding the decoded key succeeds, decodes back to the same key,
// and re-encoding is byte-stable (so the store's content address for a
// key is unique).
func FuzzKeyCanonicalization(f *testing.F) {
	for _, key := range sampleKeys() {
		data, err := EncodeSimKey(key)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"v":1,"p":{}}`))
	f.Add([]byte(`{"v":2,"p":{}}`))
	f.Add([]byte(`{"v":3,"p":{}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	// Front-end axis seeds: kinds that canonicalization must normalize.
	f.Add([]byte(`{"v":4,"p":{"Config":{"BPred":{"Kind":"tage"}}}}`))
	f.Add([]byte(`{"v":4,"p":{"Config":{"Prefetcher":{"Kind":"delta","Degree":3}}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		key, err := DecodeSimKey(data)
		if err != nil {
			return // rejected inputs need only be rejected cleanly
		}
		enc, err := EncodeSimKey(key)
		if err != nil {
			t.Fatalf("decoded key fails to encode: %+v: %v", key, err)
		}
		again, err := DecodeSimKey(enc)
		if err != nil {
			t.Fatalf("canonical encoding fails to decode: %v\n%s", err, enc)
		}
		if again != key {
			t.Fatalf("canonicalization changed key:\n%+v\n%+v", key, again)
		}
		enc2, err := EncodeSimKey(again)
		if err != nil || !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding is not a fixed point: %q vs %q (%v)", enc, enc2, err)
		}
	})
}

// FuzzOutcomeCodec drives DecodeOutcome with arbitrary bytes. Decoding
// must never panic, every accepted payload must carry a non-nil Result,
// and re-encoding an accepted outcome must be byte-stable — the store's
// byte-equality invariant for outcomes depends on it.
func FuzzOutcomeCodec(f *testing.F) {
	full := &Outcome{
		Result: &uarch.Result{Cycles: 12345, Retired: 6789, RetiredDigest: 0xdeadbeef},
		Selection: &core.Selection{
			CoveredInsts:   100,
			TotalInsts:     400,
			CandidateCount: 9,
		},
	}
	for _, out := range []*Outcome{full, {Result: &uarch.Result{Cycles: 1}}} {
		data, err := EncodeOutcome(out)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Crashers the strict decoder must reject, kept as seeds so the
	// rejection paths stay covered: null result, version lies, truncation
	// and trailing garbage.
	f.Add([]byte(`{"v":5,"p":{"result":null}}`))
	f.Add([]byte(`{"v":999,"p":{"result":{}}}`))
	f.Add([]byte(`{"v":5,"p":{"result":{}}}{"v":5}`))
	f.Add([]byte(`{"v":5,"p":{"resu`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecodeOutcome(data)
		if err != nil {
			return
		}
		if out.Result == nil {
			t.Fatal("accepted outcome with nil result")
		}
		enc, err := EncodeOutcome(out)
		if err != nil {
			t.Fatalf("decoded outcome fails to encode: %v", err)
		}
		again, err := DecodeOutcome(enc)
		if err != nil {
			t.Fatalf("re-encoded outcome fails to decode: %v", err)
		}
		enc2, err := EncodeOutcome(again)
		if err != nil || !bytes.Equal(enc, enc2) {
			t.Fatalf("outcome encoding is not a fixed point (%v)", err)
		}
	})
}
