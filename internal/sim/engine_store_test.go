package sim

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"minigraph/internal/core"
	"minigraph/internal/store"
	"minigraph/internal/uarch"
	"minigraph/internal/workload"
)

// storeJobs is a small but representative job set: two benchmarks, each
// with a baseline and an extracted arm, bounded by MaxRecords so the
// whole warm-up is fast.
func storeJobs() []SimJob {
	var jobs []SimJob
	for _, bench := range []string{"sha", "adpcm.enc"} {
		pk := PrepareKey{Bench: bench, Input: workload.InputTrain}
		base := uarch.Baseline()
		base.MaxRecords = 3000
		jobs = append(jobs, Baseline(pk, base))
		mg := uarch.MiniGraph(true)
		mg.MaxRecords = 3000
		jobs = append(jobs, SimJob{
			Prepare: pk,
			Policy:  core.DefaultPolicy(),
			Entries: 512,
			Config:  mg,
		})
	}
	return jobs
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{MaxBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestEngineStoreColdProcess is the acceptance test for the persistence
// layer: a second engine ("cold process") pointed at the warm store
// directory answers every job from disk — zero preparations, zero
// pipeline simulations — with outcomes byte-identical to the computed
// ones.
func TestEngineStoreColdProcess(t *testing.T) {
	dir := t.TempDir()
	jobs := storeJobs()
	ctx := context.Background()

	warm := New(2).WithStore(openStore(t, dir))
	warmOuts, err := warm.Run(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	ws := warm.Stats()
	// Each job writes through its outcome plus its captured trace in
	// chunked form — one chunk entry (these captures fit in a single
	// chunk) and the manifest naming it; the four jobs are four distinct
	// trace identities here.
	if ws.StoreHits != 0 || ws.StoreMisses != int64(len(jobs)) || ws.StorePuts != 3*int64(len(jobs)) {
		t.Fatalf("warm run store counters: %+v", ws)
	}
	if ws.PipelineSims() != int64(len(jobs)) {
		t.Fatalf("warm run executed %d pipeline sims, want %d", ws.PipelineSims(), len(jobs))
	}
	if ws.TraceCaptures != int64(len(jobs)) || ws.TraceStoreHits != 0 {
		t.Fatalf("warm run trace counters: %+v", ws)
	}

	// Cold process: fresh engine, fresh store handle, same directory.
	cold := New(2).WithStore(openStore(t, dir))
	coldOuts, err := cold.Run(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	cs := cold.Stats()
	if cs.StoreHits != int64(len(jobs)) || cs.StoreMisses != 0 {
		t.Fatalf("cold run not 100%% store hits: %+v", cs)
	}
	if cs.PipelineSims() != 0 {
		t.Fatalf("cold run executed %d pipeline simulations, want 0", cs.PipelineSims())
	}
	if cs.PrepareRuns != 0 {
		t.Fatalf("cold run prepared %d benchmarks, want 0 (store hits skip preparation)", cs.PrepareRuns)
	}
	if cs.TraceCaptures != 0 {
		t.Fatalf("cold run captured %d traces, want 0 (outcome hits skip capture)", cs.TraceCaptures)
	}
	for i := range jobs {
		a, err1 := EncodeOutcome(warmOuts[i])
		b, err2 := EncodeOutcome(coldOuts[i])
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("job %d: store round-trip changed the outcome", i)
		}
	}
}

// TestEngineStoreCorruptionRecovers: a damaged entry is recomputed (and
// rewritten), not an error.
func TestEngineStoreCorruptionRecovers(t *testing.T) {
	dir := t.TempDir()
	jobs := storeJobs()[:2]
	ctx := context.Background()

	warm := New(2).WithStore(openStore(t, dir))
	if _, err := warm.Run(ctx, jobs); err != nil {
		t.Fatal(err)
	}

	// Truncate every stored entry (recency sidecars are not entries). Each
	// job persisted an outcome, one trace chunk, and the trace manifest.
	var damaged int
	err := filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || filepath.Ext(p) != ".json" {
			return err
		}
		damaged++
		return os.Truncate(p, info.Size()/2)
	})
	if err != nil || damaged != 3*len(jobs) {
		t.Fatalf("damaged %d files (%v), want %d", damaged, err, 3*len(jobs))
	}

	cold := New(2).WithStore(openStore(t, dir))
	if _, err := cold.Run(ctx, jobs); err != nil {
		t.Fatalf("damaged store failed the run: %v", err)
	}
	cs := cold.Stats()
	if cs.StoreHits != 0 || cs.PipelineSims() != int64(len(jobs)) || cs.StorePuts != 3*int64(len(jobs)) {
		t.Fatalf("corruption recovery counters: %+v", cs)
	}
	if cs.TraceCaptures != int64(len(jobs)) || cs.TraceStoreHits != 0 {
		t.Fatalf("corruption recovery trace counters: %+v (damaged trace blobs must re-capture)", cs)
	}

	// And the rewritten entries serve the next process.
	third := New(2).WithStore(openStore(t, dir))
	if _, err := third.Run(ctx, jobs); err != nil {
		t.Fatal(err)
	}
	if ts := third.Stats(); ts.StoreHits != int64(len(jobs)) {
		t.Fatalf("rewritten entries not served: %+v", ts)
	}
}

// TestEngineStoreKeyCanonicalization: cosmetically different jobs (renamed
// config) share one store entry, and the store key is the canonical
// encoding of the job key.
func TestEngineStoreKeyCanonicalization(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	job := storeJobs()[0]

	warm := New(1).WithStore(openStore(t, dir))
	if _, err := warm.Simulate(ctx, job); err != nil {
		t.Fatal(err)
	}

	renamed := job
	renamed.Config.Name = "same-machine-different-label"
	cold := New(1).WithStore(openStore(t, dir))
	if _, err := cold.Simulate(ctx, renamed); err != nil {
		t.Fatal(err)
	}
	if cs := cold.Stats(); cs.StoreHits != 1 {
		t.Fatalf("renamed config missed the store: %+v", cs)
	}

	// The entry on disk is addressed by the canonical key encoding.
	st := openStore(t, dir)
	keyBytes, err := EncodeSimKey(job.Key())
	if err != nil {
		t.Fatal(err)
	}
	data, ok := st.Get(keyBytes)
	if !ok {
		t.Fatal("canonical key not present in store")
	}
	if _, err := DecodeOutcome(data); err != nil {
		t.Fatalf("stored payload does not decode: %v", err)
	}
}

// TestOversizedTraceBlobRefusedByStore: with a store budget smaller than
// a captured trace blob, the blob's write-through is refused (counted in
// RejectedPuts) while the much smaller outcome entries still persist —
// the giant blob must not evict the whole store. A cold engine then
// answers from the persisted outcomes without recapturing.
func TestOversizedTraceBlobRefusedByStore(t *testing.T) {
	dir := t.TempDir()
	// 3000 records encode to ~80KB; 24KB holds outcomes but never a blob.
	st, err := store.Open(dir, store.Options{MaxBytes: 24 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pk := PrepareKey{Bench: "sha", Input: workload.InputTrain}
	base := uarch.Baseline()
	base.MaxRecords = 3000
	job := Baseline(pk, base)

	warm := New(2).WithStore(st)
	out, err := warm.Simulate(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	ss := st.Stats()
	if ss.RejectedPuts == 0 {
		t.Fatalf("trace blob slipped under the %d-byte budget: %+v", 24<<10, ss)
	}
	if ss.Evictions != 0 {
		t.Errorf("oversized blob evicted store entries: %+v", ss)
	}
	if ss.Entries == 0 {
		t.Error("outcome entry was not persisted")
	}

	// Cold process: outcome answered from disk, no pipeline run.
	cold := New(2).WithStore(openStore(t, dir))
	out2, err := cold.Simulate(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	es := cold.Stats()
	if es.StoreHits != 1 || es.PipelineSims() != 0 {
		t.Errorf("cold engine stats %+v", es)
	}
	if out.Result.Cycles != out2.Result.Cycles {
		t.Errorf("cold outcome diverged: %d vs %d cycles", out.Result.Cycles, out2.Result.Cycles)
	}
}
