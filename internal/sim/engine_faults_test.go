package sim

import (
	"bytes"
	"context"
	"testing"

	"minigraph/internal/store"
)

// TestEngineStoreFaultsReportInvariant is the recovery invariant for disk
// faults: an engine backed by a store injecting torn writes, bit flips,
// truncations, and transient I/O errors must produce sweep reports
// byte-identical to a fault-free run. Faults may cost recomputation
// (misses, re-captures, failed write-throughs) but can never change a
// result — the store's envelope checksum turns every corruption into a
// miss, and the engine recomputes on every miss.
func TestEngineStoreFaultsReportInvariant(t *testing.T) {
	ctx := context.Background()
	jobs := storeJobs()

	// Fault-free reference.
	ref := New(2).WithStore(openStore(t, t.TempDir()))
	refOuts, err := ref.Run(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, len(jobs))
	for i, out := range refOuts {
		if want[i], err = EncodeOutcome(out); err != nil {
			t.Fatal(err)
		}
	}

	// Heavy fault mix, repeated runs over one shared directory so later
	// runs read earlier runs' (possibly damaged) entries.
	fi := store.NewFaultInjector(store.FaultConfig{
		TornWrite: 0.3, BitFlip: 0.3, Truncate: 0.2,
		WriteErr: 0.2, ReadErr: 0.2, Seed: 42,
	})
	dir := t.TempDir()
	for run := 0; run < 3; run++ {
		st, err := store.Open(dir, store.Options{MaxBytes: -1, Faults: fi})
		if err != nil {
			t.Fatal(err)
		}
		eng := New(2).WithStore(st)
		outs, err := eng.Run(ctx, jobs)
		if err != nil {
			t.Fatalf("run %d under faults failed: %v", run, err)
		}
		for i, out := range outs {
			got, err := EncodeOutcome(out)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want[i]) {
				t.Errorf("run %d job %d: fault-injected report diverged from fault-free reference", run, i)
			}
		}
	}
	if fi.Counters().Total() == 0 {
		t.Fatal("fault mix injected nothing; the invariant was not exercised")
	}

	// A scrub after the chaos leaves only verifiable entries, and a clean
	// engine over the scrubbed store still reproduces the reference bytes.
	st, err := store.Open(dir, store.Options{MaxBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	rep := st.Scrub()
	if rep.Errors != 0 {
		t.Errorf("scrub errors: %+v", rep)
	}
	clean := New(2).WithStore(st)
	outs, err := clean.Run(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		got, err := EncodeOutcome(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Errorf("post-scrub job %d: report diverged", i)
		}
	}
}
