package sim

import (
	"encoding/json"
)

// Row is one structured measurement: a (bench, arm, metric) coordinate and
// its value. Aggregate rows (suite means) set Agg and leave Bench empty;
// descriptive rows (machine parameters) carry Text instead of Value.
type Row struct {
	Bench  string  `json:"bench,omitempty"`
	Suite  string  `json:"suite,omitempty"`
	Arm    string  `json:"arm,omitempty"`
	Agg    string  `json:"agg,omitempty"` // "gmean", "mean" for aggregate rows
	Metric string  `json:"metric"`        // "speedup", "coverage", "ipc", ...
	Value  float64 `json:"value"`
	Text   string  `json:"text,omitempty"`
}

// Report is one experiment's machine-readable result set: the JSON
// counterpart of the figure's text table, suitable for perf trajectories
// and regression tracking.
type Report struct {
	Name  string `json:"name"`
	Title string `json:"title"`
	Rows  []Row  `json:"rows"`
}

// NewReport starts a report.
func NewReport(name, title string) *Report {
	return &Report{Name: name, Title: title}
}

// Add appends rows.
func (r *Report) Add(rows ...Row) { r.Rows = append(r.Rows, rows...) }

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }
