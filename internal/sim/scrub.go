package sim

import (
	"minigraph/internal/store"
	"minigraph/internal/trace"
)

// ClassifyStoreEntry is the ScrubOptions.Classify implementation for
// stores holding this package's entries. It recognizes the chunked-trace
// families by their canonical key encodings: a "trace" key is the
// manifest entry of a chunked trace (its value must decode as a trace
// manifest — anything else condemns the entry), a "trace-chunk" key is
// one chunk payload, and every other key (outcomes, job records, foreign
// entries) takes no part in cross-entry checks. Group identity is the
// canonical manifest key encoding, so a chunk and its manifest agree on
// the group without either ever parsing the other.
func ClassifyStoreEntry(key, value []byte) (store.EntryClass, bool) {
	if tk, chunk, err := DecodeTraceChunkKey(key); err == nil {
		group, err := EncodeTraceKey(tk)
		if err != nil {
			return store.EntryClass{}, false
		}
		return store.EntryClass{Kind: store.EntryChunk, Group: string(group), Chunk: chunk}, true
	}
	if _, err := DecodeTraceKey(key); err == nil {
		m, err := trace.DecodeManifest(value)
		if err != nil {
			// The key says "trace manifest" but the value is not one —
			// stale pre-chunking blob or damage either way; condemn it.
			return store.EntryClass{}, false
		}
		return store.EntryClass{Kind: store.EntryManifest, Group: string(key), Chunks: int64(len(m.Chunks))}, true
	}
	return store.EntryClass{Kind: store.EntryOther}, true
}

// ScrubStore runs a chunk-aware scrub over s: the classic per-entry
// verification plus deletion of orphan chunks and of manifests that
// reference missing chunks (see store.ScrubWith and ClassifyStoreEntry).
// This is what a serving process should run at startup — a crash-torn
// chunked trace converges to a clean miss and is simply re-captured.
func ScrubStore(s *store.Store) store.ScrubReport {
	return s.ScrubWith(store.ScrubOptions{Classify: ClassifyStoreEntry})
}
