// Coordinator mode: mgserve as a horizontally scalable tier.
//
// The paper's experiments are embarrassingly parallel configuration sweeps
// over a shared record stream, and the expensive part — capturing that
// stream — is a memoizable artifact keyed by sim.TraceKey. The win in
// scaling out is therefore not raw fan-out but *placement*: every arm that
// shares a trace identity should land on the worker that already holds the
// capture (in its in-memory trace cache or its persistent store), so the
// tier as a whole still emulates each binary exactly once.
//
// The coordinator implements that placement with rendezvous (highest-
// random-weight) hashing: each arm's TraceKey encoding is hashed against
// every worker URL, and the arm routes to the highest-scoring live worker.
// Rendezvous hashing gives per-key affinity with minimal disruption — when
// a worker dies, only its keys move (to their second choice), and they
// move back when it returns.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"minigraph/internal/sim"
)

// DefaultWorkerCallTimeout bounds one worker call (dial + simulate +
// response). Simulations can legitimately take minutes, so the default is
// generous; its job is to catch a worker that accepted the connection and
// then hung, which would otherwise never error and never re-route.
const DefaultWorkerCallTimeout = 15 * time.Minute

// ErrWorkersUnavailable marks an arm failure caused by no worker
// answering at all (every ranked worker refused the connection, timed
// out, or died mid-call) — a property of the tier's current state, not of
// the arm. The job manager retries jobs that fail with it, so a sweep
// submitted during a tier restart or rolling deploy is requeued instead
// of failing terminally.
var ErrWorkersUnavailable = errors.New("no worker available")

// Coordinator fans simulation arms out across a tier of worker mgserve
// processes, sharding by trace-key affinity, with bounded concurrency and
// failure re-routing. It is safe for concurrent use.
type Coordinator struct {
	urls        []string
	workers     []*Client
	sem         chan struct{}
	callTimeout time.Duration
}

// NewCoordinator builds a coordinator over the given worker base URLs.
// concurrency bounds in-flight worker calls across all requests
// (0 = 4 × workers); callTimeout bounds one worker call
// (0 = DefaultWorkerCallTimeout) — a timed-out worker counts as failed
// and its arm re-routes.
func NewCoordinator(urls []string, concurrency int, callTimeout time.Duration) *Coordinator {
	if len(urls) == 0 {
		panic("serve: NewCoordinator needs at least one worker")
	}
	if concurrency <= 0 {
		concurrency = 4 * len(urls)
	}
	if callTimeout <= 0 {
		callTimeout = DefaultWorkerCallTimeout
	}
	c := &Coordinator{
		urls:        append([]string(nil), urls...),
		sem:         make(chan struct{}, concurrency),
		callTimeout: callTimeout,
	}
	// One shared transport: bounded dial time (an unreachable worker
	// fails fast), keep-alives so per-arm calls reuse connections.
	hc := &http.Client{Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConnsPerHost: concurrency,
		IdleConnTimeout:     90 * time.Second,
	}}
	for _, u := range c.urls {
		cl := NewClient(u)
		cl.HTTP = hc
		c.workers = append(c.workers, cl)
	}
	return c
}

// WorkerURLs returns the worker base URLs (a copy).
func (c *Coordinator) WorkerURLs() []string {
	return append([]string(nil), c.urls...)
}

// Run executes every arm on the worker tier and returns outcomes
// index-aligned with jobs, with the same error-joining semantics as
// sim.Engine.Run. Each arm routes to the workers in rendezvous order of
// its trace key; a worker that fails a call is marked down for the rest of
// this Run and the arm re-routes to its next choice. onDone (optional)
// fires per completed arm from that arm's goroutine.
//
// Because workers answer with full canonical outcomes (/v1/outcome), a
// report assembled from Run's results is byte-identical to single-process
// execution — no matter how the arms were sharded, or how many workers
// died along the way, as long as at least one can still answer.
func (c *Coordinator) Run(ctx context.Context, specs []JobSpec, jobs []sim.SimJob, onDone func(int, *sim.Outcome)) ([]*sim.Outcome, error) {
	if len(specs) != len(jobs) {
		return nil, fmt.Errorf("serve: %d specs for %d jobs", len(specs), len(jobs))
	}
	outs := make([]*sim.Outcome, len(jobs))
	errs := make([]error, len(jobs))
	down := &downSet{m: make(map[int]bool)}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case c.sem <- struct{}{}:
				defer func() { <-c.sem }()
			case <-gctx.Done():
				errs[i] = gctx.Err()
				return
			}
			outs[i], errs[i] = c.runArm(gctx, specs[i], jobs[i], down)
			if errs[i] != nil {
				cancel()
			} else if onDone != nil {
				onDone(i, outs[i])
			}
		}(i)
	}
	wg.Wait()
	return outs, sim.JoinErrors(ctx, errs)
}

// runArm executes one arm, trying workers in rendezvous order of the
// arm's trace key. Only failures to *answer* — transport errors, call
// timeouts — mark the worker down (for this Run) and re-route. Any HTTP
// status, 4xx or 5xx, is an answer: the worker is alive and the error is
// the arm's own (bad spec, deterministic simulation failure), so the arm
// fails immediately instead of re-running its capture on every worker and
// poisoning the downSet for its siblings.
func (c *Coordinator) runArm(ctx context.Context, spec JobSpec, job sim.SimJob, down *downSet) (*sim.Outcome, error) {
	tkb, err := sim.EncodeTraceKey(job.Key().TraceKey())
	if err != nil {
		return nil, fmt.Errorf("serve: arm %q: trace key: %w", spec.label(), err)
	}
	var lastErr error
	for _, wi := range rankByRendezvous(c.urls, tkb) {
		if down.is(wi) {
			continue
		}
		actx, cancel := context.WithTimeout(ctx, c.callTimeout)
		out, err := c.workers[wi].Outcome(actx, spec)
		cancel()
		if err == nil {
			return out, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var se *StatusError
		if errors.As(err, &se) {
			return nil, fmt.Errorf("serve: arm %q: worker %s: %w", spec.label(), c.urls[wi], err)
		}
		down.set(wi)
		lastErr = fmt.Errorf("worker %s: %v", c.urls[wi], err)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("all %d workers already down", len(c.urls))
	}
	return nil, fmt.Errorf("serve: arm %q: %w: %v", spec.label(), ErrWorkersUnavailable, lastErr)
}

// downSet tracks workers observed failing during one Run. Marking is
// monotonic within the Run; a fresh Run starts trusting every worker
// again, so a recovered worker rejoins on the next request.
type downSet struct {
	mu sync.Mutex
	m  map[int]bool
}

func (d *downSet) is(i int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m[i]
}

func (d *downSet) set(i int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.m[i] = true
}

// rankByRendezvous orders worker indices by descending rendezvous score
// for key: score(i) = mix64(h(urls[i]) ⊕ h(key)). The top-ranked worker
// is the key's home; the rest are its failover order. The ordering is a
// pure function of (urls, key), so every coordinator instance over the
// same worker list routes identically — and a key's home only changes
// when its own worker leaves the list.
//
// Raw FNV is too correlated across strings that differ in one character
// for direct use as a rendezvous score (one worker ends up winning nearly
// every key), so the combined hash runs through a SplitMix64 finalizer to
// decorrelate the per-worker scores.
func rankByRendezvous(urls []string, key []byte) []int {
	hk := fnv.New64a()
	_, _ = hk.Write(key)
	keyHash := hk.Sum64()
	type scored struct {
		i     int
		score uint64
	}
	rank := make([]scored, len(urls))
	for i, u := range urls {
		h := fnv.New64a()
		_, _ = h.Write([]byte(u))
		rank[i] = scored{i: i, score: mix64(h.Sum64() ^ keyHash)}
	}
	sort.Slice(rank, func(a, b int) bool {
		if rank[a].score != rank[b].score {
			return rank[a].score > rank[b].score
		}
		return urls[rank[a].i] < urls[rank[b].i]
	})
	order := make([]int, len(rank))
	for i, s := range rank {
		order[i] = s.i
	}
	return order
}

// mix64 is the SplitMix64 finalizer: a cheap bijective avalanche so every
// input bit flips ~half the output bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
