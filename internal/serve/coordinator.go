// Coordinator mode: mgserve as a horizontally scalable, elastic tier.
//
// The paper's experiments are embarrassingly parallel configuration sweeps
// over a shared record stream, and the expensive part — capturing that
// stream — is a memoizable artifact keyed by sim.TraceKey. The win in
// scaling out is therefore not raw fan-out but *placement*: every arm that
// shares a trace identity should land on the worker that already holds the
// capture (in its in-memory trace cache or its persistent store), so the
// tier as a whole still emulates each binary exactly once.
//
// The coordinator implements that placement with rendezvous (highest-
// random-weight) hashing: each arm's TraceKey encoding is hashed against
// every live worker URL, and the arm routes to the highest-scoring one.
// Rendezvous hashing gives per-key affinity with minimal disruption — when
// a worker dies, only its keys move (to their second choice), and they
// move back when it returns.
//
// Membership is dynamic (see membership.go): the routing view is sampled
// per arm, so workers that register mid-sweep start taking keys and
// workers whose heartbeat TTL lapses stop. When a key moves, the new
// owner fetches the captured trace blob from the key's previous owners
// (see blobs.go) instead of re-emulating, so elasticity costs a blob
// copy, not a capture.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"minigraph/internal/sim"
)

// DefaultWorkerCallTimeout bounds one worker call (dial + simulate +
// response). Simulations can legitimately take minutes, so the default is
// generous; its job is to catch a worker that accepted the connection and
// then hung, which would otherwise never error and never re-route.
const DefaultWorkerCallTimeout = 15 * time.Minute

// ErrWorkersUnavailable marks an arm failure caused by no worker
// answering at all (every ranked live worker refused the connection,
// timed out, or died mid-call — or the member table is empty) — a
// property of the tier's current state, not of the arm. The job manager
// retries jobs that fail with it under exponential backoff, so a sweep
// submitted during a tier restart or rolling deploy is requeued instead
// of failing terminally.
var ErrWorkersUnavailable = errors.New("no worker available")

// CoordinatorOptions configure a coordinator.
type CoordinatorOptions struct {
	// Workers are statically configured worker base URLs. Static members
	// are pinned live (they never expire); per-sweep failure marking still
	// re-routes around one that is down.
	Workers []string
	// AllowDynamic admits workers that register over HTTP; without it the
	// member table is fixed to Workers, which then must be non-empty.
	AllowDynamic bool
	// MemberTTL is how long a dynamic member stays routable after its last
	// heartbeat (0 = DefaultMemberTTL).
	MemberTTL time.Duration
	// FanoutConcurrency bounds in-flight worker calls across all requests
	// (0 = max(8, 4 × static workers)).
	FanoutConcurrency int
	// WorkerCallTimeout bounds one worker call (0 = DefaultWorkerCallTimeout).
	WorkerCallTimeout time.Duration
}

// Coordinator fans simulation arms out across a tier of worker mgserve
// processes, sharding by trace-key affinity over a live member view, with
// bounded concurrency, failure re-routing, and peer blob transfer. It is
// safe for concurrent use.
type Coordinator struct {
	members     *memberSet
	dynamic     bool
	static      []string
	sem         chan struct{}
	callTimeout time.Duration
	hc          *http.Client

	cmu     sync.Mutex
	clients map[string]*Client
}

// NewCoordinator builds a coordinator. It returns an error — never
// panics — when the configuration cannot route anything: no static
// workers and dynamic registration disabled (a bad flag must not take
// down a server binary).
func NewCoordinator(o CoordinatorOptions) (*Coordinator, error) {
	static := make([]string, 0, len(o.Workers))
	for _, u := range o.Workers {
		n, err := normalizeWorkerURL(u)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		static = append(static, n)
	}
	if len(static) == 0 && !o.AllowDynamic {
		return nil, fmt.Errorf("serve: coordinator needs at least one worker URL (or dynamic registration enabled)")
	}
	concurrency := o.FanoutConcurrency
	if concurrency <= 0 {
		concurrency = 4 * len(static)
		if concurrency < 8 {
			concurrency = 8
		}
	}
	callTimeout := o.WorkerCallTimeout
	if callTimeout <= 0 {
		callTimeout = DefaultWorkerCallTimeout
	}
	c := &Coordinator{
		members:     newMemberSet(static, o.MemberTTL),
		dynamic:     o.AllowDynamic,
		static:      static,
		sem:         make(chan struct{}, concurrency),
		callTimeout: callTimeout,
		clients:     make(map[string]*Client),
	}
	// One shared transport: bounded dial time (an unreachable worker
	// fails fast), keep-alives so per-arm calls reuse connections.
	c.hc = &http.Client{Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConnsPerHost: concurrency,
		IdleConnTimeout:     90 * time.Second,
	}}
	return c, nil
}

// WorkerURLs returns the statically configured worker base URLs (a copy).
// The full member table — static and registered — is Members().
func (c *Coordinator) WorkerURLs() []string {
	return append([]string(nil), c.static...)
}

// Members snapshots the member table with last-heartbeat ages.
func (c *Coordinator) Members() []MemberStatus { return c.members.view() }

// Register records a worker heartbeat and returns the membership TTL the
// worker should beat well within. An error means dynamic registration is
// disabled.
func (c *Coordinator) Register(url string) (time.Duration, error) {
	n, err := normalizeWorkerURL(url)
	if err != nil {
		return 0, err
	}
	if !c.dynamic {
		return 0, fmt.Errorf("dynamic worker registration is disabled on this coordinator")
	}
	ttl, _ := c.members.register(n)
	return ttl, nil
}

// client returns the (cached) Client for a worker URL, sharing the
// coordinator's transport.
func (c *Coordinator) client(url string) *Client {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if cl, ok := c.clients[url]; ok {
		return cl
	}
	cl := NewClient(url)
	cl.HTTP = c.hc
	c.clients[url] = cl
	return cl
}

// Run executes every arm on the worker tier and returns outcomes
// index-aligned with jobs, with the same error-joining semantics as
// sim.Engine.Run. Each arm routes to the live members in rendezvous order
// of its trace key — the member view is sampled per arm, so joins and
// leaves mid-sweep re-route only the not-yet-dispatched arms whose home
// changed. A worker that fails a call is marked down for the rest of this
// Run and the arm re-routes to its next choice. onDone (optional) fires
// per completed arm from that arm's goroutine.
//
// Because workers answer with full canonical outcomes (/v1/outcome), a
// report assembled from Run's results is byte-identical to single-process
// execution — no matter how the arms were sharded, how membership changed,
// or how many workers died along the way, as long as at least one can
// still answer.
func (c *Coordinator) Run(ctx context.Context, specs []JobSpec, jobs []sim.SimJob, onDone func(int, *sim.Outcome)) ([]*sim.Outcome, error) {
	if len(specs) != len(jobs) {
		return nil, fmt.Errorf("serve: %d specs for %d jobs", len(specs), len(jobs))
	}
	outs := make([]*sim.Outcome, len(jobs))
	errs := make([]error, len(jobs))
	down := &downSet{m: make(map[string]bool)}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case c.sem <- struct{}{}:
				defer func() { <-c.sem }()
			case <-gctx.Done():
				errs[i] = gctx.Err()
				return
			}
			outs[i], errs[i] = c.runArm(gctx, specs[i], jobs[i], down)
			if errs[i] != nil {
				cancel()
			} else if onDone != nil {
				onDone(i, outs[i])
			}
		}(i)
	}
	wg.Wait()
	return outs, sim.JoinErrors(ctx, errs)
}

// runArm executes one arm, trying live members in rendezvous order of the
// arm's trace key; the member view is re-sampled after every failure, so
// a worker that registers while the arm is retrying becomes a candidate.
// Only failures to *answer* — transport errors, call timeouts — mark the
// worker down (for this Run) and re-route. Any HTTP status, 4xx or 5xx,
// is an answer: the worker is alive and the error is the arm's own (bad
// spec, deterministic simulation failure), so the arm fails immediately
// instead of re-running its capture on every worker and poisoning the
// downSet for its siblings.
//
// Each call names the key's other ranked owners in the blob-peers header:
// if the target lacks the capture (the key just moved to it), it fetches
// the blob from the previous owner instead of re-emulating.
func (c *Coordinator) runArm(ctx context.Context, spec JobSpec, job sim.SimJob, down *downSet) (*sim.Outcome, error) {
	tkb, err := sim.EncodeTraceKey(job.Key().TraceKey())
	if err != nil {
		return nil, fmt.Errorf("serve: arm %q: trace key: %w", spec.label(), err)
	}
	var lastErr error
	tried := 0
	for ctx.Err() == nil {
		target := c.pickWorker(tkb, down)
		if target == "" {
			break
		}
		tried++
		actx, cancel := context.WithTimeout(ctx, c.callTimeout)
		// A fifth of the call budget per peer blob attempt: even with every
		// named peer hung, the worker still has most of the timeout left to
		// capture the trace itself.
		out, err := c.client(target).OutcomeFrom(actx, spec, c.peersFor(tkb, target, down), c.callTimeout/5)
		cancel()
		if err == nil {
			return out, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var se *StatusError
		if errors.As(err, &se) {
			return nil, fmt.Errorf("serve: arm %q: worker %s: %w", spec.label(), target, err)
		}
		down.set(target)
		lastErr = fmt.Errorf("worker %s: %v", target, err)
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no live members (%d known, %d tried)", len(c.members.known()), tried)
	}
	return nil, fmt.Errorf("serve: arm %q: %w: %v", spec.label(), ErrWorkersUnavailable, lastErr)
}

// pickWorker returns the highest-ranked live member for key that is not
// marked down ("" when none remains).
func (c *Coordinator) pickWorker(key []byte, down *downSet) string {
	live := c.members.live()
	for _, i := range rankByRendezvous(live, key) {
		if !down.is(live[i]) {
			return live[i]
		}
	}
	return ""
}

// peersFor names the workers (live or recently expired) most likely to
// already hold key's trace blob: the rendezvous ranking over every known
// member except the target itself and any worker this Run already saw
// fail (a peer that refuses calls would only burn the arm's deadline).
// When a key just moved to a newly joined target, the first peer is
// exactly the key's previous owner; when the target is the failover
// choice, the first peer is the old home — possibly expired but still
// answering /v1/blobs, in which case the blob moves instead of being
// re-captured.
func (c *Coordinator) peersFor(key []byte, target string, down *downSet) []string {
	known := c.members.known()
	peers := make([]string, 0, maxBlobPeers)
	for _, i := range rankByRendezvous(known, key) {
		if known[i] == target || down.is(known[i]) {
			continue
		}
		peers = append(peers, known[i])
		if len(peers) == maxBlobPeers {
			break
		}
	}
	return peers
}

// downSet tracks workers observed failing during one Run. Marking is
// monotonic within the Run; a fresh Run starts trusting every worker
// again, so a recovered worker rejoins on the next request.
type downSet struct {
	mu sync.Mutex
	m  map[string]bool
}

func (d *downSet) is(url string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m[url]
}

func (d *downSet) set(url string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.m[url] = true
}

// rankByRendezvous orders worker indices by descending rendezvous score
// for key: score(i) = mix64(h(urls[i]) ⊕ h(key)). The top-ranked worker
// is the key's home; the rest are its failover order. The ordering is a
// pure function of (urls, key), so every coordinator instance over the
// same member view routes identically — and a key's home only changes
// when its own worker leaves the view.
//
// Raw FNV is too correlated across strings that differ in one character
// for direct use as a rendezvous score (one worker ends up winning nearly
// every key), so the combined hash runs through a SplitMix64 finalizer to
// decorrelate the per-worker scores.
func rankByRendezvous(urls []string, key []byte) []int {
	hk := fnv.New64a()
	_, _ = hk.Write(key)
	keyHash := hk.Sum64()
	type scored struct {
		i     int
		score uint64
	}
	rank := make([]scored, len(urls))
	for i, u := range urls {
		h := fnv.New64a()
		_, _ = h.Write([]byte(u))
		rank[i] = scored{i: i, score: mix64(h.Sum64() ^ keyHash)}
	}
	sort.Slice(rank, func(a, b int) bool {
		if rank[a].score != rank[b].score {
			return rank[a].score > rank[b].score
		}
		return urls[rank[a].i] < urls[rank[b].i]
	})
	order := make([]int, len(rank))
	for i, s := range rank {
		order[i] = s.i
	}
	return order
}

// mix64 is the SplitMix64 finalizer: a cheap bijective avalanche so every
// input bit flips ~half the output bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
