package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"minigraph/internal/sim"
	"minigraph/internal/store"
)

// mustNew builds a server out of options every test expects to be valid.
func mustNew(t *testing.T, o Options) *Server {
	t.Helper()
	srv, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func newTestServer(t *testing.T, st *store.Store) (*httptest.Server, *sim.Engine) {
	t.Helper()
	eng := sim.New(2)
	if st != nil {
		eng.WithStore(st)
	}
	srv := mustNew(t, Options{Engine: eng, MaxSweepJobs: 16})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, eng
}

// fastSpec is a bounded job so handler tests stay quick.
func fastSpec(arm string, baseline bool) JobSpec {
	js := JobSpec{Arm: arm, Bench: "sha", Baseline: baseline, MaxRecords: 3000}
	if baseline {
		js.Machine = "baseline"
	}
	return js
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["status"] != "ok" {
		t.Fatalf("body %v (%v)", body, err)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	resp, out := postJSON(t, ts.URL+"/v1/simulate", fastSpec("base", true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var jr JobResult
	if err := json.Unmarshal(out, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Result == nil || jr.Result.Cycles == 0 || jr.IPC <= 0 {
		t.Fatalf("implausible result: %+v", jr)
	}
	if jr.Templates != 0 {
		t.Errorf("baseline job reported %d templates", jr.Templates)
	}

	// An extracted job reports its extraction.
	resp, out = postJSON(t, ts.URL+"/v1/simulate", fastSpec("mg", false))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if err := json.Unmarshal(out, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Templates == 0 || jr.Coverage <= 0 {
		t.Errorf("extracted job lost its selection: %+v", jr)
	}
}

func TestSimulateValidation(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	cases := []JobSpec{
		{},                                        // no bench
		{Bench: "no-such-bench"},                  // unknown bench
		{Bench: "sha", Input: "validation"},       // bad input
		{Bench: "sha", Machine: "cray"},           // bad machine
		{Bench: "sha", Machine: "baseline"},       // baseline machine, extracted job
		{Bench: "sha", MaxSize: 1},                // undersized mini-graphs
		{Bench: "sha", Entries: -4},               // negative MGT
		{Bench: "sha", SchedCycles: 3},            // bad scheduler
		{Bench: "sha", Baseline: true, Width: -1}, // bad width
		{Bench: "sha", MemLatency: -5},            // negative memory latency
	}
	for i, js := range cases {
		resp, out := postJSON(t, ts.URL+"/v1/simulate", js)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, body %s", i, resp.StatusCode, out)
		}
		var e map[string]string
		if err := json.Unmarshal(out, &e); err != nil || e["error"] == "" {
			t.Errorf("case %d: error body %s", i, out)
		}
	}
	// Unknown fields are rejected too (protects clients from typos).
	resp, _ := http.Post(ts.URL+"/v1/simulate", "application/json",
		strings.NewReader(`{"bench":"sha","baselin":true}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("typoed field accepted: %d", resp.StatusCode)
	}
}

// TestFrontendOverrideValidation pins the front-end override contract:
// unknown predictor/prefetcher kinds come back as structured JSON 400s
// that list the valid kinds, and orphaned or impossible sizing is caught
// at resolve time.
func TestFrontendOverrideValidation(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	cases := []struct {
		js   JobSpec
		want string // substring the error must carry
	}{
		{JobSpec{Bench: "sha", Predictor: "perceptron"}, "hybrid tage"},
		{JobSpec{Bench: "sha", Prefetcher: "markov"}, "none delta"},
		{JobSpec{Bench: "sha", PrefetchDegree: 4}, "require prefetcher"},
		{JobSpec{Bench: "sha", Prefetcher: "delta", PrefetchDegree: 99}, "degree"},
		{JobSpec{Bench: "sha", Prefetcher: "delta", PrefetchEntries: 100}, "power of two"},
	}
	for i, c := range cases {
		resp, out := postJSON(t, ts.URL+"/v1/simulate", c.js)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, body %s", i, resp.StatusCode, out)
			continue
		}
		var e map[string]string
		if err := json.Unmarshal(out, &e); err != nil || !strings.Contains(e["error"], c.want) {
			t.Errorf("case %d: error body %s lacks %q", i, out, c.want)
		}
	}

	// Valid overrides resolve to the matching machine configs and share the
	// cache key with the spelled-out equivalents.
	job, err := (JobSpec{Bench: "sha", Baseline: true, Predictor: "tage", Prefetcher: "delta", PrefetchDegree: 4}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if job.Config.BPred.Kind != "tage" || job.Config.Prefetcher.Kind != "delta" || job.Config.Prefetcher.Degree != 4 {
		t.Errorf("overrides not applied: %+v %+v", job.Config.BPred, job.Config.Prefetcher)
	}
	plain, err := (JobSpec{Bench: "sha", Baseline: true, Predictor: "hybrid", Prefetcher: "none"}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	def, err := (JobSpec{Bench: "sha", Baseline: true}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Key() != def.Key() {
		t.Errorf("explicit default kinds changed the cache key:\n%+v\n%+v", plain.Key(), def.Key())
	}
}

// TestMemLatencyOverride pins the mem_latency machine override: it is the
// documented route to configurations whose memory latency chains exceed the
// event wheel's page size (see the uarch overflow regression tests).
func TestMemLatencyOverride(t *testing.T) {
	js := JobSpec{Bench: "sha", Baseline: true, MemLatency: 3000}
	job, err := js.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if job.Config.MemLatency != 3000 {
		t.Errorf("mem_latency override not applied: %d", job.Config.MemLatency)
	}
	if def, err := (JobSpec{Bench: "sha", Baseline: true}).Resolve(); err != nil || def.Config.MemLatency != 0 {
		t.Errorf("default jobs must leave MemLatency at the preset zero (got %d, %v)", def.Config.MemLatency, err)
	}
}

// TestWideWidthOverrideDoesNotPanic: any width Resolve accepts must produce
// a config Validate accepts — a Validate panic would fire inside an engine
// worker goroutine and kill the whole service.
func TestWideWidthOverrideDoesNotPanic(t *testing.T) {
	job, err := (JobSpec{Bench: "sha", Baseline: true, Width: 400}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	job.Config.Validate() // panics on failure
	// The live stream's rewind window derives from the machine itself, so
	// an accepted override can never undersize it.
	if need := job.Config.MaxSquashDepth(); job.Config.EffectiveStreamWindow() < need {
		t.Errorf("effective stream window %d below squash depth %d", job.Config.EffectiveStreamWindow(), need)
	}
}

// TestSweepByteIdenticalToInProcess is the serving-layer acceptance test:
// the /v1/sweep response must be byte-identical to the Report produced by
// running the same jobs on an in-process engine.
func TestSweepByteIdenticalToInProcess(t *testing.T) {
	req := SweepRequest{
		Name:  "accept",
		Title: "acceptance sweep",
		Jobs: []JobSpec{
			fastSpec("sha/base", true),
			fastSpec("sha/mg", false),
			{Arm: "adpcm/base", Bench: "adpcm.enc", Baseline: true, Machine: "baseline", MaxRecords: 3000},
			{Arm: "adpcm/mg-int", Bench: "adpcm.enc", Machine: "minigraph-int", MaxRecords: 3000},
		},
	}

	// In-process reference.
	jobs := make([]sim.SimJob, len(req.Jobs))
	for i, js := range req.Jobs {
		job, err := js.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job
	}
	ref := sim.New(2)
	outs, err := ref.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SweepReport(req, outs).JSON()
	if err != nil {
		t.Fatal(err)
	}

	ts, _ := newTestServer(t, nil)
	resp, got := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	got = bytes.TrimSuffix(got, []byte("\n"))
	if !bytes.Equal(got, want) {
		t.Fatalf("served sweep differs from in-process report\nserved:\n%s\nin-process:\n%s", got, want)
	}
}

// TestSweepCoalescing posts the same sweep from many goroutines at once;
// the shared engine must execute each distinct job exactly once.
func TestSweepCoalescing(t *testing.T) {
	ts, eng := newTestServer(t, nil)
	req := SweepRequest{
		Name: "dup",
		Jobs: []JobSpec{
			fastSpec("base", true),
			fastSpec("mg", false),
			fastSpec("base-again", true), // duplicate arm inside one sweep
		},
	}
	const callers = 6
	var wg sync.WaitGroup
	bodies := make([][]byte, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			data, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(data))
			if err != nil {
				t.Errorf("caller %d: %v", c, err)
				return
			}
			defer resp.Body.Close()
			bodies[c], _ = io.ReadAll(resp.Body)
		}(c)
	}
	wg.Wait()
	for c := 1; c < callers; c++ {
		if !bytes.Equal(bodies[c], bodies[0]) {
			t.Fatalf("caller %d saw a different report", c)
		}
	}
	st := eng.Stats()
	if st.SimRuns != 2 { // base (deduped with base-again) + mg
		t.Errorf("%d sim runs for 2 distinct jobs across %d callers: %+v", st.SimRuns, callers, st)
	}
	if st.SimHits != int64(callers*3-2) {
		t.Errorf("coalescing hits: %+v", st)
	}
}

func TestSweepValidation(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	resp, _ := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty sweep: %d", resp.StatusCode)
	}
	big := SweepRequest{}
	for i := 0; i < 17; i++ { // MaxSweepJobs: 16
		big.Jobs = append(big.Jobs, fastSpec(fmt.Sprintf("a%d", i), true))
	}
	resp, out := postJSON(t, ts.URL+"/v1/sweep", big)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized sweep: %d %s", resp.StatusCode, out)
	}
	bad := SweepRequest{Jobs: []JobSpec{fastSpec("ok", true), {Bench: "nope"}}}
	resp, out = postJSON(t, ts.URL+"/v1/sweep", bad)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(out), "jobs[1]") {
		t.Errorf("bad arm not located: %d %s", resp.StatusCode, out)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/experiments/robust?benchmarks=sha")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rep sim.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Name != "robust" || len(rep.Rows) == 0 {
		t.Fatalf("report %+v", rep)
	}

	for path, want := range map[string]int{
		"/v1/experiments/no-such-figure":         http.StatusNotFound,
		"/v1/experiments/robust?benchmarks=typo": http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestStatszReportsStore(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t, st)
	if _, out := postJSON(t, ts.URL+"/v1/simulate", fastSpec("warm", true)); len(out) == 0 {
		t.Fatal("empty simulate response")
	}
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Engine.SimRuns != 1 || stats.PipelineSims != 1 {
		t.Errorf("engine stats %+v", stats)
	}
	// Three puts: the simulation outcome, the captured trace's single
	// chunk entry, and the manifest naming it.
	if stats.Store == nil || stats.Store.Puts != 3 {
		t.Errorf("store stats %+v", stats.Store)
	}
	if stats.Workers != 2 || len(stats.Experiments) == 0 {
		t.Errorf("stats %+v", stats)
	}
}

// TestStatszTraceCounters: a configuration sweep over one binary captures
// its trace once, and a second sweep with fresh machine overrides replays
// it with zero new captures — all visible through /statsz.
func TestStatszTraceCounters(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	sweep := func(lats ...int) SweepRequest {
		req := SweepRequest{Name: "latsweep"}
		for _, ml := range lats {
			req.Jobs = append(req.Jobs, JobSpec{
				Arm: fmt.Sprintf("mem%d", ml), Bench: "sha",
				MemLatency: ml, MaxRecords: 3000,
			})
		}
		return req
	}
	statsz := func() statsResponse {
		resp, err := http.Get(ts.URL + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st statsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	if resp, _ := postJSON(t, ts.URL+"/v1/sweep", sweep(120, 140, 160)); resp.StatusCode != http.StatusOK {
		t.Fatalf("first sweep status %d", resp.StatusCode)
	}
	st := statsz()
	if st.Engine.TraceCaptures != 1 {
		t.Fatalf("first sweep captured %d traces, want 1: %+v", st.Engine.TraceCaptures, st.Engine)
	}
	if st.Engine.TraceReplayHits != 2 {
		t.Fatalf("first sweep replay hits %d, want 2: %+v", st.Engine.TraceReplayHits, st.Engine)
	}

	if resp, _ := postJSON(t, ts.URL+"/v1/sweep", sweep(200, 240)); resp.StatusCode != http.StatusOK {
		t.Fatalf("second sweep status %d", resp.StatusCode)
	}
	st2 := statsz()
	if st2.Engine.TraceCaptures != 1 {
		t.Fatalf("second sweep performed %d new captures, want 0", st2.Engine.TraceCaptures-1)
	}
	if st2.Engine.TraceReplayHits != 4 {
		t.Fatalf("second sweep replay hits %d, want 4", st2.Engine.TraceReplayHits)
	}
	if st2.Engine.TraceBytes == 0 {
		t.Fatal("trace bytes counter not populated")
	}
	// Both sweeps' arms share one TraceKey, so each ran as one gang — the
	// operator-facing proof that sweeps actually gang.
	if st2.Engine.GangsFormed != 2 || st2.Engine.GangArms != 5 {
		t.Fatalf("gang counters formed=%d arms=%d, want 2/5: %+v",
			st2.Engine.GangsFormed, st2.Engine.GangArms, st2.Engine)
	}
	if st2.Engine.GangSharedRecords == 0 {
		t.Fatal("gang shared-decode counter not populated")
	}
}

// TestSweepDuplicateArms: duplicate arm names within one sweep would
// produce ambiguous per-arm report rows, so they are rejected with a 400
// naming the offending arm — both explicit labels and the synthetic
// bench@machine defaults.
func TestSweepDuplicateArms(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	resp, out := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Jobs: []JobSpec{
		fastSpec("twin", true),
		fastSpec("solo", false),
		fastSpec("twin", true),
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate arms accepted: %d %s", resp.StatusCode, out)
	}
	var e map[string]string
	if err := json.Unmarshal(out, &e); err != nil {
		t.Fatalf("error body %s", out)
	}
	for _, want := range []string{`"twin"`, "jobs[2]", "jobs[0]"} {
		if !strings.Contains(e["error"], want) {
			t.Errorf("error %q does not name %s", e["error"], want)
		}
	}

	// Two unlabeled jobs over the same bench+machine collide on the
	// synthetic label too.
	resp, out = postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Jobs: []JobSpec{
		{Bench: "sha", MaxRecords: 3000},
		{Bench: "sha", MaxRecords: 6000},
	}})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(out), "sha@minigraph") {
		t.Errorf("synthetic-label duplicate: %d %s", resp.StatusCode, out)
	}

	// Distinct labels over identical underlying jobs stay legal (they
	// coalesce in the engine; the rows are unambiguous).
	resp, out = postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Jobs: []JobSpec{
		fastSpec("a", true), fastSpec("b", true),
	}})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("renamed duplicates rejected: %d %s", resp.StatusCode, out)
	}
}

// TestErrorResponsesAlwaysJSON: every error path — including the mux's
// built-in 404/405 plain-text responses — must reach the client as
// Content-Type application/json with a structured {"error": ...} body.
func TestErrorResponsesAlwaysJSON(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	cases := []struct {
		method, path string
		body         string
		want         int
	}{
		{"GET", "/no/such/path", "", http.StatusNotFound},
		{"GET", "/v1/simulate", "", http.StatusMethodNotAllowed}, // handler is POST
		{"PUT", "/v1/jobs", "", http.StatusMethodNotAllowed},
		{"POST", "/v1/sweep", "{not json", http.StatusBadRequest},
		{"GET", "/v1/jobs/j-missing", "", http.StatusNotFound},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d (%s)", c.method, c.path, resp.StatusCode, c.want, body)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s %s: Content-Type %q", c.method, c.path, ct)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s %s: body %q is not a structured error", c.method, c.path, body)
		}
	}

	// Success paths are untouched by the rewriter.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
}

// slowSweep is a sweep long enough to cancel mid-flight: full-run gzip
// arms with distinct memory latencies, serialized on a 1-worker engine.
func slowSweep(arms int) SweepRequest {
	req := SweepRequest{Name: "slow"}
	for i := 0; i < arms; i++ {
		req.Jobs = append(req.Jobs, JobSpec{
			Arm: fmt.Sprintf("gzip/mem%d", i), Bench: "gzip",
			Baseline: true, Machine: "baseline", MemLatency: 100 + 10*i,
		})
	}
	return req
}

// TestSweepClientDisconnect: when the client goes away mid-sweep, the
// request context must abort in-flight pipeline runs promptly, the engine
// must stop issuing the remaining arms, and the handler must return
// without writing any partial JSON body.
func TestSweepClientDisconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run sweep; skipped in -short")
	}
	eng := sim.New(1) // serialize arms so cancellation lands mid-sweep
	srv := mustNew(t, Options{Engine: eng})
	defer srv.Close()

	const arms = 16
	req := slowSweep(arms)
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	hr := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader(data)).WithContext(ctx)
	rec := httptest.NewRecorder()

	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeHTTP(rec, hr)
	}()

	// Let the sweep get going (capture + first arms), then disconnect.
	time.Sleep(250 * time.Millisecond)
	cancel()
	canceledAt := time.Now()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("handler still running 15s after client disconnect")
	}
	if d := time.Since(canceledAt); d > 5*time.Second {
		t.Errorf("handler took %s to notice the disconnect", d)
	}
	if rec.Body.Len() != 0 {
		t.Errorf("handler wrote %d bytes after disconnect: %.120q", rec.Body.Len(), rec.Body.String())
	}

	// The canceled arms were evicted from the engine's cache, so running
	// the identical sweep again re-executes exactly the arms that never
	// completed. Most of the sweep must still have been pending at cancel
	// time — the engine stopped issuing arms instead of finishing the
	// batch behind the dead connection.
	before := eng.Stats().SimRuns
	jobs := make([]sim.SimJob, len(req.Jobs))
	for i, js := range req.Jobs {
		if jobs[i], err = js.Resolve(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	rerun := eng.Stats().SimRuns - before
	if rerun < arms/2 {
		t.Errorf("only %d of %d arms were still pending at cancel; engine kept issuing work for a dead client", rerun, arms)
	}
}

// TestStatszRaceClean hammers /statsz while sweeps and async jobs run;
// the race detector (CI runs this package under -race) must stay quiet.
func TestStatszRaceClean(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := SweepRequest{Name: "race", Jobs: []JobSpec{
				fastSpec(fmt.Sprintf("c%d/base", c), true),
				fastSpec(fmt.Sprintf("c%d/mg", c), false),
			}}
			if resp, out := postJSON(t, ts.URL+"/v1/sweep", req); resp.StatusCode != http.StatusOK {
				t.Errorf("sweep: %d %s", resp.StatusCode, out)
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if resp, out := postJSON(t, ts.URL+"/v1/jobs", SweepRequest{Jobs: []JobSpec{fastSpec("job/base", true)}}); resp.StatusCode != http.StatusAccepted {
			t.Errorf("job submit: %d %s", resp.StatusCode, out)
		}
	}()
	for i := 0; i < 20; i++ {
		resp, err := http.Get(ts.URL + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		var st statsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Mode != "single" || st.Workers != 2 {
			t.Fatalf("statsz %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
}
