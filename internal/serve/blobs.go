// Peer trace-blob transfer: captured traces move instead of re-emulating.
//
// The expensive artifact behind every arm is the captured dynamic trace
// (PR 4), already portable as a CRC-framed binary blob through the store
// codec. When membership changes re-route an arm to a worker that lacks
// the capture, re-emulating would waste exactly the work the trace layer
// exists to avoid — so the coordinator names the key's previous
// rendezvous owners in an X-Minigraph-Blob-Peers header on the
// /v1/outcome call, and the worker's engine fetches the blob from the
// first peer that has it (GET /v1/blobs/{traceKey}) before falling back
// to a fresh capture. Damage anywhere — truncation, bit flips, a
// half-dead peer — is caught by the frame CRC and degrades to
// re-capture, never to a wrong replay.
package serve

import (
	"context"
	"encoding/base64"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"minigraph/internal/sim"
)

// blobPeersHeader carries the ranked peer worker URLs an outcome call may
// fetch its trace blob from (comma-separated, set by the coordinator);
// blobBudgetHeader carries the per-peer fetch time budget in whole
// milliseconds. HTTP does not propagate the caller's deadline, so the
// coordinator ships the budget explicitly — a worker must never spend
// more of the arm's call timeout on one peer than the coordinator can
// afford before the capture fallback no longer fits.
const (
	blobPeersHeader  = "X-Minigraph-Blob-Peers"
	blobBudgetHeader = "X-Minigraph-Blob-Budget"
)

// maxBlobPeers caps how many previous owners the coordinator names (and a
// worker will try) per arm.
const maxBlobPeers = 3

// blobFetchTimeout bounds one peer blob download when the caller named no
// budget. Blobs are tens of MB on a local network; a peer that cannot
// deliver within this is treated as missing and the worker re-captures.
const blobFetchTimeout = 2 * time.Minute

// blobSources is what an outcome call may fetch its trace blob from.
type blobSources struct {
	peers []string
	// perPeer bounds one peer attempt (0 = blobFetchTimeout).
	perPeer time.Duration
}

// blobPeersCtxKey carries the blob sources through the engine's context
// into the trace fetcher.
type blobPeersCtxKey struct{}

func withBlobPeers(ctx context.Context, src blobSources) context.Context {
	if len(src.peers) == 0 {
		return ctx
	}
	return context.WithValue(ctx, blobPeersCtxKey{}, src)
}

func blobPeers(ctx context.Context) blobSources {
	src, _ := ctx.Value(blobPeersCtxKey{}).(blobSources)
	return src
}

func parseBlobPeers(r *http.Request) blobSources {
	h := r.Header.Get(blobPeersHeader)
	if h == "" {
		return blobSources{}
	}
	var src blobSources
	for _, p := range strings.Split(h, ",") {
		if p, err := normalizeWorkerURL(p); err == nil {
			src.peers = append(src.peers, p)
		}
		if len(src.peers) == maxBlobPeers {
			break
		}
	}
	if ms, err := strconv.Atoi(r.Header.Get(blobBudgetHeader)); err == nil && ms > 0 {
		src.perPeer = time.Duration(ms) * time.Millisecond
	}
	return src
}

// blobPath renders the URL path a trace blob is served under: the
// canonical TraceKey encoding, base64url so the JSON key survives as one
// path segment.
func blobPath(traceKey []byte) string {
	return "/v1/blobs/" + base64.RawURLEncoding.EncodeToString(traceKey)
}

// fetchTraceBlob is the sim.Engine trace-fetcher hook: when the request
// context names peer workers, try each in rendezvous order and return the
// first blob delivered. (nil, nil) when no peer is named or none answers —
// the engine then captures locally. The engine CRC-checks whatever comes
// back, so this layer only moves bytes.
//
// Each peer attempt is bounded by the caller-supplied per-peer budget
// (blobFetchTimeout when none): fetching a blob is an optimization over
// re-capturing, and a hung peer must not eat the arm's whole call budget
// — the capture fallback still has to fit before the coordinator times
// the worker out and marks it down.
func (s *Server) fetchTraceBlob(ctx context.Context, key sim.TraceKey) ([]byte, error) {
	src := blobPeers(ctx)
	if len(src.peers) == 0 {
		return nil, nil
	}
	kb, err := sim.EncodeTraceKey(key)
	if err != nil {
		return nil, nil
	}
	per := src.perPeer
	if per <= 0 || per > blobFetchTimeout {
		per = blobFetchTimeout
	}
	for _, peer := range src.peers {
		fctx, cancel := context.WithTimeout(ctx, per)
		data, err := NewClient(peer).TraceBlob(fctx, kb)
		cancel()
		if err == nil && len(data) > 0 {
			return data, nil
		}
		if ctx.Err() != nil {
			return nil, nil
		}
	}
	return nil, nil
}

// handleBlob serves GET /v1/blobs/{traceKey}: the encoded trace blob
// (store-codec bytes, CRC-framed) for the base64url canonical TraceKey in
// the path. 404 when this worker holds no valid copy — the asking peer
// falls back to its next source or to capturing.
func (s *Server) handleBlob(w http.ResponseWriter, r *http.Request) {
	raw, err := base64.RawURLEncoding.DecodeString(r.PathValue("traceKey"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad trace key encoding: %w", err))
		return
	}
	key, err := sim.DecodeTraceKey(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad trace key: %w", err))
		return
	}
	data, ok := s.eng.TraceBlob(key)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("trace blob not resident on this worker"))
		return
	}
	if s.chaos != nil {
		s.chaos.blobDelay()
		if s.chaos.dropBlob() {
			panic(http.ErrAbortHandler) // peer dies mid-transfer
		}
		// A corrupted blob must be caught by the frame CRC on arrival.
		data = s.chaos.corruptBlob(data)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	_, _ = w.Write(data)
}
