// Peer trace-blob transfer: captured traces move instead of re-emulating.
//
// The expensive artifact behind every arm is the captured dynamic trace
// (PR 4), portable in chunked form through the trace codec. When
// membership changes re-route an arm to a worker that lacks the capture,
// re-emulating would waste exactly the work the trace layer exists to
// avoid — so the coordinator names the key's previous rendezvous owners
// in an X-Minigraph-Blob-Peers header on the /v1/outcome call, and the
// worker's engine streams the trace from those peers before falling back
// to a fresh capture: first the manifest (GET /v1/blobs/{traceKey}
// ?manifest=1), then each chunk it names (?chunk=N), each request under
// its own time budget. Transfer state survives peer failure — chunks
// already fetched are kept and the next peer supplies only what is
// missing — and damage is rejected per chunk: a bit-flipped or truncated
// chunk frame fails its CRC against the manifest and only that chunk is
// re-sourced, never the whole trace. If no peer set can complete the
// manifest, the worker re-captures; wrong bytes can never replay.
package serve

import (
	"context"
	"encoding/base64"
	"fmt"
	"hash/crc32"
	"net/http"
	"strconv"
	"strings"
	"time"

	"minigraph/internal/sim"
	"minigraph/internal/trace"
)

// blobPeersHeader carries the ranked peer worker URLs an outcome call may
// fetch its trace blob from (comma-separated, set by the coordinator);
// blobBudgetHeader carries the per-peer fetch time budget in whole
// milliseconds. HTTP does not propagate the caller's deadline, so the
// coordinator ships the budget explicitly — a worker must never spend
// more of the arm's call timeout on one peer than the coordinator can
// afford before the capture fallback no longer fits.
const (
	blobPeersHeader  = "X-Minigraph-Blob-Peers"
	blobBudgetHeader = "X-Minigraph-Blob-Budget"
)

// maxBlobPeers caps how many previous owners the coordinator names (and a
// worker will try) per arm.
const maxBlobPeers = 3

// blobFetchTimeout bounds one peer transfer request (manifest or chunk)
// when the caller named no budget. Chunks are a few MB on a local
// network; a peer that cannot deliver one within this is treated as
// unusable and the transfer resumes from the next peer.
const blobFetchTimeout = 2 * time.Minute

// blobSources is what an outcome call may fetch its trace blob from.
type blobSources struct {
	peers []string
	// perPeer bounds one peer attempt (0 = blobFetchTimeout).
	perPeer time.Duration
}

// blobPeersCtxKey carries the blob sources through the engine's context
// into the trace fetcher.
type blobPeersCtxKey struct{}

func withBlobPeers(ctx context.Context, src blobSources) context.Context {
	if len(src.peers) == 0 {
		return ctx
	}
	return context.WithValue(ctx, blobPeersCtxKey{}, src)
}

func blobPeers(ctx context.Context) blobSources {
	src, _ := ctx.Value(blobPeersCtxKey{}).(blobSources)
	return src
}

func parseBlobPeers(r *http.Request) blobSources {
	h := r.Header.Get(blobPeersHeader)
	if h == "" {
		return blobSources{}
	}
	var src blobSources
	for _, p := range strings.Split(h, ",") {
		if p, err := normalizeWorkerURL(p); err == nil {
			src.peers = append(src.peers, p)
		}
		if len(src.peers) == maxBlobPeers {
			break
		}
	}
	if ms, err := strconv.Atoi(r.Header.Get(blobBudgetHeader)); err == nil && ms > 0 {
		src.perPeer = time.Duration(ms) * time.Millisecond
	}
	return src
}

// blobPath renders the URL path a trace blob is served under: the
// canonical TraceKey encoding, base64url so the JSON key survives as one
// path segment.
func blobPath(traceKey []byte) string {
	return "/v1/blobs/" + base64.RawURLEncoding.EncodeToString(traceKey)
}

// fetchedChunks is the resumable state of one chunked peer transfer: the
// manifest (once any peer delivered it) and the verified raw chunk
// payloads collected so far. It doubles as the ChunkSource the assembled
// trace encodes from.
type fetchedChunks [][]byte

func (f fetchedChunks) FetchChunk(index int64) ([]byte, error) {
	return f[index], nil
}

// fetchTraceBlob is the sim.Engine trace-fetcher hook: when the request
// context names peer workers, stream the trace from them chunk by chunk
// and return it assembled as the monolithic blob the engine adopts.
// (nil, nil) when no peer is named or the chunk set cannot be completed —
// the engine then captures locally.
//
// The transfer walks peers in rendezvous order: the first to deliver a
// decodable manifest fixes the chunk plan, then chunks are pulled from
// the current peer until it errors (move on) or the set completes.
// Chunks already fetched and verified are never re-fetched — a peer that
// dies mid-transfer costs only its remaining chunks, which the next peer
// resumes. A damaged chunk (frame CRC, index, or manifest-checksum
// mismatch) is rejected individually and left for the next source.
//
// Every request — manifest or chunk — is bounded by the caller-supplied
// per-request budget (blobFetchTimeout when none): fetching is an
// optimization over re-capturing, and a hung peer must not eat the arm's
// whole call budget — the capture fallback still has to fit before the
// coordinator times the worker out and marks it down.
func (s *Server) fetchTraceBlob(ctx context.Context, key sim.TraceKey) ([]byte, error) {
	src := blobPeers(ctx)
	if len(src.peers) == 0 {
		return nil, nil
	}
	kb, err := sim.EncodeTraceKey(key)
	if err != nil {
		return nil, nil
	}
	per := src.perPeer
	if per <= 0 || per > blobFetchTimeout {
		per = blobFetchTimeout
	}
	bounded := func(fetch func(context.Context) ([]byte, error)) ([]byte, error) {
		fctx, cancel := context.WithTimeout(ctx, per)
		defer cancel()
		return fetch(fctx)
	}

	var m trace.Manifest
	var haveManifest bool
	var chunks fetchedChunks
	damaged := false // saw bytes that failed verification (vs transport-only failure)
	for _, peer := range src.peers {
		if ctx.Err() != nil {
			return nil, nil
		}
		cl := NewClient(peer)
		if !haveManifest {
			data, err := bounded(func(fctx context.Context) ([]byte, error) {
				return cl.TraceManifest(fctx, kb)
			})
			if err != nil || len(data) == 0 {
				continue
			}
			mm, err := trace.DecodeManifest(data)
			if err != nil {
				damaged = true
				continue // damaged manifest: next peer
			}
			m = mm
			haveManifest = true
			chunks = make(fetchedChunks, len(m.Chunks))
		}
		complete := true
		for i := range chunks {
			if chunks[i] != nil {
				continue // fetched earlier: resume, don't re-pull
			}
			data, err := bounded(func(fctx context.Context) ([]byte, error) {
				return cl.TraceChunk(fctx, kb, int64(i))
			})
			if err != nil {
				complete = false
				break // peer unusable: resume remaining chunks from the next
			}
			idx, raw, err := trace.DecodeChunk(data)
			if err != nil || idx != int64(i) ||
				int64(len(raw)) != m.Chunks[i].Rows*trace.RecordBytes ||
				crc32.ChecksumIEEE(raw) != m.Chunks[i].CRC {
				damaged = true
				complete = false
				continue // this chunk is damaged; others may still be good
			}
			chunks[i] = raw
		}
		if haveManifest && complete {
			tr, err := trace.FromManifest(m, chunks)
			if err != nil {
				return nil, fmt.Errorf("serve: assemble fetched trace: %w", err)
			}
			blob, err := trace.Encode(tr)
			if err != nil {
				return nil, fmt.Errorf("serve: encode fetched trace: %w", err)
			}
			return blob, nil
		}
	}
	if damaged {
		// Distinguish "a peer served bytes that failed verification" (the
		// engine counts it as a peer reject) from "no peer had the trace".
		return nil, fmt.Errorf("serve: peer trace transfer rejected: damaged manifest or chunk")
	}
	return nil, nil
}

// handleBlob serves GET /v1/blobs/{traceKey} for the base64url canonical
// TraceKey in the path, in three forms: ?manifest=1 returns the trace's
// chunk manifest (trace manifest codec), ?chunk=N returns chunk N's frame
// (trace chunk codec), and the bare path returns the whole trace as one
// monolithic blob — kept for tooling, but peers stream chunk by chunk.
// 404 when this worker holds no valid copy of what was asked — per chunk,
// so a peer missing (or holding a damaged copy of) one chunk still serves
// the rest and the asker fills the hole elsewhere. Chaos injection
// applies per request: with chunk streaming, a dropped connection or
// corrupted payload costs the asker one chunk retry, not the transfer.
func (s *Server) handleBlob(w http.ResponseWriter, r *http.Request) {
	raw, err := base64.RawURLEncoding.DecodeString(r.PathValue("traceKey"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad trace key encoding: %w", err))
		return
	}
	key, err := sim.DecodeTraceKey(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad trace key: %w", err))
		return
	}
	var data []byte
	var ok bool
	q := r.URL.Query()
	switch {
	case q.Get("manifest") != "":
		data, ok = s.eng.TraceManifest(key)
	case q.Get("chunk") != "":
		n, err := strconv.ParseInt(q.Get("chunk"), 10, 64)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad chunk index %q", q.Get("chunk")))
			return
		}
		data, ok = s.eng.TraceChunk(key, n)
	default:
		data, ok = s.eng.TraceBlob(key)
	}
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("trace blob not resident on this worker"))
		return
	}
	if s.chaos != nil {
		s.chaos.blobDelay()
		if s.chaos.dropBlob() {
			panic(http.ErrAbortHandler) // peer dies mid-transfer
		}
		// A corrupted payload must be caught by the frame CRC on arrival.
		data = s.chaos.corruptBlob(data)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	_, _ = w.Write(data)
}
