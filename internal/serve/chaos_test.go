package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"minigraph/internal/sim"
)

// chaosSweep is a small sweep with multiple arms per trace identity, so
// re-routed arms have blobs worth fetching.
func chaosSweep() SweepRequest {
	req := SweepRequest{Name: "chaos", Title: "chaos sweep"}
	for _, b := range []string{"sha", "adpcm.enc"} {
		for i, spec := range []JobSpec{
			{Baseline: true, Machine: "baseline"},
			{},
			{Entries: 128},
		} {
			spec.Bench = b
			spec.MaxRecords = 3000
			spec.Arm = fmt.Sprintf("%s/v%d", b, i)
			req.Jobs = append(req.Jobs, spec)
		}
	}
	return req
}

// chaosWorker builds a worker server with a chaos injector on its blob
// path and returns it with its test listener.
func chaosWorker(t *testing.T, chaos *Chaos) (*Server, *httptest.Server) {
	t.Helper()
	srv := mustNew(t, Options{Engine: sim.New(2), Chaos: chaos})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// runChaosTier runs chaosSweep over a dynamic two-worker tier where the
// second worker joins only after the first has captured everything — so
// every arm the join re-routes must fetch (or fail to fetch) its blob
// from worker 1, whose blob path runs under the given chaos injector.
// Returns the sweep report bytes and the two worker servers.
func runChaosTier(t *testing.T, chaos *Chaos) ([]byte, *Server, *Server) {
	t.Helper()
	ctx := context.Background()
	req := chaosSweep()

	w1, ts1 := chaosWorker(t, chaos)
	w2, ts2 := chaosWorker(t, nil)

	csrv := mustNew(t, Options{
		Engine:      sim.New(2),
		Coordinator: true,
		MemberTTL:   time.Minute,
		// One arm in flight at a time, so the membership flip between the
		// two sweeps below cleanly separates "capture" from "re-route".
		FanoutConcurrency: 1,
		// Short call timeout keeps the per-peer blob budget (a fifth of
		// it) small, so a delayed peer is abandoned quickly.
		WorkerCallTimeout: 30 * time.Second,
	})
	cts := httptest.NewServer(csrv)
	t.Cleanup(func() {
		cts.Close()
		csrv.Close()
	})
	cl := NewClient(cts.URL)

	// Warm pass: only w1 is registered, so it captures every trace.
	if _, err := cl.RegisterWorker(ctx, ts1.URL); err != nil {
		t.Fatal(err)
	}
	warm, err := cl.SweepJSON(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// Flip membership: w2 joins, w1 expires. Every arm now routes to w2,
	// which holds nothing — each trace identity triggers a blob fetch
	// from w1 (named as previous owner), through the chaos injector.
	if _, err := cl.RegisterWorker(ctx, ts2.URL); err != nil {
		t.Fatal(err)
	}
	csrv.coord.members.expireForTest(ts1.URL)

	got, err := cl.SweepJSON(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, warm) {
		t.Fatalf("re-routed sweep under chaos differs from warm sweep:\n%s\nvs\n%s", got, warm)
	}
	if n := w2.eng.Stats().PipelineSims(); n == 0 {
		t.Fatal("joined worker ran nothing; membership flip did not re-route")
	}
	return warm, w1, w2
}

// TestChaosBlobDropsRecapture: every peer blob fetch dies mid-transfer.
// The re-routed worker must fall back to capturing locally and the report
// must not change.
func TestChaosBlobDropsRecapture(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine tier; skipped in -short")
	}
	chaos := NewChaos(ChaosConfig{BlobDrop: 1, Seed: 1})
	_, _, w2 := runChaosTier(t, chaos)
	if chaos.Counters().BlobDrops == 0 {
		t.Fatal("no blob transfers were dropped; the chaos path was not exercised")
	}
	st := w2.eng.Stats()
	if st.TracePeerHits != 0 {
		t.Errorf("worker adopted %d blobs although every transfer was dropped", st.TracePeerHits)
	}
	if st.TraceCaptures == 0 {
		t.Error("worker never fell back to capturing")
	}
}

// TestChaosBlobCorruptionRejected: every served blob has one bit flipped.
// The frame CRC must reject each transfer (TracePeerRejects) and the
// worker re-captures; the report must not change.
func TestChaosBlobCorruptionRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine tier; skipped in -short")
	}
	chaos := NewChaos(ChaosConfig{BlobCorrupt: 1, Seed: 2})
	_, _, w2 := runChaosTier(t, chaos)
	if chaos.Counters().BlobCorrupts == 0 {
		t.Fatal("no blobs were corrupted; the chaos path was not exercised")
	}
	st := w2.eng.Stats()
	if st.TracePeerRejects == 0 {
		t.Error("corrupted blobs were not rejected by the frame CRC")
	}
	if st.TracePeerHits != 0 {
		t.Errorf("worker adopted %d corrupted blobs", st.TracePeerHits)
	}
	if st.TraceCaptures == 0 {
		t.Error("worker never fell back to capturing")
	}
}

// TestChaosBlobDelayWithinBudget: delayed (but not hung) peers still
// deliver; the report must not change and transfers still land.
func TestChaosBlobDelayWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine tier; skipped in -short")
	}
	chaos := NewChaos(ChaosConfig{BlobDelayP: 1, Delay: 50 * time.Millisecond, Seed: 3})
	_, _, w2 := runChaosTier(t, chaos)
	if chaos.Counters().BlobDelays == 0 {
		t.Fatal("no blob transfers were delayed; the chaos path was not exercised")
	}
	st := w2.eng.Stats()
	if st.TracePeerHits == 0 {
		t.Error("delayed transfers should still deliver blobs within the budget")
	}
}

// TestChaosCountersInStatsz: an attached chaos injector's counters are
// visible through /statsz.
func TestChaosCountersInStatsz(t *testing.T) {
	chaos := NewChaos(ChaosConfig{BlobDrop: 1, Seed: 4})
	chaos.dropBlob() // fire one fault directly
	_, ts := chaosWorker(t, chaos)

	resp, body := getBody(t, ts.URL+"/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /statsz: %d: %s", resp.StatusCode, body)
	}
	var stats struct {
		Chaos *ChaosCounters `json:"chaos"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Chaos == nil || stats.Chaos.BlobDrops != 1 {
		t.Errorf("statsz chaos counters = %+v, want one blob drop", stats.Chaos)
	}
}
