package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"minigraph/internal/sim"
	"minigraph/internal/store"
)

// newJobServer builds a serve.Server (engine workers as given, store
// rooted at dir when non-empty) plus an httptest front end and a client.
// The returned stop function shuts both down; tests that simulate a
// restart call it explicitly and build a second server over the same dir.
func newJobServer(t *testing.T, dir string, engineWorkers int, o Options) (*Client, func()) {
	t.Helper()
	eng := sim.New(engineWorkers)
	if dir != "" {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		eng.WithStore(st)
	}
	o.Engine = eng
	srv := mustNew(t, o)
	ts := httptest.NewServer(srv)
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ts.Close()
		srv.Close()
	}
	t.Cleanup(stop)
	return NewClient(ts.URL), stop
}

func fastSweep(name string) SweepRequest {
	return SweepRequest{
		Name:  name,
		Title: "async " + name,
		Jobs: []JobSpec{
			fastSpec("sha/base", true),
			fastSpec("sha/mg", false),
			{Arm: "adpcm/base", Bench: "adpcm.enc", Baseline: true, Machine: "baseline", MaxRecords: 3000},
		},
	}
}

func TestJobLifecycle(t *testing.T) {
	c, _ := newJobServer(t, "", 2, Options{})
	ctx := context.Background()
	req := fastSweep("life")

	// The synchronous endpoint is the byte-exactness reference.
	want, err := c.SweepJSON(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// Submission returns 202 and a queued/running status immediately.
	resp, out := postJSON(t, c.BaseURL()+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, out)
	}
	var st JobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != JobQueued || st.Total != 3 {
		t.Fatalf("submit response %+v", st)
	}

	fin, err := c.WaitJob(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != JobDone || fin.Completed != 3 || fin.FinishedUnix == 0 || fin.Error != "" {
		t.Fatalf("final status %+v", fin)
	}
	if fin.Report == nil || fin.Report.Name != "life" {
		t.Fatalf("status report %+v", fin.Report)
	}

	// The raw report endpoint is byte-identical to the sync sweep.
	got, err := c.JobReportJSON(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("async report differs from sync sweep\nasync:\n%s\nsync:\n%s", got, want)
	}

	// Listing shows the job without embedding the report.
	list, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID || list[0].Report != nil {
		t.Fatalf("list %+v", list)
	}

	// Cancel after completion is an idempotent no-op.
	if st2, err := c.CancelJob(ctx, st.ID); err != nil || st2.State != JobDone {
		t.Fatalf("cancel-after-done: %+v, %v", st2, err)
	}

	// Unknown ids 404 through both endpoints.
	var se *StatusError
	if _, err := c.Job(ctx, "j-missing"); !errors.As(err, &se) || se.Status != http.StatusNotFound {
		t.Errorf("unknown job: %v", err)
	}
	if _, err := c.JobReportJSON(ctx, "j-missing"); !errors.As(err, &se) || se.Status != http.StatusNotFound {
		t.Errorf("unknown report: %v", err)
	}
}

func TestJobSubmitValidation(t *testing.T) {
	c, _ := newJobServer(t, "", 2, Options{})
	cases := []SweepRequest{
		{},                                    // no jobs
		{Jobs: []JobSpec{{Bench: "no-such"}}}, // bad bench
		{Jobs: []JobSpec{fastSpec("x", true), fastSpec("x", false)}}, // dup arm
	}
	for i, req := range cases {
		resp, out := postJSON(t, c.BaseURL()+"/v1/jobs", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d body %s", i, resp.StatusCode, out)
		}
	}
}

// TestJobCancelRunning: DELETE on a running job cancels its context; the
// job lands in canceled with partial progress, and its report endpoint
// answers 409.
func TestJobCancelRunning(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run sweep; skipped in -short")
	}
	c, _ := newJobServer(t, "", 1, Options{})
	ctx := context.Background()
	st, err := c.SubmitJob(ctx, slowSweep(16))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, st.ID, JobRunning)
	if _, err := c.CancelJob(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := c.WaitJob(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != JobCanceled {
		t.Fatalf("state %q after cancel", fin.State)
	}
	if fin.Completed >= fin.Total {
		t.Errorf("canceled job claims %d/%d arms", fin.Completed, fin.Total)
	}
	var se *StatusError
	if _, err := c.JobReportJSON(ctx, st.ID); !errors.As(err, &se) || se.Status != http.StatusConflict {
		t.Errorf("report of canceled job: %v", err)
	}
}

// TestJobQueueBounded: the run queue applies back-pressure — beyond its
// capacity, submissions fail fast with 503 instead of growing an
// unbounded backlog.
func TestJobQueueBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run sweeps; skipped in -short")
	}
	c, _ := newJobServer(t, "", 1, Options{JobQueue: 1, JobRunners: 1})
	ctx := context.Background()
	var full bool
	var ids []string
	for i := 0; i < 4; i++ {
		st, err := c.SubmitJob(ctx, slowSweep(16))
		if err != nil {
			var se *StatusError
			if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
				t.Fatalf("submit %d: %v", i, err)
			}
			full = true
			continue
		}
		ids = append(ids, st.ID)
	}
	if !full {
		t.Error("queue of 1 absorbed 4 jobs without back-pressure")
	}
	for _, id := range ids {
		if _, err := c.CancelJob(ctx, id); err != nil {
			t.Error(err)
		}
	}
}

func waitForState(t *testing.T, c *Client, id string, want JobState) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s reached %q while waiting for %q", id, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobPersistsAcrossRestart is the durability acceptance test: a job
// submitted before a server restart is observable after it — a finished
// job keeps its (byte-identical) report, and an interrupted job is
// requeued and re-run rather than silently lost.
func TestJobPersistsAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run sweeps; skipped in -short")
	}
	dir := t.TempDir()
	ctx := context.Background()

	// Server 1: run a job to completion, then "crash".
	c1, stop1 := newJobServer(t, dir, 1, Options{})
	req := fastSweep("durable")
	st, err := c1.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.WaitJob(ctx, st.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	doneReport, err := c1.JobReportJSON(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	stop1()

	// Server 2: the finished job survived with its report intact. Then
	// start a long job and shut down while it runs.
	c2, stop2 := newJobServer(t, dir, 1, Options{})
	got, err := c2.Job(ctx, st.ID)
	if err != nil {
		t.Fatalf("finished job lost across restart: %v", err)
	}
	if got.State != JobDone || got.Requeues != 0 {
		t.Fatalf("restarted status %+v", got)
	}
	if rep, err := c2.JobReportJSON(ctx, st.ID); err != nil || !bytes.Equal(rep, doneReport) {
		t.Fatalf("restarted report differs: %v\n%s", err, rep)
	}

	slow := slowSweep(16)
	// Distinct record limits give every arm its own TraceKey: the arms
	// cannot gang, so they complete one at a time on the 1-worker engine
	// and the poll below can observe the job mid-flight. (Ganged arms
	// advance in lockstep and all complete together at the end, leaving no
	// partial-progress window to interrupt.)
	for i := range slow.Jobs {
		slow.Jobs[i].MaxRecords = int64(4_000_000 + i)
	}
	st2, err := c2.SubmitJob(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	running := waitForState(t, c2, st2.ID, JobRunning)
	for running.Completed == 0 {
		time.Sleep(10 * time.Millisecond)
		if running, err = c2.Job(ctx, st2.ID); err != nil {
			t.Fatal(err)
		}
		if running.State.Terminal() {
			t.Fatalf("slow job finished too fast to interrupt: %+v", running)
		}
	}
	stop2() // mid-sweep shutdown: the job must persist as requeueable

	// Server 3: the interrupted job is re-adopted, re-run, and completes
	// with a report byte-identical to the synchronous sweep.
	c3, _ := newJobServer(t, dir, 1, Options{})
	adopted, err := c3.Job(ctx, st2.ID)
	if err != nil {
		t.Fatalf("interrupted job lost across restart: %v", err)
	}
	if adopted.State.Terminal() && adopted.State != JobDone {
		t.Fatalf("adopted state %+v", adopted)
	}
	if adopted.Requeues != 1 {
		t.Errorf("requeues %d, want 1", adopted.Requeues)
	}
	fin, err := c3.WaitJob(ctx, st2.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != JobDone || fin.Completed != fin.Total {
		t.Fatalf("requeued job final status %+v", fin)
	}
	want, err := c3.SweepJSON(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	gotRep, err := c3.JobReportJSON(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotRep, want) {
		t.Fatalf("requeued report differs from sync sweep\nasync:\n%s\nsync:\n%s", gotRep, want)
	}
}

// TestJobPruneDeletesPersistedRecords: beyond maxTrackedJobs the oldest
// finished jobs are forgotten everywhere — memory, index, and their
// persisted records — so pruned reports do not leak into the store.
func TestJobPruneDeletesPersistedRecords(t *testing.T) {
	old := maxTrackedJobs
	maxTrackedJobs = 2
	defer func() { maxTrackedJobs = old }()

	dir := t.TempDir()
	c, _ := newJobServer(t, dir, 2, Options{})
	ctx := context.Background()
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := c.SubmitJob(ctx, fastSweep(fmt.Sprintf("p%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.WaitJob(ctx, st.ID, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	// The third submission pruned the first (finished) job.
	var se *StatusError
	if _, err := c.Job(ctx, ids[0]); !errors.As(err, &se) || se.Status != http.StatusNotFound {
		t.Errorf("pruned job still served: %v", err)
	}
	if _, err := c.Job(ctx, ids[2]); err != nil {
		t.Errorf("latest job lost: %v", err)
	}

	// A fresh store handle sees neither the record nor the index entry.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := loadJobRecord(st2, ids[0]); ok {
		t.Error("pruned job's persisted record still in the store")
	}
	idx := loadJobIndex(st2)
	for _, id := range idx {
		if id == ids[0] {
			t.Errorf("pruned id still indexed: %v", idx)
		}
	}
	if len(idx) != 2 {
		t.Errorf("index %v, want the 2 surviving ids", idx)
	}
}

// TestJobCancelQueuedFreesSlot: DELETE on a queued job releases its queue
// slot immediately — back-pressure reflects jobs actually waiting, not
// canceled husks.
func TestJobCancelQueuedFreesSlot(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run sweeps; skipped in -short")
	}
	c, _ := newJobServer(t, "", 1, Options{JobQueue: 1, JobRunners: 1})
	ctx := context.Background()
	a, err := c.SubmitJob(ctx, slowSweep(16)) // occupies the runner
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, a.ID, JobRunning)
	b, err := c.SubmitJob(ctx, fastSweep("b")) // fills the 1-slot queue
	if err != nil {
		t.Fatal(err)
	}
	var se *StatusError
	if _, err := c.SubmitJob(ctx, fastSweep("c")); !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("overfull queue accepted a job: %v", err)
	}
	if st, err := c.CancelJob(ctx, b.ID); err != nil || st.State != JobCanceled {
		t.Fatalf("cancel queued: %+v, %v", st, err)
	}
	d, err := c.SubmitJob(ctx, fastSweep("d"))
	if err != nil {
		t.Fatalf("slot not freed by canceling a queued job: %v", err)
	}
	for _, id := range []string{a.ID, d.ID} {
		if _, err := c.CancelJob(ctx, id); err != nil {
			t.Error(err)
		}
	}
}

// flippableWorker aborts every connection until revived, then serves as a
// normal worker — a worker process that is down during a tier restart and
// comes back.
type flippableWorker struct {
	srv *Server
	up  atomic.Bool
}

func (f *flippableWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !f.up.Load() {
		panic(http.ErrAbortHandler)
	}
	f.srv.ServeHTTP(w, r)
}

// TestJobRetriesWhileWorkersDown: a job whose arms find no worker
// answering is requeued with a delay instead of failing terminally, and
// completes once the tier comes back.
func TestJobRetriesWhileWorkersDown(t *testing.T) {
	oldBase, oldMax := jobRetryBase, jobRetryMaxDelay
	jobRetryBase, jobRetryMaxDelay = 10*time.Millisecond, 100*time.Millisecond
	defer func() { jobRetryBase, jobRetryMaxDelay = oldBase, oldMax }()

	wsrv := mustNew(t, Options{Engine: sim.New(2)})
	fw := &flippableWorker{srv: wsrv}
	wts := httptest.NewServer(fw)
	t.Cleanup(func() {
		wts.Close()
		wsrv.Close()
	})

	csrv := mustNew(t, Options{Engine: sim.New(2), Workers: []string{wts.URL}})
	cts := httptest.NewServer(csrv)
	t.Cleanup(func() {
		cts.Close()
		csrv.Close()
	})
	c := NewClient(cts.URL)
	ctx := context.Background()

	st, err := c.SubmitJob(ctx, fastSweep("tier-restart"))
	if err != nil {
		t.Fatal(err)
	}
	// Let it fail against the dead tier at least once, then revive.
	deadline := time.Now().Add(15 * time.Second)
	for {
		got, err := c.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == JobFailed {
			t.Fatalf("job failed terminally during tier outage: %+v", got)
		}
		if got.Retries >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never retried: %+v", got)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fw.up.Store(true)
	fin, err := c.WaitJob(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != JobDone || fin.Retries < 1 {
		t.Fatalf("final status %+v", fin)
	}
}

// TestJobRetryBackoffGrowth pins the retry pacing: deterministic doubling
// from jobRetryBase capped at jobRetryMaxDelay, and — end to end — the
// jittered per-job delays recorded against a dead tier strictly grow.
func TestJobRetryBackoffGrowth(t *testing.T) {
	for retry, want := range map[int]time.Duration{
		1:  500 * time.Millisecond,
		2:  time.Second,
		3:  2 * time.Second,
		6:  16 * time.Second,
		7:  30 * time.Second, // 32s capped
		50: 30 * time.Second,
	} {
		if got := jobRetryBackoff(retry); got != want {
			t.Errorf("jobRetryBackoff(%d) = %s, want %s", retry, got, want)
		}
	}

	oldBase, oldMax, oldRetries := jobRetryBase, jobRetryMaxDelay, maxJobRetries
	jobRetryBase, jobRetryMaxDelay, maxJobRetries = 10*time.Millisecond, 10*time.Second, 3
	defer func() { jobRetryBase, jobRetryMaxDelay, maxJobRetries = oldBase, oldMax, oldRetries }()

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // nothing listens here any more
	csrv := mustNew(t, Options{Engine: sim.New(2), Workers: []string{dead.URL}})
	cts := httptest.NewServer(csrv)
	t.Cleanup(func() {
		cts.Close()
		csrv.Close()
	})
	c := NewClient(cts.URL)
	ctx := context.Background()

	st, err := c.SubmitJob(ctx, fastSweep("backoff"))
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.WaitJob(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != JobFailed || fin.Retries != 3 {
		t.Fatalf("job against a dead tier: %+v", fin)
	}

	csrv.jobs.mu.Lock()
	delays := append([]time.Duration(nil), csrv.jobs.jobs[st.ID].retryDelays...)
	csrv.jobs.mu.Unlock()
	if len(delays) != 3 {
		t.Fatalf("recorded %d retry delays, want 3: %v", len(delays), delays)
	}
	for i, d := range delays {
		base := jobRetryBackoff(i + 1)
		if d < base || d > base+base/2 {
			t.Errorf("retry %d delay %s outside [%s, %s]", i+1, d, base, base+base/2)
		}
		if i > 0 && d <= delays[i-1] {
			t.Errorf("retry delays not growing: %v", delays)
		}
	}
}
