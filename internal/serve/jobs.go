// Async job API: sweeps as first-class, durable, cancelable jobs.
//
// POST /v1/jobs accepts the same SweepRequest as /v1/sweep but returns a
// job id immediately; the sweep runs on a bounded in-process queue, with
// per-job context cancellation threaded into the engine (or coordinator).
// GET /v1/jobs/{id} polls status and per-arm progress; once done,
// GET /v1/jobs/{id}/report serves the raw Report JSON byte-identical to
// the synchronous endpoint. DELETE /v1/jobs/{id} cancels.
//
// When the engine carries a persistent store, job state rides in it under
// a versioned codec entry: every transition (queued → running → terminal)
// writes through, and a restarted server re-adopts the stored jobs —
// finished ones stay observable with their reports, interrupted ones are
// requeued and re-run. A submitted job therefore survives restarts as
// long as its record survives in the store. The store is an LRU cache
// with a byte budget: every job transition refreshes the recency of the
// job's record and of the id index, so live jobs ride at the MRU end,
// but an operator who sizes -cache-max-bytes far below the working set
// can still lose cold job history to eviction — size the budget so job
// records (small) and the sweep artifacts (large) both fit. (Re-running
// a requeued job is safe and cheap: results are pure functions of their
// keys, and the store answers previously computed arms without touching
// the pipeline.)
package serve

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"minigraph/internal/sim"
	"minigraph/internal/store"
)

const (
	// DefaultJobQueue bounds jobs waiting to run; submissions beyond it
	// are refused with 503 so back-pressure reaches the client instead of
	// growing an unbounded in-process backlog.
	DefaultJobQueue = 64
	// DefaultJobRunners is the number of jobs executed concurrently. Each
	// job already parallelizes internally (engine worker pool, coordinator
	// fan-out), so a small number keeps the machine busy without convoying.
	DefaultJobRunners = 2
)

// maxTrackedJobs bounds the in-memory (and indexed) job history; beyond
// it the oldest finished jobs are forgotten, and their persisted records
// deleted. maxJobRetries bounds how often a job whose arms found no
// worker answering (tier restart, rolling deploy) is automatically
// requeued; jobRetryBase/jobRetryMaxDelay shape the exponential backoff
// pacing those retries. Variables so tests can exercise the machinery
// cheaply.
var (
	maxTrackedJobs   = 256
	maxJobRetries    = 5
	jobRetryBase     = 500 * time.Millisecond
	jobRetryMaxDelay = 30 * time.Second
)

// jobRetryBackoff is the deterministic delay before retry n (1-based):
// base, 2×base, 4×base, ... capped at jobRetryMaxDelay. The call site
// adds up to +50% random jitter so a fleet of requeued jobs does not
// hammer a rebooting worker tier in lockstep; since 1.5×d < 2×d the
// jittered sequence still grows monotonically.
func jobRetryBackoff(retry int) time.Duration {
	if retry < 1 {
		retry = 1
	}
	d := jobRetryBase
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= jobRetryMaxDelay {
			return jobRetryMaxDelay
		}
	}
	if d > jobRetryMaxDelay {
		d = jobRetryMaxDelay
	}
	return d
}

// JobState is the lifecycle state of an async job.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobStatus is the wire form of one async job (POST /v1/jobs and
// GET /v1/jobs/{id} responses).
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Total is the job's arm count; Completed counts finished arms while
	// running (progress) and equals Total once done.
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Error     string `json:"error,omitempty"`
	// Requeues counts how many times the job was re-adopted after a
	// server restart interrupted it; Retries counts automatic requeues
	// after every worker failed to answer (tier restart).
	Requeues     int   `json:"requeues,omitempty"`
	Retries      int   `json:"retries,omitempty"`
	CreatedUnix  int64 `json:"created_unix"`
	FinishedUnix int64 `json:"finished_unix,omitempty"`
	// Report is the finished sweep's report (GET /v1/jobs/{id} only; the
	// list endpoint omits it). For byte-exact bytes use
	// GET /v1/jobs/{id}/report.
	Report *sim.Report `json:"report,omitempty"`
}

// JobsStats summarizes the job manager for /statsz.
type JobsStats struct {
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
}

// job is the manager's in-memory record. All fields are guarded by the
// manager's mutex.
type job struct {
	id  string
	req SweepRequest
	// resolved is the submit-time resolution of req (nil for jobs
	// re-adopted from the store, which re-resolve at execution).
	resolved  []sim.SimJob
	state     JobState
	total     int
	completed int
	errMsg    string
	report    *sim.Report
	requeues  int
	retries   int
	// retryDelays records the jittered backoff chosen before each retry
	// (diagnostics; asserted monotonically growing by tests).
	retryDelays []time.Duration
	created     int64
	finished    int64
	cancel      context.CancelFunc // non-nil while running
	userAbort   bool               // DELETE requested (vs process shutdown)
}

// JobManager owns the async job lifecycle: a bounded pending queue, a
// fixed pool of job runners, per-job cancellation, and write-through
// persistence of job state.
type JobManager struct {
	srv      *Server
	st       *store.Store // nil = in-memory only
	baseCtx  context.Context
	stop     context.CancelFunc
	queueCap int
	wg       sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond // signals pending work / shutdown to runners
	pending []string   // ids awaiting a runner, oldest first
	jobs    map[string]*job
	order   []string // submission order, oldest first
	idxGen  int64    // bumps on every state snapshot that includes the index

	// idxMu serializes persisted-index writes outside m.mu; idxWritten is
	// the generation of the newest index flushed, so a stale snapshot
	// (flushed late by a slower goroutine) never overwrites a newer one.
	idxMu      sync.Mutex
	idxWritten int64
}

// errJobQueueFull reports a refused submission.
var errJobQueueFull = fmt.Errorf("job queue full; retry later")

// newJobManager builds the manager, re-adopts persisted jobs from the
// engine's store, and starts the runner pool.
func newJobManager(s *Server, queueCap, runners int) *JobManager {
	if queueCap <= 0 {
		queueCap = DefaultJobQueue
	}
	if runners <= 0 {
		runners = DefaultJobRunners
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &JobManager{
		srv:      s,
		st:       s.eng.Store(),
		baseCtx:  ctx,
		stop:     cancel,
		queueCap: queueCap,
		jobs:     make(map[string]*job),
	}
	m.cond = sync.NewCond(&m.mu)
	// A recovered backlog may exceed the submission bound; it drains
	// normally, applying 503 back-pressure to new submissions meanwhile.
	m.pending = m.recover()
	for i := 0; i < runners; i++ {
		m.wg.Add(1)
		go m.runLoop()
	}
	return m
}

// close stops the runners. A job aborted mid-run by shutdown is persisted
// back as queued (not canceled), so a restart re-adopts it.
func (m *JobManager) close() {
	m.stop()
	m.mu.Lock()
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}

// recover re-adopts persisted jobs: terminal jobs become observable
// history, interrupted (queued/running) jobs are reset to queued and
// returned for requeueing, oldest first.
func (m *JobManager) recover() []string {
	if m.st == nil {
		return nil
	}
	var requeue []string
	ids := loadJobIndex(m.st)
	for _, id := range ids {
		j, ok := loadJobRecord(m.st, id)
		if !ok {
			continue // evicted or damaged: drop from the index on next write
		}
		if !j.state.Terminal() {
			j.state = JobQueued
			j.completed = 0
			j.requeues++
			requeue = append(requeue, id)
		}
		m.jobs[id] = j
		m.order = append(m.order, id)
	}
	// Runners have not started yet, so flushing synchronously here is
	// uncontended.
	m.mu.Lock()
	var flushes []func()
	for _, id := range requeue {
		flushes = append(flushes, m.persistLocked(m.jobs[id]))
	}
	if len(flushes) == 0 && len(m.order) != len(ids) {
		flushes = append(flushes, m.persistIndexLocked()) // dropped ids changed the index
	}
	m.mu.Unlock()
	for _, flush := range flushes {
		flush()
	}
	return requeue
}

// submit registers and enqueues a new job. resolved is the submit-time
// resolution of req (the caller already validated it), reused at
// execution so the sweep is not resolved twice.
func (m *JobManager) submit(req SweepRequest, resolved []sim.SimJob) (JobStatus, error) {
	j := &job{
		id:       newJobID(),
		req:      req,
		resolved: resolved,
		state:    JobQueued,
		total:    len(resolved),
		created:  time.Now().Unix(),
	}
	m.mu.Lock()
	if len(m.pending) >= m.queueCap {
		m.mu.Unlock()
		return JobStatus{}, errJobQueueFull
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.pending = append(m.pending, j.id)
	pruned := m.pruneLocked()
	flush := m.persistLocked(j)
	st := statusOf(j, false)
	m.cond.Signal()
	m.mu.Unlock()

	for _, id := range pruned {
		if m.st != nil {
			m.st.Delete(jobKey(id))
		}
	}
	flush()
	return st, nil
}

// runLoop is one job runner: it pops queued jobs and executes them with a
// per-job cancelable context descending from the manager's lifetime.
func (m *JobManager) runLoop() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && m.baseCtx.Err() == nil {
			m.cond.Wait()
		}
		if m.baseCtx.Err() != nil {
			m.mu.Unlock()
			return
		}
		id := m.pending[0]
		m.pending = m.pending[1:]
		j := m.jobs[id]
		if j == nil || j.state != JobQueued {
			m.mu.Unlock() // pruned, or raced with a cancel
			continue
		}
		jctx, cancel := context.WithCancel(m.baseCtx)
		j.state = JobRunning
		j.cancel = cancel
		flush := m.persistLocked(j)
		req, resolved := j.req, j.resolved
		m.mu.Unlock()
		flush()

		rep, err := m.execute(jctx, req, resolved, j)
		cancel()

		m.mu.Lock()
		j.cancel = nil
		switch {
		case err == nil:
			j.state, j.report, j.completed = JobDone, rep, j.total
			j.finished = time.Now().Unix()
		case j.userAbort:
			j.state, j.errMsg = JobCanceled, "canceled"
			j.finished = time.Now().Unix()
		case m.baseCtx.Err() != nil:
			// Shutdown, not cancellation: persist as requeueable so a
			// restarted server picks the job back up.
			j.state, j.completed, j.errMsg = JobQueued, 0, ""
		case errors.Is(err, ErrWorkersUnavailable) && j.retries < maxJobRetries:
			// No worker answered — a tier restart or rolling deploy, not a
			// property of the job. Requeue under capped exponential backoff
			// (plus jitter) instead of failing terminally while the workers
			// boot.
			j.state, j.completed, j.errMsg = JobQueued, 0, ""
			j.retries++
			delay := jobRetryBackoff(j.retries)
			delay += time.Duration(rand.Int64N(int64(delay)/2 + 1))
			j.retryDelays = append(j.retryDelays, delay)
			m.requeueAfterLocked(id, delay)
		default:
			j.state, j.errMsg = JobFailed, err.Error()
			j.finished = time.Now().Unix()
		}
		flush = m.persistLocked(j)
		m.mu.Unlock()
		flush()
	}
}

// requeueAfterLocked schedules id back onto the pending queue after
// delay, unless the job is canceled or the manager shuts down first.
// Caller holds m.mu.
func (m *JobManager) requeueAfterLocked(id string, delay time.Duration) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		select {
		case <-time.After(delay):
		case <-m.baseCtx.Done():
			return // persisted as queued; a restart re-adopts it
		}
		m.mu.Lock()
		if j := m.jobs[id]; j != nil && j.state == JobQueued {
			m.pending = append(m.pending, id)
			m.cond.Signal()
		}
		m.mu.Unlock()
	}()
}

// execute runs the job's sweep and assembles its report. resolved is the
// submit-time resolution (nil for store-recovered jobs, which re-resolve
// here). Progress is published arm-by-arm through the manager's mutex.
func (m *JobManager) execute(ctx context.Context, req SweepRequest, resolved []sim.SimJob, j *job) (*sim.Report, error) {
	if resolved == nil {
		var err error
		if resolved, err = m.srv.resolveSweep(req); err != nil {
			return nil, err
		}
	}
	outs, err := m.srv.runSweep(ctx, req.Jobs, resolved, func(int, *sim.Outcome) {
		m.mu.Lock()
		j.completed++
		m.mu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	return SweepReport(req, outs), nil
}

// cancelJob requests cancellation. A queued job cancels immediately; a
// running one is signaled and finalizes from its runner; a terminal one is
// returned unchanged (cancel is idempotent).
func (m *JobManager) cancelJob(id string) (JobStatus, bool) {
	flush := func() {}
	m.mu.Lock()
	j := m.jobs[id]
	if j == nil {
		m.mu.Unlock()
		return JobStatus{}, false
	}
	if !j.state.Terminal() {
		j.userAbort = true
		if j.state == JobQueued {
			j.state, j.errMsg = JobCanceled, "canceled before start"
			j.finished = time.Now().Unix()
			// Free the queue slot immediately: a canceled job must not
			// hold 503 back-pressure until a runner happens to skip it.
			for i, id := range m.pending {
				if id == j.id {
					m.pending = append(m.pending[:i:i], m.pending[i+1:]...)
					break
				}
			}
			flush = m.persistLocked(j)
		} else if j.cancel != nil {
			j.cancel()
		}
	}
	st := statusOf(j, false)
	m.mu.Unlock()
	flush()
	return st, true
}

// status returns one job's wire status; withReport embeds the finished
// report.
func (m *JobManager) status(id string, withReport bool) (JobStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return JobStatus{}, false
	}
	return statusOf(j, withReport), true
}

// report returns a finished job's report.
func (m *JobManager) report(id string) (*sim.Report, JobState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, "", false
	}
	return j.report, j.state, true
}

// list returns every tracked job's status (no reports), oldest first.
func (m *JobManager) list() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	sts := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		if j := m.jobs[id]; j != nil {
			sts = append(sts, statusOf(j, false))
		}
	}
	return sts
}

// stats counts jobs by state.
func (m *JobManager) stats() JobsStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s JobsStats
	for _, j := range m.jobs {
		switch j.state {
		case JobQueued:
			s.Queued++
		case JobRunning:
			s.Running++
		case JobDone:
			s.Done++
		case JobFailed:
			s.Failed++
		case JobCanceled:
			s.Canceled++
		}
	}
	return s
}

// pruneLocked forgets the oldest finished jobs beyond maxTrackedJobs and
// returns their ids so the caller can delete the persisted records (after
// releasing m.mu) — pruned reports must not pile up in the store with no
// reachable reference. Live (queued/running) jobs are never pruned.
// Caller holds m.mu.
func (m *JobManager) pruneLocked() []string {
	var pruned []string
	for len(m.order) > maxTrackedJobs {
		found := false
		for i, id := range m.order {
			if j := m.jobs[id]; j == nil || j.state.Terminal() {
				delete(m.jobs, id)
				m.order = append(m.order[:i:i], m.order[i+1:]...)
				pruned = append(pruned, id)
				found = true
				break
			}
		}
		if !found {
			break // everything live: keep tracking all of it
		}
	}
	return pruned
}

func statusOf(j *job, withReport bool) JobStatus {
	st := JobStatus{
		ID:           j.id,
		State:        j.state,
		Total:        j.total,
		Completed:    j.completed,
		Error:        j.errMsg,
		Requeues:     j.requeues,
		Retries:      j.retries,
		CreatedUnix:  j.created,
		FinishedUnix: j.finished,
	}
	if withReport {
		st.Report = j.report
	}
	return st
}

func newJobID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("serve: job id entropy: %v", err))
	}
	return "j-" + hex.EncodeToString(b[:])
}

// --- persistence -----------------------------------------------------------

// jobCodecVersion versions the persisted job key and record encodings.
// Bump it on any shape change: stale entries then read as misses (jobs
// from an older server are forgotten, never decoded into garbage).
const jobCodecVersion = 1

// jobKeyPayload is the store key for one job (or, with no ID, the index).
type jobKeyPayload struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`
	ID   string `json:"id,omitempty"`
}

func jobKey(id string) []byte {
	b, err := json.Marshal(jobKeyPayload{V: jobCodecVersion, Kind: "job", ID: id})
	if err != nil {
		panic(err) // struct of strings: cannot fail
	}
	return b
}

func jobIndexKey() []byte {
	b, err := json.Marshal(jobKeyPayload{V: jobCodecVersion, Kind: "job-index"})
	if err != nil {
		panic(err)
	}
	return b
}

// jobRecord is the persisted form of one job.
type jobRecord struct {
	V            int          `json:"v"`
	ID           string       `json:"id"`
	State        JobState     `json:"state"`
	Total        int          `json:"total"`
	Completed    int          `json:"completed"`
	Error        string       `json:"error,omitempty"`
	Requeues     int          `json:"requeues,omitempty"`
	Retries      int          `json:"retries,omitempty"`
	CreatedUnix  int64        `json:"created_unix"`
	FinishedUnix int64        `json:"finished_unix,omitempty"`
	Request      SweepRequest `json:"request"`
	Report       *sim.Report  `json:"report,omitempty"`
}

// jobIndexRecord is the persisted list of tracked job ids. One well-known
// entry, rewritten on every submission/prune, so recovery never has to
// enumerate the (content-addressed) store.
type jobIndexRecord struct {
	V   int      `json:"v"`
	IDs []string `json:"ids"`
}

// persistLocked snapshots the job's current state (and the id index)
// under m.mu and returns a flush function that writes both through the
// store. Callers run the flush after releasing m.mu — store writes are
// disk I/O, and holding the manager mutex across them would stall every
// poll, submit, and progress callback. Store failures are never job
// failures — an unpersistable job simply won't survive a restart.
func (m *JobManager) persistLocked(j *job) func() {
	if m.st == nil {
		return func() {}
	}
	rec := jobRecord{
		V:            jobCodecVersion,
		ID:           j.id,
		State:        j.state,
		Total:        j.total,
		Completed:    j.completed,
		Error:        j.errMsg,
		Requeues:     j.requeues,
		Retries:      j.retries,
		CreatedUnix:  j.created,
		FinishedUnix: j.finished,
		Request:      j.req,
		Report:       j.report, // immutable once set; safe to share
	}
	flushIndex := m.persistIndexLocked()
	return func() {
		if data, err := json.Marshal(rec); err == nil {
			if m.st.Put(jobKey(rec.ID), data) != nil && rec.Report != nil {
				// A giant report can exceed the store budget and get the
				// whole record refused (and the stale previous state
				// dropped), which would requeue a finished job on every
				// restart. Fall back to a slim record: the terminal state
				// survives, the report does not.
				rec.Report = nil
				if data, err := json.Marshal(rec); err == nil {
					_ = m.st.Put(jobKey(rec.ID), data)
				}
			}
		}
		flushIndex()
	}
}

// persistIndexLocked snapshots the id index under m.mu and returns a
// flush that writes it through the store. Rewriting the index on every
// transition keeps it (and with it, job recoverability) at the MRU end of
// the store's LRU, so ordinary trace/outcome traffic does not age it out
// while jobs are active. A generation counter makes late flushes of stale
// snapshots no-ops.
func (m *JobManager) persistIndexLocked() func() {
	if m.st == nil {
		return func() {}
	}
	m.idxGen++
	gen := m.idxGen
	rec := jobIndexRecord{V: jobCodecVersion, IDs: append([]string(nil), m.order...)}
	return func() {
		m.idxMu.Lock()
		defer m.idxMu.Unlock()
		if gen <= m.idxWritten {
			return // a newer snapshot already flushed
		}
		m.idxWritten = gen
		if data, err := json.Marshal(rec); err == nil {
			_ = m.st.Put(jobIndexKey(), data)
		}
	}
}

// loadJobIndex reads the persisted id index (empty on any damage).
func loadJobIndex(st *store.Store) []string {
	data, ok := st.Get(jobIndexKey())
	if !ok {
		return nil
	}
	var rec jobIndexRecord
	if err := json.Unmarshal(data, &rec); err != nil || rec.V != jobCodecVersion {
		return nil
	}
	return rec.IDs
}

// loadJobRecord reads one persisted job (false on any damage or version
// mismatch).
func loadJobRecord(st *store.Store, id string) (*job, bool) {
	data, ok := st.Get(jobKey(id))
	if !ok {
		return nil, false
	}
	return decodeJobRecord(data, id)
}

// decodeJobRecord parses one persisted job record, rejecting damaged,
// version-mismatched, wrong-id and unknown-state payloads — a record that
// fails any check reads as a forgotten job, never as garbage state.
func decodeJobRecord(data []byte, id string) (*job, bool) {
	var rec jobRecord
	if err := json.Unmarshal(data, &rec); err != nil || rec.V != jobCodecVersion || rec.ID != id {
		return nil, false
	}
	switch rec.State {
	case JobQueued, JobRunning, JobDone, JobFailed, JobCanceled:
	default:
		return nil, false
	}
	if rec.Total < 0 || rec.Completed < 0 || rec.Completed > rec.Total {
		return nil, false
	}
	return &job{
		id:        rec.ID,
		req:       rec.Request,
		state:     rec.State,
		total:     rec.Total,
		completed: rec.Completed,
		errMsg:    rec.Error,
		report:    rec.Report,
		requeues:  rec.Requeues,
		retries:   rec.Retries,
		created:   rec.CreatedUnix,
		finished:  rec.FinishedUnix,
	}, true
}

// --- HTTP handlers ---------------------------------------------------------

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if retry, ok := s.adm.admit(clientKey(r)); !ok {
		w.Header().Set("Retry-After", retryAfterSeconds(retry))
		httpError(w, http.StatusTooManyRequests, fmt.Errorf("rate limit exceeded; retry after %s seconds", retryAfterSeconds(retry)))
		return
	}
	var req SweepRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		httpBodyError(w, err)
		return
	}
	// Validate up front: a job that cannot resolve must fail at submit
	// time with a 400, not sit in the queue only to die asynchronously.
	// The resolution is kept and reused when the job runs.
	resolved, err := s.resolveSweep(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.jobs.submit(req, resolved)
	if err != nil {
		// The queue is the back-pressure boundary: tell the client when to
		// come back instead of letting it hammer a full queue.
		w.Header().Set("Retry-After", retryAfterSeconds(jobRetryBase))
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSONStatus(w, http.StatusAccepted, st)
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.jobs.list())
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.jobs.status(r.PathValue("id"), true)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleJobReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rep, state, ok := s.jobs.report(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if rep == nil {
		if state == JobDone {
			// Done but report-less: the report outgrew the store budget and
			// only the slim record survived a restart.
			httpError(w, http.StatusGone, fmt.Errorf("job %s finished but its report was not persisted (it exceeded the store budget); resubmit the sweep", id))
			return
		}
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s; a report exists only once it is done", id, state))
		return
	}
	writeReport(w, rep)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.jobs.cancelJob(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, st)
}
