// Dynamic worker membership: registration, heartbeats, TTL expiry.
//
// PR 5's coordinator took a static -workers list, so the tier could not
// grow, shrink, or survive a rolling deploy without a restart. Here the
// member table is live: workers POST /v1/workers/register and re-POST as
// a heartbeat; a dynamic member whose last heartbeat is older than the
// TTL drops out of the routing view, and rendezvous hashing guarantees
// that a join or leave re-routes only the keys whose top-ranked worker
// changed. Statically configured workers (the -workers flag) are pinned
// live — they never expire — so the PR 5 topology keeps working verbatim.
//
// Expired dynamic members are retained (marked dead) for a grace period:
// a worker that merely stopped heartbeating often still answers
// /v1/blobs, so it stays in the peer list that re-routed arms fetch
// their trace blobs from.
package serve

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	// DefaultMemberTTL is how long a dynamic member stays in the routing
	// view after its last heartbeat. Workers heartbeat at TTL/3.
	DefaultMemberTTL = 15 * time.Second
	// memberRetention keeps expired dynamic members visible (as dead) in
	// the member table and usable as blob-fetch peers before they are
	// forgotten entirely.
	memberRetention = 10 * time.Minute
)

// MemberStatus is the wire form of one worker-tier member (the /statsz
// member table and the GET /v1/workers response).
type MemberStatus struct {
	URL    string `json:"url"`
	Static bool   `json:"static,omitempty"`
	// Live reports whether the member is in the routing view: static
	// members always, dynamic members while their heartbeat is fresh.
	Live bool `json:"live"`
	// LastHeartbeatAgeSeconds is the age of the newest heartbeat (for a
	// static member that never registered, the age of the coordinator's
	// own start).
	LastHeartbeatAgeSeconds float64 `json:"last_heartbeat_age_seconds"`
	Heartbeats              int64   `json:"heartbeats,omitempty"`
}

// member is one tracked worker.
type member struct {
	url        string
	static     bool
	registered time.Time
	lastBeat   time.Time
	beats      int64
}

// memberSet is the coordinator's member table. Safe for concurrent use.
type memberSet struct {
	ttl time.Duration
	now func() time.Time // test hook

	mu      sync.Mutex
	members map[string]*member
}

func newMemberSet(static []string, ttl time.Duration) *memberSet {
	if ttl <= 0 {
		ttl = DefaultMemberTTL
	}
	s := &memberSet{
		ttl:     ttl,
		now:     time.Now,
		members: make(map[string]*member),
	}
	start := s.now()
	for _, u := range static {
		s.members[u] = &member{url: u, static: true, registered: start, lastBeat: start}
	}
	return s
}

// normalizeWorkerURL validates and canonicalizes a worker base URL.
func normalizeWorkerURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("bad worker url %q: %w", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("worker url %q must be absolute http(s)", raw)
	}
	return raw, nil
}

// register records a heartbeat for url, creating the member on first
// contact, and returns (ttl, whether the member is new to the table).
// Registering a static member simply refreshes its heartbeat age.
func (s *memberSet) register(url string) (time.Duration, bool) {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.members[url]
	if !ok {
		m = &member{url: url, registered: now}
		s.members[url] = m
	}
	m.lastBeat = now
	m.beats++
	return s.ttl, !ok
}

// liveLocked reports whether m is in the routing view at time now.
func (s *memberSet) liveLocked(m *member, now time.Time) bool {
	return m.static || now.Sub(m.lastBeat) <= s.ttl
}

// live returns the routing view: every member a new arm may be placed
// on, sorted for determinism. Expired dynamic members past the retention
// window are dropped from the table here.
func (s *memberSet) live() []string {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var urls []string
	for u, m := range s.members {
		if !m.static && now.Sub(m.lastBeat) > memberRetention {
			delete(s.members, u)
			continue
		}
		if s.liveLocked(m, now) {
			urls = append(urls, u)
		}
	}
	sort.Strings(urls)
	return urls
}

// known returns every retained member, live or dead — the candidate pool
// for peer blob fetches (a worker that stopped heartbeating often still
// answers /v1/blobs).
func (s *memberSet) known() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	urls := make([]string, 0, len(s.members))
	for u := range s.members {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	return urls
}

// view snapshots the member table for /statsz and GET /v1/workers.
func (s *memberSet) view() []MemberStatus {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	sts := make([]MemberStatus, 0, len(s.members))
	for _, m := range s.members {
		sts = append(sts, MemberStatus{
			URL:                     m.url,
			Static:                  m.static,
			Live:                    s.liveLocked(m, now),
			LastHeartbeatAgeSeconds: now.Sub(m.lastBeat).Seconds(),
			Heartbeats:              m.beats,
		})
	}
	sort.Slice(sts, func(i, j int) bool { return sts[i].URL < sts[j].URL })
	return sts
}

// expireForTest rewinds url's heartbeat past the TTL so the member drops
// out of the routing view — the deterministic stand-in for "the worker
// stopped heartbeating and the TTL lapsed" in tests.
func (s *memberSet) expireForTest(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.members[url]; m != nil {
		m.static = false
		m.lastBeat = s.now().Add(-2 * s.ttl)
	}
}
