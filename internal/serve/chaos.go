// Chaos injection for the serving tier: seeded, counted failures on the
// peer blob-transfer path, so tests can prove the tier's recovery story
// end to end. Every chaos class maps to a real production failure — a peer
// that dies mid-transfer (drop), a network that flips bits (corrupt), a
// congested link (delay) — and the invariant under all of them is the
// same one the coordinator already guarantees for worker deaths: the
// sweep report stays byte-identical, the fault only costs recomputation
// (a blob re-fetched from the next peer, or a local re-capture).
package serve

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosConfig sets the per-operation probabilities of each serve-layer
// fault class. All probabilities are in [0, 1]; zero disables that class.
type ChaosConfig struct {
	// BlobDrop aborts the connection serving GET /v1/blobs mid-response,
	// as a peer dying during a transfer would. The fetching worker sees a
	// transport error and falls back to its next source or to capturing.
	BlobDrop float64
	// BlobCorrupt flips one random bit in a served blob. The trace codec's
	// frame CRC must catch it on arrival (counted in the engine's
	// TracePeerRejects), degrading to re-capture, never to a wrong replay.
	BlobCorrupt float64
	// BlobDelayP is the probability of sleeping Delay before serving a
	// blob (with Delay longer than the fetcher's per-peer budget, this is
	// a hung peer).
	BlobDelayP float64
	// Delay is the injected latency (only meaningful with BlobDelayP > 0).
	Delay time.Duration
	// Seed makes the chaos sequence reproducible.
	Seed int64
}

// ChaosCounters is a snapshot of how many faults of each class fired.
type ChaosCounters struct {
	BlobDrops    int64 `json:"blob_drops"`
	BlobCorrupts int64 `json:"blob_corrupts"`
	BlobDelays   int64 `json:"blob_delays"`
}

// Total sums all chaos classes.
func (c ChaosCounters) Total() int64 { return c.BlobDrops + c.BlobCorrupts + c.BlobDelays }

// Chaos injects seeded faults into a Server's blob-serving path (tests
// only; attach via Options.Chaos). Safe for concurrent use.
type Chaos struct {
	cfg ChaosConfig

	mu  sync.Mutex
	rng *rand.Rand

	drops    atomic.Int64
	corrupts atomic.Int64
	delays   atomic.Int64
}

// NewChaos builds an injector from cfg, seeded by cfg.Seed.
func NewChaos(cfg ChaosConfig) *Chaos {
	return &Chaos{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Counters snapshots the per-class fault counts.
func (c *Chaos) Counters() ChaosCounters {
	return ChaosCounters{
		BlobDrops:    c.drops.Load(),
		BlobCorrupts: c.corrupts.Load(),
		BlobDelays:   c.delays.Load(),
	}
}

func (c *Chaos) roll() float64 {
	c.mu.Lock()
	v := c.rng.Float64()
	c.mu.Unlock()
	return v
}

func (c *Chaos) intn(n int) int {
	c.mu.Lock()
	v := c.rng.Intn(n)
	c.mu.Unlock()
	return v
}

// blobDelay sleeps the configured latency with probability BlobDelayP.
func (c *Chaos) blobDelay() {
	if c.cfg.BlobDelayP > 0 && c.roll() < c.cfg.BlobDelayP {
		c.delays.Add(1)
		time.Sleep(c.cfg.Delay)
	}
}

// dropBlob reports whether this blob response should die mid-transfer.
func (c *Chaos) dropBlob() bool {
	if c.cfg.BlobDrop > 0 && c.roll() < c.cfg.BlobDrop {
		c.drops.Add(1)
		return true
	}
	return false
}

// corruptBlob flips one bit of the served blob with probability
// BlobCorrupt, returning a fresh slice when it fires.
func (c *Chaos) corruptBlob(data []byte) []byte {
	if c.cfg.BlobCorrupt > 0 && len(data) > 0 && c.roll() < c.cfg.BlobCorrupt {
		c.corrupts.Add(1)
		out := append([]byte(nil), data...)
		bit := c.intn(len(out) * 8)
		out[bit/8] ^= 1 << (bit % 8)
		return out
	}
	return data
}
