package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"minigraph/internal/sim"
	"minigraph/internal/workload"
)

// TestRendezvousRanking pins the sharding function: deterministic, a full
// permutation, and minimally disruptive — removing one worker reroutes
// only the keys that lived on it.
func TestRendezvousRanking(t *testing.T) {
	urls := []string{"http://w1", "http://w2", "http://w3"}
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("trace-key-%d", i))
	}

	spread := make(map[int]int)
	for _, k := range keys {
		a := rankByRendezvous(urls, k)
		b := rankByRendezvous(urls, k)
		if len(a) != len(urls) {
			t.Fatalf("rank %v is not a permutation", a)
		}
		seen := map[int]bool{}
		for _, i := range a {
			seen[i] = true
		}
		if len(seen) != len(urls) {
			t.Fatalf("rank %v repeats workers", a)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("ranking not deterministic: %v vs %v", a, b)
			}
		}
		spread[a[0]]++
	}
	// fnv spreads 64 keys across 3 workers; no worker should be starved.
	for i := range urls {
		if spread[i] == 0 {
			t.Errorf("worker %d owns no keys: %v", i, spread)
		}
	}

	// Drop w2: keys homed on w1/w3 must keep their home (their relative
	// scores are unchanged); only w2's keys move.
	sub := []string{urls[0], urls[2]}
	for _, k := range keys {
		full := rankByRendezvous(urls, k)
		if full[0] == 1 {
			continue // was homed on the removed worker
		}
		reduced := rankByRendezvous(sub, k)
		wantHome := 0
		if full[0] == 2 {
			wantHome = 1
		}
		if reduced[0] != wantHome {
			t.Fatalf("key rehomed although its worker survived: full %v, reduced %v", full, reduced)
		}
	}
}

// trackingWorker fronts a worker Server, recording which trace identities
// its /v1/outcome endpoint served and optionally going dark (aborting
// every connection) after a fixed number of outcome calls — a
// deterministic mid-sweep kill. gate() arms a one-shot barrier instead:
// the holdAt-th outcome call parks (closing held) until release closes,
// giving tests a deterministic "mid-sweep" moment to mutate membership in.
type trackingWorker struct {
	t         *testing.T
	srv       *Server
	killAfter int64 // 0 = immortal
	holdAt    int64 // 0 = never parks
	held      chan struct{}
	release   chan struct{}
	served    atomic.Int64

	mu     sync.Mutex
	traces map[string]int // trace-key encoding -> outcome calls
}

func newTrackingWorker(t *testing.T, killAfter int64) (*trackingWorker, *httptest.Server) {
	t.Helper()
	srv := mustNew(t, Options{Engine: sim.New(2)})
	w := &trackingWorker{t: t, srv: srv, killAfter: killAfter, traces: make(map[string]int)}
	ts := httptest.NewServer(w)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return w, ts
}

// gate arms the mid-sweep barrier: the holdAt-th outcome call signals
// held and parks until release is closed.
func (w *trackingWorker) gate(holdAt int64) {
	w.holdAt = holdAt
	w.held = make(chan struct{})
	w.release = make(chan struct{})
}

func (w *trackingWorker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/outcome" {
		n := w.served.Add(1)
		if w.killAfter > 0 && n > w.killAfter {
			panic(http.ErrAbortHandler) // killed: every further call dies
		}
		if w.holdAt > 0 && n == w.holdAt {
			close(w.held)
			<-w.release
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			w.t.Error(err)
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		var js JobSpec
		if json.Unmarshal(body, &js) == nil {
			if job, err := js.Resolve(); err == nil {
				if tk, err := sim.EncodeTraceKey(job.Key().TraceKey()); err == nil {
					w.mu.Lock()
					w.traces[string(tk)]++
					w.mu.Unlock()
				}
			}
		}
	}
	w.srv.ServeHTTP(rw, r)
}

func (w *trackingWorker) traceSet() map[string]bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	set := make(map[string]bool, len(w.traces))
	for k := range w.traces {
		set[k] = true
	}
	return set
}

// benchSubsetSweep32 is the acceptance sweep: 32 arms (8 machine/policy
// variants × the 4-bench subset), record-bounded so the test stays quick.
func benchSubsetSweep32() SweepRequest {
	req := SweepRequest{Name: "equiv32", Title: "32-arm benchSubset equivalence"}
	for _, b := range workload.BenchSubset() {
		for i, spec := range []JobSpec{
			{Baseline: true, Machine: "baseline"},
			{Baseline: true, Machine: "baseline", MemLatency: 300},
			{},
			{MemLatency: 300},
			{Machine: "minigraph-int"},
			{Collapse: true},
			{MaxSize: 3},
			{Entries: 128},
		} {
			spec.Bench = b
			spec.MaxRecords = 3000
			spec.Arm = fmt.Sprintf("%s/v%d", b, i)
			req.Jobs = append(req.Jobs, spec)
		}
	}
	return req
}

func newCoordinator(t *testing.T, workerURLs ...string) *Client {
	t.Helper()
	srv := mustNew(t, Options{Engine: sim.New(2), Workers: workerURLs})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return NewClient(ts.URL)
}

// TestCoordinatorEquivalence is the tentpole acceptance test: the same
// 32-arm benchSubset sweep run (a) in one process, (b) sharded across two
// workers, and (c) with one worker killed mid-sweep yields byte-identical
// Report JSON in all three — and in (b) the shards respect trace-key
// affinity (no trace identity is computed on both workers).
func TestCoordinatorEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine sweep; skipped in -short")
	}
	ctx := context.Background()
	req := benchSubsetSweep32()
	if len(req.Jobs) != 32 {
		t.Fatalf("sweep has %d arms, want 32", len(req.Jobs))
	}

	// (a) single process (default sweep bounds: the helper server caps at
	// 16 arms, this sweep has 32).
	srv := mustNew(t, Options{Engine: sim.New(2)})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	single := NewClient(ts.URL)
	want, err := single.SweepJSON(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// (b) coordinator over two live workers.
	w1, ts1 := newTrackingWorker(t, 0)
	w2, ts2 := newTrackingWorker(t, 0)
	coord := newCoordinator(t, ts1.URL, ts2.URL)
	got, err := coord.SweepJSON(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded sweep differs from single-process:\nsharded:\n%s\nsingle:\n%s", got, want)
	}
	set1, set2 := w1.traceSet(), w2.traceSet()
	if len(set1) == 0 || len(set2) == 0 {
		t.Errorf("degenerate sharding: worker trace sets %d/%d", len(set1), len(set2))
	}
	for k := range set1 {
		if set2[k] {
			t.Errorf("trace identity served by both workers — affinity broken")
			break
		}
	}

	// Coordinator-routed /v1/simulate matches the single-process result.
	jr, err := coord.Simulate(ctx, req.Jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	jrSingle, err := single.Simulate(ctx, req.Jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if jr.Result == nil || jr.Result.Cycles != jrSingle.Result.Cycles || jr.IPC != jrSingle.IPC {
		t.Errorf("coordinator simulate diverged: %+v vs %+v", jr, jrSingle)
	}

	// An async job through the coordinator produces the same bytes.
	st, err := coord.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := coord.WaitJob(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != JobDone {
		t.Fatalf("async job %+v", fin)
	}
	rep, err := coord.JobReportJSON(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep, want) {
		t.Fatalf("async coordinator report differs from single-process:\n%s", rep)
	}

	// (c) one worker dies mid-sweep: its arms re-route and the merged
	// report is still byte-identical.
	k1, kts1 := newTrackingWorker(t, 0)
	k2, kts2 := newTrackingWorker(t, 4) // dies after 4 outcome calls
	killCoord := newCoordinator(t, kts1.URL, kts2.URL)
	got, err = killCoord.SweepJSON(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("kill-mid-sweep report differs from single-process:\nsharded:\n%s", got)
	}
	if k2.served.Load() <= 4 {
		t.Logf("note: killed worker saw only %d calls", k2.served.Load())
	}
	if k1.served.Load() < 32-4 {
		t.Errorf("surviving worker served %d outcome calls; re-routing did not absorb the dead worker's arms", k1.served.Load())
	}

	// (d) elastic membership: the tier starts with one registered worker, a
	// second registers mid-sweep, the first's heartbeat TTL lapses
	// mid-sweep, and every re-routed arm fetches its captured trace blob
	// from the previous owner — byte-identical report, zero re-captures.
	distinct := make(map[string]bool)
	for _, js := range req.Jobs {
		job, err := js.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		tk, err := sim.EncodeTraceKey(job.Key().TraceKey())
		if err != nil {
			t.Fatal(err)
		}
		distinct[string(tk)] = true
	}

	e1, ets1 := newTrackingWorker(t, 0)
	e1.gate(5) // park the 5th arm: the join happens here
	e2, ets2 := newTrackingWorker(t, 0)
	e2.gate(1) // park w2's first arm: the expiry happens here

	// FanoutConcurrency 1 serializes arms, so membership mutations at the
	// gates land between arms, never during a concurrent capture.
	csrv := mustNew(t, Options{
		Engine:            sim.New(2),
		Coordinator:       true,
		MemberTTL:         time.Minute,
		FanoutConcurrency: 1,
	})
	cts := httptest.NewServer(csrv)
	t.Cleanup(func() {
		cts.Close()
		csrv.Close()
	})
	cl := NewClient(cts.URL)
	if ttl, err := cl.RegisterWorker(ctx, ets1.URL); err != nil || ttl <= 0 {
		t.Fatalf("register w1: ttl %s, %v", ttl, err)
	}

	type sweepRes struct {
		data []byte
		err  error
	}
	doneCh := make(chan sweepRes, 1)
	go func() {
		data, err := cl.SweepJSON(ctx, req)
		doneCh <- sweepRes{data, err}
	}()

	waitOr := func(c <-chan struct{}, what string) {
		select {
		case <-c:
		case res := <-doneCh:
			t.Fatalf("sweep finished (%v) before %s", res.err, what)
		case <-time.After(2 * time.Minute):
			t.Fatalf("timed out waiting for %s", what)
		}
	}
	waitOr(e1.held, "the first worker to reach its gate")
	if _, err := cl.RegisterWorker(ctx, ets2.URL); err != nil {
		t.Fatalf("register w2 mid-sweep: %v", err)
	}
	close(e1.release)

	waitOr(e2.held, "the joined worker's first arm")
	csrv.coord.members.expireForTest(ets1.URL) // w1's heartbeat TTL lapses
	close(e2.release)

	res := <-doneCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if !bytes.Equal(res.data, want) {
		t.Fatalf("elastic-membership sweep differs from single-process:\n%s", res.data)
	}
	if n := e2.served.Load(); n == 0 {
		t.Fatal("joined worker served nothing; membership change did not re-route")
	}
	st1, st2 := e1.srv.eng.Stats(), e2.srv.eng.Stats()
	if got := st1.TraceCaptures + st2.TraceCaptures; got != int64(len(distinct)) {
		t.Errorf("tier captured %d traces for %d identities — re-routed arms re-captured instead of fetching blobs (w1 %d, w2 %d)",
			got, len(distinct), st1.TraceCaptures, st2.TraceCaptures)
	}
	if st2.TracePeerHits == 0 {
		t.Error("joined worker never fetched a peer blob")
	}
	if st1.TracePeerRejects+st2.TracePeerRejects != 0 {
		t.Errorf("peer blob transfers were rejected: w1 %d, w2 %d", st1.TracePeerRejects, st2.TracePeerRejects)
	}

	// The member table reflects the churn: w1 expired (but retained), w2
	// live — through the public endpoint.
	var members []MemberStatus
	mresp, mbody := getBody(t, cts.URL+"/v1/workers")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/workers: %d: %s", mresp.StatusCode, mbody)
	}
	if err := json.Unmarshal(mbody, &members); err != nil {
		t.Fatal(err)
	}
	byURL := make(map[string]MemberStatus, len(members))
	for _, m := range members {
		byURL[m.URL] = m
	}
	if m, ok := byURL[ets1.URL]; !ok || m.Live {
		t.Errorf("expired worker in member table: %+v (present %v)", m, ok)
	}
	if m, ok := byURL[ets2.URL]; !ok || !m.Live || m.Heartbeats == 0 {
		t.Errorf("joined worker in member table: %+v (present %v)", m, ok)
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestCoordinatorAllWorkersDown: with every worker unreachable the sweep
// fails with an error naming the workers — it must not hang or fall back
// to silently dropping arms.
func TestCoordinatorAllWorkersDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // nothing listens here any more
	coord := newCoordinator(t, dead.URL)
	_, err := coord.Sweep(context.Background(), SweepRequest{Jobs: []JobSpec{fastSpec("x", true)}})
	if err == nil {
		t.Fatal("sweep over dead workers succeeded")
	}
	var se *StatusError
	if errors.As(err, &se) && se.Status != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", se.Status)
	}
}

// TestCoordinatorHungWorkerTimesOut: a worker that accepts the connection
// and never answers must not wedge the sweep — the per-call timeout marks
// it failed and the arm re-routes to a live worker.
func TestCoordinatorHungWorkerTimesOut(t *testing.T) {
	release := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hold every request open until the test ends
		panic(http.ErrAbortHandler)
	}))
	t.Cleanup(func() {
		close(release)
		hung.Close()
	})
	_, live := newTrackingWorker(t, 0)

	srv := mustNew(t, Options{
		Engine:            sim.New(2),
		Workers:           []string{hung.URL, live.URL},
		WorkerCallTimeout: 300 * time.Millisecond,
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	req := SweepRequest{Name: "hang", Jobs: []JobSpec{
		fastSpec("a", true), fastSpec("b", false),
	}}
	start := time.Now()
	rep, err := NewClient(ts.URL).Sweep(context.Background(), req)
	if err != nil {
		t.Fatalf("sweep failed despite a live worker: %v", err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("empty report")
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("sweep took %s; hung worker was not timed out", d)
	}
}

// TestCoordinatorComputeErrorDoesNotReroute: an HTTP error status is an
// answer — the worker is alive and the failure is the arm's own, so the
// arm fails once instead of re-running its capture on every worker.
func TestCoordinatorComputeErrorDoesNotReroute(t *testing.T) {
	var calls atomic.Int64
	broken := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/outcome" {
				calls.Add(1)
				httpError(w, http.StatusInternalServerError, fmt.Errorf("boom"))
				return
			}
			http.NotFound(w, r)
		}))
	}
	b1, b2 := broken(), broken()
	t.Cleanup(b1.Close)
	t.Cleanup(b2.Close)

	coord := newCoordinator(t, b1.URL, b2.URL)
	_, err := coord.Sweep(context.Background(), SweepRequest{Jobs: []JobSpec{fastSpec("x", true)}})
	if err == nil {
		t.Fatal("sweep succeeded against broken workers")
	}
	var se *StatusError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "boom") {
		t.Fatalf("worker error not propagated: %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("arm tried %d workers after a compute error, want exactly 1 (no re-route)", n)
	}
}
