package serve

import (
	"encoding/json"
	"testing"
)

// FuzzJobRecordRecovery drives the persisted-job decoder with arbitrary
// bytes: recovery after a restart reads whatever the store hands back, so
// the decoder must never panic and must reject anything that is not a
// well-formed current-version record for the requested id — damaged jobs
// are forgotten, never resurrected with garbage state.
func FuzzJobRecordRecovery(f *testing.F) {
	good, err := json.Marshal(jobRecord{
		V: jobCodecVersion, ID: "j-0011223344556677", State: JobDone,
		Total: 4, Completed: 4, CreatedUnix: 1700000000,
		Request: SweepRequest{Name: "s", Jobs: []JobSpec{{Bench: "sha", Baseline: true}}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good, "j-0011223344556677")
	// Rejection seeds: wrong id, wrong version, unknown state, negative
	// and inconsistent progress counts, junk.
	f.Add(good, "j-ffffffffffffffff")
	f.Add([]byte(`{"v":999,"id":"x","state":"done"}`), "x")
	f.Add([]byte(`{"v":1,"id":"x","state":"exploded"}`), "x")
	f.Add([]byte(`{"v":1,"id":"x","state":"done","total":-1}`), "x")
	f.Add([]byte(`{"v":1,"id":"x","state":"done","total":1,"completed":5}`), "x")
	f.Add([]byte(`not json`), "x")
	f.Add([]byte(``), "")

	f.Fuzz(func(t *testing.T, data []byte, id string) {
		j, ok := decodeJobRecord(data, id)
		if !ok {
			return
		}
		if j.id != id {
			t.Fatalf("accepted record for id %q when asked for %q", j.id, id)
		}
		switch j.state {
		case JobQueued, JobRunning, JobDone, JobFailed, JobCanceled:
		default:
			t.Fatalf("accepted unknown state %q", j.state)
		}
		if j.total < 0 || j.completed < 0 || j.completed > j.total {
			t.Fatalf("accepted inconsistent progress %d/%d", j.completed, j.total)
		}
	})
}
