package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestAdmissionBucket drives the token bucket through a synthetic clock:
// bursts drain it, refill is proportional to elapsed time, clients are
// independent, and the retry hint names the time until the next token.
func TestAdmissionBucket(t *testing.T) {
	base := time.Now()
	offset := time.Duration(0)
	a := newAdmission(2, 2, 0) // 2 rps, burst 2
	a.now = func() time.Time { return base.Add(offset) }

	for i := 0; i < 2; i++ {
		if retry, ok := a.admit("c1"); !ok {
			t.Fatalf("burst request %d refused (retry %s)", i, retry)
		}
	}
	retry, ok := a.admit("c1")
	if ok {
		t.Fatal("drained bucket admitted a request")
	}
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Errorf("retry hint %s, want (0, 500ms] at 2 rps", retry)
	}
	if _, ok := a.admit("c2"); !ok {
		t.Error("another client was throttled by c1's bucket")
	}

	offset = 500 * time.Millisecond // one token refilled
	if _, ok := a.admit("c1"); !ok {
		t.Error("refilled bucket still refusing")
	}
	if _, ok := a.admit("c1"); ok {
		t.Error("bucket refilled beyond elapsed time")
	}
	if st := a.stats(); st.Limited429 != 2 || st.ClientsTracked != 2 || st.RatePerSec != 2 {
		t.Errorf("stats %+v", st)
	}

	// Rate 0 disables limiting entirely.
	off := newAdmission(0, 0, 0)
	for i := 0; i < 100; i++ {
		if _, ok := off.admit("x"); !ok {
			t.Fatal("disabled limiter refused a request")
		}
	}
}

func TestAdmissionInflightShedding(t *testing.T) {
	a := newAdmission(0, 0, 2)
	if !a.beginSweep() || !a.beginSweep() {
		t.Fatal("sweeps under the bound were shed")
	}
	if a.beginSweep() {
		t.Fatal("third sweep admitted over a bound of 2")
	}
	a.endSweep()
	if !a.beginSweep() {
		t.Fatal("freed slot not reusable")
	}
	if st := a.stats(); st.Shed503 != 1 || st.InflightSweeps != 2 {
		t.Errorf("stats %+v", st)
	}

	unbounded := newAdmission(0, 0, -1)
	for i := 0; i < 100; i++ {
		if !unbounded.beginSweep() {
			t.Fatal("unbounded admission shed a sweep")
		}
	}
}

// TestSweepRateLimit429: a client over its budget gets a structured JSON
// 429 with a Retry-After header, on both /v1/sweep and /v1/jobs.
func TestSweepRateLimit429(t *testing.T) {
	srv := mustNew(t, Options{Engine: newTestEngine(), RateLimit: 0.01, RateBurst: 1})
	ts := newHTTPServer(t, srv)

	req := SweepRequest{Jobs: []JobSpec{fastSpec("a", true)}}
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429: %s", resp.StatusCode, body)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Errorf("Retry-After %q", resp.Header.Get("Retry-After"))
	}
	var e map[string]string
	mustDecode(t, body, &e)
	if e["error"] == "" {
		t.Errorf("unstructured 429 body: %s", body)
	}
}

// TestSweepShedding503: synchronous sweeps beyond the in-flight bound are
// refused with 503 + Retry-After instead of queueing unbounded work.
func TestSweepShedding503(t *testing.T) {
	srv := mustNew(t, Options{Engine: newTestEngine(), MaxInflightSweeps: 1})
	ts := newHTTPServer(t, srv)

	srv.adm.inflight.Store(1) // a sweep is (synthetically) in flight
	defer srv.adm.inflight.Store(0)
	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Jobs: []JobSpec{fastSpec("a", true)}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	var e map[string]string
	mustDecode(t, body, &e)
	if !strings.Contains(e["error"], "capacity") {
		t.Errorf("shed error %q", e["error"])
	}
	if st := srv.adm.stats(); st.Shed503 != 1 {
		t.Errorf("admission stats %+v", st)
	}
}

// TestRequestBodyCap413 is the oversized-body regression test: every
// JSON POST endpoint refuses a body over the cap with a structured 413,
// while a normal request still fits.
func TestRequestBodyCap413(t *testing.T) {
	srv := mustNew(t, Options{Engine: newTestEngine(), MaxBodyBytes: 2048})
	ts := newHTTPServer(t, srv)

	// Each oversized body is shape-valid for its endpoint, so the only
	// thing it can be refused for is its size.
	bigSweep := SweepRequest{Name: "big"}
	for i := 0; i < 64; i++ {
		bigSweep.Jobs = append(bigSweep.Jobs, JobSpec{Arm: fmt.Sprintf("arm-%04d-%s", i, strings.Repeat("x", 64)), Bench: "sha"})
	}
	bigJob := JobSpec{Arm: strings.Repeat("x", 4096), Bench: "sha"}
	for path, body := range map[string]any{
		"/v1/simulate": bigJob,
		"/v1/outcome":  bigJob,
		"/v1/sweep":    bigSweep,
		"/v1/jobs":     bigSweep,
	} {
		resp, body := postJSON(t, ts.URL+path, body)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413: %.120s", path, resp.StatusCode, body)
			continue
		}
		var e map[string]string
		mustDecode(t, body, &e)
		if !strings.Contains(e["error"], "2048") {
			t.Errorf("%s: 413 body does not name the limit: %q", path, e["error"])
		}
	}

	// A request inside the cap still works.
	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Jobs: []JobSpec{fastSpec("ok", true)}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-cap sweep: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("cycles")) {
		t.Errorf("sweep response lacks rows: %.120s", body)
	}
}
