package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"minigraph/internal/sim"
)

// Client is an HTTP client for one mgserve instance. It speaks both the
// synchronous endpoints (/v1/simulate, /v1/sweep, /v1/outcome) and the
// async job API (/v1/jobs). The coordinator uses one Client per worker;
// the public facade re-exports it for end users.
//
// The zero HTTP field means http.DefaultClient; override it to set
// timeouts or a custom transport. Methods are safe for concurrent use.
type Client struct {
	base string
	// HTTP is the underlying HTTP client (nil = http.DefaultClient).
	HTTP *http.Client
}

// NewClient builds a client for the mgserve instance at base
// (e.g. "http://localhost:8347").
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/")}
}

// BaseURL returns the server address the client talks to.
func (c *Client) BaseURL() string { return c.base }

// StatusError is a non-2xx API response: the HTTP status plus the
// server's structured error message.
type StatusError struct {
	Status int
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("http %d: %s", e.Status, e.Msg)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// doRaw performs one API call and returns the raw response body. Non-2xx
// responses decode into a *StatusError.
func (c *Client) doRaw(ctx context.Context, method, path string, body any) ([]byte, error) {
	return c.doRawHeaders(ctx, method, path, body, nil)
}

// doRawHeaders is doRaw plus extra request headers.
func (c *Client) doRawHeaders(ctx context.Context, method, path string, body any, hdr http.Header) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("serve: encode request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("serve: %s %s: read: %w", method, path, err)
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return nil, &StatusError{Status: resp.StatusCode, Msg: msg}
	}
	return data, nil
}

// do is doRaw plus JSON-decoding the response into out (when non-nil).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	data, err := c.doRaw(ctx, method, path, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("serve: %s %s: decode response: %w", method, path, err)
	}
	return nil
}

// Health checks the server's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Simulate runs one job synchronously.
func (c *Client) Simulate(ctx context.Context, js JobSpec) (*JobResult, error) {
	var jr JobResult
	if err := c.do(ctx, http.MethodPost, "/v1/simulate", js, &jr); err != nil {
		return nil, err
	}
	return &jr, nil
}

// Outcome runs one job synchronously and returns the full canonical
// outcome (result + selection). This is the worker-to-worker form the
// coordinator shards with; its round-trip is byte-exact, so reports
// merged from Outcome calls match single-process execution.
func (c *Client) Outcome(ctx context.Context, js JobSpec) (*sim.Outcome, error) {
	data, err := c.doRaw(ctx, http.MethodPost, "/v1/outcome", js)
	if err != nil {
		return nil, err
	}
	return sim.DecodeOutcome(data)
}

// OutcomeFrom is Outcome plus a ranked list of peer workers the serving
// engine may fetch the job's captured trace blob from, each attempt
// bounded by perPeer (0 = the server's default; see blobs.go). An empty
// peers list is plain Outcome.
func (c *Client) OutcomeFrom(ctx context.Context, js JobSpec, peers []string, perPeer time.Duration) (*sim.Outcome, error) {
	var hdr http.Header
	if len(peers) > 0 {
		hdr = http.Header{blobPeersHeader: []string{strings.Join(peers, ",")}}
		if perPeer > 0 {
			hdr.Set(blobBudgetHeader, strconv.FormatInt(perPeer.Milliseconds(), 10))
		}
	}
	data, err := c.doRawHeaders(ctx, http.MethodPost, "/v1/outcome", js, hdr)
	if err != nil {
		return nil, err
	}
	return sim.DecodeOutcome(data)
}

// TraceBlob fetches the encoded trace blob for a canonical TraceKey
// encoding (sim.EncodeTraceKey bytes) from this worker's blob endpoint.
// The bytes are CRC-framed; callers decode (and thereby verify) them
// before use.
func (c *Client) TraceBlob(ctx context.Context, traceKey []byte) ([]byte, error) {
	return c.doRaw(ctx, http.MethodGet, blobPath(traceKey), nil)
}

// TraceManifest fetches the chunk manifest (trace manifest codec) for a
// canonical TraceKey encoding — the first step of a chunked transfer.
func (c *Client) TraceManifest(ctx context.Context, traceKey []byte) ([]byte, error) {
	return c.doRaw(ctx, http.MethodGet, blobPath(traceKey)+"?manifest=1", nil)
}

// TraceChunk fetches one chunk frame (trace chunk codec) of the trace
// behind a canonical TraceKey encoding. Callers verify the frame against
// the manifest before use.
func (c *Client) TraceChunk(ctx context.Context, traceKey []byte, chunk int64) ([]byte, error) {
	return c.doRaw(ctx, http.MethodGet, blobPath(traceKey)+"?chunk="+strconv.FormatInt(chunk, 10), nil)
}

// RegisterWorker registers (or heartbeats) selfURL with the coordinator
// this client points at, returning the membership TTL to beat within.
func (c *Client) RegisterWorker(ctx context.Context, selfURL string) (time.Duration, error) {
	var resp RegisterResponse
	if err := c.do(ctx, http.MethodPost, "/v1/workers/register", RegisterRequest{URL: selfURL}, &resp); err != nil {
		return 0, err
	}
	return time.Duration(resp.TTLSeconds * float64(time.Second)), nil
}

// RegisterLoop registers selfURL and keeps heartbeating at interval
// (0 = TTL/3 as returned by the coordinator, floor 1s) until ctx is done.
// Registration failures are retried at the same cadence — a coordinator
// restart must not silently drop this worker from the tier. onBeat
// (optional) observes each attempt's error (nil on success).
func (c *Client) RegisterLoop(ctx context.Context, selfURL string, interval time.Duration, onBeat func(error)) {
	for {
		ttl, err := c.RegisterWorker(ctx, selfURL)
		if onBeat != nil {
			onBeat(err)
		}
		wait := interval
		if wait <= 0 {
			wait = ttl / 3
			if wait < time.Second {
				wait = time.Second
			}
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return
		}
	}
}

// SweepJSON runs a sweep synchronously and returns the raw Report JSON —
// byte-identical to SweepReport(req, ...).JSON() plus a trailing newline.
func (c *Client) SweepJSON(ctx context.Context, req SweepRequest) ([]byte, error) {
	return c.doRaw(ctx, http.MethodPost, "/v1/sweep", req)
}

// Sweep runs a sweep synchronously and returns the parsed Report.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (*sim.Report, error) {
	var rep sim.Report
	if err := c.do(ctx, http.MethodPost, "/v1/sweep", req, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// SubmitJob submits a sweep to the async job API and returns immediately
// with the queued job's status (poll it with Job or WaitJob).
func (c *Client) SubmitJob(ctx context.Context, req SweepRequest) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches one job's status (including its report once done).
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists the server's known jobs (without reports).
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var sts []JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &sts); err != nil {
		return nil, err
	}
	return sts, nil
}

// JobReportJSON fetches a finished job's raw Report JSON — byte-identical
// to the synchronous /v1/sweep response for the same request.
func (c *Client) JobReportJSON(ctx context.Context, id string) ([]byte, error) {
	return c.doRaw(ctx, http.MethodGet, "/v1/jobs/"+id+"/report", nil)
}

// CancelJob cancels a queued or running job. Canceling a finished job is
// a no-op that returns its terminal status.
func (c *Client) CancelJob(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitJob polls a job every poll interval (0 = 500ms) until it reaches a
// terminal state or ctx is done, and returns the final status.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}
