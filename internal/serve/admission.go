// Admission control: per-client token buckets and queue-depth shedding.
//
// A tier meant for "heavy traffic from millions of users" must degrade a
// burst into explicit back-pressure, never into an unbounded backlog.
// Two independent mechanisms sit in front of the compute endpoints
// (/v1/sweep and /v1/jobs):
//
//   - Rate limiting: each client (remote IP) holds a token bucket
//     refilled at Options.RateLimit requests/second with RateBurst
//     capacity. An empty bucket answers 429 with a Retry-After header
//     naming when the next token lands.
//   - Load shedding: synchronous sweeps count against an in-flight bound
//     (Options.MaxInflightSweeps) and async submissions against the job
//     queue bound; beyond either the request answers 503 + Retry-After
//     instead of queueing work the process may not survive.
//
// Both failure modes are structured JSON like every other error, so a
// well-behaved client backs off and a misbehaving one costs one refused
// request, not memory.
package serve

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// DefaultMaxInflightSweeps bounds concurrently executing synchronous
	// /v1/sweep requests (each already fans out internally); beyond it
	// sweeps shed with 503. Negative Options.MaxInflightSweeps disables
	// the bound.
	DefaultMaxInflightSweeps = 16
	// maxTrackedClients bounds the rate limiter's per-client bucket
	// table. When full the table resets — momentarily generous to
	// everyone, but bounded, which is the property that matters.
	maxTrackedClients = 4096
)

// AdmissionStats summarizes the admission layer for /statsz.
type AdmissionStats struct {
	// RatePerSec and Burst echo the configuration (0 = rate limiting off).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      float64 `json:"burst,omitempty"`
	// Limited429 counts requests refused by the per-client rate limit,
	// Shed503 synchronous sweeps refused by the in-flight bound (job-queue
	// 503s are visible separately as queued jobs never admitted).
	Limited429     int64 `json:"limited_429"`
	Shed503        int64 `json:"shed_503"`
	InflightSweeps int64 `json:"inflight_sweeps"`
	ClientsTracked int   `json:"clients_tracked"`
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// admission implements the rate-limit + shedding policy. Safe for
// concurrent use; the zero MaxInflight means DefaultMaxInflightSweeps.
type admission struct {
	rate        float64 // tokens/second per client; <= 0 disables
	burst       float64
	maxInflight int64 // <= 0 means unbounded
	now         func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket

	inflight atomic.Int64
	limited  atomic.Int64
	shed     atomic.Int64
}

func newAdmission(rate, burst float64, maxInflight int) *admission {
	if burst <= 0 {
		burst = math.Max(1, 2*rate)
	}
	mi := int64(maxInflight)
	if maxInflight == 0 {
		mi = DefaultMaxInflightSweeps
	}
	return &admission{
		rate:        rate,
		burst:       burst,
		maxInflight: mi,
		now:         time.Now,
		buckets:     make(map[string]*bucket),
	}
}

// admit spends one token for client. ok=false means the client is over
// its rate; retryAfter is the time until its next token.
func (a *admission) admit(client string) (retryAfter time.Duration, ok bool) {
	if a.rate <= 0 {
		return 0, true
	}
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[client]
	if b == nil {
		if len(a.buckets) >= maxTrackedClients {
			a.buckets = make(map[string]*bucket)
		}
		b = &bucket{tokens: a.burst, last: now}
		a.buckets[client] = b
	}
	b.tokens = math.Min(a.burst, b.tokens+now.Sub(b.last).Seconds()*a.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	a.limited.Add(1)
	return time.Duration((1 - b.tokens) / a.rate * float64(time.Second)), false
}

// beginSweep reserves an in-flight sweep slot (release with endSweep);
// false means the server is at capacity and the sweep must shed.
func (a *admission) beginSweep() bool {
	if a.inflight.Add(1) > a.maxInflight && a.maxInflight > 0 {
		a.inflight.Add(-1)
		a.shed.Add(1)
		return false
	}
	return true
}

func (a *admission) endSweep() { a.inflight.Add(-1) }

func (a *admission) stats() AdmissionStats {
	a.mu.Lock()
	clients := len(a.buckets)
	a.mu.Unlock()
	st := AdmissionStats{
		Limited429:     a.limited.Load(),
		Shed503:        a.shed.Load(),
		InflightSweeps: a.inflight.Load(),
		ClientsTracked: clients,
	}
	if a.rate > 0 {
		st.RatePerSec, st.Burst = a.rate, a.burst
	}
	return st
}

// clientKey identifies the requesting client for rate limiting: the
// remote IP, ignoring the ephemeral port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds renders d as a Retry-After header value (whole
// seconds, minimum 1 — zero would invite an immediate identical retry).
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
