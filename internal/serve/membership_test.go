package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"minigraph/internal/sim"
)

func newTestEngine() *sim.Engine { return sim.New(2) }

func newHTTPServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func mustDecode(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
}

// TestMemberSetLifecycle drives the member table through a synthetic
// clock: registration, heartbeat refresh, TTL expiry (out of the routing
// view but retained as a blob peer), and retention-window forgetting.
func TestMemberSetLifecycle(t *testing.T) {
	base := time.Now()
	offset := time.Duration(0)
	ms := newMemberSet([]string{"http://static:1"}, 10*time.Second)
	ms.now = func() time.Time { return base.Add(offset) }

	if live := ms.live(); len(live) != 1 || live[0] != "http://static:1" {
		t.Fatalf("static member missing from routing view: %v", live)
	}

	ttl, isNew := ms.register("http://dyn:2")
	if ttl != 10*time.Second || !isNew {
		t.Fatalf("first registration: ttl %s, new %v", ttl, isNew)
	}
	if _, isNew = ms.register("http://dyn:2"); isNew {
		t.Fatal("re-registration reported as new")
	}
	if live := ms.live(); len(live) != 2 {
		t.Fatalf("routing view after join: %v", live)
	}

	// Heartbeats inside the TTL keep the member live.
	offset = 8 * time.Second
	ms.register("http://dyn:2")
	offset = 16 * time.Second
	if live := ms.live(); len(live) != 2 {
		t.Fatalf("heartbeat did not refresh the TTL: %v", live)
	}

	// TTL lapses: out of the routing view, still a known blob peer.
	offset = 30 * time.Second
	if live := ms.live(); len(live) != 1 || live[0] != "http://static:1" {
		t.Fatalf("expired member still routable: %v", live)
	}
	if known := ms.known(); len(known) != 2 {
		t.Fatalf("expired member dropped from the peer pool too early: %v", known)
	}
	var dyn *MemberStatus
	for _, m := range ms.view() {
		if m.URL == "http://dyn:2" {
			m := m
			dyn = &m
		}
	}
	if dyn == nil || dyn.Live || dyn.Heartbeats != 3 || dyn.LastHeartbeatAgeSeconds != 22 {
		t.Fatalf("expired member status: %+v", dyn)
	}

	// Past the retention window the member is forgotten entirely; the
	// static member never expires.
	offset = 30*time.Second + memberRetention + time.Second
	if live := ms.live(); len(live) != 1 {
		t.Fatalf("static member expired: %v", live)
	}
	if known := ms.known(); len(known) != 1 {
		t.Fatalf("member not forgotten after retention: %v", known)
	}
}

func TestNormalizeWorkerURL(t *testing.T) {
	for raw, want := range map[string]string{
		"http://w1:8347":    "http://w1:8347",
		" http://w1:8347/ ": "http://w1:8347",
		"https://w/x/":      "https://w/x",
	} {
		got, err := normalizeWorkerURL(raw)
		if err != nil || got != want {
			t.Errorf("normalize(%q) = %q, %v; want %q", raw, got, err, want)
		}
	}
	for _, raw := range []string{"", "w1:8347", "ftp://w1", "http://", "://x"} {
		if got, err := normalizeWorkerURL(raw); err == nil {
			t.Errorf("normalize(%q) accepted as %q", raw, got)
		}
	}
}

// TestNewCoordinatorRequiresWorkers pins the satellite bugfix: a
// coordinator with no way to ever route returns an error (it used to
// panic), while dynamic registration makes an empty tier legal.
func TestNewCoordinatorRequiresWorkers(t *testing.T) {
	if _, err := NewCoordinator(CoordinatorOptions{}); err == nil {
		t.Error("NewCoordinator with no workers and no dynamic registration succeeded")
	}
	if _, err := NewCoordinator(CoordinatorOptions{Workers: []string{"not a url"}}); err == nil {
		t.Error("NewCoordinator accepted a malformed worker URL")
	}
	if _, err := NewCoordinator(CoordinatorOptions{AllowDynamic: true}); err != nil {
		t.Errorf("dynamic-only coordinator refused: %v", err)
	}
	if _, err := New(Options{}); err == nil {
		t.Error("New without an engine succeeded")
	}
}

// TestRegisterEndpoint covers the HTTP membership surface: registration
// against a dynamic coordinator succeeds and echoes the TTL; servers that
// are not coordinators (or have dynamic registration disabled) answer 409.
func TestRegisterEndpoint(t *testing.T) {
	eng := newTestEngine()
	srv := mustNew(t, Options{Engine: eng, Coordinator: true, MemberTTL: 42 * time.Second})
	ts := newHTTPServer(t, srv)

	resp, body := postJSON(t, ts.URL+"/v1/workers/register", RegisterRequest{URL: "http://worker-a:1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d: %s", resp.StatusCode, body)
	}
	var rr RegisterResponse
	mustDecode(t, body, &rr)
	if rr.TTLSeconds != 42 || rr.URL != "http://worker-a:1" {
		t.Errorf("register response %+v", rr)
	}

	resp, body = postJSON(t, ts.URL+"/v1/workers/register", RegisterRequest{URL: "worker-a:1"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("relative URL registered: %d: %s", resp.StatusCode, body)
	}

	// A plain worker is not a coordinator.
	worker := mustNew(t, Options{Engine: newTestEngine()})
	wts := newHTTPServer(t, worker)
	resp, body = postJSON(t, wts.URL+"/v1/workers/register", RegisterRequest{URL: "http://worker-a:1"})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("non-coordinator register: %d: %s", resp.StatusCode, body)
	}
	if resp, body := getBody(t, wts.URL+"/v1/workers"); resp.StatusCode != http.StatusConflict {
		t.Errorf("non-coordinator member table: %d: %s", resp.StatusCode, body)
	}

	// Static-only coordinators keep their fixed topology.
	static := mustNew(t, Options{Engine: newTestEngine(), Workers: []string{"http://w1:1"}})
	sts := newHTTPServer(t, static)
	resp, body = postJSON(t, sts.URL+"/v1/workers/register", RegisterRequest{URL: "http://worker-a:1"})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("static coordinator accepted a registration: %d: %s", resp.StatusCode, body)
	}
}
