package serve

import (
	"bytes"
	"context"
	"fmt"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"minigraph/internal/sim"
	"minigraph/internal/trace"
)

// blobTestJob is one quick job whose capture splits into several chunks
// under the test geometry.
func blobTestJob(t *testing.T) sim.SimJob {
	t.Helper()
	job, err := fastSpec("base", true).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// TestBlobChunkEndpoints exercises the three forms of GET /v1/blobs/{key}
// against a worker whose resident trace spans several chunks: the manifest
// decodes and covers the trace, each chunk frame decodes and matches the
// manifest's CRC, reassembling every chunk reproduces the monolithic blob
// byte for byte, and malformed or out-of-range chunk indices are rejected
// with the right statuses.
func TestBlobChunkEndpoints(t *testing.T) {
	ctx := context.Background()
	eng := sim.New(2).WithTraceChunkRecords(256)
	srv := mustNew(t, Options{Engine: eng})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	job := blobTestJob(t)
	if _, err := eng.Simulate(ctx, job); err != nil {
		t.Fatal(err)
	}
	tk := job.Key().TraceKey()
	kb, err := sim.EncodeTraceKey(tk)
	if err != nil {
		t.Fatal(err)
	}
	base := ts.URL + blobPath(kb)

	resp, body := getBody(t, base+"?manifest=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET ?manifest=1: %d: %s", resp.StatusCode, body)
	}
	m, err := trace.DecodeManifest(body)
	if err != nil {
		t.Fatalf("served manifest does not decode: %v", err)
	}
	if len(m.Chunks) < 4 {
		t.Fatalf("trace split into %d chunks; the test geometry should give several", len(m.Chunks))
	}

	chunks := make(fetchedChunks, len(m.Chunks))
	for i := range m.Chunks {
		resp, body := getBody(t, base+"?chunk="+strconv.Itoa(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET ?chunk=%d: %d: %s", i, resp.StatusCode, body)
		}
		idx, raw, err := trace.DecodeChunk(body)
		if err != nil {
			t.Fatalf("chunk %d frame does not decode: %v", i, err)
		}
		if idx != int64(i) || crc32.ChecksumIEEE(raw) != m.Chunks[i].CRC {
			t.Fatalf("chunk %d frame disagrees with the manifest", i)
		}
		chunks[i] = raw
	}

	resp, blob := getBody(t, base)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET bare blob: %d: %s", resp.StatusCode, blob)
	}
	tr, err := trace.FromManifest(m, chunks)
	if err != nil {
		t.Fatal(err)
	}
	reassembled, err := trace.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reassembled, blob) {
		t.Error("chunk-by-chunk reassembly differs from the monolithic blob")
	}

	for _, q := range []string{"?chunk=abc", "?chunk=-1"} {
		if resp, _ := getBody(t, base+q); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: %d, want 400", q, resp.StatusCode)
		}
	}
	if resp, _ := getBody(t, base+"?chunk=999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET ?chunk=999: %d, want 404", resp.StatusCode)
	}
}

// blobPeer is a handcrafted peer worker serving one trace's manifest and
// chunks with per-chunk behavior overrides, recording which chunks were
// asked for.
type blobPeer struct {
	t        *testing.T
	manifest []byte
	chunk    func(i int64) []byte
	// tamper rewrites the response for one chunk index; nil serves clean.
	tamper map[int64]func(w http.ResponseWriter, frame []byte)

	mu    sync.Mutex
	asked []int64
}

func (p *blobPeer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	switch {
	case q.Get("manifest") != "":
		_, _ = w.Write(p.manifest)
	case q.Get("chunk") != "":
		i, err := strconv.ParseInt(q.Get("chunk"), 10, 64)
		if err != nil {
			p.t.Errorf("peer got bad chunk query %q", q.Get("chunk"))
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		p.mu.Lock()
		p.asked = append(p.asked, i)
		p.mu.Unlock()
		frame := p.chunk(i)
		if tamper := p.tamper[i]; tamper != nil {
			tamper(w, frame)
			return
		}
		_, _ = w.Write(frame)
	default:
		p.t.Errorf("peer got non-chunked blob request %s", r.URL)
		w.WriteHeader(http.StatusNotFound)
	}
}

func (p *blobPeer) askedChunks() []int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]int64(nil), p.asked...)
}

// TestBlobFetchResumesAcrossPeers drives fetchTraceBlob against two
// handcrafted peers: the first serves a good manifest but corrupts one
// chunk and dies (500) on a later one; the second serves everything. The
// transfer must keep the chunks the first peer delivered intact — asking
// the second peer only for what is missing — reject the damaged chunk by
// CRC, and assemble a blob byte-identical to the source worker's.
func TestBlobFetchResumesAcrossPeers(t *testing.T) {
	ctx := context.Background()
	src := sim.New(2).WithTraceChunkRecords(256)
	job := blobTestJob(t)
	if _, err := src.Simulate(ctx, job); err != nil {
		t.Fatal(err)
	}
	tk := job.Key().TraceKey()
	manifest, ok := src.TraceManifest(tk)
	if !ok {
		t.Fatal("source engine holds no manifest")
	}
	m, err := trace.DecodeManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Chunks) < 4 {
		t.Fatalf("trace split into %d chunks; the scenario needs several", len(m.Chunks))
	}
	wantBlob, ok := src.TraceBlob(tk)
	if !ok {
		t.Fatal("source engine holds no blob")
	}
	chunkFrame := func(i int64) []byte {
		frame, ok := src.TraceChunk(tk, i)
		if !ok {
			t.Fatalf("source engine holds no chunk %d", i)
		}
		return frame
	}

	dieAt := int64(len(m.Chunks) - 1)
	flaky := &blobPeer{t: t, manifest: manifest, chunk: chunkFrame, tamper: map[int64]func(http.ResponseWriter, []byte){
		// Chunk 0 arrives bit-flipped: the frame CRC must reject exactly it.
		0: func(w http.ResponseWriter, frame []byte) {
			bad := append([]byte(nil), frame...)
			bad[len(bad)-1] ^= 0x40
			_, _ = w.Write(bad)
		},
		// The peer dies on the last chunk: a transport error, so the
		// transfer moves to the next peer.
		dieAt: func(w http.ResponseWriter, _ []byte) {
			w.WriteHeader(http.StatusInternalServerError)
		},
	}}
	good := &blobPeer{t: t, manifest: manifest, chunk: chunkFrame}
	p1 := httptest.NewServer(flaky)
	p2 := httptest.NewServer(good)
	t.Cleanup(func() { p1.Close(); p2.Close() })

	fetcher := mustNew(t, Options{Engine: sim.New(1)})
	t.Cleanup(fetcher.Close)
	fctx := withBlobPeers(ctx, blobSources{peers: []string{p1.URL, p2.URL}})
	blob, err := fetcher.fetchTraceBlob(fctx, tk)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, wantBlob) {
		t.Fatal("assembled blob differs from the source worker's")
	}

	// The first peer was asked for everything once; the second only for
	// the holes — the damaged chunk 0 and everything from the death
	// onward, never the chunks already fetched and verified.
	if got := flaky.askedChunks(); int64(len(got)) != dieAt+1 {
		t.Errorf("flaky peer was asked %v, want chunks 0..%d once each", got, dieAt)
	}
	var wantResume []int64
	wantResume = append(wantResume, 0)
	for i := dieAt; i < int64(len(m.Chunks)); i++ {
		wantResume = append(wantResume, i)
	}
	gotResume := good.askedChunks()
	if fmt.Sprint(gotResume) != fmt.Sprint(wantResume) {
		t.Errorf("resume peer was asked %v, want exactly the holes %v", gotResume, wantResume)
	}
}

// TestBlobFetchAllPeersDamaged: when every peer serves damaged bytes the
// fetch must fail loudly (the engine counts a peer reject) instead of
// silently reporting "no peer had it".
func TestBlobFetchAllPeersDamaged(t *testing.T) {
	ctx := context.Background()
	src := sim.New(2).WithTraceChunkRecords(256)
	job := blobTestJob(t)
	if _, err := src.Simulate(ctx, job); err != nil {
		t.Fatal(err)
	}
	tk := job.Key().TraceKey()
	manifest, _ := src.TraceManifest(tk)
	corruptAll := func(w http.ResponseWriter, frame []byte) {
		bad := append([]byte(nil), frame...)
		bad[len(bad)-1] ^= 0x40
		_, _ = w.Write(bad)
	}
	peer := &blobPeer{t: t, manifest: manifest, tamper: map[int64]func(http.ResponseWriter, []byte){}, chunk: func(i int64) []byte {
		frame, _ := src.TraceChunk(tk, i)
		return frame
	}}
	m, err := trace.DecodeManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Chunks {
		peer.tamper[int64(i)] = corruptAll
	}
	p := httptest.NewServer(peer)
	t.Cleanup(p.Close)

	fetcher := mustNew(t, Options{Engine: sim.New(1)})
	t.Cleanup(fetcher.Close)
	fctx := withBlobPeers(ctx, blobSources{peers: []string{p.URL}})
	blob, err := fetcher.fetchTraceBlob(fctx, tk)
	if err == nil {
		t.Fatalf("fetch over all-damaged chunks returned blob=%d bytes, err=nil; want a rejection", len(blob))
	}
}
