// Package serve implements the mgserve HTTP API: a thin, stateless
// serving layer over the shared memoizing simulation engine and the
// persistent result store.
//
// Endpoints:
//
//	POST /v1/simulate            one simulation job, JSON JobSpec in,
//	                             JobResult out
//	POST /v1/sweep               a batch of named arms; duplicate and
//	                             concurrent arms coalesce through the
//	                             engine's single-flight cache; the
//	                             response is the structured sim.Report
//	GET  /v1/experiments/{name}  full figure reproduction as Report JSON
//	GET  /healthz                liveness
//	GET  /statsz                 engine + store hit counters
//
// All simulation work funnels through one sim.Engine, so identical jobs —
// across requests, across endpoints, and across concurrent callers — run
// at most once per process, and at most once ever when a store is
// attached.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"minigraph/internal/core"
	"minigraph/internal/experiments"
	"minigraph/internal/sim"
	"minigraph/internal/store"
	"minigraph/internal/uarch"
	"minigraph/internal/workload"
)

// DefaultMaxSweepJobs bounds the arms accepted by one sweep request.
const DefaultMaxSweepJobs = 1024

// Options configure a server.
type Options struct {
	// Engine is the shared simulation engine (required). Attach a
	// persistent store to it with WithStore before serving; /statsz
	// reports whatever store the engine carries.
	Engine *sim.Engine
	// MaxSweepJobs bounds the arms in one sweep request (0 = default).
	MaxSweepJobs int
}

// Server is the mgserve HTTP handler.
type Server struct {
	eng      *sim.Engine
	maxSweep int
	started  time.Time
	mux      *http.ServeMux
}

// New builds the handler.
func New(o Options) *Server {
	if o.Engine == nil {
		panic("serve: Options.Engine is required")
	}
	maxSweep := o.MaxSweepJobs
	if maxSweep <= 0 {
		maxSweep = DefaultMaxSweepJobs
	}
	s := &Server{
		eng:      o.Engine,
		maxSweep: maxSweep,
		started:  time.Now(),
		mux:      http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/experiments/{name}", s.handleExperiment)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /statsz", s.handleStats)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// JobSpec is the wire form of one simulation job. Machine configurations
// are requested by preset name plus a few overrides rather than by the
// full uarch.Config, so clients stay decoupled from simulator internals.
type JobSpec struct {
	// Arm is the display label echoed into result rows (optional).
	Arm string `json:"arm,omitempty"`
	// Bench is a built-in benchmark name (required).
	Bench string `json:"bench"`
	// Input selects the data set: "train" (default) or "test".
	Input string `json:"input,omitempty"`
	// Baseline simulates the unrewritten binary (no extraction).
	Baseline bool `json:"baseline,omitempty"`
	// Machine is a preset: "baseline" (default for baseline jobs),
	// "minigraph" (integer-memory, default otherwise) or "minigraph-int"
	// (integer-only extraction and machine).
	Machine string `json:"machine,omitempty"`
	// Collapse enables pair-wise collapsing ALU pipelines.
	Collapse bool `json:"collapse,omitempty"`
	// Entries is the MGT size (default 512); MaxSize caps mini-graph size
	// (default 4). Both apply to non-baseline jobs only.
	Entries int `json:"entries,omitempty"`
	MaxSize int `json:"max_size,omitempty"`
	// Compress selects the compressed text layout (§6.2).
	Compress bool `json:"compress,omitempty"`

	// Optional machine overrides (0 = preset value). MemLatency is the DRAM
	// access latency in core cycles; chains built from it may exceed the
	// pipeline's event-wheel page size, which the wheel handles exactly.
	Width       int   `json:"width,omitempty"`
	PhysRegs    int   `json:"phys_regs,omitempty"`
	SchedCycles int   `json:"sched_cycles,omitempty"`
	MemLatency  int   `json:"mem_latency,omitempty"`
	MaxRecords  int64 `json:"max_records,omitempty"`
}

// Resolve validates the spec and builds the engine job.
func (js JobSpec) Resolve() (sim.SimJob, error) {
	var job sim.SimJob
	if js.Bench == "" {
		return job, fmt.Errorf("bench is required")
	}
	if _, ok := workload.ByName(js.Bench); !ok {
		return job, fmt.Errorf("unknown benchmark %q (known: %s)", js.Bench, strings.Join(workload.Names(), " "))
	}
	input := workload.InputTrain
	switch js.Input {
	case "", "train":
	case "test":
		input = workload.InputTest
	default:
		return job, fmt.Errorf("input must be \"train\" or \"test\", got %q", js.Input)
	}

	machine := js.machine()
	var cfg uarch.Config
	intMem := false
	switch machine {
	case "baseline":
		if !js.Baseline {
			return job, fmt.Errorf("machine \"baseline\" has no mini-graph support; set baseline=true or pick \"minigraph\"")
		}
		cfg = uarch.Baseline()
	case "minigraph":
		cfg = uarch.MiniGraph(true)
		intMem = true
	case "minigraph-int":
		cfg = uarch.MiniGraph(false)
	default:
		return job, fmt.Errorf("unknown machine %q (want baseline, minigraph or minigraph-int)", machine)
	}
	cfg.Collapse = js.Collapse
	if js.Width != 0 {
		if js.Width <= 0 {
			return job, fmt.Errorf("width must be positive")
		}
		cfg.FetchWidth, cfg.RenameWidth, cfg.CommitWidth = js.Width, js.Width, js.Width
	}
	if js.PhysRegs != 0 {
		if js.PhysRegs < 65 {
			return job, fmt.Errorf("phys_regs must be at least 65")
		}
		cfg.PhysRegs = js.PhysRegs
	}
	if js.SchedCycles != 0 {
		if js.SchedCycles < 1 || js.SchedCycles > 2 {
			return job, fmt.Errorf("sched_cycles must be 1 or 2")
		}
		cfg.SchedCycles = js.SchedCycles
	}
	if js.MemLatency != 0 {
		if js.MemLatency < 0 {
			return job, fmt.Errorf("mem_latency must be non-negative")
		}
		cfg.MemLatency = js.MemLatency
	}
	if js.MaxRecords < 0 {
		return job, fmt.Errorf("max_records must be non-negative")
	}
	cfg.MaxRecords = js.MaxRecords
	// No stream-window fixup is needed for any accepted override: the live
	// stream derives its rewind window from the machine's own squash depth
	// (Config.EffectiveStreamWindow), and replay sources retain the whole
	// trace.

	job = sim.SimJob{
		Prepare:  sim.PrepareKey{Bench: js.Bench, Input: input},
		Baseline: js.Baseline,
		Config:   cfg,
	}
	if !js.Baseline {
		pol := core.DefaultPolicy()
		pol.AllowMem = intMem
		if js.MaxSize != 0 {
			if js.MaxSize < 2 {
				return job, fmt.Errorf("max_size must be at least 2")
			}
			pol.MaxSize = js.MaxSize
		}
		job.Policy = pol
		job.Entries = js.Entries
		if js.Entries == 0 {
			job.Entries = 512
		} else if js.Entries < 0 {
			return job, fmt.Errorf("entries must be positive")
		}
		job.Compress = js.Compress
	}
	return job, nil
}

// machine resolves the preset name, defaulting by job kind. Resolve and
// label share this so row labels always name the machine that ran.
func (js JobSpec) machine() string {
	if js.Machine != "" {
		return js.Machine
	}
	if js.Baseline {
		return "baseline"
	}
	return "minigraph"
}

// label is the row label for a spec: the explicit arm name or a synthetic
// bench@machine one.
func (js JobSpec) label() string {
	if js.Arm != "" {
		return js.Arm
	}
	return js.Bench + "@" + js.machine()
}

// JobResult is the /v1/simulate response.
type JobResult struct {
	Arm string `json:"arm,omitempty"`
	// Result is the full simulator statistics block.
	Result *uarch.Result `json:"result"`
	IPC    float64       `json:"ipc"`
	// Coverage and Templates describe the extraction (absent for baseline
	// jobs).
	Coverage  float64 `json:"coverage,omitempty"`
	Templates int     `json:"templates,omitempty"`
}

func jobResult(js JobSpec, out *sim.Outcome) JobResult {
	jr := JobResult{Arm: js.Arm, Result: out.Result, IPC: out.Result.IPC()}
	if out.Selection != nil {
		jr.Coverage = out.Selection.Coverage()
		jr.Templates = len(out.Selection.Templates)
	}
	return jr
}

// SweepRequest is the /v1/sweep body: a named batch of arms.
type SweepRequest struct {
	Name  string    `json:"name,omitempty"`
	Title string    `json:"title,omitempty"`
	Jobs  []JobSpec `json:"jobs"`
}

// SweepReport assembles the canonical sweep Report: per arm, the cycles
// and IPC of the simulation plus extraction coverage when the job
// extracted. This is the exact structure /v1/sweep responds with, exported
// so in-process callers can produce byte-identical output.
func SweepReport(req SweepRequest, outs []*sim.Outcome) *sim.Report {
	name := req.Name
	if name == "" {
		name = "sweep"
	}
	title := req.Title
	if title == "" {
		title = fmt.Sprintf("sweep: %d arms", len(req.Jobs))
	}
	rep := sim.NewReport(name, title)
	for i, js := range req.Jobs {
		out := outs[i]
		rep.Add(
			sim.Row{Bench: js.Bench, Arm: js.label(), Metric: "cycles", Value: float64(out.Result.Cycles)},
			sim.Row{Bench: js.Bench, Arm: js.label(), Metric: "ipc", Value: out.Result.IPC()},
		)
		if out.Selection != nil {
			rep.Add(sim.Row{Bench: js.Bench, Arm: js.label(), Metric: "coverage", Value: out.Selection.Coverage()})
		}
	}
	return rep
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var js JobSpec
	if err := decodeBody(r, &js); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	job, err := js.Resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out, err := s.eng.Simulate(r.Context(), job)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, jobResult(js, out))
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("sweep needs at least one job"))
		return
	}
	if len(req.Jobs) > s.maxSweep {
		httpError(w, http.StatusBadRequest, fmt.Errorf("sweep of %d jobs exceeds the %d-job limit", len(req.Jobs), s.maxSweep))
		return
	}
	jobs := make([]sim.SimJob, len(req.Jobs))
	for i, js := range req.Jobs {
		job, err := js.Resolve()
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("jobs[%d]: %w", i, err))
			return
		}
		jobs[i] = job
	}
	outs, err := s.eng.Run(r.Context(), jobs)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeReport(w, SweepReport(req, outs))
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	known := false
	for _, id := range experiments.IDs() {
		if id == name {
			known = true
			break
		}
	}
	if !known {
		httpError(w, http.StatusNotFound,
			fmt.Errorf("unknown experiment %q (known: %s)", name, strings.Join(experiments.IDs(), " ")))
		return
	}
	o := experiments.DefaultOptions()
	o.Engine = s.eng
	o.Context = r.Context()
	if bl := r.URL.Query().Get("benchmarks"); bl != "" {
		o.Benchmarks = strings.Split(bl, ",")
	}
	a, err := experiments.Run(name, o)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, experiments.ErrUnknownBenchmark) {
			status = http.StatusBadRequest
		}
		httpError(w, status, err)
		return
	}
	writeReport(w, a.Report)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"status": "ok"})
}

// statsResponse is the /statsz body.
type statsResponse struct {
	Engine        sim.Stats    `json:"engine"`
	PipelineSims  int64        `json:"pipeline_sims"`
	Store         *store.Stats `json:"store,omitempty"`
	Workers       int          `json:"workers"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Experiments   []string     `json:"experiments"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	resp := statsResponse{
		Engine:        st,
		PipelineSims:  st.PipelineSims(),
		Workers:       s.eng.Workers(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Experiments:   experiments.IDs(),
	}
	if st := s.eng.Store(); st != nil {
		ss := st.Stats()
		resp.Store = &ss
	}
	writeJSON(w, resp)
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("trailing data after request body")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeReport writes exactly Report.JSON() (plus a trailing newline), so a
// served report is byte-identical to one produced in-process.
func writeReport(w http.ResponseWriter, rep *sim.Report) {
	data, err := rep.JSON()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
	_, _ = w.Write([]byte("\n"))
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
