// Package serve implements the mgserve HTTP API: the serving layer over
// the shared memoizing simulation engine and the persistent result store.
//
// Synchronous endpoints:
//
//	POST /v1/simulate            one simulation job, JSON JobSpec in,
//	                             JobResult out
//	POST /v1/sweep               a batch of named arms; duplicate and
//	                             concurrent arms coalesce through the
//	                             engine's single-flight cache; the
//	                             response is the structured sim.Report
//	POST /v1/outcome             one JobSpec in, the canonical encoded
//	                             sim.Outcome out (the worker-to-worker
//	                             form the coordinator fans out with)
//	GET  /v1/experiments/{name}  full figure reproduction as Report JSON
//	GET  /healthz                liveness
//	GET  /statsz                 engine + store + job counters
//
// Asynchronous job endpoints (see JobManager):
//
//	POST   /v1/jobs              submit a sweep, returns a job id at once
//	GET    /v1/jobs              list known jobs (without reports)
//	GET    /v1/jobs/{id}         status, per-arm progress, embedded report
//	GET    /v1/jobs/{id}/report  the finished sweep's raw Report JSON,
//	                             byte-identical to POST /v1/sweep
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//
// All simulation work funnels through one sim.Engine, so identical jobs —
// across requests, across endpoints, and across concurrent callers — run
// at most once per process, and at most once ever when a store is
// attached. With Options.Workers set the server instead runs as a
// coordinator: sweep arms are sharded across worker mgserve processes by
// rendezvous hashing on each arm's TraceKey, so every arm lands on the
// worker that already holds its captured trace (see Coordinator).
//
// Every error response carries Content-Type application/json and a
// structured {"error": ...} body — including mux-level 404/405s.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"minigraph/internal/core"
	"minigraph/internal/experiments"
	"minigraph/internal/sim"
	"minigraph/internal/store"
	"minigraph/internal/uarch"
	"minigraph/internal/uarch/bpred"
	"minigraph/internal/uarch/prefetch"
	"minigraph/internal/workload"
)

// DefaultMaxSweepJobs bounds the arms accepted by one sweep request.
const DefaultMaxSweepJobs = 1024

// DefaultMaxBodyBytes caps one request body. Sweep requests are a few KB
// per arm; 8 MiB leaves ample headroom while keeping a garbage POST from
// buffering unbounded bytes.
const DefaultMaxBodyBytes = 8 << 20

// Options configure a server.
type Options struct {
	// Engine is the shared simulation engine (required). Attach a
	// persistent store to it with WithStore before serving; /statsz
	// reports whatever store the engine carries, and async job state
	// persists through the same store.
	Engine *sim.Engine
	// MaxSweepJobs bounds the arms in one sweep request (0 = default).
	MaxSweepJobs int
	// MaxBodyBytes caps one request body; beyond it the request is
	// refused with 413 (0 = DefaultMaxBodyBytes, negative = uncapped).
	MaxBodyBytes int64

	// Workers are base URLs of worker mgserve processes. When non-empty
	// the server runs in coordinator mode: /v1/simulate, /v1/sweep and
	// async jobs shard their arms across the workers by trace-key
	// affinity instead of running on the local engine. /v1/experiments
	// still runs locally.
	Workers []string
	// Coordinator forces coordinator mode even with no static workers —
	// the tier then starts empty and workers join by registering. When
	// false, the server accepts registrations only if Workers is set.
	Coordinator bool
	// MemberTTL is how long a registered worker stays routable after its
	// last heartbeat (0 = DefaultMemberTTL). Static Workers never expire.
	MemberTTL time.Duration
	// FanoutConcurrency bounds the coordinator's in-flight worker calls
	// (0 = 4 × workers).
	FanoutConcurrency int
	// WorkerCallTimeout bounds one coordinator→worker call
	// (0 = DefaultWorkerCallTimeout). A worker that hangs past it counts
	// as failed and its arms re-route.
	WorkerCallTimeout time.Duration

	// RateLimit admits this many requests/second per client (remote IP)
	// to /v1/sweep and /v1/jobs, with RateBurst bucket capacity
	// (0 = 2 × RateLimit). RateLimit 0 disables rate limiting.
	RateLimit float64
	RateBurst float64
	// MaxInflightSweeps bounds concurrently executing synchronous sweeps;
	// beyond it requests shed with 503 + Retry-After
	// (0 = DefaultMaxInflightSweeps, negative = unbounded).
	MaxInflightSweeps int

	// JobQueue bounds queued async jobs (0 = DefaultJobQueue); further
	// submissions are refused with 503. JobRunners is the number of jobs
	// executed concurrently (0 = DefaultJobRunners); each running job
	// still parallelizes internally through the engine or coordinator.
	JobQueue   int
	JobRunners int

	// Chaos, when non-nil, injects seeded faults into the blob-serving
	// path (tests only; see Chaos). Counters appear in /statsz.
	Chaos *Chaos
	// Scrub, when non-nil, is the report of a store scrub pass run at
	// startup (mgserve -scrub); /statsz exposes it.
	Scrub *store.ScrubReport
}

// Server is the mgserve HTTP handler.
type Server struct {
	eng      *sim.Engine
	maxSweep int
	maxBody  int64
	started  time.Time
	mux      *http.ServeMux
	coord    *Coordinator // nil in single-process mode
	adm      *admission
	jobs     *JobManager
	chaos    *Chaos             // nil outside chaos tests
	scrub    *store.ScrubReport // nil unless a startup scrub ran
}

// New builds the handler. Close it when done to stop the async job
// runners. An error means the options cannot produce a working server
// (no engine, or a coordinator configuration that can never route).
func New(o Options) (*Server, error) {
	if o.Engine == nil {
		return nil, fmt.Errorf("serve: Options.Engine is required")
	}
	maxSweep := o.MaxSweepJobs
	if maxSweep <= 0 {
		maxSweep = DefaultMaxSweepJobs
	}
	maxBody := o.MaxBodyBytes
	if maxBody == 0 {
		maxBody = DefaultMaxBodyBytes
	}
	s := &Server{
		eng:      o.Engine,
		maxSweep: maxSweep,
		maxBody:  maxBody,
		started:  time.Now(),
		mux:      http.NewServeMux(),
		adm:      newAdmission(o.RateLimit, o.RateBurst, o.MaxInflightSweeps),
		chaos:    o.Chaos,
		scrub:    o.Scrub,
	}
	if len(o.Workers) > 0 || o.Coordinator {
		coord, err := NewCoordinator(CoordinatorOptions{
			Workers:           o.Workers,
			AllowDynamic:      o.Coordinator,
			MemberTTL:         o.MemberTTL,
			FanoutConcurrency: o.FanoutConcurrency,
			WorkerCallTimeout: o.WorkerCallTimeout,
		})
		if err != nil {
			return nil, err
		}
		s.coord = coord
	}
	// Workers fetch trace blobs from the peers the coordinator names on
	// each /v1/outcome call instead of re-capturing (see blobs.go).
	o.Engine.WithTraceFetcher(s.fetchTraceBlob)
	s.jobs = newJobManager(s, o.JobQueue, o.JobRunners)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/outcome", s.handleOutcome)
	s.mux.HandleFunc("GET /v1/blobs/{traceKey}", s.handleBlob)
	s.mux.HandleFunc("POST /v1/workers/register", s.handleRegister)
	s.mux.HandleFunc("GET /v1/workers", s.handleWorkers)
	s.mux.HandleFunc("GET /v1/experiments/{name}", s.handleExperiment)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleJobReport)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /statsz", s.handleStats)
	return s, nil
}

// Close stops the async job runners. Running jobs are aborted and left in
// a requeueable persisted state (not marked canceled), so a restarted
// server picks them back up.
func (s *Server) Close() { s.jobs.close() }

// ServeHTTP serves the API. Every handler response passes through a
// json-error rewriter, so even the mux's own plain-text 404/405 paths
// reach the client as structured {"error": ...} JSON.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	jw := &jsonErrorWriter{rw: w}
	s.mux.ServeHTTP(jw, r)
	jw.finish()
}

// runSweep executes resolved jobs either on the local engine or, in
// coordinator mode, sharded across the worker tier. onDone (optional)
// fires as each arm completes, from that arm's goroutine. specs and jobs
// are index-aligned.
//
// On the local engine, arms sharing a captured trace execute as gangs
// (one shared-decode traversal driving all of their pipelines) unless the
// engine was built WithGangReplay(false); reports are byte-identical
// either way and /statsz's gang counters (gangs_formed, gang_arms,
// gang_shared_records, gang_fallback_solo) show whether sweeps actually
// gang. In coordinator mode arms reach each worker one at a time through
// /v1/outcome, so cross-arm ganging applies to single-process sweeps.
func (s *Server) runSweep(ctx context.Context, specs []JobSpec, jobs []sim.SimJob, onDone func(int, *sim.Outcome)) ([]*sim.Outcome, error) {
	if s.coord != nil {
		return s.coord.Run(ctx, specs, jobs, onDone)
	}
	return s.eng.RunEach(ctx, jobs, onDone)
}

// resolveSweep validates a sweep request: bounds, per-arm resolution, and
// arm-name uniqueness (duplicate labels would make the per-arm report rows
// ambiguous, so they are rejected outright naming the offender).
func (s *Server) resolveSweep(req SweepRequest) ([]sim.SimJob, error) {
	if len(req.Jobs) == 0 {
		return nil, fmt.Errorf("sweep needs at least one job")
	}
	if len(req.Jobs) > s.maxSweep {
		return nil, fmt.Errorf("sweep of %d jobs exceeds the %d-job limit", len(req.Jobs), s.maxSweep)
	}
	jobs := make([]sim.SimJob, len(req.Jobs))
	seen := make(map[string]int, len(req.Jobs))
	for i, js := range req.Jobs {
		job, err := js.Resolve()
		if err != nil {
			return nil, fmt.Errorf("jobs[%d]: %w", i, err)
		}
		if prev, dup := seen[js.label()]; dup {
			return nil, fmt.Errorf("jobs[%d]: duplicate arm %q (also jobs[%d]); arm names must be unique within a sweep", i, js.label(), prev)
		}
		seen[js.label()] = i
		jobs[i] = job
	}
	return jobs, nil
}

// JobSpec is the wire form of one simulation job. Machine configurations
// are requested by preset name plus a few overrides rather than by the
// full uarch.Config, so clients stay decoupled from simulator internals.
type JobSpec struct {
	// Arm is the display label echoed into result rows (optional).
	Arm string `json:"arm,omitempty"`
	// Bench is a built-in benchmark name (required).
	Bench string `json:"bench"`
	// Input selects the data set: "train" (default) or "test".
	Input string `json:"input,omitempty"`
	// Baseline simulates the unrewritten binary (no extraction).
	Baseline bool `json:"baseline,omitempty"`
	// Machine is a preset: "baseline" (default for baseline jobs),
	// "minigraph" (integer-memory, default otherwise) or "minigraph-int"
	// (integer-only extraction and machine).
	Machine string `json:"machine,omitempty"`
	// Collapse enables pair-wise collapsing ALU pipelines.
	Collapse bool `json:"collapse,omitempty"`
	// Entries is the MGT size (default 512); MaxSize caps mini-graph size
	// (default 4). Both apply to non-baseline jobs only.
	Entries int `json:"entries,omitempty"`
	MaxSize int `json:"max_size,omitempty"`
	// Compress selects the compressed text layout (§6.2).
	Compress bool `json:"compress,omitempty"`

	// Optional machine overrides (0 = preset value). MemLatency is the DRAM
	// access latency in core cycles; chains built from it may exceed the
	// pipeline's event-wheel page size, which the wheel handles exactly.
	Width       int   `json:"width,omitempty"`
	PhysRegs    int   `json:"phys_regs,omitempty"`
	SchedCycles int   `json:"sched_cycles,omitempty"`
	MemLatency  int   `json:"mem_latency,omitempty"`
	MaxRecords  int64 `json:"max_records,omitempty"`

	// Front-end overrides. Predictor selects the branch predictor kind
	// ("hybrid" default, "tage"); Prefetcher the data prefetcher ("none"
	// default, "delta"). The prefetch sizing fields override the selected
	// prefetcher's defaults (0 = default) and are rejected without one.
	Predictor        string `json:"predictor,omitempty"`
	Prefetcher       string `json:"prefetcher,omitempty"`
	PrefetchEntries  int    `json:"prefetch_entries,omitempty"`
	PrefetchDegree   int    `json:"prefetch_degree,omitempty"`
	PrefetchDistance int    `json:"prefetch_distance,omitempty"`
}

// Resolve validates the spec and builds the engine job.
func (js JobSpec) Resolve() (sim.SimJob, error) {
	var job sim.SimJob
	if js.Bench == "" {
		return job, fmt.Errorf("bench is required")
	}
	if _, ok := workload.ByName(js.Bench); !ok {
		return job, fmt.Errorf("unknown benchmark %q (known: %s)", js.Bench, strings.Join(workload.Names(), " "))
	}
	input := workload.InputTrain
	switch js.Input {
	case "", "train":
	case "test":
		input = workload.InputTest
	default:
		return job, fmt.Errorf("input must be \"train\" or \"test\", got %q", js.Input)
	}

	machine := js.machine()
	var cfg uarch.Config
	intMem := false
	switch machine {
	case "baseline":
		if !js.Baseline {
			return job, fmt.Errorf("machine \"baseline\" has no mini-graph support; set baseline=true or pick \"minigraph\"")
		}
		cfg = uarch.Baseline()
	case "minigraph":
		cfg = uarch.MiniGraph(true)
		intMem = true
	case "minigraph-int":
		cfg = uarch.MiniGraph(false)
	default:
		return job, fmt.Errorf("unknown machine %q (want baseline, minigraph or minigraph-int)", machine)
	}
	cfg.Collapse = js.Collapse
	if js.Width != 0 {
		if js.Width <= 0 {
			return job, fmt.Errorf("width must be positive")
		}
		cfg.FetchWidth, cfg.RenameWidth, cfg.CommitWidth = js.Width, js.Width, js.Width
	}
	if js.PhysRegs != 0 {
		if js.PhysRegs < 65 {
			return job, fmt.Errorf("phys_regs must be at least 65")
		}
		cfg.PhysRegs = js.PhysRegs
	}
	if js.SchedCycles != 0 {
		if js.SchedCycles < 1 || js.SchedCycles > 2 {
			return job, fmt.Errorf("sched_cycles must be 1 or 2")
		}
		cfg.SchedCycles = js.SchedCycles
	}
	if js.MemLatency != 0 {
		if js.MemLatency < 0 {
			return job, fmt.Errorf("mem_latency must be non-negative")
		}
		cfg.MemLatency = js.MemLatency
	}
	if js.MaxRecords < 0 {
		return job, fmt.Errorf("max_records must be non-negative")
	}
	cfg.MaxRecords = js.MaxRecords
	switch js.Predictor {
	case "", bpred.KindHybrid:
		// The presets already carry the hybrid predictor.
	case bpred.KindTAGE:
		cfg.BPred = bpred.TageConfig()
	default:
		return job, fmt.Errorf("unknown predictor %q (known: %s)", js.Predictor, strings.Join(bpred.Kinds(), " "))
	}
	switch js.Prefetcher {
	case "", prefetch.KindNone:
		if js.PrefetchEntries != 0 || js.PrefetchDegree != 0 || js.PrefetchDistance != 0 {
			return job, fmt.Errorf("prefetch sizing overrides require prefetcher %q", prefetch.KindDelta)
		}
	case prefetch.KindDelta:
		pf := prefetch.DefaultDelta()
		if js.PrefetchEntries != 0 {
			pf.Entries = js.PrefetchEntries
		}
		if js.PrefetchDegree != 0 {
			pf.Degree = js.PrefetchDegree
		}
		if js.PrefetchDistance != 0 {
			pf.Distance = js.PrefetchDistance
		}
		if err := pf.Validate(); err != nil {
			return job, err
		}
		cfg.Prefetcher = pf
	default:
		return job, fmt.Errorf("unknown prefetcher %q (known: %s)", js.Prefetcher, strings.Join(prefetch.Kinds(), " "))
	}
	// No stream-window fixup is needed for any accepted override: the live
	// stream derives its rewind window from the machine's own squash depth
	// (Config.EffectiveStreamWindow), and replay sources retain the whole
	// trace.

	job = sim.SimJob{
		Prepare:  sim.PrepareKey{Bench: js.Bench, Input: input},
		Baseline: js.Baseline,
		Config:   cfg,
	}
	if !js.Baseline {
		pol := core.DefaultPolicy()
		pol.AllowMem = intMem
		if js.MaxSize != 0 {
			if js.MaxSize < 2 {
				return job, fmt.Errorf("max_size must be at least 2")
			}
			pol.MaxSize = js.MaxSize
		}
		job.Policy = pol
		job.Entries = js.Entries
		if js.Entries == 0 {
			job.Entries = 512
		} else if js.Entries < 0 {
			return job, fmt.Errorf("entries must be positive")
		}
		job.Compress = js.Compress
	}
	return job, nil
}

// machine resolves the preset name, defaulting by job kind. Resolve and
// label share this so row labels always name the machine that ran.
func (js JobSpec) machine() string {
	if js.Machine != "" {
		return js.Machine
	}
	if js.Baseline {
		return "baseline"
	}
	return "minigraph"
}

// label is the row label for a spec: the explicit arm name or a synthetic
// bench@machine one.
func (js JobSpec) label() string {
	if js.Arm != "" {
		return js.Arm
	}
	return js.Bench + "@" + js.machine()
}

// JobResult is the /v1/simulate response.
type JobResult struct {
	Arm string `json:"arm,omitempty"`
	// Result is the full simulator statistics block.
	Result *uarch.Result `json:"result"`
	IPC    float64       `json:"ipc"`
	// Coverage and Templates describe the extraction (absent for baseline
	// jobs).
	Coverage  float64 `json:"coverage,omitempty"`
	Templates int     `json:"templates,omitempty"`
}

func jobResult(js JobSpec, out *sim.Outcome) JobResult {
	jr := JobResult{Arm: js.Arm, Result: out.Result, IPC: out.Result.IPC()}
	if out.Selection != nil {
		jr.Coverage = out.Selection.Coverage()
		jr.Templates = len(out.Selection.Templates)
	}
	return jr
}

// SweepRequest is the /v1/sweep body: a named batch of arms.
type SweepRequest struct {
	Name  string    `json:"name,omitempty"`
	Title string    `json:"title,omitempty"`
	Jobs  []JobSpec `json:"jobs"`
}

// SweepReport assembles the canonical sweep Report: per arm, the cycles,
// IPC and conditional-mispredict rate of the simulation, the prefetch
// counters when the arm's machine prefetched, plus extraction coverage
// when the job extracted. This is the exact structure /v1/sweep responds
// with, exported so in-process callers can produce byte-identical output.
func SweepReport(req SweepRequest, outs []*sim.Outcome) *sim.Report {
	name := req.Name
	if name == "" {
		name = "sweep"
	}
	title := req.Title
	if title == "" {
		title = fmt.Sprintf("sweep: %d arms", len(req.Jobs))
	}
	rep := sim.NewReport(name, title)
	for i, js := range req.Jobs {
		out := outs[i]
		rep.Add(
			sim.Row{Bench: js.Bench, Arm: js.label(), Metric: "cycles", Value: float64(out.Result.Cycles)},
			sim.Row{Bench: js.Bench, Arm: js.label(), Metric: "ipc", Value: out.Result.IPC()},
			sim.Row{Bench: js.Bench, Arm: js.label(), Metric: "cond_mispredict_rate", Value: out.Result.CondMispredictRate()},
		)
		if out.Result.PrefetchIssued > 0 {
			rep.Add(
				sim.Row{Bench: js.Bench, Arm: js.label(), Metric: "prefetch_issued", Value: float64(out.Result.PrefetchIssued)},
				sim.Row{Bench: js.Bench, Arm: js.label(), Metric: "prefetch_useful", Value: float64(out.Result.PrefetchUseful)},
				sim.Row{Bench: js.Bench, Arm: js.label(), Metric: "prefetch_late", Value: float64(out.Result.PrefetchLate)},
			)
		}
		if out.Selection != nil {
			rep.Add(sim.Row{Bench: js.Bench, Arm: js.label(), Metric: "coverage", Value: out.Selection.Coverage()})
		}
	}
	return rep
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var js JobSpec
	if err := s.decodeBody(w, r, &js); err != nil {
		httpBodyError(w, err)
		return
	}
	job, err := js.Resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	outs, err := s.runSweep(r.Context(), []JobSpec{js}, []sim.SimJob{job}, nil)
	if err != nil {
		httpAbortOrError(w, r, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, jobResult(js, outs[0]))
}

// handleOutcome is the worker-facing form of /v1/simulate: it returns the
// full canonical sim.Outcome encoding (result + selection), which is what
// the coordinator needs to rebuild a merged Report byte-identical to
// single-process execution. Always served by the local engine — a
// coordinator is not a worker.
//
// When the coordinator names blob peers for the arm (the
// X-Minigraph-Blob-Peers header), they ride the context into the engine's
// trace fetcher: a worker that lacks the capture pulls the blob from the
// key's previous owner instead of re-emulating.
func (s *Server) handleOutcome(w http.ResponseWriter, r *http.Request) {
	var js JobSpec
	if err := s.decodeBody(w, r, &js); err != nil {
		httpBodyError(w, err)
		return
	}
	job, err := js.Resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out, err := s.eng.Simulate(withBlobPeers(r.Context(), parseBlobPeers(r)), job)
	if err != nil {
		httpAbortOrError(w, r, http.StatusInternalServerError, err)
		return
	}
	data, err := sim.EncodeOutcome(out)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if retry, ok := s.adm.admit(clientKey(r)); !ok {
		w.Header().Set("Retry-After", retryAfterSeconds(retry))
		httpError(w, http.StatusTooManyRequests, fmt.Errorf("rate limit exceeded; retry after %s seconds", retryAfterSeconds(retry)))
		return
	}
	if !s.adm.beginSweep() {
		w.Header().Set("Retry-After", retryAfterSeconds(time.Second))
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("server at capacity (%d sweeps in flight); retry later or submit via /v1/jobs", s.adm.maxInflight))
		return
	}
	defer s.adm.endSweep()
	var req SweepRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		httpBodyError(w, err)
		return
	}
	jobs, err := s.resolveSweep(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	outs, err := s.runSweep(r.Context(), req.Jobs, jobs, nil)
	if err != nil {
		httpAbortOrError(w, r, http.StatusInternalServerError, err)
		return
	}
	writeReport(w, SweepReport(req, outs))
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	known := false
	for _, id := range experiments.IDs() {
		if id == name {
			known = true
			break
		}
	}
	if !known {
		httpError(w, http.StatusNotFound,
			fmt.Errorf("unknown experiment %q (known: %s)", name, strings.Join(experiments.IDs(), " ")))
		return
	}
	o := experiments.DefaultOptions()
	o.Engine = s.eng
	o.Context = r.Context()
	if bl := r.URL.Query().Get("benchmarks"); bl != "" {
		o.Benchmarks = strings.Split(bl, ",")
	}
	a, err := experiments.Run(name, o)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, experiments.ErrUnknownBenchmark) {
			status = http.StatusBadRequest
		}
		httpError(w, status, err)
		return
	}
	writeReport(w, a.Report)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"status": "ok"})
}

// RegisterRequest is the POST /v1/workers/register body: the worker's own
// advertised base URL. Re-POSTing is the heartbeat.
type RegisterRequest struct {
	URL string `json:"url"`
}

// RegisterResponse tells the registering worker the membership TTL; it
// should heartbeat well within it (mgserve -register beats at TTL/3).
type RegisterResponse struct {
	URL        string  `json:"url"`
	TTLSeconds float64 `json:"ttl_seconds"`
}

// handleRegister admits a worker into (or refreshes it in) the
// coordinator's member table. 409 when this server is not a coordinator
// or dynamic registration is disabled — registration against the wrong
// process is a deployment bug worth a distinct status.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		httpBodyError(w, err)
		return
	}
	if s.coord == nil {
		httpError(w, http.StatusConflict, fmt.Errorf("this server is not a coordinator"))
		return
	}
	url, err := normalizeWorkerURL(req.URL)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ttl, err := s.coord.Register(url)
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, RegisterResponse{URL: url, TTLSeconds: ttl.Seconds()})
}

// handleWorkers serves the member table (the same view /statsz embeds).
func (s *Server) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	if s.coord == nil {
		httpError(w, http.StatusConflict, fmt.Errorf("this server is not a coordinator"))
		return
	}
	writeJSON(w, s.coord.Members())
}

// statsResponse is the /statsz body.
type statsResponse struct {
	Mode         string       `json:"mode"` // "single" or "coordinator"
	Engine       sim.Stats    `json:"engine"`
	PipelineSims int64        `json:"pipeline_sims"`
	Store        *store.Stats `json:"store,omitempty"`
	Workers      int          `json:"workers"`
	WorkerURLs   []string     `json:"worker_urls,omitempty"`
	// Members is the coordinator's live member table — static and
	// registered workers with last-heartbeat ages.
	Members   []MemberStatus `json:"members,omitempty"`
	Admission AdmissionStats `json:"admission"`
	Jobs      JobsStats      `json:"jobs"`
	// Chaos counts injected serve-layer faults (present only when a chaos
	// injector is attached); Scrub is the startup scrub pass's report
	// (present only when one ran).
	Chaos *ChaosCounters     `json:"chaos,omitempty"`
	Scrub *store.ScrubReport `json:"scrub,omitempty"`

	UptimeSeconds float64  `json:"uptime_seconds"`
	Experiments   []string `json:"experiments"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	resp := statsResponse{
		Mode:          "single",
		Engine:        st,
		PipelineSims:  st.PipelineSims(),
		Workers:       s.eng.Workers(),
		Admission:     s.adm.stats(),
		Jobs:          s.jobs.stats(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Experiments:   experiments.IDs(),
	}
	if s.coord != nil {
		resp.Mode = "coordinator"
		resp.WorkerURLs = s.coord.WorkerURLs()
		resp.Members = s.coord.Members()
	}
	if st := s.eng.Store(); st != nil {
		ss := st.Stats()
		resp.Store = &ss
	}
	if s.chaos != nil {
		cc := s.chaos.Counters()
		resp.Chaos = &cc
	}
	resp.Scrub = s.scrub
	writeJSON(w, resp)
}

// decodeBody strictly decodes a JSON request body, capped at
// Options.MaxBodyBytes: a body past the cap surfaces as
// *http.MaxBytesError (rendered as 413 by httpBodyError), and
// MaxBytesReader also closes the connection so the client stops sending.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body := r.Body
	if s.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return fmt.Errorf("request body exceeds the %d-byte limit: %w", mbe.Limit, err)
		}
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("trailing data after request body")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	if status != http.StatusOK {
		w.WriteHeader(status)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeReport writes exactly Report.JSON() (plus a trailing newline), so a
// served report is byte-identical to one produced in-process.
func writeReport(w http.ResponseWriter, rep *sim.Report) {
	data, err := rep.JSON()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
	_, _ = w.Write([]byte("\n"))
}

// httpBodyError reports a decodeBody failure: 413 when the body tripped
// the size cap, 400 otherwise.
func httpBodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		httpError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	httpError(w, http.StatusBadRequest, err)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// httpAbortOrError reports a compute failure — unless the request's own
// context is done, in which case the client has disconnected and the
// handler returns without writing anything: the aborted work must not leave
// a partial (or pointless) JSON body behind on a connection nobody reads.
func httpAbortOrError(w http.ResponseWriter, r *http.Request, status int, err error) {
	if r.Context().Err() != nil {
		return
	}
	httpError(w, status, err)
}

// jsonErrorWriter rewrites plain-text error responses (the mux's built-in
// 404/405s, any stray http.Error) into the API's structured JSON error
// shape. Success responses and errors already written as JSON pass through
// untouched. Error bodies are buffered (they are one short line), so the
// rewrite never emits a half-converted response.
type jsonErrorWriter struct {
	rw          http.ResponseWriter
	wroteHeader bool
	intercept   bool
	status      int
	buf         bytes.Buffer
}

func (j *jsonErrorWriter) Header() http.Header { return j.rw.Header() }

func (j *jsonErrorWriter) WriteHeader(code int) {
	if j.wroteHeader {
		return
	}
	j.wroteHeader = true
	if code >= 400 && !strings.HasPrefix(j.rw.Header().Get("Content-Type"), "application/json") {
		j.intercept = true
		j.status = code
		return // headers flush in finish, after the body is rewritten
	}
	j.rw.WriteHeader(code)
}

func (j *jsonErrorWriter) Write(p []byte) (int, error) {
	if !j.wroteHeader {
		j.WriteHeader(http.StatusOK)
	}
	if j.intercept {
		j.buf.Write(p)
		return len(p), nil
	}
	return j.rw.Write(p)
}

func (j *jsonErrorWriter) finish() {
	if !j.intercept {
		return
	}
	msg := strings.TrimSpace(j.buf.String())
	if msg == "" {
		msg = http.StatusText(j.status)
	}
	j.rw.Header().Set("Content-Type", "application/json")
	j.rw.WriteHeader(j.status)
	_ = json.NewEncoder(j.rw).Encode(map[string]string{"error": msg})
}
