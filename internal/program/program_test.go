package program_test

import (
	"testing"

	"minigraph/internal/asm"
	"minigraph/internal/isa"
	"minigraph/internal/program"
)

const cfgSrc = `
main:   li   r1, 10
        clr  r2
loop:   addl r2, 1, r2
        subl r1, 1, r1
        bne  r1, loop
        beq  r2, done
        addl r2, 2, r2
done:   stq  r2, 0(sp)
        halt
`

func TestBuildCFG(t *testing.T) {
	p := asm.MustAssemble("cfg", cfgSrc)
	g := program.BuildCFG(p, nil)
	// Blocks: [main..loop), [loop..bne], [beq], [addl], [done..halt]
	if len(g.Blocks) != 5 {
		t.Fatalf("got %d blocks: %s", len(g.Blocks), g)
	}
	loop := g.BlockOf(p.Symbols["loop"])
	if loop.Start != p.Symbols["loop"] || loop.Len() != 3 {
		t.Errorf("loop block [%d,%d)", loop.Start, loop.End)
	}
	// Loop block has two successors: itself and fall-through.
	if len(loop.Succs) != 2 {
		t.Errorf("loop succs %v", loop.Succs)
	}
	hasSelf := false
	for _, s := range loop.Succs {
		if s == loop.Start {
			hasSelf = true
		}
	}
	if !hasSelf {
		t.Errorf("loop should succeed itself: %v", loop.Succs)
	}
	done := g.BlockOf(p.Symbols["done"])
	if len(done.Succs) != 0 {
		t.Errorf("halt block should have no successors: %v", done.Succs)
	}
	// Every instruction maps to a block containing it.
	for i := 0; i < p.Len(); i++ {
		b := g.BlockOf(isa.PC(i))
		if isa.PC(i) < b.Start || isa.PC(i) >= b.End {
			t.Errorf("inst %d mapped to block [%d,%d)", i, b.Start, b.End)
		}
	}
}

func TestCFGIndirectUnknown(t *testing.T) {
	p := asm.MustAssemble("ind", "main: li r1, 3\n jmp (r1)\n tgt: halt\n")
	g := program.BuildCFG(p, nil)
	b := g.BlockOf(1)
	if !b.Unknown {
		t.Error("indirect jump block should be Unknown")
	}
}

func TestLiveness(t *testing.T) {
	p := asm.MustAssemble("lv", cfgSrc)
	g := program.BuildCFG(p, nil)
	lv := program.ComputeLiveness(g)
	loop := g.BlockOf(p.Symbols["loop"])
	// r1 and r2 are live into the loop (both read before written).
	if !lv.LiveIn[loop.Index].Has(isa.IntReg(1)) || !lv.LiveIn[loop.Index].Has(isa.IntReg(2)) {
		t.Errorf("loop live-in missing r1/r2")
	}
	// r2 is live out of the loop (read by beq and done blocks); r1 is not
	// (only the loop itself reads it).
	if !lv.LiveOut[loop.Index].Has(isa.IntReg(2)) {
		t.Error("r2 should be live out of loop")
	}
	if !lv.LiveOut[loop.Index].Has(isa.IntReg(1)) {
		// r1 is read by the loop itself on the back edge.
		t.Error("r1 should be live out of loop via back edge")
	}
	done := g.BlockOf(p.Symbols["done"])
	if lv.LiveOut[done.Index] != 0 {
		t.Errorf("halt block live-out should be empty: %b", lv.LiveOut[done.Index])
	}
}

func TestLivenessConservativeOnIndirect(t *testing.T) {
	p := asm.MustAssemble("ind", "main: addl r1, r2, r3\n jmp (r4)\n")
	g := program.BuildCFG(p, nil)
	lv := program.ComputeLiveness(g)
	b := g.BlockOf(0)
	if lv.LiveOut[b.Index] != program.AllRegs {
		t.Error("unknown-successor block should have all registers live out")
	}
}

func TestLiveAfter(t *testing.T) {
	p := asm.MustAssemble("la", `
main:   addl r1, r2, r3
        addl r3, r3, r4
        stq  r4, 0(sp)
        halt
`)
	g := program.BuildCFG(p, nil)
	lv := program.ComputeLiveness(g)
	// After inst 0, r3 is live (read by inst 1); after inst 1, r3 is dead
	// and r4 live.
	if l := program.LiveAfter(g, lv, 0); !l.Has(isa.IntReg(3)) {
		t.Error("r3 should be live after inst 0")
	}
	if l := program.LiveAfter(g, lv, 1); l.Has(isa.IntReg(3)) || !l.Has(isa.IntReg(4)) {
		t.Error("after inst 1: want r4 live, r3 dead")
	}
}

func TestRegSet(t *testing.T) {
	var s program.RegSet
	s = s.Add(isa.IntReg(5)).Add(isa.FPReg(3))
	if !s.Has(isa.IntReg(5)) || !s.Has(isa.FPReg(3)) || s.Has(isa.IntReg(6)) {
		t.Error("RegSet membership")
	}
	// Zero registers are never tracked.
	if s.Add(isa.RZero).Has(isa.RZero) || s.Add(isa.FZero).Has(isa.FZero) {
		t.Error("zero registers must not be tracked")
	}
	if s.Add(isa.RNone) != s {
		t.Error("RNone changed the set")
	}
	u := s.Union(program.RegSet(0).Add(isa.IntReg(6)))
	if !u.Has(isa.IntReg(6)) || !u.Has(isa.IntReg(5)) {
		t.Error("union")
	}
	if u.Minus(s).Has(isa.IntReg(5)) {
		t.Error("minus")
	}
}

func TestProfileBlockFreq(t *testing.T) {
	prof := program.NewProfile(10)
	prof.PCCount[2] = 7
	b := &program.Block{Start: 2, End: 5}
	if prof.BlockFreq(b) != 7 {
		t.Error("block freq")
	}
	other := program.NewProfile(10)
	other.PCCount[2] = 3
	other.DynInsts = 30
	prof.Merge(other)
	if prof.PCCount[2] != 10 || prof.DynInsts != 30 {
		t.Error("merge")
	}
}

func TestHandleTargetsInCFG(t *testing.T) {
	p := asm.MustAssemble("h", `
main:   mg r1, r2, r3, 0
        addl r3, 1, r3
tgt:    halt
`)
	g := program.BuildCFG(p, map[isa.PC]isa.PC{0: 2})
	b := g.BlockOf(0)
	if b.Len() != 1 {
		t.Fatalf("handle with branch should terminate its block; got len %d", b.Len())
	}
	if len(b.Succs) != 2 {
		t.Errorf("handle block succs %v (want taken+fallthrough)", b.Succs)
	}
}
