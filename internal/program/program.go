// Package program provides static program analysis over isa.Program:
// control-flow graph construction, basic blocks, global register liveness,
// and execution-frequency profiles. Mini-graph extraction (internal/core)
// builds on these analyses: basic blocks bound mini-graph atomicity, and
// liveness proves that interior values are transient.
package program

import (
	"fmt"

	"minigraph/internal/isa"
)

// RegSet is a bitset over the 64 architectural registers.
type RegSet uint64

// Add returns the set with r added. Hardwired zero registers are never
// tracked (they are not real storage).
func (s RegSet) Add(r isa.Reg) RegSet {
	if r.IsZero() || !r.Valid() {
		return s
	}
	return s | 1<<uint(r)
}

// Has reports whether r is in the set.
func (s RegSet) Has(r isa.Reg) bool {
	if !r.Valid() {
		return false
	}
	return s&(1<<uint(r)) != 0
}

// Union returns s ∪ t.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// Minus returns s \ t.
func (s RegSet) Minus(t RegSet) RegSet { return s &^ t }

// AllRegs is the set of every architectural register.
const AllRegs RegSet = ^RegSet(0)

// Block is a basic block: a maximal single-entry straight-line run of
// instructions [Start, End).
type Block struct {
	Index int
	Start isa.PC // first instruction
	End   isa.PC // one past the last instruction
	// Succs lists the possible successor block start PCs. Indirect jumps
	// yield no static successors; Unknown is set instead.
	Succs []isa.PC
	// Unknown marks blocks whose successors cannot be determined statically
	// (indirect jump / jsr / ret / halt at end of text).
	Unknown bool
}

// Len returns the instruction count of the block.
func (b *Block) Len() int { return int(b.End - b.Start) }

// Terminator returns the PC of the block-ending control transfer, or -1 if
// the block falls through (or ends in halt).
func (b *Block) Terminator(p *isa.Program) isa.PC {
	if b.Len() == 0 {
		return -1
	}
	last := b.End - 1
	if p.At(last).IsCtrl() {
		return last
	}
	return -1
}

// CFG is the control-flow graph of a program.
type CFG struct {
	Prog    *isa.Program
	Blocks  []*Block
	blockOf []int // instruction index -> block index
}

// BlockOf returns the block containing pc.
func (g *CFG) BlockOf(pc isa.PC) *Block {
	return g.Blocks[g.blockOf[pc]]
}

// BlockIndexOf returns the index of the block containing pc.
func (g *CFG) BlockIndexOf(pc isa.PC) int { return g.blockOf[pc] }

// BuildCFG partitions the program into basic blocks and records successor
// edges. Handles (OpMG) with terminal branches act as block terminators,
// exactly like the branches they encapsulate; their targets must be supplied
// via the optional handleTargets map (handle PC -> taken-target PC). For
// plain programs pass nil.
func BuildCFG(p *isa.Program, handleTargets map[isa.PC]isa.PC) *CFG {
	n := p.Len()
	leader := make([]bool, n+1)
	if n > 0 {
		leader[p.Entry] = true
	}
	markTarget := func(t int64) {
		if t >= 0 && t < int64(n) {
			leader[t] = true
		}
	}
	for i := 0; i < n; i++ {
		in := p.At(isa.PC(i))
		info := in.Op.Info()
		switch {
		case info.Fmt == isa.FmtBranch:
			markTarget(in.Imm)
			leader[i+1] = true
		case info.Fmt == isa.FmtJump, in.Op == isa.OpHalt:
			leader[i+1] = true
		case in.Op == isa.OpMG:
			if t, ok := handleTargets[isa.PC(i)]; ok {
				markTarget(int64(t))
				leader[i+1] = true
			}
		}
	}
	// Text-label symbols are potential indirect-jump targets; treat them as
	// leaders so indirect control lands on block boundaries.
	for _, pc := range p.Symbols {
		if int(pc) < n {
			leader[pc] = true
		}
	}

	g := &CFG{Prog: p, blockOf: make([]int, n)}
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			b := &Block{Index: len(g.Blocks), Start: isa.PC(start), End: isa.PC(i)}
			g.fillSuccs(b, handleTargets)
			for j := start; j < i; j++ {
				g.blockOf[j] = b.Index
			}
			g.Blocks = append(g.Blocks, b)
			start = i
		}
	}
	return g
}

func (g *CFG) fillSuccs(b *Block, handleTargets map[isa.PC]isa.PC) {
	p := g.Prog
	if b.Len() == 0 {
		return
	}
	last := b.End - 1
	in := p.At(last)
	info := in.Op.Info()
	addFallthrough := func() {
		if int(b.End) < p.Len() {
			b.Succs = append(b.Succs, b.End)
		}
	}
	switch {
	case info.Fmt == isa.FmtBranch:
		b.Succs = append(b.Succs, isa.PC(in.Imm))
		if info.Conditional {
			addFallthrough()
		}
	case info.Fmt == isa.FmtJump:
		b.Unknown = true
	case in.Op == isa.OpHalt:
		// no successors
	case in.Op == isa.OpMG:
		if t, ok := handleTargets[last]; ok {
			b.Succs = append(b.Succs, t)
			addFallthrough()
		} else {
			addFallthrough()
		}
	default:
		addFallthrough()
	}
}

// String summarises the CFG for debugging.
func (g *CFG) String() string {
	s := ""
	for _, b := range g.Blocks {
		s += fmt.Sprintf("B%d [%d,%d) -> %v", b.Index, b.Start, b.End, b.Succs)
		if b.Unknown {
			s += " (indirect)"
		}
		s += "\n"
	}
	return s
}
