package program

import "minigraph/internal/isa"

// Liveness holds per-block global register liveness. Blocks with unknown
// successors (indirect control) conservatively treat every register as live
// out, so any interior-value transience proof remains sound.
type Liveness struct {
	LiveIn  []RegSet
	LiveOut []RegSet
}

// instUseDef returns the use and def sets of a single instruction. Handles
// use their interface inputs and define their interface output; interior
// registers do not exist architecturally.
func instUseDef(in *isa.Inst) (use, def RegSet) {
	for _, r := range in.Srcs() {
		use = use.Add(r)
	}
	def = def.Add(in.Dest())
	return use, def
}

// BlockUseDef computes the upward-exposed use set and the def set of b.
func BlockUseDef(p *isa.Program, b *Block) (use, def RegSet) {
	for pc := b.Start; pc < b.End; pc++ {
		u, d := instUseDef(p.At(pc))
		use = use.Union(u.Minus(def))
		def = def.Union(d)
	}
	return use, def
}

// ComputeLiveness solves backward global liveness over the CFG with the
// standard iterative worklist algorithm.
func ComputeLiveness(g *CFG) *Liveness {
	n := len(g.Blocks)
	lv := &Liveness{LiveIn: make([]RegSet, n), LiveOut: make([]RegSet, n)}
	use := make([]RegSet, n)
	def := make([]RegSet, n)
	preds := make([][]int, n)
	for _, b := range g.Blocks {
		use[b.Index], def[b.Index] = BlockUseDef(g.Prog, b)
		for _, s := range b.Succs {
			si := g.BlockIndexOf(s)
			preds[si] = append(preds[si], b.Index)
		}
	}
	work := make([]int, 0, n)
	inWork := make([]bool, n)
	for i := n - 1; i >= 0; i-- {
		work = append(work, i)
		inWork[i] = true
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[i] = false
		b := g.Blocks[i]
		var out RegSet
		if b.Unknown {
			out = AllRegs
		}
		for _, s := range b.Succs {
			out = out.Union(lv.LiveIn[g.BlockIndexOf(s)])
		}
		in := use[i].Union(out.Minus(def[i]))
		if out != lv.LiveOut[i] || in != lv.LiveIn[i] {
			lv.LiveOut[i], lv.LiveIn[i] = out, in
			for _, pi := range preds[i] {
				if !inWork[pi] {
					work = append(work, pi)
					inWork[pi] = true
				}
			}
		}
	}
	return lv
}

// LiveAfter computes the set of registers live immediately after the
// instruction at pc within its block, by walking backward from block end.
func LiveAfter(g *CFG, lv *Liveness, pc isa.PC) RegSet {
	b := g.BlockOf(pc)
	live := lv.LiveOut[b.Index]
	for i := b.End - 1; i > pc; i-- {
		u, d := instUseDef(g.Prog.At(i))
		live = live.Minus(d).Union(u)
	}
	return live
}
