package program

// Profile records execution frequencies from a profiling run. Frequencies
// are attributed to static instructions; block frequency is the frequency of
// the block's first instruction (all instructions in a basic block execute
// the same number of times).
type Profile struct {
	// PCCount[pc] is the number of times the static instruction at pc
	// executed (handles count once per handle, not per constituent).
	PCCount []int64
	// DynInsts is the total dynamic instruction count of the run.
	DynInsts int64
}

// NewProfile returns an empty profile sized for a program of n instructions.
func NewProfile(n int) *Profile {
	return &Profile{PCCount: make([]int64, n)}
}

// BlockFreq returns the execution frequency of block b.
func (p *Profile) BlockFreq(b *Block) int64 {
	if b.Len() == 0 || int(b.Start) >= len(p.PCCount) {
		return 0
	}
	return p.PCCount[b.Start]
}

// Merge accumulates other into p (for multi-run profiles, used by the
// robustness experiment's multi-input selection mode).
func (p *Profile) Merge(other *Profile) {
	for i, c := range other.PCCount {
		if i < len(p.PCCount) {
			p.PCCount[i] += c
		}
	}
	p.DynInsts += other.DynInsts
}
