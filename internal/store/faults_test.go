package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// mustOpen opens a store in a fresh temp dir with the given fault injector.
func mustOpen(t *testing.T, faults *FaultInjector) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), Options{Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFaultTornWrite forces every Put to publish a torn prefix: the next Get
// must miss (never return garbage), delete the damaged file, and a clean
// re-Put must recover fully.
func TestFaultTornWrite(t *testing.T) {
	fi := NewFaultInjector(FaultConfig{TornWrite: 1, Seed: 1})
	s := mustOpen(t, fi)
	key, val := []byte("k1"), []byte("payload-1")

	if err := s.Put(key, val); err != nil {
		t.Fatalf("torn Put should still succeed at the API: %v", err)
	}
	if got, ok := s.Get(key); ok {
		t.Fatalf("Get returned %q from a torn write; want miss", got)
	}
	if _, err := os.Stat(s.pathFor(hashKey(key))); !os.IsNotExist(err) {
		t.Error("damaged entry file should be deleted on read")
	}
	if c := fi.Counters(); c.TornWrites == 0 {
		t.Error("torn write not counted")
	}

	// Recovery: a clean store handle on the same dir round-trips.
	clean, err := Open(filepath.Dir(s.Dir()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.Put(key, val); err != nil {
		t.Fatal(err)
	}
	if got, ok := clean.Get(key); !ok || !bytes.Equal(got, val) {
		t.Fatalf("recovered Get = %q, %v; want %q", got, ok, val)
	}
}

// TestFaultBitFlip forces a one-bit flip into every published entry. The
// flip may land anywhere — payload, key, checksum, structure — and in every
// case the read must miss rather than return a value that fails
// verification.
func TestFaultBitFlip(t *testing.T) {
	fi := NewFaultInjector(FaultConfig{BitFlip: 1, Seed: 2})
	s := mustOpen(t, fi)
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		val := []byte(fmt.Sprintf("value-%d-%s", i, strings.Repeat("x", 100)))
		if err := s.Put(key, val); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get(key); ok && !bytes.Equal(got, val) {
			t.Fatalf("Get %q returned corrupt value %q", key, got)
		}
	}
	if c := fi.Counters(); c.BitFlips != 50 {
		t.Errorf("BitFlips = %d, want 50", c.BitFlips)
	}
}

// TestFaultTruncate forces tail truncation of every published entry.
func TestFaultTruncate(t *testing.T) {
	fi := NewFaultInjector(FaultConfig{Truncate: 1, Seed: 3})
	s := mustOpen(t, fi)
	key, val := []byte("k"), []byte(strings.Repeat("v", 500))
	if err := s.Put(key, val); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); ok && !bytes.Equal(got, val) {
		t.Fatalf("Get returned corrupt value %q", got)
	}
	if c := fi.Counters(); c.Truncates == 0 {
		t.Error("truncate not counted")
	}
}

// TestFaultWriteErr makes every Put fail with an injected, identifiable
// error; nothing lands on disk and the store stays consistent.
func TestFaultWriteErr(t *testing.T) {
	fi := NewFaultInjector(FaultConfig{WriteErr: 1, Seed: 4})
	s := mustOpen(t, fi)
	err := s.Put([]byte("k"), []byte("v"))
	if err == nil {
		t.Fatal("Put should fail under WriteErr=1")
	}
	if !IsInjected(err) {
		t.Errorf("error %v should satisfy IsInjected", err)
	}
	if s.Len() != 0 {
		t.Errorf("failed Put indexed an entry: Len = %d", s.Len())
	}
	if c := fi.Counters(); c.WriteErrs != 1 {
		t.Errorf("WriteErrs = %d, want 1", c.WriteErrs)
	}
}

// TestFaultReadErrKeepsEntry: a transient read error is a miss, but the
// entry survives on disk and is served once the fault clears.
func TestFaultReadErrKeepsEntry(t *testing.T) {
	fi := NewFaultInjector(FaultConfig{ReadErr: 1, Seed: 5})
	dir := t.TempDir()
	clean, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key, val := []byte("k"), []byte("v")
	if err := clean.Put(key, val); err != nil {
		t.Fatal(err)
	}

	faulty, err := Open(dir, Options{Faults: fi})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := faulty.Get(key); ok {
		t.Fatal("Get should miss under ReadErr=1")
	}
	if faulty.Len() != 1 {
		t.Errorf("transient read error dropped the index entry: Len = %d", faulty.Len())
	}
	// The fault is transient: the clean handle still serves the bytes.
	if got, ok := clean.Get(key); !ok || !bytes.Equal(got, val) {
		t.Fatalf("clean Get = %q, %v; want %q", got, ok, val)
	}
	if c := fi.Counters(); c.ReadErrs != 1 {
		t.Errorf("ReadErrs = %d, want 1", c.ReadErrs)
	}
}

// TestFaultDelay injects latency without affecting results.
func TestFaultDelay(t *testing.T) {
	fi := NewFaultInjector(FaultConfig{DelayP: 1, Delay: time.Millisecond, Seed: 6})
	s := mustOpen(t, fi)
	key, val := []byte("k"), []byte("v")
	start := time.Now()
	if err := s.Put(key, val); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, %v; want %q", got, ok, val)
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Error("expected at least two injected delays (Put + Get)")
	}
	if c := fi.Counters(); c.Delays < 2 {
		t.Errorf("Delays = %d, want >= 2", c.Delays)
	}
}

// TestFaultMixedWorkload runs a probabilistic mix of every fault class over
// a few hundred operations and asserts the only observable outcomes are
// (correct value, miss, injected error) — never a wrong value — and that
// the store's accounting survives.
func TestFaultMixedWorkload(t *testing.T) {
	fi := NewFaultInjector(FaultConfig{
		TornWrite: 0.1, BitFlip: 0.1, Truncate: 0.1,
		WriteErr: 0.1, ReadErr: 0.1, Seed: 7,
	})
	s := mustOpen(t, fi)
	want := make(map[string][]byte)
	for i := 0; i < 300; i++ {
		key := []byte(fmt.Sprintf("key-%d", i%40))
		val := []byte(fmt.Sprintf("val-%d-%d", i%40, i))
		if err := s.Put(key, val); err != nil {
			if !IsInjected(err) {
				t.Fatalf("unexpected real error: %v", err)
			}
			continue
		}
		// Corruption faults mean the written bytes may be damaged; any
		// value a Get returns must still be one this key was Put with.
		want[string(key)] = val
		if got, ok := s.Get(key); ok {
			if !strings.HasPrefix(string(got), fmt.Sprintf("val-%d-", i%40)) {
				t.Fatalf("Get %q = %q: not a value ever stored under this key", key, got)
			}
		}
	}
	if fi.Counters().Total() == 0 {
		t.Error("mixed workload injected no faults")
	}
	// The store must still be internally consistent: reopening indexes
	// exactly the surviving healthy entries.
	s2, err := Open(filepath.Dir(s.Dir()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if got, ok := s2.Get([]byte(k)); ok && !strings.HasPrefix(string(got), "val-") {
			t.Fatalf("reopened Get %q = %q; want a stored value (last was %q)", k, got, v)
		}
	}
}
