package store

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// errInjectedWrite marks a Put failure produced by the fault injector, so
// tests can tell injected faults from real ones.
var errInjectedWrite = errors.New("injected write fault")

// IsInjected reports whether err was produced by a FaultInjector.
func IsInjected(err error) bool { return errors.Is(err, errInjectedWrite) }

// FaultConfig sets the per-operation probabilities of each fault class.
// All probabilities are in [0, 1]; zero disables that class.
type FaultConfig struct {
	// TornWrite publishes only a prefix of the entry's bytes, as if the
	// medium lost the tail of a write. The resulting file fails to parse as
	// JSON and is deleted on the next read.
	TornWrite float64
	// BitFlip flips one random bit of the published bytes — the classic
	// silent media corruption. If the flip lands inside the payload, only
	// the envelope checksum catches it.
	BitFlip float64
	// Truncate drops a random-length tail of the published bytes.
	Truncate float64
	// WriteErr fails the Put outright with an injected error; nothing is
	// written.
	WriteErr float64
	// ReadErr fails a Get as if ReadFile returned a transient error: the
	// call misses but the entry stays on disk and indexed.
	ReadErr float64
	// DelayP is the probability of sleeping Delay before an operation.
	DelayP float64
	// Delay is the injected latency (only meaningful with DelayP > 0).
	Delay time.Duration
	// Seed makes the fault sequence reproducible. The same seed against the
	// same operation sequence injects the same faults.
	Seed int64
}

// FaultCounters is a snapshot of how many faults of each class fired.
type FaultCounters struct {
	TornWrites int64 `json:"torn_writes"`
	BitFlips   int64 `json:"bit_flips"`
	Truncates  int64 `json:"truncates"`
	WriteErrs  int64 `json:"write_errs"`
	ReadErrs   int64 `json:"read_errs"`
	Delays     int64 `json:"delays"`
}

// Total sums all fault classes.
func (c FaultCounters) Total() int64 {
	return c.TornWrites + c.BitFlips + c.Truncates + c.WriteErrs + c.ReadErrs + c.Delays
}

// FaultInjector injects seeded, counted disk faults into a Store. It exists
// for tests: the recovery invariant is that any injected fault may cost
// recomputation (misses, retried puts) but can never surface a corrupt
// value or change a computed result. Safe for concurrent use.
type FaultInjector struct {
	cfg FaultConfig

	mu  sync.Mutex
	rng *rand.Rand

	tornWrites atomic.Int64
	bitFlips   atomic.Int64
	truncates  atomic.Int64
	writeErrs  atomic.Int64
	readErrs   atomic.Int64
	delays     atomic.Int64
}

// NewFaultInjector builds an injector from cfg, seeded by cfg.Seed.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	return &FaultInjector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Counters snapshots the per-class fault counts.
func (f *FaultInjector) Counters() FaultCounters {
	return FaultCounters{
		TornWrites: f.tornWrites.Load(),
		BitFlips:   f.bitFlips.Load(),
		Truncates:  f.truncates.Load(),
		WriteErrs:  f.writeErrs.Load(),
		ReadErrs:   f.readErrs.Load(),
		Delays:     f.delays.Load(),
	}
}

// roll draws a uniform [0,1) variate under the injector's lock.
func (f *FaultInjector) roll() float64 {
	f.mu.Lock()
	v := f.rng.Float64()
	f.mu.Unlock()
	return v
}

// intn draws a uniform [0,n) variate under the injector's lock.
func (f *FaultInjector) intn(n int) int {
	f.mu.Lock()
	v := f.rng.Intn(n)
	f.mu.Unlock()
	return v
}

func (f *FaultInjector) delay() {
	if f.cfg.DelayP > 0 && f.roll() < f.cfg.DelayP {
		f.delays.Add(1)
		time.Sleep(f.cfg.Delay)
	}
}

func (f *FaultInjector) failWrite() bool {
	if f.cfg.WriteErr > 0 && f.roll() < f.cfg.WriteErr {
		f.writeErrs.Add(1)
		return true
	}
	return false
}

func (f *FaultInjector) failRead() bool {
	if f.cfg.ReadErr > 0 && f.roll() < f.cfg.ReadErr {
		f.readErrs.Add(1)
		return true
	}
	return false
}

// corrupt applies at most one corruption class to the bytes about to be
// published, returning a fresh slice when it fires (the caller's buffer is
// never aliased).
func (f *FaultInjector) corrupt(data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	switch {
	case f.cfg.TornWrite > 0 && f.roll() < f.cfg.TornWrite:
		f.tornWrites.Add(1)
		// Keep a strict prefix: at least one byte short, possibly empty.
		n := f.intn(len(data))
		return append([]byte(nil), data[:n]...)
	case f.cfg.BitFlip > 0 && f.roll() < f.cfg.BitFlip:
		f.bitFlips.Add(1)
		out := append([]byte(nil), data...)
		bit := f.intn(len(out) * 8)
		out[bit/8] ^= 1 << (bit % 8)
		return out
	case f.cfg.Truncate > 0 && f.roll() < f.cfg.Truncate:
		f.truncates.Add(1)
		n := f.intn(len(data))
		return append([]byte(nil), data[:n]...)
	}
	return data
}
