package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// corruptFile mutates one byte near the end of the file at path (inside the
// base64 payload for typical entries).
func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)*3/4] ^= 0x40
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
}

// TestScrub plants every corruption class Scrub must catch — payload bit
// flip, truncation, unparseable junk, and a wrong-key entry — among healthy
// entries, and checks the pass deletes exactly the damaged ones.
func TestScrub(t *testing.T) {
	s := mustOpen(t, nil)
	var healthy, damaged []string
	for i := 0; i < 8; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if err := s.Put(key, bytes.Repeat([]byte{byte(i)}, 200)); err != nil {
			t.Fatal(err)
		}
		path := s.pathFor(hashKey(key))
		if i < 4 {
			healthy = append(healthy, path)
		} else {
			damaged = append(damaged, path)
		}
	}

	// Payload bit flip (JSON still parses; only the checksum catches it).
	corruptFile(t, damaged[0])
	// Truncation.
	data, err := os.ReadFile(damaged[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(damaged[1], data[:len(data)/2], 0o666); err != nil {
		t.Fatal(err)
	}
	// Unparseable junk.
	if err := os.WriteFile(damaged[2], []byte("not json at all"), 0o666); err != nil {
		t.Fatal(err)
	}
	// Entry whose recorded key does not hash to its filename: copy a valid
	// entry over another entry's file.
	if err := os.WriteFile(damaged[3], mustRead(t, healthy[0]), 0o666); err != nil {
		t.Fatal(err)
	}
	// A stray non-entry file Scrub must skip, not count or delete.
	stray := filepath.Join(s.Dir(), "README.txt")
	if err := os.WriteFile(stray, []byte("hi"), 0o666); err != nil {
		t.Fatal(err)
	}

	rep := s.Scrub()
	if rep.Scanned != 8 {
		t.Errorf("Scanned = %d, want 8", rep.Scanned)
	}
	if rep.Corrupt != 4 {
		t.Errorf("Corrupt = %d, want 4", rep.Corrupt)
	}
	if rep.BytesReclaimed <= 0 {
		t.Errorf("BytesReclaimed = %d, want > 0", rep.BytesReclaimed)
	}
	if rep.Errors != 0 {
		t.Errorf("Errors = %d, want 0", rep.Errors)
	}
	for _, p := range damaged {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("damaged entry %s survived the scrub", filepath.Base(p))
		}
	}
	for _, p := range healthy {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("healthy entry %s was deleted: %v", filepath.Base(p), err)
		}
	}
	if _, err := os.Stat(stray); err != nil {
		t.Error("stray non-entry file should be left alone")
	}

	// Healthy entries still serve; the index dropped exactly the corrupt
	// ones, so accounting matches a fresh reopen.
	for i := 0; i < 4; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		want := bytes.Repeat([]byte{byte(i)}, 200)
		if got, ok := s.Get(key); !ok || !bytes.Equal(got, want) {
			t.Errorf("post-scrub Get key-%d failed", i)
		}
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d after scrub, want 4", s.Len())
	}

	// A second pass over the now-clean store finds nothing.
	rep2 := s.Scrub()
	if rep2.Scanned != 4 || rep2.Corrupt != 0 {
		t.Errorf("second scrub = %+v, want Scanned 4 Corrupt 0", rep2)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestScrubEmpty runs Scrub over a store with no entries.
func TestScrubEmpty(t *testing.T) {
	s := mustOpen(t, nil)
	if rep := s.Scrub(); rep != (ScrubReport{}) {
		t.Errorf("empty scrub = %+v, want zero report", rep)
	}
}

// TestScrubWithChunkSets drives the cross-entry pass through a toy
// classifier (keys "m:<group>" are manifests whose value's first byte is
// the chunk count; keys "c:<group>:<i>" are chunks) and checks every
// orphan class: a manifest missing a chunk is invalidated and its
// surviving chunks deleted with it, a chunk with no manifest at all is an
// orphan, a chunk beyond its manifest's count is an orphan, and complete
// groups plus unrelated entries survive untouched.
func TestScrubWithChunkSets(t *testing.T) {
	s := mustOpen(t, nil)
	put := func(key, val string) {
		t.Helper()
		if err := s.Put([]byte(key), []byte(val)); err != nil {
			t.Fatal(err)
		}
	}
	// Group a: complete (2 chunks) plus a stray chunk past the count.
	put("m:a", "\x02manifest")
	put("c:a:0", "rows0")
	put("c:a:1", "rows1")
	put("c:a:5", "stray")
	// Group b: manifest names 2 chunks but chunk 1 is gone (evicted or
	// deleted after the manifest landed).
	put("m:b", "\x02manifest")
	put("c:b:0", "rows0")
	// Group c: chunks whose manifest never landed.
	put("c:c:0", "rows0")
	// An entry the classifier condemns outright.
	put("m:bad", "no count byte means not a manifest")
	// A bystander entry that takes no part in chunk sets.
	put("outcome", "unrelated")

	classify := func(key, value []byte) (EntryClass, bool) {
		k := string(key)
		switch {
		case k == "m:bad":
			return EntryClass{}, false
		case len(k) > 2 && k[:2] == "m:":
			return EntryClass{Kind: EntryManifest, Group: k[2:], Chunks: int64(value[0])}, true
		case len(k) > 2 && k[:2] == "c:":
			var group string
			var idx int64
			if _, err := fmt.Sscanf(k, "c:%1s:%d", &group, &idx); err != nil {
				t.Fatalf("bad test key %q: %v", k, err)
			}
			return EntryClass{Kind: EntryChunk, Group: group, Chunk: idx}, true
		}
		return EntryClass{Kind: EntryOther}, true
	}

	rep := s.ScrubWith(ScrubOptions{Classify: classify})
	if rep.Scanned != 9 {
		t.Errorf("Scanned = %d, want 9", rep.Scanned)
	}
	if rep.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1 (the condemned pseudo-manifest)", rep.Corrupt)
	}
	if rep.ManifestsInvalidated != 1 {
		t.Errorf("ManifestsInvalidated = %d, want 1 (group b)", rep.ManifestsInvalidated)
	}
	// Orphans: c:a:5 (past the count), c:b:0 (manifest invalidated with
	// it), c:c:0 (no manifest).
	if rep.OrphanChunks != 3 {
		t.Errorf("OrphanChunks = %d, want 3", rep.OrphanChunks)
	}

	for _, key := range []string{"m:a", "c:a:0", "c:a:1", "outcome"} {
		if _, ok := s.Get([]byte(key)); !ok {
			t.Errorf("survivor %q was deleted", key)
		}
	}
	for _, key := range []string{"c:a:5", "m:b", "c:b:0", "c:c:0", "m:bad"} {
		if _, ok := s.Get([]byte(key)); ok {
			t.Errorf("debris %q survived the scrub", key)
		}
	}

	// The pass converges: a second scrub finds a clean store.
	rep2 := s.ScrubWith(ScrubOptions{Classify: classify})
	if rep2.Scanned != 4 || rep2.Corrupt+rep2.OrphanChunks+rep2.ManifestsInvalidated != 0 {
		t.Errorf("second scrub = %+v, want 4 scanned and nothing deleted", rep2)
	}
}
