// Package store is a content-addressed, disk-backed result store. Values
// are opaque byte payloads addressed by opaque byte keys (the simulation
// layer uses the canonical versioned SimKey encoding); the store hashes the
// key to place the entry on disk, so a directory can be shared by any
// number of processes over any number of runs.
//
// Design points:
//
//   - Writes are atomic: an entry is staged in a temporary file in the
//     same directory and renamed into place, so readers never observe a
//     half-written entry and concurrent writers of the same key settle on
//     one complete copy.
//   - Reads are corruption-tolerant: an entry that fails to parse, fails
//     its version check, or whose recorded key does not match the request
//     (hash collision, truncation, stray file) is treated as a miss and
//     deleted, never an error.
//   - The store is LRU-bounded: when the configured byte budget is
//     exceeded, least-recently-used entries are evicted. Recency survives
//     process restarts via file modification times plus a persisted
//     monotonic sequence sidecar: coarse-mtime filesystems (1s or worse)
//     tie whole bursts of writes, so ordering is (mtime, sequence, key) —
//     the sequence disambiguates same-process bursts, and the key breaks
//     any remaining tie so every process reconstructs the same eviction
//     order. Sidecars are a few bytes and are not charged to the budget.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// formatVersion is the on-disk entry envelope version. It is independent
// of the payload's own versioning (the simulation codec versions its
// encodings separately).
//
// Version history:
//
//	1: {version, key, value}.
//	2: entries carry a sha256 checksum of the value, so silent media
//	   corruption inside the payload is detected on read instead of being
//	   handed to the caller (the JSON structure alone only catches damage
//	   that breaks parsing or the recorded key).
const formatVersion = 2

// DefaultMaxBytes is the byte budget applied when Options.MaxBytes is zero
// (1 GiB — roughly a million simulation outcomes).
const DefaultMaxBytes int64 = 1 << 30

// Options configure a store.
type Options struct {
	// MaxBytes bounds the total size of entry files; least-recently-used
	// entries are evicted beyond it (0 = DefaultMaxBytes, negative =
	// unbounded).
	MaxBytes int64
	// Faults, when non-nil, injects disk faults into Put and Get (tests
	// only; see FaultInjector). nil costs one pointer check per operation.
	Faults *FaultInjector
}

// Stats is a point-in-time snapshot of the store's counters and footprint.
type Stats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
	// RejectedPuts counts puts refused because a single entry exceeded the
	// byte budget; the entry is never written and later reads of its key
	// miss, but the rest of the store stays intact.
	RejectedPuts int64 `json:"rejected_puts"`
	Evictions    int64 `json:"evictions"`
	Entries      int   `json:"entries"`
	Bytes        int64 `json:"bytes"`
}

// entry is the on-disk envelope. The key is recorded verbatim so a read
// can verify it got the entry it asked for; Sum is the hex sha256 of Value
// so payload corruption that leaves the JSON parseable is still caught.
type entry struct {
	Version int    `json:"version"`
	Key     []byte `json:"key"`
	Value   []byte `json:"value"`
	Sum     string `json:"sum"`
}

func valueSum(value []byte) string {
	sum := sha256.Sum256(value)
	return hex.EncodeToString(sum[:])
}

// indexed is the in-memory bookkeeping for one on-disk entry. elem is the
// entry's node in the recency list, so touching and evicting are O(1).
type indexed struct {
	hash string
	path string
	size int64
	elem *list.Element
}

// Store is a disk-backed key/value store. It is safe for concurrent use;
// multiple processes may share a directory (eviction decisions are then
// per-process approximations, which is acceptable for a cache).
type Store struct {
	dir    string
	max    int64
	faults *FaultInjector // nil outside fault-injection tests

	mu    sync.Mutex
	index map[string]*indexed // hex hash -> entry
	lru   *list.List          // of *indexed; front = most recently used
	bytes int64

	hits      atomic.Int64
	misses    atomic.Int64
	puts      atomic.Int64
	rejected  atomic.Int64
	evictions atomic.Int64

	// seq is the recency sequence: every Put and every Get hit takes the
	// next value and persists it in the entry's sidecar. Open resumes it
	// past the largest value found on disk.
	seq atomic.Int64
}

// Open opens (creating if needed) the store rooted at dir and indexes the
// entries already present. Unparseable filenames are ignored; unparseable
// entries are deleted lazily when read.
func Open(dir string, opts Options) (*Store, error) {
	max := opts.MaxBytes
	if max == 0 {
		max = DefaultMaxBytes
	}
	root := filepath.Join(dir, fmt.Sprintf("v%d", formatVersion))
	if err := os.MkdirAll(root, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: root, max: max, faults: opts.Faults, index: make(map[string]*indexed), lru: list.New()}

	// Index existing entries oldest-first so the recency list reflects
	// on-disk modification times. Staging files orphaned by a crashed
	// writer are swept once they are old enough that no live Put can
	// still own them.
	type found struct {
		hash string
		path string
		size int64
		mod  time.Time
		seq  int64
	}
	var entries []found
	var sidecars []string
	stale := time.Now().Add(-10 * time.Minute)
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil // unreadable subtrees are simply not indexed
		}
		name := info.Name()
		if strings.Contains(name, ".tmp-") {
			if info.ModTime().Before(stale) {
				_ = os.Remove(path)
			}
			return nil
		}
		if strings.HasSuffix(name, seqSuffix) {
			if info.ModTime().Before(stale) {
				sidecars = append(sidecars, path) // orphan-sweep candidate
			}
			return nil
		}
		hash := name[:len(name)-len(filepath.Ext(name))]
		if filepath.Ext(name) != ".json" || len(hash) != sha256.Size*2 {
			return nil
		}
		if _, err := hex.DecodeString(hash); err != nil {
			return nil
		}
		entries = append(entries, found{hash: hash, path: path, size: info.Size(),
			mod: info.ModTime(), seq: readSeq(path)})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: index %s: %w", root, err)
	}
	// Recency order, least recent first. Modification time is the
	// cross-process signal; the persisted sequence orders writes that a
	// coarse-mtime filesystem has tied; the key settles whatever remains,
	// so every process opening this directory reconstructs one order.
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if !a.mod.Equal(b.mod) {
			return a.mod.Before(b.mod)
		}
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		return a.hash < b.hash
	})
	maxSeq := int64(0)
	for _, f := range entries {
		e := &indexed{hash: f.hash, path: f.path, size: f.size}
		e.elem = s.lru.PushFront(e)
		s.index[f.hash] = e
		s.bytes += f.size
		if f.seq > maxSeq {
			maxSeq = f.seq
		}
	}
	s.seq.Store(maxSeq)
	// Sweep sidecars orphaned by a crashed eviction (entry gone, sidecar
	// left behind). Only stale ones: a fresh sidecar may belong to a Put
	// that is completing in another process right now.
	for _, sc := range sidecars {
		if _, err := os.Stat(strings.TrimSuffix(sc, seqSuffix)); os.IsNotExist(err) {
			_ = os.Remove(sc)
		}
	}
	// A directory warmed under a larger (or unbounded) budget is trimmed
	// to this store's bound immediately, not only on the next Put.
	s.mu.Lock()
	victims := s.evictLocked()
	s.mu.Unlock()
	for _, v := range victims {
		removeEntry(v)
	}
	return s, nil
}

// Dir returns the store's root directory (including the format-version
// component).
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := len(s.index), s.bytes
	s.mu.Unlock()
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Puts:         s.puts.Load(),
		RejectedPuts: s.rejected.Load(),
		Evictions:    s.evictions.Load(),
		Entries:      entries,
		Bytes:        bytes,
	}
}

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

func (s *Store) pathFor(hash string) string {
	return filepath.Join(s.dir, hash[:2], hash+".json")
}

func hashKey(key []byte) string {
	sum := sha256.Sum256(key)
	return hex.EncodeToString(sum[:])
}

// seqSuffix names the recency sidecar next to each entry file.
const seqSuffix = ".seq"

// readSeq parses the sidecar for the entry at path; damaged or missing
// sidecars read as 0 (ordering then falls back to mtime and key).
func readSeq(path string) int64 {
	data, err := os.ReadFile(path + seqSuffix)
	if err != nil {
		return 0
	}
	n, err := strconv.ParseInt(strings.TrimSpace(string(data)), 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// touch persists recency for the entry at path: mtime for cross-process
// ordering, the next sequence for same-mtime disambiguation. Best-effort —
// the in-memory LRU stays exact regardless.
func (s *Store) touch(path string) {
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	seq := s.seq.Add(1)
	// Stage-and-rename like the entry files: concurrent cross-process
	// touches of one entry must settle on one intact sidecar, never a torn
	// mix of two writes (a torn value would fabricate a recency neither
	// process issued).
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-")
	if err == nil {
		_, werr := tmp.Write(strconv.AppendInt(nil, seq, 10))
		if cerr := tmp.Close(); werr == nil && cerr == nil {
			if os.Rename(tmp.Name(), path+seqSuffix) != nil {
				_ = os.Remove(tmp.Name())
			}
		} else {
			_ = os.Remove(tmp.Name())
		}
	}
	// A concurrent eviction may have removed the entry (and its sidecar)
	// between our lock release and the write above; don't leave an orphan
	// sidecar behind for the lifetime of the process.
	if _, err := os.Stat(path); os.IsNotExist(err) {
		_ = os.Remove(path + seqSuffix)
	}
}

// removeEntry deletes an evicted entry file together with its sidecar.
func removeEntry(path string) {
	_ = os.Remove(path)
	_ = os.Remove(path + seqSuffix)
}

// Get returns the value stored under key, or (nil, false). Damaged or
// mismatched entries are deleted and reported as misses.
func (s *Store) Get(key []byte) ([]byte, bool) {
	hash := hashKey(key)
	if s.faults != nil {
		s.faults.delay()
		if s.faults.failRead() {
			// Transient read failure: the entry stays on disk and indexed
			// (same semantics as a real transient ReadFile error below).
			s.misses.Add(1)
			return nil, false
		}
	}

	s.mu.Lock()
	e, ok := s.index[hash]
	var path string
	if ok {
		path = e.path
	} else {
		// The file may have been written by another process after Open.
		path = s.pathFor(hash)
	}
	s.mu.Unlock()

	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			// The file is gone (evicted by another process): forget it.
			// Transient read failures keep the index entry — the bytes
			// are still on disk and must stay budgeted.
			s.drop(hash, false)
		}
		s.misses.Add(1)
		return nil, false
	}
	val, ok := decodeEntry(data, key)
	if !ok {
		s.drop(hash, true)
		s.misses.Add(1)
		return nil, false
	}

	s.mu.Lock()
	var victims []string
	if e, ok := s.index[hash]; ok {
		s.lru.MoveToFront(e.elem)
	} else {
		// Found on disk but not indexed (another process wrote it): adopt
		// it, evicting if the adoption pushes past the byte budget.
		e := &indexed{hash: hash, path: path, size: int64(len(data))}
		e.elem = s.lru.PushFront(e)
		s.index[hash] = e
		s.bytes += int64(len(data))
		victims = s.evictLocked()
	}
	s.mu.Unlock()
	for _, v := range victims {
		removeEntry(v)
	}
	s.touch(path)

	s.hits.Add(1)
	return val, true
}

// decodeEntry parses an on-disk envelope and verifies it holds key with an
// intact payload.
func decodeEntry(data []byte, key []byte) ([]byte, bool) {
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Version != formatVersion || string(e.Key) != string(key) || e.Value == nil {
		return nil, false
	}
	if e.Sum != valueSum(e.Value) {
		return nil, false
	}
	return e.Value, true
}

// drop forgets (and optionally deletes) the entry for hash.
func (s *Store) drop(hash string, remove bool) {
	s.mu.Lock()
	e, ok := s.index[hash]
	if ok {
		delete(s.index, hash)
		s.lru.Remove(e.elem)
		s.bytes -= e.size
	}
	s.mu.Unlock()
	if remove {
		path := s.pathFor(hash)
		if ok {
			path = e.path
		}
		removeEntry(path)
	}
}

// Delete removes the entry stored under key (a no-op if absent).
func (s *Store) Delete(key []byte) {
	s.drop(hashKey(key), true)
}

// Put stores value under key, atomically replacing any previous entry, and
// evicts least-recently-used entries if the byte budget is now exceeded.
// An entry that on its own exceeds the byte budget is refused outright
// (counted in Stats.RejectedPuts): admitting it would evict every other
// entry only to leave a store that still cannot hold the working set.
func (s *Store) Put(key, value []byte) error {
	hash := hashKey(key)
	data, err := json.Marshal(entry{Version: formatVersion, Key: key, Value: value, Sum: valueSum(value)})
	if err != nil {
		return fmt.Errorf("store: encode: %w", err)
	}
	if s.faults != nil {
		s.faults.delay()
		if s.faults.failWrite() {
			return fmt.Errorf("store: write %s: %w", hash[:8], errInjectedWrite)
		}
		// Corrupt the bytes about to hit disk — the envelope checksum (or,
		// for a truncation, the JSON parse) must catch this on the next Get.
		data = s.faults.corrupt(data)
	}
	if s.max >= 0 && int64(len(data)) > s.max {
		s.rejected.Add(1)
		// Keep the documented semantics — after a refused put, reads of
		// the key miss. Leaving an older value visible would hand callers
		// that mutate a key in place (the async-job records) a stale state
		// forever.
		s.drop(hash, true)
		return fmt.Errorf("store: %d-byte entry exceeds the %d-byte budget", len(data), s.max)
	}

	path := s.pathFor(hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+hash+".tmp-")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: publish: %w", err)
	}

	s.mu.Lock()
	if old, ok := s.index[hash]; ok {
		s.bytes -= old.size
		s.lru.Remove(old.elem)
	}
	e := &indexed{hash: hash, path: path, size: int64(len(data))}
	e.elem = s.lru.PushFront(e)
	s.index[hash] = e
	s.bytes += int64(len(data))
	victims := s.evictLocked()
	s.mu.Unlock()

	for _, v := range victims {
		removeEntry(v)
	}
	s.touch(path)
	s.puts.Add(1)
	return nil
}

// evictLocked trims the recency list to the byte budget from the LRU end
// — O(1) per victim — keeping at least the most recent entry (the one
// just written), and returns the file paths to delete. Caller holds s.mu.
func (s *Store) evictLocked() []string {
	if s.max < 0 {
		return nil
	}
	var victims []string
	for s.bytes > s.max && s.lru.Len() > 1 {
		oldest := s.lru.Back().Value.(*indexed)
		s.lru.Remove(oldest.elem)
		delete(s.index, oldest.hash)
		s.bytes -= oldest.size
		victims = append(victims, oldest.path)
		s.evictions.Add(1)
	}
	return victims
}
