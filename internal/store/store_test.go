package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, dir string, max int64) *Store {
	t.Helper()
	s, err := Open(dir, Options{MaxBytes: max})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), -1)
	key, val := []byte("key-1"), []byte(`{"cycles":42}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(key, val); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("got %q, %v; want %q", got, ok, val)
	}
	// Overwrite replaces.
	if err := s.Put(key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(key); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("overwrite lost: %q", got)
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 2 || st.Entries != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestReopenSeesEntries(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, -1)
	for i := 0; i < 10; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// A second process opening the same directory sees every entry.
	s2 := open(t, dir, -1)
	if s2.Len() != 10 {
		t.Fatalf("reopened store has %d entries, want 10", s2.Len())
	}
	for i := 0; i < 10; i++ {
		got, ok := s2.Get([]byte(fmt.Sprintf("k%d", i)))
		if !ok || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d: got %q, %v", i, got, ok)
		}
	}
	if st := s2.Stats(); st.Hits != 10 || st.Misses != 0 {
		t.Errorf("reopened stats %+v", st)
	}
}

// TestCrossProcessAdoption: an entry written by one Store handle after
// another handle indexed the directory is still found by the second.
func TestCrossProcessAdoption(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, -1)
	b := open(t, dir, -1)
	if err := a.Put([]byte("late"), []byte("val")); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get([]byte("late"))
	if !ok || string(got) != "val" {
		t.Fatalf("adoption failed: %q, %v", got, ok)
	}
	if b.Len() != 1 {
		t.Errorf("adopted entry not indexed: %d entries", b.Len())
	}
}

// TestCorruptEntriesAreMisses damages entries every way the loader guards
// against: truncation, garbage, version skew, and key mismatch. Every
// shape must read as a miss (and be deleted), never an error or a panic.
func TestCorruptEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, -1)
	keys := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}
	var paths []string
	for _, k := range keys {
		if err := s.Put(k, []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	err := filepath.Walk(s.Dir(), func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(p) == ".json" {
			paths = append(paths, p)
		}
		return nil
	})
	if err != nil || len(paths) != 4 {
		t.Fatalf("want 4 entry files, got %d (%v)", len(paths), err)
	}

	// Truncate one, garbage another, version-skew a third, key-swap the
	// fourth.
	full, _ := os.ReadFile(paths[0])
	if err := os.WriteFile(paths[0], full[:len(full)/2], 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[1], []byte("not json at all"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[2], []byte(`{"version":999,"key":"YQ==","value":"eA=="}`), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[3], []byte(`{"version":1,"key":"V1JPTkc=","value":"eA=="}`), 0o666); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, -1)
	for _, k := range keys {
		if _, ok := s2.Get(k); ok {
			t.Errorf("damaged entry for %q served as a hit", k)
		}
	}
	if st := s2.Stats(); st.Misses != 4 || st.Hits != 0 {
		t.Errorf("stats %+v", st)
	}
	// The damaged files are gone, so the index converges to empty.
	if n := s2.Len(); n != 0 {
		t.Errorf("%d damaged entries still indexed", n)
	}
}

// TestLRUEviction fills past the byte budget and checks (a) the bound
// holds, (b) the victims are the least-recently-used entries, where a Get
// counts as a use.
func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	val := bytes.Repeat([]byte("x"), 1024)
	// Entry file ≈ envelope + base64(value): ~1.4KB. Budget of 8KB keeps
	// roughly 5 entries.
	s := open(t, dir, 8<<10)
	for i := 0; i < 5; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Evictions != 0 {
		t.Fatalf("premature evictions: %+v", st)
	}
	// Touch k0 so it is the most recently used, then overflow by three:
	// the three untouched oldest entries (k1..k3) must be the victims.
	if _, ok := s.Get([]byte("k0")); !ok {
		t.Fatal("k0 missing before overflow")
	}
	for i := 5; i < 8; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Bytes > 8<<10 {
		t.Errorf("size bound violated: %d bytes indexed", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	if _, ok := s.Get([]byte("k0")); !ok {
		t.Error("recently-used k0 was evicted")
	}
	for _, dead := range []string{"k1", "k2", "k3"} {
		if _, ok := s.Get([]byte(dead)); ok {
			t.Errorf("LRU victim %s survived", dead)
		}
	}
	if _, ok := s.Get([]byte("k7")); !ok {
		t.Error("newest entry was evicted")
	}
	// On-disk footprint agrees with the index bound.
	var onDisk int64
	filepath.Walk(s.Dir(), func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			onDisk += info.Size()
		}
		return nil
	})
	if onDisk > 8<<10 {
		t.Errorf("on-disk bytes %d exceed the bound", onDisk)
	}
}

// TestOpenTrimsOverBudgetDir: a directory warmed under a looser budget is
// brought within this store's bound at Open, not lazily on the next Put.
func TestOpenTrimsOverBudgetDir(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, -1)
	val := bytes.Repeat([]byte("w"), 1024)
	for i := 0; i < 8; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	s2 := open(t, dir, 4<<10)
	st := s2.Stats()
	if st.Bytes > 4<<10 {
		t.Errorf("open left %d bytes indexed over the 4KiB bound", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("open recorded no evictions for an over-budget directory")
	}
	var onDisk int64
	filepath.Walk(s2.Dir(), func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			onDisk += info.Size()
		}
		return nil
	})
	if onDisk > 4<<10 {
		t.Errorf("on-disk bytes %d exceed the bound after open", onDisk)
	}
}

// TestEvictionRecencyPersists: recency carries across Open via mtimes, so
// a fresh handle evicts the entries the previous process used least
// recently.
func TestEvictionRecencyPersists(t *testing.T) {
	dir := t.TempDir()
	val := bytes.Repeat([]byte("y"), 1024)
	s := open(t, dir, -1)
	for i := 0; i < 4; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), val); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes on filesystems with coarse timestamps.
		time.Sleep(5 * time.Millisecond)
	}
	s.Get([]byte("k0")) // re-touch the oldest

	s2 := open(t, dir, 4<<10) // ~2 entries fit
	if err := s2.Put([]byte("new"), val); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get([]byte("k0")); !ok {
		t.Error("re-touched k0 evicted despite being recent")
	}
	if _, ok := s2.Get([]byte("k1")); ok {
		t.Error("stale k1 survived eviction")
	}
}

// TestConcurrentAccess hammers one store from many goroutines (run under
// -race in CI): concurrent Put/Get of overlapping keys with eviction
// pressure must stay consistent — every hit returns the exact value
// written for that key.
func TestConcurrentAccess(t *testing.T) {
	s := open(t, t.TempDir(), 64<<10)
	const workers = 8
	const keysN = 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("key-%d", (w+i)%keysN))
				want := []byte(fmt.Sprintf("value-%d", (w+i)%keysN))
				switch i % 3 {
				case 0:
					if err := s.Put(k, want); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				default:
					if got, ok := s.Get(k); ok && !bytes.Equal(got, want) {
						t.Errorf("key %s: got %q want %q", k, got, want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Puts == 0 || st.Hits == 0 {
		t.Errorf("degenerate run: %+v", st)
	}
}

// TestUnboundedAndDefault covers the MaxBytes sentinel values.
func TestUnboundedAndDefault(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.max != DefaultMaxBytes {
		t.Errorf("zero MaxBytes: got %d, want default %d", s.max, DefaultMaxBytes)
	}
	u := open(t, t.TempDir(), -1)
	for i := 0; i < 20; i++ {
		if err := u.Put([]byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte("z"), 2048)); err != nil {
			t.Fatal(err)
		}
	}
	if st := u.Stats(); st.Evictions != 0 || st.Entries != 20 {
		t.Errorf("unbounded store evicted: %+v", st)
	}
}

// tieMtimes forces the identical modification time onto every entry file,
// simulating a coarse-mtime filesystem where a burst of writes ties.
func tieMtimes(t *testing.T, s *Store, keys [][]byte) {
	t.Helper()
	tie := time.Now().Add(-time.Hour).Truncate(time.Second)
	for _, k := range keys {
		if err := os.Chtimes(s.pathFor(hashKey(k)), tie, tie); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEvictionOrderDeterministicUnderMtimeTies pins the persisted-sequence
// recency: with every entry mtime tied (coarse filesystem), a reopening
// process must still reconstruct the true LRU order from the sequence
// sidecars, so cross-process eviction picks the genuinely oldest entries.
func TestEvictionOrderDeterministicUnderMtimeTies(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, -1)
	keys := [][]byte{[]byte("tie-a"), []byte("tie-b"), []byte("tie-c"), []byte("tie-d")}
	val := bytes.Repeat([]byte("v"), 100)
	for _, k := range keys {
		if err := s.Put(k, val); err != nil {
			t.Fatal(err)
		}
	}
	// Promote tie-a to most recent, then tie every mtime.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("miss on just-written key")
	}
	tieMtimes(t, s, keys)
	size := s.Stats().Bytes / int64(len(keys))

	// Room for two entries: the reopened store must keep tie-d and tie-a
	// (most recent by sequence) and evict tie-b, tie-c — mtime alone cannot
	// tell them apart.
	s2 := open(t, dir, 2*size)
	if s2.Len() != 2 {
		t.Fatalf("want 2 survivors, have %d", s2.Len())
	}
	for i, want := range []bool{true, false, false, true} {
		if _, ok := s2.Get(keys[i]); ok != want {
			t.Errorf("%s: survived=%v, want %v", keys[i], ok, want)
		}
	}
}

// TestEvictionTieBreakByKeyWithoutSidecars covers the fallback total order:
// with no sidecars at all and every mtime tied, eviction order is still
// deterministic (keys break the tie), so two processes sharing a directory
// agree on the victims no matter what order the entries were written in.
func TestEvictionTieBreakByKeyWithoutSidecars(t *testing.T) {
	keys := [][]byte{[]byte("kb-0"), []byte("kb-1"), []byte("kb-2"), []byte("kb-3")}
	val := bytes.Repeat([]byte("v"), 100)
	survivors := func(order []int) string {
		dir := t.TempDir()
		s := open(t, dir, -1)
		for _, i := range order {
			if err := s.Put(keys[i], val); err != nil {
				t.Fatal(err)
			}
		}
		// Strip the sequence sidecars and tie every mtime: nothing but the
		// key is left to order on.
		if err := filepath.Walk(s.Dir(), func(path string, info os.FileInfo, err error) error {
			if err == nil && !info.IsDir() && filepath.Ext(path) == seqSuffix {
				return os.Remove(path)
			}
			return err
		}); err != nil {
			t.Fatal(err)
		}
		tieMtimes(t, s, keys)
		size := s.Stats().Bytes / int64(len(keys))
		s2 := open(t, dir, 2*size)
		out := ""
		for i, k := range keys {
			if _, ok := s2.Get(k); ok {
				out += fmt.Sprintf("%d", i)
			}
		}
		return out
	}
	a := survivors([]int{0, 1, 2, 3})
	b := survivors([]int{3, 2, 1, 0})
	if a != b {
		t.Errorf("eviction order depends on write order under tied mtimes: %q vs %q", a, b)
	}
	if len(a) != 2 {
		t.Errorf("want 2 survivors, got %q", a)
	}
}

// TestOversizedPutRefused: an entry that on its own exceeds the byte
// budget must be refused outright — never admitted by evicting everything
// else (which would thrash the store into holding exactly one giant,
// rarely-reusable blob). The paper's trace blobs are the realistic
// offender: a full-run capture is tens of MB, far beyond a small
// -cache-max-bytes.
func TestOversizedPutRefused(t *testing.T) {
	s := open(t, t.TempDir(), 8<<10)
	small := bytes.Repeat([]byte("v"), 256)
	for i := 0; i < 8; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), small); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	if before.Entries != 8 || before.Evictions != 0 {
		t.Fatalf("setup stats %+v", before)
	}

	// A synthetic trace-blob-sized value: bigger than the whole budget.
	// The key already holds a small value — after the refusal it must
	// read as a miss, not keep serving the stale small value (a caller
	// mutating a key in place would otherwise see frozen state forever).
	if err := s.Put([]byte("trace-blob"), small); err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("t"), 64<<10)
	if err := s.Put([]byte("trace-blob"), blob); err == nil {
		t.Fatal("oversized put accepted")
	}
	if _, ok := s.Get([]byte("trace-blob")); ok {
		t.Fatal("key readable after refused overwrite")
	}
	st := s.Stats()
	if st.RejectedPuts != 1 {
		t.Errorf("rejected puts %d, want 1", st.RejectedPuts)
	}
	if st.Entries != 8 || st.Evictions != 0 {
		t.Errorf("oversized put disturbed the store: %+v", st)
	}
	for i := 0; i < 8; i++ {
		if _, ok := s.Get([]byte(fmt.Sprintf("k%d", i))); !ok {
			t.Errorf("k%d lost after refused put", i)
		}
	}

	// Unbounded stores accept anything.
	u := open(t, t.TempDir(), -1)
	if err := u.Put([]byte("trace-blob"), blob); err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, -1)
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.Delete([]byte("k"))
	if _, ok := s.Get([]byte("k")); ok {
		t.Fatal("deleted key readable")
	}
	s.Delete([]byte("never-existed")) // no-op, no panic
	// The file is gone, so a fresh process misses too.
	s2 := open(t, dir, -1)
	if _, ok := s2.Get([]byte("k")); ok {
		t.Fatal("deleted key visible to a fresh open")
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Errorf("stats %+v", st)
	}
}
