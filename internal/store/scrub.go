package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
)

// ScrubReport summarizes one Scrub pass.
type ScrubReport struct {
	// Scanned is the number of entry files examined.
	Scanned int `json:"scanned"`
	// Corrupt is the number of entries that failed verification and were
	// deleted (unparseable envelope, wrong version, payload checksum
	// mismatch, or a recorded key that does not hash to the filename).
	Corrupt int `json:"corrupt"`
	// BytesReclaimed is the total size of the deleted entry files.
	BytesReclaimed int64 `json:"bytes_reclaimed"`
	// Errors counts entries that could not be read or deleted; they are
	// left in place for a later pass.
	Errors int `json:"errors"`
}

// Scrub walks every entry on disk, verifies its envelope end to end —
// parseable JSON, current format version, payload checksum, and that the
// recorded key hashes to the filename — and deletes entries that fail.
// Healthy entries are untouched (recency included). It returns what it
// found; scrubbing is safe to run concurrently with reads and writes, and
// an entry being written during the walk is simply seen in whichever state
// the atomic rename left visible.
func (s *Store) Scrub() ScrubReport {
	var rep ScrubReport
	_ = filepath.Walk(s.dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		name := info.Name()
		if strings.Contains(name, ".tmp-") || strings.HasSuffix(name, seqSuffix) {
			return nil
		}
		hash := strings.TrimSuffix(name, ".json")
		if filepath.Ext(name) != ".json" || len(hash) != sha256.Size*2 {
			return nil
		}
		if _, err := hex.DecodeString(hash); err != nil {
			return nil
		}
		rep.Scanned++
		data, err := os.ReadFile(path)
		if err != nil {
			rep.Errors++
			return nil
		}
		if scrubOK(data, hash) {
			return nil
		}
		rep.Corrupt++
		rep.BytesReclaimed += info.Size()
		// Forget it in the index too (if this store had it indexed), so the
		// byte accounting stays honest.
		s.drop(hash, true)
		return nil
	})
	return rep
}

// scrubOK verifies a raw entry file against the hash its filename claims.
func scrubOK(data []byte, hash string) bool {
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return false
	}
	if e.Version != formatVersion || e.Value == nil {
		return false
	}
	if hashKey(e.Key) != hash {
		return false
	}
	return e.Sum == valueSum(e.Value)
}
