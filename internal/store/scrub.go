package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
)

// ScrubReport summarizes one Scrub pass.
type ScrubReport struct {
	// Scanned is the number of entry files examined.
	Scanned int `json:"scanned"`
	// Corrupt is the number of entries that failed verification and were
	// deleted (unparseable envelope, wrong version, payload checksum
	// mismatch, a recorded key that does not hash to the filename, or a
	// classifier rejection).
	Corrupt int `json:"corrupt"`
	// OrphanChunks is the number of chunk entries deleted because no
	// healthy manifest names them: their group's manifest is absent,
	// damaged, invalidated this pass, or does not cover their index. A
	// crash after chunk writes but before the manifest write leaves
	// exactly this debris.
	OrphanChunks int `json:"orphan_chunks,omitempty"`
	// ManifestsInvalidated is the number of manifest entries deleted
	// because a chunk they reference is missing — a partial trace must
	// read as a clean miss, never replay partially. The chunks such a
	// manifest did have are deleted as orphans in the same pass.
	ManifestsInvalidated int `json:"manifests_invalidated,omitempty"`
	// BytesReclaimed is the total size of the deleted entry files.
	BytesReclaimed int64 `json:"bytes_reclaimed"`
	// Errors counts entries that could not be read or deleted; they are
	// left in place for a later pass.
	Errors int `json:"errors"`
}

// EntryKind is the chunk-set role of one store entry, as reported by a
// ScrubOptions.Classify callback.
type EntryKind int

const (
	// EntryOther takes no part in cross-entry checks.
	EntryOther EntryKind = iota
	// EntryManifest names a group of chunk entries; it is valid only when
	// every chunk index in [0, Chunks) is present and healthy.
	EntryManifest
	// EntryChunk belongs to a group; it is valid only while a healthy
	// manifest for the group covers its index.
	EntryChunk
)

// EntryClass describes one healthy entry's role in a chunked group.
type EntryClass struct {
	Kind EntryKind
	// Group is an opaque identifier linking a manifest to its chunks —
	// equal Group strings mean same trace. The classifier chooses the
	// scheme; the store only compares.
	Group string
	// Chunk is the entry's chunk index (Kind == EntryChunk).
	Chunk int64
	// Chunks is the number of chunks the manifest names
	// (Kind == EntryManifest).
	Chunks int64
}

// ScrubOptions extend Scrub with cross-entry knowledge the store itself
// does not have.
type ScrubOptions struct {
	// Classify inspects one individually healthy entry and reports its
	// chunk-set role. Returning ok=false condemns the entry (counted as
	// Corrupt) — the hook for "the key parses but the value is not the
	// manifest it claims to be". A nil Classify disables cross-entry
	// checks entirely, reducing ScrubWith to the classic per-entry pass.
	Classify func(key, value []byte) (class EntryClass, ok bool)
}

// Scrub walks every entry on disk, verifies its envelope end to end —
// parseable JSON, current format version, payload checksum, and that the
// recorded key hashes to the filename — and deletes entries that fail.
// Healthy entries are untouched (recency included). It returns what it
// found; scrubbing is safe to run concurrently with reads and writes, and
// an entry being written during the walk is simply seen in whichever state
// the atomic rename left visible.
func (s *Store) Scrub() ScrubReport {
	return s.ScrubWith(ScrubOptions{})
}

// scrubMember is one classified entry awaiting the cross-entry pass.
type scrubMember struct {
	hash string
	size int64
	// index (chunks) or count (manifests)
	n int64
}

// ScrubWith is Scrub plus cross-entry chunk-set validation driven by
// opts.Classify: chunk entries no healthy manifest names are deleted as
// orphans, and manifests referencing missing chunks are invalidated
// (deleted along with their surviving chunks), so a crash-torn chunked
// trace always converges to a clean miss rather than lingering as
// un-replayable partial state. Concurrency caveat: an entry Put between
// the walk and the cross-entry deletes can be deleted as a false orphan —
// its trace then re-reads as a miss and is re-captured, which is the
// fail-safe direction.
func (s *Store) ScrubWith(opts ScrubOptions) ScrubReport {
	var rep ScrubReport
	var manifests map[string]scrubMember
	var chunks map[string]map[int64]scrubMember
	_ = filepath.Walk(s.dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		name := info.Name()
		if strings.Contains(name, ".tmp-") || strings.HasSuffix(name, seqSuffix) {
			return nil
		}
		hash := strings.TrimSuffix(name, ".json")
		if filepath.Ext(name) != ".json" || len(hash) != sha256.Size*2 {
			return nil
		}
		if _, err := hex.DecodeString(hash); err != nil {
			return nil
		}
		rep.Scanned++
		data, err := os.ReadFile(path)
		if err != nil {
			rep.Errors++
			return nil
		}
		e, ok := scrubEntry(data, hash)
		if ok && opts.Classify != nil {
			class, healthy := opts.Classify(e.Key, e.Value)
			if !healthy {
				ok = false
			} else {
				switch class.Kind {
				case EntryManifest:
					if manifests == nil {
						manifests = make(map[string]scrubMember)
					}
					manifests[class.Group] = scrubMember{hash: hash, size: info.Size(), n: class.Chunks}
				case EntryChunk:
					if chunks == nil {
						chunks = make(map[string]map[int64]scrubMember)
					}
					if chunks[class.Group] == nil {
						chunks[class.Group] = make(map[int64]scrubMember)
					}
					chunks[class.Group][class.Chunk] = scrubMember{hash: hash, size: info.Size()}
				}
			}
		}
		if ok {
			return nil
		}
		rep.Corrupt++
		rep.BytesReclaimed += info.Size()
		// Forget it in the index too (if this store had it indexed), so the
		// byte accounting stays honest.
		s.drop(hash, true)
		return nil
	})

	// Cross-entry pass: invalidate manifests missing any named chunk,
	// then delete every chunk left without a covering manifest.
	for group, m := range manifests {
		complete := true
		for i := int64(0); i < m.n; i++ {
			if _, ok := chunks[group][i]; !ok {
				complete = false
				break
			}
		}
		if complete {
			continue
		}
		rep.ManifestsInvalidated++
		rep.BytesReclaimed += m.size
		s.drop(m.hash, true)
		delete(manifests, group)
	}
	for group, set := range chunks {
		m, named := manifests[group]
		for idx, c := range set {
			if named && idx < m.n {
				continue
			}
			rep.OrphanChunks++
			rep.BytesReclaimed += c.size
			s.drop(c.hash, true)
		}
	}
	return rep
}

// scrubEntry verifies a raw entry file against the hash its filename
// claims, returning the parsed entry for classification when healthy.
func scrubEntry(data []byte, hash string) (entry, bool) {
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return e, false
	}
	if e.Version != formatVersion || e.Value == nil {
		return e, false
	}
	if hashKey(e.Key) != hash {
		return e, false
	}
	return e, e.Sum == valueSum(e.Value)
}
