package workload

import (
	"fmt"

	"minigraph/internal/isa"
)

func init() {
	register("vpr", SPECint, buildVPR)
	register("epic", MediaBench, buildEpic)
	register("qsort", MiBench, buildQsort)
}

// buildVPR models vpr's routing cost estimator: bounding-box wirelength
// over net pins (abs-difference and min/max chains) with a table-driven
// congestion factor — compare/branch-laced integer code.
func buildVPR(in Input) *isa.Program {
	r := rng("vpr", in)
	nets := 3000
	pins := make([]int64, 4*nets) // x1,y1,x2,y2 per net
	for i := range pins {
		pins[i] = int64(r.Intn(256))
	}
	cong := make([]int64, 256)
	for i := range cong {
		cong[i] = int64(100 + r.Intn(60))
	}
	var d dataBuilder
	d.words("pins", pins)
	d.words("cong", cong)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   li   r1, %d
        lda  r2, pins(zero)
        lda  r3, cong(zero)
        clr  r20
net:    ldq  r4, 0(r2)       ; x1
        ldq  r5, 8(r2)       ; y1
        ldq  r6, 16(r2)      ; x2
        ldq  r7, 24(r2)      ; y2
        subq r4, r6, r8      ; dx
        sra  r8, 63, r9
        xor  r8, r9, r8
        subq r8, r9, r8      ; |dx|
        subq r5, r7, r10     ; dy
        sra  r10, 63, r11
        xor  r10, r11, r10
        subq r10, r11, r10   ; |dy|
        addq r8, r10, r12    ; half-perimeter wirelength
        ; congestion factor keyed on the bounding-box centre column
        addq r4, r6, r13
        srl  r13, 1, r13
        and  r13, 255, r13
        s8addq r13, r3, r14
        ldq  r15, 0(r14)
        mull r12, r15, r16
        srl  r16, 7, r16
        addq r20, r16, r20
        ; penalise tall skinny boxes (branchy path selection)
        cmplt r8, r10, r17
        beq  r17, wide
        addq r20, r10, r20
        br   next
wide:   addq r20, r8, r20
next:   lda  r2, 32(r2)
        subl r1, 1, r1
        bne  r1, net
        stq  r20, result(zero)
        halt
`, nets)
	return build("vpr", d.String(), text)
}

// buildEpic models epic's pyramid construction: a separable 1-D wavelet
// (lifting) filter pass over image rows — shift-add filters with stride-2
// loads and stores, the dense streaming idiom of image codecs.
func buildEpic(in Input) *isa.Program {
	r := rng("epic", in)
	w, h := 256, 64
	img := make([]int64, w*h)
	for i := range img {
		img[i] = int64(r.Intn(4096))
	}
	var d dataBuilder
	d.words("img", img)
	d.space("low", 8*w*h/2)
	d.space("high", 8*w*h/2)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   li   r1, %d           ; rows
        lda  r2, img(zero)
        lda  r3, low(zero)
        lda  r4, high(zero)
        clr  r20
row:    li   r5, %d           ; pairs per row
pair:   ldq  r6, 0(r2)        ; even sample
        ldq  r7, 8(r2)        ; odd sample
        ldq  r8, 16(r2)       ; next even (prediction neighbour)
        ; predict: detail = odd - (even + nextEven)/2
        addq r6, r8, r9
        sra  r9, 1, r9
        subq r7, r9, r10
        ; update: smooth = even + detail/4
        sra  r10, 2, r11
        addq r6, r11, r12
        stq  r12, 0(r3)
        stq  r10, 0(r4)
        addq r20, r12, r20
        xor  r20, r10, r20
        lda  r2, 16(r2)
        lda  r3, 8(r3)
        lda  r4, 8(r4)
        subl r5, 1, r5
        bne  r5, pair
        lda  r2, 16(r2)       ; skip the row's trailing pair
        subl r1, 1, r1
        bne  r1, row
        stq  r20, result(zero)
        halt
`, h, w/2-1)
	return build("epic", d.String(), text)
}

// buildQsort models MiBench's qsort: an iterative quicksort with an
// explicit stack — data-dependent branches, swaps, and pointer arithmetic.
func buildQsort(in Input) *isa.Program {
	r := rng("qsort", in)
	n := 2048
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(r.Intn(1 << 20))
	}
	var d dataBuilder
	d.words("vals", vals)
	d.space("stack", 8*128)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   lda  r1, vals(zero)
        lda  r2, stack(zero)
        ; push (0, n-1)
        stq  zero, 0(r2)
        li   r3, %d
        stq  r3, 8(r2)
        lda  r2, 16(r2)
pop:    lda  r4, stack(zero)
        cmple r2, r4, r5      ; stack empty?
        bne  r5, done
        lda  r2, -16(r2)
        ldq  r6, 0(r2)        ; lo
        ldq  r7, 8(r2)        ; hi
        cmplt r6, r7, r8
        beq  r8, pop
        ; partition around vals[hi]
        s8addq r7, r1, r9
        ldq  r10, 0(r9)       ; pivot
        mov  r6, r11          ; i
        mov  r6, r12          ; j
part:   cmplt r12, r7, r13
        beq  r13, partdone
        s8addq r12, r1, r14
        ldq  r15, 0(r14)
        cmple r15, r10, r16
        beq  r16, noswap
        s8addq r11, r1, r17
        ldq  r18, 0(r17)
        stq  r15, 0(r17)      ; swap vals[i], vals[j]
        stq  r18, 0(r14)
        addq r11, 1, r11
noswap: addq r12, 1, r12
        br   part
partdone: s8addq r11, r1, r14
        ldq  r15, 0(r14)
        stq  r10, 0(r14)      ; place pivot
        stq  r15, 0(r9)
        ; push (lo, i-1) and (i+1, hi)
        subq r11, 1, r16
        stq  r6, 0(r2)
        stq  r16, 8(r2)
        lda  r2, 16(r2)
        addq r11, 1, r16
        stq  r16, 0(r2)
        stq  r7, 8(r2)
        lda  r2, 16(r2)
        br   pop
done:   ; checksum: fold the sorted array
        li   r3, %d
        lda  r4, vals(zero)
        clr  r20
fold:   ldq  r5, 0(r4)
        sll  r20, 1, r6
        srl  r20, 63, r7
        bis  r6, r7, r20
        xor  r20, r5, r20
        lda  r4, 8(r4)
        subl r3, 1, r3
        bne  r3, fold
        stq  r20, result(zero)
        halt
`, n-1, n)
	return build("qsort", d.String(), text)
}
