package workload_test

import (
	"testing"

	"minigraph/internal/core"
	"minigraph/internal/emu"
	"minigraph/internal/isa"
	"minigraph/internal/program"
	"minigraph/internal/rewrite"
	"minigraph/internal/workload"
)

const runLimit = 3_000_000

func TestEveryBenchmarkRunsToCompletion(t *testing.T) {
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := b.Build(workload.InputTrain)
			st, err := emu.RunToCompletion(p, nil, runLimit)
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			if !st.Halted {
				t.Fatalf("%s: did not halt within %d records", b.Name, runLimit)
			}
			if st.InstCount < 20_000 {
				t.Errorf("%s: only %d dynamic instructions (too short to measure)", b.Name, st.InstCount)
			}
			if st.InstCount > 1_200_000 {
				t.Errorf("%s: %d dynamic instructions (too long for the experiment sweep)", b.Name, st.InstCount)
			}
			// The result slot must be written (checksum != 0 is not
			// guaranteed for every kernel, but the memory image must be).
			if st.MemSum == 0 {
				t.Errorf("%s: empty memory image", b.Name)
			}
		})
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	for _, b := range workload.All() {
		p1 := b.Build(workload.InputTrain)
		p2 := b.Build(workload.InputTrain)
		s1, err1 := emu.RunToCompletion(p1, nil, runLimit)
		s2, err2 := emu.RunToCompletion(p2, nil, runLimit)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", b.Name, err1, err2)
		}
		if s1.MemSum != s2.MemSum || s1.InstCount != s2.InstCount {
			t.Errorf("%s: nondeterministic across rebuilds", b.Name)
		}
	}
}

func TestTrainAndTestInputsDiffer(t *testing.T) {
	for _, b := range workload.All() {
		pTrain := b.Build(workload.InputTrain)
		pTest := b.Build(workload.InputTest)
		sTrain, err := emu.RunToCompletion(pTrain, nil, runLimit)
		if err != nil {
			t.Fatalf("%s train: %v", b.Name, err)
		}
		sTest, err := emu.RunToCompletion(pTest, nil, runLimit)
		if err != nil {
			t.Fatalf("%s test: %v", b.Name, err)
		}
		if sTrain.MemSum == sTest.MemSum {
			t.Errorf("%s: train and test inputs produce identical memory images", b.Name)
		}
	}
}

func TestSuitesPopulated(t *testing.T) {
	for _, s := range workload.Suites() {
		if n := len(workload.BySuite(s)); n < 5 {
			t.Errorf("suite %s has only %d benchmarks", s, n)
		}
	}
	if _, ok := workload.ByName("mcf"); !ok {
		t.Error("mcf missing")
	}
	if _, ok := workload.ByName("nonexistent"); ok {
		t.Error("phantom benchmark")
	}
}

// TestRewriteEquivalenceAcrossWorkloads is the end-to-end soundness check:
// extraction + rewriting must preserve every kernel's architectural results.
func TestRewriteEquivalenceAcrossWorkloads(t *testing.T) {
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			p := b.Build(workload.InputTrain)
			ref, err := emu.RunToCompletion(p, nil, runLimit)
			if err != nil {
				t.Fatal(err)
			}
			g := program.BuildCFG(p, nil)
			lv := program.ComputeLiveness(g)
			prof, err := emu.ProfileProgram(p, nil, runLimit)
			if err != nil {
				t.Fatal(err)
			}
			sel := core.Extract(g, lv, prof, core.DefaultPolicy(), 512)
			res, err := rewrite.Rewrite(p, sel, false)
			if err != nil {
				t.Fatal(err)
			}
			mgt := core.NewMGT(res.Templates, core.DefaultExecParams())
			got, err := emu.RunToCompletion(res.Prog, mgt, runLimit)
			if err != nil {
				t.Fatalf("rewritten run: %v", err)
			}
			if got.MemSum != ref.MemSum {
				t.Fatalf("rewriting changed %s's results", b.Name)
			}
			if sel.Coverage() <= 0 {
				t.Errorf("%s: zero coverage", b.Name)
			}
			t.Logf("%s: coverage %.1f%%, %d templates, %d instances",
				b.Name, 100*sel.Coverage(), len(sel.Templates), len(sel.Instances))
		})
	}
}

// TestCompressedRewriteGCC covers layout-changing rewrites of code that
// stores text addresses to memory (gcc's jump table): the binary must still
// run correctly with all text references relocated. The full memory image
// legitimately differs (the table holds relocated addresses), so the check
// compares the computed result instead.
func TestCompressedRewriteGCC(t *testing.T) {
	b, _ := workload.ByName("gcc")
	p := b.Build(workload.InputTrain)
	prof, err := emu.ProfileProgram(p, nil, runLimit)
	if err != nil {
		t.Fatal(err)
	}
	g := program.BuildCFG(p, nil)
	lv := program.ComputeLiveness(g)
	sel := core.Extract(g, lv, prof, core.DefaultPolicy(), 512)
	res, err := rewrite.Rewrite(p, sel, true)
	if err != nil {
		t.Fatal(err)
	}
	mgt := core.NewMGT(res.Templates, core.DefaultExecParams())

	mRef := emu.NewMachine(p, nil)
	if _, err := mRef.Run(runLimit); err != nil {
		t.Fatal(err)
	}
	mGot := emu.NewMachine(res.Prog, mgt)
	if _, err := mGot.Run(runLimit); err != nil {
		t.Fatal(err)
	}
	want := mRef.Mem.Read(p.DataSymbols["result"], 8)
	got := mGot.Mem.Read(res.Prog.DataSymbols["result"], 8)
	if want != got {
		t.Fatalf("compressed gcc result %#x want %#x", got, want)
	}
	// Per-class token counts must also survive.
	for i := 0; i < 8; i++ {
		a := mRef.Mem.Read(p.DataSymbols["counts"]+isa.Addr(8*i), 8)
		b := mGot.Mem.Read(res.Prog.DataSymbols["counts"]+isa.Addr(8*i), 8)
		if a != b {
			t.Fatalf("count[%d] = %d want %d", i, b, a)
		}
	}
}
