package workload

import (
	"fmt"
	"strings"

	"minigraph/internal/isa"
)

func init() {
	register("bitcount", MiBench, buildBitcount)
	register("sha", MiBench, buildSHA)
	register("crc32", MiBench, buildCRC32)
	register("dijkstra", MiBench, buildDijkstra)
	register("strsearch", MiBench, buildStrSearch)
	register("blowfish", MiBench, buildBlowfish)
	register("susan", MiBench, buildSusan)
	register("rgba", MiBench, buildRGBA)
}

// buildBitcount is MiBench's bitcount: several counting methods (nibble
// table, Kernighan clears, shift-mask tree) over a word stream — pure
// serial chains of single-cycle integer operations.
func buildBitcount(in Input) *isa.Program {
	r := rng("bitcount", in)
	n := 6000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(r.Uint64())
	}
	nib := make([]byte, 16)
	for i := range nib {
		nib[i] = byte(i&1 + i>>1&1 + i>>2&1 + i>>3&1)
	}
	var d dataBuilder
	d.words("vals", vals)
	d.bytesArr("nib", nib)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   li   r1, %d
        lda  r2, vals(zero)
        lda  r3, nib(zero)
        clr  r20
loop:   ldq  r4, 0(r2)
        lda  r2, 8(r2)
        ; method 1: shift-mask tree on the low 32 bits
        and  r4, 4294967295, r5
        srl  r5, 1, r6
        lda  r7, 0x55555555(zero)
        and  r6, r7, r6
        subq r5, r6, r5
        lda  r7, 0x33333333(zero)
        and  r5, r7, r6
        srl  r5, 2, r5
        and  r5, r7, r5
        addq r5, r6, r5
        srl  r5, 4, r6
        addq r5, r6, r5
        lda  r7, 0x0f0f0f0f(zero)
        and  r5, r7, r5
        srl  r5, 8, r6
        addq r5, r6, r5
        srl  r5, 16, r6
        addq r5, r6, r5
        and  r5, 63, r5
        addq r20, r5, r20
        ; method 2: nibble table on the high byte
        srl  r4, 56, r8
        and  r8, 15, r9
        addq r3, r9, r10
        ldbu r11, 0(r10)
        srl  r8, 4, r9
        addq r3, r9, r10
        ldbu r12, 0(r10)
        addq r11, r12, r11
        addq r20, r11, r20
        ; method 3: Kernighan clears on bits 32..39
        srl  r4, 32, r13
        and  r13, 255, r13
k:      beq  r13, kdone
        subq r13, 1, r14
        and  r13, r14, r13
        addq r20, 1, r20
        br   k
kdone:  subl r1, 1, r1
        bne  r1, loop
        stq  r20, result(zero)
        halt
`, n)
	return build("bitcount", d.String(), text)
}

// buildSHA is a SHA-1-style compression: 20 unrolled rounds of
// rotate/xor/add mixing per block over a 16-word schedule.
func buildSHA(in Input) *isa.Program {
	r := rng("sha", in)
	blocks := 450
	msgs := make([]int64, blocks*16)
	for i := range msgs {
		msgs[i] = int64(r.Uint32())
	}
	var d dataBuilder
	d.words("msg", msgs)
	d.space("result", 8)

	var t strings.Builder
	p := func(s string, a ...interface{}) { fmt.Fprintf(&t, s+"\n", a...) }
	p("main:   lda  r1, msg(zero)")
	p("        li   r2, %d", blocks)
	p("        li   r4, 0x67452301") // a
	p("        li   r5, 0xefcdab89") // b
	p("        li   r6, 0x98badcfe") // c
	p("        li   r7, 0x10325476") // d
	p("        li   r8, 0xc3d2e1f0") // e
	p("blk:")
	for round := 0; round < 20; round++ {
		p("        ldq  r9, %d(r1)", 8*(round%16))
		// f = (b & c) | (~b & d)
		p("        and  r5, r6, r10")
		p("        bic  r7, r5, r11")
		p("        bis  r10, r11, r10")
		// rot5(a)
		p("        sll  r4, 5, r12")
		p("        srl  r4, 27, r13")
		p("        bis  r12, r13, r12")
		p("        and  r12, 4294967295, r12")
		// e + f + rot5(a) + w + k
		p("        addq r8, r10, r14")
		p("        addq r14, r12, r14")
		p("        addq r14, r9, r14")
		p("        lda  r14, 0x7999(r14)")
		p("        and  r14, 4294967295, r14")
		// rotate registers: e=d d=c c=rot30(b) b=a a=t
		p("        mov  r7, r8")
		p("        mov  r6, r7")
		p("        sll  r5, 30, r15")
		p("        srl  r5, 2, r16")
		p("        bis  r15, r16, r6")
		p("        and  r6, 4294967295, r6")
		p("        mov  r4, r5")
		p("        mov  r14, r4")
	}
	p("        lda  r1, 128(r1)")
	p("        subl r2, 1, r2")
	p("        bne  r2, blk")
	p("        addq r4, r5, r4")
	p("        xor  r4, r6, r4")
	p("        addq r4, r7, r4")
	p("        xor  r4, r8, r4")
	p("        stq  r4, result(zero)")
	p("        halt")
	return build("sha", d.String(), t.String())
}

// buildCRC32 is MiBench's crc32: the classic table-driven byte loop.
func buildCRC32(in Input) *isa.Program {
	r := rng("crc32", in)
	n := 24 * 1024
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(r.Intn(256))
	}
	table := make([]int64, 256)
	for i := 0; i < 256; i++ {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = 0xedb88320 ^ (c >> 1)
			} else {
				c >>= 1
			}
		}
		table[i] = int64(c)
	}
	var d dataBuilder
	d.bytesArr("data", data)
	d.words("crctab", table)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   li   r1, %d
        lda  r2, data(zero)
        lda  r3, crctab(zero)
        lda  r4, -1(zero)
        and  r4, 4294967295, r4   ; crc = 0xffffffff
loop:   ldbu r5, 0(r2)
        lda  r2, 1(r2)
        xor  r4, r5, r6
        and  r6, 255, r6
        s8addq r6, r3, r7
        ldq  r8, 0(r7)
        srl  r4, 8, r4
        xor  r4, r8, r4
        subl r1, 1, r1
        bne  r1, loop
        ornot zero, r4, r4
        and  r4, 4294967295, r4
        stq  r4, result(zero)
        halt
`, n)
	return build("crc32", d.String(), text)
}

// buildDijkstra is MiBench's dijkstra: single-source shortest paths over an
// adjacency matrix with linear min-scan (compare/branch heavy).
func buildDijkstra(in Input) *isa.Program {
	r := rng("dijkstra", in)
	n := 48
	adj := make([]int64, n*n)
	for i := range adj {
		adj[i] = int64(1 + r.Intn(30))
		if r.Intn(4) == 0 {
			adj[i] = 1 << 20 // no edge
		}
	}
	var d dataBuilder
	d.words("adj", adj)
	d.space("dist", 8*n)
	d.space("visited", n)
	d.space("result", 8)
	sources := 8
	text := fmt.Sprintf(`
main:   li   r25, %d          ; sources
        clr  r24              ; source index
        clr  r20
src:    ; init dist = INF, visited = 0
        li   r1, %d
        lda  r2, dist(zero)
        lda  r3, visited(zero)
        li   r4, 1048576
init:   stq  r4, 0(r2)
        stb  zero, 0(r3)
        lda  r2, 8(r2)
        lda  r3, 1(r3)
        subl r1, 1, r1
        bne  r1, init
        lda  r2, dist(zero)
        s8addq r24, r2, r5
        stq  zero, 0(r5)      ; dist[src] = 0
        li   r6, %d           ; n iterations
iter:   ; find unvisited min
        li   r7, 1048577
        li   r8, -1           ; argmin
        clr  r9               ; scan index
        lda  r2, dist(zero)
        lda  r3, visited(zero)
scan:   addq r3, r9, r10
        ldbu r11, 0(r10)
        bne  r11, skip
        s8addq r9, r2, r12
        ldq  r13, 0(r12)
        cmplt r13, r7, r14
        beq  r14, skip
        mov  r13, r7
        mov  r9, r8
skip:   addq r9, 1, r9
        cmplt r9, %d, r14
        bne  r14, scan
        blt  r8, srcdone      ; no reachable nodes left
        ; mark visited, relax row
        lda  r3, visited(zero)
        addq r3, r8, r10
        li   r11, 1
        stb  r11, 0(r10)
        lda  r15, adj(zero)
        sll  r8, 7, r16       ; row offset: r8 * n * 8 with n=48 -> r8*384
        sll  r8, 8, r17
        addq r16, r17, r16
        addq r15, r16, r15    ; &adj[r8*48]
        clr  r9
relax:  s8addq r9, r15, r10
        ldq  r11, 0(r10)      ; w(u,v)
        addq r7, r11, r11     ; dist[u] + w
        lda  r2, dist(zero)
        s8addq r9, r2, r12
        ldq  r13, 0(r12)
        cmplt r11, r13, r14
        beq  r14, norelax
        stq  r11, 0(r12)
norelax: addq r9, 1, r9
        cmplt r9, %d, r14
        bne  r14, relax
        subl r6, 1, r6
        bne  r6, iter
srcdone: ; checksum the dist array
        li   r1, %d
        lda  r2, dist(zero)
sum:    ldq  r4, 0(r2)
        addq r20, r4, r20
        lda  r2, 8(r2)
        subl r1, 1, r1
        bne  r1, sum
        addq r24, 7, r24      ; next source (stride 7 mod n)
        cmplt r24, %d, r14
        bne  r14, nofix
        lda  r24, -%d(r24)
nofix:  subl r25, 1, r25
        bne  r25, src
        stq  r20, result(zero)
        halt
`, sources, n, n, n, n, n, n, n)
	return build("dijkstra", d.String(), text)
}

// buildStrSearch is MiBench's stringsearch: Boyer-Moore-Horspool with a
// 256-entry skip table over a text corpus.
func buildStrSearch(in Input) *isa.Program {
	r := rng("strsearch", in)
	n := 24 * 1024
	text := make([]byte, n)
	for i := range text {
		text[i] = byte('a' + r.Intn(20))
	}
	pat := []byte("searchpattern")
	// Plant a few occurrences.
	for k := 0; k < 20; k++ {
		copy(text[r.Intn(n-len(pat)):], pat)
	}
	m := len(pat)
	skip := make([]byte, 256)
	for i := range skip {
		skip[i] = byte(m)
	}
	for i := 0; i < m-1; i++ {
		skip[pat[i]] = byte(m - 1 - i)
	}
	var d dataBuilder
	d.bytesArr("text", text)
	d.bytesArr("pat", pat)
	d.bytesArr("skip", skip)
	d.space("result", 8)
	src := fmt.Sprintf(`
main:   li   r1, %d          ; pos = m-1
        li   r2, %d          ; limit
        lda  r3, text(zero)
        lda  r4, pat(zero)
        lda  r5, skip(zero)
        clr  r20             ; matches
outer:  addq r3, r1, r6
        ldbu r7, 0(r6)       ; text[pos]
        li   r8, %d          ; j = m-1
        mov  r6, r9
cmp:    ldbu r10, 0(r9)
        addq r4, r8, r11
        ldbu r12, 0(r11)
        xor  r10, r12, r13
        bne  r13, mismatch
        beq  r8, found
        subl r8, 1, r8
        lda  r9, -1(r9)
        br   cmp
found:  addq r20, 1, r20
        lda  r1, %d(r1)
        br   cont
mismatch: addq r5, r7, r14
        ldbu r15, 0(r14)
        addq r1, r15, r1
cont:   cmplt r1, r2, r16
        bne  r16, outer
        stq  r20, result(zero)
        halt
`, m-1, n, m-1, m)
	return build("strsearch", d.String(), src)
}

// buildBlowfish models Blowfish's Feistel network: four S-box lookups and
// add/xor mixing per round, 16 rounds per block — the canonical
// integer-memory mini-graph workload.
func buildBlowfish(in Input) *isa.Program {
	r := rng("blowfish", in)
	sbox := make([]int64, 4*256)
	for i := range sbox {
		sbox[i] = int64(r.Uint32())
	}
	pbox := make([]int64, 18)
	for i := range pbox {
		pbox[i] = int64(r.Uint32())
	}
	nblocks := 1200
	var d dataBuilder
	d.words("sbox", sbox)
	d.words("pbox", pbox)
	d.space("result", 8)

	var t strings.Builder
	p := func(s string, a ...interface{}) { fmt.Fprintf(&t, s+"\n", a...) }
	p("main:   li   r1, %d", nblocks)
	p("        lda  r2, sbox(zero)")
	p("        lda  r3, pbox(zero)")
	p("        li   r4, 0x12345678") // L
	p("        li   r5, 0x9abcdef0") // R
	p("        clr  r20")
	p("blk:")
	for round := 0; round < 16; round++ {
		p("        ldq  r6, %d(r3)", 8*(round%18))
		p("        xor  r4, r6, r4")
		// F(L): S0[a] + S1[b] ^ S2[c] + S3[d]
		p("        srl  r4, 24, r7")
		p("        and  r7, 255, r7")
		p("        s8addq r7, r2, r8")
		p("        ldq  r9, 0(r8)") // S0[a]
		p("        srl  r4, 16, r7")
		p("        and  r7, 255, r7")
		p("        s8addq r7, r2, r8")
		p("        ldq  r10, 2048(r8)") // S1[b]
		p("        addq r9, r10, r9")
		p("        srl  r4, 8, r7")
		p("        and  r7, 255, r7")
		p("        s8addq r7, r2, r8")
		p("        ldq  r10, 4096(r8)") // S2[c]
		p("        xor  r9, r10, r9")
		p("        and  r4, 255, r7")
		p("        s8addq r7, r2, r8")
		p("        ldq  r10, 6144(r8)") // S3[d]
		p("        addq r9, r10, r9")
		p("        and  r9, 4294967295, r9")
		p("        xor  r5, r9, r5")
		// swap L/R
		p("        mov  r4, r11")
		p("        mov  r5, r4")
		p("        mov  r11, r5")
	}
	p("        addq r20, r4, r20")
	p("        xor  r20, r5, r20")
	p("        addq r4, 1, r4") // chain blocks
	p("        subl r1, 1, r1")
	p("        bne  r1, blk")
	p("        stq  r20, result(zero)")
	p("        halt")
	return build("blowfish", d.String(), t.String())
}

// buildSusan models SUSAN's corner/edge response: a brightness-difference
// LUT over a 3x3 neighbourhood with threshold accumulation.
func buildSusan(in Input) *isa.Program {
	r := rng("susan", in)
	w, h := 128, 96
	img := make([]byte, w*h)
	for i := range img {
		img[i] = byte(r.Intn(256))
	}
	lut := make([]byte, 512)
	for i := range lut {
		diff := i - 256
		if diff < 0 {
			diff = -diff
		}
		if diff < 27 {
			lut[i] = 1
		}
	}
	var d dataBuilder
	d.bytesArr("img", img)
	d.bytesArr("lut", lut)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   li   r1, %d          ; rows 1..h-2
        li   r25, %d         ; row stride
        lda  r2, img+%d(zero) ; start at row 1
        lda  r3, lut+256(zero)
        clr  r20
row:    li   r4, %d          ; cols 1..w-2
        mov  r2, r5
col:    ldbu r6, 0(r5)       ; centre
        clr  r7              ; usan
        ldbu r8, -1(r5)
        subq r8, r6, r9
        addq r3, r9, r10
        ldbu r11, 0(r10)
        addq r7, r11, r7
        ldbu r8, 1(r5)
        subq r8, r6, r9
        addq r3, r9, r10
        ldbu r11, 0(r10)
        addq r7, r11, r7
        ldbu r8, -%d(r5)
        subq r8, r6, r9
        addq r3, r9, r10
        ldbu r11, 0(r10)
        addq r7, r11, r7
        ldbu r8, %d(r5)
        subq r8, r6, r9
        addq r3, r9, r10
        ldbu r11, 0(r10)
        addq r7, r11, r7
        cmplt r7, 3, r12     ; corner response
        addq r20, r12, r20
        lda  r5, 1(r5)
        subl r4, 1, r4
        bne  r4, col
        addq r2, r25, r2
        subl r1, 1, r1
        bne  r1, row
        stq  r20, result(zero)
        halt
`, h-2, w, w+1, w-2, w, w)
	return build("susan", d.String(), text)
}

// buildRGBA models pixel-format conversion (the suite's *2rgba kernels):
// unpack RGB555 words, expand to 8-bit channels, repack as RGBA — extract/
// insert/shift idioms plus streaming loads and stores.
func buildRGBA(in Input) *isa.Program {
	r := rng("rgba", in)
	n := 20000
	pix := make([]int64, (n+3)/4)
	for i := range pix {
		pix[i] = int64(r.Uint64())
	}
	var d dataBuilder
	d.words("src", pix)
	d.space("dst", 4*n+16)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   li   r1, %d
        lda  r2, src(zero)
        lda  r3, dst(zero)
        clr  r20
loop:   ldwu r4, 0(r2)       ; rgb555 pixel
        lda  r2, 2(r2)
        and  r4, 31, r5      ; b5
        srl  r4, 5, r6
        and  r6, 31, r6      ; g5
        srl  r4, 10, r7
        and  r7, 31, r7      ; r5
        sll  r5, 3, r5       ; expand to 8 bits
        srl  r5, 2, r8
        bis  r5, r8, r5
        sll  r6, 3, r6
        srl  r6, 2, r8
        bis  r6, r8, r6
        sll  r7, 3, r7
        srl  r7, 2, r8
        bis  r7, r8, r7
        sll  r6, 8, r6
        sll  r5, 16, r5
        bis  r7, r6, r7
        bis  r7, r5, r7
        lda  r9, 0xff000000(zero)
        bis  r7, r9, r7      ; alpha
        stl  r7, 0(r3)
        lda  r3, 4(r3)
        addq r20, r7, r20
        subl r1, 1, r1
        bne  r1, loop
        stq  r20, result(zero)
        halt
`, n)
	return build("rgba", d.String(), text)
}
