package workload

import (
	"fmt"
	"math"
	"strings"

	"minigraph/internal/isa"
)

func init() {
	register("adpcm.enc", MediaBench, buildADPCMEnc)
	register("adpcm.dec", MediaBench, buildADPCMDec)
	register("g721.enc", MediaBench, buildG721)
	register("gsm.toast", MediaBench, buildGSM)
	register("jpeg.comp", MediaBench, buildJPEG)
	register("mpeg2.dec", MediaBench, buildMPEG2)
	register("mesa.geom", MediaBench, buildMesa)
}

var imaStepTable = []int64{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230,
	253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658, 724, 796, 876, 963,
	1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272, 2499, 2749, 3024, 3327,
	3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493, 10442,
	11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794,
	32767,
}

var imaIndexTable = []int64{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}

// sin is a crude approximation adequate for synthesising plausible audio
// input (accuracy is irrelevant; determinism is what matters).
func sin(x float64) float64 {
	const pi = 3.141592653589793
	for x > 2*pi {
		x -= 2 * pi
	}
	for x < 0 {
		x += 2 * pi
	}
	neg := false
	if x > pi {
		x -= pi
		neg = true
	}
	y := 16 * x * (pi - x) / (5*pi*pi - 4*x*(pi-x))
	if neg {
		return -y
	}
	return y
}

func sineSamples(name string, in Input, n int) []int32 {
	r := rng(name, in)
	out := make([]int32, n)
	phase, freq := 0.0, 0.03+0.02*r.Float64()
	for i := range out {
		v := 8000.0*sin(phase) + float64(r.Intn(800)-400)
		phase += freq
		if r.Intn(256) == 0 {
			freq = 0.01 + 0.05*r.Float64()
		}
		out[i] = int32(v)
	}
	return out
}

// buildADPCMEnc is the IMA ADPCM coder (MediaBench's adpcm rawcaudio):
// per-sample sign/magnitude quantisation against an adaptive step size —
// long serial chains of single-cycle integer operations, the paper's ideal
// mini-graph material.
func buildADPCMEnc(in Input) *isa.Program {
	n := 6000
	samples := sineSamples("adpcm.enc", in, n)
	var d dataBuilder
	d.longs("samples", samples)
	d.words("steptab", imaStepTable)
	d.words("idxtab", imaIndexTable)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   lda  r1, samples(zero)
        li   r2, %d
        clr  r3              ; valpred
        clr  r4              ; index
        clr  r20             ; checksum
        lda  r21, steptab(zero)
        lda  r22, idxtab(zero)
loop:   ldl  r6, 0(r1)
        lda  r1, 4(r1)
        s8addq r4, r21, r13
        ldq  r13, 0(r13)     ; step
        subq r6, r3, r8      ; diff
        sra  r8, 63, r9
        xor  r8, r9, r8
        subq r8, r9, r8      ; abs(diff)
        and  r9, 8, r10      ; sign nibble bit
        clr  r11             ; delta
        mov  r13, r12        ; working step
        cmple r12, r8, r14
        beq  r14, s1
        bis  r11, 4, r11
        subq r8, r12, r8
s1:     srl  r12, 1, r12
        cmple r12, r8, r14
        beq  r14, s2
        bis  r11, 2, r11
        subq r8, r12, r8
s2:     srl  r12, 1, r12
        cmple r12, r8, r14
        beq  r14, s3
        bis  r11, 1, r11
s3:     srl  r13, 3, r15     ; vpdiff = step>>3
        and  r11, 4, r16
        beq  r16, v1
        addq r15, r13, r15
v1:     and  r11, 2, r16
        beq  r16, v2
        srl  r13, 1, r16
        addq r15, r16, r15
v2:     and  r11, 1, r16
        beq  r16, v3
        srl  r13, 2, r16
        addq r15, r16, r15
v3:     beq  r10, vpos
        subq r3, r15, r3
        br   vclamp
vpos:   addq r3, r15, r3
vclamp: li   r16, 32767
        cmple r3, r16, r17
        bne  r17, c1
        mov  r16, r3
c1:     li   r16, -32768
        cmple r16, r3, r17
        bne  r17, c2
        mov  r16, r3
c2:     bis  r11, r10, r11   ; delta with sign
        s8addq r11, r22, r18
        ldq  r19, 0(r18)
        addq r4, r19, r4
        bge  r4, i1
        clr  r4
i1:     li   r16, 88
        cmple r4, r16, r17
        bne  r17, i2
        mov  r16, r4
i2:     sll  r20, 4, r23
        srl  r20, 60, r24
        bis  r23, r24, r20
        xor  r20, r11, r20   ; checksum rotate-xor
        subl r2, 1, r2
        bne  r2, loop
        stq  r20, result(zero)
        halt
`, n)
	return build("adpcm.enc", d.String(), text)
}

// buildADPCMDec is the matching IMA decoder over a synthetic delta stream.
func buildADPCMDec(in Input) *isa.Program {
	r := rng("adpcm.dec", in)
	n := 9000
	deltas := make([]byte, n)
	for i := range deltas {
		deltas[i] = byte(r.Intn(16))
	}
	var d dataBuilder
	d.bytesArr("deltas", deltas)
	d.words("steptab", imaStepTable)
	d.words("idxtab", imaIndexTable)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   lda  r1, deltas(zero)
        li   r2, %d
        clr  r3              ; valpred
        clr  r4              ; index
        clr  r20             ; checksum
        lda  r21, steptab(zero)
        lda  r22, idxtab(zero)
loop:   ldbu r11, 0(r1)
        lda  r1, 1(r1)
        s8addq r4, r21, r13
        ldq  r13, 0(r13)     ; step
        s8addq r11, r22, r18
        ldq  r19, 0(r18)
        addq r4, r19, r4     ; index += idxtab[delta]
        bge  r4, i1
        clr  r4
i1:     li   r16, 88
        cmple r4, r16, r17
        bne  r17, i2
        mov  r16, r4
i2:     srl  r13, 3, r15     ; vpdiff
        and  r11, 4, r16
        beq  r16, v1
        addq r15, r13, r15
v1:     and  r11, 2, r16
        beq  r16, v2
        srl  r13, 1, r16
        addq r15, r16, r15
v2:     and  r11, 1, r16
        beq  r16, v3
        srl  r13, 2, r16
        addq r15, r16, r15
v3:     and  r11, 8, r16
        beq  r16, vpos
        subq r3, r15, r3
        br   vclamp
vpos:   addq r3, r15, r3
vclamp: li   r16, 32767
        cmple r3, r16, r17
        bne  r17, c1
        mov  r16, r3
c1:     li   r16, -32768
        cmple r16, r3, r17
        bne  r17, c2
        mov  r16, r3
c2:     addq r20, r3, r20
        xor  r20, r4, r20
        subl r2, 1, r2
        bne  r2, loop
        stq  r20, result(zero)
        halt
`, n)
	return build("adpcm.dec", d.String(), text)
}

// buildG721 models G.721 ADPCM's adaptive predictor: a six-tap FIR realised
// with shift-add arithmetic (the standard uses floating-short multiplies;
// shift-add preserves the dataflow shape) plus a quantisation ladder.
func buildG721(in Input) *isa.Program {
	n := 5000
	samples := sineSamples("g721.enc", in, n+8)
	var d dataBuilder
	d.longs("samples", samples)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   lda  r1, samples+24(zero)
        li   r2, %d
        clr  r20             ; checksum
loop:   ldl  r4, 0(r1)       ; x[i]
        ldl  r5, -4(r1)      ; x[i-1]
        ldl  r6, -8(r1)
        ldl  r7, -12(r1)
        ldl  r8, -16(r1)
        ldl  r9, -20(r1)
        ; y = x1 + x1>>1 + x2>>1 - x3>>2 + x4>>3 - x5>>4 (shift-add FIR)
        sra  r5, 1, r10
        addq r5, r10, r10
        sra  r6, 1, r11
        addq r10, r11, r10
        sra  r7, 2, r11
        subq r10, r11, r10
        sra  r8, 3, r11
        addq r10, r11, r10
        sra  r9, 4, r11
        subq r10, r11, r10
        subq r4, r10, r12    ; prediction error
        sra  r12, 63, r13    ; abs
        xor  r12, r13, r12
        subq r12, r13, r12
        ; quantisation ladder (4 levels)
        clr  r14
        cmplt r12, 128, r15
        xor  r15, 1, r15
        addq r14, r15, r14
        cmplt r12, 512, r15
        xor  r15, 1, r15
        addq r14, r15, r14
        cmplt r12, 2048, r15
        xor  r15, 1, r15
        addq r14, r15, r14
        cmplt r12, 8192, r15
        xor  r15, 1, r15
        addq r14, r15, r14
        sll  r20, 3, r16
        srl  r20, 61, r17
        bis  r16, r17, r20
        xor  r20, r14, r20
        addq r20, r12, r20
        lda  r1, 4(r1)
        subl r2, 1, r2
        bne  r2, loop
        stq  r20, result(zero)
        halt
`, n)
	return build("g721.enc", d.String(), text)
}

// buildGSM models GSM full-rate's short-term analysis: offset compensation,
// preemphasis, and an unrolled lag-0..4 autocorrelation using real
// multiplies (exercising the pipelined integer multiplier).
func buildGSM(in Input) *isa.Program {
	n := 4000
	samples := sineSamples("gsm.toast", in, n+8)
	var d dataBuilder
	d.longs("samples", samples)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   lda  r1, samples+16(zero)
        li   r2, %d
        clr  r10             ; acf0
        clr  r11             ; acf1
        clr  r12             ; acf2
        clr  r13             ; acf3
        clr  r25             ; prev (preemphasis)
loop:   ldl  r4, 0(r1)
        ; preemphasis: s = x - (prev*7)/8
        sra  r25, 3, r5
        subq r25, r5, r5     ; prev*7/8 = prev - prev>>3
        subq r4, r5, r5
        mov  r4, r25
        ldl  r6, -4(r1)
        ldl  r7, -8(r1)
        ldl  r8, -12(r1)
        mull r5, r5, r9
        addq r10, r9, r10
        mull r5, r6, r9
        addq r11, r9, r11
        mull r5, r7, r9
        addq r12, r9, r12
        mull r5, r8, r9
        addq r13, r9, r13
        lda  r1, 4(r1)
        subl r2, 1, r2
        bne  r2, loop
        srl  r10, 8, r10
        xor  r10, r11, r10
        xor  r10, r12, r10
        addq r10, r13, r10
        stq  r10, result(zero)
        halt
`, n)
	return build("gsm.toast", d.String(), text)
}

// emit1DTransform generates the unrolled 8-point butterfly used by the JPEG
// kernel (a Walsh-Hadamard-style transform with the dataflow shape of the
// LLM DCT: adds, subtracts and shifts in wide, ILP-rich basic blocks).
// in/out live in regs[0..7].
func emit1DTransform(b *strings.Builder, regs [8]string, tmp [2]string) {
	p := func(s string, a ...interface{}) { fmt.Fprintf(b, s+"\n", a...) }
	// Stage 1: butterflies (x0,x7),(x1,x6),(x2,x5),(x3,x4).
	for i := 0; i < 4; i++ {
		a, z := regs[i], regs[7-i]
		p("        addq %s, %s, %s", a, z, tmp[0])
		p("        subq %s, %s, %s", a, z, tmp[1])
		p("        mov  %s, %s", tmp[0], a)
		p("        mov  %s, %s", tmp[1], z)
	}
	// Stage 2 on the low half; shifted combine on the high half.
	for i := 0; i < 2; i++ {
		a, z := regs[i], regs[3-i]
		p("        addq %s, %s, %s", a, z, tmp[0])
		p("        subq %s, %s, %s", a, z, tmp[1])
		p("        mov  %s, %s", tmp[0], a)
		p("        mov  %s, %s", tmp[1], z)
	}
	p("        sra  %s, 1, %s", regs[5], tmp[0])
	p("        addq %s, %s, %s", regs[4], tmp[0], regs[4])
	p("        sra  %s, 1, %s", regs[6], tmp[0])
	p("        subq %s, %s, %s", regs[7], tmp[0], regs[7])
	// Stage 3: final pair.
	p("        addq %s, %s, %s", regs[0], regs[1], tmp[0])
	p("        subq %s, %s, %s", regs[0], regs[1], tmp[1])
	p("        mov  %s, %s", tmp[0], regs[0])
	p("        mov  %s, %s", tmp[1], regs[1])
	p("        sra  %s, 1, %s", regs[3], tmp[0])
	p("        addq %s, %s, %s", regs[2], tmp[0], regs[2])
}

// buildJPEG models cjpeg's forward DCT + quantisation over 8x8 blocks:
// fully unrolled row and column transforms (very large basic blocks, high
// ILP) followed by table-driven shift quantisation.
func buildJPEG(in Input) *isa.Program {
	r := rng("jpeg.comp", in)
	blocks := 240
	pix := make([]int32, blocks*64)
	for i := range pix {
		pix[i] = int32(r.Intn(256) - 128)
	}
	qshift := make([]int64, 64)
	for i := range qshift {
		qshift[i] = int64(1 + (i/8+i%8)/3)
	}
	var d dataBuilder
	d.longs("pix", pix)
	d.words("qshift", qshift)
	d.space("result", 8)

	var t strings.Builder
	p := func(s string, a ...interface{}) { fmt.Fprintf(&t, s+"\n", a...) }
	regs := [8]string{"r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11"}
	tmp := [2]string{"r12", "r13"}
	p("main:   lda  r1, pix(zero)")
	p("        li   r2, %d", blocks)
	p("        clr  r20")
	p("        lda  r21, qshift(zero)")
	p("blk:")
	// Row pass: 8 rows, each loads 8 longs, transforms, stores back.
	for row := 0; row < 8; row++ {
		for c := 0; c < 8; c++ {
			p("        ldl  %s, %d(r1)", regs[c], 4*(row*8+c))
		}
		emit1DTransform(&t, regs, tmp)
		for c := 0; c < 8; c++ {
			p("        stl  %s, %d(r1)", regs[c], 4*(row*8+c))
		}
	}
	// Column pass + quantise + accumulate.
	for col := 0; col < 8; col++ {
		for rr := 0; rr < 8; rr++ {
			p("        ldl  %s, %d(r1)", regs[rr], 4*(rr*8+col))
		}
		emit1DTransform(&t, regs, tmp)
		for rr := 0; rr < 8; rr++ {
			p("        ldq  r14, %d(r21)", 8*(rr*8+col))
			p("        sra  %s, r14, %s", regs[rr], regs[rr])
			p("        addq r20, %s, r20", regs[rr])
		}
	}
	p("        lda  r1, 256(r1)")
	p("        subl r2, 1, r2")
	p("        bne  r2, blk")
	p("        stq  r20, result(zero)")
	p("        halt")
	return build("jpeg.comp", d.String(), t.String())
}

// buildMPEG2 models mpeg2decode's motion compensation: half-pel averaging
// of byte pixels with saturation and store-back — byte loads, adds, shifts,
// clips (classic integer-memory mini-graphs).
func buildMPEG2(in Input) *isa.Program {
	r := rng("mpeg2.dec", in)
	n := 48 * 1024
	ref := make([]byte, n+64)
	for i := range ref {
		ref[i] = byte(r.Intn(256))
	}
	var d dataBuilder
	d.bytesArr("ref", ref)
	d.space("dst", n)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   lda  r1, ref(zero)
        lda  r2, dst(zero)
        li   r3, %d
        clr  r20
loop:   ldbu r4, 0(r1)
        ldbu r5, 1(r1)
        addq r4, r5, r6
        addq r6, 1, r6
        srl  r6, 1, r6       ; half-pel average
        ldbu r7, 32(r1)
        addq r6, r7, r8
        srl  r8, 1, r8       ; temporal average
        li   r9, 255
        cmple r8, r9, r10    ; clip high
        bne  r10, ok
        mov  r9, r8
ok:     stb  r8, 0(r2)
        addq r20, r8, r20
        lda  r1, 1(r1)
        lda  r2, 1(r2)
        subl r3, 1, r3
        bne  r3, loop
        stq  r20, result(zero)
        halt
`, n)
	return build("mpeg2.dec", d.String(), text)
}

// buildMesa models mesa's vertex pipeline: 4x4 matrix transform of a vertex
// stream in floating point (exercising the FP units, which mini-graphs do
// not touch — mesa shows modest mini-graph coverage, as in the paper).
func buildMesa(in Input) *isa.Program {
	r := rng("mesa.geom", in)
	n := 3000
	verts := make([]int64, 3*n)
	for i := range verts {
		verts[i] = int64(math.Float64bits(float64(r.Intn(2000)-1000) / 16.0))
	}
	mat := make([]int64, 12)
	for i := range mat {
		mat[i] = int64(math.Float64bits(float64(r.Intn(200)-100) / 64.0))
	}
	var d dataBuilder
	d.words("verts", verts)
	d.words("mat", mat)
	d.space("outv", 8)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   lda  r1, verts(zero)
        li   r2, %d
        lda  r3, mat(zero)
        clr  r20
        ldt  f10, 0(r3)
        ldt  f11, 8(r3)
        ldt  f12, 16(r3)
        ldt  f13, 24(r3)
        ldt  f14, 32(r3)
        ldt  f15, 40(r3)
        ldt  f16, 48(r3)
        ldt  f17, 56(r3)
        ldt  f18, 64(r3)
loop:   ldt  f1, 0(r1)
        ldt  f2, 8(r1)
        ldt  f3, 16(r1)
        mult f1, f10, f4
        mult f2, f11, f5
        mult f3, f12, f6
        addt f4, f5, f4
        addt f4, f6, f4      ; x'
        mult f1, f13, f5
        mult f2, f14, f6
        mult f3, f15, f7
        addt f5, f6, f5
        addt f5, f7, f5      ; y'
        mult f1, f16, f6
        mult f2, f17, f7
        mult f3, f18, f8
        addt f6, f7, f6
        addt f6, f8, f6      ; z'
        addt f4, f5, f4
        addt f4, f6, f4
        cvttq f4, f4, f9
        stt  f9, outv(zero)
        ldq  r4, outv(zero)
        addq r20, r4, r20
        lda  r1, 24(r1)
        subl r2, 1, r2
        bne  r2, loop
        stq  r20, result(zero)
        halt
`, n)
	return build("mesa.geom", d.String(), text)
}
