package workload

import (
	"fmt"

	"minigraph/internal/isa"
)

func init() {
	register("reed.dec", CommBench, buildReedDec)
	register("reed.enc", CommBench, buildReedEnc)
	register("frag", CommBench, buildFrag)
	register("rtr", CommBench, buildRTR)
	register("drr", CommBench, buildDRR)
	register("tcpdump", CommBench, buildTCPDump)
}

// gf256Tables builds GF(256) log/antilog tables over the 0x11d polynomial.
func gf256Tables() (logT, alogT []byte) {
	logT = make([]byte, 256)
	alogT = make([]byte, 512)
	x := 1
	for i := 0; i < 255; i++ {
		alogT[i] = byte(x)
		logT[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		alogT[i] = alogT[i-255]
	}
	return logT, alogT
}

// buildReedDec models CommBench's Reed-Solomon decoder: syndrome
// computation over GF(256) with table-driven multiplies — byte loads, adds,
// modular folds and xors (dense integer-memory idioms).
func buildReedDec(in Input) *isa.Program {
	r := rng("reed.dec", in)
	logT, alogT := gf256Tables()
	nblk := 40
	blk := 255
	data := make([]byte, nblk*blk)
	for i := range data {
		data[i] = byte(r.Intn(256))
	}
	var d dataBuilder
	d.bytesArr("logt", logT)
	d.bytesArr("alogt", alogT)
	d.bytesArr("data", data)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   li   r1, %d          ; blocks
        lda  r2, data(zero)
        lda  r3, logt(zero)
        lda  r4, alogt(zero)
        clr  r20
blk:    li   r5, %d          ; bytes per block
        clr  r6              ; syndrome 1 (root^1)
        clr  r7              ; syndrome 2 (root^2)
        clr  r8              ; position
byte:   addq r2, r8, r9
        ldbu r10, 0(r9)
        beq  r10, skip
        addq r3, r10, r11
        ldbu r12, 0(r11)     ; log(b)
        addq r12, r8, r13    ; log(b) + pos
        cmplt r13, 255, r14  ; mod 255 fold
        bne  r14, m1
        lda  r13, -255(r13)
m1:     addq r4, r13, r14
        ldbu r15, 0(r14)     ; alog
        xor  r6, r15, r6
        addq r12, r8, r13
        addq r13, r8, r13    ; log(b) + 2*pos
        addq r4, r13, r14    ; alog table is doubled, no fold needed
        ldbu r15, 0(r14)
        xor  r7, r15, r7
skip:   addq r8, 1, r8
        subl r5, 1, r5
        bne  r5, byte
        sll  r6, 8, r6
        xor  r6, r7, r6
        addq r20, r6, r20
        lda  r2, %d(r2)
        subl r1, 1, r1
        bne  r1, blk
        stq  r20, result(zero)
        halt
`, nblk, blk, blk)
	return build("reed.dec", d.String(), text)
}

// buildReedEnc models the RS encoder: an LFSR over the parity registers
// with generator-coefficient multiplies via the log/alog tables.
func buildReedEnc(in Input) *isa.Program {
	r := rng("reed.enc", in)
	logT, alogT := gf256Tables()
	n := 20 * 1024
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(1 + r.Intn(255))
	}
	var d dataBuilder
	d.bytesArr("logt", logT)
	d.bytesArr("alogt", alogT)
	d.bytesArr("data", data)
	d.space("result", 8)
	// Two parity bytes with generator coefficients g0, g1 (log form).
	text := fmt.Sprintf(`
main:   li   r1, %d
        lda  r2, data(zero)
        lda  r3, logt(zero)
        lda  r4, alogt(zero)
        clr  r6              ; parity0
        clr  r7              ; parity1
        clr  r20
loop:   ldbu r8, 0(r2)
        lda  r2, 1(r2)
        xor  r8, r6, r9      ; feedback
        beq  r9, zfb
        addq r3, r9, r10
        ldbu r11, 0(r10)     ; log(feedback)
        addq r11, 25, r12    ; * g0 (log 25)
        addq r4, r12, r13
        ldbu r14, 0(r13)
        xor  r7, r14, r6     ; parity0 = parity1 ^ fb*g0
        addq r11, 120, r12   ; * g1 (log 120)
        addq r4, r12, r13
        ldbu r14, 0(r13)
        mov  r14, r7         ; parity1 = fb*g1
        br   acc
zfb:    mov  r7, r6
        clr  r7
acc:    addq r20, r6, r20
        subl r1, 1, r1
        bne  r1, loop
        sll  r6, 8, r6
        bis  r6, r7, r6
        xor  r20, r6, r20
        stq  r20, result(zero)
        halt
`, n)
	return build("reed.enc", d.String(), text)
}

// buildFrag models CommBench's frag: IP fragmentation with header checksum
// recomputation — 16-bit ones-complement sums and header field updates.
func buildFrag(in Input) *isa.Program {
	r := rng("frag", in)
	npkt := 600
	pktLen := 256 // bytes, 16-bit words
	pkts := make([]byte, npkt*pktLen)
	for i := range pkts {
		pkts[i] = byte(r.Intn(256))
	}
	var d dataBuilder
	d.bytesArr("pkts", pkts)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   li   r1, %d          ; packets
        lda  r2, pkts(zero)
        clr  r20
pkt:    li   r3, %d          ; 16-bit words per packet
        clr  r4              ; checksum accumulator
        mov  r2, r5
w:      ldwu r6, 0(r5)
        addq r4, r6, r4
        lda  r5, 2(r5)
        subl r3, 1, r3
        bne  r3, w
        ; fold carries twice: csum = (csum & ffff) + (csum >> 16)
        and  r4, 65535, r6
        srl  r4, 16, r7
        addq r6, r7, r4
        and  r4, 65535, r6
        srl  r4, 16, r7
        addq r6, r7, r4
        ornot zero, r4, r4
        and  r4, 65535, r4   ; final ones-complement checksum
        ; fragment: rewrite offset field (bytes 6..7) and store checksum
        ldwu r8, 6(r2)
        addq r8, 185, r8     ; new fragment offset
        and  r8, 65535, r8
        stw  r8, 6(r2)
        stw  r4, 10(r2)
        addq r20, r4, r20
        lda  r2, %d(r2)
        subl r1, 1, r1
        bne  r1, pkt
        stq  r20, result(zero)
        halt
`, npkt, pktLen/2, pktLen)
	return build("frag", d.String(), text)
}

// buildRTR models CommBench's rtr: radix-trie route lookups — bit tests and
// short pointer walks over a node table (small dependent-load chains).
func buildRTR(in Input) *isa.Program {
	r := rng("rtr", in)
	// Binary trie of depth <= 16 over 4096 nodes: {left, right, nexthop}.
	nnode := 4096
	nodes := make([]int64, 3*nnode)
	for i := 1; i < nnode; i++ {
		// Random children further down the array (0 = leaf/miss).
		if l := i*2 + r.Intn(3) - 1; l > i && l < nnode {
			nodes[3*i] = int64(l)
		}
		if rr := i*2 + 1 + r.Intn(3) - 1; rr > i && rr < nnode {
			nodes[3*i+1] = int64(rr)
		}
		nodes[3*i+2] = int64(r.Intn(16))
	}
	nodes[3] = 2 // root has children
	nodes[4] = 3
	naddr := 5000
	addrs := make([]int64, naddr)
	for i := range addrs {
		addrs[i] = int64(r.Uint32())
	}
	var d dataBuilder
	d.words("nodes", nodes)
	d.words("addrs", addrs)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   li   r1, %d
        lda  r2, addrs(zero)
        lda  r3, nodes(zero)
        clr  r20
addr:   ldq  r4, 0(r2)       ; address
        lda  r2, 8(r2)
        li   r5, 1           ; node = root
        li   r6, 31          ; bit position
        clr  r7              ; best next hop
walk:   sll  r5, 4, r8       ; node*24
        s8addq r5, r8, r8
        addq r3, r8, r8
        ldq  r9, 16(r8)      ; nexthop
        beq  r9, nohop
        mov  r9, r7
nohop:  srl  r4, r6, r10
        and  r10, 1, r10
        beq  r10, left
        ldq  r5, 8(r8)       ; right child
        br   step
left:   ldq  r5, 0(r8)       ; left child
step:   subl r6, 1, r6
        beq  r5, done        ; fell off the trie
        bge  r6, walk
done:   addq r20, r7, r20
        subl r1, 1, r1
        bne  r1, addr
        stq  r20, result(zero)
        halt
`, naddr)
	return build("rtr", d.String(), text)
}

// buildDRR models deficit-round-robin scheduling: per-queue quantum/deficit
// arithmetic, head-of-line packet sizes from a table, and service counters.
func buildDRR(in Input) *isa.Program {
	r := rng("drr", in)
	nq := 64
	queues := make([]int64, 3*nq) // {deficit, backlog, served}
	for i := 0; i < nq; i++ {
		queues[3*i+1] = int64(200 + r.Intn(4000))
	}
	sizes := make([]int64, 1024)
	for i := range sizes {
		sizes[i] = int64(64 + r.Intn(1400))
	}
	var d dataBuilder
	d.words("queues", queues)
	d.words("sizes", sizes)
	d.space("result", 8)
	rounds := 800
	text := fmt.Sprintf(`
main:   li   r1, %d          ; rounds
        lda  r2, queues(zero)
        lda  r3, sizes(zero)
        clr  r20             ; total served
        clr  r25             ; size cursor
round:  li   r4, %d          ; queues per round
        mov  r2, r5
q:      ldq  r6, 8(r5)       ; backlog
        beq  r6, nextq
        ldq  r7, 0(r5)       ; deficit
        lda  r7, 500(r7)     ; add quantum
serve:  and  r25, 1023, r8
        s8addq r8, r3, r9
        ldq  r10, 0(r9)      ; head packet size
        cmple r10, r7, r11
        beq  r11, stop
        cmple r10, r6, r11
        beq  r11, stop
        subq r7, r10, r7
        subq r6, r10, r6
        addq r25, 1, r25
        ldq  r12, 16(r5)
        addq r12, 1, r12
        stq  r12, 16(r5)
        addq r20, r10, r20
        bne  r6, serve
stop:   stq  r7, 0(r5)
        stq  r6, 8(r5)
nextq:  lda  r5, 24(r5)
        subl r4, 1, r4
        bne  r4, q
        ; refill a queue chosen by the round counter
        and  r1, %d, r13
        sll  r13, 4, r14
        s8addq r13, r14, r14
        addq r2, r14, r14
        ldq  r15, 8(r14)
        lda  r15, 900(r15)
        stq  r15, 8(r14)
        subl r1, 1, r1
        bne  r1, round
        stq  r20, result(zero)
        halt
`, rounds, nq, nq-1)
	return build("drr", d.String(), text)
}

// buildTCPDump models packet filtering: parse synthetic IP/TCP headers and
// count matches of a small filter expression — field loads and compare
// chains (branchy, small blocks).
func buildTCPDump(in Input) *isa.Program {
	r := rng("tcpdump", in)
	npkt := 4000
	hdrLen := 40
	pkts := make([]byte, npkt*hdrLen)
	for i := 0; i < npkt; i++ {
		h := pkts[i*hdrLen:]
		h[0] = 0x45
		h[9] = []byte{6, 6, 17, 1, 6, 17}[r.Intn(6)] // proto
		port := []int{80, 443, 22, 53, 8080, 1024 + r.Intn(60000)}[r.Intn(6)]
		h[22] = byte(port >> 8) // dst port hi
		h[23] = byte(port)      // dst port lo
		h[12] = byte(r.Intn(256))
	}
	var d dataBuilder
	d.bytesArr("pkts", pkts)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   li   r1, %d
        lda  r2, pkts(zero)
        clr  r4              ; tcp80
        clr  r5              ; tcp443
        clr  r6              ; udp
        clr  r7              ; other
pkt:    ldbu r8, 9(r2)       ; protocol
        cmpeq r8, 6, r9
        beq  r9, notTCP
        ldbu r10, 22(r2)
        ldbu r11, 23(r2)
        sll  r10, 8, r10
        bis  r10, r11, r10   ; dst port
        cmpeq r10, 80, r12
        beq  r12, not80
        addq r4, 1, r4
        br   nxt
not80:  cmpeq r10, 443, r12
        beq  r12, not443
        addq r5, 1, r5
        br   nxt
not443: addq r7, 1, r7
        br   nxt
notTCP: cmpeq r8, 17, r9
        beq  r9, notUDP
        addq r6, 1, r6
        br   nxt
notUDP: addq r7, 1, r7
nxt:    lda  r2, %d(r2)
        subl r1, 1, r1
        bne  r1, pkt
        sll  r4, 48, r4
        sll  r5, 32, r5
        sll  r6, 16, r6
        bis  r4, r5, r4
        bis  r4, r6, r4
        bis  r4, r7, r4
        stq  r4, result(zero)
        halt
`, npkt, hdrLen)
	return build("tcpdump", d.String(), text)
}
