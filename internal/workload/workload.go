// Package workload provides the benchmark kernels used by the evaluation.
//
// The paper evaluates Alpha binaries of SPECint2000, MediaBench, CommBench
// and MiBench. Those binaries (and the suites' inputs) are not available,
// so this package substitutes hand-written kernels in the repository's ISA
// that implement the real algorithms the suites are built from, organised
// into the same four suites and sized/shaped to reproduce each suite's
// character:
//
//   - SPECint-like: branchy, pointer-heavy, larger static footprints, low
//     baseline IPC (mcf's pointer chasing, gcc's dispatch, gzip's LZ
//     matching, crafty's bitboards, twolf's annealing, parser's scanning);
//   - MediaBench-like: dense straight-line integer arithmetic in long basic
//     blocks (ADPCM, G.721-style filters, GSM-style LPC, DCT+quantise,
//     IDCT+motion compensation, FP geometry for mesa);
//   - CommBench-like: packet-rate processing (Reed-Solomon GF(256),
//     checksum/fragmentation, radix-tree routing, DRR scheduling, packet
//     filtering);
//   - MiBench-like: small embedded kernels (bitcount, SHA-style mixing,
//     CRC-32, Dijkstra, string search, Blowfish-style Feistel rounds, Susan-
//     style thresholding, pixel format conversion).
//
// Every kernel is deterministic, runs to completion (halt) in a bounded
// number of instructions, and stores a result checksum at the data label
// "result" so functional correctness is checkable.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"minigraph/internal/asm"
	"minigraph/internal/isa"
)

// Input selects a benchmark's input data set. The robustness experiment
// (§6.1) profiles on Train and evaluates on Test.
type Input int

// Input sets.
const (
	InputTrain Input = iota
	InputTest
)

func (in Input) String() string {
	if in == InputTrain {
		return "train"
	}
	return "test"
}

// Benchmark is one kernel.
type Benchmark struct {
	Name  string
	Suite string
	// Build assembles the program for the given input set.
	Build func(in Input) *isa.Program
}

// Suite names.
const (
	SPECint    = "SPECint"
	MediaBench = "MediaBench"
	CommBench  = "CommBench"
	MiBench    = "MiBench"
)

var (
	registryMu sync.RWMutex
	registry   []*Benchmark
)

func register(name, suite string, build func(in Input) *isa.Program) {
	registry = append(registry, &Benchmark{Name: name, Suite: suite, Build: build})
}

// Register adds a benchmark at runtime — the built-in kernels register at
// package init, but generated workloads (internal/progen's seeded random
// programs) arrive while the process is already simulating, so this entry
// point is synchronized. Registering a name that already exists is an
// error: a name is a cache identity (sim.PrepareKey embeds it), so two
// different programs must never share one.
func Register(b *Benchmark) error {
	if b == nil || b.Name == "" || b.Build == nil {
		return fmt.Errorf("workload: invalid registration")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	for _, have := range registry {
		if have.Name == b.Name {
			return fmt.Errorf("workload: benchmark %q already registered", b.Name)
		}
	}
	registry = append(registry, b)
	return nil
}

// All returns every benchmark, ordered by suite then name. Suites outside
// the canonical four (runtime-registered workloads) sort last, so the
// paper's experiment enumerations are undisturbed by generated programs.
func All() []*Benchmark {
	registryMu.RLock()
	out := append([]*Benchmark(nil), registry...)
	registryMu.RUnlock()
	order := map[string]int{SPECint: 0, MediaBench: 1, CommBench: 2, MiBench: 3}
	rank := func(suite string) int {
		if r, ok := order[suite]; ok {
			return r
		}
		return len(order)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if rank(out[i].Suite) != rank(out[j].Suite) {
			return rank(out[i].Suite) < rank(out[j].Suite)
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// BySuite returns the benchmarks of one suite.
func BySuite(suite string) []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if b.Suite == suite {
			out = append(out, b)
		}
	}
	return out
}

// ByName finds a benchmark.
func ByName(name string) (*Benchmark, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	for _, b := range registry {
		if b.Name == name {
			return b, true
		}
	}
	return nil, false
}

// Suites lists the suite names in canonical order.
func Suites() []string { return []string{SPECint, MediaBench, CommBench, MiBench} }

// BenchSubset returns one representative benchmark per suite. The pipeline
// benchmarks, the golden fixtures and cmd/mgprof all measure this subset,
// so their numbers stay comparable with each other and across commits.
func BenchSubset() []string { return []string{"gzip", "adpcm.enc", "reed.dec", "sha"} }

// Names returns every registered benchmark name in All() order, for
// "unknown benchmark" error messages and discovery.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	return names
}

// ---- assembly generation helpers ----

// dataBuilder accumulates a .data section.
type dataBuilder struct {
	b strings.Builder
}

func (d *dataBuilder) words(label string, vals []int64) {
	fmt.Fprintf(&d.b, "%s:\n", label)
	for i := 0; i < len(vals); i += 8 {
		end := i + 8
		if end > len(vals) {
			end = len(vals)
		}
		parts := make([]string, 0, 8)
		for _, v := range vals[i:end] {
			parts = append(parts, fmt.Sprintf("%d", v))
		}
		fmt.Fprintf(&d.b, "  .word %s\n", strings.Join(parts, ", "))
	}
}

func (d *dataBuilder) longs(label string, vals []int32) {
	fmt.Fprintf(&d.b, "%s:\n", label)
	for i := 0; i < len(vals); i += 8 {
		end := i + 8
		if end > len(vals) {
			end = len(vals)
		}
		parts := make([]string, 0, 8)
		for _, v := range vals[i:end] {
			parts = append(parts, fmt.Sprintf("%d", v))
		}
		fmt.Fprintf(&d.b, "  .long %s\n", strings.Join(parts, ", "))
	}
}

func (d *dataBuilder) bytesArr(label string, vals []byte) {
	fmt.Fprintf(&d.b, "%s:\n", label)
	for i := 0; i < len(vals); i += 16 {
		end := i + 16
		if end > len(vals) {
			end = len(vals)
		}
		parts := make([]string, 0, 16)
		for _, v := range vals[i:end] {
			parts = append(parts, fmt.Sprintf("%d", v))
		}
		fmt.Fprintf(&d.b, "  .byte %s\n", strings.Join(parts, ", "))
	}
}

func (d *dataBuilder) space(label string, n int) {
	fmt.Fprintf(&d.b, "%s: .space %d\n", label, n)
}

func (d *dataBuilder) String() string { return d.b.String() }

// rng returns a deterministic source whose stream differs per input set.
func rng(name string, in Input) *rand.Rand {
	seed := int64(1)
	for _, c := range name {
		seed = seed*131 + int64(c)
	}
	if in == InputTest {
		seed = seed*2654435761 + 17
	}
	return rand.New(rand.NewSource(seed))
}

// build assembles a kernel from a data section and a text section.
func build(name string, data, text string) *isa.Program {
	src := "        .data\n" + data + "        .text\n" + text
	return asm.MustAssemble(name, src)
}
