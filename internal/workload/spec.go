package workload

import (
	"fmt"

	"minigraph/internal/isa"
)

func init() {
	register("mcf", SPECint, buildMCF)
	register("gcc", SPECint, buildGCC)
	register("crafty", SPECint, buildCrafty)
	register("gzip", SPECint, buildGzip)
	register("twolf", SPECint, buildTwolf)
	register("parser", SPECint, buildParser)
}

// buildMCF models mcf's network-simplex pointer chasing: a random cycle over
// a node array far larger than the L2 cache, touched via data-dependent
// loads. Memory-bound, baseline IPC well under 1.
func buildMCF(in Input) *isa.Program {
	r := rng("mcf", in)
	n := 96 * 1024 // 96K nodes x 24B = 2.25MB > 2MB L2
	if in == InputTest {
		n = 80 * 1024
	}
	perm := r.Perm(n)
	// nodes[i] = {next, cost, potential}
	nodes := make([]int64, 3*n)
	for i := 0; i < n; i++ {
		nodes[3*i] = int64(perm[i])
		nodes[3*i+1] = int64(r.Intn(1000))
		nodes[3*i+2] = int64(r.Intn(500))
	}
	var d dataBuilder
	d.words("nodes", nodes)
	d.space("result", 8)
	steps := 26000
	text := fmt.Sprintf(`
main:   li   r1, 0            ; node index
        lda  r2, nodes(zero)
        clr  r3
        li   r4, %d
loop:   sll  r1, 4, r5
        s8addq r1, r5, r5     ; r5 = 24*node
        addq r2, r5, r5
        ldq  r1, 0(r5)        ; next (dependent load: the chase)
        ldq  r6, 8(r5)        ; cost
        addq r3, r6, r3
        ldq  r7, 16(r5)       ; potential
        subq r3, r7, r8
        stq  r8, 16(r5)       ; update potential
        subl r4, 1, r4
        bne  r4, loop
        stq  r3, result(zero)
        halt
`, steps)
	return build("mcf", d.String(), text)
}

// buildGCC models gcc's front-end character: a token-dispatch interpreter
// with an indirect jump table, symbol hashing, and counter updates — many
// small basic blocks and hard-to-predict indirect control.
func buildGCC(in Input) *isa.Program {
	r := rng("gcc", in)
	ntok := 16 * 1024
	toks := make([]byte, ntok)
	for i := range toks {
		toks[i] = byte(r.Intn(8))
	}
	var d dataBuilder
	d.bytesArr("tokens", toks)
	d.space("jmptab", 8*8)
	d.space("counts", 8*8)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   lda  r1, jmptab(zero)
        li   r2, h0
        stq  r2, 0(r1)
        li   r2, h1
        stq  r2, 8(r1)
        li   r2, h2
        stq  r2, 16(r1)
        li   r2, h3
        stq  r2, 24(r1)
        li   r2, h4
        stq  r2, 32(r1)
        li   r2, h5
        stq  r2, 40(r1)
        li   r2, h6
        stq  r2, 48(r1)
        li   r2, h7
        stq  r2, 56(r1)
        li   r3, %d          ; token count
        lda  r4, tokens(zero)
        clr  r5              ; hash
        clr  r6              ; checksum
loop:   ldbu r7, 0(r4)
        lda  r4, 1(r4)
        s8addq r7, r1, r8
        ldq  r9, 0(r8)
        jmp  (r9)
h0:     sll  r5, 5, r10      ; hash step
        subq r10, r5, r5
        addq r5, 1, r5
        br   next
h1:     addq r6, 3, r6
        br   next
h2:     xor  r6, r5, r6
        br   next
h3:     sll  r6, 1, r6
        addq r6, 7, r6
        br   next
h4:     srl  r5, 3, r10
        xor  r5, r10, r5
        br   next
h5:     addq r5, r6, r6
        br   next
h6:     and  r6, 65535, r11
        lda  r12, counts(zero)
        and  r7, 7, r13
        s8addq r13, r12, r13
        ldq  r14, 0(r13)
        addq r14, 1, r14
        stq  r14, 0(r13)
        addq r6, r11, r6
        br   next
h7:     subq r6, 1, r6
next:   subl r3, 1, r3
        bne  r3, loop
        addq r5, r6, r5
        stq  r5, result(zero)
        halt
`, ntok)
	return build("gcc", d.String(), text)
}

// buildCrafty models crafty's bitboard manipulation: 64-bit logic, shifted
// attack masks, population counts and bit scans over a board table.
func buildCrafty(in Input) *isa.Program {
	r := rng("crafty", in)
	n := 2048
	boards := make([]int64, n)
	for i := range boards {
		boards[i] = int64(r.Uint64())
	}
	var d dataBuilder
	d.words("boards", boards)
	d.space("result", 8)
	iters := 9000
	text := fmt.Sprintf(`
main:   li   r1, %d
        clr  r2              ; score
        clr  r3              ; index
        lda  r4, boards(zero)
loop:   and  r3, %d, r5
        s8addq r5, r4, r5
        ldq  r6, 0(r5)       ; board
        bsr  ra, attacks     ; r7 = attack set of r6
        bsr  ra, popcnt      ; r11 = popcount contribution
        addq r2, r11, r2
        cttz r6, r6, r13     ; first set bit
        addq r2, r13, r2
        and  r2, 1, r14
        beq  r14, even
        xor  r2, r7, r2
even:   addq r3, 1, r3
        subl r1, 1, r1
        bne  r1, loop
        stq  r2, result(zero)
        halt
attacks: sll r6, 8, r7       ; north attacks
        srl  r6, 8, r8       ; south attacks
        bis  r7, r8, r7
        sll  r6, 1, r9
        srl  r6, 1, r10
        bis  r9, r10, r9
        and  r7, r9, r7      ; combined
        ret
popcnt: ctpop r6, r6, r11
        ctpop r7, r7, r12
        addq r11, r12, r11
        ret
`, iters, n-1)
	return build("crafty", d.String(), text)
}

// buildGzip models deflate's match finder: rolling hash over a buffer with
// planted repeats, hash-head chains, and byte-by-byte match extension.
func buildGzip(in Input) *isa.Program {
	r := rng("gzip", in)
	n := 17 * 1024
	buf := make([]byte, n)
	// Text with repeats: random phrases copied around.
	for i := 0; i < n; {
		if r.Intn(4) == 0 && i > 256 {
			src := r.Intn(i - 64)
			l := 8 + r.Intn(56)
			for j := 0; j < l && i < n; j++ {
				buf[i] = buf[src+j]
				i++
			}
		} else {
			buf[i] = byte('a' + r.Intn(26))
			i++
		}
	}
	var d dataBuilder
	d.bytesArr("buf", buf)
	d.space("head", 8*4096)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   li   r1, 2           ; pos
        li   r2, %d          ; limit
        lda  r3, buf(zero)
        lda  r4, head(zero)
        clr  r5              ; matched bytes
        clr  r6              ; hash
loop:   addq r3, r1, r7
        ldbu r8, 0(r7)
        sll  r6, 5, r6
        xor  r6, r8, r6
        and  r6, 4095, r6
        s8addq r6, r4, r9
        ldq  r10, 0(r9)      ; candidate pos
        stq  r1, 0(r9)       ; head[h] = pos
        beq  r10, nomatch
        subq r1, r10, r11
        cmplt r11, 16384, r12
        beq  r12, nomatch
        addq r3, r10, r13
        bsr  ra, extend      ; r14 = match length
        addq r5, r14, r5
nomatch: addq r1, 1, r1
        cmplt r1, r2, r18
        bne  r18, loop
        stq  r5, result(zero)
        halt
extend: clr  r14             ; extend match up to 8 bytes
ext:    ldbu r15, 0(r7)
        ldbu r16, 0(r13)
        xor  r15, r16, r17
        bne  r17, extdone
        addq r14, 1, r14
        lda  r7, 1(r7)
        lda  r13, 1(r13)
        cmplt r14, 8, r17
        bne  r17, ext
extdone: ret
`, n-16)
	return build("gzip", d.String(), text)
}

// buildTwolf models timberwolf's annealing inner loop: random cell pairs,
// absolute-difference wirelength deltas, conditional swaps.
func buildTwolf(in Input) *isa.Program {
	r := rng("twolf", in)
	n := 4096
	cells := make([]int64, 2*n)
	for i := range cells {
		cells[i] = int64(r.Intn(1024))
	}
	var d dataBuilder
	d.words("cells", cells)
	d.space("result", 8)
	iters := 12000
	text := fmt.Sprintf(`
main:   li   r1, %d
        li   r2, 12345       ; lcg state
        lda  r3, cells(zero)
        clr  r4              ; accepted
        clr  r5              ; cost
loop:   mull r2, 69069, r2
        addl r2, 12345, r2
        srl  r2, 8, r6
        and  r6, %d, r6      ; cell a
        srl  r2, 20, r7
        and  r7, %d, r7      ; cell b
        sll  r6, 4, r8
        addq r3, r8, r8
        sll  r7, 4, r9
        addq r3, r9, r9
        bsr  ra, cost        ; r12 = |ax-bx| + |ay-by|
        and  r2, 127, r18
        cmplt r12, r18, r19
        beq  r19, reject
        stq  r11, 0(r8)      ; swap x
        stq  r10, 0(r9)
        addq r4, 1, r4
reject: addq r5, r12, r5
        subl r1, 1, r1
        bne  r1, loop
        addq r5, r4, r5
        stq  r5, result(zero)
        halt
cost:   ldq  r10, 0(r8)      ; ax
        ldq  r11, 0(r9)      ; bx
        subq r10, r11, r12
        sra  r12, 63, r13    ; abs idiom
        xor  r12, r13, r12
        subq r12, r13, r12
        ldq  r14, 8(r8)      ; ay
        ldq  r15, 8(r9)      ; by
        subq r14, r15, r16
        sra  r16, 63, r17
        xor  r16, r17, r16
        subq r16, r17, r16
        addq r12, r16, r12   ; delta
        ret
`, iters, n-1, n-1)
	return build("twolf", d.String(), text)
}

// buildParser models the link-grammar front end: byte scanning with a
// character-class table and per-class token accounting.
func buildParser(in Input) *isa.Program {
	r := rng("parser", in)
	n := 24 * 1024
	txt := make([]byte, n)
	words := []string{"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dogs", "12", "405", "linking", "grammar"}
	for i := 0; i < n; {
		w := words[r.Intn(len(words))]
		for j := 0; j < len(w) && i < n; j++ {
			txt[i] = w[j]
			i++
		}
		if i < n {
			seps := " .,;\n"
			txt[i] = seps[r.Intn(len(seps))]
			i++
		}
	}
	class := make([]byte, 256)
	for c := 'a'; c <= 'z'; c++ {
		class[c] = 1
	}
	for c := '0'; c <= '9'; c++ {
		class[c] = 2
	}
	class[' '], class['\n'] = 3, 3
	var d dataBuilder
	d.bytesArr("text", txt)
	d.bytesArr("class", class)
	d.space("result", 8)
	text := fmt.Sprintf(`
main:   li   r1, %d
        lda  r2, text(zero)
        lda  r3, class(zero)
        clr  r4              ; words
        clr  r5              ; numbers
        clr  r6              ; inword
        clr  r10             ; checksum
loop:   ldbu r7, 0(r2)
        lda  r2, 1(r2)
        addq r3, r7, r8
        ldbu r9, 0(r8)       ; class
        addq r10, r7, r10
        cmpeq r9, 1, r11
        beq  r11, notalpha
        bne  r6, cont        ; already in word
        addq r4, 1, r4       ; word start
        li   r6, 1
        br   cont
notalpha: cmpeq r9, 2, r12
        beq  r12, notdigit
        addq r5, 1, r5
notdigit: clr r6
cont:   subl r1, 1, r1
        bne  r1, loop
        sll  r4, 16, r4
        addq r4, r5, r4
        xor  r4, r10, r4
        stq  r4, result(zero)
        halt
`, n)
	return build("parser", d.String(), text)
}
