package core

import (
	"minigraph/internal/isa"
	"minigraph/internal/program"
)

// blockInfo caches the per-basic-block dataflow facts that candidate
// legality checking needs: intra-block reaching definitions, def-use chains,
// last definitions, and the block's live-out set.
type blockInfo struct {
	g     *program.CFG
	b     *program.Block
	insts []*isa.Inst // block-relative index -> instruction

	// srcs[i] are the source registers of instruction i; defOf[i][k] is the
	// block-relative index of the instruction whose definition reaches
	// source k of instruction i, or -1 when the value is live-in.
	srcs  [][]isa.Reg
	defOf [][]int

	// uses[i] lists the block-relative indices of instructions whose source
	// values are produced by instruction i.
	uses [][]int

	// lastDef[r] is the block-relative index of the last write to r, or -1.
	lastDef [isa.NumRegs]int

	liveOut program.RegSet

	// memOps lists block-relative indices of loads and stores.
	memOps []int

	// eligible[i] reports whether instruction i may join a mini-graph at
	// all (opcode class and branch terminality).
	eligible []bool

	// adj is the undirected dataflow adjacency (over eligible instructions)
	// used by the connected-subgraph enumerator.
	adj [][]int
}

func analyzeBlock(g *program.CFG, lv *program.Liveness, b *program.Block) *blockInfo {
	n := b.Len()
	bi := &blockInfo{
		g:        g,
		b:        b,
		insts:    make([]*isa.Inst, n),
		srcs:     make([][]isa.Reg, n),
		defOf:    make([][]int, n),
		uses:     make([][]int, n),
		eligible: make([]bool, n),
		adj:      make([][]int, n),
		liveOut:  lv.LiveOut[b.Index],
	}
	for r := range bi.lastDef {
		bi.lastDef[r] = -1
	}
	var cur [isa.NumRegs]int
	for r := range cur {
		cur[r] = -1
	}
	for i := 0; i < n; i++ {
		in := g.Prog.At(b.Start + isa.PC(i))
		bi.insts[i] = in
		srcs := in.Srcs()
		bi.srcs[i] = srcs
		defs := make([]int, len(srcs))
		for k, r := range srcs {
			if r.IsZero() {
				defs[k] = -1
				continue
			}
			d := cur[r]
			defs[k] = d
			if d >= 0 {
				bi.uses[d] = append(bi.uses[d], i)
			}
		}
		bi.defOf[i] = defs
		if d := in.Dest(); d != isa.RNone {
			cur[d] = i
			bi.lastDef[d] = i
		}
		if in.IsMem() {
			bi.memOps = append(bi.memOps, i)
		}
		// Text-reference immediates (code addresses materialised into
		// registers) may not enter templates: MGST immediates are shared
		// across instances and cannot be relocated when a layout-changing
		// rewrite (compression, DISE expansion) moves the text.
		bi.eligible[i] = in.Op.MiniGraphEligible() && !in.TextRef
		// A control transfer is only eligible when terminal; it always sits
		// at the block end by construction, but linking branches (bsr) were
		// already excluded by MiniGraphEligible.
	}
	// Undirected dataflow adjacency between eligible instructions.
	for i := 0; i < n; i++ {
		if !bi.eligible[i] {
			continue
		}
		for k := range bi.defOf[i] {
			d := bi.defOf[i][k]
			if d >= 0 && bi.eligible[d] {
				bi.adj[i] = append(bi.adj[i], d)
				bi.adj[d] = append(bi.adj[d], i)
			}
		}
	}
	return bi
}

// defIsLiveOutside reports whether instruction i's definition escapes the
// block (it is the final write to its register and the register is live at
// block exit).
func (bi *blockInfo) defIsLiveOutside(i int) bool {
	d := bi.insts[i].Dest()
	if d == isa.RNone {
		return false
	}
	return bi.lastDef[d] == i && bi.liveOut.Has(d)
}
