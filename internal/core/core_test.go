package core_test

import (
	"strings"
	"testing"

	"minigraph/internal/asm"
	"minigraph/internal/core"
	"minigraph/internal/emu"
	"minigraph/internal/isa"
	"minigraph/internal/program"
)

// figure1Left reproduces the left-hand gcc snippet of Figure 1: the shaded
// instructions {addl, cmplt, bne} form a mini-graph with handle
// mg r18,r5,r18 and the MGT row "addl E0,2 ; cmplt M0,E1 ; bne M1,<disp>",
// OUT=0.
const figure1Left = `
        .data
out:    .space 8
        .text
main:   li   r16, 20
        li   r5, 6
        li   r0, 3
outer:  li   r18, 0
        li   r7, 1
        li   r6, 0
body:   addl r18, 2, r18
        lda  r6, 2(r6)
        s8addl r7, r0, r7
        cmplt r18, r5, r7
        bne  r7, skip
        addq r6, r6, r9
skip:   stq  r18, out(zero)
        clr  r7
        clr  r6
        clr  r9
        subl r16, 1, r16
        bne  r16, outer
        halt
`

func analyze(t *testing.T, src string, limit int64) (*isa.Program, *program.CFG, *program.Liveness, *program.Profile) {
	t.Helper()
	p := asm.MustAssemble("t", src)
	g := program.BuildCFG(p, nil)
	lv := program.ComputeLiveness(g)
	prof, err := emu.ProfileProgram(p, nil, limit)
	if err != nil {
		t.Fatal(err)
	}
	return p, g, lv, prof
}

func TestFigure1LeftExtraction(t *testing.T) {
	p, g, lv, prof := analyze(t, figure1Left, 100000)
	sel := core.Extract(g, lv, prof, core.DefaultPolicy(), 512)
	if len(sel.Instances) == 0 {
		t.Fatal("no mini-graphs selected")
	}
	// Find the instance anchored at the body's bne.
	body := p.Symbols["body"]
	var inst *core.Instance
	for _, s := range sel.Instances {
		if s.Instance.Anchor == body+4 {
			inst = s.Instance
		}
	}
	if inst == nil {
		t.Fatalf("no instance anchored at the branch; got %+v", sel.Instances)
	}
	if inst.Size() != 3 {
		t.Fatalf("size %d want 3 (addl,cmplt,bne)", inst.Size())
	}
	wantMembers := []isa.PC{body, body + 3, body + 4}
	for i, pc := range inst.Members {
		if pc != wantMembers[i] {
			t.Errorf("member %d = %d want %d", i, pc, wantMembers[i])
		}
	}
	// Handle interface: mg r18, r5, r18.
	if inst.NumIn != 2 || inst.Srcs[0] != isa.IntReg(18) || inst.Srcs[1] != isa.IntReg(5) {
		t.Errorf("inputs %v (n=%d), want r18,r5", inst.Srcs, inst.NumIn)
	}
	if inst.Dest != isa.IntReg(18) {
		t.Errorf("dest %v want r18", inst.Dest)
	}
	// Template shape: addl E0,2 ; cmplt M0,E1 ; bne M1 — OUT=0.
	tm := inst.Tmpl
	if tm.OutIdx != 0 || tm.BranchIdx != 2 || tm.MemIdx != -1 {
		t.Errorf("template meta: out=%d br=%d mem=%d", tm.OutIdx, tm.BranchIdx, tm.MemIdx)
	}
	if tm.Insns[0].Op != isa.OpAddl || tm.Insns[0].A.Kind != core.OpndExt || tm.Insns[0].A.Idx != 0 ||
		tm.Insns[0].B.Kind != core.OpndImm || tm.Insns[0].Imm != 2 {
		t.Errorf("insn0: %v", tm.Insns[0])
	}
	if tm.Insns[1].Op != isa.OpCmplt || tm.Insns[1].A.Kind != core.OpndInt || tm.Insns[1].A.Idx != 0 ||
		tm.Insns[1].B.Kind != core.OpndExt || tm.Insns[1].B.Idx != 1 {
		t.Errorf("insn1: %v", tm.Insns[1])
	}
	if tm.Insns[2].Op != isa.OpBne || tm.Insns[2].A.Kind != core.OpndInt || tm.Insns[2].A.Idx != 1 {
		t.Errorf("insn2: %v", tm.Insns[2])
	}
	// Branch displacement: from the anchor to 'skip' (2 instructions ahead).
	if tm.Insns[2].Imm != 2 {
		t.Errorf("branch disp %d want 2", tm.Insns[2].Imm)
	}
	if err := tm.Validate(); err != nil {
		t.Error(err)
	}
	// MGHT metadata (Figure 2, row 12): LAT=1, FU0=AP, integer graph.
	ei := tm.Schedule(core.DefaultExecParams())
	if ei.Lat != 1 || ei.FU0 != core.FUAP || !ei.Integer || ei.TotalLat != 3 {
		t.Errorf("MGHT: lat=%d fu0=%v int=%v total=%d", ei.Lat, ei.FU0, ei.Integer, ei.TotalLat)
	}
	if tm.ExtSerial() != true {
		t.Error("mini-graph 12 is externally serial (E1 feeds insn 1)")
	}
	if !tm.SerialChain() {
		t.Error("mini-graph 12 is a serial chain")
	}
}

// figure1Right reproduces the right-hand snippet: {ldq, srl, and} collapse
// around the load with the bis in between left alone; the MGT row is
// "ldq 16(E0) ; srl M0,14 ; and M1,1", OUT=2 (Figure 2, row 34).
const figure1Right = `
        .data
src:    .word 81920
buf:    .space 32
        .text
main:   li   r19, 10
        lda  r4, src-16(zero)
loop:   li   r18, 7
        ldq  r2, 16(r4)
        srl  r2, 14, r17
        bis  zero, r18, r16
        and  r17, 1, r17
        subl r19, 1, r19
        bne  r19, use
        br   use
use:    stq  r17, buf(zero)
        stq  r16, buf+8(zero)
        bne  r19, loop
        halt
`

func TestFigure1RightExtraction(t *testing.T) {
	p, g, lv, prof := analyze(t, figure1Right, 100000)
	sel := core.Extract(g, lv, prof, core.DefaultPolicy(), 512)
	loop := p.Symbols["loop"]
	ldqPC := loop + 1
	var inst *core.Instance
	for _, s := range sel.Instances {
		if s.Instance.Anchor == ldqPC {
			inst = s.Instance
		}
	}
	if inst == nil {
		t.Fatalf("no instance anchored at the load (pc=%d): %v", ldqPC, sel.Instances)
	}
	if inst.Size() != 3 {
		t.Fatalf("size %d want 3 {ldq,srl,and}", inst.Size())
	}
	want := []isa.PC{ldqPC, ldqPC + 1, ldqPC + 3}
	for i, pc := range inst.Members {
		if pc != want[i] {
			t.Errorf("member %d = %d want %d", i, pc, want[i])
		}
	}
	if inst.NumIn != 1 || inst.Srcs[0] != isa.IntReg(4) {
		t.Errorf("inputs: %v n=%d want r4", inst.Srcs, inst.NumIn)
	}
	if inst.Dest != isa.IntReg(17) {
		t.Errorf("dest %v want r17", inst.Dest)
	}
	tm := inst.Tmpl
	if tm.OutIdx != 2 || tm.MemIdx != 0 || tm.BranchIdx != -1 {
		t.Errorf("meta out=%d mem=%d br=%d; want 2,0,-1", tm.OutIdx, tm.MemIdx, tm.BranchIdx)
	}
	// MGHT row 34: LAT=4 with a 2-cycle load (offsets 0,2,3; out at 3+1).
	ei := tm.Schedule(core.DefaultExecParams())
	if ei.Lat != 4 || ei.FU0 != core.FULoad || ei.Integer {
		t.Errorf("MGHT: lat=%d fu0=%v int=%v", ei.Lat, ei.FU0, ei.Integer)
	}
	if ei.Offset[0] != 0 || ei.Offset[1] != 2 || ei.Offset[2] != 3 {
		t.Errorf("MGST banks: %v want [0 2 3]", ei.Offset)
	}
	// AP-mode FUBMP: single AP entry at cycle 2 (the paper's alternative
	// template "LD ... FUBMP -:AP:-").
	if ei.FUBmp[2] != core.FUAP {
		t.Errorf("FUBmp[2]=%v want AP (%v)", ei.FUBmp[2], ei.FUBmp)
	}
	if ei.FUBmp[3] != core.FUNone {
		t.Errorf("FUBmp[3]=%v want none (AP carries the contiguous run)", ei.FUBmp[3])
	}
	// ALU-mode FUBMP: ALUs at cycles 2 and 3 (the paper's first template).
	ei2 := tm.Schedule(core.ExecParams{LoadLat: 2, UseAP: false})
	if ei2.FUBmp[2] != core.FUALU || ei2.FUBmp[3] != core.FUALU {
		t.Errorf("ALU FUBmp: %v", ei2.FUBmp)
	}
	if !tm.InteriorLoad() {
		t.Error("load at position 0 of 3 is interior (replay-vulnerable)")
	}
	if tm.ExtSerial() {
		t.Error("graph 34 is not externally serial (single input feeds insn 0)")
	}
}

func TestCollapsingSchedule(t *testing.T) {
	// Integer chain of 4: plain offsets 0..3, collapsed pairs -> 2 cycles.
	tm := &core.Template{
		Insns: []core.TemplateInsn{
			{Op: isa.OpAddl, A: core.Operand{Kind: core.OpndExt}, B: core.Operand{Kind: core.OpndImm}, Imm: 1},
			{Op: isa.OpAddl, A: core.Operand{Kind: core.OpndInt, Idx: 0}, B: core.Operand{Kind: core.OpndImm}, Imm: 1},
			{Op: isa.OpAddl, A: core.Operand{Kind: core.OpndInt, Idx: 1}, B: core.Operand{Kind: core.OpndImm}, Imm: 1},
			{Op: isa.OpAddl, A: core.Operand{Kind: core.OpndInt, Idx: 2}, B: core.Operand{Kind: core.OpndImm}, Imm: 1},
		},
		NumIn: 1, OutIdx: 3, MemIdx: -1, BranchIdx: -1,
	}
	plain := tm.Schedule(core.ExecParams{LoadLat: 2, UseAP: true})
	if plain.TotalLat != 4 || plain.Lat != 4 {
		t.Errorf("plain: total=%d lat=%d", plain.TotalLat, plain.Lat)
	}
	col := tm.Schedule(core.ExecParams{LoadLat: 2, UseAP: true, Collapse: true})
	if col.TotalLat != 2 || col.Lat != 2 {
		t.Errorf("collapsed: total=%d lat=%d (want 2,2)", col.TotalLat, col.Lat)
	}
	// Two-instruction graphs execute in one cycle when collapsing (§6.2).
	tm2 := &core.Template{
		Insns: tm.Insns[:2],
		NumIn: 1, OutIdx: 1, MemIdx: -1, BranchIdx: -1,
	}
	col2 := tm2.Schedule(core.ExecParams{LoadLat: 2, UseAP: true, Collapse: true})
	if col2.TotalLat != 1 {
		t.Errorf("2-insn collapsed total=%d want 1", col2.TotalLat)
	}
}

func TestSelectionRespectsMGTLimit(t *testing.T) {
	_, g, lv, prof := analyze(t, figure1Left, 100000)
	sel := core.Extract(g, lv, prof, core.DefaultPolicy(), 1)
	if len(sel.Templates) > 1 {
		t.Errorf("MGT limit violated: %d templates", len(sel.Templates))
	}
}

func TestSelectionNoOverlap(t *testing.T) {
	_, g, lv, prof := analyze(t, figure1Left+figure1RightTail, 100000)
	sel := core.Extract(g, lv, prof, core.DefaultPolicy(), 512)
	seen := map[isa.PC]bool{}
	for _, s := range sel.Instances {
		for _, pc := range s.Instance.Members {
			if seen[pc] {
				t.Fatalf("instruction %d in two mini-graphs", pc)
			}
			seen[pc] = true
		}
	}
}

// figure1RightTail is appendable extra code to grow the candidate space.
const figure1RightTail = `
extra:  addl r20, 1, r20
        cmplt r20, r21, r22
        bne  r22, extra
        halt
`

func TestPolicyFilters(t *testing.T) {
	_, g, lv, prof := analyze(t, figure1Left, 100000)
	noExt := core.DefaultPolicy()
	noExt.AllowExtSerial = false
	sel := core.Extract(g, lv, prof, noExt, 512)
	for _, s := range sel.Instances {
		if s.Instance.Tmpl.ExtSerial() {
			t.Errorf("externally serial graph selected under NoExtSerial: %v", s.Instance.Tmpl)
		}
	}

	intOnly := core.IntegerPolicy()
	_, g2, lv2, prof2 := analyze(t, figure1Right, 100000)
	sel2 := core.Extract(g2, lv2, prof2, intOnly, 512)
	for _, s := range sel2.Instances {
		if !s.Instance.Tmpl.IsInteger() {
			t.Errorf("memory graph selected under integer policy: %v", s.Instance.Tmpl)
		}
	}

	noIL := core.DefaultPolicy()
	noIL.AllowInteriorLoad = false
	sel3 := core.Extract(g2, lv2, prof2, noIL, 512)
	for _, s := range sel3.Instances {
		if s.Instance.Tmpl.InteriorLoad() {
			t.Errorf("interior-load graph selected under NoInteriorLoad: %v", s.Instance.Tmpl)
		}
	}

	small := core.DefaultPolicy()
	small.MaxSize = 2
	sel4 := core.Extract(g, lv, prof, small, 512)
	for _, s := range sel4.Instances {
		if s.Instance.Size() > 2 {
			t.Errorf("size-%d graph under MaxSize=2", s.Instance.Size())
		}
	}
}

func TestCoverageMonotoneInMGTSize(t *testing.T) {
	_, g, lv, prof := analyze(t, figure1Left+figure1RightTail, 100000)
	prev := -1.0
	for _, entries := range []int{1, 2, 4, 512} {
		sel := core.Extract(g, lv, prof, core.DefaultPolicy(), entries)
		cov := sel.Coverage()
		if cov < prev-1e-12 {
			t.Errorf("coverage decreased at %d entries: %f < %f", entries, cov, prev)
		}
		prev = cov
	}
}

func TestTemplateValidateRejectsBadShapes(t *testing.T) {
	ext0 := core.Operand{Kind: core.OpndExt, Idx: 0}
	imm := core.Operand{Kind: core.OpndImm}
	add := core.TemplateInsn{Op: isa.OpAddl, A: ext0, B: imm, Imm: 1}
	ld := core.TemplateInsn{Op: isa.OpLdq, B: ext0, Imm: 0}
	br := core.TemplateInsn{Op: isa.OpBne, A: core.Operand{Kind: core.OpndInt, Idx: 0}}
	cases := []struct {
		name string
		t    core.Template
	}{
		{"too small", core.Template{Insns: []core.TemplateInsn{add}, NumIn: 1, OutIdx: 0, MemIdx: -1, BranchIdx: -1}},
		{"two loads", core.Template{Insns: []core.TemplateInsn{ld, ld}, NumIn: 1, OutIdx: 1, MemIdx: 0, BranchIdx: -1}},
		{"nonterminal branch", core.Template{Insns: []core.TemplateInsn{br, add}, NumIn: 1, OutIdx: 1, MemIdx: -1, BranchIdx: 0}},
		{"forward M ref", core.Template{Insns: []core.TemplateInsn{{Op: isa.OpAddl, A: core.Operand{Kind: core.OpndInt, Idx: 1}, B: imm}, add}, NumIn: 1, OutIdx: 1, MemIdx: -1, BranchIdx: -1}},
		{"E out of range", core.Template{Insns: []core.TemplateInsn{{Op: isa.OpAddl, A: core.Operand{Kind: core.OpndExt, Idx: 1}, B: imm}, add}, NumIn: 1, OutIdx: 1, MemIdx: -1, BranchIdx: -1}},
		{"fp op", core.Template{Insns: []core.TemplateInsn{{Op: isa.OpAddt, A: ext0, B: ext0}, add}, NumIn: 1, OutIdx: 1, MemIdx: -1, BranchIdx: -1}},
		{"out names store", core.Template{Insns: []core.TemplateInsn{add, {Op: isa.OpStq, A: core.Operand{Kind: core.OpndInt, Idx: 0}, B: ext0}}, NumIn: 1, OutIdx: 1, MemIdx: 1, BranchIdx: -1}},
	}
	for _, c := range cases {
		if err := c.t.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestMGTDump(t *testing.T) {
	_, g, lv, prof := analyze(t, figure1Left, 100000)
	sel := core.Extract(g, lv, prof, core.DefaultPolicy(), 512)
	mgt := core.NewMGT(sel.Templates, core.DefaultExecParams())
	dump := mgt.Dump()
	if !strings.Contains(dump, "LAT=") || !strings.Contains(dump, "addl") {
		t.Errorf("dump missing content:\n%s", dump)
	}
	if mgt.Template(-1) != nil || mgt.Template(mgt.Len()) != nil {
		t.Error("out-of-range MGID should miss")
	}
}
