// Package core implements the paper's primary contribution: dataflow
// mini-graphs. It provides
//
//   - the mini-graph template model (the logical contents of the MGT),
//   - structural legality rules (§3.1): singleton interface (two register
//     inputs, one register output), at most one memory operation, at most
//     one terminal control transfer, basic-block atomicity,
//   - candidate enumeration over basic-block dataflow graphs with the
//     anchor-based register/memory interference checks (§3.2),
//   - the greedy coverage-driven selection algorithm (§3.2), and
//   - the physical MGT organisation (§4.1): the header table (MGHT) with
//     scheduling information (LAT, FU0, FUBMP) and the cycle-banked
//     sequencing table (MGST).
package core

import (
	"fmt"
	"strings"

	"minigraph/internal/isa"
)

// MaxInputs and MaxOutputs fix the handle interface: mini-graphs look like
// singleton instructions (two register inputs, one register output).
const (
	MaxInputs  = 2
	MaxOutputs = 1
)

// OperandKind says where a template instruction's operand value comes from.
type OperandKind uint8

// Operand sources, matching the paper's MGT notation: E<i> names interface
// (External) inputs explicit in the handle; M<j> names interior values
// produced by Mini-graph instruction j; immediates live in the MGST.
const (
	OpndNone OperandKind = iota
	OpndExt              // E<Idx>: interface input register value
	OpndInt              // M<Idx>: interior value from template instruction Idx
	OpndImm              // literal from the instruction's Imm field
)

// Operand is one template-instruction operand.
type Operand struct {
	Kind OperandKind
	Idx  int
}

func (o Operand) String() string {
	switch o.Kind {
	case OpndExt:
		return fmt.Sprintf("E%d", o.Idx)
	case OpndInt:
		return fmt.Sprintf("M%d", o.Idx)
	case OpndImm:
		return "IM"
	}
	return "-"
}

// TemplateInsn is one instruction inside a mini-graph template. Operand
// roles follow isa.Inst: A is the first source (store data / branch test),
// B the second (memory base). Displacements and literals are in Imm. For
// the terminal branch, Imm is the branch displacement relative to the
// handle PC, so instances at different addresses with the same relative
// target coalesce into one template.
type TemplateInsn struct {
	Op   isa.Opcode
	A, B Operand
	Imm  int64
}

func (ti TemplateInsn) String() string {
	return fmt.Sprintf("%s %s,%s,%d", ti.Op, ti.A, ti.B, ti.Imm)
}

// Template is the logical MGT row: the complete definition of one
// mini-graph. Instructions appear in execution (program) order; interior
// dataflow is encoded positionally via OpndInt operands.
type Template struct {
	Insns []TemplateInsn
	// NumIn is the number of interface inputs used (0..2).
	NumIn int
	// OutIdx is the index of the instruction producing the interface output
	// register, or -1 if the mini-graph has no register output (e.g. a
	// store- or branch-terminated graph with no live result).
	OutIdx int
	// MemIdx is the index of the (single) memory operation, or -1.
	MemIdx int
	// BranchIdx is the index of the terminal control transfer, or -1. When
	// present it is always the last instruction (terminality).
	BranchIdx int
}

// Size returns the number of constituent instructions.
func (t *Template) Size() int { return len(t.Insns) }

// HasLoad reports whether the template's memory op is a load.
func (t *Template) HasLoad() bool {
	return t.MemIdx >= 0 && t.Insns[t.MemIdx].Op.Info().Class == isa.ClassLoad
}

// HasStore reports whether the template's memory op is a store.
func (t *Template) HasStore() bool {
	return t.MemIdx >= 0 && t.Insns[t.MemIdx].Op.Info().Class == isa.ClassStore
}

// IsInteger reports whether the template contains no memory operation
// (an "integer mini-graph" in the paper's terminology; terminal branches
// are allowed).
func (t *Template) IsInteger() bool { return t.MemIdx < 0 }

// InteriorLoad reports whether the template contains a load that is not the
// final instruction; such graphs must be fully replayed when the load misses
// (§4.3, "Misses on interior loads").
func (t *Template) InteriorLoad() bool {
	return t.HasLoad() && t.MemIdx != len(t.Insns)-1
}

// SerialChain reports whether the template is a pure serial dependence
// chain: instruction i+1 consumes the value of instruction i for every i.
// Graphs that are not serial chains have internal parallelism and suffer
// internal serialization when executed one instruction per cycle (§4.1).
func (t *Template) SerialChain() bool {
	for i := 1; i < len(t.Insns); i++ {
		ti := t.Insns[i]
		if !(ti.A.Kind == OpndInt && ti.A.Idx == i-1) &&
			!(ti.B.Kind == OpndInt && ti.B.Idx == i-1) {
			return false
		}
	}
	return true
}

// ExtSerial reports whether any interface input feeds an instruction other
// than the first. Such graphs are vulnerable to external serialization: the
// first instruction spuriously waits for inputs of later instructions
// because the handle issues only when all interface inputs are ready (§4.1).
func (t *Template) ExtSerial() bool {
	for i := 1; i < len(t.Insns); i++ {
		if t.Insns[i].A.Kind == OpndExt || t.Insns[i].B.Kind == OpndExt {
			return true
		}
	}
	return false
}

// Key returns a canonical string identity for the template. Static
// mini-graphs with identical dataflows and immediate operands are
// equivalent and coalesce to one MGT entry (§3.2).
func (t *Template) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "o%d m%d br%d n%d", t.OutIdx, t.MemIdx, t.BranchIdx, t.NumIn)
	for _, ti := range t.Insns {
		fmt.Fprintf(&b, "|%d %d.%d %d.%d %d", ti.Op, ti.A.Kind, ti.A.Idx, ti.B.Kind, ti.B.Idx, ti.Imm)
	}
	return b.String()
}

// String renders the template in the paper's MGT notation (Figure 1c).
func (t *Template) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "OUT=%d ", t.OutIdx)
	for i, ti := range t.Insns {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(ti.String())
	}
	return b.String()
}

// Validate checks every structural constraint of §3.1 and the internal
// consistency of the template encoding. The rewriter and the DISE MGPP both
// refuse templates that fail validation.
func (t *Template) Validate() error {
	n := len(t.Insns)
	if n < 2 {
		return fmt.Errorf("core: template must contain at least 2 instructions, has %d", n)
	}
	if t.NumIn < 0 || t.NumIn > MaxInputs {
		return fmt.Errorf("core: template has %d interface inputs, max %d", t.NumIn, MaxInputs)
	}
	if t.OutIdx < -1 || t.OutIdx >= n {
		return fmt.Errorf("core: OutIdx %d out of range", t.OutIdx)
	}
	mem, br := 0, 0
	for i, ti := range t.Insns {
		info := ti.Op.Info()
		if !ti.Op.MiniGraphEligible() {
			return fmt.Errorf("core: insn %d (%s) is not mini-graph eligible", i, ti.Op)
		}
		switch info.Class {
		case isa.ClassLoad, isa.ClassStore:
			mem++
			if t.MemIdx != i {
				return fmt.Errorf("core: MemIdx %d does not match memory op at %d", t.MemIdx, i)
			}
		case isa.ClassBranch:
			br++
			if i != n-1 {
				return fmt.Errorf("core: control transfer at %d is not terminal", i)
			}
			if t.BranchIdx != i {
				return fmt.Errorf("core: BranchIdx %d does not match branch at %d", t.BranchIdx, i)
			}
		}
		for _, o := range []Operand{ti.A, ti.B} {
			switch o.Kind {
			case OpndExt:
				if o.Idx < 0 || o.Idx >= t.NumIn {
					return fmt.Errorf("core: insn %d references E%d but NumIn=%d", i, o.Idx, t.NumIn)
				}
			case OpndInt:
				if o.Idx < 0 || o.Idx >= i {
					return fmt.Errorf("core: insn %d references M%d (must name an earlier insn)", i, o.Idx)
				}
			}
		}
	}
	if mem > 1 {
		return fmt.Errorf("core: %d memory operations, max 1", mem)
	}
	if mem == 0 && t.MemIdx != -1 {
		return fmt.Errorf("core: MemIdx %d but no memory op", t.MemIdx)
	}
	if br == 0 && t.BranchIdx != -1 {
		return fmt.Errorf("core: BranchIdx %d but no branch", t.BranchIdx)
	}
	if t.OutIdx >= 0 {
		switch t.Insns[t.OutIdx].Op.Info().Class {
		case isa.ClassStore, isa.ClassBranch:
			return fmt.Errorf("core: OutIdx %d names an instruction with no register result", t.OutIdx)
		}
	}
	return nil
}
