package core

import (
	"minigraph/internal/isa"
)

// Cross-instance interference.
//
// buildInstance validates one candidate's code motion against the original
// block: every member executes at the anchor, and the checks prove no
// non-member dependence is inverted by that move. Those checks treat all
// other instructions as staying put. When selection commits two graphs in
// the same block, both move their members — and a dependence between a
// member of one and a member of the other can invert even though each
// motion alone is legal. The canonical shape: graph X anchors at an early
// memory op and hoists a later reader of register r up to it, while graph Y
// anchors at its last member and sinks the (earlier) writer of r down past
// X's anchor. Each graph checked in isolation sees the other's member at
// its original position and passes; composed, the read executes before the
// write.
//
// crossOK re-checks exactly the pairs the per-candidate analysis cannot
// see: member-vs-member dependences across two instances, with both members
// at their post-collapse positions. Instances in different blocks never
// interact (members move only within their block, so order relative to
// everything outside the block is preserved).

// crossOK reports whether instance c can be committed alongside the
// already-committed same-block instances in accepted without inverting a
// dependence between their members.
func crossOK(p *isa.Program, c *Instance, accepted []*Instance) bool {
	for _, o := range accepted {
		if o.Block != c.Block {
			continue
		}
		if !pairOK(p, c, o) {
			return false
		}
	}
	return true
}

// pairOK reports whether the collapses of x and y preserve the direction of
// every member-vs-member dependence. Handles execute atomically, so after
// collapsing, every member of x executes at x.Anchor and every member of y
// at y.Anchor; a dependent pair keeps its order iff the anchors are ordered
// the same way as the original instructions.
func pairOK(p *isa.Program, x, y *Instance) bool {
	xFirst := x.Anchor < y.Anchor // anchors are distinct members of disjoint sets
	for _, a := range x.Members {
		ia := p.At(a)
		for _, b := range y.Members {
			if !insnsDepend(ia, p.At(b)) {
				continue
			}
			if (a < b) != xFirst {
				return false
			}
		}
	}
	return true
}

// insnsDepend reports whether two instructions have a register (RAW, WAR,
// WAW) or memory dependence. Register writes that the rewriter elides as
// dead still count — the result is conservative rejection, never unsound
// acceptance. Memory dependence is address-oblivious: a store conflicts
// with any other memory op.
func insnsDepend(ia, ib *isa.Inst) bool {
	da, db := ia.Dest(), ib.Dest()
	if !da.IsZero() {
		if da == db {
			return true
		}
		sb, n := ib.SrcRegs()
		for i := 0; i < n; i++ {
			if sb[i] == da {
				return true
			}
		}
	}
	if !db.IsZero() {
		sa, n := ia.SrcRegs()
		for i := 0; i < n; i++ {
			if sa[i] == db {
				return true
			}
		}
	}
	ca, cb := ia.Op.Info().Class, ib.Op.Info().Class
	aMem := ca == isa.ClassLoad || ca == isa.ClassStore
	bMem := cb == isa.ClassLoad || cb == isa.ClassStore
	return aMem && bMem && (ca == isa.ClassStore || cb == isa.ClassStore)
}
