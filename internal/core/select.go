package core

import (
	"container/heap"
	"sort"

	"minigraph/internal/isa"
	"minigraph/internal/program"
)

// Selected pairs an instance with the MGT entry it was assigned.
type Selected struct {
	Instance *Instance
	MGID     int
}

// Selection is the result of mini-graph selection for one program: the MGT
// contents and the chosen static instances.
type Selection struct {
	// Templates holds the MGT contents; the slice index is the MGID.
	Templates []*Template
	// Instances are the selected static mini-graph occurrences.
	Instances []Selected
	// CoveredInsts is the number of dynamic instructions removed from the
	// pipeline: Σ over instances of (size-1) × frequency.
	CoveredInsts int64
	// TotalInsts is the profile's dynamic instruction count.
	TotalInsts int64
	// CandidateCount is the number of legal candidates enumerated.
	CandidateCount int
}

// Coverage is the fraction of dynamic instructions removed from the
// pipeline (the paper's benefit metric, §3.2).
func (s *Selection) Coverage() float64 {
	if s.TotalInsts == 0 {
		return 0
	}
	return float64(s.CoveredInsts) / float64(s.TotalInsts)
}

// SizeHistogram returns the dynamic coverage contributed by each mini-graph
// size (index = size), for the Figure 5 stacked bars.
func (s *Selection) SizeHistogram(prof *program.Profile, g *program.CFG) map[int]int64 {
	h := make(map[int]int64)
	for _, sel := range s.Instances {
		b := g.Blocks[sel.Instance.Block]
		f := prof.BlockFreq(b)
		h[sel.Instance.Size()] += int64(sel.Instance.Size()-1) * f
	}
	return h
}

// group aggregates the instances of one coalesced template.
type group struct {
	key       string
	tmpl      *Template
	instances []*Instance
	freqs     []int64
	benefit   int64 // cached; recomputed lazily during selection
	index     int   // heap bookkeeping
}

type groupHeap []*group

func (h groupHeap) Len() int            { return len(h) }
func (h groupHeap) Less(i, j int) bool  { return h[i].benefit > h[j].benefit }
func (h groupHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index, h[j].index = i, j }
func (h *groupHeap) Push(x interface{}) { g := x.(*group); g.index = len(*h); *h = append(*h, g) }
func (h *groupHeap) Pop() interface{} {
	old := *h
	n := len(old)
	g := old[n-1]
	*h = old[:n-1]
	return g
}

// Select runs the paper's greedy selection (§3.2) over candidate instances:
// candidates coalesce by template identity, are prioritised by estimated
// coverage (n-1)×f, and are chosen until the candidate list is exhausted or
// the MGT entry limit is reached. A static instruction belongs to at most
// one mini-graph, so committing a template invalidates overlapping
// instances; the implementation uses lazy re-evaluation on a max-heap,
// which is equivalent to the paper's re-weight-every-iteration loop.
func Select(g *program.CFG, prof *program.Profile, cands []*Instance, mgtEntries int) *Selection {
	sel := &Selection{TotalInsts: prof.DynInsts, CandidateCount: len(cands)}

	groups := make(map[string]*group)
	for _, c := range cands {
		f := prof.BlockFreq(g.Blocks[c.Block])
		k := c.Tmpl.Key()
		gr := groups[k]
		if gr == nil {
			gr = &group{key: k, tmpl: c.Tmpl}
			groups[k] = gr
		}
		gr.instances = append(gr.instances, c)
		gr.freqs = append(gr.freqs, f)
	}

	used := make(map[isa.PC]bool)
	accepted := make(map[int][]*Instance) // block -> committed instances
	free := func(c *Instance) bool {
		for _, pc := range c.Members {
			if used[pc] {
				return false
			}
		}
		// Committing must not invert a dependence against a graph already
		// collapsed in the same block (see interfere.go). Both conditions
		// only tighten over time, so the lazy heap stays valid.
		return crossOK(g.Prog, c, accepted[c.Block])
	}
	benefit := func(gr *group) int64 {
		var b int64
		for i, c := range gr.instances {
			if free(c) {
				b += int64(c.Size()-1) * gr.freqs[i]
			}
		}
		return b
	}

	h := make(groupHeap, 0, len(groups))
	// Deterministic heap seeding (map iteration order is random).
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		gr := groups[k]
		gr.benefit = benefit(gr)
		if gr.benefit > 0 {
			h = append(h, gr)
		}
	}
	heap.Init(&h)

	for h.Len() > 0 && len(sel.Templates) < mgtEntries {
		gr := heap.Pop(&h).(*group)
		cur := benefit(gr)
		if cur <= 0 {
			continue
		}
		if h.Len() > 0 && cur < h[0].benefit {
			gr.benefit = cur
			heap.Push(&h, gr)
			continue
		}
		// Commit this template: claim all still-free instances.
		mgid := len(sel.Templates)
		sel.Templates = append(sel.Templates, gr.tmpl)
		for i, c := range gr.instances {
			if !free(c) {
				continue
			}
			for _, pc := range c.Members {
				used[pc] = true
			}
			accepted[c.Block] = append(accepted[c.Block], c)
			sel.Instances = append(sel.Instances, Selected{Instance: c, MGID: mgid})
			sel.CoveredInsts += int64(c.Size()-1) * gr.freqs[i]
		}
	}
	// Deterministic instance order (by anchor PC) for reproducible rewrites.
	sort.Slice(sel.Instances, func(i, j int) bool {
		return sel.Instances[i].Instance.Anchor < sel.Instances[j].Instance.Anchor
	})
	return sel
}

// Extract is the end-to-end extraction pipeline: enumerate legal candidates
// under pol, then greedily select up to mgtEntries templates by profile
// coverage.
func Extract(g *program.CFG, lv *program.Liveness, prof *program.Profile, pol Policy, mgtEntries int) *Selection {
	cands := Enumerate(g, lv, pol)
	return Select(g, prof, cands, mgtEntries)
}

// DomainProgram bundles one program's analysis for domain-specific
// selection (Figure 5, bottom).
type DomainProgram struct {
	CFG     *program.CFG
	Live    *program.Liveness
	Profile *program.Profile
}

// SelectDomain picks a single shared MGT across several programs: templates
// coalesce across programs and are ranked by their summed coverage, then
// each program's selection is reported against the shared table. This
// reproduces the paper's domain-specific mini-graph experiment.
func SelectDomain(progs []DomainProgram, pol Policy, mgtEntries int) []*Selection {
	type domGroup struct {
		tmpl    *Template
		benefit int64
		// per-program free instances
		per [][]*Instance
		fr  [][]int64
	}
	groups := make(map[string]*domGroup)
	allCands := make([][]*Instance, len(progs))
	for pi, dp := range progs {
		cands := Enumerate(dp.CFG, dp.Live, pol)
		allCands[pi] = cands
		for _, c := range cands {
			// Normalise frequency to per-million instructions so programs
			// with longer runs do not dominate the shared table.
			f := dp.Profile.BlockFreq(dp.CFG.Blocks[c.Block])
			norm := int64(0)
			if dp.Profile.DynInsts > 0 {
				norm = f * 1_000_000 / dp.Profile.DynInsts
			}
			k := c.Tmpl.Key()
			gr := groups[k]
			if gr == nil {
				gr = &domGroup{tmpl: c.Tmpl, per: make([][]*Instance, len(progs)), fr: make([][]int64, len(progs))}
				groups[k] = gr
			}
			gr.per[pi] = append(gr.per[pi], c)
			gr.fr[pi] = append(gr.fr[pi], f)
			gr.benefit += int64(c.Size()-1) * norm
		}
	}
	// Rank templates by summed normalised benefit (static ranking: the
	// shared-table experiment in the paper ranks by suite-wide frequency).
	type kv struct {
		k string
		g *domGroup
	}
	ranked := make([]kv, 0, len(groups))
	for k, gr := range groups {
		ranked = append(ranked, kv{k, gr})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].g.benefit != ranked[j].g.benefit {
			return ranked[i].g.benefit > ranked[j].g.benefit
		}
		return ranked[i].k < ranked[j].k
	})
	if len(ranked) > mgtEntries {
		ranked = ranked[:mgtEntries]
	}

	// Build each program's selection constrained to the shared table.
	sels := make([]*Selection, len(progs))
	for pi, dp := range progs {
		sel := &Selection{TotalInsts: dp.Profile.DynInsts, CandidateCount: len(allCands[pi])}
		used := make(map[isa.PC]bool)
		accepted := make(map[int][]*Instance)
		for mgid, r := range ranked {
			gr := r.g
			committed := false
			for i, c := range gr.per[pi] {
				ok := true
				for _, pc := range c.Members {
					if used[pc] {
						ok = false
						break
					}
				}
				if ok && !crossOK(dp.CFG.Prog, c, accepted[c.Block]) {
					ok = false
				}
				if !ok {
					continue
				}
				for _, pc := range c.Members {
					used[pc] = true
				}
				accepted[c.Block] = append(accepted[c.Block], c)
				sel.Instances = append(sel.Instances, Selected{Instance: c, MGID: mgid})
				sel.CoveredInsts += int64(c.Size()-1) * gr.fr[pi][i]
				committed = true
			}
			_ = committed
			sel.Templates = append(sel.Templates, gr.tmpl)
		}
		sort.Slice(sel.Instances, func(i, j int) bool {
			return sel.Instances[i].Instance.Anchor < sel.Instances[j].Instance.Anchor
		})
		sels[pi] = sel
	}
	return sels
}
