package core

import (
	"minigraph/internal/isa"
	"minigraph/internal/program"
)

// Policy configures which candidate mini-graphs are admissible. The zero
// value is useless; start from DefaultPolicy.
type Policy struct {
	// MaxSize bounds constituents per mini-graph (paper default: 4;
	// Figure 5 sweeps 2,3,4,8).
	MaxSize int
	// AllowMem admits loads and stores (integer-memory mini-graphs). When
	// false only integer mini-graphs are enumerated.
	AllowMem bool
	// AllowExtSerial admits graphs whose interface inputs feed instructions
	// other than the first (vulnerable to external serialization, §6.2).
	AllowExtSerial bool
	// AllowIntParallel admits graphs that are not pure serial dependence
	// chains (vulnerable to internal serialization, §6.2).
	AllowIntParallel bool
	// AllowInteriorLoad admits graphs whose load is not the final
	// instruction (vulnerable to full-graph cache-miss replay, §6.2).
	AllowInteriorLoad bool
	// MaxCandidatesPerBlock caps the enumerator per basic block as a
	// safety valve for pathologically large blocks.
	MaxCandidatesPerBlock int
}

// DefaultPolicy matches the paper's main configuration: integer-memory
// mini-graphs of up to 4 instructions, with no serialization restrictions.
func DefaultPolicy() Policy {
	return Policy{
		MaxSize:               4,
		AllowMem:              true,
		AllowExtSerial:        true,
		AllowIntParallel:      true,
		AllowInteriorLoad:     true,
		MaxCandidatesPerBlock: 4096,
	}
}

// IntegerPolicy is DefaultPolicy restricted to integer mini-graphs.
func IntegerPolicy() Policy {
	p := DefaultPolicy()
	p.AllowMem = false
	return p
}

// admits applies the policy's per-candidate filters.
func (p Policy) admits(c *Instance) bool {
	t := c.Tmpl
	if t.Size() > p.MaxSize {
		return false
	}
	if !p.AllowMem && t.MemIdx >= 0 {
		return false
	}
	if !p.AllowExtSerial && t.ExtSerial() {
		return false
	}
	if !p.AllowIntParallel && !t.SerialChain() {
		return false
	}
	if !p.AllowInteriorLoad && t.InteriorLoad() {
		return false
	}
	return true
}

// EnumerateBlock lists every legal mini-graph instance within the block,
// subject to the policy. Enumeration uses the ESU connected-subgraph
// algorithm over the block's dataflow graph: each connected vertex set of
// size 2..MaxSize is visited exactly once, then checked for full legality.
func EnumerateBlock(bi *blockInfo, pol Policy) []*Instance {
	var out []*Instance
	n := bi.b.Len()
	inSet := make([]bool, n)
	var set []int
	budget := pol.MaxCandidatesPerBlock

	memCount := func(s []int) int {
		c := 0
		for _, m := range s {
			if bi.insts[m].IsMem() {
				c++
			}
		}
		return c
	}

	var extend func(v int, ext []int)
	extend = func(v int, ext []int) {
		if budget <= 0 {
			return
		}
		if len(set) >= 2 {
			// Emit the current set (a connected subgraph).
			members := append([]int(nil), set...)
			sortInts(members)
			if c := buildInstance(bi, members); c != nil && pol.admits(c) {
				out = append(out, c)
				budget--
			}
		}
		if len(set) >= pol.MaxSize {
			return
		}
		for i := 0; i < len(ext); i++ {
			u := ext[i]
			if !pol.AllowMem && bi.insts[u].IsMem() {
				continue
			}
			// Monotone prune: adding a second memory op can never become
			// legal again.
			if bi.insts[u].IsMem() && memCount(set) >= 1 {
				continue
			}
			set = append(set, u)
			inSet[u] = true
			// New extension: remaining ext beyond u plus u's unseen
			// neighbours greater than the root v.
			next := append([]int(nil), ext[i+1:]...)
			for _, w := range bi.adj[u] {
				if w > v && !inSet[w] && !contains(next, w) && !contains(ext[:i+1], w) {
					next = append(next, w)
				}
			}
			extend(v, next)
			inSet[u] = false
			set = set[:len(set)-1]
		}
	}

	for v := 0; v < n; v++ {
		if !bi.eligible[v] || budget <= 0 {
			continue
		}
		if !pol.AllowMem && bi.insts[v].IsMem() {
			continue
		}
		var ext []int
		for _, w := range bi.adj[v] {
			if w > v && !contains(ext, w) {
				ext = append(ext, w)
			}
		}
		set = append(set[:0], v)
		inSet[v] = true
		extend(v, ext)
		inSet[v] = false
	}
	return out
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Enumerate lists every legal candidate instance in the whole program.
func Enumerate(g *program.CFG, lv *program.Liveness, pol Policy) []*Instance {
	var out []*Instance
	for _, b := range g.Blocks {
		if b.Len() < 2 {
			continue
		}
		if hasHandle(g.Prog, b) {
			continue // never re-extract over an already rewritten region
		}
		bi := analyzeBlock(g, lv, b)
		out = append(out, EnumerateBlock(bi, pol)...)
	}
	return out
}

func hasHandle(p *isa.Program, b *program.Block) bool {
	for pc := b.Start; pc < b.End; pc++ {
		if p.At(pc).Op == isa.OpMG {
			return true
		}
	}
	return false
}
