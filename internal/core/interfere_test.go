package core

import (
	"testing"

	"minigraph/internal/asm"
	"minigraph/internal/isa"
)

// TestCrossInstanceInterference reproduces the composition bug found by the
// differential oracle (progen seed 681): two mini-graphs, each individually
// legal, whose opposite-direction collapses invert a register dependence.
//
//	pc0  lda  r1, 1000(zero)   ; Y member: writes r1
//	pc1  lda  r4, 77(zero)
//	pc2  ldq  r2, c(zero)      ; X anchor (memory op)
//	pc3  addq r1, 7, r6        ; Y anchor (last member): reads r1
//	pc4  subq r1, r2, r3       ; X member: reads r1
//
// X hoists the r1 read at pc4 up to pc2; Y sinks the r1 write at pc0 down
// to pc3. Composed, the read executes before the write.
func TestCrossInstanceInterference(t *testing.T) {
	p, err := asm.Assemble("interfere", `
        .data
c: .word 12345
        .text
main:
  lda r1, 1000(zero)
  lda r4, 77(zero)
  ldq r2, c(zero)
  addq r1, 7, r6
  subq r1, r2, r3
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	x := &Instance{Block: 0, Members: []isa.PC{2, 4}, Anchor: 2}
	y := &Instance{Block: 0, Members: []isa.PC{0, 3}, Anchor: 3}

	if pairOK(p, x, y) {
		t.Error("pairOK accepted an X/Y composition that inverts the r1 dependence")
	}
	if pairOK(p, y, x) {
		t.Error("pairOK must be symmetric: Y/X composition also inverts the dependence")
	}
	if !crossOK(p, x, nil) {
		t.Error("crossOK must accept an instance with nothing committed")
	}
	if !crossOK(p, x, []*Instance{{Block: 1, Members: []isa.PC{0, 3}, Anchor: 3}}) {
		t.Error("crossOK must ignore instances in other blocks")
	}
	if crossOK(p, x, []*Instance{y}) {
		t.Error("crossOK accepted the conflicting committed instance")
	}

	// Same shapes without the shared register: no dependence, both orders fine.
	x2 := &Instance{Block: 0, Members: []isa.PC{2, 4}, Anchor: 2}
	y2 := &Instance{Block: 0, Members: []isa.PC{1, 3}, Anchor: 3}
	p2, err := asm.Assemble("nointerfere", `
        .data
c: .word 12345
        .text
main:
  lda r1, 1000(zero)
  lda r4, 77(zero)
  ldq r2, c(zero)
  addq r5, 7, r6
  subq r7, r2, r3
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if !pairOK(p2, x2, y2) {
		t.Error("pairOK rejected independent graphs")
	}
}

// TestInsnsDepend covers the dependence classifier driving the cross check.
func TestInsnsDepend(t *testing.T) {
	p, err := asm.Assemble("deps", `
        .data
buf: .space 64
        .text
main:
  addq r1, r2, r3
  subq r3, 1, r4
  mulq r5, r6, r3
  stq r1, buf(zero)
  ldq r7, buf(zero)
  ldq r8, buf+8(zero)
  addq zero, zero, r9
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	at := func(i int) *isa.Inst { return p.At(isa.PC(i)) }
	cases := []struct {
		a, b int
		want bool
		why  string
	}{
		{0, 1, true, "RAW on r3"},
		{0, 2, true, "WAW on r3"},
		{1, 2, true, "WAR on r3"},
		{3, 4, true, "store vs load"},
		{3, 3, true, "store vs store"},
		{4, 5, false, "load vs load"},
		{0, 6, false, "zero-register writes are not dependences"},
		{1, 5, false, "disjoint registers"},
	}
	for _, c := range cases {
		if got := insnsDepend(at(c.a), at(c.b)); got != c.want {
			t.Errorf("insnsDepend(%v, %v) = %v, want %v (%s)", at(c.a), at(c.b), got, c.want, c.why)
		}
	}
}
