package core

import (
	"fmt"
	"strings"
)

// MGT is the mini-graph table: the on-chip structure mapping handle MGIDs to
// mini-graph definitions (§4.1). Logically it is the template list; the
// physical split into the header table (MGHT, read at rename/schedule) and
// the cycle-banked sequencing table (MGST, read during execution) is
// realised by the cached ExecInfo schedules.
type MGT struct {
	templates []*Template
	params    ExecParams
	info      []*ExecInfo // lazily computed MGHT/MGST schedule per entry
}

// NewMGT builds a table from the templates (index = MGID) under the given
// machine parameters.
func NewMGT(templates []*Template, params ExecParams) *MGT {
	return &MGT{
		templates: templates,
		params:    params,
		info:      make([]*ExecInfo, len(templates)),
	}
}

// Len returns the number of table entries.
func (m *MGT) Len() int { return len(m.templates) }

// Params returns the machine parameters the table was built with.
func (m *MGT) Params() ExecParams { return m.params }

// Template returns the definition at mgid, or nil if out of range — the
// hardware analogue of an MGTT tag miss.
func (m *MGT) Template(mgid int) *Template {
	if mgid < 0 || mgid >= len(m.templates) {
		return nil
	}
	return m.templates[mgid]
}

// Info returns the MGHT/MGST scheduling metadata for mgid (cached).
func (m *MGT) Info(mgid int) *ExecInfo {
	if mgid < 0 || mgid >= len(m.templates) {
		return nil
	}
	if m.info[mgid] == nil {
		m.info[mgid] = m.templates[mgid].Schedule(m.params)
	}
	return m.info[mgid]
}

// Dump renders the physical MGT organisation in the style of the paper's
// Figure 2: one MGHT row (LAT, FU0, FUBMP) and the MGST bank contents per
// entry. Intended for debugging and documentation examples.
func (m *MGT) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MGHT %29s | MGST\n", "")
	for id, t := range m.templates {
		ei := m.Info(id)
		var bmp []string
		for _, fu := range ei.FUBmp {
			bmp = append(bmp, fu.String())
		}
		fmt.Fprintf(&b, "%4d LAT=%d FU0=%-4s FUBMP=%-12s |", id, ei.Lat, ei.FU0, strings.Join(bmp, ":"))
		for i, ti := range t.Insns {
			fmt.Fprintf(&b, " [%d] %s", ei.Offset[i], ti.String())
		}
		fmt.Fprintf(&b, "  (out=%d)\n", t.OutIdx)
	}
	return b.String()
}
