package core

import (
	"fmt"

	"minigraph/internal/isa"
)

// MemAccess is the memory interface a template needs to execute. Both the
// functional emulator's memory and test doubles satisfy it.
type MemAccess interface {
	Read(a isa.Addr, size int) uint64
	Write(a isa.Addr, size int, v uint64)
}

// ExecResult reports the architectural effects of executing one mini-graph.
type ExecResult struct {
	Out    uint64 // interface output value (valid if template has OutIdx>=0)
	HasOut bool

	EA       isa.Addr // effective address of the single memory op
	MemSize  int
	IsLoad   bool
	IsStore  bool
	StoreVal uint64

	HasBranch  bool
	Taken      bool
	BranchDisp int64 // taken-target displacement relative to the handle PC
}

// Exec interprets the template on interface inputs e0, e1 with memory mem,
// returning all architectural effects. It is the reference semantics of the
// MGST sequencer: one constituent at a time, interior values flowing through
// the template's M<j> operands (the bypass network).
func (t *Template) Exec(e0, e1 uint64, mem MemAccess) ExecResult {
	var res ExecResult
	// Interior values live in a stack buffer: Exec runs once per emulated
	// handle, so a heap slice here dominates whole-simulation allocation.
	// Templates beyond the buffer (policies overriding MaxSize upward)
	// fall back to the heap.
	var buf [16]uint64
	vals := buf[:]
	if len(t.Insns) > len(buf) {
		vals = make([]uint64, len(t.Insns))
	}
	ext := [2]uint64{e0, e1}
	read := func(ti *TemplateInsn, o Operand) uint64 {
		switch o.Kind {
		case OpndExt:
			return ext[o.Idx]
		case OpndInt:
			return vals[o.Idx]
		case OpndImm:
			return uint64(ti.Imm)
		}
		return 0
	}
	for i := range t.Insns {
		ti := &t.Insns[i]
		info := ti.Op.Info()
		switch info.Class {
		case isa.ClassIntALU:
			if info.Fmt == isa.FmtLda {
				vals[i] = isa.EvalLda(ti.Op, read(ti, ti.B), ti.Imm)
			} else {
				vals[i] = isa.EvalOp(ti.Op, read(ti, ti.A), read(ti, ti.B))
			}
		case isa.ClassLoad:
			res.EA = isa.Addr(read(ti, ti.B) + uint64(ti.Imm))
			res.MemSize = isa.MemWidth(ti.Op)
			res.IsLoad = true
			vals[i] = isa.LoadExtend(ti.Op, mem.Read(res.EA, res.MemSize))
		case isa.ClassStore:
			res.EA = isa.Addr(read(ti, ti.B) + uint64(ti.Imm))
			res.MemSize = isa.MemWidth(ti.Op)
			res.IsStore = true
			res.StoreVal = read(ti, ti.A)
			mem.Write(res.EA, res.MemSize, res.StoreVal)
		case isa.ClassBranch:
			res.HasBranch = true
			res.Taken = isa.EvalBranch(ti.Op, read(ti, ti.A))
			res.BranchDisp = ti.Imm
		default:
			panic(fmt.Sprintf("core: inexecutable template insn %v", ti))
		}
	}
	if t.OutIdx >= 0 {
		res.Out = vals[t.OutIdx]
		res.HasOut = true
	}
	return res
}

// FU identifies a functional-unit class for MGHT scheduling metadata.
type FU uint8

// Functional-unit classes visible to the scheduler.
const (
	FUNone FU = iota
	FUALU     // conventional integer ALU
	FUAP      // ALU pipeline (single-entry single-exit ALU chain, §4.2)
	FULoad
	FUStore
)

func (f FU) String() string {
	switch f {
	case FUALU:
		return "ALU"
	case FUAP:
		return "AP"
	case FULoad:
		return "LD"
	case FUStore:
		return "ST"
	}
	return "-"
}

// ExecParams are the machine parameters that shape a mini-graph's execution
// schedule.
type ExecParams struct {
	// LoadLat is the load hit latency in cycles (MGST banks occupied by a
	// load before the next constituent can consume its value).
	LoadLat int
	// Collapse enables pair-wise collapsing ALU pipelines: two dependent
	// single-cycle integer constituents execute per cycle (§6.2,
	// "Latency reduction and resource amplification").
	Collapse bool
	// UseAP schedules contiguous integer runs on ALU pipelines; when false
	// every integer constituent reserves a conventional ALU slot.
	UseAP bool
}

// DefaultExecParams match the paper's simulated machine.
func DefaultExecParams() ExecParams {
	return ExecParams{LoadLat: 2, Collapse: false, UseAP: true}
}

// ExecInfo is the MGHT row plus derived per-constituent schedule: everything
// the scheduler and the MGST sequencers need.
type ExecInfo struct {
	// Lat is the interface-output latency (MGHT.LAT): cycles after issue at
	// which the output register value is available. Zero if no output.
	Lat int
	// TotalLat is the cycle count from issue to completion of the final
	// constituent (the handle's occupancy of its MGST sequencer).
	TotalLat int
	// FU0 is the functional unit required at issue (MGHT.FU0).
	FU0 FU
	// FUBmp[c] lists the functional unit reserved at cycle offset c after
	// issue for c >= 1 (MGHT.FUBMP); FUNone means no reservation that cycle.
	FUBmp []FU
	// Offset[i] is the cycle offset (from issue) at which constituent i
	// executes; this is the MGST bank assignment.
	Offset []int
	// MemOffset / BranchOffset are the offsets of the memory op and the
	// terminal branch (-1 if absent).
	MemOffset    int
	BranchOffset int
	// Integer reports whether the whole graph runs on a single AP.
	Integer bool
}

// Schedule computes the MGST bank assignment and MGHT metadata for the
// template under the given machine parameters.
//
// Integer mini-graphs execute entirely on an ALU pipeline: FU0=AP and no
// further reservations (the AP is single-entry, so downstream stages are
// structurally conflict-free). Integer-memory mini-graphs execute on a
// combination of ports and ALUs/APs reserved via FUBMP by the
// sliding-window scheduler (§4.3).
func (t *Template) Schedule(p ExecParams) *ExecInfo {
	n := len(t.Insns)
	info := &ExecInfo{
		Offset:       make([]int, n),
		MemOffset:    -1,
		BranchOffset: -1,
		Integer:      t.IsInteger(),
	}
	// Assign cycle offsets bank by bank. With pair-wise collapsing, up to
	// two consecutive single-cycle integer constituents share a bank.
	cycle := 0
	intInBank := 0
	for i := range t.Insns {
		class := t.Insns[i].Op.Info().Class
		isInt := class == isa.ClassIntALU || class == isa.ClassBranch || class == isa.ClassStore
		if i > 0 {
			prevClass := t.Insns[i-1].Op.Info().Class
			switch {
			case prevClass == isa.ClassLoad:
				cycle += p.LoadLat
				intInBank = 0
			case p.Collapse && isInt && intInBank == 1:
				// Second integer op collapses into the current bank.
				intInBank = 2
			default:
				cycle++
				intInBank = 0
			}
		}
		if p.Collapse && isInt && intInBank == 0 {
			intInBank = 1
		} else if !isInt {
			intInBank = 0
		}
		info.Offset[i] = cycle
		switch class {
		case isa.ClassLoad, isa.ClassStore:
			info.MemOffset = cycle
		case isa.ClassBranch:
			info.BranchOffset = cycle
		}
	}
	last := n - 1
	lastLat := 1
	if t.Insns[last].Op.Info().Class == isa.ClassLoad {
		lastLat = p.LoadLat
	}
	info.TotalLat = info.Offset[last] + lastLat
	if t.OutIdx >= 0 {
		outLat := 1
		if t.Insns[t.OutIdx].Op.Info().Class == isa.ClassLoad {
			outLat = p.LoadLat
		}
		info.Lat = info.Offset[t.OutIdx] + outLat
	}

	// Functional-unit reservations.
	fuFor := func(i int) FU {
		switch t.Insns[i].Op.Info().Class {
		case isa.ClassLoad:
			return FULoad
		case isa.ClassStore:
			return FUStore
		default:
			if p.UseAP {
				return FUAP
			}
			return FUALU
		}
	}
	if info.Integer && p.UseAP {
		// Whole graph flows down one ALU pipeline: only the entry cycle is
		// reserved.
		info.FU0 = FUAP
		info.FUBmp = make([]FU, info.TotalLat)
		return info
	}
	info.FU0 = fuFor(0)
	info.FUBmp = make([]FU, info.TotalLat)
	for i := 1; i < n; i++ {
		fu := fuFor(i)
		if p.UseAP && fu == FUAP && info.Offset[i] == info.Offset[i-1]+1 && fuFor(i-1) == FUAP {
			// Contiguous integer run already inside an AP: the pipeline
			// carries it without a fresh entry reservation.
			continue
		}
		if p.Collapse && info.Offset[i] == info.Offset[i-1] {
			// Collapsed pair shares the bank (and the unit reservation).
			continue
		}
		off := info.Offset[i]
		if off < len(info.FUBmp) {
			info.FUBmp[off] = fu
		}
	}
	return info
}
