package core

import (
	"minigraph/internal/isa"
)

// Instance is one static occurrence of a mini-graph: a set of instructions
// inside one basic block, plus the handle interface that replaces them.
type Instance struct {
	Block   int      // CFG block index
	Members []isa.PC // absolute PCs of constituent instructions, program order
	Anchor  isa.PC   // PC around which the graph collapses (handle position)

	Tmpl *Template

	// Handle interface: up to two source registers and one destination.
	Srcs  [2]isa.Reg
	NumIn int
	Dest  isa.Reg // isa.RNone when the graph has no register output
}

// Size returns the constituent count.
func (c *Instance) Size() int { return len(c.Members) }

// buildInstance performs the full legality analysis of §3.1/§3.2 for the
// member set (block-relative, sorted ascending) and constructs the template
// and handle interface. It returns nil if the set is not a legal mini-graph.
func buildInstance(bi *blockInfo, members []int) *Instance {
	n := len(members)
	if n < 2 {
		return nil
	}
	isMember := make(map[int]int, n) // block index -> template position
	for pos, m := range members {
		if !bi.eligible[m] {
			return nil
		}
		isMember[m] = pos
	}

	// Composition: at most one memory op; at most one control transfer, and
	// it must be the final member (terminality; it is also necessarily the
	// block terminator since blocks end at control transfers).
	memIdx, brIdx := -1, -1
	for pos, m := range members {
		switch bi.insts[m].Op.Info().Class {
		case isa.ClassLoad, isa.ClassStore:
			if memIdx >= 0 {
				return nil
			}
			memIdx = pos
		case isa.ClassBranch:
			if brIdx >= 0 || pos != n-1 || m != bi.b.Len()-1 {
				return nil
			}
			brIdx = pos
		}
	}

	// Connectivity over intra-member dataflow edges (union-find).
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for pos, m := range members {
		for k := range bi.defOf[m] {
			if d := bi.defOf[m][k]; d >= 0 {
				if dp, ok := isMember[d]; ok {
					parent[find(pos)] = find(dp)
				}
			}
		}
	}
	root := find(0)
	for i := 1; i < n; i++ {
		if find(i) != root {
			return nil
		}
	}

	// Interface inputs: registers read by members whose reaching definition
	// is outside the member set, in first-appearance order.
	var srcs [2]isa.Reg
	srcs[0], srcs[1] = isa.RNone, isa.RNone
	numIn := 0
	extIdx := func(r isa.Reg) int {
		for i := 0; i < numIn; i++ {
			if srcs[i] == r {
				return i
			}
		}
		if numIn >= MaxInputs {
			return -1
		}
		srcs[numIn] = r
		numIn++
		return numIn - 1
	}

	// Interface output: at most one member definition may be externally
	// visible (used by a non-member, or live at block exit as last def).
	outPos := -1
	for pos, m := range members {
		visible := bi.defIsLiveOutside(m)
		for _, u := range bi.uses[m] {
			if _, ok := isMember[u]; !ok {
				visible = true
			}
		}
		if visible {
			if outPos >= 0 {
				return nil
			}
			outPos = pos
		}
	}
	if outPos >= 0 {
		switch bi.insts[members[outPos]].Op.Info().Class {
		case isa.ClassStore, isa.ClassBranch:
			return nil // no register result to expose
		}
	}

	// Anchor: branch, else memory op, else last member (§3.2).
	anchorPos := n - 1
	if brIdx >= 0 {
		anchorPos = brIdx
	} else if memIdx >= 0 {
		anchorPos = memIdx
	}
	anchor := members[anchorPos]

	// Register interference between the members (which all move to the
	// anchor) and the non-members they move across.
	nonMemberWrites := func(r isa.Reg, lo, hi int) bool { // in (lo,hi)
		for p := lo + 1; p < hi; p++ {
			if _, ok := isMember[p]; ok {
				continue
			}
			if bi.insts[p].Dest() == r {
				return true
			}
		}
		return false
	}
	for _, m := range members {
		for k, r := range bi.srcs[m] {
			if r.IsZero() {
				continue
			}
			d := bi.defOf[m][k]
			if d >= 0 {
				if _, ok := isMember[d]; ok {
					continue // interior edge
				}
			}
			// External input read by m, reaching def d (or live-in).
			if m < anchor && nonMemberWrites(r, m, anchor) {
				return nil // read moves past a later write
			}
			if m > anchor && d > anchor {
				return nil // read moves before its own def
			}
		}
	}
	if outPos >= 0 {
		mOut := members[outPos]
		dReg := bi.insts[mOut].Dest()
		lo, hi := mOut, anchor
		if lo > hi {
			lo, hi = hi, lo
		}
		if nonMemberWrites(dReg, lo, hi) {
			return nil // WAW inversion with a non-member write
		}
		for _, u := range bi.uses[mOut] {
			if _, ok := isMember[u]; ok {
				continue
			}
			if u < anchor {
				return nil // non-member reads the output before the handle writes it
			}
		}
		// WAR inversion: the output write moves up to the anchor, so a
		// non-member between the anchor and the original definition that
		// reads the output register would now observe the new value.
		// (Any such read necessarily reaches a definition at or before the
		// anchor: writes inside the interval were rejected above.)
		for p := anchor + 1; p < mOut; p++ {
			if _, ok := isMember[p]; ok {
				continue
			}
			for _, r := range bi.srcs[p] {
				if r == dReg {
					return nil
				}
			}
		}
	}

	// Memory ordering: the member memory op moves to the anchor; it must
	// not cross a conflicting non-member memory op (§3.2: anchors preserve
	// load/store order; when a branch outranks the memory op for the anchor
	// this check rejects reordering cases).
	if memIdx >= 0 {
		mm := members[memIdx]
		lo, hi := mm, anchor
		if lo > hi {
			lo, hi = hi, lo
		}
		mIsStore := bi.insts[mm].Op.Info().Class == isa.ClassStore
		for _, x := range bi.memOps {
			if x <= lo || x >= hi {
				continue
			}
			if _, ok := isMember[x]; ok {
				continue
			}
			xIsStore := bi.insts[x].Op.Info().Class == isa.ClassStore
			if mIsStore || xIsStore {
				return nil
			}
		}
	}

	// Build the template.
	tmpl := &Template{
		OutIdx:    outPos,
		MemIdx:    memIdx,
		BranchIdx: brIdx,
		Insns:     make([]TemplateInsn, n),
	}
	operandFor := func(m int, k int, r isa.Reg) Operand {
		if r.IsZero() {
			return Operand{Kind: OpndNone}
		}
		if d := bi.defOf[m][k]; d >= 0 {
			if dp, ok := isMember[d]; ok {
				return Operand{Kind: OpndInt, Idx: dp}
			}
		}
		ei := extIdx(r)
		if ei < 0 {
			return Operand{Kind: OpndNone, Idx: -1} // too many inputs; flagged below
		}
		return Operand{Kind: OpndExt, Idx: ei}
	}
	tooManyInputs := false
	for pos, m := range members {
		in := bi.insts[m]
		info := in.Op.Info()
		ti := TemplateInsn{Op: in.Op, Imm: in.Imm}
		k := 0
		take := func(r isa.Reg) Operand {
			o := operandFor(m, k, r)
			if o.Idx == -1 && o.Kind == OpndNone && !r.IsZero() {
				tooManyInputs = true
			}
			k++
			return o
		}
		switch info.Fmt {
		case isa.FmtOperate:
			ti.A = take(in.Ra)
			if in.UseImm {
				ti.B = Operand{Kind: OpndImm}
			} else {
				ti.B = take(in.Rb)
			}
		case isa.FmtLda:
			ti.A = Operand{Kind: OpndNone}
			ti.B = take(in.Rb)
		case isa.FmtMem:
			if info.Class == isa.ClassStore {
				ti.A = take(in.Ra)
			} else {
				ti.A = Operand{Kind: OpndNone}
			}
			ti.B = take(in.Rb)
		case isa.FmtBranch:
			ti.A = take(in.Ra)
			ti.B = Operand{Kind: OpndNone}
			// Branch displacement is relative to the handle PC (anchor) so
			// that instances at different addresses coalesce.
			ti.Imm = in.Imm - int64(bi.b.Start) - int64(anchor)
		default:
			return nil
		}
		tmpl.Insns[pos] = ti
	}
	if tooManyInputs {
		return nil
	}
	tmpl.NumIn = numIn

	c := &Instance{
		Block:  bi.b.Index,
		Anchor: bi.b.Start + isa.PC(anchor),
		Tmpl:   tmpl,
		Srcs:   srcs,
		NumIn:  numIn,
		Dest:   isa.RNone,
	}
	if outPos >= 0 {
		c.Dest = bi.insts[members[outPos]].Dest()
	}
	for _, m := range members {
		c.Members = append(c.Members, bi.b.Start+isa.PC(m))
	}
	return c
}
