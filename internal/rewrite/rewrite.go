// Package rewrite implements the binary rewriting tool of §1/§3: it
// statically replaces selected mini-graphs with handles, emitting the
// mini-graph table image alongside the modified executable.
//
// Two layouts are supported:
//
//   - Nop-fill (the paper's default measurement mode): the anchor
//     instruction becomes the handle and every other constituent becomes a
//     nop, so code addresses are unchanged and the instruction-cache
//     compression effect is isolated away.
//   - Compress: constituents are removed and the text is compacted,
//     exposing the instruction-cache capacity amplification (§6.2,
//     "Instruction cache effects"). Branch targets, symbols and template
//     branch displacements are all re-resolved; templates re-coalesce after
//     displacement patching.
package rewrite

import (
	"fmt"

	"minigraph/internal/core"
	"minigraph/internal/isa"
)

// Result is a rewritten executable plus its mini-graph table contents.
type Result struct {
	Prog *isa.Program
	// Templates is the final MGT image; the slice index is the MGID
	// encoded in each handle.
	Templates []*core.Template
	// HandleTargets maps handle PCs to taken-branch targets, for CFG
	// construction over the rewritten binary.
	HandleTargets map[isa.PC]isa.PC
	// HandleCount is the number of handles planted.
	HandleCount int
	// RemovedInsts is the number of static instructions eliminated
	// (replaced by nops, or dropped entirely in compress mode).
	RemovedInsts int
}

// Rewrite applies the selection to a copy of p.
func Rewrite(p *isa.Program, sel *core.Selection, compress bool) (*Result, error) {
	for mgid, t := range sel.Templates {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("rewrite: template %d: %w", mgid, err)
		}
	}
	if compress {
		return rewriteCompress(p, sel)
	}
	return rewriteNopFill(p, sel)
}

func handleInst(inst *core.Instance, mgid int) isa.Inst {
	h := isa.Inst{Op: isa.OpMG, Ra: isa.RZero, Rb: isa.RZero, Rc: isa.RZero, MGID: mgid}
	if inst.NumIn > 0 {
		h.Ra = inst.Srcs[0]
	}
	if inst.NumIn > 1 {
		h.Rb = inst.Srcs[1]
	}
	if inst.Dest != isa.RNone {
		h.Rc = inst.Dest
	}
	return h
}

func rewriteNopFill(p *isa.Program, sel *core.Selection) (*Result, error) {
	out := p.Clone()
	res := &Result{
		Prog:          out,
		Templates:     sel.Templates,
		HandleTargets: make(map[isa.PC]isa.PC),
	}
	for _, s := range sel.Instances {
		inst := s.Instance
		for _, pc := range inst.Members {
			if out.At(pc).Op == isa.OpMG || out.At(pc).Op == isa.OpNop {
				return nil, fmt.Errorf("rewrite: overlapping instances at pc=%d", pc)
			}
		}
		for _, pc := range inst.Members {
			if pc == inst.Anchor {
				continue
			}
			*out.At(pc) = isa.Inst{Op: isa.OpNop}
			res.RemovedInsts++
		}
		*out.At(inst.Anchor) = handleInst(inst, s.MGID)
		res.HandleCount++
		if bi := inst.Tmpl.BranchIdx; bi >= 0 {
			disp := inst.Tmpl.Insns[bi].Imm
			res.HandleTargets[inst.Anchor] = inst.Anchor + isa.PC(disp)
		}
	}
	return res, nil
}

func rewriteCompress(p *isa.Program, sel *core.Selection) (*Result, error) {
	// First plant handles as in nop-fill, then compact nops introduced by
	// rewriting (pre-existing nops are preserved: they may be alignment).
	nf, err := rewriteNopFill(p, sel)
	if err != nil {
		return nil, err
	}
	dropped := make([]bool, p.Len())
	for _, s := range sel.Instances {
		for _, pc := range s.Instance.Members {
			if pc != s.Instance.Anchor {
				dropped[pc] = true
			}
		}
	}
	// Old index -> new index mapping. Dropped slots map to the next kept
	// instruction (branch targets into dropped slots — impossible for
	// members of legal graphs, but safe anyway).
	newIdx := make([]isa.PC, p.Len()+1)
	n := isa.PC(0)
	for i := 0; i < p.Len(); i++ {
		newIdx[i] = n
		if !dropped[i] {
			n++
		}
	}
	newIdx[p.Len()] = n

	out := &isa.Program{
		Name:        p.Name,
		Data:        nf.Prog.Data,
		Entry:       newIdx[p.Entry],
		Symbols:     make(map[string]isa.PC, len(p.Symbols)),
		DataSymbols: nf.Prog.DataSymbols,
	}
	for s, pc := range p.Symbols {
		out.Symbols[s] = newIdx[pc]
	}
	for i := 0; i < p.Len(); i++ {
		if dropped[i] {
			continue
		}
		in := *nf.Prog.At(isa.PC(i))
		if in.Op.Info().Fmt == isa.FmtBranch {
			in.Imm = int64(newIdx[in.Imm])
		}
		if in.TextRef && in.Imm >= 0 && in.Imm <= int64(p.Len()) {
			in.Imm = int64(newIdx[in.Imm])
		}
		out.Insts = append(out.Insts, in)
	}

	// Patch handle branch displacements to the compacted layout and
	// re-coalesce templates.
	res := &Result{
		Prog:          out,
		HandleTargets: make(map[isa.PC]isa.PC),
		RemovedInsts:  nf.RemovedInsts,
	}
	keyToID := make(map[string]int)
	for _, s := range sel.Instances {
		inst := s.Instance
		t := inst.Tmpl
		anchorNew := newIdx[inst.Anchor]
		if bi := t.BranchIdx; bi >= 0 {
			oldTarget := inst.Anchor + isa.PC(t.Insns[bi].Imm)
			clone := *t
			clone.Insns = append([]core.TemplateInsn(nil), t.Insns...)
			clone.Insns[bi].Imm = int64(newIdx[oldTarget]) - int64(anchorNew)
			t = &clone
			res.HandleTargets[anchorNew] = newIdx[oldTarget]
		}
		key := t.Key()
		mgid, ok := keyToID[key]
		if !ok {
			mgid = len(res.Templates)
			keyToID[key] = mgid
			res.Templates = append(res.Templates, t)
		}
		out.At(anchorNew).MGID = mgid
		res.HandleCount++
	}
	return res, nil
}
