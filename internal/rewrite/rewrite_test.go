package rewrite_test

import (
	"fmt"
	"math/rand"
	"testing"

	"minigraph/internal/asm"
	"minigraph/internal/core"
	"minigraph/internal/emu"
	"minigraph/internal/isa"
	"minigraph/internal/program"
	"minigraph/internal/rewrite"
)

const kernel = `
        .data
table:  .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
out:    .space 128
        .text
main:   li   r16, 50
        lda  r4, table(zero)
        lda  r5, out(zero)
        clr  r3
outer:  li   r1, 16
        lda  r2, table(zero)
loop:   ldq  r6, 0(r2)
        addl r6, 2, r6
        s8addl r6, r3, r3
        srl  r3, 7, r7
        xor  r3, r7, r3
        lda  r2, 8(r2)
        subl r1, 1, r1
        bne  r1, loop
        and  r3, 127, r8
        stq  r3, 0(r5)
        addq r5, 8, r5
        cmplt r5, r4, r9
        subl r16, 1, r16
        bne  r16, outer
        stq  r3, out+120(zero)
        halt
`

func extract(t testing.TB, src string, pol core.Policy) (*isa.Program, *core.Selection) {
	t.Helper()
	p := asm.MustAssemble("k", src)
	g := program.BuildCFG(p, nil)
	lv := program.ComputeLiveness(g)
	prof, err := emu.ProfileProgram(p, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return p, core.Extract(g, lv, prof, pol, 512)
}

func TestRewriteEquivalenceNopFill(t *testing.T) {
	p, sel := extract(t, kernel, core.DefaultPolicy())
	if len(sel.Instances) == 0 {
		t.Fatal("nothing selected")
	}
	res, err := rewrite.Rewrite(p, sel, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prog.Len() != p.Len() {
		t.Errorf("nop-fill changed text size: %d -> %d", p.Len(), res.Prog.Len())
	}
	checkEquivalent(t, p, res)
}

func TestRewriteEquivalenceCompress(t *testing.T) {
	p, sel := extract(t, kernel, core.DefaultPolicy())
	res, err := rewrite.Rewrite(p, sel, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prog.Len() >= p.Len() {
		t.Errorf("compress did not shrink text: %d -> %d", p.Len(), res.Prog.Len())
	}
	if want := p.Len() - res.RemovedInsts; res.Prog.Len() != want {
		t.Errorf("compressed size %d want %d", res.Prog.Len(), want)
	}
	checkEquivalent(t, p, res)
	// Compression shrinks the dynamic stream: constituents are gone, not
	// nop-filled.
	ref, _ := emu.RunToCompletion(p, nil, 10_000_000)
	mgt := core.NewMGT(res.Templates, core.DefaultExecParams())
	got, _ := emu.RunToCompletion(res.Prog, mgt, 10_000_000)
	if got.InstCount >= ref.InstCount {
		t.Errorf("compression did not shrink the dynamic stream: %d >= %d", got.InstCount, ref.InstCount)
	}
}

func checkEquivalent(t testing.TB, orig *isa.Program, res *rewrite.Result) {
	t.Helper()
	ref, err := emu.RunToCompletion(orig, nil, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	mgt := core.NewMGT(res.Templates, core.DefaultExecParams())
	got, err := emu.RunToCompletion(res.Prog, mgt, 10_000_000)
	if err != nil {
		t.Fatalf("rewritten program faulted: %v", err)
	}
	if !got.Halted || !ref.Halted {
		t.Fatalf("halted: orig=%v rewritten=%v", ref.Halted, got.Halted)
	}
	if got.MemSum != ref.MemSum {
		t.Errorf("memory diverged: %#x vs %#x", got.MemSum, ref.MemSum)
	}
}

func TestRewriteDynamicShrinkMatchesCoverage(t *testing.T) {
	p, sel := extract(t, kernel, core.DefaultPolicy())
	res, err := rewrite.Rewrite(p, sel, false)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := emu.RunToCompletion(p, nil, 10_000_000)
	mgt := core.NewMGT(res.Templates, core.DefaultExecParams())
	got, _ := emu.RunToCompletion(res.Prog, mgt, 10_000_000)
	// Dynamic records removed = covered instructions minus nops that remain
	// in the stream in nop-fill mode... nops still flow, so the shrink in
	// dynamic *handle-stream* records equals covered minus executed nops.
	// With nop-fill, every removed constituent became a nop that still
	// executes, so InstCount is unchanged except that k-instruction graphs
	// become 1 handle + (k-1) nops. Therefore equality:
	if got.InstCount != ref.InstCount {
		t.Errorf("nop-fill should preserve record count: %d vs %d", got.InstCount, ref.InstCount)
	}
	_ = sel
}

// --- Randomised equivalence (the soundness property test) ---

var opPool = []string{"addl", "subl", "addq", "xor", "and", "bis", "srl", "sll", "cmplt", "cmpeq", "s4addl", "s8addl", "sra", "cmpule"}

// genProgram builds a random terminating program: a counted outer loop whose
// body is a random basic-block soup with optional forward branches, loads
// and stores confined to a scratch region.
func genProgram(rng *rand.Rand) string {
	n := 6 + rng.Intn(18)
	var b []byte
	add := func(s string, args ...interface{}) { b = append(b, []byte(fmt.Sprintf(s+"\n", args...))...) }
	add("        .data")
	add("scratch: .space 256")
	add("        .text")
	add("main:   li r16, %d", 20+rng.Intn(30))
	add("        lda r28, scratch(zero)")
	for r := 2; r <= 9; r++ {
		add("        li r%d, %d", r, rng.Intn(1000)-500)
	}
	add("outer:")
	fwdUsed := 0
	for i := 0; i < n; i++ {
		reg := func() int { return 2 + rng.Intn(8) } // r2..r9
		switch k := rng.Intn(10); {
		case k < 6: // ALU
			op := opPool[rng.Intn(len(opPool))]
			if rng.Intn(2) == 0 {
				add("        %s r%d, %d, r%d", op, reg(), rng.Intn(64), reg())
			} else {
				add("        %s r%d, r%d, r%d", op, reg(), reg(), reg())
			}
		case k < 8: // load
			add("        ldq r%d, %d(r28)", reg(), 8*rng.Intn(32))
		case k < 9: // store
			add("        stq r%d, %d(r28)", reg(), 8*rng.Intn(32))
		default: // forward branch over the next instruction
			fwdUsed++
			add("        beq r%d, fwd%d", reg(), fwdUsed)
			add("        addl r%d, 1, r%d", reg(), reg())
			add("fwd%d:", fwdUsed)
		}
	}
	add("        subl r16, 1, r16")
	add("        bne r16, outer")
	// Store every working register so its final value is architecturally
	// live; dead registers may legitimately diverge after rewriting
	// (interior values are transient and never written back).
	for r := 2; r <= 9; r++ {
		add("        stq r%d, %d(r28)", r, 200+8*(r-2))
	}
	add("        halt")
	return string(b)
}

func TestRandomRewriteEquivalence(t *testing.T) {
	policies := []core.Policy{core.DefaultPolicy(), core.IntegerPolicy()}
	p3 := core.DefaultPolicy()
	p3.MaxSize = 8
	p4 := core.DefaultPolicy()
	p4.AllowExtSerial = false
	p4.AllowInteriorLoad = false
	policies = append(policies, p3, p4)

	iters := 120
	if testing.Short() {
		iters = 20
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		src := genProgram(rng)
		p, err := asm.Assemble("rand", src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		ref, err := emu.RunToCompletion(p, nil, 5_000_000)
		if err != nil || !ref.Halted {
			t.Fatalf("seed %d: reference run: %v", seed, err)
		}
		g := program.BuildCFG(p, nil)
		lv := program.ComputeLiveness(g)
		prof, err := emu.ProfileProgram(p, nil, 5_000_000)
		if err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		pol := policies[seed%len(policies)]
		sel := core.Extract(g, lv, prof, pol, 512)
		for _, compress := range []bool{false, true} {
			res, err := rewrite.Rewrite(p, sel, compress)
			if err != nil {
				t.Fatalf("seed %d compress=%v: %v", seed, compress, err)
			}
			mgt := core.NewMGT(res.Templates, core.DefaultExecParams())
			got, err := emu.RunToCompletion(res.Prog, mgt, 5_000_000)
			if err != nil {
				t.Fatalf("seed %d compress=%v: rewritten faulted: %v\n%s", seed, compress, err, src)
			}
			if got.MemSum != ref.MemSum {
				t.Fatalf("seed %d compress=%v: memory diverged\n%s\n%s", seed, compress, src, isa.Disassemble(res.Prog))
			}
		}
	}
}

func TestTemplatesAlwaysValidate(t *testing.T) {
	for seed := 0; seed < 40; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		p, err := asm.Assemble("rand", genProgram(rng))
		if err != nil {
			t.Fatal(err)
		}
		g := program.BuildCFG(p, nil)
		lv := program.ComputeLiveness(g)
		pol := core.DefaultPolicy()
		pol.MaxSize = 8
		for _, c := range core.Enumerate(g, lv, pol) {
			if err := c.Tmpl.Validate(); err != nil {
				t.Fatalf("seed %d: enumerated illegal template: %v (%v)", seed, err, c.Tmpl)
			}
		}
	}
}
