// Package experiments reproduces every figure and in-text result set from
// the paper's evaluation (§6). Each experiment is a function that runs the
// required simulations and returns the regenerated artifact as text tables,
// with benchmarks and means organised as in the corresponding figure.
//
// Experiment index (see DESIGN.md §3):
//
//	config  — the machine-configuration description of §6
//	fig5    — coverage vs MGT entries × mini-graph size (integer and
//	          integer-memory, application-specific)
//	fig5dom — domain-specific coverage (shared per-suite MGT)
//	robust  — cross-input profile robustness (§6.1 in-text)
//	fig6    — performance of int / int-mem mini-graphs, with and without
//	          pair-wise collapsing ALU pipelines
//	fig7    — serialization isolation (§6.2)
//	policy  — best per-benchmark selection policy (§6.2 in-text)
//	icache  — static compression / instruction-cache effect (§6.2 in-text)
//	fig8reg — register-file reduction (Figure 8 top)
//	fig8bw  — pipeline-bandwidth reduction and 2-cycle scheduler (Figure 8
//	          bottom)
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"minigraph/internal/core"
	"minigraph/internal/emu"
	"minigraph/internal/isa"
	"minigraph/internal/program"
	"minigraph/internal/rewrite"
	"minigraph/internal/uarch"
	"minigraph/internal/workload"
)

// Options configure an experiment run.
type Options struct {
	// Benchmarks restricts the run (nil = every registered benchmark).
	Benchmarks []string
	// MGTEntries is the table size for performance experiments (paper: 512).
	MGTEntries int
	// MaxSize is the mini-graph size cap for performance experiments
	// (paper: 4).
	MaxSize int
	// Parallel bounds concurrent simulations (0 = GOMAXPROCS).
	Parallel int
	// Log, when non-nil, receives progress output.
	Log io.Writer
}

// DefaultOptions match the paper's main configuration.
func DefaultOptions() Options {
	return Options{MGTEntries: 512, MaxSize: 4}
}

func (o *Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

func (o *Options) logf(format string, args ...interface{}) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// benchSet resolves the benchmark selection.
func (o *Options) benchSet() []*workload.Benchmark {
	if len(o.Benchmarks) == 0 {
		return workload.All()
	}
	var out []*workload.Benchmark
	for _, n := range o.Benchmarks {
		if b, ok := workload.ByName(n); ok {
			out = append(out, b)
		}
	}
	return out
}

// prepared caches one benchmark's static analysis and profile.
type prepared struct {
	bench *workload.Benchmark
	prog  *isa.Program
	cfg   *program.CFG
	live  *program.Liveness
	prof  *program.Profile
}

const runLimit = 4_000_000

func prepare(b *workload.Benchmark, in workload.Input) (*prepared, error) {
	p := b.Build(in)
	g := program.BuildCFG(p, nil)
	lv := program.ComputeLiveness(g)
	prof, err := emu.ProfileProgram(p, nil, runLimit)
	if err != nil {
		return nil, fmt.Errorf("%s: profile: %w", b.Name, err)
	}
	return &prepared{bench: b, prog: p, cfg: g, live: lv, prof: prof}, nil
}

// rewritten extracts under pol and rewrites, returning the program and MGT.
func (pr *prepared) rewritten(pol core.Policy, entries int, params core.ExecParams, compress bool) (*isa.Program, *core.MGT, *core.Selection, error) {
	sel := core.Extract(pr.cfg, pr.live, pr.prof, pol, entries)
	res, err := rewrite.Rewrite(pr.prog, sel, compress)
	if err != nil {
		return nil, nil, nil, err
	}
	return res.Prog, core.NewMGT(res.Templates, params), sel, nil
}

// simulate runs one timing simulation.
func simulate(cfg uarch.Config, prog *isa.Program, mgt *core.MGT) (*uarch.Result, error) {
	pipe := uarch.New(cfg, prog, mgt)
	return pipe.Run()
}

// parallelFor runs jobs with bounded concurrency, preserving error order.
func parallelFor(n int, workers int, job func(i int) error) error {
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = job(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// suiteOrder returns a benchmark's suite rank for grouped output.
var suiteOrder = map[string]int{
	workload.SPECint: 0, workload.MediaBench: 1, workload.CommBench: 2, workload.MiBench: 3,
}

// policyFor builds the extraction policy for an experiment arm.
func policyFor(intMem bool, maxSize int) core.Policy {
	pol := core.DefaultPolicy()
	pol.MaxSize = maxSize
	pol.AllowMem = intMem
	return pol
}

// machineFor builds the timing configuration for an experiment arm.
func machineFor(intMem, collapse bool) uarch.Config {
	cfg := uarch.MiniGraph(intMem)
	cfg.Collapse = collapse
	if collapse {
		cfg.Name += "+collapse"
	}
	return cfg
}

// execParams derives MGT scheduling parameters matching a machine config.
func execParams(cfg uarch.Config) core.ExecParams {
	return core.ExecParams{LoadLat: cfg.LoadLat, Collapse: cfg.Collapse, UseAP: cfg.APs > 0}
}
