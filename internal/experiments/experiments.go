// Package experiments reproduces every figure and in-text result set from
// the paper's evaluation (§6). Each experiment declares its arms as data
// (simulation jobs) submitted to the shared memoizing engine in
// internal/sim and assembles the returned outcomes into the regenerated
// artifact: the figure's text table plus a structured, JSON-serializable
// report.
//
// Experiment index:
//
//	config  — the machine-configuration description of §6
//	fig5    — coverage vs MGT entries × mini-graph size (integer and
//	          integer-memory, application-specific)
//	fig5dom — domain-specific coverage (shared per-suite MGT)
//	robust  — cross-input profile robustness (§6.1 in-text)
//	fig6    — performance of int / int-mem mini-graphs, with and without
//	          pair-wise collapsing ALU pipelines
//	fig7    — serialization isolation (§6.2)
//	policy  — best per-benchmark selection policy (§6.2 in-text)
//	icache  — static compression / instruction-cache effect (§6.2 in-text)
//	fig8reg — register-file reduction (Figure 8 top)
//	fig8bw  — pipeline-bandwidth reduction and 2-cycle scheduler (Figure 8
//	          bottom)
//	ablate  — design-choice sensitivity knobs
//	frontend — IPC amplification under front-end variation (hybrid/TAGE
//	          predictor × no-prefetch/delta prefetcher)
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"

	"minigraph/internal/core"
	"minigraph/internal/sim"
	"minigraph/internal/stats"
	"minigraph/internal/uarch"
	"minigraph/internal/uarch/bpred"
	"minigraph/internal/uarch/prefetch"
	"minigraph/internal/workload"
)

// Options configure an experiment run.
type Options struct {
	// Benchmarks restricts the run (nil = every registered benchmark).
	Benchmarks []string
	// MGTEntries is the table size for performance experiments (paper: 512).
	MGTEntries int
	// MaxSize is the mini-graph size cap for performance experiments
	// (paper: 4).
	MaxSize int
	// Parallel bounds concurrent simulations (0 = GOMAXPROCS). Ignored when
	// Engine is set (the engine's pool bounds the run).
	Parallel int
	// Log, when non-nil, receives progress output.
	Log io.Writer
	// Context cancels in-flight simulations (nil = context.Background()).
	Context context.Context
	// Engine, when non-nil, is a shared memoizing job engine: benchmark
	// preparations and the common baseline simulations are then computed
	// once across every experiment that shares it. When nil each experiment
	// call builds a private engine.
	Engine *sim.Engine

	// Predictor and Prefetcher override the front end of every machine the
	// experiments build ("" keeps the presets' defaults: hybrid predictor,
	// no prefetcher). The frontend experiment ignores them — it sweeps both
	// axes itself.
	Predictor  string
	Prefetcher string
}

// DefaultOptions match the paper's main configuration.
func DefaultOptions() Options {
	return Options{MGTEntries: 512, MaxSize: 4}
}

func (o *Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

func (o *Options) engine() *sim.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	return sim.New(o.workers())
}

func (o *Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o *Options) logf(format string, args ...interface{}) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// ErrUnknownBenchmark tags benchmark-selection failures so callers (e.g.
// the HTTP layer, for a 400 vs 500 split) can classify them with
// errors.Is instead of string matching.
var ErrUnknownBenchmark = errors.New("unknown benchmark")

// benchSet resolves the benchmark selection. Unknown names fail fast with
// the registered names listed — a typo must not silently shrink the run to
// the empty set.
func (o *Options) benchSet() ([]*workload.Benchmark, error) {
	if len(o.Benchmarks) == 0 {
		return workload.All(), nil
	}
	out := make([]*workload.Benchmark, 0, len(o.Benchmarks))
	for _, n := range o.Benchmarks {
		b, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("experiments: %w %q (known: %s)", ErrUnknownBenchmark, n, strings.Join(workload.Names(), " "))
		}
		out = append(out, b)
	}
	return out, nil
}

// Artifact is one experiment's regenerated output: the figure-style text
// tables and the structured report.
type Artifact struct {
	ID     string
	Tables []*stats.Table
	Report *sim.Report
}

// String renders every table.
func (a *Artifact) String() string {
	parts := make([]string, len(a.Tables))
	for i, t := range a.Tables {
		parts[i] = t.String()
	}
	return strings.Join(parts, "\n")
}

// IDs lists the experiment identifiers in canonical (paper) order.
func IDs() []string {
	return []string{"config", "fig5", "fig5dom", "robust", "fig6", "fig7", "policy", "icache", "fig8reg", "fig8bw", "ablate", "frontend"}
}

// checkFrontend rejects unknown front-end override names before any
// experiment builds a machine from them (uarch.Config.Validate would
// otherwise panic inside an engine worker).
func (o *Options) checkFrontend() error {
	switch o.Predictor {
	case "", bpred.KindHybrid, bpred.KindTAGE:
	default:
		return fmt.Errorf("experiments: unknown predictor %q (known: %s)", o.Predictor, strings.Join(bpred.Kinds(), " "))
	}
	switch o.Prefetcher {
	case "", prefetch.KindNone, prefetch.KindDelta:
	default:
		return fmt.Errorf("experiments: unknown prefetcher %q (known: %s)", o.Prefetcher, strings.Join(prefetch.Kinds(), " "))
	}
	return nil
}

// applyFrontend rewrites one machine configuration with the Options-level
// front-end overrides. Empty overrides return cfg unchanged, so default
// runs stay byte-identical to their golden fixtures.
func (o *Options) applyFrontend(cfg uarch.Config) uarch.Config {
	if o.Predictor == bpred.KindTAGE {
		cfg.BPred = bpred.TageConfig()
	}
	if o.Prefetcher == prefetch.KindDelta {
		cfg.Prefetcher = prefetch.DefaultDelta()
	}
	return cfg
}

// Run regenerates one experiment by id.
func Run(id string, o Options) (*Artifact, error) {
	if err := o.checkFrontend(); err != nil {
		return nil, err
	}
	switch id {
	case "config":
		t := ConfigTable()
		rep := sim.NewReport(id, t.Title)
		for _, row := range t.Rows {
			rep.Add(sim.Row{Arm: row[0], Metric: "config", Text: row[1]})
		}
		return &Artifact{ID: id, Tables: []*stats.Table{t}, Report: rep}, nil
	case "fig5":
		a, _, err := Fig5(o)
		return a, err
	case "fig5dom":
		return Fig5Domain(o)
	case "robust":
		return Robustness(o)
	case "fig6":
		a, _, err := Fig6(o)
		return a, err
	case "fig7":
		a, _, err := Fig7(o)
		return a, err
	case "policy":
		return PolicyBest(o)
	case "icache":
		return ICache(o)
	case "fig8reg":
		return Fig8Regs(o)
	case "fig8bw":
		return Fig8Bandwidth(o)
	case "ablate":
		return Ablations(o)
	case "frontend":
		return Frontend(o)
	}
	return nil, fmt.Errorf("unknown experiment %q", id)
}

// runJobs submits a job batch and, when logging is enabled, streams one
// progress line per completed job (labels is index-aligned with jobs).
func (o *Options) runJobs(eng *sim.Engine, jobs []sim.SimJob, labels []string) ([]*sim.Outcome, error) {
	var onDone func(int, *sim.Outcome)
	if o.Log != nil {
		var done atomic.Int64
		onDone = func(i int, _ *sim.Outcome) {
			o.logf("%s done (%d/%d)", labels[i], done.Add(1), len(jobs))
		}
	}
	return eng.RunEach(o.ctx(), jobs, onDone)
}

// prepKey is the canonical preparation key for a benchmark.
func prepKey(b *workload.Benchmark, in workload.Input) sim.PrepareKey {
	return sim.PrepareKey{Bench: b.Name, Input: in}
}

// mgJob builds a mini-graph simulation job for one experiment arm.
func mgJob(b *workload.Benchmark, pol core.Policy, entries int, cfg uarch.Config, compress bool) sim.SimJob {
	return sim.SimJob{
		Prepare:  prepKey(b, workload.InputTrain),
		Policy:   pol,
		Entries:  entries,
		Compress: compress,
		Config:   cfg,
	}
}

// baselineJob is the shared 6-wide baseline simulation for b, under the
// options' front-end overrides (default runs share one baseline key across
// every experiment).
func (o *Options) baselineJob(b *workload.Benchmark) sim.SimJob {
	return sim.Baseline(prepKey(b, workload.InputTrain), o.applyFrontend(uarch.Baseline()))
}

// policyFor builds the extraction policy for an experiment arm.
func policyFor(intMem bool, maxSize int) core.Policy {
	pol := core.DefaultPolicy()
	pol.MaxSize = maxSize
	pol.AllowMem = intMem
	return pol
}

// machineFor builds the timing configuration for an experiment arm, under
// the options' front-end overrides.
func (o *Options) machineFor(intMem, collapse bool) uarch.Config {
	cfg := uarch.MiniGraph(intMem)
	cfg.Collapse = collapse
	if collapse {
		cfg.Name += "+collapse"
	}
	return o.applyFrontend(cfg)
}
