package experiments

import (
	"minigraph/internal/sim"
	"minigraph/internal/stats"
	"minigraph/internal/uarch"
	"minigraph/internal/uarch/bpred"
	"minigraph/internal/uarch/prefetch"
	"minigraph/internal/workload"
)

// frontendArms are the front-end combinations the frontend experiment
// sweeps: both predictor kinds crossed with prefetching off and on. Each
// arm applies to the baseline and the mini-graph machine alike, so the
// amplification ratio compares like against like.
var frontendArms = []struct {
	name string
	pred string
	pf   string
}{
	{"hybrid", bpred.KindHybrid, prefetch.KindNone},
	{"tage", bpred.KindTAGE, prefetch.KindNone},
	{"hybrid+delta", bpred.KindHybrid, prefetch.KindDelta},
	{"tage+delta", bpred.KindTAGE, prefetch.KindDelta},
}

// Frontend measures IPC amplification (mini-graph speedup over the same
// front end's baseline) under front-end variation, plus the conditional
// mispredict rate of each predictor and the prefetch traffic of each delta
// arm. The hybrid/no-prefetch arm reuses the exact default keys, so with a
// shared engine it is a pure cache hit after any performance experiment.
func Frontend(o Options) (*Artifact, error) {
	benches, err := o.benchSet()
	if err != nil {
		return nil, err
	}
	eng := o.engine()

	stride := 2 * len(frontendArms) // per arm: baseline + mini-graph
	jobs := make([]sim.SimJob, 0, stride*len(benches))
	labels := make([]string, 0, cap(jobs))
	for _, b := range benches {
		for _, a := range frontendArms {
			ao := o
			ao.Predictor, ao.Prefetcher = a.pred, a.pf
			jobs = append(jobs, ao.baselineJob(b))
			labels = append(labels, "frontend: "+b.Name+" baseline/"+a.name)
			jobs = append(jobs, mgJob(b, policyFor(true, o.MaxSize), o.MGTEntries, ao.machineFor(true, false), false))
			labels = append(labels, "frontend: "+b.Name+" minigraph/"+a.name)
		}
	}
	outs, err := o.runJobs(eng, jobs, labels)
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("Front-end axes: IPC amplification and mispredict rate",
		"bench", "suite", "hybrid", "tage", "hybrid+delta", "tage+delta", "hybrid MR", "tage MR")
	rep := sim.NewReport("frontend", t.Title)
	amp := make(map[string][]float64, len(frontendArms))
	// Aggregate baseline-machine mispredict totals per predictor kind; the
	// experiment reports the benchSubset-wide rate the TAGE-vs-hybrid
	// regression test asserts on.
	condSeen := map[string]int64{}
	condMiss := map[string]int64{}
	for i, b := range benches {
		cells := []string{b.Name, b.Suite}
		var mr [2]float64
		for k, a := range frontendArms {
			base := outs[i*stride+2*k].Result
			mg := outs[i*stride+2*k+1].Result
			v := uarch.Speedup(base, mg)
			amp[a.name] = append(amp[a.name], v)
			cells = append(cells, stats.SpeedupStr(v))
			rep.Add(
				sim.Row{Bench: b.Name, Suite: b.Suite, Arm: a.name, Metric: "amplification", Value: v},
				sim.Row{Bench: b.Name, Suite: b.Suite, Arm: a.name, Metric: "base-mispredict-rate", Value: base.CondMispredictRate()},
			)
			if a.pf == prefetch.KindNone {
				mr[k&1] = base.CondMispredictRate()
				condSeen[a.pred] += base.CondBranches
				condMiss[a.pred] += base.CondMispredicts
			}
			if mg.PrefetchIssued > 0 {
				rep.Add(
					sim.Row{Bench: b.Name, Suite: b.Suite, Arm: a.name, Metric: "prefetch_issued", Value: float64(mg.PrefetchIssued)},
					sim.Row{Bench: b.Name, Suite: b.Suite, Arm: a.name, Metric: "prefetch_useful", Value: float64(mg.PrefetchUseful)},
					sim.Row{Bench: b.Name, Suite: b.Suite, Arm: a.name, Metric: "prefetch_late", Value: float64(mg.PrefetchLate)},
				)
			}
		}
		cells = append(cells, stats.Pct(mr[0]), stats.Pct(mr[1]))
		t.AddRow(cells...)
	}
	for _, suite := range workload.Suites() {
		var bySuite [4][]float64
		for i, b := range benches {
			if b.Suite != suite {
				continue
			}
			for k := range frontendArms {
				bySuite[k] = append(bySuite[k], amp[frontendArms[k].name][i])
			}
		}
		t.AddRowf("gmean:"+suite, "",
			stats.GeoMean(bySuite[0]), stats.GeoMean(bySuite[1]), stats.GeoMean(bySuite[2]), stats.GeoMean(bySuite[3]), "", "")
		for k, a := range frontendArms {
			rep.Add(sim.Row{Suite: suite, Arm: a.name, Agg: "gmean", Metric: "amplification", Value: stats.GeoMean(bySuite[k])})
		}
	}
	for _, kind := range []string{bpred.KindHybrid, bpred.KindTAGE} {
		rate := 0.0
		if condSeen[kind] > 0 {
			rate = float64(condMiss[kind]) / float64(condSeen[kind])
		}
		rep.Add(sim.Row{Arm: kind, Agg: "total", Metric: "cond_mispredict_rate", Value: rate})
	}
	return &Artifact{ID: "frontend", Tables: []*stats.Table{t}, Report: rep}, nil
}
