package experiments

import (
	"fmt"

	"minigraph/internal/stats"
	"minigraph/internal/uarch"
	"minigraph/internal/workload"
)

// Ablations quantifies the design choices the paper fixes by fiat, each as
// one knob around the default mini-graph machine:
//
//   - intmem×2: issue two heterogeneous handles per cycle instead of one
//     (§4.3 argues one is sufficient; this measures what the FUBMP
//     cross-check complexity would buy);
//   - 4 APs: replace all four baseline ALUs with ALU pipelines;
//   - AP depth 8: deeper pipelines admit longer integer graphs (with
//     MaxSize 8 selection);
//   - MGT 128: a quarter-size table (coverage-limited selection);
//   - no window: sliding-window scheduler disabled (integer-only
//     selection, the configuration forced on machines without FUBMP
//     support).
func Ablations(o Options) (*stats.Table, error) {
	type arm struct {
		name    string
		intMem  bool
		maxSize int
		entries int
		mutate  func(*uarch.Config)
	}
	arms := []arm{
		{"default", true, 0, 0, nil},
		{"intmem x2", true, 0, 0, func(c *uarch.Config) { c.IntMemIssuePerCycle = 2 }},
		{"4 APs", true, 0, 0, func(c *uarch.Config) { c.IntALUs, c.APs = 0, 4 }},
		{"AP depth 8", true, 8, 0, func(c *uarch.Config) { c.APDepth = 8 }},
		{"MGT 128", true, 0, 128, nil},
		{"no window (int only)", false, 0, 0, func(c *uarch.Config) { c.IntMemIssuePerCycle = 0 }},
	}
	benches := o.benchSet()
	rows := make([][]float64, len(benches))
	err := parallelFor(len(benches), o.workers(), func(i int) error {
		b := benches[i]
		pr, err := prepare(b, workload.InputTrain)
		if err != nil {
			return err
		}
		base, err := simulate(uarch.Baseline(), pr.prog, nil)
		if err != nil {
			return err
		}
		vals := make([]float64, len(arms))
		for k, a := range arms {
			cfg := machineFor(a.intMem, false)
			if a.mutate != nil {
				a.mutate(&cfg)
			}
			cfg.Name = "ablate-" + a.name
			maxSize := o.MaxSize
			if a.maxSize > 0 {
				maxSize = a.maxSize
			}
			entries := o.MGTEntries
			if a.entries > 0 {
				entries = a.entries
			}
			prog, mgt, _, err := pr.rewritten(policyFor(a.intMem, maxSize), entries, execParams(cfg), false)
			if err != nil {
				return err
			}
			res, err := simulate(cfg, prog, mgt)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", b.Name, a.name, err)
			}
			vals[k] = uarch.Speedup(base, res)
		}
		rows[i] = vals
		o.logf("ablate: %s done", b.Name)
		return nil
	})
	if err != nil {
		return nil, err
	}

	header := []string{"bench"}
	for _, a := range arms {
		header = append(header, a.name)
	}
	t := stats.NewTable("Ablations: design-choice sensitivity (speedup vs baseline)", header...)
	for i, b := range benches {
		cells := []string{b.Name}
		for _, v := range rows[i] {
			cells = append(cells, stats.SpeedupStr(v))
		}
		t.AddRow(cells...)
	}
	for _, suite := range workload.Suites() {
		cells := []string{"gmean:" + suite}
		for k := range arms {
			var xs []float64
			for i, b := range benches {
				if b.Suite == suite {
					xs = append(xs, rows[i][k])
				}
			}
			cells = append(cells, stats.SpeedupStr(stats.GeoMean(xs)))
		}
		t.AddRow(cells...)
	}
	return t, nil
}
