package experiments

import (
	"minigraph/internal/sim"
	"minigraph/internal/stats"
	"minigraph/internal/uarch"
	"minigraph/internal/workload"
)

// ablationArms are the design-choice knobs around the default mini-graph
// machine:
//
//   - intmem×2: issue two heterogeneous handles per cycle instead of one
//     (§4.3 argues one is sufficient; this measures what the FUBMP
//     cross-check complexity would buy);
//   - 4 APs: replace all four baseline ALUs with ALU pipelines;
//   - AP depth 8: deeper pipelines admit longer integer graphs (with
//     MaxSize 8 selection);
//   - MGT 128: a quarter-size table (coverage-limited selection);
//   - no window: sliding-window scheduler disabled (integer-only
//     selection, the configuration forced on machines without FUBMP
//     support).
var ablationArms = []struct {
	name    string
	intMem  bool
	maxSize int
	entries int
	mutate  func(*uarch.Config)
}{
	{"default", true, 0, 0, nil},
	{"intmem x2", true, 0, 0, func(c *uarch.Config) { c.IntMemIssuePerCycle = 2 }},
	{"4 APs", true, 0, 0, func(c *uarch.Config) { c.IntALUs, c.APs = 0, 4 }},
	{"AP depth 8", true, 8, 0, func(c *uarch.Config) { c.APDepth = 8 }},
	{"MGT 128", true, 0, 128, nil},
	{"no window (int only)", false, 0, 0, func(c *uarch.Config) { c.IntMemIssuePerCycle = 0 }},
}

// Ablations quantifies the design choices the paper fixes by fiat, each as
// one knob around the default mini-graph machine.
func Ablations(o Options) (*Artifact, error) {
	benches, err := o.benchSet()
	if err != nil {
		return nil, err
	}
	eng := o.engine()

	stride := 1 + len(ablationArms)
	jobs := make([]sim.SimJob, 0, stride*len(benches))
	labels := make([]string, 0, cap(jobs))
	for _, b := range benches {
		jobs = append(jobs, o.baselineJob(b))
		labels = append(labels, "ablate: "+b.Name+" baseline")
		for _, a := range ablationArms {
			cfg := o.machineFor(a.intMem, false)
			if a.mutate != nil {
				a.mutate(&cfg)
			}
			cfg.Name = "ablate-" + a.name
			maxSize := o.MaxSize
			if a.maxSize > 0 {
				maxSize = a.maxSize
			}
			entries := o.MGTEntries
			if a.entries > 0 {
				entries = a.entries
			}
			jobs = append(jobs, mgJob(b, policyFor(a.intMem, maxSize), entries, cfg, false))
			labels = append(labels, "ablate: "+b.Name+" "+a.name)
		}
	}
	outs, err := o.runJobs(eng, jobs, labels)
	if err != nil {
		return nil, err
	}

	rows := make([][]float64, len(benches))
	for i := range benches {
		base := outs[i*stride].Result
		vals := make([]float64, len(ablationArms))
		for k := range ablationArms {
			vals[k] = uarch.Speedup(base, outs[i*stride+1+k].Result)
		}
		rows[i] = vals
	}

	header := []string{"bench"}
	for _, a := range ablationArms {
		header = append(header, a.name)
	}
	t := stats.NewTable("Ablations: design-choice sensitivity (speedup vs baseline)", header...)
	rep := sim.NewReport("ablate", t.Title)
	for i, b := range benches {
		cells := []string{b.Name}
		for k, v := range rows[i] {
			cells = append(cells, stats.SpeedupStr(v))
			rep.Add(sim.Row{Bench: b.Name, Suite: b.Suite, Arm: ablationArms[k].name, Metric: "speedup", Value: v})
		}
		t.AddRow(cells...)
	}
	for _, suite := range workload.Suites() {
		cells := []string{"gmean:" + suite}
		for k := range ablationArms {
			var xs []float64
			for i, b := range benches {
				if b.Suite == suite {
					xs = append(xs, rows[i][k])
				}
			}
			cells = append(cells, stats.SpeedupStr(stats.GeoMean(xs)))
			rep.Add(sim.Row{Suite: suite, Arm: ablationArms[k].name, Agg: "gmean", Metric: "speedup", Value: stats.GeoMean(xs)})
		}
		t.AddRow(cells...)
	}
	return &Artifact{ID: "ablate", Tables: []*stats.Table{t}, Report: rep}, nil
}
