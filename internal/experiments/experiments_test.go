package experiments_test

import (
	"strings"
	"testing"

	"minigraph/internal/experiments"
	"minigraph/internal/sim"
	"minigraph/internal/workload"
)

func smallOpts() experiments.Options {
	o := experiments.DefaultOptions()
	// One benchmark per suite keeps the unit tests fast; the full sweep is
	// cmd/mgbench's job.
	o.Benchmarks = []string{"gzip", "adpcm.enc", "reed.dec", "sha"}
	return o
}

// TestUnknownBenchmarkError checks a typo in the benchmark selection fails
// loudly instead of silently running the empty set.
func TestUnknownBenchmarkError(t *testing.T) {
	o := smallOpts()
	o.Benchmarks = append(o.Benchmarks, "gzipp")
	if _, _, err := experiments.Fig5(o); err == nil || !strings.Contains(err.Error(), "gzipp") {
		t.Errorf("want unknown-benchmark error naming the typo, got %v", err)
	}
	if _, err := experiments.Run("fig6", o); err == nil {
		t.Error("Run accepted an unknown benchmark name")
	}
}

// TestSharedEngineDedup runs Figure 6 then Figure 7 on one shared engine
// and checks the single-flight cache: each benchmark is prepared exactly
// once and its baseline (plus the two arms the figures share) simulates
// exactly once across both figures.
func TestSharedEngineDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing simulations in -short mode")
	}
	o := smallOpts()
	o.Engine = sim.New(0)
	n := int64(len(o.Benchmarks))

	if _, _, err := experiments.Fig6(o); err != nil {
		t.Fatal(err)
	}
	st := o.Engine.Stats()
	if st.PrepareRuns != n {
		t.Errorf("after fig6: %d prepares, want %d", st.PrepareRuns, n)
	}
	if st.SimRuns != 5*n { // baseline + 4 arms per benchmark
		t.Errorf("after fig6: %d sim runs, want %d", st.SimRuns, 5*n)
	}

	if _, _, err := experiments.Fig7(o); err != nil {
		t.Fatal(err)
	}
	st2 := o.Engine.Stats()
	if st2.PrepareRuns != n {
		t.Errorf("fig7 re-prepared benchmarks: %d prepares, want %d", st2.PrepareRuns, n)
	}
	// Fig7 shares the baseline and its plain int/intmem arms with Fig6:
	// of its 8 jobs per benchmark, 3 are cache hits and 5 are new.
	if st2.SimRuns != 10*n {
		t.Errorf("after fig7: %d sim runs, want %d", st2.SimRuns, 10*n)
	}
	if hits := st2.SimHits - st.SimHits; hits != 3*n {
		t.Errorf("fig7 took %d cache hits, want %d (baseline, int, intmem per benchmark)", hits, 3*n)
	}
}

// TestReportJSON checks the structured report round-trips as valid JSON.
func TestReportJSON(t *testing.T) {
	o := smallOpts()
	a, err := experiments.Run("robust", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Report.Rows) == 0 {
		t.Fatal("empty report")
	}
	data, err := a.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"name": "robust"`, `"metric"`, `"value"`} {
		if !strings.Contains(string(data), frag) {
			t.Errorf("report JSON missing %q", frag)
		}
	}
}

func TestConfigTable(t *testing.T) {
	s := experiments.ConfigTable().String()
	for _, frag := range []string{"reorder buffer", "128", "store sets", "ALU pipelines"} {
		if !strings.Contains(s, frag) {
			t.Errorf("config table missing %q:\n%s", frag, s)
		}
	}
}

func TestFig5CoverageShape(t *testing.T) {
	o := smallOpts()
	_, cells, err := experiments.Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("no coverage cells")
	}
	// Invariants from the paper: coverage grows (weakly) with MGT entries
	// and with max size; integer-memory >= integer at fixed axes.
	byKey := map[string]float64{}
	for _, c := range cells {
		byKey[keyOf(c)] = c.Coverage
	}
	for _, c := range cells {
		if c.Entries < 2048 {
			next := c
			next.Entries = nextEntry(c.Entries)
			if byKey[keyOf(next)] < c.Coverage-1e-9 {
				t.Errorf("%s: coverage fell when MGT grew %d->%d", c.Bench, c.Entries, next.Entries)
			}
		}
		if !c.IntMem {
			im := c
			im.IntMem = true
			if byKey[keyOf(im)] < c.Coverage-1e-9 {
				t.Errorf("%s: integer-memory coverage below integer at s%d/e%d", c.Bench, c.MaxSize, c.Entries)
			}
		}
	}
}

func keyOf(c experiments.CoverageCell) string {
	k := c.Bench
	if c.IntMem {
		k += "/m"
	}
	return k + string(rune('a'+c.MaxSize)) + string(rune('a'+c.Entries%64))
}

func nextEntry(e int) int {
	switch e {
	case 32:
		return 128
	case 128:
		return 512
	default:
		return 2048
	}
}

func TestFig6SmallSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("timing simulations in -short mode")
	}
	o := smallOpts()
	table, rows, err := experiments.Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.BaseIPC <= 0 {
			t.Errorf("%s: zero baseline IPC", r.Bench)
		}
		for _, v := range []float64{r.Int, r.IntCollapse, r.IntMem, r.IntMemColl} {
			if v < 0.5 || v > 2.5 {
				t.Errorf("%s: implausible speedup %.3f", r.Bench, v)
			}
		}
		// Collapsing adds latency reduction on top of amplification; it
		// should not make things meaningfully worse.
		if r.IntCollapse < r.Int-0.05 {
			t.Errorf("%s: collapsing hurt int graphs: %.3f vs %.3f", r.Bench, r.IntCollapse, r.Int)
		}
	}
	if !strings.Contains(table.String(), "gmean:MediaBench") {
		t.Error("missing suite gmeans")
	}
}

func TestRobustnessSubset(t *testing.T) {
	o := smallOpts()
	table, err := experiments.Robustness(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "relative drop") {
		t.Error("missing drop column")
	}
}

func TestFig5DomainSubset(t *testing.T) {
	o := experiments.DefaultOptions()
	o.Benchmarks = nil // domain selection is per-suite by construction
	// Restrict indirectly: run on one suite by building a local option set.
	table, err := experiments.Fig5Domain(experiments.Options{MGTEntries: 512, MaxSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := table.String()
	for _, suite := range workload.Suites() {
		if !strings.Contains(s, suite) {
			t.Errorf("domain table missing suite %s", suite)
		}
	}
}
